// Fig. 1 reproduction: the truth tables of the balanced ternary logic
// operations (AND, OR, XOR, STI, NTI, PTI), printed from the very
// implementations the TALU executes.
#include <cstdio>

#include "report.hpp"
#include "ternary/trit.hpp"

namespace {

using art9::ternary::kAllTrits;
using art9::ternary::Trit;

template <typename F>
void print_two_input(const char* name, F&& f) {
  std::printf("\n  %s | ", name);
  for (Trit b : kAllTrits) std::printf(" %c", b.to_char());
  std::printf("\n  ----+---------\n");
  for (Trit a : kAllTrits) {
    std::printf("   %c  | ", a.to_char());
    for (Trit b : kAllTrits) std::printf(" %c", f(a, b).to_char());
    std::printf("\n");
  }
}

template <typename F>
void print_one_input(const char* name, F&& f) {
  std::printf("  %-4s: ", name);
  for (Trit a : kAllTrits) std::printf("%c->%c  ", a.to_char(), f(a).to_char());
  std::printf("\n");
}

}  // namespace

int main() {
  art9::bench::heading("Fig. 1 — truth tables of ternary logic operations");
  print_two_input("AND", [](Trit a, Trit b) { return art9::ternary::tand(a, b); });
  print_two_input("OR", [](Trit a, Trit b) { return art9::ternary::tor(a, b); });
  print_two_input("XOR", [](Trit a, Trit b) { return art9::ternary::txor(a, b); });
  std::printf("\n  inverters (STI / NTI / PTI):\n");
  print_one_input("STI", [](Trit a) { return art9::ternary::sti(a); });
  print_one_input("NTI", [](Trit a) { return art9::ternary::nti(a); });
  print_one_input("PTI", [](Trit a) { return art9::ternary::pti(a); });
  art9::bench::note("");
  art9::bench::note("AND = min, OR = max, XOR = -(a*b); exhaustively asserted in");
  art9::bench::note("tests/ternary/trit_test.cpp (including the min/max-form equivalence).");
  return 0;
}
