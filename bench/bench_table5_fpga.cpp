// Table V reproduction: the binary-encoded ART-9 core on the FPGA
// verification platform — ALMs, registers, RAM bits, power, DMIPS/W.
#include <cstdio>

#include "core/benchmarks.hpp"
#include "core/hardware_framework.hpp"
#include "report.hpp"
#include "rv32/rv32_assembler.hpp"
#include "tech/estimator.hpp"
#include "xlat/framework.hpp"

int main() {
  using namespace art9;
  bench::heading("Table V — implementation results using FPGA-based ternary logics");

  xlat::SoftwareFramework sw;
  const xlat::TranslationResult dhry =
      sw.translate(rv32::assemble_rv32(core::dhrystone().rv32));
  core::HardwareFramework hw({}, tech::Technology::fpga_binary_emulation());
  const core::EvaluationResult r = hw.evaluate(dhry.program, core::dhrystone().iterations);

  bench::paper_row("Voltage (V)", 0.9, r.analysis.voltage_v, "V");
  bench::paper_row("Frequency (MHz)", 150, r.estimate.clock_mhz, "MHz");
  bench::paper_row("ALMs", 803, r.analysis.alms, "ALMs");
  bench::paper_row("Registers", 339, static_cast<double>(r.analysis.ff_bits), "FFs");
  bench::paper_row("RAM (bits)", 9216, static_cast<double>(r.analysis.ram_bits), "bits");
  bench::paper_row("Power (W)", 1.09, r.analysis.power_w, "W");
  bench::paper_row("DMIPS/W", 57.8, r.estimate.dmips_per_watt, "DMIPS/W");
  bench::rule();
  bench::note("Binary-encoded ternary: 1 trit = 2 bits, so two 256-word memories");
  bench::note("cost 2 x 256 x 18 = 9216 RAM bits; 169 state trits + 1 valid bit");
  bench::note("= 339 registers (see src/tech/datapath.cpp).");
  bench::note("");
  bench::note(tech::summarize(r.estimate));
  return 0;
}
