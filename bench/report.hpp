// Shared table-rendering helpers for the reproduction benches.  Every
// bench prints the paper's reported numbers next to the measured ones so
// the shape comparison (who wins, by what factor) is visible at a glance.
// Also hosts the steady-state timing harness (warmup + median-of-N); the
// JSON emitter the trajectory files use lives in serve/json.hpp (shared
// with the art9-serve HTTP front end) and is aliased back in below.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "serve/json.hpp"

namespace art9::bench {

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void rule() { std::printf("%s\n", std::string(72, '-').c_str()); }

/// "paper vs measured" row for a numeric metric.
inline void paper_row(const char* metric, double paper, double measured, const char* unit) {
  const double ratio = paper != 0.0 ? measured / paper : 0.0;
  std::printf("  %-34s paper %12.4g %-10s measured %12.4g  (x%.2f)\n", metric, paper, unit,
              measured, ratio);
}

inline void note(const std::string& text) { std::printf("  %s\n", text.c_str()); }

// --- steady-state timing ------------------------------------------------------

/// Median work-units-per-second over `reps` timed repetitions, after
/// `warmup` untimed runs (first-touch page faults, cache/branch-predictor
/// warm-in).  `fn` performs one complete run and returns its work-unit
/// count (e.g. retired instructions); the median makes one descheduled rep
/// harmless where a mean would not.
template <typename Fn>
[[nodiscard]] double median_rate(Fn&& fn, int warmup = 2, int reps = 5) {
  using clock = std::chrono::steady_clock;
  for (int i = 0; i < warmup; ++i) static_cast<void>(fn());
  std::vector<double> rates;
  rates.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const clock::time_point t0 = clock::now();
    const uint64_t units = fn();
    const std::chrono::duration<double> elapsed = clock::now() - t0;
    rates.push_back(elapsed.count() > 0.0 ? static_cast<double>(units) / elapsed.count() : 0.0);
  }
  const std::size_t mid = rates.size() / 2;
  std::nth_element(rates.begin(), rates.begin() + static_cast<std::ptrdiff_t>(mid), rates.end());
  return rates[mid];
}

// --- machine-readable output ---------------------------------------------------

/// The flat JSON object writer (moved to serve/json.hpp; write(path)
/// renders the same bytes as it always did — locked by
/// tests/serve/json_test.cpp).
using JsonObject = ::art9::json::JsonObject;

}  // namespace art9::bench
