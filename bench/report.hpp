// Shared table-rendering helpers for the reproduction benches.  Every
// bench prints the paper's reported numbers next to the measured ones so
// the shape comparison (who wins, by what factor) is visible at a glance.
#pragma once

#include <cstdio>
#include <string>

namespace art9::bench {

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void rule() { std::printf("%s\n", std::string(72, '-').c_str()); }

/// "paper vs measured" row for a numeric metric.
inline void paper_row(const char* metric, double paper, double measured, const char* unit) {
  const double ratio = paper != 0.0 ? measured / paper : 0.0;
  std::printf("  %-34s paper %12.4g %-10s measured %12.4g  (x%.2f)\n", metric, paper, unit,
              measured, ratio);
}

inline void note(const std::string& text) { std::printf("  %s\n", text.c_str()); }

}  // namespace art9::bench
