// Micro-benchmarks (google-benchmark): throughput of the ternary substrate
// primitives — word arithmetic, logic, the binary-coded-ternary emulation
// path, and instruction encode/decode.
#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "isa/encoding.hpp"
#include "ternary/arith.hpp"
#include "ternary/bct.hpp"
#include "ternary/random.hpp"
#include "ternary/word.hpp"

namespace {

using art9::ternary::BctWord9;
using art9::ternary::Word9;

std::vector<Word9> sample_words(std::size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Word9> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(art9::ternary::random_word<9>(rng));
  return out;
}

void BM_WordAdd(benchmark::State& state) {
  const auto words = sample_words(1024, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(words[i % 1024] + words[(i + 1) % 1024]);
    ++i;
  }
}
BENCHMARK(BM_WordAdd);

void BM_WordMultiply(benchmark::State& state) {
  const auto words = sample_words(1024, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(art9::ternary::multiply(words[i % 1024], words[(i + 1) % 1024]));
    ++i;
  }
}
BENCHMARK(BM_WordMultiply);

void BM_WordCompare(benchmark::State& state) {
  const auto words = sample_words(1024, 3);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Word9::compare(words[i % 1024], words[(i + 1) % 1024]));
    ++i;
  }
}
BENCHMARK(BM_WordCompare);

void BM_WordLogic(benchmark::State& state) {
  const auto words = sample_words(1024, 4);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(art9::ternary::txor(words[i % 1024], words[(i + 1) % 1024]));
    ++i;
  }
}
BENCHMARK(BM_WordLogic);

void BM_IntConversionRoundTrip(benchmark::State& state) {
  int64_t v = -9841;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Word9::from_int(v).to_int());
    v = v >= 9841 ? -9841 : v + 7;
  }
}
BENCHMARK(BM_IntConversionRoundTrip);

void BM_BctAdd(benchmark::State& state) {
  const auto words = sample_words(1024, 5);
  std::vector<BctWord9> enc;
  enc.reserve(words.size());
  for (const Word9& w : words) enc.push_back(BctWord9::encode(w));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BctWord9::add(enc[i % 1024], enc[(i + 1) % 1024]));
    ++i;
  }
}
BENCHMARK(BM_BctAdd);

void BM_BctLogic(benchmark::State& state) {
  const auto words = sample_words(1024, 6);
  std::vector<BctWord9> enc;
  enc.reserve(words.size());
  for (const Word9& w : words) enc.push_back(BctWord9::encode(w));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BctWord9::txor(enc[i % 1024], enc[(i + 1) % 1024]));
    ++i;
  }
}
BENCHMARK(BM_BctLogic);

void BM_EncodeDecode(benchmark::State& state) {
  using art9::isa::Instruction;
  using art9::isa::Opcode;
  std::vector<Instruction> insts;
  for (int ta = 0; ta < 9; ++ta) {
    for (int tb = 0; tb < 9; ++tb) {
      insts.push_back(Instruction{Opcode::kAdd, ta, tb, art9::ternary::kTritZ, 0});
      insts.push_back(Instruction{Opcode::kLoad, ta, tb, art9::ternary::kTritZ, 5});
    }
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(art9::isa::decode(art9::isa::encode(insts[i % insts.size()])));
    ++i;
  }
}
BENCHMARK(BM_EncodeDecode);

}  // namespace

BENCHMARK_MAIN();
