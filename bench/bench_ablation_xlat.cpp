// Ablation bench (ours): what the redundancy-checking stage of the
// software framework (paper Fig. 2) contributes — code size and cycles
// per benchmark, with the pass on and off.
#include <cstdio>

#include "core/benchmarks.hpp"
#include "report.hpp"
#include "rv32/rv32_assembler.hpp"
#include "sim/pipeline.hpp"
#include "xlat/framework.hpp"

int main() {
  using namespace art9;
  bench::heading("Ablation — the redundancy-checking stage (Fig. 2, last box)");
  std::printf("  %-12s | %7s %9s %9s %7s | %10s %10s\n", "benchmark", "rv32", "ART-9 w/",
              "ART-9 w/o", "removed", "cycles w/", "cycles w/o");
  bench::rule();

  for (const core::BenchmarkSources* b : core::all_benchmarks()) {
    const rv32::Rv32Program rp = rv32::assemble_rv32(b->rv32);

    xlat::SoftwareFrameworkOptions on;
    xlat::SoftwareFrameworkOptions off;
    off.redundancy_checking = false;
    const xlat::TranslationResult with = xlat::SoftwareFramework(on).translate(rp);
    const xlat::TranslationResult without = xlat::SoftwareFramework(off).translate(rp);

    sim::PipelineSimulator sim_with(with.program);
    sim::PipelineSimulator sim_without(without.program);
    const uint64_t cycles_with = sim_with.run().cycles;
    const uint64_t cycles_without = sim_without.run().cycles;

    std::printf("  %-12s | %7zu %9zu %9zu %7zu | %10llu %10llu\n", b->name.c_str(),
                rp.code.size(), with.program.code.size(), without.program.code.size(),
                with.stats.removed_redundant, static_cast<unsigned long long>(cycles_with),
                static_cast<unsigned long long>(cycles_without));
  }
  bench::rule();

  // Expansion-ratio summary (instruction mapping + operand conversion cost).
  std::printf("\n  translation statistics (redundancy checking on):\n");
  std::printf("  %-12s %9s %9s %9s %9s %9s\n", "benchmark", "rv32", "mapped", "final",
              "expansion", "spills");
  for (const core::BenchmarkSources* b : core::all_benchmarks()) {
    const xlat::TranslationResult r =
        xlat::SoftwareFramework().translate(rv32::assemble_rv32(b->rv32));
    std::printf("  %-12s %9zu %9zu %9zu %8.2fx %9zu\n", b->name.c_str(),
                r.stats.rv32_instructions, r.stats.mapped_instructions,
                r.stats.final_instructions, r.stats.expansion_ratio(),
                r.stats.spilled_registers);
  }
  bench::note("");
  bench::note("The paper reports the three-stage flow (mapping, operand conversion,");
  bench::note("redundancy checking) reaching 54% fewer memory cells than RV-32I on");
  bench::note("Dhrystone; this table isolates the last stage's contribution.");
  return 0;
}
