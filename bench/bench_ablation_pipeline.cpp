// Ablation bench (ours): price each microarchitectural decision of §IV-B —
// forwarding, branch-in-ID resolution, regfile write-through — in Dhrystone
// cycles AND in gates/delay on the CNTFET fabric.
#include <cstdio>

#include "core/benchmarks.hpp"
#include "report.hpp"
#include "rv32/rv32_assembler.hpp"
#include "sim/pipeline.hpp"
#include "tech/analyzer.hpp"
#include "tech/datapath.hpp"
#include "xlat/framework.hpp"

namespace {

struct Config {
  const char* name;
  art9::sim::PipelineConfig pipeline;
};

}  // namespace

int main() {
  using namespace art9;
  bench::heading("Ablation — pipeline mechanisms on Dhrystone (100 iterations)");

  xlat::SoftwareFramework sw;
  const xlat::TranslationResult dhry =
      sw.translate(rv32::assemble_rv32(core::dhrystone().rv32));

  std::vector<Config> configs;
  configs.push_back({"baseline (paper design)", {}});
  {
    sim::PipelineConfig c;
    c.ex_forwarding = false;
    configs.push_back({"no ALU forwarding", c});
  }
  {
    sim::PipelineConfig c;
    c.id_forwarding = false;
    configs.push_back({"no 1-trit cond forwarding", c});
  }
  {
    sim::PipelineConfig c;
    c.branch_in_id = false;
    configs.push_back({"branches resolve in EX", c});
  }
  {
    sim::PipelineConfig c;
    c.regfile_write_through = false;
    configs.push_back({"no regfile write-through", c});
  }
  {
    sim::PipelineConfig c;
    c.ex_forwarding = false;
    c.id_forwarding = false;
    c.branch_in_id = false;
    c.regfile_write_through = false;
    configs.push_back({"everything off", c});
  }
  {
    sim::PipelineConfig c;
    c.static_prediction = true;
    configs.push_back({"+ static prediction (ext.)", c});
  }

  uint64_t baseline_cycles = 0;
  std::printf("  %-28s %10s %8s %8s %8s %8s | %7s %9s\n", "configuration", "cycles", "CPI",
              "ld-use", "br-stall", "flushes", "gates", "clock");
  bench::rule();
  for (const Config& config : configs) {
    sim::PipelineSimulator sim(dhry.program, config.pipeline);
    const sim::SimStats stats = sim.run();
    if (baseline_cycles == 0) baseline_cycles = stats.cycles;

    tech::DatapathOptions dp;
    dp.ex_forwarding = config.pipeline.ex_forwarding;
    dp.branch_in_id = config.pipeline.branch_in_id;
    tech::GateLevelAnalyzer analyzer;
    const tech::AnalysisReport hwr =
        analyzer.analyze(tech::build_art9_design(dp), tech::Technology::cntfet32());

    std::printf("  %-28s %10llu %8.3f %8llu %8llu %8llu | %7.0f %6.0fMHz\n", config.name,
                static_cast<unsigned long long>(stats.cycles), stats.cpi(),
                static_cast<unsigned long long>(stats.stall_load_use),
                static_cast<unsigned long long>(stats.stall_raw + stats.stall_branch_hazard),
                static_cast<unsigned long long>(stats.flush_taken_branch), hwr.total_gates,
                hwr.max_clock_mhz);
  }
  bench::rule();
  bench::note("Reading: the paper's design point (row 1) buys its CPI with the");
  bench::note("forwarding muxes and the ID-stage branch unit; each ablation shows");
  bench::note("what that mechanism costs in cycles and saves in gates.");
  return 0;
}
