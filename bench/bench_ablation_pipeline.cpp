// Ablation bench (ours): price each microarchitectural decision of §IV-B —
// forwarding, branch-in-ID resolution, regfile write-through — in Dhrystone
// cycles AND in gates/delay on the CNTFET fabric.
//
// The sweep runs on the plane-packed pipeline (EngineKind::kPackedPipeline,
// ~2x the reference datapath's wall-clock), constructed through the engine
// facade; the baseline row is additionally replayed on the reference
// pipeline as a live parity column (the full-matrix equivalence is locked
// by tests/sim/packed_pipeline_test.cpp).
#include <cstdio>
#include <memory>

#include "core/benchmarks.hpp"
#include "report.hpp"
#include "rv32/rv32_assembler.hpp"
#include "sim/engine.hpp"
#include "tech/analyzer.hpp"
#include "tech/datapath.hpp"
#include "xlat/framework.hpp"

namespace {

struct Config {
  const char* name;
  art9::sim::PipelineConfig pipeline;
};

}  // namespace

int main() {
  using namespace art9;
  bench::heading("Ablation — pipeline mechanisms on Dhrystone (100 iterations)");

  xlat::SoftwareFramework sw;
  const xlat::TranslationResult dhry =
      sw.translate(rv32::assemble_rv32(core::dhrystone().rv32));

  std::vector<Config> configs;
  configs.push_back({"baseline (paper design)", {}});
  {
    sim::PipelineConfig c;
    c.ex_forwarding = false;
    configs.push_back({"no ALU forwarding", c});
  }
  {
    sim::PipelineConfig c;
    c.id_forwarding = false;
    configs.push_back({"no 1-trit cond forwarding", c});
  }
  {
    sim::PipelineConfig c;
    c.branch_in_id = false;
    configs.push_back({"branches resolve in EX", c});
  }
  {
    sim::PipelineConfig c;
    c.regfile_write_through = false;
    configs.push_back({"no regfile write-through", c});
  }
  {
    sim::PipelineConfig c;
    c.ex_forwarding = false;
    c.id_forwarding = false;
    c.branch_in_id = false;
    c.regfile_write_through = false;
    configs.push_back({"everything off", c});
  }
  {
    sim::PipelineConfig c;
    c.static_prediction = true;
    configs.push_back({"+ static prediction (ext.)", c});
  }

  const std::shared_ptr<const sim::DecodedImage> image = sim::decode(dhry.program);

  uint64_t baseline_cycles = 0;
  uint64_t reference_cycles = 0;  // baseline config on the reference datapath
  std::printf("  %-28s %10s %8s %8s %8s %8s | %7s %9s\n", "configuration", "cycles", "CPI",
              "ld-use", "br-stall", "flushes", "gates", "clock");
  bench::rule();
  for (const Config& config : configs) {
    sim::EngineOptions options;
    options.pipeline = config.pipeline;
    const std::unique_ptr<sim::Engine> engine =
        sim::make_engine(sim::EngineKind::kPackedPipeline, image, options);
    const sim::SimStats stats = engine->run_stats({});
    if (baseline_cycles == 0) {
      baseline_cycles = stats.cycles;
      // Parity column: the same config on the reference pipeline datapath.
      const std::unique_ptr<sim::Engine> reference =
          sim::make_engine(sim::EngineKind::kPipeline, image, options);
      reference_cycles = reference->run_stats({}).cycles;
    }

    tech::DatapathOptions dp;
    dp.ex_forwarding = config.pipeline.ex_forwarding;
    dp.branch_in_id = config.pipeline.branch_in_id;
    tech::GateLevelAnalyzer analyzer;
    const tech::AnalysisReport hwr =
        analyzer.analyze(tech::build_art9_design(dp), tech::Technology::cntfet32());

    std::printf("  %-28s %10llu %8.3f %8llu %8llu %8llu | %7.0f %6.0fMHz\n", config.name,
                static_cast<unsigned long long>(stats.cycles), stats.cpi(),
                static_cast<unsigned long long>(stats.stall_load_use),
                static_cast<unsigned long long>(stats.stall_raw + stats.stall_branch_hazard),
                static_cast<unsigned long long>(stats.flush_taken_branch), hwr.total_gates,
                hwr.max_clock_mhz);
  }
  bench::rule();
  std::printf("  parity: reference-pipeline baseline = %llu cycles (packed: %llu) — %s\n",
              static_cast<unsigned long long>(reference_cycles),
              static_cast<unsigned long long>(baseline_cycles),
              reference_cycles == baseline_cycles ? "identical" : "MISMATCH");
  bench::note("Reading: the paper's design point (row 1) buys its CPI with the");
  bench::note("forwarding muxes and the ID-stage branch unit; each ablation shows");
  bench::note("what that mechanism costs in cycles and saves in gates.");
  return reference_cycles == baseline_cycles ? 0 : 1;
}
