// Table IV reproduction: ART-9 prototype on 32 nm CNTFET ternary gates —
// gate count, power, and DMIPS/W via the full hardware-level framework.
#include <cstdio>

#include "core/benchmarks.hpp"
#include "core/hardware_framework.hpp"
#include "report.hpp"
#include "rv32/rv32_assembler.hpp"
#include "tech/estimator.hpp"
#include "xlat/framework.hpp"

int main() {
  using namespace art9;
  bench::heading("Table IV — implementation results using CNTFET ternary gates");

  xlat::SoftwareFramework sw;
  const xlat::TranslationResult dhry =
      sw.translate(rv32::assemble_rv32(core::dhrystone().rv32));
  core::HardwareFramework hw({}, tech::Technology::cntfet32());
  const core::EvaluationResult r = hw.evaluate(dhry.program, core::dhrystone().iterations);

  bench::paper_row("Voltage (V)", 0.9, r.analysis.voltage_v, "V");
  bench::paper_row("Total gates", 652, r.analysis.total_gates, "gates");
  bench::paper_row("Power", 42.7, r.analysis.power_w * 1e6, "uW");
  bench::paper_row("DMIPS/W", 3.06e6, r.estimate.dmips_per_watt, "DMIPS/W");
  bench::rule();
  std::printf("  clock from critical path: %.0f MHz (%.0f ps through the EX stage)\n",
              r.estimate.clock_mhz, r.analysis.critical_delay_ps);
  std::printf("  module breakdown (gate equivalents):\n");
  for (const auto& [name, gates] : r.analysis.module_area) {
    std::printf("    %-18s %6.0f\n", name.c_str(), gates);
  }
  bench::note("");
  bench::note(tech::summarize(r.estimate));
  return 0;
}
