// Micro-benchmarks (google-benchmark): simulator and framework throughput —
// how many simulated cycles/instructions per host second, and how fast the
// translation pipeline runs on the Dhrystone corpus.
//
// Engine benchmarks are registered generically over sim::EngineKind
// (BM_Engine/<kind>), so a new backend shows up here by existing; the
// SimulationService batch benchmark sweeps worker-pool widths.
//
// `--json[=path]` skips google-benchmark and instead runs every engine
// kind plus the thread-parallel batch under the warmup + median-of-N
// harness of bench/report.hpp, writing steps/s (and batch scaling) to
// BENCH_micro_sim.json so the perf trajectory stays machine-readable
// across PRs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/benchmarks.hpp"
#include "isa/assembler.hpp"
#include "report.hpp"
#include "rv32/rv32_assembler.hpp"
#include "rv32/rv32_decoded_image.hpp"
#include "rv32/rv32_sim.hpp"
#include "sim/engine.hpp"
#include "sim/service.hpp"
#include "xlat/framework.hpp"

namespace {

using namespace art9;

const isa::Program& dhrystone_art9() {
  static const isa::Program kProgram = [] {
    xlat::SoftwareFramework framework;
    return framework.translate(rv32::assemble_rv32(core::dhrystone().rv32)).program;
  }();
  return kProgram;
}

const std::shared_ptr<const sim::DecodedImage>& dhrystone_image() {
  static const std::shared_ptr<const sim::DecodedImage> kImage = sim::decode(dhrystone_art9());
  return kImage;
}

const std::shared_ptr<const rv32::Rv32DecodedImage>& dhrystone_rv32_image() {
  static const std::shared_ptr<const rv32::Rv32DecodedImage> kImage =
      rv32::decode(rv32::assemble_rv32(core::dhrystone().rv32));
  return kImage;
}

/// The Dhrystone image matching a kind's ISA: the rv32 kinds run the
/// source program, the ART-9 kinds its translation.
sim::EngineImage engine_image_for(sim::EngineKind kind) {
  if (sim::is_rv32(kind)) return dhrystone_rv32_image();
  return dhrystone_image();
}

// --- one benchmark per engine kind, registered generically -------------------
// Throughput counter is steps/s in the engine's own step unit: retired
// instructions for the functional kinds, clock cycles for the pipeline.

void BM_Engine(benchmark::State& state, sim::EngineKind kind) {
  uint64_t steps = 0;
  for (auto _ : state) {
    std::unique_ptr<sim::Engine> engine = sim::make_engine(kind, engine_image_for(kind));
    steps += engine->run_stats({}).cycles;
  }
  state.counters["steps/s"] =
      benchmark::Counter(static_cast<double>(steps), benchmark::Counter::kIsRate);
}

void BM_SimulationServiceDhrystone8(benchmark::State& state, unsigned threads) {
  // 8 Dhrystone scenarios sharing one decoded image, packed engines,
  // scheduled across `threads` workers.
  uint64_t instructions = 0;
  for (auto _ : state) {
    sim::SimulationService service(threads);
    for (int i = 0; i < 8; ++i) service.add(dhrystone_image(), sim::EngineKind::kPacked);
    for (const sim::RunResult& r : service.run_all()) instructions += r.stats.instructions;
  }
  state.counters["steps/s"] =
      benchmark::Counter(static_cast<double>(instructions), benchmark::Counter::kIsRate);
}

void register_engine_benches() {
  for (sim::EngineKind kind : sim::all_engine_kinds()) {
    const std::string name = "BM_Engine/" + std::string(sim::engine_kind_name(kind));
    benchmark::RegisterBenchmark(name.c_str(), BM_Engine, kind)->Unit(benchmark::kMillisecond);
  }
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> widths{1u, 2u};
  if (hw > 2) widths.push_back(hw);
  for (unsigned threads : widths) {
    const std::string name = "BM_SimulationServiceDhrystone8/threads:" + std::to_string(threads);
    benchmark::RegisterBenchmark(name.c_str(), BM_SimulationServiceDhrystone8, threads)
        ->Unit(benchmark::kMillisecond);
  }
}

void BM_LazyRv32Simulator(benchmark::State& state) {
  // The seed decode-on-fetch rv32 loop — the differential baseline the
  // pre-decoded BM_Engine/rv32 path is measured against.
  const rv32::Rv32Program program = rv32::assemble_rv32(core::dhrystone().rv32);
  uint64_t instructions = 0;
  for (auto _ : state) {
    rv32::LazyRv32Simulator sim(program);
    instructions += sim.run().instructions;
  }
  state.counters["sim_instr/s"] =
      benchmark::Counter(static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LazyRv32Simulator)->Unit(benchmark::kMillisecond);

void BM_TranslationPipeline(benchmark::State& state) {
  const rv32::Rv32Program program = rv32::assemble_rv32(core::dhrystone().rv32);
  for (auto _ : state) {
    xlat::SoftwareFramework framework;
    benchmark::DoNotOptimize(framework.translate(program));
  }
}
BENCHMARK(BM_TranslationPipeline)->Unit(benchmark::kMicrosecond);

void BM_Art9Assembler(benchmark::State& state) {
  const std::string source = R"(
main:
    LIMM T1, 100
    LIMM T2, 0
loop:
    ADD  T2, T1
    ADDI T1, -1
    MV   T3, T1
    COMP T3, T4
    BNE  T3, 0, loop
    HALT
)";
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa::assemble(source));
  }
}
BENCHMARK(BM_Art9Assembler)->Unit(benchmark::kMicrosecond);

// --- machine-readable perf trajectory (--json) -------------------------------

double engine_rate(sim::EngineKind kind) {
  return bench::median_rate([&] {
    std::unique_ptr<sim::Engine> engine = sim::make_engine(kind, engine_image_for(kind));
    return engine->run_stats({}).cycles;  // == instructions on functional kinds
  });
}

double batch_rate(unsigned threads, int jobs) {
  return bench::median_rate([&] {
    sim::SimulationService service(threads);
    for (int i = 0; i < jobs; ++i) service.add(dhrystone_image(), sim::EngineKind::kPacked);
    uint64_t instructions = 0;
    for (const sim::RunResult& r : service.run_all()) instructions += r.stats.instructions;
    return instructions;
  });
}

int run_json_report(const std::string& path) {
  bench::heading("engine steps/s — translated Dhrystone (single stream)");
  const double lazy = engine_rate(sim::EngineKind::kLazy);
  const double predecoded = engine_rate(sim::EngineKind::kFunctional);
  const double packed = engine_rate(sim::EngineKind::kPacked);
  const double pipeline = engine_rate(sim::EngineKind::kPipeline);
  const double pipeline_packed = engine_rate(sim::EngineKind::kPackedPipeline);
  bench::note("lazy decode-on-fetch:   " + std::to_string(lazy / 1e6) + " M steps/s");
  bench::note("pre-decoded dispatch:   " + std::to_string(predecoded / 1e6) + " M steps/s");
  bench::note("plane-packed SWAR:      " + std::to_string(packed / 1e6) + " M steps/s");
  bench::note("pipeline (cycles/s):    " + std::to_string(pipeline / 1e6) + " M steps/s");
  bench::note("packed pipeline:        " + std::to_string(pipeline_packed / 1e6) + " M steps/s");
  bench::note("packed / pre-decoded:   x" + std::to_string(packed / predecoded));
  bench::note("packed pipe / pipe:     x" + std::to_string(pipeline_packed / pipeline));

  bench::heading("rv32 engine steps/s — source Dhrystone (single stream)");
  const double rv32_predecoded = engine_rate(sim::EngineKind::kRv32);
  const double rv32_packed = engine_rate(sim::EngineKind::kRv32Packed);
  bench::note("rv32 pre-decoded:       " + std::to_string(rv32_predecoded / 1e6) + " M steps/s");
  bench::note("rv32 packed (21-trit):  " + std::to_string(rv32_packed / 1e6) + " M steps/s");
  bench::note("rv32 packed / predec:   x" + std::to_string(rv32_packed / rv32_predecoded));

  bench::heading("batch_parallel — SimulationService, 8 packed Dhrystone jobs");
  constexpr int kJobs = 8;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const double batch1 = batch_rate(1, kJobs);
  const double batch2 = batch_rate(2, kJobs);
  const double batchN = hw > 2 ? batch_rate(hw, kJobs) : (hw == 2 ? batch2 : batch1);
  bench::note("threads=1:              " + std::to_string(batch1 / 1e6) + " M steps/s");
  bench::note("threads=2:              " + std::to_string(batch2 / 1e6) + " M steps/s");
  bench::note("threads=" + std::to_string(hw) + ":              " + std::to_string(batchN / 1e6) +
              " M steps/s");
  bench::note("scaling (max vs 1):     x" + std::to_string(batch1 > 0.0 ? batchN / batch1 : 0.0));

  bench::JsonObject json;
  json.add("bench", "micro_sim");
  json.add("workload", "dhrystone_translated");
  json.add("metric", "steps_per_sec_median_of_5");
  json.add("lazy_steps_per_sec", lazy);
  json.add("predecoded_steps_per_sec", predecoded);
  json.add("packed_steps_per_sec", packed);
  json.add("pipeline_cycles_per_sec", pipeline);
  json.add("pipeline_packed_cycles_per_sec", pipeline_packed);
  json.add("packed_vs_predecoded", predecoded > 0.0 ? packed / predecoded : 0.0);
  json.add("predecoded_vs_lazy", lazy > 0.0 ? predecoded / lazy : 0.0);
  json.add("pipeline_packed_vs_pipeline", pipeline > 0.0 ? pipeline_packed / pipeline : 0.0);
  json.add("rv32_predecoded_steps_per_sec", rv32_predecoded);
  json.add("rv32_packed_steps_per_sec", rv32_packed);
  json.add("rv32_packed_vs_predecoded",
           rv32_predecoded > 0.0 ? rv32_packed / rv32_predecoded : 0.0);
  json.add("batch_parallel_jobs", static_cast<double>(kJobs));
  json.add("batch_parallel_engine", "packed");
  json.add("batch_threads_1_steps_per_sec", batch1);
  json.add("batch_threads_2_steps_per_sec", batch2);
  json.add("batch_threads_max", static_cast<double>(hw));
  json.add("batch_threads_max_steps_per_sec", batchN);
  json.add("batch_scaling_max_vs_1", batch1 > 0.0 ? batchN / batch1 : 0.0);
  if (!json.write(path)) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  bench::note("wrote " + path);
  return 0;
}

}  // namespace

// BENCHMARK_MAIN(), plus the --json[=path] trajectory mode.
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--json") return run_json_report("BENCH_micro_sim.json");
    if (arg.rfind("--json=", 0) == 0) return run_json_report(std::string(arg.substr(7)));
  }
  register_engine_benches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
