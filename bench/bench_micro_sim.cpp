// Micro-benchmarks (google-benchmark): simulator and framework throughput —
// how many simulated cycles/instructions per host second, and how fast the
// translation pipeline runs on the Dhrystone corpus.
//
// Engine benchmarks are registered generically over sim::EngineKind
// (BM_Engine/<kind>), so a new backend shows up here by existing; the
// SimulationService benchmarks sweep worker-pool widths over a shared-image
// Dhrystone batch and over the cross-ISA mixed batch (all four translated
// benchmarks plus their rv32 sources).
//
// `--json[=path]` skips google-benchmark and instead runs every engine
// kind plus the thread-parallel batches under the warmup + median-of-N
// harness of bench/report.hpp, writing steps/s, batch scaling, and the
// service fault-path overheads (checkpoint interval cost, cancellation
// latency) and the serve front end's HTTP round-trip throughput and
// image-cache amortization to BENCH_micro_sim.json so the perf
// trajectory stays machine-readable across PRs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/benchmarks.hpp"
#include "isa/assembler.hpp"
#include "report.hpp"
#include "rv32/rv32_assembler.hpp"
#include "rv32/rv32_decoded_image.hpp"
#include "rv32/rv32_sim.hpp"
#include "serve/server.hpp"
#include "sim/engine.hpp"
#include "sim/fleet.hpp"
#include "sim/service.hpp"
#include "xlat/framework.hpp"

namespace {

using namespace art9;

const isa::Program& dhrystone_art9() {
  static const isa::Program kProgram = [] {
    xlat::SoftwareFramework framework;
    return framework.translate(rv32::assemble_rv32(core::dhrystone().rv32)).program;
  }();
  return kProgram;
}

const std::shared_ptr<const sim::DecodedImage>& dhrystone_image() {
  static const std::shared_ptr<const sim::DecodedImage> kImage = sim::decode(dhrystone_art9());
  return kImage;
}

const std::shared_ptr<const rv32::Rv32DecodedImage>& dhrystone_rv32_image() {
  static const std::shared_ptr<const rv32::Rv32DecodedImage> kImage =
      rv32::decode(rv32::assemble_rv32(core::dhrystone().rv32));
  return kImage;
}

/// The Dhrystone image matching a kind's ISA: the rv32 kinds run the
/// source program, the ART-9 kinds its translation.
sim::EngineImage engine_image_for(sim::EngineKind kind) {
  if (sim::is_rv32(kind)) return dhrystone_rv32_image();
  return dhrystone_image();
}

/// The whole benchmark corpus, both ISAs: each of the four benchmarks as
/// its rv32 source image and its ART-9 translation — the PR 5 carry-over
/// cross-ISA batch workload (8 jobs).
struct MixedCorpus {
  std::vector<std::shared_ptr<const sim::DecodedImage>> art9;
  std::vector<std::shared_ptr<const rv32::Rv32DecodedImage>> rv32;
};

const MixedCorpus& mixed_corpus() {
  static const MixedCorpus kCorpus = [] {
    MixedCorpus corpus;
    xlat::SoftwareFramework framework;
    for (const core::BenchmarkSources* bench : core::all_benchmarks()) {
      const rv32::Rv32Program source = rv32::assemble_rv32(bench->rv32);
      corpus.rv32.push_back(rv32::decode(source));
      corpus.art9.push_back(sim::decode(framework.translate(source).program));
    }
    return corpus;
  }();
  return kCorpus;
}

/// A job batch over the mixed corpus: every benchmark on the packed ART-9
/// engine and on the rv32 reference engine.  Returns retired instructions.
uint64_t run_mixed_batch(unsigned threads) {
  const MixedCorpus& corpus = mixed_corpus();
  sim::SimulationService service(threads);
  for (const auto& image : corpus.art9) service.add(image, sim::EngineKind::kPacked);
  for (const auto& image : corpus.rv32) service.add(image, sim::EngineKind::kRv32);
  uint64_t instructions = 0;
  for (const sim::JobResult& r : service.run_all()) instructions += r.run.stats.instructions;
  return instructions;
}

// --- one benchmark per engine kind, registered generically -------------------
// Throughput counter is steps/s in the engine's own step unit: retired
// instructions for the functional kinds, clock cycles for the pipeline.

void BM_Engine(benchmark::State& state, sim::EngineKind kind) {
  uint64_t steps = 0;
  for (auto _ : state) {
    std::unique_ptr<sim::Engine> engine = sim::make_engine(kind, engine_image_for(kind));
    steps += engine->run_stats({}).cycles;
  }
  state.counters["steps/s"] =
      benchmark::Counter(static_cast<double>(steps), benchmark::Counter::kIsRate);
}

void BM_SimulationServiceDhrystone8(benchmark::State& state, unsigned threads) {
  // 8 Dhrystone scenarios sharing one decoded image, packed engines,
  // scheduled across `threads` workers.
  uint64_t instructions = 0;
  for (auto _ : state) {
    sim::SimulationService service(threads);
    for (int i = 0; i < 8; ++i) service.add(dhrystone_image(), sim::EngineKind::kPacked);
    for (const sim::JobResult& r : service.run_all()) instructions += r.run.stats.instructions;
  }
  state.counters["steps/s"] =
      benchmark::Counter(static_cast<double>(instructions), benchmark::Counter::kIsRate);
}

void BM_SimulationServiceMixedISA(benchmark::State& state, unsigned threads) {
  // The cross-ISA batch: all four benchmarks, each as a packed ART-9
  // translation job and an rv32 reference job, across `threads` workers.
  uint64_t instructions = 0;
  for (auto _ : state) instructions += run_mixed_batch(threads);
  state.counters["steps/s"] =
      benchmark::Counter(static_cast<double>(instructions), benchmark::Counter::kIsRate);
}

void register_engine_benches() {
  for (sim::EngineKind kind : sim::all_engine_kinds()) {
    const std::string name = "BM_Engine/" + std::string(sim::engine_kind_name(kind));
    benchmark::RegisterBenchmark(name.c_str(), BM_Engine, kind)->Unit(benchmark::kMillisecond);
  }
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> widths{1u, 2u};
  if (hw > 2) widths.push_back(hw);
  for (unsigned threads : widths) {
    const std::string name = "BM_SimulationServiceDhrystone8/threads:" + std::to_string(threads);
    benchmark::RegisterBenchmark(name.c_str(), BM_SimulationServiceDhrystone8, threads)
        ->Unit(benchmark::kMillisecond);
  }
  for (unsigned threads : widths) {
    const std::string name = "BM_SimulationServiceMixedISA/threads:" + std::to_string(threads);
    benchmark::RegisterBenchmark(name.c_str(), BM_SimulationServiceMixedISA, threads)
        ->Unit(benchmark::kMillisecond);
  }
}

void BM_LazyRv32Simulator(benchmark::State& state) {
  // The seed decode-on-fetch rv32 loop — the differential baseline the
  // pre-decoded BM_Engine/rv32 path is measured against.
  const rv32::Rv32Program program = rv32::assemble_rv32(core::dhrystone().rv32);
  uint64_t instructions = 0;
  for (auto _ : state) {
    rv32::LazyRv32Simulator sim(program);
    instructions += sim.run().instructions;
  }
  state.counters["sim_instr/s"] =
      benchmark::Counter(static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LazyRv32Simulator)->Unit(benchmark::kMillisecond);

void BM_TranslationPipeline(benchmark::State& state) {
  const rv32::Rv32Program program = rv32::assemble_rv32(core::dhrystone().rv32);
  for (auto _ : state) {
    xlat::SoftwareFramework framework;
    benchmark::DoNotOptimize(framework.translate(program));
  }
}
BENCHMARK(BM_TranslationPipeline)->Unit(benchmark::kMicrosecond);

void BM_Art9Assembler(benchmark::State& state) {
  const std::string source = R"(
main:
    LIMM T1, 100
    LIMM T2, 0
loop:
    ADD  T2, T1
    ADDI T1, -1
    MV   T3, T1
    COMP T3, T4
    BNE  T3, 0, loop
    HALT
)";
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa::assemble(source));
  }
}
BENCHMARK(BM_Art9Assembler)->Unit(benchmark::kMicrosecond);

// --- machine-readable perf trajectory (--json) -------------------------------

double engine_rate(sim::EngineKind kind) {
  return bench::median_rate([&] {
    std::unique_ptr<sim::Engine> engine = sim::make_engine(kind, engine_image_for(kind));
    return engine->run_stats({}).cycles;  // == instructions on functional kinds
  });
}

/// Aggregate fleet throughput: `lanes` Dhrystone machines advanced to
/// completion by one bit-sliced simulator, instructions summed over all
/// lanes — the SIMD-across-scenarios number the fleet tier exists for.
double fleet_rate(unsigned lanes) {
  return bench::median_rate([&] {
    sim::FleetSimulator fleet(dhrystone_image(), lanes);
    const std::vector<uint64_t> budgets(lanes, 100'000'000);
    uint64_t instructions = 0;
    for (const sim::FleetSimulator::LaneProgress& p : fleet.advance(budgets)) {
      instructions += p.instructions;
    }
    return instructions;
  });
}

/// Cohort scheduling end to end: `jobs` same-image fleet jobs packed
/// transparently by run_all — measured in jobs resolved per second.
double cohort_jobs_rate(unsigned threads, int jobs) {
  return bench::median_rate([&] {
    sim::SimulationService service(threads);
    for (int i = 0; i < jobs; ++i) service.add(dhrystone_image(), sim::EngineKind::kFleet);
    uint64_t completed = 0;
    for (const sim::JobResult& r : service.run_all()) {
      completed += r.outcome == sim::JobOutcome::kCompleted ? 1 : 0;
    }
    return completed;
  });
}

double batch_rate(unsigned threads, int jobs) {
  return bench::median_rate([&] {
    sim::SimulationService service(threads);
    for (int i = 0; i < jobs; ++i) service.add(dhrystone_image(), sim::EngineKind::kPacked);
    uint64_t instructions = 0;
    for (const sim::JobResult& r : service.run_all()) instructions += r.run.stats.instructions;
    return instructions;
  });
}

double mixed_batch_rate(unsigned threads) {
  return bench::median_rate([&] { return run_mixed_batch(threads); });
}

/// Dhrystone through the service with a checkpoint every `every` steps
/// (0 = checkpointing off) — the fault-path overhead numerator/denominator.
double checkpointed_rate(uint64_t every) {
  return bench::median_rate([&] {
    sim::SimulationService service(1);
    sim::JobControls controls;
    controls.checkpoint_every = every;
    const sim::JobHandle handle =
        service.submit(dhrystone_image(), sim::EngineKind::kPacked, {}, controls);
    return handle.result().run.stats.instructions;
  });
}

/// Median seconds from cancel() to resolution of a spinning job — the
/// service's cooperative cancellation latency (bounded by the slice
/// length; measured at the default slice).
double cancel_latency_seconds() {
  using clock = std::chrono::steady_clock;
  const std::shared_ptr<const sim::DecodedImage> spin =
      sim::decode(isa::assemble("loop:\n  ADDI T1, 1\n  JAL T0, loop\n"));
  std::vector<double> samples;
  for (int i = 0; i < 5; ++i) {
    sim::SimulationService service(1);
    sim::JobHandle handle =
        service.submit(spin, sim::EngineKind::kPacked, sim::RunOptions{1'000'000'000'000});
    while (!handle.started()) std::this_thread::yield();
    const clock::time_point t0 = clock::now();
    handle.cancel();
    handle.wait();
    samples.push_back(std::chrono::duration<double>(clock::now() - t0).count());
  }
  const std::size_t mid = samples.size() / 2;
  std::nth_element(samples.begin(), samples.begin() + static_cast<std::ptrdiff_t>(mid),
                   samples.end());
  return samples[mid];
}

/// One pass over the HTTP front end on an in-process loopback server:
/// image-upload latency cold (pipeline run) vs cached (content-hash hit),
/// and the end-to-end job round-trip rate (POST /v1/jobs + poll to done).
struct ServeStats {
  double first_post_ms = 0.0;    // upload that runs the assemble pipeline
  double cached_post_ms = 0.0;   // identical re-upload (cache hit)
  double jobs_per_sec = 0.0;     // submit+poll round trips, all workers busy
  uint64_t cache_hits = 0;
};

ServeStats serve_round_trips(unsigned threads, int jobs, uint64_t steps) {
  using Clock = std::chrono::steady_clock;
  const auto ms_since = [](Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  };

  serve::SimulationServer::Options options;
  options.service_threads = threads;
  serve::SimulationServer server(options);
  server.start();
  serve::HttpClient client("127.0.0.1", server.port());
  const std::string source(core::dhrystone().rv32);

  ServeStats stats;
  auto start = Clock::now();
  const serve::HttpResponse first = client.post("/v1/images?format=rv32", source);
  stats.first_post_ms = ms_since(start);
  start = Clock::now();
  (void)client.post("/v1/images?format=rv32", source);
  stats.cached_post_ms = ms_since(start);
  const std::string image = first.body.substr(8, 16);  // {"id": "<16 hex>"

  const std::string request = "{\"image\": \"" + image +
                              "\", \"engine\": \"rv32\", \"max_steps\": " +
                              std::to_string(steps) + "}";
  std::vector<std::string> pending;
  start = Clock::now();
  for (int j = 0; j < jobs; ++j) {
    const serve::HttpResponse submitted = client.post("/v1/jobs", request);
    pending.push_back("/v1/jobs/" + std::to_string(std::atoll(submitted.body.c_str() + 8)));
  }
  while (!pending.empty()) {
    for (std::size_t i = 0; i < pending.size();) {
      if (client.get(pending[i]).body.find("\"state\": \"done\"") != std::string::npos) {
        pending[i] = pending.back();
        pending.pop_back();
      } else {
        ++i;
      }
    }
  }
  const double wall = ms_since(start) / 1e3;
  stats.jobs_per_sec = wall > 0.0 ? jobs / wall : 0.0;
  stats.cache_hits = server.cache().stats().hits;
  server.stop();
  return stats;
}

int run_json_report(const std::string& path) {
  bench::heading("engine steps/s — translated Dhrystone (single stream)");
  const double lazy = engine_rate(sim::EngineKind::kLazy);
  const double predecoded = engine_rate(sim::EngineKind::kFunctional);
  const double packed = engine_rate(sim::EngineKind::kPacked);
  const double superblock = engine_rate(sim::EngineKind::kSuperblock);
  const double pipeline = engine_rate(sim::EngineKind::kPipeline);
  const double pipeline_packed = engine_rate(sim::EngineKind::kPackedPipeline);
  bench::note("lazy decode-on-fetch:   " + std::to_string(lazy / 1e6) + " M steps/s");
  bench::note("pre-decoded dispatch:   " + std::to_string(predecoded / 1e6) + " M steps/s");
  bench::note("plane-packed SWAR:      " + std::to_string(packed / 1e6) + " M steps/s");
  bench::note("superblock tier:        " + std::to_string(superblock / 1e6) + " M steps/s");
  bench::note("pipeline (cycles/s):    " + std::to_string(pipeline / 1e6) + " M steps/s");
  bench::note("packed pipeline:        " + std::to_string(pipeline_packed / 1e6) + " M steps/s");
  bench::note("packed / pre-decoded:   x" + std::to_string(packed / predecoded));
  bench::note("superblock / packed:    x" + std::to_string(superblock / packed));
  bench::note("packed pipe / pipe:     x" + std::to_string(pipeline_packed / pipeline));

  bench::heading("rv32 engine steps/s — source Dhrystone (single stream)");
  const double rv32_predecoded = engine_rate(sim::EngineKind::kRv32);
  const double rv32_superblock = engine_rate(sim::EngineKind::kRv32Superblock);
  const double rv32_packed = engine_rate(sim::EngineKind::kRv32Packed);
  bench::note("rv32 pre-decoded:       " + std::to_string(rv32_predecoded / 1e6) + " M steps/s");
  bench::note("rv32 superblock:        " + std::to_string(rv32_superblock / 1e6) + " M steps/s");
  bench::note("rv32 packed (21-trit):  " + std::to_string(rv32_packed / 1e6) + " M steps/s");
  bench::note("rv32 superblk / predec: x" + std::to_string(rv32_superblock / rv32_predecoded));
  bench::note("rv32 packed / predec:   x" + std::to_string(rv32_packed / rv32_predecoded));

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  bench::heading("fleet — bit-sliced cohort, 32 Dhrystone machines per plane word");
  constexpr unsigned kFleetLanes = sim::FleetSimulator::kMaxLanes;
  const double fleet_single = engine_rate(sim::EngineKind::kFleet);
  const double fleet = fleet_rate(kFleetLanes);
  constexpr int kCohortJobs = 64;
  const double cohort_jobs = cohort_jobs_rate(hw, kCohortJobs);
  bench::note("fleet (1 lane):         " + std::to_string(fleet_single / 1e6) + " M steps/s");
  bench::note("fleet (" + std::to_string(kFleetLanes) +
              " lanes, aggregate): " + std::to_string(fleet / 1e6) + " M steps/s");
  bench::note("fleet / packed:         x" + std::to_string(packed > 0.0 ? fleet / packed : 0.0));
  bench::note("fleet / superblock:     x" +
              std::to_string(superblock > 0.0 ? fleet / superblock : 0.0));
  bench::note("cohort round trips:     " + std::to_string(cohort_jobs) + " jobs/s (" +
              std::to_string(kCohortJobs) + " Dhrystones via run_all packing)");

  bench::heading("batch_parallel — SimulationService, 8 packed Dhrystone jobs");
  constexpr int kJobs = 8;
  const double batch1 = batch_rate(1, kJobs);
  const double batch2 = batch_rate(2, kJobs);
  const double batchN = hw > 2 ? batch_rate(hw, kJobs) : (hw == 2 ? batch2 : batch1);
  bench::note("threads=1:              " + std::to_string(batch1 / 1e6) + " M steps/s");
  bench::note("threads=2:              " + std::to_string(batch2 / 1e6) + " M steps/s");
  bench::note("threads=" + std::to_string(hw) + ":              " + std::to_string(batchN / 1e6) +
              " M steps/s");
  bench::note("scaling (max vs 1):     x" + std::to_string(batch1 > 0.0 ? batchN / batch1 : 0.0));

  bench::heading("mixed_isa_batch — 4 benchmarks x (packed ART-9 + rv32), 8 jobs");
  const double mixed1 = mixed_batch_rate(1);
  const double mixedN = hw > 1 ? mixed_batch_rate(hw) : mixed1;
  bench::note("threads=1:              " + std::to_string(mixed1 / 1e6) + " M steps/s");
  bench::note("threads=" + std::to_string(hw) + ":              " + std::to_string(mixedN / 1e6) +
              " M steps/s");
  bench::note("scaling (max vs 1):     x" + std::to_string(mixed1 > 0.0 ? mixedN / mixed1 : 0.0));

  bench::heading("service fault-path overheads");
  constexpr uint64_t kCheckpointEvery = 50'000;
  const double no_checkpoint = checkpointed_rate(0);
  const double with_checkpoint = checkpointed_rate(kCheckpointEvery);
  const double checkpoint_cost =
      no_checkpoint > 0.0 ? 1.0 - with_checkpoint / no_checkpoint : 0.0;
  const double cancel_latency = cancel_latency_seconds();
  bench::note("no checkpoints:         " + std::to_string(no_checkpoint / 1e6) + " M steps/s");
  bench::note("checkpoint every " + std::to_string(kCheckpointEvery) + ": " +
              std::to_string(with_checkpoint / 1e6) + " M steps/s");
  bench::note("checkpoint cost:        " + std::to_string(checkpoint_cost * 100.0) + " %");
  bench::note("cancel latency:         " + std::to_string(cancel_latency * 1e3) + " ms");

  bench::heading("serve — HTTP front end round trips (in-process loopback)");
  constexpr int kServeJobs = 32;
  constexpr uint64_t kServeSteps = 20'000;
  const ServeStats serve = serve_round_trips(hw, kServeJobs, kServeSteps);
  bench::note("image upload (cold):    " + std::to_string(serve.first_post_ms) + " ms");
  bench::note("image upload (cached):  " + std::to_string(serve.cached_post_ms) + " ms");
  bench::note("cache amortization:     x" +
              std::to_string(serve.cached_post_ms > 0.0
                                 ? serve.first_post_ms / serve.cached_post_ms
                                 : 0.0));
  bench::note("job round trips:        " + std::to_string(serve.jobs_per_sec) + " jobs/s (" +
              std::to_string(kServeJobs) + " x " + std::to_string(kServeSteps) + " steps)");

  bench::JsonObject json;
  json.add("bench", "micro_sim");
  json.add("workload", "dhrystone_translated");
  json.add("metric", "steps_per_sec_median_of_5");
  json.add("lazy_steps_per_sec", lazy);
  json.add("predecoded_steps_per_sec", predecoded);
  json.add("packed_steps_per_sec", packed);
  json.add("superblock_steps_per_sec", superblock);
  json.add("pipeline_cycles_per_sec", pipeline);
  json.add("pipeline_packed_cycles_per_sec", pipeline_packed);
  json.add("packed_vs_predecoded", predecoded > 0.0 ? packed / predecoded : 0.0);
  json.add("predecoded_vs_lazy", lazy > 0.0 ? predecoded / lazy : 0.0);
  json.add("superblock_vs_packed", packed > 0.0 ? superblock / packed : 0.0);
  json.add("pipeline_packed_vs_pipeline", pipeline > 0.0 ? pipeline_packed / pipeline : 0.0);
  json.add("rv32_predecoded_steps_per_sec", rv32_predecoded);
  json.add("rv32_superblock_steps_per_sec", rv32_superblock);
  json.add("rv32_packed_steps_per_sec", rv32_packed);
  json.add("rv32_superblock_vs_predecoded",
           rv32_predecoded > 0.0 ? rv32_superblock / rv32_predecoded : 0.0);
  json.add("rv32_packed_vs_predecoded",
           rv32_predecoded > 0.0 ? rv32_packed / rv32_predecoded : 0.0);
  json.add("host_hw_concurrency", static_cast<double>(hw));
  json.add("fleet_lanes", static_cast<double>(kFleetLanes));
  json.add("fleet_steps_per_sec", fleet);
  json.add("fleet_single_lane_steps_per_sec", fleet_single);
  json.add("fleet_vs_packed", packed > 0.0 ? fleet / packed : 0.0);
  json.add("fleet_vs_superblock", superblock > 0.0 ? fleet / superblock : 0.0);
  json.add("cohort_jobs", static_cast<double>(kCohortJobs));
  json.add("cohort_jobs_per_sec", cohort_jobs);
  json.add("batch_parallel_jobs", static_cast<double>(kJobs));
  json.add("batch_parallel_engine", "packed");
  json.add("batch_threads_1_steps_per_sec", batch1);
  json.add("batch_threads_2_steps_per_sec", batch2);
  json.add("batch_threads_max", static_cast<double>(hw));
  json.add("batch_threads_max_steps_per_sec", batchN);
  json.add("batch_scaling_max_vs_1", batch1 > 0.0 ? batchN / batch1 : 0.0);
  json.add("mixed_isa_batch_jobs", static_cast<double>(mixed_corpus().art9.size() * 2));
  json.add("mixed_isa_batch_threads_1_steps_per_sec", mixed1);
  json.add("mixed_isa_batch_threads_max_steps_per_sec", mixedN);
  json.add("mixed_isa_batch_scaling_max_vs_1", mixed1 > 0.0 ? mixedN / mixed1 : 0.0);
  json.add("service_checkpoint_interval_steps", static_cast<double>(kCheckpointEvery));
  json.add("service_no_checkpoint_steps_per_sec", no_checkpoint);
  json.add("service_checkpoint_steps_per_sec", with_checkpoint);
  json.add("service_checkpoint_cost_fraction", checkpoint_cost);
  json.add("service_cancel_latency_ms", cancel_latency * 1e3);
  json.add("serve_jobs", static_cast<double>(kServeJobs));
  json.add("serve_job_steps", static_cast<double>(kServeSteps));
  json.add("serve_jobs_per_sec", serve.jobs_per_sec);
  json.add("serve_image_post_cold_ms", serve.first_post_ms);
  json.add("serve_image_post_cached_ms", serve.cached_post_ms);
  json.add("serve_cache_hits", static_cast<double>(serve.cache_hits));
  if (!json.write(path)) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  bench::note("wrote " + path);
  return 0;
}

}  // namespace

// BENCHMARK_MAIN(), plus the --json[=path] trajectory mode.
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--json") return run_json_report("BENCH_micro_sim.json");
    if (arg.rfind("--json=", 0) == 0) return run_json_report(std::string(arg.substr(7)));
  }
  register_engine_benches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
