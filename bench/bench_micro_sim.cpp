// Micro-benchmarks (google-benchmark): simulator and framework throughput —
// how many simulated cycles/instructions per host second, and how fast the
// translation pipeline runs on the Dhrystone corpus.
//
// `--json[=path]` skips google-benchmark and instead runs the three
// functional execution paths (lazy decode-on-fetch, pre-decoded dispatch,
// plane-packed SWAR) under the warmup + median-of-N harness of
// bench/report.hpp, writing steps/s to BENCH_micro_sim.json so the perf
// trajectory stays machine-readable across PRs.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <string_view>

#include "core/benchmarks.hpp"
#include "isa/assembler.hpp"
#include "report.hpp"
#include "rv32/rv32_assembler.hpp"
#include "rv32/rv32_sim.hpp"
#include "sim/batch_runner.hpp"
#include "sim/decoded_image.hpp"
#include "sim/functional_sim.hpp"
#include "sim/packed_sim.hpp"
#include "sim/pipeline.hpp"
#include "xlat/framework.hpp"

namespace {

using namespace art9;

const isa::Program& dhrystone_art9() {
  static const isa::Program kProgram = [] {
    xlat::SoftwareFramework framework;
    return framework.translate(rv32::assemble_rv32(core::dhrystone().rv32)).program;
  }();
  return kProgram;
}

const std::shared_ptr<const sim::DecodedImage>& dhrystone_image() {
  static const std::shared_ptr<const sim::DecodedImage> kImage = sim::decode(dhrystone_art9());
  return kImage;
}

void BM_PipelineSimulator(benchmark::State& state) {
  uint64_t cycles = 0;
  for (auto _ : state) {
    sim::PipelineSimulator sim(dhrystone_image());
    cycles += sim.run().cycles;
  }
  state.counters["steps/s"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PipelineSimulator)->Unit(benchmark::kMillisecond);

// --- the dispatch fast-path comparison on the Dhrystone workload ------------
// "Lazy" is the seed's decode-on-fetch loop (validity branch + spec lookup
// + PC re-encode per step); "PreDecoded" is the eager dispatch-table path.
// Compare the steps/s counters of the two benchmarks.

void BM_FunctionalSimulatorLazy(benchmark::State& state) {
  uint64_t instructions = 0;
  for (auto _ : state) {
    sim::LazyFunctionalSimulator sim(dhrystone_art9());
    instructions += sim.run().instructions;
  }
  state.counters["steps/s"] =
      benchmark::Counter(static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalSimulatorLazy)->Unit(benchmark::kMillisecond);

void BM_FunctionalSimulatorPreDecoded(benchmark::State& state) {
  uint64_t instructions = 0;
  for (auto _ : state) {
    sim::FunctionalSimulator sim(dhrystone_image());
    instructions += sim.run().instructions;
  }
  state.counters["steps/s"] =
      benchmark::Counter(static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalSimulatorPreDecoded)->Unit(benchmark::kMillisecond);

void BM_FunctionalSimulatorPacked(benchmark::State& state) {
  uint64_t instructions = 0;
  for (auto _ : state) {
    sim::PackedFunctionalSimulator sim(dhrystone_image());
    instructions += sim.run().instructions;
  }
  state.counters["steps/s"] =
      benchmark::Counter(static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalSimulatorPacked)->Unit(benchmark::kMillisecond);

void BM_BatchRunnerDhrystone8(benchmark::State& state) {
  // 8 back-to-back Dhrystone scenarios sharing one decoded image.
  uint64_t instructions = 0;
  for (auto _ : state) {
    sim::BatchRunner batch;
    for (int i = 0; i < 8; ++i) batch.add(dhrystone_image());
    for (const sim::BatchRunner::Result& r : batch.run_all()) {
      instructions += r.stats.instructions;
    }
  }
  state.counters["steps/s"] =
      benchmark::Counter(static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchRunnerDhrystone8)->Unit(benchmark::kMillisecond);

void BM_Rv32Simulator(benchmark::State& state) {
  const rv32::Rv32Program program = rv32::assemble_rv32(core::dhrystone().rv32);
  uint64_t instructions = 0;
  for (auto _ : state) {
    rv32::Rv32Simulator sim(program);
    instructions += sim.run().instructions;
  }
  state.counters["sim_instr/s"] =
      benchmark::Counter(static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Rv32Simulator)->Unit(benchmark::kMillisecond);

void BM_TranslationPipeline(benchmark::State& state) {
  const rv32::Rv32Program program = rv32::assemble_rv32(core::dhrystone().rv32);
  for (auto _ : state) {
    xlat::SoftwareFramework framework;
    benchmark::DoNotOptimize(framework.translate(program));
  }
}
BENCHMARK(BM_TranslationPipeline)->Unit(benchmark::kMicrosecond);

void BM_Art9Assembler(benchmark::State& state) {
  const std::string source = R"(
main:
    LIMM T1, 100
    LIMM T2, 0
loop:
    ADD  T2, T1
    ADDI T1, -1
    MV   T3, T1
    COMP T3, T4
    BNE  T3, 0, loop
    HALT
)";
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa::assemble(source));
  }
}
BENCHMARK(BM_Art9Assembler)->Unit(benchmark::kMicrosecond);

// --- machine-readable perf trajectory (--json) -------------------------------

int run_json_report(const std::string& path) {
  const std::shared_ptr<const sim::DecodedImage>& image = dhrystone_image();

  bench::heading("functional execution paths — translated Dhrystone");
  const double lazy = bench::median_rate([&] {
    sim::LazyFunctionalSimulator sim(dhrystone_art9());
    return sim.run().instructions;
  });
  const double predecoded = bench::median_rate([&] {
    sim::FunctionalSimulator sim(image);
    return sim.run().instructions;
  });
  const double packed = bench::median_rate([&] {
    sim::PackedFunctionalSimulator sim(image);
    return sim.run().instructions;
  });
  bench::note("lazy decode-on-fetch:   " + std::to_string(lazy / 1e6) + " M steps/s");
  bench::note("pre-decoded dispatch:   " + std::to_string(predecoded / 1e6) + " M steps/s");
  bench::note("plane-packed SWAR:      " + std::to_string(packed / 1e6) + " M steps/s");
  bench::note("packed / pre-decoded:   x" + std::to_string(packed / predecoded));

  bench::JsonObject json;
  json.add("bench", "micro_sim");
  json.add("workload", "dhrystone_translated");
  json.add("metric", "steps_per_sec_median_of_5");
  json.add("lazy_steps_per_sec", lazy);
  json.add("predecoded_steps_per_sec", predecoded);
  json.add("packed_steps_per_sec", packed);
  json.add("packed_vs_predecoded", predecoded > 0.0 ? packed / predecoded : 0.0);
  json.add("predecoded_vs_lazy", lazy > 0.0 ? predecoded / lazy : 0.0);
  if (!json.write(path)) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  bench::note("wrote " + path);
  return 0;
}

}  // namespace

// BENCHMARK_MAIN(), plus the --json[=path] trajectory mode.
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--json") return run_json_report("BENCH_micro_sim.json");
    if (arg.rfind("--json=", 0) == 0) return run_json_report(std::string(arg.substr(7)));
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
