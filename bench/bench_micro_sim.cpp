// Micro-benchmarks (google-benchmark): simulator and framework throughput —
// how many simulated cycles/instructions per host second, and how fast the
// translation pipeline runs on the Dhrystone corpus.
#include <benchmark/benchmark.h>

#include "core/benchmarks.hpp"
#include "isa/assembler.hpp"
#include "rv32/rv32_assembler.hpp"
#include "rv32/rv32_sim.hpp"
#include "sim/functional_sim.hpp"
#include "sim/pipeline.hpp"
#include "xlat/framework.hpp"

namespace {

using namespace art9;

const isa::Program& dhrystone_art9() {
  static const isa::Program kProgram = [] {
    xlat::SoftwareFramework framework;
    return framework.translate(rv32::assemble_rv32(core::dhrystone().rv32)).program;
  }();
  return kProgram;
}

void BM_PipelineSimulator(benchmark::State& state) {
  uint64_t cycles = 0;
  for (auto _ : state) {
    sim::PipelineSimulator sim(dhrystone_art9());
    cycles += sim.run().cycles;
  }
  state.counters["sim_cycles/s"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PipelineSimulator)->Unit(benchmark::kMillisecond);

void BM_FunctionalSimulator(benchmark::State& state) {
  uint64_t instructions = 0;
  for (auto _ : state) {
    sim::FunctionalSimulator sim(dhrystone_art9());
    instructions += sim.run().instructions;
  }
  state.counters["sim_instr/s"] =
      benchmark::Counter(static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalSimulator)->Unit(benchmark::kMillisecond);

void BM_Rv32Simulator(benchmark::State& state) {
  const rv32::Rv32Program program = rv32::assemble_rv32(core::dhrystone().rv32);
  uint64_t instructions = 0;
  for (auto _ : state) {
    rv32::Rv32Simulator sim(program);
    instructions += sim.run().instructions;
  }
  state.counters["sim_instr/s"] =
      benchmark::Counter(static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Rv32Simulator)->Unit(benchmark::kMillisecond);

void BM_TranslationPipeline(benchmark::State& state) {
  const rv32::Rv32Program program = rv32::assemble_rv32(core::dhrystone().rv32);
  for (auto _ : state) {
    xlat::SoftwareFramework framework;
    benchmark::DoNotOptimize(framework.translate(program));
  }
}
BENCHMARK(BM_TranslationPipeline)->Unit(benchmark::kMicrosecond);

void BM_Art9Assembler(benchmark::State& state) {
  const std::string source = R"(
main:
    LIMM T1, 100
    LIMM T2, 0
loop:
    ADD  T2, T1
    ADDI T1, -1
    MV   T3, T1
    COMP T3, T4
    BNE  T3, 0, loop
    HALT
)";
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa::assemble(source));
  }
}
BENCHMARK(BM_Art9Assembler)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
