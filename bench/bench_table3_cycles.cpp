// Table III reproduction: processing cycles of the four test programs on
// the pipelined ART-9 core vs the PicoRV32 cycle model.
#include <cstdio>

#include "core/benchmarks.hpp"
#include "report.hpp"
#include "rv32/cycle_models.hpp"
#include "rv32/rv32_assembler.hpp"
#include "sim/engine.hpp"
#include "xlat/framework.hpp"

namespace {

struct PaperRow {
  const char* name;
  double art9;
  double pico;
};

constexpr PaperRow kPaper[] = {
    {"bubble-sort", 2432, 9227},
    {"gemm", 10748, 11290},
    {"sobel", 7822, 18250},
    {"dhrystone", 134200, 186607},
};

}  // namespace

int main() {
  using namespace art9;
  bench::heading("Table III — processing cycles for different test programs");
  std::printf("  %-12s | %11s %11s | %11s %11s | %8s\n", "benchmark", "ART-9 meas",
              "ART-9 paper", "Pico meas", "Pico paper", "speedup");
  bench::rule();

  int index = 0;
  for (const core::BenchmarkSources* b : core::all_benchmarks()) {
    const rv32::Rv32Program rp = rv32::assemble_rv32(b->rv32);
    const std::unique_ptr<sim::Engine> rv = sim::make_engine(sim::EngineKind::kRv32, rp);
    rv32::PicoRv32CycleModel pico;
    rv->set_observer([&](const sim::Retired& r) { pico.observe(r.to_rv32()); });
    if (rv->run_stats({500'000'000}).halt != sim::HaltReason::kHalted) {
      std::fprintf(stderr, "%s: rv32 run did not halt\n", b->name.c_str());
      return 1;
    }

    xlat::SoftwareFramework framework;
    const xlat::TranslationResult xl = framework.translate(rp);
    const std::unique_ptr<sim::Engine> pipe = sim::make_engine(sim::EngineKind::kPipeline, xl.program);
    const sim::SimStats stats = pipe->run_stats({});
    if (stats.halt != sim::HaltReason::kHalted) {
      std::fprintf(stderr, "%s: ART-9 run did not halt\n", b->name.c_str());
      return 1;
    }

    const PaperRow& paper = kPaper[index++];
    std::printf("  %-12s | %11llu %11.0f | %11llu %11.0f | %7.2fx\n", b->name.c_str(),
                static_cast<unsigned long long>(stats.cycles), paper.art9,
                static_cast<unsigned long long>(pico.cycles()), paper.pico,
                static_cast<double>(pico.cycles()) / static_cast<double>(stats.cycles));
  }
  bench::rule();
  bench::note("Expected shape (asserted in tests): ART-9 < PicoRV32 on every");
  bench::note("benchmark; GEMM nearly even (software ternary multiply vs the");
  bench::note("serial PicoRV32 multiplier), branch-heavy kernels strongly ahead.");
  return 0;
}
