// Ablation bench (ours): balanced vs unbalanced (3's-complement) ternary —
// quantifying the paper's §II-A argument that the balanced system's
// conversion-based negation saves gates and delay.
#include <cstdio>

#include "report.hpp"
#include "tech/technology.hpp"
#include "ternary/unbalanced.hpp"

int main() {
  using namespace art9;
  bench::heading("Ablation — balanced vs unbalanced signed ternary (paper §II-A)");

  const tech::Technology cntfet = tech::Technology::cntfet32();
  const tech::CellParams& sti = cntfet.cell(tech::CellType::kSti);
  const tech::CellParams& tha = cntfet.cell(tech::CellType::kTha);

  // Negation of one 9-trit word.
  //  balanced:   9 parallel STI cells (carry-free; delay = 1 STI).
  //  unbalanced: 9 STI cells + a 9-digit increment ripple (9 half adders).
  const double bal_gates = 9 * sti.gate_equivalents;
  const double bal_delay = sti.delay_ps;
  const double unb_gates = 9 * sti.gate_equivalents + 9 * tha.gate_equivalents;
  const double unb_delay = sti.delay_ps + 9 * tha.delay_ps;

  std::printf("  negation unit (9 trits, CNTFET gate library):\n");
  std::printf("    %-28s %8s %12s\n", "", "gates", "delay");
  std::printf("    %-28s %8.0f %9.0f ps\n", "balanced (STI row)", bal_gates, bal_delay);
  std::printf("    %-28s %8.0f %9.0f ps\n", "unbalanced (STI + inc)", unb_gates, unb_delay);
  std::printf("    => balanced saves %.0f%% gates and %.1fx delay on negation\n\n",
              100.0 * (1.0 - bal_gates / unb_gates), unb_delay / bal_delay);

  // A subtractor built from the adder.
  //  balanced:   negate row + adder  -> delay ~ STI + ripple.
  //  unbalanced: invert + inc + adder (or +1 carry-in trick; still the
  //              asymmetric-range hazard at -3^9/2 remains).
  const tech::CellParams& tfa = cntfet.cell(tech::CellType::kTfa);
  const double bal_sub = 9 * sti.gate_equivalents + 9 * tfa.gate_equivalents;
  const double unb_sub = 9 * sti.gate_equivalents + 9 * tha.gate_equivalents +
                         9 * tfa.gate_equivalents;
  std::printf("  subtractor (9 trits):\n");
  std::printf("    %-28s %8.0f gates\n", "balanced", bal_sub);
  std::printf("    %-28s %8.0f gates\n", "unbalanced", unb_sub);

  // Sign detection.
  const tech::CellParams& tcmp = cntfet.cell(tech::CellType::kTcmp);
  std::printf("\n  sign detection:\n");
  std::printf("    balanced    read the most significant non-zero trit (~1 cell)\n");
  std::printf("    unbalanced  magnitude compare vs (3^9-1)/2: ~%.0f gates, %.0f ps\n",
              9 * tcmp.gate_equivalents, 9 * tcmp.delay_ps);

  bench::note("");
  bench::note("This is why the ART-9 ISA adopts the balanced system: SUB reuses the");
  bench::note("adder behind a carry-free STI row, and COMP/branches read signs off");
  bench::note("single trits instead of running magnitude comparisons.");
  return 0;
}
