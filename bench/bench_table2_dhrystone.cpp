// Table II reproduction: Dhrystone on the three cores — ART-9 (this
// work), VexRiscv (RV-32I, 5-stage) and PicoRV32 (RV32IM, non-pipelined).
#include <cstdio>

#include "core/benchmarks.hpp"
#include "core/hardware_framework.hpp"
#include "report.hpp"
#include "rv32/cycle_models.hpp"
#include "rv32/rv32_assembler.hpp"
#include "sim/engine.hpp"
#include "xlat/framework.hpp"

int main() {
  using namespace art9;
  bench::heading("Table II — simulation results of the Dhrystone benchmark");

  const core::BenchmarkSources& dhry = core::dhrystone();
  const rv32::Rv32Program rp = rv32::assemble_rv32(dhry.rv32);

  // Baselines: one functional execution through the cross-ISA engine
  // facade feeds both cycle models via the retired-instruction observer.
  const std::unique_ptr<sim::Engine> rv = sim::make_engine(sim::EngineKind::kRv32, rp);
  rv32::PicoRv32CycleModel pico;
  rv32::VexRiscvCycleModel vex;
  rv->set_observer([&](const sim::Retired& r) {
    const rv32::Rv32Retired retired = r.to_rv32();
    pico.observe(retired);
    vex.observe(retired);
  });
  if (rv->run_stats({500'000'000}).halt != sim::HaltReason::kHalted) {
    std::fprintf(stderr, "rv32 dhrystone did not halt\n");
    return 1;
  }

  // ART-9: translate and run on the cycle-accurate pipeline.
  xlat::SoftwareFramework framework;
  const xlat::TranslationResult xl = framework.translate(rp);
  core::HardwareFramework hw({}, tech::Technology::cntfet32());
  const core::EvaluationResult art9 = hw.evaluate(xl.program, dhry.iterations);

  const double art9_dpm = art9.estimate.dmips_per_mhz;
  const double vex_dpm = rv32::dmips_per_mhz(vex.cycles() / dhry.iterations);
  const double pico_dpm = rv32::dmips_per_mhz(pico.cycles() / dhry.iterations);

  std::printf("  %-22s %12s %12s %12s\n", "", "ART-9 (ours)", "VexRiscv", "PicoRV32");
  bench::rule();
  std::printf("  %-22s %12s %12s %12s\n", "ISA", "ART-9", "RV-32I", "RV-32IM");
  std::printf("  %-22s %12d %12d %12d\n", "# of instructions", isa::kNumOpcodes,
              rv32::kNumRv32IOps, rv32::kNumRv32Ops);
  std::printf("  %-22s %12d %12d %12d\n", "Pipelined stages", 5, 5, 1);
  std::printf("  %-22s %12s %12s %12s\n", "Multiplier", "X (software)", "O", "O");
  std::printf("  %-22s %12.2f %12.2f %12.2f\n", "DMIPS/MHz (measured)", art9_dpm, vex_dpm,
              pico_dpm);
  std::printf("  %-22s %12.2f %12.2f %12.2f\n", "DMIPS/MHz (paper)", 0.42, 0.65, 0.31);
  std::printf("  %-22s %9.1fK t %9.1fK b %9.1fK b\n", "memory cells (measured)",
              static_cast<double>(xl.program.memory_cells()) / 1000.0,
              static_cast<double>(rp.memory_cells()) / 1000.0,
              static_cast<double>(rp.memory_cells()) / 1000.0);
  std::printf("  %-22s %9.1fK t %9.1fK b %9.1fK b\n", "memory cells (paper)", 11.6, 25.4, 23.7);
  bench::rule();
  std::printf("  ART-9 cycles: %llu over %llu iterations -> %.0f cycles/iteration\n",
              static_cast<unsigned long long>(art9.sim.cycles),
              static_cast<unsigned long long>(dhry.iterations),
              static_cast<double>(art9.sim.cycles) / static_cast<double>(dhry.iterations));
  bench::note("Expected shape (asserted in tests): VexRiscv > ART-9 > PicoRV32 on");
  bench::note("DMIPS/MHz; ART-9 needs roughly half the memory cells of RV-32I.");
  return 0;
}
