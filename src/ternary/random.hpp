// Deterministic random generators for trits and words — the backbone of the
// property-based tests and the random-program differential tests.
//
// Bounded draws deliberately avoid std::uniform_int_distribution: its output
// sequence is implementation-defined, so a seed that reproduces a bug under
// libstdc++ draws a different program under libc++.  `random_below` is a
// Lemire-style multiply-shift rejection over the raw 64-bit engine output
// (which *is* pinned by the standard for std::mt19937_64), making every
// seeded draw in this repository bit-stable across standard libraries.
#pragma once

#include <cstdint>
#include <limits>
#include <random>

#include "ternary/trit.hpp"
#include "ternary/word.hpp"

namespace art9::ternary {

/// 64 uniform bits from a full-range 32- or 64-bit engine (std::mt19937_64
/// takes one draw, std::mt19937 two — both sequences pinned by the standard).
template <typename Rng>
[[nodiscard]] uint64_t random_bits64(Rng& rng) {
  static_assert(Rng::min() == 0, "random_bits64 needs a zero-based engine");
  if constexpr (Rng::max() == std::numeric_limits<uint64_t>::max()) {
    return rng();
  } else {
    static_assert(Rng::max() == std::numeric_limits<uint32_t>::max(),
                  "random_bits64 needs a full-range 32- or 64-bit engine");
    const uint64_t lo = rng();
    return (static_cast<uint64_t>(rng()) << 32) | lo;
  }
}

/// Uniform draw in [0, bound) by Lemire's nearly-divisionless multiply-shift
/// rejection (https://arxiv.org/abs/1805.10941).  bound must be non-zero.
template <typename Rng>
[[nodiscard]] uint64_t random_below(Rng& rng, uint64_t bound) {
  uint64_t x = random_bits64(rng);
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  auto lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    const uint64_t threshold = -bound % bound;  // (2^64 - bound) mod bound
    while (lo < threshold) {
      x = random_bits64(rng);
      m = static_cast<unsigned __int128>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

/// Uniform draw in the closed interval [lo, hi] (lo <= hi).
template <typename Rng>
[[nodiscard]] int64_t random_in(Rng& rng, int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
  if (span == std::numeric_limits<uint64_t>::max()) return static_cast<int64_t>(random_bits64(rng));
  return static_cast<int64_t>(static_cast<uint64_t>(lo) + random_below(rng, span + 1));
}

/// Uniform random trit.
template <typename Rng>
[[nodiscard]] Trit random_trit(Rng& rng) {
  return Trit(static_cast<int>(random_in(rng, -1, 1)));
}

/// Uniform random N-trit word (uniform over all 3^N states).
template <std::size_t N, typename Rng>
[[nodiscard]] Word<N> random_word(Rng& rng) {
  Word<N> w;
  for (std::size_t i = 0; i < N; ++i) w.set(i, random_trit(rng));
  return w;
}

/// Random balanced value in a sub-range, as a word.
template <std::size_t N, typename Rng>
[[nodiscard]] Word<N> random_word_in(Rng& rng, int64_t lo, int64_t hi) {
  return Word<N>::from_int(random_in(rng, lo, hi));
}

}  // namespace art9::ternary
