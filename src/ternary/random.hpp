// Deterministic random generators for trits and words — the backbone of the
// property-based tests and the random-program differential tests.
#pragma once

#include <cstdint>
#include <random>

#include "ternary/trit.hpp"
#include "ternary/word.hpp"

namespace art9::ternary {

/// Uniform random trit.
template <typename Rng>
[[nodiscard]] Trit random_trit(Rng& rng) {
  std::uniform_int_distribution<int> dist(-1, 1);
  return Trit(dist(rng));
}

/// Uniform random N-trit word (uniform over all 3^N states).
template <std::size_t N, typename Rng>
[[nodiscard]] Word<N> random_word(Rng& rng) {
  Word<N> w;
  for (std::size_t i = 0; i < N; ++i) w.set(i, random_trit(rng));
  return w;
}

/// Random balanced value in a sub-range, as a word.
template <std::size_t N, typename Rng>
[[nodiscard]] Word<N> random_word_in(Rng& rng, int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return Word<N>::from_int(dist(rng));
}

}  // namespace art9::ternary
