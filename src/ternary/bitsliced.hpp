// Bit-sliced (transposed) 9-trit words: 32 independent machines per
// plane word.  BctWord9 packs ONE machine's word as two 9-bit planes
// (bit t = trit t); SlicedWord9 transposes that layout — per trit
// position t it keeps two uint32_t planes whose bit i belongs to lane
// (machine) i.  A single bitwise plane operation then applies one
// tritwise gate, one balanced-ternary adder stage, or one comparison
// step to all 32 lanes at once — SIMD-across-scenarios rather than
// SIMD-within-a-word.
//
// Every kernel here is exact with respect to the scalar reference:
//   extract_lane(op(a, b), i) == scalar_op(extract_lane(a, i),
//                                          extract_lane(b, i))
// for every lane i, which the bitsliced_test suite locks exhaustively
// for the gates and by randomized sweep for add/sub/compare/shifts.
//
// Lanes the caller considers inactive simply carry garbage planes; all
// state mutation goes through assign_masked / insert_lane so a write to
// lane i can never perturb lane j.
#pragma once

#include <array>
#include <cstdint>

#include "ternary/bct.hpp"

namespace art9::ternary::bitsliced {

/// Lane capacity of the uint32_t planes (a uint64_t build would double it).
inline constexpr unsigned kLanes = 32;

/// One 9-trit word per lane, transposed: neg[t] / pos[t] hold trit t of
/// every lane, bit i = lane i.  Trit encoding per lane matches BctWord9:
/// (neg,pos) = (0,0) zero, (0,1) +1, (1,0) -1; (1,1) never occurs.
struct SlicedWord9 {
  std::array<uint32_t, 9> neg{};
  std::array<uint32_t, 9> pos{};

  friend bool operator==(const SlicedWord9&, const SlicedWord9&) = default;
};

/// The same word in every lane.
inline SlicedWord9 broadcast(const BctWord9& w) {
  SlicedWord9 out;
  const uint32_t n = w.neg_plane();
  const uint32_t p = w.pos_plane();
  for (unsigned t = 0; t < 9; ++t) {
    out.neg[t] = 0u - ((n >> t) & 1u);
    out.pos[t] = 0u - ((p >> t) & 1u);
  }
  return out;
}

/// Un-transposes lane `lane` back into a scalar word.
inline BctWord9 extract_lane(const SlicedWord9& w, unsigned lane) {
  uint32_t n = 0;
  uint32_t p = 0;
  for (unsigned t = 0; t < 9; ++t) {
    n |= ((w.neg[t] >> lane) & 1u) << t;
    p |= ((w.pos[t] >> lane) & 1u) << t;
  }
  return BctWord9::from_planes_unchecked(n, p);
}

/// Writes lane `lane` only; every other lane's bits are untouched.
inline void insert_lane(SlicedWord9& w, unsigned lane, const BctWord9& v) {
  const uint32_t bit = 1u << lane;
  const uint32_t n = v.neg_plane();
  const uint32_t p = v.pos_plane();
  for (unsigned t = 0; t < 9; ++t) {
    w.neg[t] = (w.neg[t] & ~bit) | ((0u - ((n >> t) & 1u)) & bit);
    w.pos[t] = (w.pos[t] & ~bit) | ((0u - ((p >> t) & 1u)) & bit);
  }
}

/// dst = src where mask bit set, dst unchanged elsewhere — the only way
/// fleet register state is mutated, so inactive lanes are preserved.
inline void assign_masked(SlicedWord9& dst, const SlicedWord9& src, uint32_t mask) {
  if (mask == ~0u) {  // full cohort (the lockstep fast case): plain copy
    dst = src;
    return;
  }
  for (unsigned t = 0; t < 9; ++t) {
    dst.neg[t] = (dst.neg[t] & ~mask) | (src.neg[t] & mask);
    dst.pos[t] = (dst.pos[t] & ~mask) | (src.pos[t] & mask);
  }
}

/// True iff every masked lane holds the same word — the lockstep-cohort
/// test that lets per-lane effects (memory rows, jump targets) collapse
/// to one shared computation.  Lanes outside `mask` are ignored.
inline bool uniform(const SlicedWord9& w, uint32_t mask) {
  for (unsigned t = 0; t < 9; ++t) {
    const uint32_t n = w.neg[t] & mask;
    const uint32_t p = w.pos[t] & mask;
    if ((n != 0 && n != mask) || (p != 0 && p != mask)) return false;
  }
  return true;
}

/// dst's lane = src's lane (same index), every other lane untouched — a
/// sliced-to-sliced single-lane move with no cross-bit shuffling, far
/// cheaper than extract_lane + insert_lane.
inline void copy_lane(SlicedWord9& dst, const SlicedWord9& src, unsigned lane) {
  const uint32_t bit = 1u << lane;
  for (unsigned t = 0; t < 9; ++t) {
    dst.neg[t] = (dst.neg[t] & ~bit) | (src.neg[t] & bit);
    dst.pos[t] = (dst.pos[t] & ~bit) | (src.pos[t] & bit);
  }
}

// --- tritwise unary gates (all lanes at once) --------------------------------

/// STI: negate every trit (swap the planes).
inline SlicedWord9 sti(const SlicedWord9& a) {
  SlicedWord9 out;
  out.neg = a.pos;
  out.pos = a.neg;
  return out;
}

/// NTI: -1 -> +1, else -1 (mirrors BctWord9::nti per lane).
inline SlicedWord9 nti(const SlicedWord9& a) {
  SlicedWord9 out;
  for (unsigned t = 0; t < 9; ++t) {
    out.pos[t] = a.neg[t];
    out.neg[t] = ~a.neg[t];
  }
  return out;
}

/// PTI: +1 -> -1, else +1 (mirrors BctWord9::pti per lane).
inline SlicedWord9 pti(const SlicedWord9& a) {
  SlicedWord9 out;
  for (unsigned t = 0; t < 9; ++t) {
    out.neg[t] = a.pos[t];
    out.pos[t] = ~a.pos[t];
  }
  return out;
}

// --- tritwise binary gates ---------------------------------------------------

/// TAND: tritwise minimum.
inline SlicedWord9 tand(const SlicedWord9& a, const SlicedWord9& b) {
  SlicedWord9 out;
  for (unsigned t = 0; t < 9; ++t) {
    out.neg[t] = a.neg[t] | b.neg[t];
    out.pos[t] = a.pos[t] & b.pos[t] & ~out.neg[t];
  }
  return out;
}

/// TOR: tritwise maximum.
inline SlicedWord9 tor(const SlicedWord9& a, const SlicedWord9& b) {
  SlicedWord9 out;
  for (unsigned t = 0; t < 9; ++t) {
    out.pos[t] = a.pos[t] | b.pos[t];
    out.neg[t] = a.neg[t] & b.neg[t] & ~out.pos[t];
  }
  return out;
}

/// TXOR: tritwise product (matches BctWord9::txor).
inline SlicedWord9 txor(const SlicedWord9& a, const SlicedWord9& b) {
  SlicedWord9 out;
  for (unsigned t = 0; t < 9; ++t) {
    out.neg[t] = (a.pos[t] & b.pos[t]) | (a.neg[t] & b.neg[t]);
    out.pos[t] = (a.pos[t] & b.neg[t]) | (a.neg[t] & b.pos[t]);
  }
  return out;
}

// --- balanced-ternary arithmetic ---------------------------------------------

namespace detail {

/// One balanced-ternary half add of trit planes (an,ap) + (bn,bp):
/// digit (sn,sp) in {-1,0,+1} and carry (kn,kp) with
/// a + b == s + 3*(kp - kn).  Carries of a half add are never both set.
struct HalfSum {
  uint32_t sn, sp, kn, kp;
};

inline HalfSum half_add(uint32_t an, uint32_t ap, uint32_t bn, uint32_t bp) {
  const uint32_t az = ~(an | ap);
  const uint32_t bz = ~(bn | bp);
  HalfSum h;
  h.sp = (ap & bz) | (bp & az) | (an & bn);  // +1: (+1,0), (0,+1), (-1,-1)
  h.sn = (an & bz) | (bn & az) | (ap & bp);  // -1: (-1,0), (0,-1), (+1,+1)
  h.kp = ap & bp;                            // +1 + +1 = -1 carry +1
  h.kn = an & bn;                            // -1 + -1 = +1 carry -1
  return h;
}

/// Full add with carry-in: digit (sn,sp) and carry-out (cn,cp).  The two
/// stage carries can disagree in sign (e.g. +1 +1 -1); the combine masks
/// cancel them so the carry-out is again a single trit.
inline HalfSum full_add(uint32_t an, uint32_t ap, uint32_t bn, uint32_t bp, uint32_t cn,
                        uint32_t cp) {
  const HalfSum h1 = half_add(an, ap, bn, bp);
  const HalfSum h2 = half_add(h1.sn, h1.sp, cn, cp);
  HalfSum out;
  out.sn = h2.sn;
  out.sp = h2.sp;
  out.kp = (h1.kp | h2.kp) & ~(h1.kn | h2.kn);
  out.kn = (h1.kn | h2.kn) & ~(h1.kp | h2.kp);
  return out;
}

}  // namespace detail

/// a + b per lane, exact mod 3^9 (dropping the digit-9 carry IS the wrap
/// onto the unique balanced residue, so this matches packed::add and
/// Word<9> addition bit for bit).
inline SlicedWord9 add(const SlicedWord9& a, const SlicedWord9& b) {
  SlicedWord9 out;
  uint32_t cn = 0;
  uint32_t cp = 0;
  for (unsigned t = 0; t < 9; ++t) {
    // Dead carry + zero addend trit in every lane: the digit is a's trit
    // verbatim.  Small immediates (the dominant ADDI traffic) take this
    // path for most of the word, and the test is cohort-stable so it
    // predicts well.
    if ((cn | cp | b.neg[t] | b.pos[t]) == 0) {
      out.neg[t] = a.neg[t];
      out.pos[t] = a.pos[t];
      continue;
    }
    const detail::HalfSum s = detail::full_add(a.neg[t], a.pos[t], b.neg[t], b.pos[t], cn, cp);
    out.neg[t] = s.sn;
    out.pos[t] = s.sp;
    cn = s.kn;
    cp = s.kp;
  }
  return out;
}

/// a - b per lane: add with b's planes swapped (balanced negation is free).
inline SlicedWord9 sub(const SlicedWord9& a, const SlicedWord9& b) {
  SlicedWord9 nb;
  nb.neg = b.pos;
  nb.pos = b.neg;
  return add(a, nb);
}

/// Per-lane sign of the UNWRAPPED difference to_int(a) - to_int(b):
/// `gt` bit i set iff lane i has a > b, `lt` iff a < b (equal lanes set
/// neither).  Keeps all nine digits of a + (-b) plus the final carry as
/// digit 9 and sign-scans from the most significant digit down, which is
/// exact because |to_int| <= 9841 < 3^9.
struct CompareMasks {
  uint32_t gt = 0;
  uint32_t lt = 0;
};

inline CompareMasks compare(const SlicedWord9& a, const SlicedWord9& b) {
  std::array<uint32_t, 10> dn;
  std::array<uint32_t, 10> dp;
  uint32_t cn = 0;
  uint32_t cp = 0;
  for (unsigned t = 0; t < 9; ++t) {
    // Dead carry + zero subtrahend trit everywhere: digit = a's trit.
    if ((cn | cp | b.neg[t] | b.pos[t]) == 0) {
      dn[t] = a.neg[t];
      dp[t] = a.pos[t];
      continue;
    }
    // b's planes swapped: a + (-b).
    const detail::HalfSum s = detail::full_add(a.neg[t], a.pos[t], b.pos[t], b.neg[t], cn, cp);
    dn[t] = s.sn;
    dp[t] = s.sp;
    cn = s.kn;
    cp = s.kp;
  }
  dn[9] = cn;  // final carry = digit 9 of the unwrapped difference
  dp[9] = cp;
  CompareMasks out;
  uint32_t undecided = ~0u;
  for (int t = 9; t >= 0; --t) {
    out.gt |= undecided & dp[size_t(t)];
    out.lt |= undecided & dn[size_t(t)];
    undecided &= ~(dp[size_t(t)] | dn[size_t(t)]);
  }
  return out;
}

/// COMP result word per lane: trit 0 = sign(to_int(a) - to_int(b)), all
/// other trits zero — matches packed::comp_word.
inline SlicedWord9 comp(const SlicedWord9& a, const SlicedWord9& b) {
  const CompareMasks m = compare(a, b);
  SlicedWord9 out;
  out.pos[0] = m.gt;
  out.neg[0] = m.lt;
  return out;
}

// --- shifts ------------------------------------------------------------------

/// Uniform logical shift toward the LST by `amount` trits; amounts >= 9
/// clear the word (the BctWord9::shr contract, so a negative immediate
/// cast to a huge unsigned clears too).
inline SlicedWord9 shr(const SlicedWord9& a, unsigned amount) {
  SlicedWord9 out;
  if (amount >= 9) return out;  // also guards t + amount wrap-around
  for (unsigned t = 0; t + amount < 9; ++t) {
    out.neg[t] = a.neg[t + amount];
    out.pos[t] = a.pos[t + amount];
  }
  return out;
}

/// Uniform logical shift away from the LST; amounts >= 9 clear.
inline SlicedWord9 shl(const SlicedWord9& a, unsigned amount) {
  SlicedWord9 out;
  for (unsigned t = 0; t < 9; ++t) {
    if (t >= amount && amount < 9) {
      out.neg[t] = a.neg[t - amount];
      out.pos[t] = a.pos[t - amount];
    }
  }
  return out;
}

namespace detail {

/// Per-lane level masks for one shift-amount trit of `amt`: a trit value
/// of -1/0/+1 selects level 0/1/2 (packed::shift_amount's trit+1).
struct LevelMasks {
  uint32_t l0, l1, l2;
};

inline LevelMasks level_masks(const SlicedWord9& amt, unsigned trit) {
  return LevelMasks{amt.neg[trit], ~(amt.neg[trit] | amt.pos[trit]), amt.pos[trit]};
}

}  // namespace detail

/// Per-lane variable shift toward the LST: lane i shifts by
/// packed::shift_amount(amt lane i) = 3*(trit1+1) + (trit0+1) in [0, 8].
/// Two masked barrel stages: units {0,1,2} then threes {0,3,6}.
inline SlicedWord9 shr_var(const SlicedWord9& a, const SlicedWord9& amt) {
  const detail::LevelMasks u = detail::level_masks(amt, 0);
  const detail::LevelMasks h = detail::level_masks(amt, 1);
  SlicedWord9 stage;
  for (unsigned t = 0; t < 9; ++t) {
    stage.neg[t] = (u.l0 & a.neg[t]) | (t + 1 < 9 ? u.l1 & a.neg[t + 1] : 0u) |
                   (t + 2 < 9 ? u.l2 & a.neg[t + 2] : 0u);
    stage.pos[t] = (u.l0 & a.pos[t]) | (t + 1 < 9 ? u.l1 & a.pos[t + 1] : 0u) |
                   (t + 2 < 9 ? u.l2 & a.pos[t + 2] : 0u);
  }
  SlicedWord9 out;
  for (unsigned t = 0; t < 9; ++t) {
    out.neg[t] = (h.l0 & stage.neg[t]) | (t + 3 < 9 ? h.l1 & stage.neg[t + 3] : 0u) |
                 (t + 6 < 9 ? h.l2 & stage.neg[t + 6] : 0u);
    out.pos[t] = (h.l0 & stage.pos[t]) | (t + 3 < 9 ? h.l1 & stage.pos[t + 3] : 0u) |
                 (t + 6 < 9 ? h.l2 & stage.pos[t + 6] : 0u);
  }
  return out;
}

/// Per-lane variable shift away from the LST (same amount encoding).
inline SlicedWord9 shl_var(const SlicedWord9& a, const SlicedWord9& amt) {
  const detail::LevelMasks u = detail::level_masks(amt, 0);
  const detail::LevelMasks h = detail::level_masks(amt, 1);
  SlicedWord9 stage;
  for (unsigned t = 0; t < 9; ++t) {
    stage.neg[t] = (u.l0 & a.neg[t]) | (t >= 1 ? u.l1 & a.neg[t - 1] : 0u) |
                   (t >= 2 ? u.l2 & a.neg[t - 2] : 0u);
    stage.pos[t] = (u.l0 & a.pos[t]) | (t >= 1 ? u.l1 & a.pos[t - 1] : 0u) |
                   (t >= 2 ? u.l2 & a.pos[t - 2] : 0u);
  }
  SlicedWord9 out;
  for (unsigned t = 0; t < 9; ++t) {
    out.neg[t] = (h.l0 & stage.neg[t]) | (t >= 3 ? h.l1 & stage.neg[t - 3] : 0u) |
                 (t >= 6 ? h.l2 & stage.neg[t - 6] : 0u);
    out.pos[t] = (h.l0 & stage.pos[t]) | (t >= 3 ? h.l1 & stage.pos[t - 3] : 0u) |
                 (t >= 6 ? h.l2 & stage.pos[t - 6] : 0u);
  }
  return out;
}

// --- condition evaluation ----------------------------------------------------

/// Lanes whose least-significant trit equals `value` (-1, 0 or +1) — the
/// branch-condition mask, one bitwise op for all 32 lanes.
inline uint32_t lst_eq_mask(const SlicedWord9& w, int value) {
  if (value < 0) return w.neg[0];
  if (value > 0) return w.pos[0];
  return ~(w.neg[0] | w.pos[0]);
}

}  // namespace art9::ternary::bitsliced
