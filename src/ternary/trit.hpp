// Balanced-ternary digit ("trit") and the tritwise logic operations of the
// ART-9 processor (paper Fig. 1).
//
// A trit carries one of three physical levels (GND, VDD/2, VDD).  The paper
// uses two interpretations of those levels (paper §II-A):
//   * balanced (signed):  {-1, 0, +1} — used for data arithmetic, and
//   * unsigned digit:     { 0, 1,  2} — used for register indices, shift
//     amounts and memory addresses.
// This type stores the balanced value; `level()` gives the unsigned digit
// (`value + 1`).  The two views name the same wire, so conversion is free.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

namespace art9::ternary {

/// One balanced-ternary digit: -1, 0 or +1.
class Trit {
 public:
  /// Default-constructs a zero trit.
  constexpr Trit() noexcept = default;

  /// Constructs from a balanced value in {-1, 0, +1}.
  /// Out-of-range values are a precondition violation (checked construct
  /// available via `from_value`).
  constexpr explicit Trit(int value) noexcept : value_(static_cast<int8_t>(value)) {}

  /// Checked construction from a balanced value; throws std::out_of_range.
  static Trit from_value(int value) {
    if (value < -1 || value > 1) {
      throw std::out_of_range("Trit value must be -1, 0 or +1, got " + std::to_string(value));
    }
    return Trit(value);
  }

  /// Checked construction from an unsigned digit ("level") in {0, 1, 2}.
  static Trit from_level(int level) {
    if (level < 0 || level > 2) {
      throw std::out_of_range("Trit level must be 0, 1 or 2, got " + std::to_string(level));
    }
    return Trit(level - 1);
  }

  /// Balanced value in {-1, 0, +1}.
  [[nodiscard]] constexpr int value() const noexcept { return value_; }

  /// Unsigned digit in {0, 1, 2} (the paper's unsigned interpretation).
  [[nodiscard]] constexpr int level() const noexcept { return value_ + 1; }

  [[nodiscard]] constexpr bool is_zero() const noexcept { return value_ == 0; }

  constexpr friend bool operator==(Trit a, Trit b) noexcept = default;
  constexpr friend auto operator<=>(Trit a, Trit b) noexcept = default;

  /// Canonical character: '-' for -1, '0' for 0, '+' for +1.
  [[nodiscard]] char to_char() const noexcept;

  /// Parses '-', '0', '+' (also accepts 'N'/'n', 'Z'/'z', 'P'/'p').
  /// Throws std::invalid_argument on anything else.
  static Trit from_char(char c);

 private:
  int8_t value_ = 0;
};

/// The three trit constants.
inline constexpr Trit kTritN{-1};
inline constexpr Trit kTritZ{0};
inline constexpr Trit kTritP{+1};

// --- Fig. 1 logic operations -------------------------------------------------
//
// The balanced-ternary logic family used by the ART-9 TALU.  AND/OR are the
// usual min/max lattice operations; the three inverters STI/NTI/PTI are the
// fundamental single-input gates of balanced ternary logic, and XOR is the
// negated product, which coincides with the two-input min/max expansion
// max(min(a, STI(b)), min(STI(a), b)) on all nine input pairs (see
// tests/ternary/trit_test.cpp for the proof-by-exhaustion).

/// Ternary AND: min(a, b).
[[nodiscard]] constexpr Trit tand(Trit a, Trit b) noexcept {
  return a.value() < b.value() ? a : b;
}

/// Ternary OR: max(a, b).
[[nodiscard]] constexpr Trit tor(Trit a, Trit b) noexcept {
  return a.value() > b.value() ? a : b;
}

/// Standard ternary inverter: STI(x) = -x.
[[nodiscard]] constexpr Trit sti(Trit a) noexcept { return Trit(-a.value()); }

/// Negative ternary inverter: NTI(-1) = +1, NTI(0) = NTI(+1) = -1.
[[nodiscard]] constexpr Trit nti(Trit a) noexcept {
  return a.value() == -1 ? kTritP : kTritN;
}

/// Positive ternary inverter: PTI(+1) = -1, PTI(0) = PTI(-1) = +1.
[[nodiscard]] constexpr Trit pti(Trit a) noexcept {
  return a.value() == +1 ? kTritN : kTritP;
}

/// Ternary XOR: -(a * b).  Equals max(min(a,-b), min(-a,b)).
[[nodiscard]] constexpr Trit txor(Trit a, Trit b) noexcept {
  return Trit(-(a.value() * b.value()));
}

/// Trit product (the MUL gate of ternary multiplier arrays).
[[nodiscard]] constexpr Trit tmul(Trit a, Trit b) noexcept {
  return Trit(a.value() * b.value());
}

/// Result of a balanced one-trit full addition: sum digit plus carry digit.
struct TritSum {
  Trit sum;
  Trit carry;

  constexpr friend bool operator==(const TritSum&, const TritSum&) noexcept = default;
};

/// Balanced-ternary full adder over three trits (a + b + carry-in).
/// The raw sum lies in [-3, 3]; it is re-expressed as sum + 3*carry with
/// sum in {-1,0,+1} and carry in {-1,0,+1}.
[[nodiscard]] constexpr TritSum tadd_full(Trit a, Trit b, Trit cin) noexcept {
  int s = a.value() + b.value() + cin.value();
  int carry = 0;
  if (s > 1) {
    s -= 3;
    carry = 1;
  } else if (s < -1) {
    s += 3;
    carry = -1;
  }
  return TritSum{Trit(s), Trit(carry)};
}

/// Balanced-ternary half adder (a + b).
[[nodiscard]] constexpr TritSum tadd_half(Trit a, Trit b) noexcept {
  return tadd_full(a, b, kTritZ);
}

/// sign(a - b) as a trit: 0 if equal, +1 if a > b, -1 if a < b.
/// This is the per-trit compare cell used by the COMP instruction.
[[nodiscard]] constexpr Trit tcmp(Trit a, Trit b) noexcept {
  return Trit((a.value() > b.value()) - (a.value() < b.value()));
}

/// All three trits in ascending order, for exhaustive sweeps.
inline constexpr std::array<Trit, 3> kAllTrits{kTritN, kTritZ, kTritP};

std::ostream& operator<<(std::ostream& os, Trit t);

}  // namespace art9::ternary
