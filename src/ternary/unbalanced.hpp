// Unbalanced (3's-complement) ternary numbers — the alternative signed
// system the paper rejects (§II-A: "Compared to the unbalanced approaches
// in [13], it is reported that the arithmetic operations in balanced
// ternary numbers can be simplified according to the conversion-based
// negation property").
//
// This module implements the unbalanced system so the claim can be
// *measured*: an UnbalancedWord9 holds digits in {0,1,2}; a signed value
// uses 3's complement (negate = invert every digit to 2-d, then add 1 —
// which needs a full carry chain, unlike the balanced system's carry-free
// tritwise STI).  bench_ablation_numbersys prices both negations with the
// gate-level library.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "ternary/word.hpp"

namespace art9::ternary {

/// A 9-digit unsigned/3's-complement ternary word.
class UnbalancedWord9 {
 public:
  static constexpr std::size_t kDigits = 9;
  static constexpr int64_t kStates = 19683;
  /// With an odd radix the complement range is symmetric (encodings
  /// 9842..19682 hold -9841..-1) — unlike two's complement.  The system's
  /// real costs against balanced ternary are the negation carry chain and
  /// sign detection (which needs a magnitude compare, not one digit).
  static constexpr int64_t kMaxValue = (kStates - 1) / 2;   // +9841
  static constexpr int64_t kMinValue = -(kStates - 1) / 2;  // -9841

  constexpr UnbalancedWord9() noexcept = default;

  /// Encodes a signed value in 3's complement.
  static constexpr UnbalancedWord9 from_int(int64_t value) {
    if (value < kMinValue || value > kMaxValue) {
      throw std::out_of_range("UnbalancedWord9::from_int: out of range");
    }
    UnbalancedWord9 w;
    int64_t u = value < 0 ? value + kStates : value;
    for (std::size_t i = 0; i < kDigits; ++i) {
      w.digits_[i] = static_cast<int8_t>(u % 3);
      u /= 3;
    }
    return w;
  }

  /// Encodes an unsigned digit-string value in [0, 3^9).
  static constexpr UnbalancedWord9 from_unsigned(int64_t value) {
    if (value < 0 || value >= kStates) {
      throw std::out_of_range("UnbalancedWord9::from_unsigned: out of range");
    }
    UnbalancedWord9 w;
    for (std::size_t i = 0; i < kDigits; ++i) {
      w.digits_[i] = static_cast<int8_t>(value % 3);
      value /= 3;
    }
    return w;
  }

  /// 3's-complement signed reading.
  [[nodiscard]] constexpr int64_t to_int() const noexcept {
    const int64_t u = to_unsigned();
    return u > kMaxValue ? u - kStates : u;
  }

  /// Plain digit-string reading.
  [[nodiscard]] constexpr int64_t to_unsigned() const noexcept {
    int64_t v = 0;
    for (std::size_t i = kDigits; i-- > 0;) v = v * 3 + digits_[i];
    return v;
  }

  [[nodiscard]] constexpr int digit(std::size_t i) const { return digits_[i]; }

  constexpr friend bool operator==(const UnbalancedWord9&, const UnbalancedWord9&) noexcept =
      default;

  /// Digit-wise inversion d -> 2-d (one STI row; NOT yet a negation).
  [[nodiscard]] constexpr UnbalancedWord9 invert() const noexcept {
    UnbalancedWord9 out;
    for (std::size_t i = 0; i < kDigits; ++i) out.digits_[i] = static_cast<int8_t>(2 - digits_[i]);
    return out;
  }

  /// Ripple addition modulo 3^9 (digit carry in {0, 1}).
  [[nodiscard]] static constexpr UnbalancedWord9 add(const UnbalancedWord9& a,
                                                     const UnbalancedWord9& b) noexcept {
    UnbalancedWord9 out;
    int carry = 0;
    for (std::size_t i = 0; i < kDigits; ++i) {
      int s = a.digits_[i] + b.digits_[i] + carry;
      carry = s >= 3 ? 1 : 0;
      out.digits_[i] = static_cast<int8_t>(s % 3);
    }
    return out;
  }

  /// 3's-complement negation: invert THEN increment — the full carry
  /// chain the balanced system avoids.
  [[nodiscard]] constexpr UnbalancedWord9 negate() const noexcept {
    return add(invert(), from_unsigned(1));
  }

  constexpr friend UnbalancedWord9 operator+(const UnbalancedWord9& a,
                                             const UnbalancedWord9& b) noexcept {
    return add(a, b);
  }

  constexpr friend UnbalancedWord9 operator-(const UnbalancedWord9& a,
                                             const UnbalancedWord9& b) noexcept {
    return add(a, b.negate());
  }

  /// True iff the signed reading is negative — note this is a *magnitude
  /// comparison* against (3^9-1)/2, not a single-digit test as in the
  /// balanced system (where sign() just reads the most significant
  /// non-zero trit).
  [[nodiscard]] constexpr bool is_negative() const noexcept {
    return to_unsigned() > kMaxValue;
  }

  /// Converts to the balanced representation of the same signed value.
  [[nodiscard]] Word9 to_balanced() const { return Word9::from_int(to_int()); }

  /// Converts a balanced word to the unbalanced encoding of its value.
  static UnbalancedWord9 from_balanced(const Word9& w) { return from_int(w.to_int()); }

 private:
  int8_t digits_[kDigits] = {0, 0, 0, 0, 0, 0, 0, 0, 0};
};

}  // namespace art9::ternary
