// Extended balanced-ternary arithmetic used as the *reference* for the
// software-expanded routines of the compiling framework (multiplication,
// division) and for host-side checks.  The ART-9 ISA itself has no MUL/DIV
// instruction (paper Table II: "Multiplier X"); the translator expands
// binary `mul`/`div` into primitive ART-9 sequences whose behaviour must
// match these functions.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "ternary/word.hpp"

namespace art9::ternary {

/// Trit-serial multiplication (shift-and-add over the multiplier's trits,
/// MST first), wrapping modulo 3^N — exactly the algorithm of the
/// translator's __mul runtime routine.  Equals
/// Word<N>::from_int_wrapped(a.to_int() * b.to_int()).
template <std::size_t N>
[[nodiscard]] constexpr Word<N> multiply(const Word<N>& a, const Word<N>& b) noexcept {
  Word<N> acc;
  for (std::size_t i = N; i-- > 0;) {
    acc = acc.shl(1);
    switch (b[i].value()) {
      case +1:
        acc = acc + a;
        break;
      case -1:
        acc = acc - a;
        break;
      default:
        break;
    }
  }
  return acc;
}

/// Quotient/remainder pair for host-side division references.
struct DivModResult {
  int64_t quotient;
  int64_t remainder;
};

/// Truncating division (C semantics: quotient rounds toward zero,
/// remainder takes the dividend's sign).  Throws on division by zero.
[[nodiscard]] constexpr DivModResult divmod_trunc(int64_t a, int64_t b) {
  if (b == 0) throw std::domain_error("divmod_trunc: division by zero");
  return DivModResult{a / b, a % b};
}

/// Balanced-ternary "shift-right" division: dividing by 3^k via shr rounds
/// to the *nearest* integer (ties broken toward the value whose dropped
/// digits sum negative/positive — i.e. exact balanced truncation).  This
/// helper computes that rounding on the host for property tests.
[[nodiscard]] constexpr int64_t div_pow3_nearest(int64_t value, std::size_t k) noexcept {
  int64_t q = value;
  for (std::size_t i = 0; i < k; ++i) {
    // Balanced one-digit shift: q' = round(q / 3) with balanced remainder.
    int64_t r = q % 3;
    q /= 3;
    if (r > 1) ++q;
    if (r < -1) --q;
  }
  return q;
}

/// Number of non-zero trits (useful for cost models of trit-serial ops).
template <std::size_t N>
[[nodiscard]] constexpr int popcount_nonzero(const Word<N>& w) noexcept {
  int n = 0;
  for (std::size_t i = 0; i < N; ++i) n += !w[i].is_zero();
  return n;
}

}  // namespace art9::ternary
