// Plane-packed SWAR datapath over BctWord9 — the host-side realization of
// the paper's FPGA emulation strategy (§V-B): every ternary block becomes
// a handful of binary operations on the two 9-bit planes.
//
// Tritwise logic is already 2-3 bitwise ops on the planes (bct.hpp).  This
// header adds the *arithmetic* half of the TALU in branchless form:
//
//  * packed -> balanced-int in two table loads (one 512-entry plane-value
//    table per plane, subtract), and balanced-int -> packed as one
//    divide-by-3^5 split plus two loads from 243/81-entry half-word plane
//    tables — all tables together stay under 2.5 KB, so the hot loop's
//    conversion state is permanently L1-resident;
//  * ADD/SUB/compare in the value domain: int32 add, a precomputed
//    mod-3^9 wrap as two conditional moves, then one table load back to
//    planes — no per-trit carry ripple;
//  * the unsigned-domain helpers the simulators need (register shift
//    amounts, memory row decode) as a couple of shifts/adds.
//
// Both tables are constexpr, so every operation here is usable in constant
// expressions and the packed-vs-reference equivalence suite
// (tests/ternary/packed_test.cpp) checks them exhaustively.
#pragma once

#include <array>
#include <cstdint>

#include "ternary/bct.hpp"
#include "ternary/word.hpp"

namespace art9::ternary::packed {

/// Number of 9-trit states (3^9) and the balanced range bounds.
inline constexpr int32_t kStates = static_cast<int32_t>(Word9::kStates);   // 19683
inline constexpr int32_t kMax = static_cast<int32_t>(Word9::kMaxValue);    //  9841
inline constexpr int32_t kMin = static_cast<int32_t>(Word9::kMinValue);    // -9841

namespace detail {

/// plane -> sum of 3^i over set bits: to_int(w) = table[pos] - table[neg].
constexpr std::array<int16_t, 512> make_plane_value() {
  std::array<int16_t, 512> table{};
  for (uint32_t mask = 0; mask < 512; ++mask) {
    int32_t value = 0;
    int32_t p = 1;
    for (int i = 0; i < 9; ++i) {
      if ((mask >> i) & 1u) value += p;
      p *= 3;
    }
    table[mask] = static_cast<int16_t>(value);
  }
  return table;
}

/// Packed planes as (neg << 16) | pos for `digits` unsigned base-3 digits
/// of `u`, trit i = digit i - 1, bit positions starting at `shift`.
constexpr uint32_t planes_of_unsigned(uint32_t u, int digits, int shift) {
  uint32_t neg = 0;
  uint32_t pos = 0;
  for (int i = 0; i < digits; ++i) {
    const uint32_t level = u % 3;
    u /= 3;
    if (level == 0) neg |= 1u << (shift + i);
    if (level == 2) pos |= 1u << (shift + i);
  }
  return (neg << 16) | pos;
}

/// Unsigned low 5 digits (value + kMax in [0, 242]) -> planes of trits 0..4.
constexpr std::array<uint32_t, 243> make_packed_low() {
  std::array<uint32_t, 243> table{};
  for (uint32_t u = 0; u < 243; ++u) table[u] = planes_of_unsigned(u, 5, 0);
  return table;
}

/// Unsigned high 4 digits ((value + kMax) / 243 in [0, 80]) -> planes of
/// trits 5..8, pre-shifted into position.
constexpr std::array<uint32_t, 81> make_packed_high() {
  std::array<uint32_t, 81> table{};
  for (uint32_t u = 0; u < 81; ++u) table[u] = planes_of_unsigned(u, 4, 5);
  return table;
}

}  // namespace detail

inline constexpr std::array<int16_t, 512> kPlaneValue = detail::make_plane_value();
inline constexpr std::array<uint32_t, 243> kPackedLow = detail::make_packed_low();
inline constexpr std::array<uint32_t, 81> kPackedHigh = detail::make_packed_high();

/// Balanced value of a packed word: two table loads and a subtract.
[[nodiscard]] constexpr int32_t to_int(const BctWord9& w) noexcept {
  return kPlaneValue[w.pos_plane()] - kPlaneValue[w.neg_plane()];
}

/// Packed word for a balanced value: one divide-by-243 split (a
/// multiply-shift after strength reduction) and two small-table loads.
/// Precondition: v in [kMin, kMax].
[[nodiscard]] constexpr BctWord9 from_int(int32_t v) noexcept {
  const uint32_t u = static_cast<uint32_t>(v + kMax);  // unsigned digit view
  const uint32_t planes = kPackedLow[u % 243u] | kPackedHigh[u / 243u];
  return BctWord9::from_planes_unchecked(planes >> 16, planes & BctWord9::kMask);
}

/// Reduces a value into [kMin, kMax] modulo 3^9.  Branchless for the
/// datapath's overflow range: precondition |v| < 2 * kStates (one
/// correction per side), which covers every sum/difference of two in-range
/// values plus a small immediate.
[[nodiscard]] constexpr int32_t wrap(int32_t v) noexcept {
  v += v < kMin ? kStates : 0;
  v -= v > kMax ? kStates : 0;
  return v;
}

/// Balanced addition modulo 3^9 — the packed TALU ADD cell.
[[nodiscard]] constexpr BctWord9 add(const BctWord9& a, const BctWord9& b) noexcept {
  return from_int(wrap(to_int(a) + to_int(b)));
}

/// a + imm for a small pre-validated immediate (|imm| <= kStates - 1).
[[nodiscard]] constexpr BctWord9 add_int(const BctWord9& a, int32_t imm) noexcept {
  return from_int(wrap(to_int(a) + imm));
}

/// Balanced subtraction modulo 3^9 — the packed TALU SUB cell.
[[nodiscard]] constexpr BctWord9 sub(const BctWord9& a, const BctWord9& b) noexcept {
  return from_int(wrap(to_int(a) - to_int(b)));
}

/// sign(a - b) in {-1, 0, +1} — the packed compare tree.
[[nodiscard]] constexpr int compare(const BctWord9& a, const BctWord9& b) noexcept {
  const int32_t d = to_int(a) - to_int(b);
  return (d > 0) - (d < 0);
}

/// COMP result word: sign(a - b) in the least-significant trit, upper trits
/// zero (mirrors sim::comp_result).
[[nodiscard]] constexpr BctWord9 comp_word(const BctWord9& a, const BctWord9& b) noexcept {
  const int c = compare(a, b);
  return BctWord9::from_planes_unchecked(static_cast<uint32_t>(c < 0), static_cast<uint32_t>(c > 0));
}

/// Unsigned shift amount from the two least-significant trits (the
/// register-shift forms SR/SL, paper Table I): level(w[1]) * 3 + level(w[0]),
/// always in [0, 8].
[[nodiscard]] constexpr unsigned shift_amount(const BctWord9& w) noexcept {
  const uint32_t pos = w.pos_plane();
  const uint32_t neg = w.neg_plane();
  const uint32_t level0 = 1u + (pos & 1u) - (neg & 1u);
  const uint32_t level1 = 1u + ((pos >> 1) & 1u) - ((neg >> 1) & 1u);
  return level1 * 3u + level0;
}

/// Memory/TIM row of a balanced address: (v + kMax) mod 3^9, branchless.
/// Precondition: |v| < 2 * kStates (one correction per side), which holds
/// for any base register value plus an imm3 offset.
[[nodiscard]] constexpr std::size_t row_of(int32_t v) noexcept {
  int32_t r = v + kMax;
  r += r < 0 ? kStates : 0;
  r -= r >= kStates ? kStates : 0;
  return static_cast<std::size_t>(r);
}

}  // namespace art9::ternary::packed
