// Plane-packed SWAR datapath — the host-side realization of the paper's
// FPGA emulation strategy (§V-B): every ternary block becomes a handful of
// binary operations on two bit-planes.
//
// Tritwise logic is already 2-3 bitwise ops on the planes (bct.hpp).  This
// header adds the *arithmetic* half of the TALU in branchless form:
//
//  * packed -> balanced-int in table loads (one 512-entry plane-value
//    table per 9-bit plane chunk, subtract), and balanced-int -> packed as
//    divide-by-3^5 splits plus loads from a 243-entry (and, for the 9-trit
//    fast path, an 81-entry) half-word plane table — all tables together
//    stay under 2.5 KB, so the hot loop's conversion state is permanently
//    L1-resident;
//  * ADD/SUB/compare in the value domain: integer add, a precomputed
//    mod-3^N wrap as two conditional moves, then table loads back to
//    planes — no per-trit carry ripple;
//  * the unsigned-domain helpers the simulators need (register shift
//    amounts, memory row decode) as a couple of shifts/adds.
//
// Two layers share those tables:
//
//  * the free functions over BctWord9 (the original 9-trit datapath used
//    by the packed simulators' hot loops), and
//  * the width-generic `PackedWord<N>` plane-pair template (1 <= N <= 32),
//    whose N == 9 instantiation reduces to exactly the same table loads —
//    and whose wider instantiations are the packing seam for rv32-side
//    words (21 trits cover a 32-bit binary value).
//
// Everything is constexpr, so every operation here is usable in constant
// expressions and the packed-vs-reference equivalence suites
// (tests/ternary/packed_test.cpp, tests/ternary/packed_word_test.cpp)
// check them exhaustively.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>

#include "ternary/bct.hpp"
#include "ternary/word.hpp"

namespace art9::ternary::packed {

/// Number of 9-trit states (3^9) and the balanced range bounds.
inline constexpr int32_t kStates = static_cast<int32_t>(Word9::kStates);   // 19683
inline constexpr int32_t kMax = static_cast<int32_t>(Word9::kMaxValue);    //  9841
inline constexpr int32_t kMin = static_cast<int32_t>(Word9::kMinValue);    // -9841

namespace detail {

/// plane -> sum of 3^i over set bits: to_int(w) = table[pos] - table[neg].
constexpr std::array<int16_t, 512> make_plane_value() {
  std::array<int16_t, 512> table{};
  for (uint32_t mask = 0; mask < 512; ++mask) {
    int32_t value = 0;
    int32_t p = 1;
    for (int i = 0; i < 9; ++i) {
      if ((mask >> i) & 1u) value += p;
      p *= 3;
    }
    table[mask] = static_cast<int16_t>(value);
  }
  return table;
}

/// Packed planes as (neg << 16) | pos for `digits` unsigned base-3 digits
/// of `u`, trit i = digit i - 1, bit positions starting at `shift`.
constexpr uint32_t planes_of_unsigned(uint32_t u, int digits, int shift) {
  uint32_t neg = 0;
  uint32_t pos = 0;
  for (int i = 0; i < digits; ++i) {
    const uint32_t level = u % 3;
    u /= 3;
    if (level == 0) neg |= 1u << (shift + i);
    if (level == 2) pos |= 1u << (shift + i);
  }
  return (neg << 16) | pos;
}

/// Unsigned low 5 digits (value + kMax in [0, 242]) -> planes of trits 0..4.
constexpr std::array<uint32_t, 243> make_packed_low() {
  std::array<uint32_t, 243> table{};
  for (uint32_t u = 0; u < 243; ++u) table[u] = planes_of_unsigned(u, 5, 0);
  return table;
}

/// Unsigned high 4 digits ((value + kMax) / 243 in [0, 80]) -> planes of
/// trits 5..8, pre-shifted into position.
constexpr std::array<uint32_t, 81> make_packed_high() {
  std::array<uint32_t, 81> table{};
  for (uint32_t u = 0; u < 81; ++u) table[u] = planes_of_unsigned(u, 4, 5);
  return table;
}

}  // namespace detail

inline constexpr std::array<int16_t, 512> kPlaneValue = detail::make_plane_value();
inline constexpr std::array<uint32_t, 243> kPackedLow = detail::make_packed_low();
inline constexpr std::array<uint32_t, 81> kPackedHigh = detail::make_packed_high();

/// Balanced value of a packed word: two table loads and a subtract.
[[nodiscard]] constexpr int32_t to_int(const BctWord9& w) noexcept {
  return kPlaneValue[w.pos_plane()] - kPlaneValue[w.neg_plane()];
}

/// Packed word for a balanced value: one divide-by-243 split (a
/// multiply-shift after strength reduction) and two small-table loads.
/// Precondition: v in [kMin, kMax].
[[nodiscard]] constexpr BctWord9 from_int(int32_t v) noexcept {
  const uint32_t u = static_cast<uint32_t>(v + kMax);  // unsigned digit view
  const uint32_t planes = kPackedLow[u % 243u] | kPackedHigh[u / 243u];
  return BctWord9::from_planes_unchecked(planes >> 16, planes & BctWord9::kMask);
}

/// Reduces a value into [kMin, kMax] modulo 3^9.  Branchless for the
/// datapath's overflow range: precondition |v| < 2 * kStates (one
/// correction per side), which covers every sum/difference of two in-range
/// values plus a small immediate.
[[nodiscard]] constexpr int32_t wrap(int32_t v) noexcept {
  v += v < kMin ? kStates : 0;
  v -= v > kMax ? kStates : 0;
  return v;
}

/// Balanced addition modulo 3^9 — the packed TALU ADD cell.
[[nodiscard]] constexpr BctWord9 add(const BctWord9& a, const BctWord9& b) noexcept {
  return from_int(wrap(to_int(a) + to_int(b)));
}

/// a + imm for a small pre-validated immediate (|imm| <= kStates - 1).
[[nodiscard]] constexpr BctWord9 add_int(const BctWord9& a, int32_t imm) noexcept {
  return from_int(wrap(to_int(a) + imm));
}

/// Balanced subtraction modulo 3^9 — the packed TALU SUB cell.
[[nodiscard]] constexpr BctWord9 sub(const BctWord9& a, const BctWord9& b) noexcept {
  return from_int(wrap(to_int(a) - to_int(b)));
}

/// sign(a - b) in {-1, 0, +1} — the packed compare tree.
[[nodiscard]] constexpr int compare(const BctWord9& a, const BctWord9& b) noexcept {
  const int32_t d = to_int(a) - to_int(b);
  return (d > 0) - (d < 0);
}

/// COMP result word: sign(a - b) in the least-significant trit, upper trits
/// zero (mirrors sim::comp_result).
[[nodiscard]] constexpr BctWord9 comp_word(const BctWord9& a, const BctWord9& b) noexcept {
  const int c = compare(a, b);
  return BctWord9::from_planes_unchecked(static_cast<uint32_t>(c < 0), static_cast<uint32_t>(c > 0));
}

/// Unsigned shift amount from the two least-significant trits (the
/// register-shift forms SR/SL, paper Table I): level(w[1]) * 3 + level(w[0]),
/// always in [0, 8].
[[nodiscard]] constexpr unsigned shift_amount(const BctWord9& w) noexcept {
  const uint32_t pos = w.pos_plane();
  const uint32_t neg = w.neg_plane();
  const uint32_t level0 = 1u + (pos & 1u) - (neg & 1u);
  const uint32_t level1 = 1u + ((pos >> 1) & 1u) - ((neg >> 1) & 1u);
  return level1 * 3u + level0;
}

/// Memory/TIM row of a balanced address: (v + kMax) mod 3^9, branchless.
/// Precondition: |v| < 2 * kStates (one correction per side), which holds
/// for any base register value plus an imm3 offset.
[[nodiscard]] constexpr std::size_t row_of(int32_t v) noexcept {
  int32_t r = v + kMax;
  r += r < 0 ? kStates : 0;
  r -= r >= kStates ? kStates : 0;
  return static_cast<std::size_t>(r);
}

// ===========================================================================
// PackedWord<N> — width-generic plane-pair word.
//
// The same two-plane encoding as BctWord9, for any width 1 <= N <= 32
// (uint32_t planes; value-domain math stays inside int64_t since
// 2 * 3^32 < 2^63).  Conversions chunk through the constexpr tables above:
// to_int() reads the 512-entry plane-value table once per 9 plane bits,
// from_int() emits 5 base-3 digits per 243-entry table load — so the
// N == 9 instantiation is exactly the original two-load / two-load path,
// and wider words pay one extra load per chunk instead of a per-trit
// ripple.
// ===========================================================================

template <std::size_t N>
class PackedWord {
  static_assert(N >= 1 && N <= 32,
                "PackedWord<N> requires 1 <= N <= 32 (two uint32_t planes; wider "
                "words need a wider plane type)");

 public:
  static constexpr std::size_t kTrits = N;
  static constexpr uint32_t kMask =
      N == 32 ? 0xFFFFFFFFu : ((uint32_t{1} << (N % 32)) - 1u);
  /// Number of representable states (3^N) and the balanced range bounds.
  static constexpr int64_t kStates = Word<N>::kStates;
  static constexpr int64_t kMaxValue = Word<N>::kMaxValue;
  static constexpr int64_t kMinValue = Word<N>::kMinValue;
  /// Storage cost of one word in the binary emulation (paper §V-B).
  static constexpr int kBitsPerWord = 2 * static_cast<int>(N);

  /// Zero word (both planes clear).
  constexpr PackedWord() noexcept = default;

  /// Constructs from raw planes.  Throws std::invalid_argument if any trit
  /// position has both NEG and POS set (the unused fourth code) or either
  /// plane carries bits beyond the word width.
  static constexpr PackedWord from_planes(uint32_t neg, uint32_t pos) {
    if ((neg & pos) != 0 || (neg | pos) > kMask) {
      throw std::invalid_argument("PackedWord: invalid plane encoding");
    }
    return from_planes_unchecked(neg, pos);
  }

  /// Unchecked plane construction for hot loops.  Precondition (not
  /// verified): `neg & pos == 0` and both fit kMask.
  static constexpr PackedWord from_planes_unchecked(uint32_t neg, uint32_t pos) noexcept {
    PackedWord w;
    w.neg_ = neg;
    w.pos_ = pos;
    return w;
  }

  /// Encodes a reference ternary word.
  static constexpr PackedWord encode(const Word<N>& w) noexcept {
    PackedWord out;
    for (std::size_t i = 0; i < N; ++i) {
      if (w[i] == kTritP) out.pos_ |= uint32_t{1} << i;
      if (w[i] == kTritN) out.neg_ |= uint32_t{1} << i;
    }
    return out;
  }

  /// Decodes back to the reference representation.
  [[nodiscard]] constexpr Word<N> decode() const noexcept {
    Word<N> out;
    for (std::size_t i = 0; i < N; ++i) {
      if (pos_ & (uint32_t{1} << i)) {
        out.set(i, kTritP);
      } else if (neg_ & (uint32_t{1} << i)) {
        out.set(i, kTritN);
      }
    }
    return out;
  }

  [[nodiscard]] constexpr uint32_t neg_plane() const noexcept { return neg_; }
  [[nodiscard]] constexpr uint32_t pos_plane() const noexcept { return pos_; }

  constexpr friend bool operator==(const PackedWord&, const PackedWord&) noexcept = default;

  // --- Fig. 1 gates on bit-planes (2 binary gate levels each) -------------

  /// STI: negate every trit = swap the planes.
  [[nodiscard]] constexpr PackedWord sti() const noexcept {
    return from_planes_unchecked(pos_, neg_);
  }

  /// NTI: +1 where input was -1, else -1.
  [[nodiscard]] constexpr PackedWord nti() const noexcept {
    return from_planes_unchecked(~neg_ & kMask, neg_);
  }

  /// PTI: -1 where input was +1, else +1.
  [[nodiscard]] constexpr PackedWord pti() const noexcept {
    return from_planes_unchecked(pos_, ~pos_ & kMask);
  }

  /// AND = tritwise min.
  [[nodiscard]] static constexpr PackedWord tand(const PackedWord& a,
                                                 const PackedWord& b) noexcept {
    const uint32_t neg = a.neg_ | b.neg_;
    return from_planes_unchecked(neg, a.pos_ & b.pos_ & ~neg);
  }

  /// OR = tritwise max.
  [[nodiscard]] static constexpr PackedWord tor(const PackedWord& a,
                                                const PackedWord& b) noexcept {
    const uint32_t pos = a.pos_ | b.pos_;
    return from_planes_unchecked(a.neg_ & b.neg_ & ~pos, pos);
  }

  /// XOR = negated tritwise product.
  [[nodiscard]] static constexpr PackedWord txor(const PackedWord& a,
                                                 const PackedWord& b) noexcept {
    return from_planes_unchecked((a.pos_ & b.pos_) | (a.neg_ & b.neg_),
                                 (a.pos_ & b.neg_) | (a.neg_ & b.pos_));
  }

  // --- plane shifts (the packed form of Word<N>::shl / shr) ---------------

  /// Shift left by `amount` trits (multiply by 3^amount mod 3^N); amounts
  /// >= N clear the word, matching Word<N>::shl.
  [[nodiscard]] constexpr PackedWord shl(unsigned amount) const noexcept {
    if (amount >= N) return PackedWord{};
    return from_planes_unchecked((neg_ << amount) & kMask, (pos_ << amount) & kMask);
  }

  /// Shift right by `amount` trits (balanced divide by 3^amount rounding to
  /// nearest); amounts >= N clear the word, matching Word<N>::shr.
  [[nodiscard]] constexpr PackedWord shr(unsigned amount) const noexcept {
    if (amount >= N) return PackedWord{};
    return from_planes_unchecked(neg_ >> amount, pos_ >> amount);
  }

  /// Balanced value of the least-significant trit in {-1, 0, +1}.
  [[nodiscard]] constexpr int lst_value() const noexcept {
    return static_cast<int>(pos_ & 1u) - static_cast<int>(neg_ & 1u);
  }

  /// Balanced value of trit `i` in {-1, 0, +1}.
  [[nodiscard]] constexpr int trit_value(std::size_t i) const noexcept {
    return static_cast<int>((pos_ >> i) & 1u) - static_cast<int>((neg_ >> i) & 1u);
  }

  // --- value-domain arithmetic (the packed TALU cells) --------------------

  /// Balanced value: one plane-value table load per 9-bit plane chunk.
  [[nodiscard]] constexpr int64_t to_int() const noexcept {
    int64_t value = 0;
    int64_t scale = 1;
    for (std::size_t shift = 0; shift < N; shift += 9) {
      value += scale * (kPlaneValue[(pos_ >> shift) & 0x1FFu] -
                        kPlaneValue[(neg_ >> shift) & 0x1FFu]);
      scale *= 19683;  // 3^9 per chunk
    }
    return value;
  }

  /// Packed word for a balanced value: divide-by-243 splits and small-table
  /// loads (5 digits per load).  Precondition: v in [kMinValue, kMaxValue].
  [[nodiscard]] static constexpr PackedWord from_int(int64_t v) noexcept {
    uint64_t u = static_cast<uint64_t>(v - kMinValue);  // unsigned digit view
    if constexpr (N == 9) {
      // The original 9-trit fast path: one 243/81 split, two loads.
      const uint32_t planes =
          kPackedLow[u % 243u] | kPackedHigh[static_cast<uint32_t>(u / 243u)];
      return from_planes_unchecked(planes >> 16, planes & kMask);
    } else {
      uint64_t neg = 0;
      uint64_t pos = 0;
      for (std::size_t shift = 0; shift < N; shift += 5) {
        const uint32_t planes = kPackedLow[u % 243u];
        u /= 243u;
        neg |= static_cast<uint64_t>(planes >> 16) << shift;
        pos |= static_cast<uint64_t>(planes & 0xFFFFu) << shift;
      }
      // Digits past trit N-1 decode as level 0 (NEG bits): mask them off.
      return from_planes_unchecked(static_cast<uint32_t>(neg) & kMask,
                                   static_cast<uint32_t>(pos) & kMask);
    }
  }

  /// Reduces a value into [kMinValue, kMaxValue] modulo 3^N.  Branchless
  /// for the datapath's overflow range: precondition |v| < 2 * kStates (one
  /// correction per side), which covers every sum/difference of two
  /// in-range values plus a small immediate.
  [[nodiscard]] static constexpr int64_t wrap(int64_t v) noexcept {
    v += v < kMinValue ? kStates : 0;
    v -= v > kMaxValue ? kStates : 0;
    return v;
  }

  /// Balanced addition modulo 3^N — the packed ADD cell.
  [[nodiscard]] static constexpr PackedWord add(const PackedWord& a,
                                                const PackedWord& b) noexcept {
    return from_int(wrap(a.to_int() + b.to_int()));
  }

  /// a + imm for a small pre-validated immediate (|imm| <= kStates - 1).
  [[nodiscard]] static constexpr PackedWord add_int(const PackedWord& a, int64_t imm) noexcept {
    return from_int(wrap(a.to_int() + imm));
  }

  /// Balanced subtraction modulo 3^N — the packed SUB cell.
  [[nodiscard]] static constexpr PackedWord sub(const PackedWord& a,
                                                const PackedWord& b) noexcept {
    return from_int(wrap(a.to_int() - b.to_int()));
  }

  /// sign(a - b) in {-1, 0, +1} — the packed compare tree.
  [[nodiscard]] static constexpr int compare(const PackedWord& a, const PackedWord& b) noexcept {
    const int64_t d = a.to_int() - b.to_int();
    return (d > 0) - (d < 0);
  }

  /// COMP result word: sign(a - b) in the least-significant trit, upper
  /// trits zero (mirrors sim::comp_result).
  [[nodiscard]] static constexpr PackedWord comp_word(const PackedWord& a,
                                                      const PackedWord& b) noexcept {
    const int c = compare(a, b);
    return from_planes_unchecked(static_cast<uint32_t>(c < 0), static_cast<uint32_t>(c > 0));
  }

  /// Unsigned shift amount from the two least-significant trits (the
  /// register-shift forms SR/SL, paper Table I), always in [0, 8].
  [[nodiscard]] constexpr unsigned shift_amount() const noexcept {
    static_assert(N >= 2, "shift_amount reads trits 0 and 1");
    const uint32_t level0 = 1u + (pos_ & 1u) - (neg_ & 1u);
    const uint32_t level1 = 1u + ((pos_ >> 1) & 1u) - ((neg_ >> 1) & 1u);
    return level1 * 3u + level0;
  }

  /// Memory row of a balanced address: (v + kMaxValue) mod 3^N, branchless.
  /// Precondition: |v| < 2 * kStates.
  [[nodiscard]] static constexpr std::size_t row_of(int64_t v) noexcept {
    int64_t r = v + kMaxValue;
    r += r < 0 ? kStates : 0;
    r -= r >= kStates ? kStates : 0;
    return static_cast<std::size_t>(r);
  }

 private:
  uint32_t neg_ = 0;
  uint32_t pos_ = 0;
};

/// BctWord9 interop: PackedWord<9> and BctWord9 share the exact plane
/// encoding, so conversion is a free plane copy in either direction.
[[nodiscard]] constexpr PackedWord<9> from_bct(const BctWord9& w) noexcept {
  return PackedWord<9>::from_planes_unchecked(w.neg_plane(), w.pos_plane());
}
[[nodiscard]] constexpr BctWord9 to_bct(const PackedWord<9>& w) noexcept {
  return BctWord9::from_planes_unchecked(w.neg_plane(), w.pos_plane());
}

}  // namespace art9::ternary::packed
