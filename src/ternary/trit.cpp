#include "ternary/trit.hpp"

#include <ostream>

namespace art9::ternary {

char Trit::to_char() const noexcept {
  switch (value_) {
    case -1:
      return '-';
    case +1:
      return '+';
    default:
      return '0';
  }
}

Trit Trit::from_char(char c) {
  switch (c) {
    case '-':
    case 'N':
    case 'n':
      return kTritN;
    case '0':
    case 'Z':
    case 'z':
      return kTritZ;
    case '+':
    case '1':
    case 'P':
    case 'p':
      return kTritP;
    default:
      throw std::invalid_argument(std::string("invalid trit character '") + c + "'");
  }
}

std::ostream& operator<<(std::ostream& os, Trit t) { return os << t.to_char(); }

}  // namespace art9::ternary
