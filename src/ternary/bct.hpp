// Binary-coded (balanced) ternary — the encoding the paper uses for the
// FPGA verification platform (paper §V-B, "all the ternary-based building
// blocks are emulated with the binary modules, adopting the binary-encoded
// ternary number system [Frieder & Luk 1975]").
//
// Each trit is held in two bit-planes: a POS bit and a NEG bit.
//   (neg, pos) = (0,0) -> 0,  (0,1) -> +1,  (1,0) -> -1,  (1,1) invalid.
// One 9-trit word therefore costs 18 flip-flops / RAM bits — which is why
// the FPGA prototype's two 256-word memories occupy 2 * 256 * 18 = 9216
// bits (Table V).
//
// All Fig. 1 logic gates become 2-gate-level binary expressions on the
// planes; the equivalences against the reference `Trit` operations are
// asserted exhaustively in tests/ternary/bct_test.cpp.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "ternary/word.hpp"

namespace art9::ternary {

/// A 9-trit word in binary-coded ternary form (two 9-bit planes).
class BctWord9 {
 public:
  static constexpr std::size_t kTrits = 9;
  static constexpr uint32_t kMask = (1u << kTrits) - 1;
  /// Storage cost of one word in the binary emulation.
  static constexpr int kBitsPerWord = 2 * static_cast<int>(kTrits);

  /// Zero word (both planes clear).
  constexpr BctWord9() noexcept = default;

  /// Constructs from raw planes.  Throws std::invalid_argument if any trit
  /// position has both NEG and POS set (the unused fourth code).
  static constexpr BctWord9 from_planes(uint32_t neg, uint32_t pos) {
    if ((neg & pos) != 0 || (neg | pos) > kMask) {
      throw std::invalid_argument("BctWord9: invalid plane encoding");
    }
    return from_planes_unchecked(neg, pos);
  }

  /// Unchecked plane construction for the packed datapath hot loop.
  /// Precondition (not verified): `neg & pos == 0` and both fit kMask.
  static constexpr BctWord9 from_planes_unchecked(uint32_t neg, uint32_t pos) noexcept {
    BctWord9 w;
    w.neg_ = neg;
    w.pos_ = pos;
    return w;
  }

  /// Encodes a ternary word.
  static constexpr BctWord9 encode(const Word9& w) noexcept {
    BctWord9 out;
    for (std::size_t i = 0; i < kTrits; ++i) {
      if (w[i] == kTritP) out.pos_ |= 1u << i;
      if (w[i] == kTritN) out.neg_ |= 1u << i;
    }
    return out;
  }

  /// Decodes back to the reference representation.
  [[nodiscard]] constexpr Word9 decode() const noexcept {
    Word9 out;
    for (std::size_t i = 0; i < kTrits; ++i) {
      if (pos_ & (1u << i)) {
        out.set(i, kTritP);
      } else if (neg_ & (1u << i)) {
        out.set(i, kTritN);
      }
    }
    return out;
  }

  [[nodiscard]] constexpr uint32_t neg_plane() const noexcept { return neg_; }
  [[nodiscard]] constexpr uint32_t pos_plane() const noexcept { return pos_; }

  constexpr friend bool operator==(const BctWord9&, const BctWord9&) noexcept = default;

  // --- Fig. 1 gates on bit-planes (2 binary gate levels each) -----------

  /// STI: negate every trit = swap the planes.
  [[nodiscard]] constexpr BctWord9 sti() const noexcept {
    BctWord9 out;
    out.neg_ = pos_;
    out.pos_ = neg_;
    return out;
  }

  /// NTI: +1 where input was -1, else -1.
  [[nodiscard]] constexpr BctWord9 nti() const noexcept {
    BctWord9 out;
    out.pos_ = neg_;
    out.neg_ = ~neg_ & kMask;
    return out;
  }

  /// PTI: -1 where input was +1, else +1.
  [[nodiscard]] constexpr BctWord9 pti() const noexcept {
    BctWord9 out;
    out.neg_ = pos_;
    out.pos_ = ~pos_ & kMask;
    return out;
  }

  /// AND = tritwise min.
  [[nodiscard]] static constexpr BctWord9 tand(const BctWord9& a, const BctWord9& b) noexcept {
    BctWord9 out;
    out.neg_ = a.neg_ | b.neg_;
    out.pos_ = a.pos_ & b.pos_ & ~out.neg_;
    return out;
  }

  /// OR = tritwise max.
  [[nodiscard]] static constexpr BctWord9 tor(const BctWord9& a, const BctWord9& b) noexcept {
    BctWord9 out;
    out.pos_ = a.pos_ | b.pos_;
    out.neg_ = a.neg_ & b.neg_ & ~out.pos_;
    return out;
  }

  /// XOR = negated tritwise product.
  [[nodiscard]] static constexpr BctWord9 txor(const BctWord9& a, const BctWord9& b) noexcept {
    BctWord9 out;
    // product is +1 when signs agree (and both non-zero), -1 when they
    // differ; XOR negates that.
    out.neg_ = (a.pos_ & b.pos_) | (a.neg_ & b.neg_);
    out.pos_ = (a.pos_ & b.neg_) | (a.neg_ & b.pos_);
    return out;
  }

  // --- plane shifts (the packed form of Word9::shl / Word9::shr) ---------

  /// Shift left by `amount` trits: both planes shift towards the MST and
  /// zero trits ((0,0) codes) enter at the LST end.  Amounts >= kTrits
  /// clear the word, matching Word9::shl.
  [[nodiscard]] constexpr BctWord9 shl(unsigned amount) const noexcept {
    if (amount >= kTrits) return BctWord9{};
    return from_planes_unchecked((neg_ << amount) & kMask, (pos_ << amount) & kMask);
  }

  /// Shift right by `amount` trits (balanced divide-by-3^amount rounding to
  /// nearest): zero trits enter at the MST end.  Amounts >= kTrits clear
  /// the word, matching Word9::shr.
  [[nodiscard]] constexpr BctWord9 shr(unsigned amount) const noexcept {
    if (amount >= kTrits) return BctWord9{};
    return from_planes_unchecked(neg_ >> amount, pos_ >> amount);
  }

  /// Balanced value of the least-significant trit in {-1, 0, +1} — what the
  /// branch condition compare looks at.
  [[nodiscard]] constexpr int lst_value() const noexcept {
    return static_cast<int>(pos_ & 1u) - static_cast<int>(neg_ & 1u);
  }

  /// Balanced value of trit `i` in {-1, 0, +1}.
  [[nodiscard]] constexpr int trit_value(std::size_t i) const noexcept {
    return static_cast<int>((pos_ >> i) & 1u) - static_cast<int>((neg_ >> i) & 1u);
  }

  /// Ripple addition over the planes (the binary-emulated balanced adder).
  /// Reference-grade: the packed fast path uses ternary::packed::add.
  [[nodiscard]] static BctWord9 add(const BctWord9& a, const BctWord9& b) noexcept;

 private:
  uint32_t neg_ = 0;
  uint32_t pos_ = 0;
};

}  // namespace art9::ternary
