// Fixed-width balanced-ternary words.
//
// `Word<N>` models an N-trit register/bus value.  Trit 0 is the least
// significant trit (LST), trit N-1 the most significant (MST).  Like the
// hardware it models, a word is just N three-level wires; *interpretation*
// (balanced signed vs unsigned digit string, paper §II-A) is chosen at the
// call site via `to_int()` / `to_unsigned()`.
//
// Arithmetic follows the balanced-ternary adder/shifter cells of the ART-9
// TALU: addition is a ripple of `tadd_full` cells and wraps modulo 3^N;
// shifting left inserts zero LSTs (multiply by 3); shifting right drops
// LSTs (divide by 3 *rounding to nearest* — a classic balanced-ternary
// property asserted in the test-suite).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>

#include "ternary/trit.hpp"

namespace art9::ternary {

/// 3^k for host-side range computations.
[[nodiscard]] constexpr int64_t pow3(std::size_t k) noexcept {
  int64_t p = 1;
  for (std::size_t i = 0; i < k; ++i) p *= 3;
  return p;
}

template <std::size_t N>
class Word {
  static_assert(N >= 1 && N <= 39, "Word<N> requires 1 <= N <= 39 to fit int64 math");

 public:
  /// Number of trits.
  static constexpr std::size_t kTrits = N;
  /// Number of representable states, 3^N.
  static constexpr int64_t kStates = pow3(N);
  /// Largest balanced value, (3^N - 1) / 2.
  static constexpr int64_t kMaxValue = (kStates - 1) / 2;
  /// Smallest balanced value, -(3^N - 1) / 2.
  static constexpr int64_t kMinValue = -kMaxValue;
  /// Largest unsigned value, 3^N - 1.
  static constexpr int64_t kMaxUnsigned = kStates - 1;

  /// Zero word.
  constexpr Word() noexcept = default;

  /// Word with every trit equal to `t`.
  static constexpr Word filled(Trit t) noexcept {
    Word w;
    w.trits_.fill(t);
    return w;
  }

  /// Builds from trits given least-significant first.
  static constexpr Word from_trits_lsb(std::span<const Trit> trits) {
    if (trits.size() != N) throw std::invalid_argument("from_trits_lsb: wrong trit count");
    Word w;
    for (std::size_t i = 0; i < N; ++i) w.trits_[i] = trits[i];
    return w;
  }

  /// Balanced conversion: encodes `value`, which must lie in
  /// [kMinValue, kMaxValue].  Throws std::out_of_range otherwise.
  static constexpr Word from_int(int64_t value) {
    if (value < kMinValue || value > kMaxValue) {
      throw std::out_of_range("Word::from_int: value out of range");
    }
    return from_int_wrapped(value);
  }

  /// Balanced conversion with modular wrap-around: any int64 is reduced
  /// modulo 3^N into [kMinValue, kMaxValue] first (what an N-trit datapath
  /// does on overflow).
  static constexpr Word from_int_wrapped(int64_t value) noexcept {
    int64_t v = value % kStates;
    if (v > kMaxValue) v -= kStates;
    if (v < kMinValue) v += kStates;
    Word w;
    for (std::size_t i = 0; i < N; ++i) {
      // Balanced remainder in {-1, 0, +1}.
      int64_t r = v % 3;
      v /= 3;
      if (r > 1) {
        r -= 3;
        ++v;
      } else if (r < -1) {
        r += 3;
        --v;
      }
      w.trits_[i] = Trit(static_cast<int>(r));
    }
    return w;
  }

  /// Unsigned-digit conversion: encodes `value` in [0, 3^N - 1] using digit
  /// levels.  Throws std::out_of_range otherwise.
  static constexpr Word from_unsigned(int64_t value) {
    if (value < 0 || value > kMaxUnsigned) {
      throw std::out_of_range("Word::from_unsigned: value out of range");
    }
    Word w;
    for (std::size_t i = 0; i < N; ++i) {
      w.trits_[i] = Trit(static_cast<int>(value % 3) - 1);
      value /= 3;
    }
    return w;
  }

  /// Unsigned-digit conversion with wrap-around modulo 3^N.
  static constexpr Word from_unsigned_wrapped(int64_t value) noexcept {
    int64_t v = value % kStates;
    if (v < 0) v += kStates;
    Word w;
    for (std::size_t i = 0; i < N; ++i) {
      w.trits_[i] = Trit(static_cast<int>(v % 3) - 1);
      v /= 3;
    }
    return w;
  }

  /// Parses an MST-first string of '+', '0', '-' (e.g. "+0-" == 9 - 1 = +8
  /// for N == 3).  Throws std::invalid_argument on bad input.
  static Word parse(std::string_view text) {
    if (text.size() != N) throw std::invalid_argument("Word::parse: wrong length");
    Word w;
    for (std::size_t i = 0; i < N; ++i) w.trits_[N - 1 - i] = Trit::from_char(text[i]);
    return w;
  }

  /// Trit access, index 0 = least significant.
  [[nodiscard]] constexpr Trit operator[](std::size_t i) const noexcept { return trits_[i]; }

  /// Replaces trit `i`.
  constexpr void set(std::size_t i, Trit t) noexcept { trits_[i] = t; }

  /// Least-significant trit (what the COMP/branch machinery looks at).
  [[nodiscard]] constexpr Trit lst() const noexcept { return trits_[0]; }

  /// Most-significant trit.
  [[nodiscard]] constexpr Trit mst() const noexcept { return trits_[N - 1]; }

  /// Balanced (signed) value.
  [[nodiscard]] constexpr int64_t to_int() const noexcept {
    int64_t v = 0;
    for (std::size_t i = N; i-- > 0;) v = v * 3 + trits_[i].value();
    return v;
  }

  /// Unsigned digit-string value.
  [[nodiscard]] constexpr int64_t to_unsigned() const noexcept {
    int64_t v = 0;
    for (std::size_t i = N; i-- > 0;) v = v * 3 + trits_[i].level();
    return v;
  }

  /// MST-first textual form, e.g. "+0-" for +8 with N == 3.
  [[nodiscard]] std::string to_string() const {
    std::string s(N, '0');
    for (std::size_t i = 0; i < N; ++i) s[i] = trits_[N - 1 - i].to_char();
    return s;
  }

  [[nodiscard]] constexpr bool is_zero() const noexcept {
    for (Trit t : trits_) {
      if (!t.is_zero()) return false;
    }
    return true;
  }

  /// Sign of the balanced value as a trit (sign of the most significant
  /// non-zero trit — another balanced-ternary convenience).
  [[nodiscard]] constexpr Trit sign() const noexcept {
    for (std::size_t i = N; i-- > 0;) {
      if (!trits_[i].is_zero()) return trits_[i];
    }
    return kTritZ;
  }

  /// Extracts `M` trits starting at `lsb` (word[lsb + M - 1 : lsb]).
  template <std::size_t M>
  [[nodiscard]] constexpr Word<M> slice(std::size_t lsb) const {
    if (lsb + M > N) throw std::out_of_range("Word::slice: out of range");
    Word<M> out;
    for (std::size_t i = 0; i < M; ++i) out.set(i, trits_[lsb + i]);
    return out;
  }

  /// Replaces trits [lsb + M - 1 : lsb] with `part`.
  template <std::size_t M>
  constexpr void insert(std::size_t lsb, const Word<M>& part) {
    if (lsb + M > N) throw std::out_of_range("Word::insert: out of range");
    for (std::size_t i = 0; i < M; ++i) trits_[lsb + i] = part[i];
  }

  constexpr friend bool operator==(const Word&, const Word&) noexcept = default;

  // --- datapath operations ---------------------------------------------

  /// Ripple-carry balanced addition; returns the sum word and carry-out.
  struct AddResult {
    Word sum;
    Trit carry_out;
  };
  [[nodiscard]] static constexpr AddResult add_with_carry(const Word& a, const Word& b,
                                                          Trit carry_in) noexcept {
    Word out;
    Trit carry = carry_in;
    for (std::size_t i = 0; i < N; ++i) {
      TritSum s = tadd_full(a[i], b[i], carry);
      out.trits_[i] = s.sum;
      carry = s.carry;
    }
    return AddResult{out, carry};
  }

  constexpr friend Word operator+(const Word& a, const Word& b) noexcept {
    return add_with_carry(a, b, kTritZ).sum;
  }

  /// Negation is a tritwise STI — the conversion-based negation property
  /// that makes balanced ternary cheap (paper §II-A).
  constexpr Word operator-() const noexcept {
    Word out;
    for (std::size_t i = 0; i < N; ++i) out.trits_[i] = sti(trits_[i]);
    return out;
  }

  constexpr friend Word operator-(const Word& a, const Word& b) noexcept { return a + (-b); }

  /// Logical shift left by `amount` trits: multiplies by 3^amount (mod 3^N).
  [[nodiscard]] constexpr Word shl(std::size_t amount) const noexcept {
    Word out;
    if (amount >= N) return out;
    for (std::size_t i = N; i-- > amount;) out.trits_[i] = trits_[i - amount];
    return out;
  }

  /// Shift right by `amount` trits: divides by 3^amount rounding to the
  /// nearest integer (zero trits enter at the MST end).
  [[nodiscard]] constexpr Word shr(std::size_t amount) const noexcept {
    Word out;
    if (amount >= N) return out;
    for (std::size_t i = 0; i + amount < N; ++i) out.trits_[i] = trits_[i + amount];
    return out;
  }

  /// Numeric comparison of balanced values: sign(a - b) as a trit.
  [[nodiscard]] static constexpr Trit compare(const Word& a, const Word& b) noexcept {
    for (std::size_t i = N; i-- > 0;) {
      Trit c = tcmp(a[i], b[i]);
      if (!c.is_zero()) return c;
    }
    return kTritZ;
  }

  /// Tritwise map over one word.
  template <typename F>
  [[nodiscard]] constexpr Word map(F&& f) const {
    Word out;
    for (std::size_t i = 0; i < N; ++i) out.trits_[i] = f(trits_[i]);
    return out;
  }

  /// Tritwise zip over two words.
  template <typename F>
  [[nodiscard]] static constexpr Word zip(const Word& a, const Word& b, F&& f) {
    Word out;
    for (std::size_t i = 0; i < N; ++i) out.trits_[i] = f(a[i], b[i]);
    return out;
  }

 private:
  std::array<Trit, N> trits_{};
};

/// Tritwise AND (min).
template <std::size_t N>
[[nodiscard]] constexpr Word<N> tand(const Word<N>& a, const Word<N>& b) noexcept {
  return Word<N>::zip(a, b, [](Trit x, Trit y) { return tand(x, y); });
}

/// Tritwise OR (max).
template <std::size_t N>
[[nodiscard]] constexpr Word<N> tor(const Word<N>& a, const Word<N>& b) noexcept {
  return Word<N>::zip(a, b, [](Trit x, Trit y) { return tor(x, y); });
}

/// Tritwise XOR (negated product).
template <std::size_t N>
[[nodiscard]] constexpr Word<N> txor(const Word<N>& a, const Word<N>& b) noexcept {
  return Word<N>::zip(a, b, [](Trit x, Trit y) { return txor(x, y); });
}

/// Tritwise standard ternary inverter.
template <std::size_t N>
[[nodiscard]] constexpr Word<N> sti(const Word<N>& a) noexcept {
  return a.map([](Trit x) { return sti(x); });
}

/// Tritwise negative ternary inverter.
template <std::size_t N>
[[nodiscard]] constexpr Word<N> nti(const Word<N>& a) noexcept {
  return a.map([](Trit x) { return nti(x); });
}

/// Tritwise positive ternary inverter.
template <std::size_t N>
[[nodiscard]] constexpr Word<N> pti(const Word<N>& a) noexcept {
  return a.map([](Trit x) { return pti(x); });
}

template <std::size_t N>
std::ostream& operator<<(std::ostream& os, const Word<N>& w) {
  return os << w.to_string();
}

/// The ART-9 machine word: 9 trits, balanced range [-9841, +9841],
/// unsigned range [0, 19682].
using Word9 = Word<9>;

/// 2-trit field (register indices, short shift amounts).
using Word2 = Word<2>;

/// 3-trit field (short immediates).
using Word3 = Word<3>;

}  // namespace art9::ternary
