#include "ternary/bct.hpp"

namespace art9::ternary {

BctWord9 BctWord9::add(const BctWord9& a, const BctWord9& b) noexcept {
  BctWord9 out;
  int carry = 0;
  for (std::size_t i = 0; i < kTrits; ++i) {
    const uint32_t bit = 1u << i;
    const int av = ((a.pos_ & bit) ? 1 : 0) - ((a.neg_ & bit) ? 1 : 0);
    const int bv = ((b.pos_ & bit) ? 1 : 0) - ((b.neg_ & bit) ? 1 : 0);
    int s = av + bv + carry;
    carry = 0;
    if (s > 1) {
      s -= 3;
      carry = 1;
    } else if (s < -1) {
      s += 3;
      carry = -1;
    }
    if (s > 0) out.pos_ |= bit;
    if (s < 0) out.neg_ |= bit;
  }
  return out;
}

}  // namespace art9::ternary
