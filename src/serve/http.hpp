// Dependency-free blocking HTTP/1.1 transport for the art9-serve front
// end: an incremental request parser that runs without a socket (so the
// protocol edges are unit-testable), a thread-per-connection loopback
// server with drain-style shutdown, and the small blocking client the
// tests, the serve demo and the CI smoke leg drive it with.
//
// Scope is deliberately the libriscv-webapi shape, not a general web
// server: HTTP/1.1 with Content-Length bodies and keep-alive, no TLS, no
// chunked transfer (501), no multipart.  Every protocol violation maps
// to a precise status (400 malformed, 413 body over budget, 431 headers
// over budget, 501 unimplemented transfer coding, 505 wrong version) so
// the admission story starts at the transport.
//
// Shutdown contract (the CI smoke asserts this): request_stop() only
// flags and unblocks — it is safe from a signal handler or from inside a
// request handler.  wait()/stop() then drain: the listener closes, every
// connection finishes the request it is currently serving (reads are
// shut down, writes are not), and all threads are joined.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace art9::serve {

/// One parsed request.  Header names keep their wire spelling; lookup is
/// case-insensitive per RFC 9110.
struct HttpRequest {
  std::string method;   // "GET", "POST", ... (upper-case on the wire)
  std::string target;   // origin-form: /path?query
  std::string version;  // "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;  // resolved from version + Connection header

  /// Case-insensitive header lookup; empty view when absent.
  [[nodiscard]] std::string_view header(std::string_view name) const noexcept;

  /// The target up to (excluding) '?'.
  [[nodiscard]] std::string_view path() const noexcept;

  /// Value of `key` in the query string; empty when absent.  No
  /// percent-decoding — the serve vocabulary (format names) never needs it.
  [[nodiscard]] std::string_view query(std::string_view key) const noexcept;
};

enum class ParseStatus : uint8_t { kIncomplete, kDone, kError };

struct ParserLimits {
  std::size_t max_header_bytes = 16 * 1024;  // request line + headers
  std::size_t max_body_bytes = 4u << 20;     // Content-Length ceiling
};

/// Incremental HTTP/1.1 request parser.  Feed bytes as they arrive;
/// kDone exposes request(), kError exposes the HTTP status + message the
/// connection should answer with.  After kDone, reset() drops the parsed
/// request and immediately re-parses any pipelined leftover bytes.
class RequestParser {
 public:
  explicit RequestParser(ParserLimits limits = {}) : limits_(limits) {}

  /// Appends `data` and advances.  Returns the new status; feeding after
  /// kDone/kError only buffers (parse state is unchanged until reset()).
  ParseStatus feed(std::string_view data);

  [[nodiscard]] ParseStatus status() const noexcept { return status_; }
  [[nodiscard]] const HttpRequest& request() const noexcept { return request_; }
  [[nodiscard]] int error_status() const noexcept { return error_status_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  /// Keep-alive: discard the finished (or failed) request and re-parse
  /// the buffered remainder, which may already complete the next request.
  ParseStatus reset();

 private:
  ParseStatus advance();
  ParseStatus fail(int status, std::string message);

  ParserLimits limits_;
  std::string buffer_;
  std::size_t consumed_ = 0;      // bytes of buffer_ owned by the done request
  std::size_t body_start_ = 0;    // offset of the body once headers parsed
  std::size_t content_length_ = 0;
  bool headers_done_ = false;
  HttpRequest request_;
  ParseStatus status_ = ParseStatus::kIncomplete;
  int error_status_ = 400;
  std::string error_;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  bool close = false;  // force Connection: close
};

/// Reason phrase for the statuses this layer emits ("Unknown" otherwise).
[[nodiscard]] std::string_view status_text(int status) noexcept;

/// Renders the status line, Content-Type/Content-Length/Connection
/// headers and body.
[[nodiscard]] std::string serialize_response(const HttpResponse& response);

/// Blocking thread-per-connection HTTP/1.1 server bound to a loopback
/// (or given) address.  One handler serves every route; handler
/// exceptions become 500s with the message in a JSON error body.
class HttpServer {
 public:
  struct Options {
    std::string bind = "127.0.0.1";
    uint16_t port = 0;  // 0 = ephemeral; read the outcome via port()
    ParserLimits limits;
    int max_connections = 64;      // concurrent; excess answered 503
    int read_timeout_seconds = 30; // idle keep-alive reaping
  };
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer(Options options, Handler handler);
  ~HttpServer();  // stop()

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens and starts the accept thread.  Throws
  /// std::runtime_error on socket failure.
  void start();

  /// The bound port (resolved after start(), also for port 0).
  [[nodiscard]] uint16_t port() const noexcept { return port_; }

  /// Stops accepting new connections.  Async-signal-safe (an atomic store
  /// plus shutdown(2)); callable from handlers and signal handlers.
  void request_stop() noexcept;

  /// Blocks until a stop is requested, then drains: in-flight requests
  /// finish, every connection and the accept loop join.
  void wait();

  /// request_stop() + wait().  Idempotent.
  void stop();

  [[nodiscard]] bool stop_requested() const noexcept {
    return stop_.load(std::memory_order_acquire);
  }

  [[nodiscard]] uint64_t connections_accepted() const noexcept {
    return connections_accepted_.load(std::memory_order_acquire);
  }
  [[nodiscard]] uint64_t requests_served() const noexcept {
    return requests_served_.load(std::memory_order_acquire);
  }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve_connection(Connection& connection);
  void reap_finished_locked();

  Options options_;
  Handler handler_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> requests_served_{0};

  std::mutex mutex_;
  std::condition_variable stopped_cv_;
  bool accept_done_ = false;
  bool drained_ = false;
  std::list<std::unique_ptr<Connection>> connections_;
};

/// Minimal blocking HTTP/1.1 client (tests, serve_demo, CI smoke).
/// Keeps one connection alive across request() calls and transparently
/// reconnects once when the server closed it between requests.
class HttpClient {
 public:
  HttpClient(std::string host, uint16_t port);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// One round trip.  Throws std::runtime_error on connect/transport
  /// failure (an HTTP error status is NOT a transport failure — it comes
  /// back as a normal HttpResponse).
  HttpResponse request(const std::string& method, const std::string& target,
                       const std::string& body = {},
                       const std::string& content_type = "application/json");

  /// Convenience verbs.
  HttpResponse get(const std::string& target) { return request("GET", target); }
  HttpResponse post(const std::string& target, const std::string& body,
                    const std::string& content_type = "application/json") {
    return request("POST", target, body, content_type);
  }
  HttpResponse del(const std::string& target) { return request("DELETE", target); }

  void close() noexcept;

 private:
  void connect();
  bool try_roundtrip(const std::string& wire, HttpResponse& out);

  std::string host_;
  uint16_t port_;
  int fd_ = -1;
};

}  // namespace art9::serve
