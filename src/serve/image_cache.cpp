#include "serve/image_cache.hpp"

#include <utility>

#include "isa/assembler.hpp"
#include "rv32/rv32_assembler.hpp"
#include "xlat/framework.hpp"

namespace art9::serve {

std::string_view image_format_name(ImageFormat format) noexcept {
  switch (format) {
    case ImageFormat::kArt9Asm: return "art9";
    case ImageFormat::kRv32Asm: return "rv32";
    case ImageFormat::kRv32Translate: return "rv32_translate";
  }
  return "unknown";
}

std::optional<ImageFormat> parse_image_format(std::string_view name) noexcept {
  if (name == "art9") return ImageFormat::kArt9Asm;
  if (name == "rv32") return ImageFormat::kRv32Asm;
  if (name == "rv32_translate") return ImageFormat::kRv32Translate;
  return std::nullopt;
}

uint64_t fnv1a_64(const void* data, std::size_t size, uint64_t hash) noexcept {
  const auto* bytes = static_cast<const uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string hex64(uint64_t value) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xf];
    value >>= 4;
  }
  return out;
}

namespace {

/// Builds the EngineImage for one (format, source) pair — the pipeline
/// run the cache exists to amortize.  Returns the image, its estimated
/// resident bytes, and whether it runs on the rv32 kinds.
struct Built {
  sim::EngineImage image;
  std::size_t bytes = 0;
  bool rv32 = false;
};

Built build(ImageFormat format, std::string_view source) {
  Built out;
  switch (format) {
    case ImageFormat::kArt9Asm: {
      auto image = sim::decode(isa::assemble(source));
      // Estimate: pre-decoded rows dominate (DecodedOp + lazily built
      // PackedOp), plus the retained source-size order of magnitude.
      out.bytes = image->rows() * 96 + source.size();
      out.image = sim::EngineImage(std::move(image));
      break;
    }
    case ImageFormat::kRv32Asm: {
      auto image = rv32::decode(rv32::assemble_rv32(source));
      out.bytes = image->rows() * 64 + source.size();
      out.image = sim::EngineImage(std::move(image));
      out.rv32 = true;
      break;
    }
    case ImageFormat::kRv32Translate: {
      const xlat::TranslationResult translated =
          xlat::SoftwareFramework().translate_source(source);
      auto image = sim::decode(translated.program);
      out.bytes = image->rows() * 96 + source.size();
      out.image = sim::EngineImage(std::move(image));
      break;
    }
  }
  return out;
}

std::string content_id(ImageFormat format, std::string_view source) {
  const uint8_t tag = static_cast<uint8_t>(format);
  return hex64(fnv1a_64(source.data(), source.size(), fnv1a_64(&tag, 1)));
}

}  // namespace

ImageCache::Put ImageCache::put(ImageFormat format, std::string_view source) {
  std::string id = content_id(format, source);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(id);
    if (it != entries_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      return Put{std::move(id), true, it->second.rv32};
    }
  }

  // Build outside the lock: one slow translate must not serialize every
  // other request on the cache mutex.
  Built built = build(format, source);

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    // Another connection built the same program concurrently; its entry
    // stands and this build is discarded — still a pipeline run.
    ++misses_;
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    return Put{std::move(id), false, it->second.rv32};
  }
  ++misses_;
  lru_.push_front(id);
  Entry entry{std::move(built.image), built.bytes, built.rv32, lru_.begin()};
  bytes_ += entry.bytes;
  const bool rv32 = entry.rv32;
  entries_.emplace(id, std::move(entry));
  evict_over_budget_locked(id);
  return Put{std::move(id), false, rv32};
}

void ImageCache::evict_over_budget_locked(const std::string& keep) {
  while (bytes_ > budget_ && !lru_.empty()) {
    const std::string& victim = lru_.back();
    if (victim == keep) break;  // never evict the entry just inserted
    auto it = entries_.find(victim);
    bytes_ -= it->second.bytes;
    entries_.erase(it);
    lru_.pop_back();
    ++evictions_;
  }
}

std::optional<sim::EngineImage> ImageCache::get(const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second.lru);
  return it->second.image;
}

ImageCache::Stats ImageCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out;
  out.hits = hits_;
  out.misses = misses_;
  out.evictions = evictions_;
  out.entries = entries_.size();
  out.bytes = bytes_;
  out.budget_bytes = budget_;
  return out;
}

}  // namespace art9::serve
