#include "serve/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>

namespace art9::json {

bool JsonValue::as_bool() const {
  if (!is_bool()) throw JsonError("expected a boolean");
  return bool_;
}

double JsonValue::as_double() const {
  if (!is_number()) throw JsonError("expected a number");
  return number_;
}

uint64_t JsonValue::as_uint64() const {
  const double v = as_double();
  if (v < 0.0 || v != std::floor(v) || v > 18446744073709549568.0) {
    throw JsonError("expected a non-negative integer");
  }
  return static_cast<uint64_t>(v);
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) throw JsonError("expected a string");
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (!is_array()) throw JsonError("expected an array");
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (!is_object()) throw JsonError("expected an object");
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

uint64_t JsonValue::get_uint64(std::string_view key, uint64_t fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->is_null()) return fallback;
  try {
    return v->as_uint64();
  } catch (const JsonError&) {
    throw JsonError("field '" + std::string(key) + "' must be a non-negative integer");
  }
}

std::string JsonValue::get_string(std::string_view key, std::string fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (!v->is_string()) throw JsonError("field '" + std::string(key) + "' must be a string");
  return v->as_string();
}

JsonValue JsonValue::boolean(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::number(double v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::string(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::array(Array v) {
  JsonValue out;
  out.kind_ = Kind::kArray;
  out.array_ = std::move(v);
  return out;
}

JsonValue JsonValue::object(Object v) {
  JsonValue out;
  out.kind_ = Kind::kObject;
  out.object_ = std::move(v);
  return out;
}

namespace {

/// Strict recursive-descent parser over one contiguous buffer.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after the document");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& message) const {
    throw JsonError(message + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue::string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::boolean(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::boolean(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue::null();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue::Object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::object(std::move(members));
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected a member name");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == '}') {
        ++pos_;
        return JsonValue::object(std::move(members));
      }
      fail("expected ',' or '}'");
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue::Array items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::array(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value(depth + 1));
      skip_ws();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == ']') {
        ++pos_;
        return JsonValue::array(std::move(items));
      }
      fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // ASCII subset only — the serve vocabulary is engine names and
          // assembly text, all 7-bit.
          if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const std::size_t digits = pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (pos_ == digits) fail("invalid number");
    // JSON forbids leading zeros ("01" is two tokens, i.e. malformed).
    if (text_[digits] == '0' && pos_ - digits > 1) fail("invalid number (leading zero)");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      const std::size_t frac = pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
      if (pos_ == frac) fail("invalid number");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      const std::size_t exp = pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
      if (pos_ == exp) fail("invalid number");
    }
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc{} || ptr != text_.data() + pos_) fail("invalid number");
    return JsonValue::number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace art9::json
