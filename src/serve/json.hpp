// Minimal JSON writer + reader shared by the bench trajectory files and
// the art9-serve HTTP front end.
//
// The writer (JsonObject) started life in bench/report.hpp; it moved
// here unchanged so the serve layer does not grow a second hand-rolled
// emitter.  bench/report.hpp aliases it back into art9::bench, and the
// multi-line write(path) format is locked byte-for-byte by
// tests/serve/json_test.cpp so the bench JSON trajectory stays stable
// across the move.
//
// The reader (JsonValue / parse_json) is the strict subset the serve
// request bodies need: objects, arrays, strings (standard escapes,
// ASCII \uXXXX), numbers, booleans, null.  Malformed input throws
// JsonError naming the byte offset — the server maps that onto a
// structured 400.
#pragma once

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace art9::json {

/// Minimal flat JSON object writer — enough for the bench trajectory files
/// (string and finite-double fields, insertion order preserved) and the
/// serve responses (which add integer and pre-serialized nested fields).
class JsonObject {
 public:
  void add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    fields_.emplace_back(key, buf);
  }

  void add(const std::string& key, const std::string& value) {
    std::string quoted = "\"";
    for (char c : value) {
      if (c == '"' || c == '\\') quoted += '\\';
      quoted += c;
    }
    quoted += '"';
    fields_.emplace_back(key, quoted);
  }

  /// Exact unsigned field (doubles lose integers past 2^53 — step budgets
  /// and byte counters must round-trip).
  void add(const std::string& key, uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }

  void add(const std::string& key, int64_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }

  /// String-literal fields must stay strings: without this overload a
  /// `const char*` would prefer the standard conversion to `bool` over
  /// the user-defined one to `std::string` and silently emit true/false.
  void add(const std::string& key, const char* value) { add(key, std::string(value)); }

  void add(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
  }

  /// Pre-serialized JSON (a nested object/array built by the caller).
  void add_raw(const std::string& key, std::string value) {
    fields_.emplace_back(key, std::move(value));
  }

  /// Compact single-line rendering — the serve response body format.
  [[nodiscard]] std::string str() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i != 0) out += ", ";
      out += '"';
      out += fields_[i].first;
      out += "\": ";
      out += fields_[i].second;
    }
    out += '}';
    return out;
  }

  /// Writes `{ "k": v, ... }` to `path`; returns false on I/O failure.
  /// (Multi-line — the historical bench trajectory format, unchanged.)
  [[nodiscard]] bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n");
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      std::fprintf(f, "  \"%s\": %s%s\n", fields_[i].first.c_str(), fields_[i].second.c_str(),
                   i + 1 < fields_.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    return std::fclose(f) == 0;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Renders `values` as a compact JSON array of integers.
template <typename Range>
[[nodiscard]] std::string int_array(const Range& values) {
  std::string out = "[";
  bool first = true;
  for (const auto& v : values) {
    if (!first) out += ", ";
    first = false;
    out += std::to_string(static_cast<int64_t>(v));
  }
  out += ']';
  return out;
}

/// Quotes `value` as a JSON string (the writer's escaping rules).
[[nodiscard]] inline std::string quote(std::string_view value) {
  std::string quoted = "\"";
  for (char c : value) {
    if (c == '"' || c == '\\') quoted += '\\';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

// --- reader ------------------------------------------------------------------

class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& message) : std::runtime_error("json: " + message) {}
};

/// One parsed JSON value.  Object member order is preserved (the parser
/// keeps a flat vector, not a map — duplicate keys resolve to the first).
class JsonValue {
 public:
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;  // null

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::kObject; }

  /// Typed accessors; throw JsonError on a kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  /// Non-negative integral number in uint64 range (else JsonError) —
  /// what step budgets and millisecond fields must be.
  [[nodiscard]] uint64_t as_uint64() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

  /// Convenience lookups with defaults for optional request fields.
  /// Throw JsonError when the member exists but has the wrong type.
  [[nodiscard]] uint64_t get_uint64(std::string_view key, uint64_t fallback) const;
  [[nodiscard]] std::string get_string(std::string_view key, std::string fallback) const;

  // Construction (used by the parser; handy in tests).
  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool v);
  static JsonValue number(double v);
  static JsonValue string(std::string v);
  static JsonValue array(Array v);
  static JsonValue object(Object v);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses exactly one JSON document (trailing whitespace allowed,
/// trailing garbage rejected).  Throws JsonError on malformed input.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace art9::json
