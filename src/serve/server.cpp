#include "serve/server.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "serve/json.hpp"
#include "sim/snapshot.hpp"

namespace art9::serve {

namespace {

using json::JsonObject;

HttpResponse json_response(int status, const JsonObject& body, bool close = false) {
  return HttpResponse{status, "application/json", body.str() + "\n", close};
}

HttpResponse error_response(int status, const std::string& error, const std::string& message) {
  JsonObject body;
  body.add("error", error);
  body.add("message", message);
  return json_response(status, body);
}

/// "/v1/jobs/{id}" -> id; nullopt when the suffix is not a plain decimal.
std::optional<uint64_t> parse_id(std::string_view suffix) {
  if (suffix.empty() || suffix.size() > 18) return std::nullopt;
  uint64_t id = 0;
  for (char c : suffix) {
    if (c < '0' || c > '9') return std::nullopt;
    id = id * 10 + static_cast<uint64_t>(c - '0');
  }
  return id;
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  const std::size_t idx = std::min(
      samples.size() - 1, static_cast<std::size_t>(p * static_cast<double>(samples.size())));
  std::nth_element(samples.begin(), samples.begin() + static_cast<std::ptrdiff_t>(idx),
                   samples.end());
  return samples[idx];
}

constexpr std::size_t kLatencyWindow = 4096;

}  // namespace

int outcome_exit_code(sim::JobOutcome outcome) noexcept {
  switch (outcome) {
    case sim::JobOutcome::kCompleted: return 0;
    case sim::JobOutcome::kTrapped: return 3;
    case sim::JobOutcome::kBudgetExhausted: return 4;
    case sim::JobOutcome::kDeadlineExceeded: return 5;
    case sim::JobOutcome::kCancelled: return 6;
    case sim::JobOutcome::kFaulted: return 7;
  }
  return 1;
}

SimulationServer::SimulationServer(Options options)
    : options_(std::move(options)),
      cache_(options_.cache_bytes),
      latency_ms_(),
      service_(std::make_unique<sim::SimulationService>(options_.service_threads)) {
  latency_ms_.reserve(kLatencyWindow);
  http_ = std::make_unique<HttpServer>(options_.http,
                                       [this](const HttpRequest& request) { return handle(request); });
}

SimulationServer::~SimulationServer() { stop(); }

void SimulationServer::start() { http_->start(); }

HttpResponse SimulationServer::handle(const HttpRequest& request) {
  const std::string_view path = request.path();

  if (path == "/v1/images") {
    if (request.method != "POST") return error_response(405, "method_not_allowed", "use POST");
    return post_image(request);
  }
  if (path == "/v1/jobs") {
    if (request.method != "POST") return error_response(405, "method_not_allowed", "use POST");
    return post_job(request);
  }
  if (path.rfind("/v1/jobs/", 0) == 0) {
    const std::optional<uint64_t> id = parse_id(path.substr(9));
    if (!id) return error_response(404, "unknown_job", "malformed job id");
    if (request.method == "GET") return get_job(*id);
    if (request.method == "DELETE") return delete_job(*id);
    return error_response(405, "method_not_allowed", "use GET or DELETE");
  }
  if (path == "/v1/metrics") {
    if (request.method != "GET") return error_response(405, "method_not_allowed", "use GET");
    return get_metrics();
  }
  if (path == "/v1/shutdown") {
    if (request.method != "POST") return error_response(405, "method_not_allowed", "use POST");
    request_stop();
    JsonObject body;
    body.add("draining", true);
    return json_response(200, body, /*close=*/true);
  }
  if (path == "/") return index();
  return error_response(404, "not_found", "no route for " + std::string(path));
}

HttpResponse SimulationServer::index() const {
  JsonObject body;
  body.add("service", std::string("art9-serve"));
  body.add_raw("endpoints",
               "[\"POST /v1/images?format=art9|rv32|rv32_translate\", \"POST /v1/jobs\", "
               "\"GET /v1/jobs/{id}\", \"DELETE /v1/jobs/{id}\", \"GET /v1/metrics\", "
               "\"POST /v1/shutdown\"]");
  return json_response(200, body);
}

HttpResponse SimulationServer::post_image(const HttpRequest& request) {
  const std::string_view format_name = request.query("format");
  const std::optional<ImageFormat> format =
      format_name.empty() ? std::optional<ImageFormat>(ImageFormat::kArt9Asm)
                          : parse_image_format(format_name);
  if (!format) {
    return error_response(400, "unknown_format",
                          "format must be art9, rv32 or rv32_translate (got '" +
                              std::string(format_name) + "')");
  }
  if (request.body.empty()) return error_response(400, "empty_source", "request body is empty");

  ImageCache::Put put;
  try {
    put = cache_.put(*format, request.body);
  } catch (const std::exception& e) {
    // The pipeline rejected the source (assembler/translator/decoder
    // diagnostics carry line info) — the client's error, not ours.
    return error_response(400, "bad_source", e.what());
  }

  JsonObject body;
  body.add("id", put.id);
  body.add("format", std::string(image_format_name(*format)));
  body.add("isa", std::string(put.rv32 ? "rv32" : "art9"));
  body.add("cached", put.hit);
  return json_response(put.hit ? 200 : 201, body);
}

HttpResponse SimulationServer::post_job(const HttpRequest& request) {
  json::JsonValue doc;
  try {
    doc = json::parse_json(request.body);
    if (!doc.is_object()) throw json::JsonError("request body must be a JSON object");
  } catch (const std::exception& e) {
    return error_response(400, "bad_json", e.what());
  }

  sim::SimulationService::Job job;
  std::string image_id;
  sim::EngineKind kind{};
  uint64_t max_steps = 0;
  try {
    image_id = doc.get_string("image", "");
    if (image_id.empty()) throw json::JsonError("field 'image' is required");

    const std::optional<sim::EngineImage> image = cache_.get(image_id);
    if (!image) {
      return error_response(404, "unknown_image",
                            "image '" + image_id + "' is not in the cache (evicted or never "
                            "uploaded) — POST /v1/images again");
    }
    const bool rv32_image = image->index() == 1;

    // "engine" takes any sim::parse_engine_kind name of the image's ISA
    // — art9: lazy | functional | packed | superblock | pipeline |
    // pipeline_packed; rv32: rv32 | rv32_superblock | rv32_packed —
    // defaulting to the golden functional model of that ISA ("rv32" /
    // "functional"; pick the superblock kinds for throughput).
    const std::string engine = doc.get_string("engine", rv32_image ? "rv32" : "functional");
    const std::optional<sim::EngineKind> parsed = sim::parse_engine_kind(engine);
    if (!parsed) throw json::JsonError("unknown engine '" + engine + "'");
    kind = *parsed;
    if (sim::is_rv32(kind) != rv32_image) {
      throw json::JsonError("engine '" + engine + "' does not match the image's ISA (" +
                            (rv32_image ? "rv32" : "art9") + ")");
    }

    max_steps = doc.get_uint64("max_steps", options_.default_max_steps);
    if (max_steps == 0 || max_steps > options_.max_job_steps) {
      throw json::JsonError("max_steps must be in [1, " +
                            std::to_string(options_.max_job_steps) + "]");
    }

    job.image = *image;
    job.kind = kind;
    job.run.max_steps = max_steps;
    // The CLI mirrors the whole budget into the pipeline cap; so do we.
    job.engine.pipeline.max_cycles = max_steps;
    job.control.deadline = std::chrono::milliseconds(doc.get_uint64("deadline_ms", 0));
    job.control.checkpoint_every = doc.get_uint64("checkpoint_every", 0);
    job.control.retries = static_cast<unsigned>(doc.get_uint64("retries", 0));
    job.control.retry_backoff = std::chrono::milliseconds(doc.get_uint64("retry_backoff_ms", 0));
    job.control.slice_steps = doc.get_uint64("slice_steps", 0);
  } catch (const std::exception& e) {
    return error_response(400, "bad_request", e.what());
  }

  // Admission: reserve queue + step budget under the lock, with a
  // structured reject — never unbounded queueing.
  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (active_jobs_ >= options_.max_queued_jobs) {
      ++rejected_queue_full_;
      JsonObject body;
      body.add("error", std::string("admission_queue_full"));
      body.add("message", "the service already holds " + std::to_string(active_jobs_) +
                              " unresolved jobs (limit " +
                              std::to_string(options_.max_queued_jobs) + ") — retry later");
      body.add("active_jobs", static_cast<uint64_t>(active_jobs_));
      body.add("max_queued_jobs", static_cast<uint64_t>(options_.max_queued_jobs));
      return json_response(429, body);
    }
    if (inflight_steps_ + max_steps > options_.max_inflight_steps) {
      ++rejected_step_budget_;
      JsonObject body;
      body.add("error", std::string("admission_step_budget"));
      body.add("message", "admitting " + std::to_string(max_steps) +
                              " steps would exceed the in-flight budget (" +
                              std::to_string(inflight_steps_) + " of " +
                              std::to_string(options_.max_inflight_steps) +
                              " already admitted) — retry later");
      body.add("inflight_steps", inflight_steps_);
      body.add("max_inflight_steps", options_.max_inflight_steps);
      return json_response(429, body);
    }
    ++active_jobs_;
    inflight_steps_ += max_steps;
    ++admitted_;
    id = next_job_id_++;
  }

  const auto t0 = std::chrono::steady_clock::now();
  sim::JobHandle handle;
  try {
    handle = service_->submit(std::move(job));
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(mutex_);
    --active_jobs_;
    inflight_steps_ -= max_steps;
    --admitted_;
    return error_response(500, "submit_failed", e.what());
  }

  // Release the admission reservation and record wall latency when the
  // job resolves.  The callback runs on a worker (or inline if already
  // resolved) — it takes only the admission mutex, never blocks.
  handle.on_complete([this, t0, max_steps](const sim::JobResult&) {
    const double ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
    std::lock_guard<std::mutex> lock(mutex_);
    --active_jobs_;
    inflight_steps_ -= max_steps;
    if (latency_ms_.size() < kLatencyWindow) {
      latency_ms_.push_back(ms);
    } else {
      latency_ms_[latency_next_] = ms;
      latency_next_ = (latency_next_ + 1) % kLatencyWindow;
    }
  });

  JobRecord record{handle, image_id, kind, max_steps};
  std::string body_json;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.emplace(id, record);
  }
  body_json = job_json(id, record);
  return HttpResponse{202, "application/json", body_json + "\n", false};
}

std::string SimulationServer::job_json(uint64_t id, const JobRecord& record) const {
  JsonObject body;
  body.add("job", id);
  body.add("image", record.image_id);
  body.add("engine", std::string(sim::engine_kind_name(record.kind)));
  body.add("max_steps", record.max_steps);

  const bool done = record.handle.ready();
  body.add("state", std::string(done           ? "done"
                                : record.handle.started() ? "running"
                                                          : "queued"));
  if (!done) return body.str();

  const sim::JobResult& result = record.handle.result();
  body.add("outcome", std::string(sim::job_outcome_name(result.outcome)));
  body.add("exit_code", static_cast<int64_t>(outcome_exit_code(result.outcome)));
  if (!result.error.empty()) body.add("error", result.error);
  if (result.retries > 0) {
    body.add("retries", static_cast<uint64_t>(result.retries));
    body.add("resumed", result.resumed);
  }
  if (result.checkpoints > 0) body.add("checkpoints", result.checkpoints);
  if (result.corrupt_checkpoints > 0) body.add("corrupt_checkpoints", result.corrupt_checkpoints);

  JsonObject stats;
  stats.add("instructions", result.run.stats.instructions);
  stats.add("cycles", result.run.stats.cycles);
  stats.add("halt", std::string(result.run.halt == sim::HaltReason::kHalted ? "halted"
                                                                            : "max_cycles"));
  body.add_raw("stats", stats.str());

  // The architectural result, for the deterministic outcomes: a
  // canonical-snapshot digest (bit-identity is one string compare away)
  // plus the registers and PC for human consumption.
  if (result.outcome == sim::JobOutcome::kCompleted ||
      result.outcome == sim::JobOutcome::kBudgetExhausted) {
    try {
      const std::vector<uint8_t> blob = sim::serialize_snapshot(result.run.state);
      body.add("state_digest", hex64(fnv1a_64(blob.data(), blob.size())));
      if (result.run.state.is_rv32()) {
        const auto& rv32 = result.run.state.rv32();
        body.add("pc", static_cast<uint64_t>(rv32.pc));
        body.add_raw("registers", json::int_array(rv32.regs));
      } else {
        const auto& art9 = result.run.state.art9();
        body.add("pc", static_cast<int64_t>(art9.pc));
        std::vector<int64_t> regs;
        for (int r = 0; r < isa::kNumRegisters; ++r) regs.push_back(art9.trf.read(r).to_int());
        body.add_raw("registers", json::int_array(regs));
      }
    } catch (const std::exception&) {
      // A state that cannot serialize (should not happen) just omits the
      // digest; outcome and stats still stand.
    }
  }
  return body.str();
}

HttpResponse SimulationServer::get_job(uint64_t id) {
  JobRecord record;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return error_response(404, "unknown_job", "no job " + std::to_string(id));
    }
    record = it->second;
  }
  return HttpResponse{200, "application/json", job_json(id, record) + "\n", false};
}

HttpResponse SimulationServer::delete_job(uint64_t id) {
  JobRecord record;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return error_response(404, "unknown_job", "no job " + std::to_string(id));
    }
    record = it->second;
  }
  record.handle.cancel();
  return HttpResponse{202, "application/json", job_json(id, record) + "\n", false};
}

HttpResponse SimulationServer::get_metrics() {
  const sim::SimulationService& service = *service_;
  const ImageCache::Stats cache = cache_.stats();

  JsonObject queue;
  queue.add("queued", static_cast<uint64_t>(service.queued()));
  queue.add("in_flight", static_cast<uint64_t>(service.in_flight()));
  queue.add("workers", static_cast<uint64_t>(service.worker_count()));
  queue.add("configured_workers", static_cast<uint64_t>(service.threads()));

  JsonObject jobs;
  jobs.add("submitted", service.submitted());
  jobs.add("resolved", service.resolved());

  JsonObject outcomes;
  for (const sim::JobOutcome outcome :
       {sim::JobOutcome::kCompleted, sim::JobOutcome::kTrapped, sim::JobOutcome::kBudgetExhausted,
        sim::JobOutcome::kDeadlineExceeded, sim::JobOutcome::kCancelled,
        sim::JobOutcome::kFaulted}) {
    outcomes.add(std::string(sim::job_outcome_name(outcome)), service.outcome_count(outcome));
  }

  JsonObject admission;
  JsonObject latency;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    admission.add("admitted", admitted_);
    admission.add("rejected_queue_full", rejected_queue_full_);
    admission.add("rejected_step_budget", rejected_step_budget_);
    admission.add("active_jobs", static_cast<uint64_t>(active_jobs_));
    admission.add("max_queued_jobs", static_cast<uint64_t>(options_.max_queued_jobs));
    admission.add("inflight_steps", inflight_steps_);
    admission.add("max_inflight_steps", options_.max_inflight_steps);

    latency.add("p50_ms", percentile(latency_ms_, 0.50));
    latency.add("p95_ms", percentile(latency_ms_, 0.95));
    latency.add("samples", static_cast<uint64_t>(latency_ms_.size()));
  }

  JsonObject cache_json;
  cache_json.add("hits", cache.hits);
  cache_json.add("misses", cache.misses);
  cache_json.add("evictions", cache.evictions);
  cache_json.add("entries", static_cast<uint64_t>(cache.entries));
  cache_json.add("bytes", static_cast<uint64_t>(cache.bytes));
  cache_json.add("budget_bytes", static_cast<uint64_t>(cache.budget_bytes));

  JsonObject http;
  http.add("connections_accepted", http_->connections_accepted());
  http.add("requests_served", http_->requests_served());

  JsonObject body;
  body.add_raw("queue", queue.str());
  body.add_raw("jobs", jobs.str());
  body.add_raw("outcomes", outcomes.str());
  body.add_raw("admission", admission.str());
  body.add_raw("cache", cache_json.str());
  body.add_raw("latency", latency.str());
  body.add_raw("http", http.str());
  return json_response(200, body);
}

}  // namespace art9::serve
