#include "serve/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace art9::serve {

namespace {

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// send(2) the whole buffer; false on a broken connection.  MSG_NOSIGNAL
/// turns a peer reset into an error return instead of SIGPIPE.
bool send_all(int fd, std::string_view data) noexcept {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

void close_fd(int& fd) noexcept {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

// --- HttpRequest -------------------------------------------------------------

std::string_view HttpRequest::header(std::string_view name) const noexcept {
  for (const auto& [key, value] : headers) {
    if (iequals(key, name)) return value;
  }
  return {};
}

std::string_view HttpRequest::path() const noexcept {
  const std::string_view t = target;
  const std::size_t q = t.find('?');
  return q == std::string_view::npos ? t : t.substr(0, q);
}

std::string_view HttpRequest::query(std::string_view key) const noexcept {
  const std::string_view t = target;
  const std::size_t q = t.find('?');
  if (q == std::string_view::npos) return {};
  std::string_view rest = t.substr(q + 1);
  while (!rest.empty()) {
    const std::size_t amp = rest.find('&');
    const std::string_view pair = rest.substr(0, amp);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) return pair.substr(eq + 1);
    if (eq == std::string_view::npos && pair == key) return {};
    if (amp == std::string_view::npos) break;
    rest.remove_prefix(amp + 1);
  }
  return {};
}

// --- RequestParser -----------------------------------------------------------

ParseStatus RequestParser::fail(int status, std::string message) {
  status_ = ParseStatus::kError;
  error_status_ = status;
  error_ = std::move(message);
  return status_;
}

ParseStatus RequestParser::feed(std::string_view data) {
  buffer_.append(data);
  if (status_ != ParseStatus::kIncomplete) return status_;  // buffer for the next reset()
  return advance();
}

ParseStatus RequestParser::reset() {
  // Drop the finished request's bytes; a failed parse poisons the whole
  // connection (framing is lost), so reset after kError starts empty.
  if (status_ == ParseStatus::kError) {
    buffer_.clear();
    consumed_ = 0;
  } else {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  request_ = HttpRequest{};
  headers_done_ = false;
  body_start_ = 0;
  content_length_ = 0;
  status_ = ParseStatus::kIncomplete;
  error_status_ = 400;
  error_.clear();
  return advance();
}

ParseStatus RequestParser::advance() {
  if (!headers_done_) {
    const std::size_t end = buffer_.find("\r\n\r\n");
    const std::size_t header_bytes = end == std::string::npos ? buffer_.size() : end + 4;
    if (header_bytes > limits_.max_header_bytes) {
      return fail(431, "request headers exceed " + std::to_string(limits_.max_header_bytes) +
                           " bytes");
    }
    if (end == std::string::npos) return status_;  // truncated: wait for more

    // Request line.
    std::string_view head(buffer_.data(), end);
    const std::size_t line_end = head.find("\r\n");
    std::string_view line = head.substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                                          : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
        line.find(' ', sp2 + 1) != std::string_view::npos) {
      return fail(400, "malformed request line");
    }
    request_.method = std::string(line.substr(0, sp1));
    request_.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
    request_.version = std::string(line.substr(sp2 + 1));
    if (request_.method.empty() || request_.target.empty() || request_.target[0] != '/') {
      return fail(400, "malformed request line");
    }
    for (char c : request_.method) {
      if (!std::isupper(static_cast<unsigned char>(c))) return fail(400, "malformed method");
    }
    if (request_.version != "HTTP/1.1" && request_.version != "HTTP/1.0") {
      return fail(505, "unsupported HTTP version '" + request_.version + "'");
    }

    // Header fields.
    std::string_view rest = line_end == std::string_view::npos ? std::string_view{}
                                                               : head.substr(line_end + 2);
    while (!rest.empty()) {
      const std::size_t eol = rest.find("\r\n");
      const std::string_view field = rest.substr(0, eol);
      rest = eol == std::string_view::npos ? std::string_view{} : rest.substr(eol + 2);
      const std::size_t colon = field.find(':');
      if (colon == std::string_view::npos || colon == 0) {
        return fail(400, "malformed header field");
      }
      std::string_view value = field.substr(colon + 1);
      while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
        value.remove_prefix(1);
      }
      while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
        value.remove_suffix(1);
      }
      request_.headers.emplace_back(std::string(field.substr(0, colon)), std::string(value));
    }

    // Framing: Content-Length only; any transfer coding is out of scope.
    if (!request_.header("Transfer-Encoding").empty()) {
      return fail(501, "transfer codings are not supported");
    }
    const std::string_view length = request_.header("Content-Length");
    content_length_ = 0;
    if (!length.empty()) {
      uint64_t parsed = 0;
      for (char c : length) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
          return fail(400, "malformed Content-Length");
        }
        parsed = parsed * 10 + static_cast<uint64_t>(c - '0');
        if (parsed > (1ull << 40)) return fail(400, "malformed Content-Length");
      }
      content_length_ = static_cast<std::size_t>(parsed);
    }
    if (content_length_ > limits_.max_body_bytes) {
      return fail(413, "request body of " + std::to_string(content_length_) +
                           " bytes exceeds the " + std::to_string(limits_.max_body_bytes) +
                           "-byte budget");
    }

    // Keep-alive: 1.1 defaults on, 1.0 defaults off, Connection decides.
    const std::string_view connection = request_.header("Connection");
    if (request_.version == "HTTP/1.1") {
      request_.keep_alive = !iequals(connection, "close");
    } else {
      request_.keep_alive = iequals(connection, "keep-alive");
    }

    headers_done_ = true;
    body_start_ = end + 4;
  }

  if (buffer_.size() - body_start_ < content_length_) return status_;  // body still arriving

  request_.body = buffer_.substr(body_start_, content_length_);
  consumed_ = body_start_ + content_length_;
  status_ = ParseStatus::kDone;
  return status_;
}

// --- responses ---------------------------------------------------------------

std::string_view status_text(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Content Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
  }
  return "Unknown";
}

std::string serialize_response(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " ";
  out += status_text(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: ";
  out += response.close ? "close" : "keep-alive";
  out += "\r\n\r\n";
  out += response.body;
  return out;
}

// --- HttpServer --------------------------------------------------------------

HttpServer::HttpServer(Options options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("serve: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind.c_str(), &addr.sin_addr) != 1) {
    close_fd(listen_fd_);
    throw std::runtime_error("serve: invalid bind address '" + options_.bind + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    close_fd(listen_fd_);
    throw std::runtime_error("serve: cannot bind " + options_.bind + ":" +
                             std::to_string(options_.port) + " (" + std::strerror(err) + ")");
  }
  if (::listen(listen_fd_, 64) != 0) {
    close_fd(listen_fd_);
    throw std::runtime_error("serve: listen() failed");
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  accept_thread_ = std::thread([this] { accept_loop(); });
}

void HttpServer::request_stop() noexcept {
  stop_.store(true, std::memory_order_release);
  // shutdown(2) is async-signal-safe; it unblocks accept(2) so the
  // accept loop notices the flag without this thread taking any lock.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

void HttpServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (stop_.load(std::memory_order_acquire)) {
      if (fd >= 0) ::close(fd);
      break;
    }
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener gone
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    if (options_.read_timeout_seconds > 0) {
      timeval tv{};
      tv.tv_sec = options_.read_timeout_seconds;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    }
    connections_accepted_.fetch_add(1, std::memory_order_acq_rel);

    std::lock_guard<std::mutex> lock(mutex_);
    reap_finished_locked();
    if (static_cast<int>(connections_.size()) >= options_.max_connections) {
      // Transport-level admission: answer 503 synchronously and close.
      int reject_fd = fd;
      send_all(reject_fd, serialize_response(HttpResponse{
                              503, "application/json",
                              "{\"error\": \"too_many_connections\"}", true}));
      close_fd(reject_fd);
      continue;
    }
    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    Connection* raw = connection.get();
    connection->thread = std::thread([this, raw] { serve_connection(*raw); });
    connections_.push_back(std::move(connection));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    accept_done_ = true;
  }
  stopped_cv_.notify_all();
}

void HttpServer::reap_finished_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      (*it)->thread.join();
      close_fd((*it)->fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void HttpServer::serve_connection(Connection& connection) {
  RequestParser parser(options_.limits);
  char buf[8192];
  bool open = true;
  while (open) {
    // Serve every already-buffered (pipelined) request before reading.
    while (open && parser.status() == ParseStatus::kDone) {
      HttpResponse response;
      try {
        response = handler_(parser.request());
      } catch (const std::exception& e) {
        std::string message(e.what());
        std::string quoted;
        for (char c : message) {
          if (c == '"' || c == '\\') quoted += '\\';
          quoted += c == '\n' ? ' ' : c;
        }
        response = HttpResponse{500, "application/json",
                                "{\"error\": \"internal\", \"message\": \"" + quoted + "\"}",
                                true};
      }
      const bool keep = parser.request().keep_alive && !response.close &&
                        !stop_.load(std::memory_order_acquire);
      response.close = !keep;
      requests_served_.fetch_add(1, std::memory_order_acq_rel);
      if (!send_all(connection.fd, serialize_response(response)) || !keep) {
        open = false;
        break;
      }
      parser.reset();
    }
    if (!open) break;
    if (parser.status() == ParseStatus::kError) {
      const HttpResponse response{parser.error_status(), "application/json",
                                  "{\"error\": \"bad_request\", \"message\": \"" +
                                      parser.error() + "\"}",
                                  true};
      send_all(connection.fd, serialize_response(response));
      break;
    }
    const ssize_t n = ::recv(connection.fd, buf, sizeof buf, 0);
    if (n == 0) break;  // peer closed (or read side shut down for drain)
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // timeout / reset
    }
    parser.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
  // shutdown(2) sends the FIN the peer is owed on a `Connection: close`
  // response, but the fd is NOT closed here: wait() may be concurrently
  // reading it to shutdown(2) idle peers, and a close racing that could
  // hand the drain a recycled descriptor.  The reaper/drainer closes it
  // after join(), which orders the close after every use on this thread.
  ::shutdown(connection.fd, SHUT_RDWR);
  connection.done.store(true, std::memory_order_release);
  stopped_cv_.notify_all();
}

void HttpServer::wait() {
  if (listen_fd_ < 0 && !accept_thread_.joinable()) return;  // never started
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopped_cv_.wait(lock, [this] { return accept_done_; });
    if (drained_) return;
    drained_ = true;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Drain: unblock reads (idle keep-alive connections) but leave the
  // write side up so an in-flight response still goes out, then join.
  std::list<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    connections.swap(connections_);
  }
  for (auto& connection : connections) {
    if (connection->fd >= 0) ::shutdown(connection->fd, SHUT_RD);
  }
  for (auto& connection : connections) {
    connection->thread.join();
    close_fd(connection->fd);
  }
  close_fd(listen_fd_);
}

void HttpServer::stop() {
  request_stop();
  wait();
}

// --- HttpClient --------------------------------------------------------------

HttpClient::HttpClient(std::string host, uint16_t port)
    : host_(std::move(host)), port_(port) {
  connect();
}

HttpClient::~HttpClient() { close(); }

void HttpClient::close() noexcept { close_fd(fd_); }

void HttpClient::connect() {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("http client: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    close();
    throw std::runtime_error("http client: invalid address '" + host_ + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    close();
    throw std::runtime_error("http client: cannot connect to " + host_ + ":" +
                             std::to_string(port_) + " (" + std::strerror(err) + ")");
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

bool HttpClient::try_roundtrip(const std::string& wire, HttpResponse& out) {
  if (fd_ < 0) return false;
  if (!send_all(fd_, wire)) return false;

  // Parse the response: status line + headers, then Content-Length bytes.
  std::string data;
  std::size_t header_end = std::string::npos;
  char buf[8192];
  while ((header_end = data.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n <= 0) return false;
    data.append(buf, static_cast<std::size_t>(n));
    if (data.size() > (1u << 20)) throw std::runtime_error("http client: response headers too large");
  }
  const std::string_view head(data.data(), header_end);
  const std::size_t line_end = head.find("\r\n");
  const std::string_view status_line = head.substr(0, line_end);
  if (status_line.size() < 12 || status_line.substr(0, 5) != "HTTP/") {
    throw std::runtime_error("http client: malformed status line");
  }
  out.status = std::atoi(std::string(status_line.substr(9, 3)).c_str());

  std::size_t content_length = 0;
  bool server_close = false;
  std::string_view rest = head.substr(line_end + 2);
  while (!rest.empty()) {
    const std::size_t eol = rest.find("\r\n");
    const std::string_view field = rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view{} : rest.substr(eol + 2);
    const std::size_t colon = field.find(':');
    if (colon == std::string_view::npos) continue;
    std::string_view name = field.substr(0, colon);
    std::string_view value = field.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
    if (iequals(name, "Content-Length")) {
      content_length = static_cast<std::size_t>(std::atoll(std::string(value).c_str()));
    } else if (iequals(name, "Content-Type")) {
      out.content_type = std::string(value);
    } else if (iequals(name, "Connection") && iequals(value, "close")) {
      server_close = true;
    }
  }

  const std::size_t body_start = header_end + 4;
  while (data.size() - body_start < content_length) {
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n <= 0) return false;
    data.append(buf, static_cast<std::size_t>(n));
  }
  out.body = data.substr(body_start, content_length);
  out.close = server_close;
  if (server_close) close();
  return true;
}

HttpResponse HttpClient::request(const std::string& method, const std::string& target,
                                 const std::string& body, const std::string& content_type) {
  std::string wire = method + " " + target + " HTTP/1.1\r\nHost: " + host_ + ":" +
                     std::to_string(port_) + "\r\n";
  if (!body.empty() || method == "POST" || method == "PUT") {
    wire += "Content-Type: " + content_type + "\r\nContent-Length: " +
            std::to_string(body.size()) + "\r\n";
  }
  wire += "\r\n";
  wire += body;

  HttpResponse response;
  if (try_roundtrip(wire, response)) return response;
  // The server may have reaped an idle keep-alive connection between
  // requests: reconnect once and retry.
  connect();
  if (try_roundtrip(wire, response)) return response;
  throw std::runtime_error("http client: connection lost mid-request");
}

}  // namespace art9::serve
