// Content-hash image cache: the amortization in front of POST /v1/jobs.
//
// The expensive part of serving a simulation request is not running it —
// it is the assemble / translate / pre-decode pipeline that turns source
// text into a shareable EngineImage.  libriscv's webapi splits
// POST /compile from POST /execute with a cache between them for exactly
// this reason; ImageCache is that cache for the three front-end formats:
//
//   art9            ART-9 assembly  -> isa::assemble -> sim::decode
//   rv32            RV32I(+M) asm   -> rv32::assemble_rv32 -> rv32::decode
//   rv32_translate  RV32I(+M) asm   -> SoftwareFramework::translate
//                                    -> sim::decode   (an ART-9 image)
//
// The id is the 64-bit FNV-1a of (format byte ++ source bytes), so the
// same program uploaded twice — by any client — is one cache entry and
// one pipeline run.  Entries are LRU-evicted against a byte budget;
// images already checked out by running jobs stay alive through their
// shared_ptr regardless of eviction.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "sim/engine.hpp"

namespace art9::serve {

enum class ImageFormat : uint8_t { kArt9Asm = 0, kRv32Asm = 1, kRv32Translate = 2 };

/// Stable names: "art9", "rv32", "rv32_translate" (the ?format= values).
[[nodiscard]] std::string_view image_format_name(ImageFormat format) noexcept;
[[nodiscard]] std::optional<ImageFormat> parse_image_format(std::string_view name) noexcept;

/// 64-bit FNV-1a — the hash behind image ids and result digests.
inline constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
[[nodiscard]] uint64_t fnv1a_64(const void* data, std::size_t size,
                                uint64_t hash = kFnvOffset) noexcept;

/// 16 lower-case hex digits.
[[nodiscard]] std::string hex64(uint64_t value);

class ImageCache {
 public:
  struct Stats {
    uint64_t hits = 0;        // put() found the entry (pipeline skipped)
    uint64_t misses = 0;      // put() ran the pipeline
    uint64_t evictions = 0;   // entries dropped by the byte budget
    std::size_t entries = 0;
    std::size_t bytes = 0;         // current estimated footprint
    std::size_t budget_bytes = 0;
  };

  struct Put {
    std::string id;
    bool hit = false;
    bool rv32 = false;  // true when the image executes on the rv32 kinds
  };

  explicit ImageCache(std::size_t byte_budget = 64u << 20) : budget_(byte_budget) {}

  /// Looks up (or builds and inserts) the image for `source`.  Throws the
  /// pipeline's own error (isa::AsmError, rv32::Rv32AsmError,
  /// sim::SimError) on bad source — nothing is cached for a failed build.
  /// The just-inserted entry is never evicted, even when it alone
  /// overflows the budget.
  Put put(ImageFormat format, std::string_view source);

  /// The image behind `id`; nullopt when unknown or evicted (the caller
  /// answers "re-upload").  Refreshes LRU recency.
  [[nodiscard]] std::optional<sim::EngineImage> get(const std::string& id);

  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    sim::EngineImage image;
    std::size_t bytes = 0;
    bool rv32 = false;
    std::list<std::string>::iterator lru;  // position in lru_
  };

  void evict_over_budget_locked(const std::string& keep);

  std::size_t budget_;
  mutable std::mutex mutex_;
  std::size_t bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recently used
};

}  // namespace art9::serve
