// SimulationServer: the HTTP simulation-as-a-service front end — the
// ROADMAP's "network face on SimulationService", mapping the async
// scheduler 1:1 onto a small REST surface:
//
//   POST   /v1/images?format=art9|rv32|rv32_translate
//            body = assembly text -> {"id": <content hash>, ...}
//            (ImageCache: the pipeline runs once per distinct program)
//   POST   /v1/jobs   body = {"image", "engine", "max_steps",
//            "deadline_ms", "checkpoint_every", "retries",
//            "retry_backoff_ms", "slice_steps"}
//            "engine" is any kind name of the image's ISA (art9: lazy |
//            functional | packed | superblock | pipeline |
//            pipeline_packed; rv32: rv32 | rv32_superblock |
//            rv32_packed), defaulting per ISA to the golden model
//            -> 202 {"job": id}   (or a structured 429 admission reject)
//   GET    /v1/jobs/{id}    -> status/result JSON; the six JobOutcomes
//            carry the exact exit codes art9-run maps them to
//   DELETE /v1/jobs/{id}    -> cooperative cancel (idempotent)
//   GET    /v1/metrics      -> queue depth, admission counters, cache
//            hit/miss, per-outcome counters, p50/p95 wall latency
//   POST   /v1/shutdown     -> begin drain; the owning thread's wait()
//            returns once in-flight requests and jobs are resolved
//
// Admission control bounds both queue depth (max_queued_jobs over
// queued+running jobs) and the total step budget in flight
// (max_inflight_steps over the sum of admitted budgets): a request the
// service cannot take is answered with a structured 429 immediately —
// never queued unboundedly, never hung.  Per-job isolation is the PR 7
// outcome taxonomy: a trapping or deadline-blown tenant resolves its own
// job and nothing else.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/http.hpp"
#include "serve/image_cache.hpp"
#include "sim/service.hpp"

namespace art9::serve {

/// The art9-run exit code for `outcome` — the serve layer mirrors the
/// CLI mapping verbatim (0 completed, 3 trapped, 4 budget_exhausted,
/// 5 deadline_exceeded, 6 cancelled, 7 faulted).
[[nodiscard]] int outcome_exit_code(sim::JobOutcome outcome) noexcept;

class SimulationServer {
 public:
  struct Options {
    HttpServer::Options http;
    unsigned service_threads = 0;  // 0 = hardware_concurrency
    std::size_t cache_bytes = 64u << 20;

    // Admission control.
    std::size_t max_queued_jobs = 256;          // queued + running cap
    uint64_t max_inflight_steps = 1ull << 40;   // sum of admitted budgets
    uint64_t max_job_steps = 1ull << 36;        // single-job budget cap
    uint64_t default_max_steps = 100'000'000;   // when the request omits it
  };

  // (A defaulted `Options options = {}` argument trips GCC's deferred
  // parsing of nested-aggregate member initializers; the delegating
  // default constructor is the portable spelling.)
  SimulationServer() : SimulationServer(Options{}) {}
  explicit SimulationServer(Options options);
  ~SimulationServer();

  SimulationServer(const SimulationServer&) = delete;
  SimulationServer& operator=(const SimulationServer&) = delete;

  /// Binds and starts serving.  Throws std::runtime_error on bind failure.
  void start();

  [[nodiscard]] uint16_t port() const noexcept { return http_->port(); }

  /// Begins drain (also triggered by POST /v1/shutdown).  Safe from
  /// signal handlers.
  void request_stop() noexcept { http_->request_stop(); }

  /// Blocks until a stop is requested, then drains HTTP connections and
  /// (on destruction) the job queue.
  void wait() { http_->wait(); }

  void stop() { http_->stop(); }

  [[nodiscard]] bool stop_requested() const noexcept { return http_->stop_requested(); }

  /// The route dispatcher (also what the HttpServer handler calls) —
  /// public so protocol tests can drive routes without a socket.
  HttpResponse handle(const HttpRequest& request);

  /// Direct service access for tests asserting HTTP results against
  /// in-process runs.
  [[nodiscard]] sim::SimulationService& service() noexcept { return *service_; }
  [[nodiscard]] ImageCache& cache() noexcept { return cache_; }

 private:
  struct JobRecord {
    sim::JobHandle handle;
    std::string image_id;
    sim::EngineKind kind = sim::EngineKind::kFunctional;
    uint64_t max_steps = 0;
  };

  HttpResponse post_image(const HttpRequest& request);
  HttpResponse post_job(const HttpRequest& request);
  HttpResponse get_job(uint64_t id);
  HttpResponse delete_job(uint64_t id);
  HttpResponse get_metrics();
  HttpResponse index() const;

  [[nodiscard]] std::string job_json(uint64_t id, const JobRecord& record) const;

  Options options_;
  ImageCache cache_;

  // Admission + telemetry state.  Declared before service_ so the
  // on_complete callbacks that release admission budget during the
  // service's drain-on-destruction still find it alive.
  mutable std::mutex mutex_;
  std::unordered_map<uint64_t, JobRecord> jobs_;
  uint64_t next_job_id_ = 1;
  std::size_t active_jobs_ = 0;       // admitted, not yet resolved
  uint64_t inflight_steps_ = 0;       // sum of admitted budgets
  uint64_t admitted_ = 0;
  uint64_t rejected_queue_full_ = 0;
  uint64_t rejected_step_budget_ = 0;
  std::vector<double> latency_ms_;    // completed-job wall latencies (ring)
  std::size_t latency_next_ = 0;

  std::unique_ptr<sim::SimulationService> service_;
  std::unique_ptr<HttpServer> http_;  // last: HTTP stops before the service drains
};

}  // namespace art9::serve
