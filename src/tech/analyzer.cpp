#include "tech/analyzer.hpp"

namespace art9::tech {
namespace {

double area_of(const Netlist& n, const Technology& tech) {
  double area = 0.0;
  for (CellType t : all_cell_types()) {
    const CellParams& p = tech.cell(t);
    area += n.count(t) * (tech.fabric() == Fabric::kTernaryGates ? p.gate_equivalents : p.alms);
  }
  return area;
}

double power_of(const Netlist& n, const Technology& tech) {
  double nw = 0.0;
  for (CellType t : all_cell_types()) nw += n.count(t) * tech.cell(t).power_nw;
  return nw * 1e-9;
}

}  // namespace

AnalysisReport GateLevelAnalyzer::analyze(const Art9Design& design, const Technology& tech) const {
  AnalysisReport report;
  report.technology = tech.name();
  report.voltage_v = tech.voltage();

  const Netlist& dp = design.datapath;
  for (const Netlist& child : dp.children()) {
    report.module_area[child.name()] = area_of(child, tech);
  }

  // Critical path.
  for (const auto& [cell, stages] : dp.critical_path()) {
    report.critical_delay_ps += stages * tech.cell(cell).delay_ps;
  }
  if (report.critical_delay_ps > 0.0) {
    report.max_clock_mhz = 1e6 / report.critical_delay_ps;  // ps -> MHz
  }
  if (tech.clock_cap_mhz() > 0.0 && (report.max_clock_mhz == 0.0 ||
                                     report.max_clock_mhz > tech.clock_cap_mhz())) {
    report.max_clock_mhz = tech.clock_cap_mhz();
  }

  const int64_t total_words = design.tim_words + design.tdm_words;
  if (tech.fabric() == Fabric::kTernaryGates) {
    report.total_gates = area_of(dp, tech);
    report.power_w = power_of(dp, tech);
  } else {
    report.alms = area_of(dp, tech) + 2 * tech.memory().alms_per_port;
    report.ff_bits =
        static_cast<int64_t>(design.state_trits * tech.cell(CellType::kTdff).ff_bits) +
        design.binary_state_bits;
    report.ram_bits = static_cast<int64_t>(static_cast<double>(total_words) * 9.0 *
                                           tech.memory().bits_per_trit);
    report.power_w = tech.static_power_w() + power_of(dp, tech) +
                     report.alms * tech.alm_power_nw() * 1e-9 +
                     static_cast<double>(total_words) * tech.memory().power_nw_per_word * 1e-9;
  }
  return report;
}

}  // namespace art9::tech
