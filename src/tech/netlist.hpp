// Structural netlists: cell inventories plus a critical-path chain.
//
// The gate-level analyzer multiplies these inventories by a Technology's
// per-cell data.  Netlists compose hierarchically, so the ART-9 datapath
// model (datapath.cpp) is a tree of named modules mirroring Fig. 4.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "tech/technology.hpp"

namespace art9::tech {

/// A (cell, count) inventory plus the worst combinational chain.
class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Adds `count` instances of `type`.
  void add(CellType type, int count) { counts_[static_cast<std::size_t>(type)] += count; }

  /// Merges a submodule's cells (and records it in the breakdown).
  void add(const Netlist& sub) {
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += sub.counts_[i];
    children_.push_back(sub);
  }

  /// Declares the critical path as a chain of (cell, stages) hops.
  void set_critical_path(std::vector<std::pair<CellType, int>> chain) {
    critical_path_ = std::move(chain);
  }
  [[nodiscard]] const std::vector<std::pair<CellType, int>>& critical_path() const noexcept {
    return critical_path_;
  }

  [[nodiscard]] int count(CellType type) const {
    return counts_[static_cast<std::size_t>(type)];
  }

  [[nodiscard]] const std::vector<Netlist>& children() const noexcept { return children_; }

  /// Total combinational cell instances (TDFF excluded).
  [[nodiscard]] int combinational_cells() const {
    int total = 0;
    for (CellType t : all_cell_types()) {
      if (t != CellType::kTdff) total += count(t);
    }
    return total;
  }

 private:
  std::string name_;
  std::array<int, kNumCellTypes> counts_{};
  std::vector<std::pair<CellType, int>> critical_path_;
  std::vector<Netlist> children_;
};

/// The full ART-9 design: combinational datapath netlist, sequential
/// state, and the two memories.
struct Art9Design {
  Netlist datapath;
  /// Architectural + pipeline state in trits (TRF 81, PC 9, latches ...).
  int state_trits = 0;
  /// One extra binary-only control bit (pipeline valid flag) that exists
  /// even in the binary emulation.
  int binary_state_bits = 0;
  int tim_words = 0;
  int tdm_words = 0;
};

}  // namespace art9::tech
