// Gate-level analyzer (paper Fig. 3): composes a Technology's per-cell
// characteristics over the ART-9 design to estimate gate count, critical
// delay, achievable clock, power, and — for the binary-emulation fabric —
// ALM / register / RAM-bit resources.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "tech/netlist.hpp"

namespace art9::tech {

struct AnalysisReport {
  std::string technology;
  double voltage_v = 0.0;

  // Ternary-gate fabric (Table IV).
  double total_gates = 0.0;       // standard-ternary-gate equivalents
  double power_w = 0.0;           // datapath power
  // Binary-emulation fabric (Table V).
  double alms = 0.0;
  int64_t ff_bits = 0;            // "Registers"
  int64_t ram_bits = 0;

  // Timing.
  double critical_delay_ps = 0.0;
  double max_clock_mhz = 0.0;     // after any fabric clock cap

  /// Per-module gate-equivalent (or ALM) breakdown.
  std::map<std::string, double> module_area;
};

class GateLevelAnalyzer {
 public:
  [[nodiscard]] AnalysisReport analyze(const Art9Design& design, const Technology& tech) const;
};

}  // namespace art9::tech
