#include "tech/technology.hpp"

#include <stdexcept>

namespace art9::tech {

const std::array<CellType, kNumCellTypes>& all_cell_types() {
  static const std::array<CellType, kNumCellTypes> kAll = {
      CellType::kSti,  CellType::kNti,  CellType::kPti,  CellType::kTand2,
      CellType::kTor2, CellType::kTxor2, CellType::kTmux3, CellType::kTha,
      CellType::kTfa,  CellType::kTcmp, CellType::kTdec, CellType::kTdff,
  };
  return kAll;
}

const char* cell_name(CellType type) {
  switch (type) {
    case CellType::kSti: return "STI";
    case CellType::kNti: return "NTI";
    case CellType::kPti: return "PTI";
    case CellType::kTand2: return "TAND2";
    case CellType::kTor2: return "TOR2";
    case CellType::kTxor2: return "TXOR2";
    case CellType::kTmux3: return "TMUX3";
    case CellType::kTha: return "THA";
    case CellType::kTfa: return "TFA";
    case CellType::kTcmp: return "TCMP";
    case CellType::kTdec: return "TDEC";
    case CellType::kTdff: return "TDFF";
  }
  return "?";
}

Technology::Technology(std::string name, Fabric fabric, double voltage_v)
    : name_(std::move(name)), fabric_(fabric), voltage_v_(voltage_v) {}

void Technology::set_cell(CellType type, CellParams params) {
  cells_[static_cast<std::size_t>(type)] = params;
}

const CellParams& Technology::cell(CellType type) const {
  return cells_[static_cast<std::size_t>(type)];
}

Technology Technology::cntfet32() {
  // 32 nm CNTFET standard ternary gates at 0.9 V, simplified models without
  // parasitic capacitance (paper §V-B referencing [8]).  Per-cell powers
  // are calibrated so the 652-gate datapath draws 42.7 uW in total
  // (65.5 nW per gate equivalent on average).
  Technology t("CNTFET-32nm", Fabric::kTernaryGates, 0.9);
  constexpr double kNwPerGate = 42.7e3 / 652.0;  // 65.49 nW
  auto cell = [&](double geq, double delay_ps) {
    return CellParams{delay_ps, geq * kNwPerGate, geq, 0.0, 0.0};
  };
  t.set_cell(CellType::kSti, cell(1.0, 40.0));
  t.set_cell(CellType::kNti, cell(1.0, 36.0));
  t.set_cell(CellType::kPti, cell(1.0, 36.0));
  t.set_cell(CellType::kTand2, cell(2.0, 62.0));
  t.set_cell(CellType::kTor2, cell(2.0, 62.0));
  t.set_cell(CellType::kTxor2, cell(3.0, 95.0));
  t.set_cell(CellType::kTmux3, cell(2.0, 60.0));
  t.set_cell(CellType::kTha, cell(4.0, 180.0));
  t.set_cell(CellType::kTfa, cell(8.0, 320.0));
  t.set_cell(CellType::kTcmp, cell(3.0, 110.0));
  t.set_cell(CellType::kTdec, cell(1.5, 55.0));
  // Sequential cells sit outside the 652-gate combinational budget.
  t.set_cell(CellType::kTdff, CellParams{120.0, 0.0, 0.0, 0.0, 0.0});
  t.set_memory(MemoryParams{0.0, 0.0, 0.0});  // native ternary SRAM macro
  return t;
}

Technology Technology::fpga_binary_emulation() {
  // Binary-encoded ternary emulation on a Stratix-V-class FPGA at 0.9 V,
  // 150 MHz (paper Table V).  One trit occupies two bits, so a 9-trit
  // word costs 18 flip-flops / RAM bits; per-cell ALM figures follow the
  // two-bit-plane expressions of src/ternary/bct.hpp.
  Technology t("FPGA-binary-encoded", Fabric::kBinaryEmulation, 0.9);
  auto cell = [](double alms, double delay_ps) {
    return CellParams{delay_ps, 0.0, 0.0, alms, 0.0};
  };
  t.set_cell(CellType::kSti, cell(0.0, 0.0));  // plane swap: wiring only
  t.set_cell(CellType::kNti, cell(1.0, 400.0));
  t.set_cell(CellType::kPti, cell(1.0, 400.0));
  t.set_cell(CellType::kTand2, cell(1.5, 420.0));
  t.set_cell(CellType::kTor2, cell(1.5, 420.0));
  t.set_cell(CellType::kTxor2, cell(2.0, 420.0));
  t.set_cell(CellType::kTmux3, cell(2.5, 380.0));
  t.set_cell(CellType::kTha, cell(5.0, 540.0));
  t.set_cell(CellType::kTfa, cell(11.0, 540.0));
  t.set_cell(CellType::kTcmp, cell(4.0, 480.0));
  t.set_cell(CellType::kTdec, cell(2.5, 420.0));
  t.set_cell(CellType::kTdff, CellParams{0.0, 0.0, 0.0, 0.0, 2.0});  // 2 FF bits per trit
  // Two synchronous memories draw ~35 uW per word of capacity; each
  // occupied ALM ~152 uW at 150 MHz; the Stratix-V static + clock-tree
  // baseline dominates (calibrated to the 1.09 W of Table V).
  t.set_memory(MemoryParams{2.0, 35000.0, 14.5});
  t.set_alm_power_nw(152000.0);
  t.set_static_power_w(0.95);
  t.set_clock_cap_mhz(150.0);
  return t;
}

}  // namespace art9::tech
