#include "tech/datapath.hpp"

namespace art9::tech {
namespace {

constexpr int kW = 9;  // datapath width in trits

/// TALU (EX stage): adder, subtract negation row, logic rows, inverter
/// rows, two-digit barrel shifter, comparator, result/immediate muxing.
Netlist build_talu() {
  Netlist talu("TALU");

  Netlist adder("adder");  // 9-trit balanced ripple adder
  adder.add(CellType::kTfa, kW);
  talu.add(adder);

  Netlist negate("sub-negate");  // STI row on operand B for SUB
  negate.add(CellType::kSti, kW);
  talu.add(negate);

  Netlist logic("logic-unit");  // AND / OR / XOR rows
  logic.add(CellType::kTand2, kW);
  logic.add(CellType::kTor2, kW);
  logic.add(CellType::kTxor2, kW);
  talu.add(logic);

  Netlist inverters("inverter-unit");  // STI / NTI / PTI rows
  inverters.add(CellType::kSti, kW);
  inverters.add(CellType::kNti, kW);
  inverters.add(CellType::kPti, kW);
  talu.add(inverters);

  Netlist shifter("shifter");  // 2 ternary-digit stages x 2 directions
  shifter.add(CellType::kTmux3, 4 * kW);
  talu.add(shifter);

  Netlist comparator("comparator");  // per-trit compare + priority chain
  comparator.add(CellType::kTcmp, kW);
  comparator.add(CellType::kTor2, kW - 1);
  talu.add(comparator);

  Netlist result_mux("result-mux");  // 6-way select, two TMUX3 levels
  result_mux.add(CellType::kTmux3, 3 * kW);
  talu.add(result_mux);

  Netlist imm_insert("imm-insert");  // LUI/LI field insertion
  imm_insert.add(CellType::kTmux3, kW);
  talu.add(imm_insert);

  return talu;
}

Netlist build_decoder() {
  // Main decoder (ID stage): major/minor opcode field matches plus a few
  // combine gates for the control signals.
  Netlist dec("main-decoder");
  dec.add(CellType::kTdec, 24);
  dec.add(CellType::kTand2, 3);
  dec.add(CellType::kSti, 3);
  return dec;
}

Netlist build_hdu() {
  // Hazard detection unit: register-index equality (2-trit compares
  // against the in-flight destinations) and stall combine logic.
  Netlist hdu("hazard-detection");
  hdu.add(CellType::kTcmp, 8);
  hdu.add(CellType::kTor2, 3);
  return hdu;
}

Netlist build_forwarding() {
  // Forwarding multiplexers: two 9-trit operands, two bypass levels each.
  Netlist fwd("forwarding-mux");
  fwd.add(CellType::kTmux3, 4 * kW);
  return fwd;
}

Netlist build_branch_unit() {
  // ID-stage branch-target calculator (dedicated 9-trit adder) and the
  // one-trit condition checker.
  Netlist branch("branch-unit");
  branch.add(CellType::kTfa, kW);
  branch.add(CellType::kTcmp, 1);
  return branch;
}

Netlist build_pc_logic() {
  // PC incrementer (half-adder chain) and the next-PC select muxes.
  Netlist pc("pc-logic");
  pc.add(CellType::kTha, kW);
  pc.add(CellType::kTmux3, 2 * kW);
  return pc;
}

}  // namespace

Art9Design build_art9_design(const DatapathOptions& options) {
  Art9Design design;
  Netlist top("art9-datapath");
  top.add(build_talu());
  top.add(build_decoder());
  top.add(build_hdu());
  if (options.ex_forwarding) top.add(build_forwarding());
  if (options.branch_in_id) top.add(build_branch_unit());
  top.add(build_pc_logic());

  // Critical path: EX stage — forwarding mux, SUB negate, ripple carry
  // through the 9-trit adder, result mux (paper §IV-B: the branch path is
  // kept off the critical path by the one-trit condition forwarding).
  std::vector<std::pair<CellType, int>> path;
  if (options.ex_forwarding) path.emplace_back(CellType::kTmux3, 2);
  path.emplace_back(CellType::kSti, 1);
  path.emplace_back(CellType::kTfa, kW);
  path.emplace_back(CellType::kTmux3, 2);
  top.set_critical_path(std::move(path));

  design.datapath = top;

  // Sequential state (trits):
  //   TRF                 9 regs x 9     = 81
  //   PC                                 =  9
  //   IF/ID   instr 9 + pc 9             = 18
  //   ID/EX   a 9 + b 9 + imm 5 + ctl 4  = 27
  //   EX/MEM  result 9 + store 9 + ctl 2 = 20
  //   MEM/WB  result 9 + dest 2 + ctl 3  = 14
  design.state_trits = 81 + 9 + 18 + 27 + 20 + 14;  // = 169
  design.binary_state_bits = 1;                     // pipeline valid flag
  design.tim_words = options.memory_words;
  design.tdm_words = options.memory_words;
  return design;
}

}  // namespace art9::tech
