// Performance estimator (paper Fig. 3, final box): fuses the cycle-accurate
// simulator's output (Dhrystone cycles per iteration) with the gate-level
// analysis into the paper's headline metrics — DMIPS/MHz, DMIPS and
// DMIPS/W for a given technology.
#pragma once

#include <cstdint>
#include <string>

#include "tech/analyzer.hpp"

namespace art9::tech {

struct PerformanceEstimate {
  AnalysisReport analysis;
  uint64_t dhrystone_cycles_per_iteration = 0;
  double dmips_per_mhz = 0.0;
  double clock_mhz = 0.0;
  double dmips = 0.0;
  double dmips_per_watt = 0.0;
};

class PerformanceEstimator {
 public:
  /// `dhrystone_cycles_per_iteration` comes from the cycle-accurate
  /// simulator; DMIPS uses the Dhrystone convention of 1757
  /// iterations-per-second per DMIPS.
  [[nodiscard]] PerformanceEstimate estimate(const Art9Design& design, const Technology& tech,
                                             uint64_t dhrystone_cycles_per_iteration) const;
};

/// Renders the paper-style one-line summary, e.g.
/// "CNTFET-32nm @0.9V: 652 gates, 42.7 uW, 316 MHz, 3.1e6 DMIPS/W".
[[nodiscard]] std::string summarize(const PerformanceEstimate& estimate);

}  // namespace art9::tech
