// Structural model of the 5-stage ART-9 datapath (paper Fig. 4), expressed
// as a hierarchy of standard-ternary-gate netlists.  Module inventories
// follow the microarchitecture of src/sim/pipeline.cpp; per-module cell
// counts are documented inline and unit-tested against the Table IV total
// (652 standard ternary gates).
#pragma once

#include "tech/netlist.hpp"

namespace art9::tech {

/// Options mirroring the pipeline ablation switches — disabling forwarding
/// removes the forwarding multiplexers from the netlist, etc.
struct DatapathOptions {
  bool ex_forwarding = true;
  bool branch_in_id = true;
  /// FPGA-prototype memory depth (words per memory, Table V: 256).
  int memory_words = 256;
};

/// Builds the full design (datapath netlist + state + memories).
[[nodiscard]] Art9Design build_art9_design(const DatapathOptions& options = {});

}  // namespace art9::tech
