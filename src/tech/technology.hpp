// Technology descriptions — the "property description of the design
// technology" input of the hardware-level evaluation framework (paper
// Fig. 3).  A Technology carries per-primitive delay/power/area data; the
// gate-level analyzer composes these over the datapath netlist.
//
// Two built-in technologies reproduce the paper's two implementation
// targets:
//  * cntfet32(): 32 nm CNTFET standard ternary gates at 0.9 V (per-gate
//    figures calibrated to the published totals of [Kim et al. 2020],
//    paper Table IV: 652 gates / 42.7 uW; see DESIGN.md §2);
//  * fpga_binary_emulation(): binary-encoded ternary modules on a
//    Stratix-V-class FPGA at 0.9 V / 150 MHz (paper Table V: one trit
//    costs two bits; ALM/register/RAM-bit costs per primitive).
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace art9::tech {

/// Primitive ternary cells of the standard-gate library.
enum class CellType : uint8_t {
  kSti,    // standard ternary inverter
  kNti,    // negative ternary inverter
  kPti,    // positive ternary inverter
  kTand2,  // 2-input min
  kTor2,   // 2-input max
  kTxor2,  // 2-input negated product
  kTmux3,  // one-trit 3:1 multiplexer (select is a trit)
  kTha,    // one-trit half adder (sum + carry)
  kTfa,    // one-trit full adder
  kTcmp,   // one-trit compare cell (sign of a-b with chain-in)
  kTdec,   // decoder slice (opcode field match)
  kTdff,   // one-trit D flip-flop (sequential; counted separately)
};

inline constexpr int kNumCellTypes = 12;

/// All cell types, for iteration.
[[nodiscard]] const std::array<CellType, kNumCellTypes>& all_cell_types();

/// Short display name.
[[nodiscard]] const char* cell_name(CellType type);

/// Per-cell characteristics in one technology.
struct CellParams {
  /// Propagation delay through the cell (worst arc), picoseconds.
  double delay_ps = 0.0;
  /// Average power at the technology's reference voltage and activity,
  /// nanowatts.
  double power_nw = 0.0;
  /// "Standard ternary gate" equivalents (Table IV counts these).
  double gate_equivalents = 1.0;
  /// FPGA resources when a trit is emulated with two bits (Table V).
  double alms = 0.0;
  double ff_bits = 0.0;  // flip-flop bits (kTdff only)
};

/// What kind of implementation fabric a technology describes.
enum class Fabric { kTernaryGates, kBinaryEmulation };

class Technology {
 public:
  Technology(std::string name, Fabric fabric, double voltage_v);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Fabric fabric() const noexcept { return fabric_; }
  [[nodiscard]] double voltage() const noexcept { return voltage_v_; }

  void set_cell(CellType type, CellParams params);
  [[nodiscard]] const CellParams& cell(CellType type) const;

  /// Memory macro model: bits-per-trit-cell and per-word access energy are
  /// folded into a flat per-word power/area figure.
  struct MemoryParams {
    double bits_per_trit = 0.0;      // binary emulation: 2; native: 0 (trit cells)
    double power_nw_per_word = 0.0;  // average operating power contribution
    double alms_per_port = 0.0;      // address/control logic on FPGA
  };
  void set_memory(MemoryParams params) { memory_ = params; }
  [[nodiscard]] const MemoryParams& memory() const noexcept { return memory_; }

  /// Static (leakage / fabric baseline) power in watts — dominant for the
  /// FPGA target.
  void set_static_power_w(double watts) { static_power_w_ = watts; }
  [[nodiscard]] double static_power_w() const noexcept { return static_power_w_; }

  /// Average dynamic power per occupied ALM (binary-emulation fabric only).
  void set_alm_power_nw(double nanowatts) { alm_power_nw_ = nanowatts; }
  [[nodiscard]] double alm_power_nw() const noexcept { return alm_power_nw_; }

  /// Hard clock constraint (MHz), if the fabric pins one (FPGA: 150 MHz).
  void set_clock_cap_mhz(double mhz) { clock_cap_mhz_ = mhz; }
  [[nodiscard]] double clock_cap_mhz() const noexcept { return clock_cap_mhz_; }

  /// The paper's two targets.
  static Technology cntfet32();
  static Technology fpga_binary_emulation();

 private:
  std::string name_;
  Fabric fabric_;
  double voltage_v_;
  std::array<CellParams, kNumCellTypes> cells_{};
  MemoryParams memory_{};
  double static_power_w_ = 0.0;
  double alm_power_nw_ = 0.0;
  double clock_cap_mhz_ = 0.0;
};

}  // namespace art9::tech
