#include "tech/estimator.hpp"

#include <cmath>
#include <sstream>

namespace art9::tech {

PerformanceEstimate PerformanceEstimator::estimate(const Art9Design& design,
                                                   const Technology& tech,
                                                   uint64_t dhrystone_cycles_per_iteration) const {
  PerformanceEstimate est;
  GateLevelAnalyzer analyzer;
  est.analysis = analyzer.analyze(design, tech);
  est.dhrystone_cycles_per_iteration = dhrystone_cycles_per_iteration;
  if (dhrystone_cycles_per_iteration > 0) {
    est.dmips_per_mhz = 1.0e6 / 1757.0 / static_cast<double>(dhrystone_cycles_per_iteration);
  }
  est.clock_mhz = est.analysis.max_clock_mhz;
  est.dmips = est.dmips_per_mhz * est.clock_mhz;
  if (est.analysis.power_w > 0.0) {
    est.dmips_per_watt = est.dmips / est.analysis.power_w;
  }
  return est;
}

std::string summarize(const PerformanceEstimate& e) {
  std::ostringstream os;
  os << e.analysis.technology << " @" << e.analysis.voltage_v << "V: ";
  if (e.analysis.total_gates > 0.0) {
    os << e.analysis.total_gates << " ternary gates, ";
  } else {
    os << e.analysis.alms << " ALMs, " << e.analysis.ff_bits << " registers, "
       << e.analysis.ram_bits << " RAM bits, ";
  }
  os << e.analysis.power_w * 1e6 << " uW, " << e.clock_mhz << " MHz, " << e.dmips_per_mhz
     << " DMIPS/MHz, " << e.dmips_per_watt << " DMIPS/W";
  return os.str();
}

}  // namespace art9::tech
