#include "fuzz/harness.hpp"

#include <optional>
#include <random>
#include <sstream>
#include <utility>

#include "core/progen.hpp"
#include "isa/instruction.hpp"
#include "rv32/rv32_assembler.hpp"
#include "sim/engine.hpp"
#include "sim/snapshot.hpp"
#include "xlat/framework.hpp"

namespace art9::fuzz {
namespace {

/// Budget that every progen-generated program halts well inside (the
/// generators emit bounded counted loops; the largest corpus programs
/// halt in tens of thousands of steps).
constexpr uint64_t kCompletionBudget = 5'000'000;

/// Fuzz-input cursor: exhausted bytes read as zero, so any byte string
/// is a valid case and shrinking a crashing input stays a valid case.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  [[nodiscard]] uint8_t u8() { return pos_ < size_ ? data_[pos_++] : 0; }

  [[nodiscard]] uint16_t u16() {
    const uint16_t lo = u8();
    return static_cast<uint16_t>(lo | (u8() << 8));
  }

  [[nodiscard]] uint64_t u64() {
    uint64_t v = 0;
    for (int b = 0; b < 8; ++b) v |= static_cast<uint64_t>(u8()) << (8 * b);
    return v;
  }

 private:
  const uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Folds an arbitrary value into [lo, hi] (inclusive, lo <= hi).
int fold(int64_t raw, int lo, int hi) {
  const int64_t span = static_cast<int64_t>(hi) - lo + 1;
  int64_t r = raw % span;
  if (r < 0) r += span;
  return static_cast<int>(lo + r);
}

std::string describe_stats(const sim::SimStats& s) {
  std::ostringstream os;
  os << "cycles=" << s.cycles << " instructions=" << s.instructions
     << " halt=" << (s.halt == sim::HaltReason::kHalted ? "halted" : "max-cycles");
  return os.str();
}

// ===========================================================================
// ART-9 outcomes.
// ===========================================================================

/// One retired-instruction event, rendered for comparison.
struct Event {
  int64_t pc = 0;
  std::string text;
  bool taken = false;  // rv32 only

  friend bool operator==(const Event&, const Event&) = default;
};

struct Art9Outcome {
  bool threw = false;
  std::string error;
  sim::SimStats stats;
  sim::MachineState state;     // state() at the end of the run
  sim::MachineState boundary;  // checkpoint(): pipeline halt PC normalized
  std::vector<Event> stream;
};

Art9Outcome run_art9(sim::EngineKind kind, const std::shared_ptr<const sim::DecodedImage>& image,
                     uint64_t budget) {
  Art9Outcome out;
  std::unique_ptr<sim::Engine> engine = sim::make_engine(kind, image);
  engine->set_observer(
      [&](const sim::Retired& r) { out.stream.push_back({r.pc, isa::to_string(r.art9())}); });
  try {
    out.stats = engine->run_stats({budget});
    out.state = engine->state();
    out.boundary = engine->checkpoint();
  } catch (const std::exception& e) {
    out.threw = true;
    out.error = e.what();
  }
  return out;
}

std::optional<std::string> diff_streams(const std::vector<Event>& got,
                                        const std::vector<Event>& want) {
  if (got.size() != want.size()) {
    return "stream length " + std::to_string(got.size()) + " vs " + std::to_string(want.size());
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i] == want[i]) continue;
    std::ostringstream os;
    os << "stream[" << i << "]: pc=" << got[i].pc << " \"" << got[i].text
       << "\" taken=" << got[i].taken << " vs pc=" << want[i].pc << " \"" << want[i].text
       << "\" taken=" << want[i].taken;
    return os.str();
  }
  return std::nullopt;
}

/// Full-parity comparison for two functional ART-9 outcomes: identical
/// traps, or identical SimStats + MachineState + observer stream.
std::optional<std::string> diff_art9_functional(const Art9Outcome& got, const Art9Outcome& want) {
  if (got.threw != want.threw || (got.threw && got.error != want.error)) {
    return "trap mismatch: \"" + (got.threw ? got.error : "<none>") + "\" vs \"" +
           (want.threw ? want.error : "<none>") + "\"";
  }
  if (got.threw) return std::nullopt;
  if (got.stats != want.stats) {
    return "stats mismatch: " + describe_stats(got.stats) + " vs " + describe_stats(want.stats);
  }
  if (got.state != want.state) return "MachineState mismatch";
  return diff_streams(got.stream, want.stream);
}

/// Architectural comparison for a pipeline outcome against the lazy
/// reference at halt: TRF, TDM contents, normalized PC, retire count and
/// stream (cycle accounting and TDM access counters are the pipeline's
/// own model).
std::optional<std::string> diff_art9_pipeline(const Art9Outcome& got, const Art9Outcome& want) {
  if (got.threw || want.threw) {
    return "trap mismatch: \"" + (got.threw ? got.error : "<none>") + "\" vs \"" +
           (want.threw ? want.error : "<none>") + "\"";
  }
  if (got.stats.halt != sim::HaltReason::kHalted) return "pipeline did not halt";
  if (got.stats.instructions != want.stats.instructions) {
    return "retire count " + std::to_string(got.stats.instructions) + " vs " +
           std::to_string(want.stats.instructions);
  }
  const sim::ArchState& g = got.boundary.art9();
  const sim::ArchState& w = want.boundary.art9();
  if (g.trf != w.trf) return "TRF mismatch";
  if (g.pc != w.pc) return "PC " + std::to_string(g.pc) + " vs " + std::to_string(w.pc);
  for (int64_t a = -ternary::Word9::kMaxValue; a <= ternary::Word9::kMaxValue; ++a) {
    if (g.tdm.peek(a) != w.tdm.peek(a)) return "TDM mismatch at address " + std::to_string(a);
  }
  return diff_streams(got.stream, want.stream);
}

/// The embedded snapshot leg: run kind A for `split` steps, checkpoint,
/// serialize -> deserialize, resume on kind B, run to completion, and
/// compare the boundary state against the uninterrupted reference at
/// halt.  Counter parity is demanded only when A and B share the
/// reference counter model (both functional).
std::optional<std::string> check_art9_snapshot_leg(
    const std::shared_ptr<const sim::DecodedImage>& image, sim::EngineKind a, sim::EngineKind b,
    uint64_t split, const sim::MachineState& reference_at_halt) {
  std::unique_ptr<sim::Engine> source = sim::make_engine(a, image);
  static_cast<void>(source->run_stats({split}));
  const sim::MachineState snap = source->checkpoint();
  const std::vector<uint8_t> blob = sim::serialize_snapshot(snap);
  const sim::MachineState revived = sim::deserialize_snapshot(blob);
  if (revived != snap) return "snapshot round-trip mismatch";

  std::unique_ptr<sim::Engine> resumed = sim::make_engine(b, image, revived);
  if (resumed->run_stats({kCompletionBudget}).halt != sim::HaltReason::kHalted) {
    return "resumed engine did not halt";
  }
  // Named local: checkpoint() returns by value, and `.art9()` on the
  // temporary would move the view out per call — bind the boundary once.
  const sim::MachineState resumed_boundary = resumed->checkpoint();
  const sim::ArchState& g = resumed_boundary.art9();
  const sim::ArchState& w = reference_at_halt.art9();
  if (g.trf != w.trf) return "resumed TRF mismatch";
  if (g.pc != w.pc) return "resumed PC mismatch";
  const bool counters = !sim::is_cycle_accurate(a) && !sim::is_cycle_accurate(b);
  if (counters && g.tdm != w.tdm) return "resumed TDM (contents+counters) mismatch";
  for (int64_t addr = -ternary::Word9::kMaxValue; addr <= ternary::Word9::kMaxValue; ++addr) {
    if (g.tdm.peek(addr) != w.tdm.peek(addr)) {
      return "resumed TDM mismatch at address " + std::to_string(addr);
    }
  }
  return std::nullopt;
}

// ===========================================================================
// Mode 0 — ART-9 progen differential.
// ===========================================================================

std::optional<std::string> check_art9_case(ByteReader& in) {
  const uint64_t seed = in.u64();
  const uint8_t bits = in.u8();
  core::Art9GenOptions options;
  options.with_memory_ops = (bits & 1) != 0;
  options.with_branches = (bits & 2) != 0;
  options.with_loops = (bits & 4) != 0;
  options.min_length = 5 + in.u8() % 40;
  options.max_length = options.min_length + 1 + in.u8() % 80;
  const uint64_t budget = 1 + in.u16() % 2048;

  std::mt19937_64 rng(seed);
  const std::shared_ptr<const sim::DecodedImage> image =
      sim::decode(core::generate_art9_program(rng, options));

  std::ostringstream tag;
  tag << "seed=" << seed << " bits=" << int(bits) << " len=[" << options.min_length << ","
      << options.max_length << "] budget=" << budget;

  // Functional kinds against the lazy reference at the randomized budget.
  const Art9Outcome reference = run_art9(sim::EngineKind::kLazy, image, budget);
  for (sim::EngineKind kind :
       {sim::EngineKind::kFunctional, sim::EngineKind::kPacked, sim::EngineKind::kSuperblock}) {
    if (auto d = diff_art9_functional(run_art9(kind, image, budget), reference)) {
      return std::string(sim::engine_kind_name(kind)) + " vs lazy: " + *d + " (" + tag.str() + ")";
    }
  }

  // Pipeline kinds at halt (generated programs always halt).
  const Art9Outcome at_halt = run_art9(sim::EngineKind::kLazy, image, kCompletionBudget);
  if (at_halt.threw) return "lazy reference trapped: " + at_halt.error + " (" + tag.str() + ")";
  if (at_halt.stats.halt != sim::HaltReason::kHalted) {
    return "generated program did not halt (" + tag.str() + ")";
  }
  for (sim::EngineKind kind : {sim::EngineKind::kPipeline, sim::EngineKind::kPackedPipeline}) {
    if (auto d = diff_art9_pipeline(run_art9(kind, image, kCompletionBudget), at_halt)) {
      return std::string(sim::engine_kind_name(kind)) + " vs lazy: " + *d + " (" + tag.str() + ")";
    }
  }

  // Snapshot leg over a fuzz-chosen kind pair and split point.
  const auto kinds = sim::art9_engine_kinds();
  const sim::EngineKind a = kinds[in.u8() % kinds.size()];
  const sim::EngineKind b = kinds[in.u8() % kinds.size()];
  const uint64_t split = in.u8() % 64;
  if (auto d = check_art9_snapshot_leg(image, a, b, split, at_halt.boundary)) {
    return "snapshot " + std::string(sim::engine_kind_name(a)) + "->" +
           std::string(sim::engine_kind_name(b)) + " split=" + std::to_string(split) + ": " + *d +
           " (" + tag.str() + ")";
  }
  return std::nullopt;
}

// ===========================================================================
// rv32 outcomes.
// ===========================================================================

struct Rv32Outcome {
  bool threw = false;
  std::string error;
  uint64_t instructions = 0;
  bool halted = false;
  rv32::Rv32ArchState state;
  std::vector<Event> stream;
};

Rv32Outcome run_rv32_reference(const rv32::Rv32Program& program, std::size_t ram_bytes,
                               uint64_t budget) {
  Rv32Outcome out;
  rv32::LazyRv32Simulator sim(program, ram_bytes);
  try {
    const rv32::Rv32RunStats stats = sim.run(budget, [&](const rv32::Rv32Retired& r) {
      out.stream.push_back({static_cast<int64_t>(r.pc), rv32::to_string(r.inst), r.taken});
    });
    out.instructions = stats.instructions;
    out.halted = stats.halted;
    out.state = sim.state();
  } catch (const std::exception& e) {
    out.threw = true;
    out.error = e.what();
  }
  return out;
}

Rv32Outcome run_rv32_engine(sim::EngineKind kind,
                            const std::shared_ptr<const rv32::Rv32DecodedImage>& image,
                            std::size_t ram_bytes, uint64_t budget) {
  Rv32Outcome out;
  sim::EngineOptions options;
  options.rv32_ram_bytes = ram_bytes;
  std::unique_ptr<sim::Engine> engine = sim::make_engine(kind, image, options);
  engine->set_observer([&](const sim::Retired& r) {
    out.stream.push_back({r.pc, rv32::to_string(r.rv32()), r.taken});
  });
  try {
    const sim::SimStats stats = engine->run_stats({budget});
    out.instructions = stats.instructions;
    out.halted = stats.halt == sim::HaltReason::kHalted;
    out.state = engine->state().rv32();
  } catch (const std::exception& e) {
    out.threw = true;
    out.error = e.what();
  }
  return out;
}

std::optional<std::string> diff_rv32(const Rv32Outcome& got, const Rv32Outcome& want) {
  if (got.threw != want.threw || (got.threw && got.error != want.error)) {
    return "trap mismatch: \"" + (got.threw ? got.error : "<none>") + "\" vs \"" +
           (want.threw ? want.error : "<none>") + "\"";
  }
  if (got.threw) return std::nullopt;
  if (got.instructions != want.instructions || got.halted != want.halted) {
    return "stats mismatch: instructions=" + std::to_string(got.instructions) + " halted=" +
           std::to_string(got.halted) + " vs instructions=" + std::to_string(want.instructions) +
           " halted=" + std::to_string(want.halted);
  }
  if (got.state != want.state) return "Rv32ArchState mismatch";
  return diff_streams(got.stream, want.stream);
}

// ===========================================================================
// Mode 1 — rv32 progen differential.
// ===========================================================================

std::optional<std::string> check_rv32_case(ByteReader& in) {
  const uint64_t seed = in.u64();
  const uint8_t bits = in.u8();
  core::Rv32GenOptions options;
  options.with_memory_ops = (bits & 1) != 0;
  options.with_mul = (bits & 2) != 0;
  options.max_registers = 5 + in.u8() % 6;  // 5..10: exercises spilling
  const std::size_t ram_bytes = std::size_t{1} << (10 + in.u8() % 7);  // 1 KiB .. 64 KiB
  const uint64_t budget = 1 + in.u16() % 2048;

  std::mt19937_64 rng(seed);
  const rv32::Rv32Program program = rv32::assemble_rv32(core::generate_rv32_source(rng, options));
  const std::shared_ptr<const rv32::Rv32DecodedImage> image = rv32::decode(program);

  std::ostringstream tag;
  tag << "seed=" << seed << " bits=" << int(bits) << " regs=" << options.max_registers
      << " ram=" << ram_bytes << " budget=" << budget;

  const Rv32Outcome reference = run_rv32_reference(program, ram_bytes, budget);
  for (sim::EngineKind kind : sim::rv32_engine_kinds()) {
    if (auto d = diff_rv32(run_rv32_engine(kind, image, ram_bytes, budget), reference)) {
      return std::string(sim::engine_kind_name(kind)) + " vs seed-lazy: " + *d + " (" + tag.str() +
             ")";
    }
  }

  // Snapshot leg between the two rv32 kinds: freeze A, resume B, and the
  // final state must equal the uninterrupted reference at halt.
  const Rv32Outcome at_halt = run_rv32_reference(program, ram_bytes, kCompletionBudget);
  if (at_halt.threw) return "rv32 reference trapped: " + at_halt.error + " (" + tag.str() + ")";
  if (!at_halt.halted) return "generated rv32 program did not halt (" + tag.str() + ")";

  const auto kinds = sim::rv32_engine_kinds();
  const sim::EngineKind a = kinds[in.u8() % kinds.size()];
  const sim::EngineKind b = kinds[in.u8() % kinds.size()];
  const uint64_t split = in.u8() % 64;
  sim::EngineOptions eopts;
  eopts.rv32_ram_bytes = ram_bytes;
  std::unique_ptr<sim::Engine> source = sim::make_engine(a, image, eopts);
  static_cast<void>(source->run_stats({split}));
  const sim::MachineState snap = source->checkpoint();
  const sim::MachineState revived = sim::deserialize_snapshot(sim::serialize_snapshot(snap));
  if (revived != snap) return "rv32 snapshot round-trip mismatch (" + tag.str() + ")";
  std::unique_ptr<sim::Engine> resumed = sim::make_engine(b, image, revived);
  if (resumed->run_stats({kCompletionBudget}).halt != sim::HaltReason::kHalted) {
    return "resumed rv32 engine did not halt (" + tag.str() + ")";
  }
  if (resumed->state().rv32() != at_halt.state) {
    return "snapshot " + std::string(sim::engine_kind_name(a)) + "->" +
           std::string(sim::engine_kind_name(b)) + " split=" + std::to_string(split) +
           ": resumed state mismatch (" + tag.str() + ")";
  }
  return std::nullopt;
}

// ===========================================================================
// Mode 2 — xlat: translate-then-simulate vs rv32-native.
// ===========================================================================

int64_t art9_location_value(const xlat::TranslationResult& xlat, const sim::ArchState& state,
                            int reg) {
  const xlat::Location& loc = xlat.location(reg);
  switch (loc.kind) {
    case xlat::Location::Kind::kZero:
      return 0;
    case xlat::Location::Kind::kReg:
    case xlat::Location::Kind::kLink:
      return state.trf.read(loc.reg).to_int();
    case xlat::Location::Kind::kSpill:
      return state.tdm.peek(loc.slot).to_int();
  }
  return 0;
}

std::optional<std::string> check_xlat_case(ByteReader& in) {
  const uint64_t seed = in.u64();
  const uint8_t bits = in.u8();
  core::Rv32GenOptions options;
  options.with_memory_ops = (bits & 1) != 0;
  options.with_mul = (bits & 2) != 0;
  options.max_registers = 5 + in.u8() % 6;
  const auto kinds = sim::art9_engine_kinds();
  const sim::EngineKind kind = kinds[in.u8() % kinds.size()];

  std::mt19937_64 rng(seed);
  const rv32::Rv32Program program = rv32::assemble_rv32(core::generate_rv32_source(rng, options));

  std::ostringstream tag;
  tag << "seed=" << seed << " bits=" << int(bits) << " regs=" << options.max_registers
      << " kind=" << sim::engine_kind_name(kind);

  rv32::LazyRv32Simulator native(program);
  if (!native.run(kCompletionBudget).halted) {
    return "rv32-native did not halt (" + tag.str() + ")";
  }

  const xlat::SoftwareFramework framework;
  const xlat::TranslationResult xlat = framework.translate(program);
  std::unique_ptr<sim::Engine> translated = sim::make_engine(kind, xlat.program);
  if (translated->run_stats({kCompletionBudget}).halt != sim::HaltReason::kHalted) {
    return "translated program did not halt (" + tag.str() + ")";
  }
  const sim::ArchState t9 = translated->checkpoint().art9();

  // Every rv32 register the generator can touch (x0 + its pool) through
  // the renaming map, then the word-granular memory-slot correspondence.
  for (int reg : {0, 10, 11, 12, 13, 14, 5, 6, 7, 18, 19}) {
    const int64_t got = art9_location_value(xlat, t9, reg);
    const auto want = static_cast<int32_t>(native.reg(reg));
    if (got != want) {
      return "x" + std::to_string(reg) + " = " + std::to_string(got) + " vs " +
             std::to_string(want) + " (" + tag.str() + ")";
    }
  }
  for (int slot = 0; slot < 16; ++slot) {
    const int64_t got = t9.tdm.peek(slot * 4).to_int();
    const auto want = static_cast<int32_t>(native.load_word(static_cast<uint32_t>(slot * 4)));
    if (got != want) {
      return "memory slot " + std::to_string(slot) + " = " + std::to_string(got) + " vs " +
             std::to_string(want) + " (" + tag.str() + ")";
    }
  }
  return std::nullopt;
}

// ===========================================================================
// Mode 3 — raw instruction words: wild control flow, trap parity.
// ===========================================================================

std::optional<std::string> check_raw_case(ByteReader& in) {
  const int length = 1 + in.u8() % 28;
  const uint64_t budget = 1 + in.u16() % 512;
  isa::Program program;
  program.entry = 0;
  for (int i = 0; i < length; ++i) {
    isa::Instruction inst;
    inst.op = isa::all_opcodes()[in.u8() % isa::kNumOpcodes];
    inst.ta = in.u8() % isa::kNumRegisters;
    inst.tb = in.u8() % isa::kNumRegisters;
    inst.bcond = ternary::Trit(static_cast<int>(in.u8() % 3) - 1);
    const isa::OpcodeSpec& s = isa::spec(inst.op);
    inst.imm = s.imm_min == s.imm_max
                   ? s.imm_min
                   : fold(static_cast<int16_t>(in.u16()), s.imm_min, s.imm_max);
    program.code.push_back(inst);
  }

  std::ostringstream tag;
  tag << "len=" << length << " budget=" << budget << " code=[";
  for (const isa::Instruction& inst : program.code) tag << " " << isa::to_string(inst) << ";";
  tag << " ]";

  // Wild jumps land on uninitialised TIM rows: a *trap* is a legal
  // outcome, but it must be byte-identical across the functional kinds.
  const std::shared_ptr<const sim::DecodedImage> image = sim::decode(program);
  const Art9Outcome reference = run_art9(sim::EngineKind::kLazy, image, budget);
  for (sim::EngineKind kind :
       {sim::EngineKind::kFunctional, sim::EngineKind::kPacked, sim::EngineKind::kSuperblock}) {
    if (auto d = diff_art9_functional(run_art9(kind, image, budget), reference)) {
      return std::string(sim::engine_kind_name(kind)) + " vs lazy: " + *d + " (" + tag.str() + ")";
    }
  }
  return std::nullopt;
}

// ===========================================================================
// Mode 4 — snapshot codec: mutated blobs must reject-or-round-trip.
// ===========================================================================

/// Mirror of the codec's trailing FNV-1a 64 (sim/snapshot.cpp): re-stamps
/// the checksum after a deliberate structural edit so the *field*
/// validation behind the integrity check is what the case exercises.
void restamp_checksum(std::vector<uint8_t>& blob) {
  if (blob.size() < 8) return;
  uint64_t h = 14695981039346656037ULL;
  for (std::size_t i = 0; i + 8 < blob.size(); ++i) {
    h ^= blob[i];
    h *= 1099511628211ULL;
  }
  for (int b = 0; b < 8; ++b) {
    blob[blob.size() - 8 + static_cast<std::size_t>(b)] = static_cast<uint8_t>(h >> (8 * b));
  }
}

/// What the oracle demands of deserialize_snapshot on the mutated blob.
enum class CodecExpectation { kAccept, kReject, kEither };

std::optional<std::string> check_snapshot_case(ByteReader& in) {
  // A genuine checkpoint blob: fuzz-chosen ISA, engine kind and split.
  const bool use_rv32 = (in.u8() & 1) != 0;
  const uint64_t seed = in.u64();
  const uint64_t split = in.u8() % 64;

  std::mt19937_64 rng(seed);
  std::unique_ptr<sim::Engine> engine;
  if (use_rv32) {
    const auto kinds = sim::rv32_engine_kinds();
    sim::EngineOptions options;
    options.rv32_ram_bytes = 4096;  // a small RAM keeps the blobs small
    engine = sim::make_engine(kinds[in.u8() % kinds.size()],
                              rv32::decode(rv32::assemble_rv32(core::generate_rv32_source(rng))),
                              options);
  } else {
    const auto kinds = sim::art9_engine_kinds();
    engine = sim::make_engine(kinds[in.u8() % kinds.size()],
                              sim::decode(core::generate_art9_program(rng)));
  }
  static_cast<void>(engine->run_stats({split}));
  const sim::MachineState snap = engine->checkpoint();
  const std::vector<uint8_t> blob = sim::serialize_snapshot(snap);

  // One fuzz-chosen mutation.  Structural edits are re-stamped so the
  // named field check — not the checksum gate in front of it — must fire.
  const uint8_t strategy = in.u8() % 9;
  std::vector<uint8_t> mutated = blob;
  CodecExpectation expectation = CodecExpectation::kReject;
  const char* message = nullptr;  // required rejection substring
  switch (strategy) {
    case 0:  // pristine: the canonical-round-trip leg
      expectation = CodecExpectation::kAccept;
      break;
    case 1:  // any bit flip without a re-stamp fails the integrity check
      mutated[in.u16() % mutated.size()] ^= static_cast<uint8_t>(1u << (in.u8() % 8));
      message = "checksum mismatch";
      break;
    case 2: {  // truncation at an arbitrary point
      const std::size_t keep = in.u16() % (mutated.size() + 1);
      mutated.resize(keep);
      if (keep == blob.size()) expectation = CodecExpectation::kAccept;
      break;
    }
    case 3:  // corrupted magic
      mutated[in.u8() % 8] ^= static_cast<uint8_t>(1u << (in.u8() % 8));
      restamp_checksum(mutated);
      message = "bad magic";
      break;
    case 4:  // version bump (the u16 at offset 8)
      mutated[8 + in.u8() % 2] ^= static_cast<uint8_t>(1 + in.u8() % 255);
      restamp_checksum(mutated);
      message = "unsupported version";
      break;
    case 5:  // ISA tag outside {art9, rv32} (the byte at offset 10)
      mutated[10] = static_cast<uint8_t>(2 + in.u8() % 254);
      restamp_checksum(mutated);
      message = "unknown ISA tag";
      break;
    case 6:  // garbage wedged between payload and checksum
      mutated.insert(mutated.end() - 8, 1 + in.u8() % 8, 0xA5);
      restamp_checksum(mutated);
      message = "trailing";
      break;
    case 7:  // ISA-specific field violation behind a valid checksum
      if (use_rv32) {
        // x0 must deserialize as zero: header(11) + u32 pc, then x0.
        mutated[11 + 4 + in.u8() % 4] |= static_cast<uint8_t>(1u << (in.u8() % 8));
        message = "x0";
      } else {
        // First register's i16 (header 11 + i64 pc) pushed to 20000.
        mutated[19] = 0x20;
        mutated[20] = 0x4E;
        message = "outside the 9-trit range";
      }
      restamp_checksum(mutated);
      break;
    default:  // wholly fuzzer-authored bytes: reject-or-round-trip
      mutated.assign(in.u16() % 96, 0);
      for (uint8_t& byte : mutated) byte = in.u8();
      expectation = CodecExpectation::kEither;
      break;
  }

  std::ostringstream tag;
  tag << (use_rv32 ? "rv32" : "art9") << " seed=" << seed << " split=" << split
      << " strategy=" << int(strategy) << " bytes=" << blob.size() << "->" << mutated.size();

  try {
    const sim::MachineState revived = sim::deserialize_snapshot(mutated);
    if (expectation == CodecExpectation::kReject) {
      return "malformed blob accepted (" + tag.str() + ")";
    }
    if (mutated == blob) {
      // The untouched blob must round-trip exactly and stay canonical.
      if (revived != snap) return "round-trip lost state (" + tag.str() + ")";
      if (sim::serialize_snapshot(revived) != blob) {
        return "re-serialization is not canonical (" + tag.str() + ")";
      }
    } else if (sim::deserialize_snapshot(sim::serialize_snapshot(revived)) != revived) {
      // A forged-but-accepted blob need not be canonical bytes (e.g. TDM
      // rows out of order), but its parsed state must be codec-stable.
      return "accepted state does not round-trip (" + tag.str() + ")";
    }
  } catch (const sim::SimError& e) {
    const std::string what = e.what();
    if (expectation == CodecExpectation::kAccept) {
      return "valid blob rejected: " + what + " (" + tag.str() + ")";
    }
    if (expectation == CodecExpectation::kReject && what.rfind("snapshot:", 0) != 0) {
      return "rejection without the snapshot: prefix: " + what + " (" + tag.str() + ")";
    }
    if (message != nullptr && what.find(message) == std::string::npos) {
      return std::string("wrong rejection: expected \"") + message + "\", got \"" + what + "\" (" +
             tag.str() + ")";
    }
  } catch (const std::exception& e) {
    return std::string("rejected with a non-SimError exception: ") + e.what() + " (" + tag.str() +
           ")";
  }
  return std::nullopt;
}

}  // namespace

FuzzResult run_fuzz_case(const uint8_t* data, std::size_t size) {
  ByteReader in(data, size);
  FuzzResult result;
  std::optional<std::string> divergence;
  switch (in.u8() % 5) {
    case 0:
      result.mode = "art9";
      divergence = check_art9_case(in);
      break;
    case 1:
      result.mode = "rv32";
      divergence = check_rv32_case(in);
      break;
    case 2:
      result.mode = "xlat";
      divergence = check_xlat_case(in);
      break;
    case 3:
      result.mode = "raw";
      divergence = check_raw_case(in);
      break;
    default:
      result.mode = "snapshot";
      divergence = check_snapshot_case(in);
      break;
  }
  if (divergence) {
    result.ok = false;
    result.detail = *divergence;
  }
  return result;
}

std::vector<uint8_t> seeded_input(uint64_t seed, uint64_t index) {
  // mt19937_64 raw output is pinned by the standard, so the stream is
  // identical on every platform/stdlib (same portability argument as
  // ternary/random.hpp).  Enough bytes for the hungriest mode (raw: up
  // to 28 instructions at 5 bytes each).
  std::mt19937_64 rng(seed ^ (index * 0x9e3779b97f4a7c15ULL));
  std::vector<uint8_t> bytes(160);
  for (std::size_t i = 0; i < bytes.size(); i += 8) {
    const uint64_t word = rng();
    for (std::size_t b = 0; b < 8 && i + b < bytes.size(); ++b) {
      bytes[i + b] = static_cast<uint8_t>(word >> (8 * b));
    }
  }
  return bytes;
}

}  // namespace art9::fuzz
