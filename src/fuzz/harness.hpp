// Coverage-guided differential fuzz harness over the 7-engine facade.
//
// One byte string decodes into one differential test case: a mode
// selector, a generator seed, budget/option bits, and (for the raw mode)
// instruction fields.  The case runs the same program on every
// conformant backend pair and demands full parity:
//
//   * mode 0 — ART-9 progen: a random always-halting ART-9 program runs
//     on all five ART-9 kinds against the lazy (seed-loop) reference —
//     MachineState, SimStats and retired-instruction observer streams at
//     a randomized budget for the functional kinds; architectural state,
//     retire count and stream at halt for the pipeline kinds — plus a
//     snapshot leg: freeze kind A mid-run, serialize -> deserialize,
//     resume on kind B, and the final state must equal never having
//     been interrupted.
//   * mode 1 — rv32 progen: both rv32 kinds against the seed
//     LazyRv32Simulator (state, stats, streams, randomized budget and
//     RAM size) with the same embedded snapshot leg.
//   * mode 2 — xlat: translate the generated rv32 program through
//     xlat::SoftwareFramework and compare the translated run (on a
//     fuzz-chosen ART-9 kind) against the rv32-native run through the
//     register-location map and the memory-slot correspondence.
//   * mode 3 — raw instruction words: arbitrary (valid-range) ART-9
//     instructions with wild control flow, run on the three functional
//     kinds under a small budget — outcome parity includes *traps*: all
//     kinds must throw the same error text, or none.
//   * mode 4 — snapshot codec: serialize a genuine checkpoint of a
//     fuzz-chosen ISA/kind/split, mutate the blob (bit flips, truncation,
//     checksum-re-stamped structural edits, wholly forged bytes), and
//     demand deserialize_snapshot either throws the precisely named
//     "snapshot: ..." SimError or accepts a state that is codec-stable
//     (pristine blobs additionally round-trip bit-identically).
//
// The harness is deliberately libFuzzer-agnostic: fuzz/fuzz_differential.cpp
// wraps run_fuzz_case as a LLVMFuzzerTestOneInput, and tools/art9_fuzz.cpp
// drives the identical code from a seeded RNG with no fuzzer runtime —
// the CI smoke path and the repro replayer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace art9::fuzz {

/// Outcome of one fuzz case.
struct FuzzResult {
  bool ok = true;
  std::string mode;    // oracle ran: "art9", "rv32", "xlat", "raw", "snapshot"
  std::string detail;  // divergence description; empty when ok
};

/// Decodes `data` into a differential case and runs it (see above).
/// Exhausted input bytes read as zero, so every byte string is a valid
/// case.  Never throws: a backend trap is part of the compared outcome,
/// and a divergence is reported in the result, not thrown.
[[nodiscard]] FuzzResult run_fuzz_case(const uint8_t* data, std::size_t size);

/// Deterministic input for iteration `index` of a seeded CLI run: a
/// byte string drawn from mt19937_64(seed ^ index) — the libFuzzer-free
/// driver's input source (same distribution on every platform).
[[nodiscard]] std::vector<uint8_t> seeded_input(uint64_t seed, uint64_t index);

}  // namespace art9::fuzz
