#include "isa/instruction.hpp"

#include <cctype>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace art9::isa {
namespace {

// Immediate ranges: imm3 = +/-13, imm4 = +/-40, imm5 = +/-121 (balanced);
// shift amounts are unsigned 2-trit values 0..8.
constexpr int kImm3 = 13;
constexpr int kImm4 = 40;
constexpr int kImm5 = 121;

constexpr OpcodeSpec kSpecs[kNumOpcodes] = {
    // mnemonic, format, imm_min, imm_max, rTa, rTb, wTa, br, jmp, ld, st
    {"MV", Format::kRUnary, 0, 0, false, true, true, false, false, false, false},
    {"PTI", Format::kRUnary, 0, 0, false, true, true, false, false, false, false},
    {"NTI", Format::kRUnary, 0, 0, false, true, true, false, false, false, false},
    {"STI", Format::kRUnary, 0, 0, false, true, true, false, false, false, false},
    {"AND", Format::kRBinary, 0, 0, true, true, true, false, false, false, false},
    {"OR", Format::kRBinary, 0, 0, true, true, true, false, false, false, false},
    {"XOR", Format::kRBinary, 0, 0, true, true, true, false, false, false, false},
    {"ADD", Format::kRBinary, 0, 0, true, true, true, false, false, false, false},
    {"SUB", Format::kRBinary, 0, 0, true, true, true, false, false, false, false},
    {"SR", Format::kRBinary, 0, 0, true, true, true, false, false, false, false},
    {"SL", Format::kRBinary, 0, 0, true, true, true, false, false, false, false},
    {"COMP", Format::kRBinary, 0, 0, true, true, true, false, false, false, false},
    {"ANDI", Format::kImm3, -kImm3, kImm3, true, false, true, false, false, false, false},
    {"ADDI", Format::kImm3, -kImm3, kImm3, true, false, true, false, false, false, false},
    {"SRI", Format::kShiftImm, 0, 8, true, false, true, false, false, false, false},
    {"SLI", Format::kShiftImm, 0, 8, true, false, true, false, false, false, false},
    {"LUI", Format::kLui, -kImm4, kImm4, false, false, true, false, false, false, false},
    {"LI", Format::kLi, -kImm5, kImm5, true, false, true, false, false, false, false},
    {"BEQ", Format::kBranch, -kImm4, kImm4, false, true, false, true, false, false, false},
    {"BNE", Format::kBranch, -kImm4, kImm4, false, true, false, true, false, false, false},
    {"JAL", Format::kJal, -kImm5, kImm5, false, false, true, false, true, false, false},
    {"JALR", Format::kJalr, -kImm3, kImm3, false, true, true, false, true, false, false},
    {"LOAD", Format::kMem, -kImm3, kImm3, false, true, true, false, false, true, false},
    {"STORE", Format::kMem, -kImm3, kImm3, true, true, false, false, false, false, true},
};

std::string upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace

const OpcodeSpec& spec(Opcode op) { return kSpecs[static_cast<int>(op)]; }

std::string_view mnemonic(Opcode op) { return spec(op).mnemonic; }

Opcode opcode_from_mnemonic(std::string_view name) {
  static const std::unordered_map<std::string, Opcode> kByName = [] {
    std::unordered_map<std::string, Opcode> m;
    for (int i = 0; i < kNumOpcodes; ++i) {
      m.emplace(std::string(kSpecs[i].mnemonic), static_cast<Opcode>(i));
    }
    return m;
  }();
  auto it = kByName.find(upper(name));
  if (it == kByName.end()) {
    throw std::invalid_argument("unknown ART-9 mnemonic: " + std::string(name));
  }
  return it->second;
}

std::string to_string(const Instruction& inst) {
  const OpcodeSpec& s = spec(inst.op);
  std::ostringstream os;
  os << s.mnemonic << ' ';
  switch (s.format) {
    case Format::kRBinary:
    case Format::kRUnary:
      os << 'T' << inst.ta << ", T" << inst.tb;
      break;
    case Format::kImm3:
    case Format::kShiftImm:
    case Format::kLui:
    case Format::kLi:
      os << 'T' << inst.ta << ", " << inst.imm;
      break;
    case Format::kBranch:
      os << 'T' << inst.tb << ", " << inst.bcond.to_char() << ", " << inst.imm;
      break;
    case Format::kJal:
      os << 'T' << inst.ta << ", " << inst.imm;
      break;
    case Format::kJalr:
      os << 'T' << inst.ta << ", T" << inst.tb << ", " << inst.imm;
      break;
    case Format::kMem:
      os << 'T' << inst.ta << ", " << inst.imm << "(T" << inst.tb << ')';
      break;
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Instruction& inst) {
  return os << to_string(inst);
}

const std::array<Opcode, kNumOpcodes>& all_opcodes() {
  static const std::array<Opcode, kNumOpcodes> kAll = [] {
    std::array<Opcode, kNumOpcodes> a{};
    for (int i = 0; i < kNumOpcodes; ++i) a[static_cast<size_t>(i)] = static_cast<Opcode>(i);
    return a;
  }();
  return kAll;
}

}  // namespace art9::isa
