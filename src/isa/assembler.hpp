// Two-pass assembler for ART-9 assembly text.
//
// Syntax (one statement per line; ';' or '#' starts a comment):
//
//   .org <expr>            set the current section address
//   .equ NAME, <expr>      define a constant
//   .text / .data          switch section (code -> TIM, data -> TDM)
//   .word <expr>[, ...]    emit initialised data words (data section)
//   .zero <count>          emit zero-initialised words (data section)
//   label:                 bind `label` to the current address
//   MNEMONIC operands      one of the 24 Table-I instructions
//
// Operands: registers T0..T8; immediates as decimal constants, .equ names
// or labels; branch/jump targets as labels (the assembler computes the
// PC-relative offset) or explicit numeric offsets; memory operands as
// `imm(Tb)` or `Ta, Tb, imm`.  The B operand of BEQ/BNE is '-', '0' or
// '+' (also accepted: -1, 0, 1).
//
// Pseudo-instructions:
//   NOP              -> ADDI T0, 0       (paper §IV-B)
//   HALT             -> JAL  T0, 0       (self-jump; simulators stop)
//   LIMM Ta, <expr>  -> LUI Ta, hi4 ; LI Ta, lo5   (full 9-trit constant)
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "isa/program.hpp"

namespace art9::isa {

/// Assembly diagnostics carry the 1-based source line.
class AsmError : public std::runtime_error {
 public:
  AsmError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message), line_(line) {}

  [[nodiscard]] int line() const noexcept { return line_; }

 private:
  int line_;
};

/// Assembles `source` into a program.  Throws AsmError on the first
/// diagnostic.
[[nodiscard]] Program assemble(std::string_view source);

}  // namespace art9::isa
