// An assembled ART-9 program: the TIM image (code), the TDM initial image
// (data) and the symbol table.
//
// Addressing convention used throughout this repository: software-visible
// addresses (labels, PC values, pointers) are *balanced* 9-trit values.
// The memory hardware decodes a 9-trit address pattern to a row via the
// unsigned digit interpretation (paper §II-A); since pattern <-> row is a
// bijection, the choice is invisible to software, and balanced addresses
// let base+offset arithmetic reuse the one balanced adder.  Address 0 is
// the reset PC.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/instruction.hpp"
#include "ternary/word.hpp"

namespace art9::isa {

/// One initialised TDM word.
struct DataWord {
  int64_t address;        // balanced address
  ternary::Word9 value;

  friend bool operator==(const DataWord&, const DataWord&) = default;
};

/// A fully assembled program.
struct Program {
  /// Decoded instructions, contiguous from `entry`.
  std::vector<Instruction> code;
  /// Encoded machine words (same order as `code`).
  std::vector<ternary::Word9> image;
  /// Initialised data words for the TDM.
  std::vector<DataWord> data;
  /// Label -> balanced address (code and data labels share one namespace).
  std::map<std::string, int64_t> symbols;
  /// Balanced address of the first instruction (reset PC).
  int64_t entry = 0;

  /// Number of ternary memory cells (trits) the program occupies — the
  /// quantity Fig. 5 compares (9 trits per instruction word plus 9 per
  /// initialised data word).
  [[nodiscard]] int64_t memory_cells() const {
    return static_cast<int64_t>(code.size() + data.size()) * 9;
  }

  /// Code-only trit count.
  [[nodiscard]] int64_t code_trits() const { return static_cast<int64_t>(code.size()) * 9; }

  /// Address of the label, or throws std::out_of_range.
  [[nodiscard]] int64_t symbol(const std::string& name) const { return symbols.at(name); }
};

}  // namespace art9::isa
