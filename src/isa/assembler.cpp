#include "isa/assembler.hpp"

#include <cctype>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "isa/encoding.hpp"

namespace art9::isa {
namespace {

using ternary::Trit;
using ternary::Word9;

// --- small lexing helpers ----------------------------------------------

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

std::string upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

/// Splits on top-level commas (commas inside parentheses do not split).
std::vector<std::string_view> split_operands(std::string_view s) {
  std::vector<std::string_view> out;
  s = trim(s);
  if (s.empty()) return out;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '(') ++depth;
    if (s[i] == ')') --depth;
    if (s[i] == ',' && depth == 0) {
      out.push_back(trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  out.push_back(trim(s.substr(start)));
  return out;
}

// --- expression evaluator ----------------------------------------------
//
// Grammar: expr := term (('+' | '-') term)*
//          term := factor ('*' factor)*
//          factor := INT | IDENT | '(' expr ')' | ('+' | '-') factor

class ExprEval {
 public:
  ExprEval(std::string_view text, const std::map<std::string, int64_t>& symbols, int line)
      : text_(text), symbols_(symbols), line_(line) {}

  int64_t evaluate() {
    int64_t v = expr();
    skip_ws();
    if (pos_ != text_.size()) {
      throw AsmError(line_, "trailing characters in expression: '" + std::string(text_) + "'");
    }
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  int64_t expr() {
    int64_t v = term();
    for (;;) {
      char c = peek();
      if (c == '+') {
        ++pos_;
        v += term();
      } else if (c == '-') {
        ++pos_;
        v -= term();
      } else {
        return v;
      }
    }
  }

  int64_t term() {
    int64_t v = factor();
    while (peek() == '*') {
      ++pos_;
      v *= factor();
    }
    return v;
  }

  int64_t factor() {
    char c = peek();
    if (c == '+') {
      ++pos_;
      return factor();
    }
    if (c == '-') {
      ++pos_;
      return -factor();
    }
    if (c == '(') {
      ++pos_;
      int64_t v = expr();
      if (peek() != ')') throw AsmError(line_, "missing ')' in expression");
      ++pos_;
      return v;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      int64_t v = 0;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        v = v * 10 + (text_[pos_] - '0');
        ++pos_;
      }
      return v;
    }
    if (is_ident_start(c)) {
      std::size_t start = pos_;
      while (pos_ < text_.size() && is_ident_char(text_[pos_])) ++pos_;
      std::string name(text_.substr(start, pos_ - start));
      auto it = symbols_.find(name);
      if (it == symbols_.end()) throw AsmError(line_, "undefined symbol '" + name + "'");
      return it->second;
    }
    throw AsmError(line_, "malformed expression: '" + std::string(text_) + "'");
  }

  std::string_view text_;
  const std::map<std::string, int64_t>& symbols_;
  int line_;
  std::size_t pos_ = 0;
};

// --- statement model ----------------------------------------------------

enum class Section { kText, kData };

struct Stmt {
  int line = 0;
  Section section = Section::kText;
  int64_t address = 0;  // balanced address assigned in pass 1
  std::string head;     // upper-cased mnemonic or directive
  std::vector<std::string> operands;
};

int parse_register(std::string_view tok, int line) {
  std::string u = upper(trim(tok));
  if (u.size() == 2 && u[0] == 'T' && u[1] >= '0' && u[1] <= '8') return u[1] - '0';
  throw AsmError(line, "expected register T0..T8, got '" + std::string(tok) + "'");
}

Trit parse_bcond(std::string_view tok, int line) {
  std::string u = std::string(trim(tok));
  if (u == "+" || u == "+1" || u == "1" || u == "P" || u == "p") return ternary::kTritP;
  if (u == "0" || u == "Z" || u == "z") return ternary::kTritZ;
  if (u == "-" || u == "-1" || u == "N" || u == "n") return ternary::kTritN;
  throw AsmError(line, "expected branch condition -,0,+ got '" + std::string(tok) + "'");
}

/// True if `tok` should be read as a symbol address (branch targets): a bare
/// identifier rather than a numeric/parenthesised offset expression.
bool is_bare_identifier(std::string_view tok) {
  tok = trim(tok);
  if (tok.empty() || !is_ident_start(tok.front())) return false;
  for (char c : tok) {
    if (!is_ident_char(c)) return false;
  }
  return true;
}

class Assembler {
 public:
  Program run(std::string_view source) {
    parse_lines(source);
    layout();
    emit();
    return std::move(program_);
  }

 private:
  // Pass 0: split into labelled statements.
  void parse_lines(std::string_view source) {
    int line_no = 0;
    std::size_t pos = 0;
    while (pos <= source.size()) {
      std::size_t eol = source.find('\n', pos);
      std::string_view line = source.substr(pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
      pos = eol == std::string_view::npos ? source.size() + 1 : eol + 1;
      ++line_no;

      // Strip comments.
      for (std::size_t i = 0; i < line.size(); ++i) {
        if (line[i] == ';' || line[i] == '#') {
          line = line.substr(0, i);
          break;
        }
      }
      line = trim(line);
      // Peel off labels.
      while (!line.empty()) {
        std::size_t colon = line.find(':');
        if (colon == std::string_view::npos) break;
        std::string_view label = trim(line.substr(0, colon));
        if (!is_bare_identifier(label)) {
          throw AsmError(line_no, "bad label '" + std::string(label) + "'");
        }
        pending_labels_.emplace_back(line_no, std::string(label));
        line = trim(line.substr(colon + 1));
      }
      if (line.empty()) continue;

      Stmt st;
      st.line = line_no;
      std::size_t sp = 0;
      while (sp < line.size() && !std::isspace(static_cast<unsigned char>(line[sp]))) ++sp;
      st.head = upper(line.substr(0, sp));
      for (std::string_view rest = trim(line.substr(sp)); std::string_view tok : split_operands(rest)) {
        st.operands.emplace_back(tok);
      }
      attach_labels(st);
      stmts_.push_back(std::move(st));
    }
    if (!pending_labels_.empty()) {
      // Labels at end of file bind to the end address; synthesise an empty
      // marker statement.
      Stmt st;
      st.line = pending_labels_.front().first;
      st.head = ".END_LABELS";
      attach_labels(st);
      stmts_.push_back(std::move(st));
    }
  }

  void attach_labels(Stmt& st) {
    for (auto& [line, name] : pending_labels_) labels_for_stmt_[stmts_.size()].emplace_back(line, name);
    pending_labels_.clear();
    (void)st;
  }

  /// Words a statement will occupy in its section.
  int64_t size_of(const Stmt& st) {
    if (st.head.empty() || st.head == ".END_LABELS") return 0;
    if (st.head[0] == '.') {
      if (st.head == ".WORD") return static_cast<int64_t>(st.operands.size());
      if (st.head == ".ZERO") {
        ExprEval ev(st.operands.at(0), equs_, st.line);
        int64_t n = ev.evaluate();
        if (n < 0) throw AsmError(st.line, ".zero count must be non-negative");
        return n;
      }
      return 0;
    }
    if (st.head == "LIMM") return 2;
    return 1;  // real instruction, NOP, HALT
  }

  // Pass 1: assign addresses, bind labels, record .equ.
  void layout() {
    int64_t text_addr = 0;
    int64_t data_addr = 0;
    Section section = Section::kText;
    bool code_started = false;
    for (std::size_t i = 0; i < stmts_.size(); ++i) {
      Stmt& st = stmts_[i];
      st.section = section;
      int64_t& addr = section == Section::kText ? text_addr : data_addr;

      if (st.head == ".TEXT") {
        section = Section::kText;
        continue;
      }
      if (st.head == ".DATA") {
        section = Section::kData;
        continue;
      }
      if (st.head == ".ORG") {
        if (st.operands.size() != 1) throw AsmError(st.line, ".org takes one operand");
        ExprEval ev(st.operands[0], equs_, st.line);
        if (section == Section::kText) {
          // The code image is contiguous; .org may only set the entry point
          // before the first instruction.
          if (code_started) throw AsmError(st.line, ".org after code is not supported");
          text_addr = ev.evaluate();
          program_.entry = text_addr;
        } else {
          data_addr = ev.evaluate();
        }
        continue;
      }
      if (st.head == ".EQU") {
        if (st.operands.size() != 2) throw AsmError(st.line, ".equ takes NAME, value");
        std::string name(trim(st.operands[0]));
        if (!is_bare_identifier(name)) throw AsmError(st.line, "bad .equ name '" + name + "'");
        ExprEval ev(st.operands[1], equs_, st.line);
        define_symbol(st.line, name, ev.evaluate(), /*is_equ=*/true);
        continue;
      }

      // Bind labels pending on this statement to the current address.
      auto it = labels_for_stmt_.find(i);
      if (it != labels_for_stmt_.end()) {
        for (auto& [line, name] : it->second) define_symbol(line, name, addr, false);
      }
      st.address = addr;
      const int64_t words = size_of(st);
      if (section == Section::kText && words > 0) code_started = true;
      addr += words;
    }
  }

  void define_symbol(int line, const std::string& name, int64_t value, bool is_equ) {
    if (program_.symbols.contains(name)) {
      throw AsmError(line, "duplicate symbol '" + name + "'");
    }
    program_.symbols[name] = value;
    if (is_equ) equs_[name] = value;
  }

  // Pass 2: encode.
  void emit() {
    for (const Stmt& st : stmts_) {
      if (st.head.empty() || st.head == ".END_LABELS") continue;
      if (st.head[0] == '.') {
        emit_directive(st);
        continue;
      }
      if (st.section == Section::kData) {
        throw AsmError(st.line, "instructions are not allowed in .data");
      }
      emit_instruction(st);
    }
  }

  void emit_directive(const Stmt& st) {
    if (st.head == ".WORD") {
      if (st.section != Section::kData) throw AsmError(st.line, ".word requires .data");
      int64_t addr = st.address;
      for (const std::string& opnd : st.operands) {
        ExprEval ev(opnd, program_.symbols, st.line);
        int64_t v = ev.evaluate();
        if (v < Word9::kMinValue || v > Word9::kMaxValue) {
          throw AsmError(st.line, ".word value out of 9-trit range: " + std::to_string(v));
        }
        program_.data.push_back(DataWord{addr++, Word9::from_int(v)});
      }
      return;
    }
    if (st.head == ".ZERO") {
      if (st.section != Section::kData) throw AsmError(st.line, ".zero requires .data");
      ExprEval ev(st.operands.at(0), equs_, st.line);
      int64_t n = ev.evaluate();
      for (int64_t k = 0; k < n; ++k) {
        program_.data.push_back(DataWord{st.address + k, Word9{}});
      }
      return;
    }
    if (st.head == ".TEXT" || st.head == ".DATA" || st.head == ".ORG" || st.head == ".EQU") return;
    throw AsmError(st.line, "unknown directive '" + st.head + "'");
  }

  int64_t eval(const std::string& text, int line) {
    ExprEval ev(text, program_.symbols, line);
    return ev.evaluate();
  }

  /// Branch/jump target: bare identifiers are absolute addresses (the
  /// assembler forms the PC-relative offset); anything else is a raw
  /// offset expression.
  int64_t target_offset(const std::string& tok, int64_t pc, int line) {
    if (is_bare_identifier(tok)) {
      auto it = program_.symbols.find(std::string(trim(tok)));
      if (it == program_.symbols.end()) throw AsmError(line, "undefined label '" + tok + "'");
      return it->second - pc;
    }
    return eval(tok, line);
  }

  void push_code(const Stmt& st, const Instruction& inst) {
    try {
      program_.image.push_back(encode(inst));
    } catch (const EncodeError& e) {
      throw AsmError(st.line, e.what());
    }
    program_.code.push_back(inst);
  }

  void require_operands(const Stmt& st, std::size_t n) {
    if (st.operands.size() != n) {
      std::ostringstream os;
      os << st.head << " expects " << n << " operand(s), got " << st.operands.size();
      throw AsmError(st.line, os.str());
    }
  }

  void emit_instruction(const Stmt& st) {
    // Pseudo-instructions first.
    if (st.head == "NOP") {
      require_operands(st, 0);
      push_code(st, Instruction::nop());
      return;
    }
    if (st.head == "HALT") {
      require_operands(st, 0);
      push_code(st, Instruction::halt());
      return;
    }
    if (st.head == "LIMM") {
      require_operands(st, 2);
      int ta = parse_register(st.operands[0], st.line);
      int64_t v = eval(st.operands[1], st.line);
      if (v < Word9::kMinValue || v > Word9::kMaxValue) {
        throw AsmError(st.line, "LIMM value out of 9-trit range: " + std::to_string(v));
      }
      Word9 w = Word9::from_int(v);
      const int hi = static_cast<int>(w.slice<4>(5).to_int());
      const int lo = static_cast<int>(w.slice<5>(0).to_int());
      push_code(st, Instruction{Opcode::kLui, ta, 0, ternary::kTritZ, hi});
      push_code(st, Instruction{Opcode::kLi, ta, 0, ternary::kTritZ, lo});
      return;
    }

    Opcode op;
    try {
      op = opcode_from_mnemonic(st.head);
    } catch (const std::invalid_argument& e) {
      throw AsmError(st.line, e.what());
    }
    const OpcodeSpec& s = spec(op);
    Instruction inst;
    inst.op = op;
    switch (s.format) {
      case Format::kRBinary:
      case Format::kRUnary:
        require_operands(st, 2);
        inst.ta = parse_register(st.operands[0], st.line);
        inst.tb = parse_register(st.operands[1], st.line);
        break;
      case Format::kImm3:
      case Format::kShiftImm:
      case Format::kLui:
      case Format::kLi:
        require_operands(st, 2);
        inst.ta = parse_register(st.operands[0], st.line);
        inst.imm = static_cast<int>(eval(st.operands[1], st.line));
        break;
      case Format::kBranch:
        require_operands(st, 3);
        inst.tb = parse_register(st.operands[0], st.line);
        inst.bcond = parse_bcond(st.operands[1], st.line);
        inst.imm = static_cast<int>(target_offset(st.operands[2], st.address, st.line));
        break;
      case Format::kJal:
        require_operands(st, 2);
        inst.ta = parse_register(st.operands[0], st.line);
        inst.imm = static_cast<int>(target_offset(st.operands[1], st.address, st.line));
        break;
      case Format::kJalr:
        require_operands(st, 3);
        inst.ta = parse_register(st.operands[0], st.line);
        inst.tb = parse_register(st.operands[1], st.line);
        inst.imm = static_cast<int>(eval(st.operands[2], st.line));
        break;
      case Format::kMem: {
        // Either `Ta, imm(Tb)` or `Ta, Tb, imm`.
        inst.ta = parse_register(st.operands.at(0), st.line);
        if (st.operands.size() == 2) {
          std::string_view rest = st.operands[1];
          std::size_t open = rest.find('(');
          std::size_t close = rest.rfind(')');
          if (open == std::string_view::npos || close == std::string_view::npos || close < open) {
            throw AsmError(st.line, "expected imm(Tb) memory operand");
          }
          const auto imm_view = trim(rest.substr(0, open));
          const std::string imm_text(imm_view.empty() ? std::string_view("0") : imm_view);
          inst.imm = static_cast<int>(eval(imm_text, st.line));
          inst.tb = parse_register(rest.substr(open + 1, close - open - 1), st.line);
        } else {
          require_operands(st, 3);
          inst.tb = parse_register(st.operands[1], st.line);
          inst.imm = static_cast<int>(eval(st.operands[2], st.line));
        }
        break;
      }
    }
    push_code(st, inst);
  }

  Program program_;
  std::vector<Stmt> stmts_;
  std::map<std::string, int64_t> equs_;
  std::vector<std::pair<int, std::string>> pending_labels_;
  std::map<std::size_t, std::vector<std::pair<int, std::string>>> labels_for_stmt_;
};

}  // namespace

Program assemble(std::string_view source) {
  Assembler assembler;
  return assembler.run(source);
}

}  // namespace art9::isa
