#include "isa/encoding.hpp"

#include <string>

namespace art9::isa {

using ternary::Trit;
using ternary::Word9;

namespace {

// --- field packing helpers (levels = unsigned digit domain) -------------

void put_level(Word9& w, std::size_t i, int level) { w.set(i, Trit(level - 1)); }

int get_level(const Word9& w, std::size_t i) { return w[i].level(); }

/// 2-trit unsigned register index at [lsb+1 : lsb].
void put_ureg(Word9& w, std::size_t lsb, int reg) {
  if (reg < 0 || reg >= kNumRegisters) {
    throw EncodeError("register index out of range: T" + std::to_string(reg));
  }
  put_level(w, lsb + 1, reg / 3);
  put_level(w, lsb, reg % 3);
}

int get_ureg(const Word9& w, std::size_t lsb) {
  return get_level(w, lsb + 1) * 3 + get_level(w, lsb);
}

/// Balanced immediate of `width` trits at [lsb+width-1 : lsb].
void put_simm(Word9& w, std::size_t lsb, std::size_t width, int value, const OpcodeSpec& s) {
  if (value < s.imm_min || value > s.imm_max) {
    throw EncodeError(std::string(s.mnemonic) + ": immediate " + std::to_string(value) +
                      " outside [" + std::to_string(s.imm_min) + ", " +
                      std::to_string(s.imm_max) + "]");
  }
  int v = value;
  for (std::size_t k = 0; k < width; ++k) {
    int r = v % 3;
    v /= 3;
    if (r > 1) {
      r -= 3;
      ++v;
    } else if (r < -1) {
      r += 3;
      --v;
    }
    w.set(lsb + k, Trit(r));
  }
}

int get_simm(const Word9& w, std::size_t lsb, std::size_t width) {
  int v = 0;
  for (std::size_t k = width; k-- > 0;) v = v * 3 + w[lsb + k].value();
  return v;
}

/// Unsigned 2-trit field (shift amounts).
void put_ushift(Word9& w, std::size_t lsb, int value, const OpcodeSpec& s) {
  if (value < s.imm_min || value > s.imm_max) {
    throw EncodeError(std::string(s.mnemonic) + ": shift amount " + std::to_string(value) +
                      " outside [0, 8]");
  }
  put_level(w, lsb + 1, value / 3);
  put_level(w, lsb, value % 3);
}

constexpr int kIshortAndi = 0;
constexpr int kIshortAddi = 1;
constexpr int kIshortSri = 2;
constexpr int kIshortSli = 3;

}  // namespace

Word9 encode(const Instruction& inst) {
  const OpcodeSpec& s = spec(inst.op);
  Word9 w;  // all-zero trits == all levels 1; every field is overwritten below.
  auto major = [&](int a, int b) {
    put_level(w, 8, a);
    put_level(w, 7, b);
  };
  switch (inst.op) {
    case Opcode::kMv:
    case Opcode::kPti:
    case Opcode::kNti:
    case Opcode::kSti:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kSr:
    case Opcode::kSl:
    case Opcode::kComp: {
      major(0, 0);
      const int func = static_cast<int>(inst.op);  // 0..11 by enum order
      put_level(w, 6, func / 9);
      put_level(w, 5, (func % 9) / 3);
      put_level(w, 4, func % 3);
      put_ureg(w, 2, inst.ta);
      put_ureg(w, 0, inst.tb);
      break;
    }
    case Opcode::kLui:
      major(0, 0);
      put_level(w, 6, 2);
      put_ureg(w, 4, inst.ta);
      put_simm(w, 0, 4, inst.imm, s);
      break;
    case Opcode::kAndi:
    case Opcode::kAddi:
    case Opcode::kSri:
    case Opcode::kSli: {
      major(0, 1);
      int func = 0;
      switch (inst.op) {
        case Opcode::kAndi: func = kIshortAndi; break;
        case Opcode::kAddi: func = kIshortAddi; break;
        case Opcode::kSri: func = kIshortSri; break;
        default: func = kIshortSli; break;
      }
      put_level(w, 6, func / 3);
      put_level(w, 5, func % 3);
      put_ureg(w, 3, inst.ta);
      if (s.format == Format::kShiftImm) {
        put_level(w, 2, 1);  // zero pad trit
        put_ushift(w, 0, inst.imm, s);
      } else {
        put_simm(w, 0, 3, inst.imm, s);
      }
      break;
    }
    case Opcode::kLi:
      major(0, 2);
      put_ureg(w, 5, inst.ta);
      put_simm(w, 0, 5, inst.imm, s);
      break;
    case Opcode::kJal:
      major(1, 0);
      put_ureg(w, 5, inst.ta);
      put_simm(w, 0, 5, inst.imm, s);
      break;
    case Opcode::kJalr:
      major(1, 1);
      put_ureg(w, 5, inst.ta);
      put_ureg(w, 3, inst.tb);
      put_simm(w, 0, 3, inst.imm, s);
      break;
    case Opcode::kBeq:
    case Opcode::kBne:
      if (inst.op == Opcode::kBeq) {
        major(1, 2);
      } else {
        major(2, 0);
      }
      put_ureg(w, 5, inst.tb);
      w.set(4, inst.bcond);
      put_simm(w, 0, 4, inst.imm, s);
      break;
    case Opcode::kLoad:
    case Opcode::kStore:
      if (inst.op == Opcode::kLoad) {
        major(2, 1);
      } else {
        major(2, 2);
      }
      put_ureg(w, 5, inst.ta);
      put_ureg(w, 3, inst.tb);
      put_simm(w, 0, 3, inst.imm, s);
      break;
  }
  return w;
}

Instruction decode(const Word9& w) {
  const int m8 = get_level(w, 8);
  const int m7 = get_level(w, 7);
  Instruction out;
  if (m8 == 0 && m7 == 0) {
    const int t6 = get_level(w, 6);
    if (t6 <= 1) {
      const int func = t6 * 9 + get_level(w, 5) * 3 + get_level(w, 4);
      if (func > 11) throw DecodeError("undefined R-type func " + std::to_string(func));
      out.op = static_cast<Opcode>(func);
      out.ta = get_ureg(w, 2);
      out.tb = get_ureg(w, 0);
      return out;
    }
    out.op = Opcode::kLui;
    out.ta = get_ureg(w, 4);
    out.imm = get_simm(w, 0, 4);
    return out;
  }
  if (m8 == 0 && m7 == 1) {
    const int func = get_level(w, 6) * 3 + get_level(w, 5);
    out.ta = get_ureg(w, 3);
    switch (func) {
      case kIshortAndi:
        out.op = Opcode::kAndi;
        out.imm = get_simm(w, 0, 3);
        return out;
      case kIshortAddi:
        out.op = Opcode::kAddi;
        out.imm = get_simm(w, 0, 3);
        return out;
      case kIshortSri:
      case kIshortSli:
        if (get_level(w, 2) != 1) {
          throw DecodeError("SRI/SLI pad trit must be zero");
        }
        out.op = func == kIshortSri ? Opcode::kSri : Opcode::kSli;
        out.imm = get_level(w, 1) * 3 + get_level(w, 0);
        return out;
      default:
        throw DecodeError("undefined I-short selector " + std::to_string(func));
    }
  }
  if (m8 == 0 && m7 == 2) {
    out.op = Opcode::kLi;
    out.ta = get_ureg(w, 5);
    out.imm = get_simm(w, 0, 5);
    return out;
  }
  if (m8 == 1 && m7 == 0) {
    out.op = Opcode::kJal;
    out.ta = get_ureg(w, 5);
    out.imm = get_simm(w, 0, 5);
    return out;
  }
  if (m8 == 1 && m7 == 1) {
    out.op = Opcode::kJalr;
    out.ta = get_ureg(w, 5);
    out.tb = get_ureg(w, 3);
    out.imm = get_simm(w, 0, 3);
    return out;
  }
  if ((m8 == 1 && m7 == 2) || (m8 == 2 && m7 == 0)) {
    out.op = (m8 == 1) ? Opcode::kBeq : Opcode::kBne;
    out.tb = get_ureg(w, 5);
    out.bcond = w[4];
    out.imm = get_simm(w, 0, 4);
    return out;
  }
  // (2,1) LOAD and (2,2) STORE.
  out.op = (m7 == 1) ? Opcode::kLoad : Opcode::kStore;
  out.ta = get_ureg(w, 5);
  out.tb = get_ureg(w, 3);
  out.imm = get_simm(w, 0, 3);
  return out;
}

std::optional<Instruction> try_decode(const Word9& w) noexcept {
  try {
    return decode(w);
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

}  // namespace art9::isa
