// 9-trit instruction encoding of the ART-9 ISA.
//
// The paper fixes the instruction *formats* (Table I) but not the trit
// layout; this file defines the layout used throughout this repository.
// Opcode/selector fields and register indices live in the unsigned digit
// domain (levels 0..2 per trit); immediates are balanced (signed).
//
//   trit:        t8 t7 | t6 t5 t4 t3 t2 t1 t0
//   major (t8,t7):
//     (0,0) t6 in {0,1} : R      func=(t6,t5,t4)u  Ta=(t3,t2)  Tb=(t1,t0)
//     (0,0) t6 == 2     : LUI    Ta=(t5,t4)        imm4=t3..t0
//     (0,1)             : Ishort func=(t6,t5)u     Ta=(t4,t3)
//                           ANDI/ADDI: imm3 = t2..t0 (balanced)
//                           SRI/SLI  : t2 = 0, shamt = (t1,t0) unsigned
//     (0,2)             : LI     Ta=(t6,t5)        imm5=t4..t0
//     (1,0)             : JAL    Ta=(t6,t5)        imm5=t4..t0
//     (1,1)             : JALR   Ta=(t6,t5)  Tb=(t4,t3)  imm3=t2..t0
//     (1,2)             : BEQ    Tb=(t6,t5)  B=t4        imm4=t3..t0
//     (2,0)             : BNE    Tb=(t6,t5)  B=t4        imm4=t3..t0
//     (2,1)             : LOAD   Ta=(t6,t5)  Tb=(t4,t3)  imm3=t2..t0
//     (2,2)             : STORE  Ta=(t6,t5)  Tb=(t4,t3)  imm3=t2..t0
//
// R-type func values (unsigned 0..11, t6 restricted to {0,1}):
//   0 MV, 1 PTI, 2 NTI, 3 STI, 4 AND, 5 OR, 6 XOR, 7 ADD, 8 SUB,
//   9 SR, 10 SL, 11 COMP.
#pragma once

#include <optional>
#include <stdexcept>

#include "isa/instruction.hpp"
#include "ternary/word.hpp"

namespace art9::isa {

/// Raised by `decode` on patterns outside the defined encoding space.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Raised by `encode` when operands violate the opcode's field ranges.
class EncodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Encodes one instruction into its 9-trit machine word.
/// Throws EncodeError on out-of-range register or immediate fields.
[[nodiscard]] ternary::Word9 encode(const Instruction& inst);

/// Decodes one machine word.  Throws DecodeError on invalid patterns
/// (undefined R func values, undefined I-short selectors, non-zero pad
/// trit of SRI/SLI).
[[nodiscard]] Instruction decode(const ternary::Word9& word);

/// Non-throwing decode.
[[nodiscard]] std::optional<Instruction> try_decode(const ternary::Word9& word) noexcept;

/// True iff `word` is a defined ART-9 encoding.
[[nodiscard]] inline bool is_valid_encoding(const ternary::Word9& word) noexcept {
  return try_decode(word).has_value();
}

}  // namespace art9::isa
