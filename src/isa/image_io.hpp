// Program image serialisation — the ".t9" format.
//
// A portable, human-auditable container for assembled ART-9 programs:
// the TIM image as raw trit strings, the TDM initialisation, the symbol
// table and the entry point.  Produced by the assembler / translator CLI
// tools and loaded by the simulator CLI, so binaries can move between
// machines (or be checked into test fixtures) without re-assembling.
//
// Format (line oriented, '#' comments, sections in any order):
//
//   .t9 1                 header + version
//   entry <balanced-addr>
//   code <addr> <9 trit chars MST-first>     (one word per line)
//   data <addr> <9 trit chars>
//   symbol <name> <balanced-addr>
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "isa/program.hpp"

namespace art9::isa {

class ImageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Renders `program` in .t9 form.
[[nodiscard]] std::string save_image(const Program& program);
void save_image(const Program& program, std::ostream& os);

/// Parses a .t9 image.  Decodes every code word (throws ImageError on
/// invalid encodings, bad trit characters, or non-contiguous code).
[[nodiscard]] Program load_image(const std::string& text);
[[nodiscard]] Program load_image(std::istream& is);

/// File helpers (throw ImageError on I/O failure).
void write_image_file(const Program& program, const std::string& path);
[[nodiscard]] Program read_image_file(const std::string& path);

}  // namespace art9::isa
