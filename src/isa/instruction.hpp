// The ART-9 instruction set (paper Table I): 24 ternary instructions over
// four formats (R, I, B, M), 9-trit fixed-length encoding, nine
// general-purpose ternary registers T0..T8 addressed by 2-trit unsigned
// indices.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "ternary/trit.hpp"
#include "ternary/word.hpp"

namespace art9::isa {

/// Number of general-purpose ternary registers (TRF entries).
inline constexpr int kNumRegisters = 9;

/// All 24 ART-9 opcodes, in Table I order.
enum class Opcode : uint8_t {
  // R-type: logical / arithmetic on TRF operands.
  kMv,
  kPti,
  kNti,
  kSti,
  kAnd,
  kOr,
  kXor,
  kAdd,
  kSub,
  kSr,
  kSl,
  kComp,
  // I-type: immediate forms.
  kAndi,
  kAddi,
  kSri,
  kSli,
  kLui,
  kLi,
  // B-type: branches and jump-and-links.
  kBeq,
  kBne,
  kJal,
  kJalr,
  // M-type: memory access.
  kLoad,
  kStore,
};

inline constexpr int kNumOpcodes = 24;

/// Operand shape of an instruction (finer-grained than the paper's four
/// letter classes, because encoding/hazard logic needs the exact fields).
enum class Format : uint8_t {
  kRBinary,  // op Ta, Tb      : reads Ta & Tb, writes Ta (AND..COMP)
  kRUnary,   // op Ta, Tb      : reads Tb only, writes Ta (MV/PTI/NTI/STI)
  kImm3,     // op Ta, imm3    : reads & writes Ta (ANDI/ADDI, balanced imm)
  kShiftImm, // op Ta, sh      : reads & writes Ta (SRI/SLI, unsigned 0..8)
  kLui,      // LUI Ta, imm4   : writes Ta = {imm[3:0], 00000}
  kLi,       // LI  Ta, imm5   : writes Ta = {Ta[8:5], imm[4:0]}
  kBranch,   // op Tb, B, imm4 : reads Tb[0], PC-relative offset
  kJal,      // JAL Ta, imm5   : writes Ta = PC+1, PC += imm
  kJalr,     // JALR Ta,Tb,imm3: writes Ta = PC+1, PC = Tb + imm
  kMem,      // LOAD/STORE Ta, imm3(Tb)
};

/// One decoded ART-9 instruction.
///
/// `imm` stores the *balanced* immediate value for every format except
/// kShiftImm, where it stores the unsigned shift amount 0..8 (shift
/// amounts, like register indices, live in the paper's unsigned domain).
struct Instruction {
  Opcode op = Opcode::kAddi;
  int ta = 0;                       // Ta field (0..8)
  int tb = 0;                       // Tb field (0..8)
  ternary::Trit bcond;              // B operand of BEQ/BNE
  int imm = 0;

  friend bool operator==(const Instruction&, const Instruction&) = default;

  /// Canonical NOP: ADDI T0, 0 (paper §IV-B — no dedicated NOP encoding).
  static Instruction nop() { return Instruction{Opcode::kAddi, 0, 0, ternary::kTritZ, 0}; }

  /// Canonical HALT convention: `JAL T0, 0` jumps to itself; simulators
  /// stop when they execute it.  (The paper defines no halt; a
  /// self-branch is the usual bare-metal idle idiom.)
  static Instruction halt() { return Instruction{Opcode::kJal, 0, 0, ternary::kTritZ, 0}; }
};

/// Static description of one opcode.
struct OpcodeSpec {
  std::string_view mnemonic;
  Format format;
  // Immediate range (balanced value, or unsigned for kShiftImm).
  int imm_min = 0;
  int imm_max = 0;
  // Register usage for hazard detection / liveness.
  bool reads_ta = false;
  bool reads_tb = false;
  bool writes_ta = false;
  bool is_branch = false;  // conditional branch (BEQ/BNE)
  bool is_jump = false;    // JAL/JALR
  bool is_load = false;
  bool is_store = false;
};

/// Lookup of the static spec for `op`.
[[nodiscard]] const OpcodeSpec& spec(Opcode op);

/// Mnemonic (upper-case, as in Table I).
[[nodiscard]] std::string_view mnemonic(Opcode op);

/// Reverse lookup; throws std::invalid_argument for unknown mnemonics.
/// Case-insensitive.
[[nodiscard]] Opcode opcode_from_mnemonic(std::string_view name);

/// True if `op` may redirect the PC (branch or jump).
[[nodiscard]] inline bool changes_control_flow(Opcode op) {
  const OpcodeSpec& s = spec(op);
  return s.is_branch || s.is_jump;
}

/// Human-readable one-line rendering, e.g. "ADD T1, T2" / "BEQ T3, +, -5".
[[nodiscard]] std::string to_string(const Instruction& inst);

std::ostream& operator<<(std::ostream& os, const Instruction& inst);

/// All opcodes, for sweep tests.
[[nodiscard]] const std::array<Opcode, kNumOpcodes>& all_opcodes();

}  // namespace art9::isa
