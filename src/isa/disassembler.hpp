// Disassembler: machine words back to assembly text.
#pragma once

#include <string>
#include <vector>

#include "isa/program.hpp"

namespace art9::isa {

/// Renders one word; invalid encodings render as ".invalid <trits>".
[[nodiscard]] std::string disassemble_word(const ternary::Word9& word);

/// Renders a whole program listing with addresses and raw trits, one
/// instruction per line (useful for debugging translated benchmarks).
[[nodiscard]] std::string disassemble(const Program& program);

}  // namespace art9::isa
