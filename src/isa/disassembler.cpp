#include "isa/disassembler.hpp"

#include <iomanip>
#include <sstream>

#include "isa/encoding.hpp"

namespace art9::isa {

std::string disassemble_word(const ternary::Word9& word) {
  if (auto inst = try_decode(word)) return to_string(*inst);
  return ".invalid " + word.to_string();
}

std::string disassemble(const Program& program) {
  std::ostringstream os;
  for (std::size_t i = 0; i < program.image.size(); ++i) {
    const int64_t addr = program.entry + static_cast<int64_t>(i);
    // Annotate addresses that carry labels.
    for (const auto& [name, value] : program.symbols) {
      if (value == addr) os << name << ":\n";
    }
    os << std::setw(6) << addr << "  " << program.image[i].to_string() << "  "
       << disassemble_word(program.image[i]) << '\n';
  }
  return os.str();
}

}  // namespace art9::isa
