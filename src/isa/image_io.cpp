#include "isa/image_io.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "isa/encoding.hpp"

namespace art9::isa {

using ternary::Word9;

std::string save_image(const Program& program) {
  std::ostringstream os;
  save_image(program, os);
  return os.str();
}

void save_image(const Program& program, std::ostream& os) {
  os << ".t9 1\n";
  os << "entry " << program.entry << "\n";
  for (std::size_t i = 0; i < program.image.size(); ++i) {
    os << "code " << program.entry + static_cast<int64_t>(i) << ' '
       << program.image[i].to_string() << "\n";
  }
  for (const DataWord& d : program.data) {
    os << "data " << d.address << ' ' << d.value.to_string() << "\n";
  }
  for (const auto& [name, value] : program.symbols) {
    os << "symbol " << name << ' ' << value << "\n";
  }
}

Program load_image(const std::string& text) {
  std::istringstream is(text);
  return load_image(is);
}

Program load_image(std::istream& is) {
  std::string line;
  int line_no = 0;
  bool header_seen = false;
  std::map<int64_t, Word9> code_words;
  Program program;
  auto fail = [&](const std::string& message) {
    throw ImageError("line " + std::to_string(line_no) + ": " + message);
  };

  while (std::getline(is, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword)) continue;

    if (keyword == ".t9") {
      int version = 0;
      if (!(ls >> version) || version != 1) fail("unsupported .t9 version");
      header_seen = true;
      continue;
    }
    if (!header_seen) fail("missing .t9 header");

    if (keyword == "entry") {
      if (!(ls >> program.entry)) fail("malformed entry");
    } else if (keyword == "code" || keyword == "data") {
      int64_t addr = 0;
      std::string trits;
      if (!(ls >> addr >> trits) || trits.size() != 9) fail("malformed " + keyword + " record");
      Word9 word;
      try {
        word = Word9::parse(trits);
      } catch (const std::invalid_argument& e) {
        fail(e.what());
      }
      if (keyword == "code") {
        if (!code_words.emplace(addr, word).second) fail("duplicate code address");
      } else {
        program.data.push_back(DataWord{addr, word});
      }
    } else if (keyword == "symbol") {
      std::string name;
      int64_t value = 0;
      if (!(ls >> name >> value)) fail("malformed symbol record");
      program.symbols[name] = value;
    } else {
      fail("unknown record '" + keyword + "'");
    }
  }
  if (!header_seen) throw ImageError("missing .t9 header");

  // Code must be contiguous from the entry point.
  if (!code_words.empty()) {
    int64_t expected = program.entry;
    for (const auto& [addr, word] : code_words) {
      if (addr != expected) {
        throw ImageError("code is not contiguous at address " + std::to_string(addr));
      }
      ++expected;
      program.image.push_back(word);
      try {
        program.code.push_back(decode(word));
      } catch (const DecodeError& e) {
        throw ImageError("invalid instruction at address " + std::to_string(addr) + ": " +
                         e.what());
      }
    }
  }
  return program;
}

void write_image_file(const Program& program, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw ImageError("cannot open '" + path + "' for writing");
  save_image(program, os);
  if (!os) throw ImageError("write to '" + path + "' failed");
}

Program read_image_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw ImageError("cannot open '" + path + "'");
  return load_image(is);
}

}  // namespace art9::isa
