#include "core/benchmarks.hpp"

#include <sstream>

namespace art9::core {

std::vector<int32_t> generated_values(uint64_t seed, std::size_t count, int32_t lo, int32_t hi) {
  std::vector<int32_t> out;
  out.reserve(count);
  uint64_t x = seed;
  const auto span = static_cast<uint64_t>(hi - lo + 1);
  for (std::size_t i = 0; i < count; ++i) {
    x = (x * 6364136223846793005ULL + 1442695040888963407ULL);
    out.push_back(lo + static_cast<int32_t>((x >> 33) % span));
  }
  return out;
}

std::string word_directive(const std::vector<int32_t>& values) {
  std::ostringstream os;
  os << ".word ";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) os << ", ";
    os << values[i];
  }
  return os.str();
}

std::vector<const BenchmarkSources*> all_benchmarks() {
  return {&bubble_sort(), &gemm(), &sobel(), &dhrystone()};
}

}  // namespace art9::core
