// Sobel filter benchmark (paper Table III column 3): 3x3 gradient
// magnitude (|Gx| + |Gy|) over a kSobelDim x kSobelDim word image.
#include <cstdlib>

#include "core/benchmarks.hpp"

namespace art9::core {

std::vector<int32_t> sobel_input() {
  return generated_values(31, static_cast<std::size_t>(kSobelDim) * kSobelDim, 0, 40);
}

std::vector<int32_t> sobel_expected() {
  const std::vector<int32_t> img = sobel_input();
  const int d = kSobelDim;
  auto at = [&](int r, int c) { return img[static_cast<std::size_t>(r * d + c)]; };
  std::vector<int32_t> out;
  out.reserve(static_cast<std::size_t>(d - 2) * static_cast<std::size_t>(d - 2));
  for (int r = 1; r < d - 1; ++r) {
    for (int c = 1; c < d - 1; ++c) {
      const int gx = (at(r - 1, c + 1) + 2 * at(r, c + 1) + at(r + 1, c + 1)) -
                     (at(r - 1, c - 1) + 2 * at(r, c - 1) + at(r + 1, c - 1));
      const int gy = (at(r + 1, c - 1) + 2 * at(r + 1, c) + at(r + 1, c + 1)) -
                     (at(r - 1, c - 1) + 2 * at(r - 1, c) + at(r - 1, c + 1));
      out.push_back(std::abs(gx) + std::abs(gy));
    }
  }
  return out;
}

const BenchmarkSources& sobel() {
  static const BenchmarkSources kSources = [] {
    BenchmarkSources s;
    s.name = "sobel";
    s.iterations = 1;

    const int stride = 4 * kSobelDim;                 // 48 bytes per row
    const int inner = kSobelDim - 2;                  // 10 interior columns
    const int last_row0 = (kSobelDim - 3) * stride;   // 432: final top-row base

    // Row-pointer walk keeps every memory offset within the 3-trit
    // immediate range of the ternary LOAD/STORE after translation.
    // Registers: s0/s1/s2 row pointers, s3 out pointer, t0 col,
    // t1 gx, t2 gy, t3/t4 scratch.
    s.rv32 = std::string(R"(
; Sobel |Gx|+|Gy| over a DIM x DIM image, writing the interior
.equ DIM, )") + std::to_string(kSobelDim) + R"(
.equ STRIDE, )" + std::to_string(stride) + R"(
.equ INNER, )" + std::to_string(inner) + R"(
.equ OUT, )" + std::to_string(kSobelOutAddr) + R"(
.equ ROWLIM, )" + std::to_string(last_row0 + stride) + R"(
.data
.org 0
img: )" + word_directive(sobel_input()) + R"(
.text
main:
    li   s0, 0            ; row r-1
    li   s1, STRIDE       ; row r
    li   s2, STRIDE+STRIDE ; row r+1
    li   s3, OUT
rowloop:
    li   t0, 0            ; col counter
    addi s0, s0, 4        ; start at column 1
    addi s1, s1, 4
    addi s2, s2, 4
colloop:
    ; gx = (right column) - (left column)
    lw   t1, 4(s0)
    lw   t3, 4(s1)
    add  t1, t1, t3
    add  t1, t1, t3
    lw   t3, 4(s2)
    add  t1, t1, t3
    lw   t3, -4(s0)
    sub  t1, t1, t3
    lw   t4, -4(s1)
    sub  t1, t1, t4
    sub  t1, t1, t4
    lw   t3, -4(s2)
    sub  t1, t1, t3
    ; gy = (bottom row) - (top row)
    lw   t2, -4(s2)
    lw   t3, 0(s2)
    add  t2, t2, t3
    add  t2, t2, t3
    lw   t3, 4(s2)
    add  t2, t2, t3
    lw   t3, -4(s0)
    sub  t2, t2, t3
    lw   t3, 0(s0)
    sub  t2, t2, t3
    sub  t2, t2, t3
    lw   t3, 4(s0)
    sub  t2, t2, t3
    ; |gx| + |gy|
    bge  t1, zero, gxpos
    sub  t1, zero, t1
gxpos:
    bge  t2, zero, gypos
    sub  t2, zero, t2
gypos:
    add  t1, t1, t2
    sw   t1, 0(s3)
    addi s0, s0, 4
    addi s1, s1, 4
    addi s2, s2, 4
    addi s3, s3, 4
    addi t0, t0, 1
    li   t3, INNER
    blt  t0, t3, colloop
    ; advance to the next row (pointers sit at column DIM-1)
    addi s0, s0, 4
    addi s1, s1, 4
    addi s2, s2, 4
    li   t3, ROWLIM
    blt  s0, t3, rowloop
    ebreak
)";

    // Thumb-1 port (r0/r1/r2 row pointers, r3 out, r4 gx, r5 gy,
    // r6 scratch, r7 col).
    s.thumb = std::string(R"(
.equ STRIDE, )") + std::to_string(stride) + R"(
.equ INNER, )" + std::to_string(inner) + R"(
main:
    movs r0, #0
    movs r1, #STRIDE
    movs r2, #STRIDE
    adds r2, #STRIDE
    movs r3, #150
    lsls r3, r3, #2       ; OUT = 600
rowloop:
    movs r7, #0
    adds r0, r0, #4
    adds r1, r1, #4
    adds r2, r2, #4
colloop:
    ldr  r4, [r0, #4]
    ldr  r6, [r1, #4]
    adds r4, r4, r6
    adds r4, r4, r6
    ldr  r6, [r2, #4]
    adds r4, r4, r6
    subs r0, r0, #4
    ldr  r6, [r0, #0]
    adds r0, r0, #4
    subs r4, r4, r6
    subs r1, r1, #4
    ldr  r6, [r1, #0]
    adds r1, r1, #4
    subs r4, r4, r6
    subs r4, r4, r6
    subs r2, r2, #4
    ldr  r6, [r2, #0]
    subs r4, r4, r6
    ldr  r5, [r2, #0]
    ldr  r6, [r2, #4]
    adds r2, r2, #4
    adds r5, r5, r6
    adds r5, r5, r6
    ldr  r6, [r2, #4]
    adds r5, r5, r6
    subs r0, r0, #4
    ldr  r6, [r0, #0]
    subs r5, r5, r6
    ldr  r6, [r0, #4]
    adds r0, r0, #4
    subs r5, r5, r6
    subs r5, r5, r6
    ldr  r6, [r0, #4]
    subs r5, r5, r6
    cmp  r4, #0
    bge  gxpos
    negs r4, r4
gxpos:
    cmp  r5, #0
    bge  gypos
    negs r5, r5
gypos:
    adds r4, r4, r5
    str  r4, [r3, #0]
    adds r0, r0, #4
    adds r1, r1, #4
    adds r2, r2, #4
    adds r3, r3, #4
    adds r7, r7, #1
    cmp  r7, #INNER
    blt  colloop
    adds r0, r0, #4
    adds r1, r1, #4
    adds r2, r2, #4
    movs r6, #120
    lsls r6, r6, #2       ; ROWLIM = 480
    cmp  r0, r6
    blt  rowloop
    nop
.data
img: )" + word_directive(sobel_input()) + "\n";
    return s;
  }();
  return kSources;
}

}  // namespace art9::core
