#include "core/progen.hpp"

#include <array>
#include <map>
#include <sstream>
#include <vector>

#include "isa/encoding.hpp"
#include "ternary/random.hpp"
#include "ternary/word.hpp"

namespace art9::core {

using isa::Instruction;
using isa::Opcode;
using ternary::kTritZ;
using ternary::Trit;
using ternary::Word9;

namespace {

// Portable bounded draw (see ternary/random.hpp) — generated programs must
// reproduce bit-identically from a seed on every standard library, because
// fuzz repros and differential-test failures are communicated as seeds.
int rand_int(std::mt19937_64& rng, int lo, int hi) {
  return static_cast<int>(ternary::random_in(rng, lo, hi));
}

Trit rand_trit(std::mt19937_64& rng) { return Trit(rand_int(rng, -1, 1)); }

}  // namespace

isa::Program generate_art9_program(std::mt19937_64& rng, const Art9GenOptions& options) {
  std::vector<Instruction> code;
  const int target = rand_int(rng, options.min_length, options.max_length);

  auto any_reg = [&] { return rand_int(rng, 0, 8); };

  // Straight-line data op avoiding writes to the registers in `avoid`.
  auto emit_data_op = [&](int avoid0, int avoid1) {
    int ta = any_reg();
    while (ta == avoid0 || ta == avoid1) ta = any_reg();
    const int tb = any_reg();
    switch (rand_int(rng, 0, 9)) {
      case 0:
        code.push_back({Opcode::kMv, ta, tb, kTritZ, 0});
        break;
      case 1:
        code.push_back({static_cast<Opcode>(rand_int(rng, 1, 3)), ta, tb, kTritZ, 0});  // inverters
        break;
      case 2:
        code.push_back({static_cast<Opcode>(rand_int(rng, 4, 11)), ta, tb, kTritZ, 0});  // R ops
        break;
      case 3:
        code.push_back({Opcode::kAddi, ta, 0, kTritZ, rand_int(rng, -13, 13)});
        break;
      case 4:
        code.push_back({Opcode::kAndi, ta, 0, kTritZ, rand_int(rng, -13, 13)});
        break;
      case 5:
        code.push_back({rand_int(rng, 0, 1) ? Opcode::kSri : Opcode::kSli, ta, 0, kTritZ,
                        rand_int(rng, 0, 8)});
        break;
      case 6:
        code.push_back({Opcode::kLui, ta, 0, kTritZ, rand_int(rng, -40, 40)});
        break;
      case 7:
        code.push_back({Opcode::kLi, ta, 0, kTritZ, rand_int(rng, -121, 121)});
        break;
      case 8:
        if (options.with_memory_ops) {
          code.push_back({Opcode::kLoad, ta, tb, kTritZ, rand_int(rng, -13, 13)});
        } else {
          code.push_back({Opcode::kAdd, ta, tb, kTritZ, 0});
        }
        break;
      default:
        if (options.with_memory_ops) {
          // STORE writes no register, so `avoid` is irrelevant.
          code.push_back({Opcode::kStore, any_reg(), tb, kTritZ, rand_int(rng, -13, 13)});
        } else {
          code.push_back({Opcode::kSub, ta, tb, kTritZ, 0});
        }
        break;
    }
  };

  while (static_cast<int>(code.size()) < target) {
    const int kind = rand_int(rng, 0, 9);
    if (kind == 0 && options.with_branches) {
      // Forward conditional branch over 1..4 instructions.
      const int skip = rand_int(rng, 1, 4);
      code.push_back({rand_int(rng, 0, 1) ? Opcode::kBeq : Opcode::kBne, 0, any_reg(),
                      rand_trit(rng), skip + 1});
      for (int i = 0; i < skip; ++i) emit_data_op(-1, -1);
    } else if (kind == 1 && options.with_branches) {
      // Forward JAL over 1..3 instructions.
      const int skip = rand_int(rng, 1, 3);
      code.push_back({Opcode::kJal, any_reg(), 0, kTritZ, skip + 1});
      for (int i = 0; i < skip; ++i) emit_data_op(-1, -1);
    } else if (kind == 2 && options.with_loops) {
      // Counted loop: Tc iterations in 3..6, Tz held at zero.
      int tc = any_reg();
      int tz = any_reg();
      while (tz == tc) tz = any_reg();
      int tt = any_reg();
      while (tt == tc || tt == tz) tt = any_reg();
      code.push_back({Opcode::kLui, tc, 0, kTritZ, 0});
      code.push_back({Opcode::kAddi, tc, 0, kTritZ, rand_int(rng, 3, 6)});
      code.push_back({Opcode::kLui, tz, 0, kTritZ, 0});
      const std::size_t body_start = code.size();
      const int body_len = rand_int(rng, 2, 5);
      for (int i = 0; i < body_len; ++i) emit_data_op(tc, tz);
      code.push_back({Opcode::kAddi, tc, 0, kTritZ, -1});
      code.push_back({Opcode::kMv, tt, tc, kTritZ, 0});
      code.push_back({Opcode::kComp, tt, tz, kTritZ, 0});
      const int back = -static_cast<int>(code.size() - body_start);
      code.push_back({Opcode::kBne, 0, tt, kTritZ, back});
    } else {
      emit_data_op(-1, -1);
    }
  }
  code.push_back(Instruction::halt());

  isa::Program program;
  program.entry = 0;
  program.code = code;
  for (const Instruction& inst : code) program.image.push_back(isa::encode(inst));
  // A little random initialised data so early LOADs see non-zero words.
  const int data_words = rand_int(rng, 0, 12);
  for (int i = 0; i < data_words; ++i) {
    program.data.push_back(isa::DataWord{
        rand_int(rng, -40, 40),
        Word9::from_int(rand_int(rng, -9841, 9841))});
  }
  return program;
}

// ---------------------------------------------------------------------------

std::string generate_rv32_source(std::mt19937_64& rng, const Rv32GenOptions& options) {
  static const std::array<const char*, 10> kPool = {"a0", "a1", "a2", "a3", "a4",
                                                    "t0", "t1", "t2", "s2", "s3"};
  const int nregs = std::min<int>(options.max_registers, static_cast<int>(kPool.size()));

  std::ostringstream os;
  os << "; generated rv32 program (translatable subset)\n.text\nmain:\n";

  // Shadow state keeps every value inside the 9-trit range by
  // construction; `boolean` marks registers holding 0/1 so that the
  // and/or/xor boolean contract is honoured.
  std::map<std::string, int32_t> shadow;
  std::map<std::string, bool> boolean;
  std::array<int32_t, 16> mem{};

  auto reg = [&] { return std::string(kPool[static_cast<std::size_t>(rand_int(rng, 0, nregs - 1))]); };
  auto emit_li = [&](const std::string& r, int32_t v) {
    os << "    li   " << r << ", " << v << "\n";
    shadow[r] = v;
    boolean[r] = v == 0 || v == 1;
  };

  // Initialise every register.
  for (int i = 0; i < nregs; ++i) emit_li(kPool[static_cast<std::size_t>(i)], rand_int(rng, -50, 50));

  const int target = rand_int(rng, options.min_length, options.max_length);
  int label_counter = 0;

  auto emit_straight_op = [&](bool tracked) {
    const std::string rd = reg();
    const std::string rs1 = reg();
    const std::string rs2 = reg();
    switch (rand_int(rng, 0, options.with_div ? 9 : 8)) {
      case 0: {
        const int imm = rand_int(rng, -300, 300);
        os << "    addi " << rd << ", " << rs1 << ", " << imm << "\n";
        if (tracked) {
          shadow[rd] = shadow[rs1] + imm;
          boolean[rd] = shadow[rd] == 0 || shadow[rd] == 1;
        }
        break;
      }
      case 1:
        os << "    add  " << rd << ", " << rs1 << ", " << rs2 << "\n";
        if (tracked) {
          shadow[rd] = shadow[rs1] + shadow[rs2];
          boolean[rd] = false;
        }
        break;
      case 2:
        os << "    sub  " << rd << ", " << rs1 << ", " << rs2 << "\n";
        if (tracked) {
          shadow[rd] = shadow[rs1] - shadow[rs2];
          boolean[rd] = false;
        }
        break;
      case 3:
        os << "    slt  " << rd << ", " << rs1 << ", " << rs2 << "\n";
        if (tracked) {
          shadow[rd] = shadow[rs1] < shadow[rs2] ? 1 : 0;
          boolean[rd] = true;
        }
        break;
      case 4: {
        const int sh = rand_int(rng, 1, 2);
        os << "    slli " << rd << ", " << rs1 << ", " << sh << "\n";
        if (tracked) {
          shadow[rd] = shadow[rs1] << sh;
          boolean[rd] = false;
        }
        break;
      }
      case 5:
        if (boolean[rs1] && boolean[rs2]) {
          static const std::array<const char*, 3> kBool = {"and", "or", "xor"};
          const char* op = kBool[static_cast<std::size_t>(rand_int(rng, 0, 2))];
          os << "    " << op << "  " << rd << ", " << rs1 << ", " << rs2 << "\n";
          if (tracked) {
            const int32_t a = shadow[rs1];
            const int32_t b = shadow[rs2];
            shadow[rd] = op[0] == 'a' ? (a & b) : (op[0] == 'o' ? (a | b) : (a ^ b));
            boolean[rd] = true;
          }
        } else {
          os << "    slt  " << rd << ", " << rs1 << ", " << rs2 << "\n";
          if (tracked) {
            shadow[rd] = shadow[rs1] < shadow[rs2] ? 1 : 0;
            boolean[rd] = true;
          }
        }
        break;
      case 6:
        if (options.with_memory_ops) {
          const int slot = rand_int(rng, 0, 15);
          os << "    sw   " << rs1 << ", " << slot * 4 << "(zero)\n";
          if (tracked) mem[static_cast<std::size_t>(slot)] = shadow[rs1];
        }
        break;
      case 7:
        if (options.with_memory_ops) {
          const int slot = rand_int(rng, 0, 15);
          os << "    lw   " << rd << ", " << slot * 4 << "(zero)\n";
          if (tracked) {
            shadow[rd] = mem[static_cast<std::size_t>(slot)];
            boolean[rd] = shadow[rd] == 0 || shadow[rd] == 1;
          }
        }
        break;
      case 8:
        if (options.with_mul) {
          const int64_t product =
              static_cast<int64_t>(shadow[rs1]) * static_cast<int64_t>(shadow[rs2]);
          if (product >= -8000 && product <= 8000) {
            os << "    mul  " << rd << ", " << rs1 << ", " << rs2 << "\n";
            if (tracked) {
              shadow[rd] = static_cast<int32_t>(product);
              boolean[rd] = false;
            }
          }
        }
        break;
      default:
        if (options.with_div) {
          const bool rem = rand_int(rng, 0, 1) == 1;
          os << "    " << (rem ? "rem " : "div ") << " " << rd << ", " << rs1 << ", " << rs2
             << "\n";
          if (tracked) {
            const int32_t a = shadow[rs1];
            const int32_t b = shadow[rs2];
            shadow[rd] = b == 0 ? (rem ? a : -1) : (rem ? a % b : a / b);
            boolean[rd] = shadow[rd] == 0 || shadow[rd] == 1;
          }
        }
        break;
    }
    // Rescale anything that drifted out of the 9-trit range.
    if (tracked) {
      for (int i = 0; i < nregs; ++i) {
        const std::string r = kPool[static_cast<std::size_t>(i)];
        if (shadow[r] < -8000 || shadow[r] > 8000) emit_li(r, rand_int(rng, -100, 100));
      }
    }
  };

  for (int n = 0; n < target; ++n) {
    if (rand_int(rng, 0, 6) == 0) {
      // Forward branch over a small skipped region.
      const std::string rs1 = reg();
      const std::string rs2 = reg();
      static const std::array<const char*, 4> kBr = {"beq", "bne", "blt", "bge"};
      const auto op = static_cast<std::size_t>(rand_int(rng, 0, 3));
      std::string label = std::to_string(label_counter++);
      label.insert(0, 1, 'L');
      os << "    " << kBr[op] << "  " << rs1 << ", " << rs2 << ", " << label << "\n";
      const int32_t a = shadow[rs1];
      const int32_t b = shadow[rs2];
      const bool taken = op == 0 ? a == b : op == 1 ? a != b : op == 2 ? a < b : a >= b;
      const int skipped = rand_int(rng, 1, 3);
      for (int i = 0; i < skipped; ++i) emit_straight_op(/*tracked=*/!taken);
      os << label << ":\n";
    } else {
      emit_straight_op(true);
    }
  }
  os << "    ebreak\n";
  return os.str();
}

}  // namespace art9::core
