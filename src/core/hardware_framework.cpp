#include "core/hardware_framework.hpp"

namespace art9::core {

EvaluationResult HardwareFramework::evaluate(const isa::Program& program,
                                             uint64_t iterations) const {
  EvaluationResult result;

  sim::PipelineSimulator simulator(program, pipeline_);
  result.sim = simulator.run();

  tech::DatapathOptions datapath_options;
  datapath_options.ex_forwarding = pipeline_.ex_forwarding;
  datapath_options.branch_in_id = pipeline_.branch_in_id;
  const tech::Art9Design design = tech::build_art9_design(datapath_options);

  tech::GateLevelAnalyzer analyzer;
  result.analysis = analyzer.analyze(design, technology_);

  const uint64_t cycles_per_iteration =
      iterations == 0 ? result.sim.cycles : result.sim.cycles / iterations;
  tech::PerformanceEstimator estimator;
  result.estimate = estimator.estimate(design, technology_, cycles_per_iteration);
  return result;
}

}  // namespace art9::core
