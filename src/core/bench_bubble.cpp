// Bubble sort benchmark (paper Table III column 1).
#include <algorithm>

#include "core/benchmarks.hpp"

namespace art9::core {

std::vector<int32_t> bubble_input() { return generated_values(11, kBubbleN, -500, 500); }

std::vector<int32_t> bubble_expected() {
  std::vector<int32_t> v = bubble_input();
  std::sort(v.begin(), v.end());
  return v;
}

const BenchmarkSources& bubble_sort() {
  static const BenchmarkSources kSources = [] {
    BenchmarkSources s;
    s.name = "bubble-sort";
    s.iterations = 1;

    // Registers: a0 base, a1 i, a2 j, a3 limit, a4 addr, a5 x, t0 y.
    s.rv32 = std::string(R"(
; bubble sort of N words at `arr` (ascending, in place)
.equ N, )") + std::to_string(kBubbleN) + R"(
.data
.org 0
arr: )" + word_directive(bubble_input()) + R"(
.text
main:
    la   a0, arr
    li   a1, 0          ; i
outer:
    li   a2, 0          ; j
    li   a3, N-1
    sub  a3, a3, a1     ; limit = N-1-i
inner:
    slli a4, a2, 2
    add  a4, a4, a0     ; &arr[j]
    lw   a5, 0(a4)
    lw   t0, 4(a4)
    ble  a5, t0, noswap
    sw   t0, 0(a4)
    sw   a5, 4(a4)
noswap:
    addi a2, a2, 1
    blt  a2, a3, inner
    addi a1, a1, 1
    li   a4, N-1
    blt  a1, a4, outer
    ebreak
)";

    // Thumb-1 port (structure mirrors the rv32 version; r0 base, r1 i,
    // r2 j, r3 limit, r4 addr, r5 x, r6 y, r7 scratch).
    s.thumb = std::string(R"(
.equ N, )") + std::to_string(kBubbleN) + R"(
main:
    movs r0, #0          ; arr base
    movs r1, #0          ; i
outer:
    movs r2, #0          ; j
    movs r3, #N
    subs r3, r3, #1
    subs r3, r3, r1      ; limit
inner:
    lsls r4, r2, #2
    adds r4, r4, r0
    ldr  r5, [r4, #0]
    ldr  r6, [r4, #4]
    cmp  r5, r6
    ble  noswap
    str  r6, [r4, #0]
    str  r5, [r4, #4]
noswap:
    adds r2, r2, #1
    cmp  r2, r3
    blt  inner
    adds r1, r1, #1
    movs r4, #N
    subs r4, r4, #1
    cmp  r1, r4
    blt  outer
    nop                  ; halt analogue
.data
arr: )" + word_directive(bubble_input()) + "\n";
    return s;
  }();
  return kSources;
}

}  // namespace art9::core
