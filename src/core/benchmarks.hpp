// The benchmark corpus of the paper's evaluation (§V-A): bubble sort,
// general matrix multiplication (GEMM), Sobel filter, and a
// Dhrystone-shaped kernel.
//
// Each benchmark ships as RV-32I(+M) assembly — the input the software
// framework consumes, standing in for compiler output (DESIGN.md §2) — and
// as an ARMv6-M Thumb-1 port used only for the Fig. 5 code-size bars.
// The ART-9 version is produced by translating the rv32 source, exactly
// as the paper converts its benchmarks.
//
// Host-side reference functions compute the expected architectural outputs
// so integration tests can check all three implementations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace art9::core {

struct BenchmarkSources {
  std::string name;
  std::string rv32;        // RV32I(+M) assembly text
  std::string thumb;       // ARMv6-M subset assembly text
  uint64_t iterations = 1; // dynamic repetitions encoded in the program
};

/// Bubble sort of kBubbleN words (in-place, ascending).
[[nodiscard]] const BenchmarkSources& bubble_sort();
inline constexpr int kBubbleN = 14;
/// Expected sorted array.
[[nodiscard]] std::vector<int32_t> bubble_expected();
/// The unsorted input (shared by generators and tests).
[[nodiscard]] std::vector<int32_t> bubble_input();
/// Byte address of the array in the rv32 data layout.
inline constexpr uint32_t kBubbleArrayAddr = 0;

/// GEMM: C = A x B for kGemmN x kGemmN matrices.
[[nodiscard]] const BenchmarkSources& gemm();
inline constexpr int kGemmN = 5;
[[nodiscard]] std::vector<int32_t> gemm_a();
[[nodiscard]] std::vector<int32_t> gemm_b();
[[nodiscard]] std::vector<int32_t> gemm_expected();
inline constexpr uint32_t kGemmAAddr = 0;
inline constexpr uint32_t kGemmBAddr = 100;
inline constexpr uint32_t kGemmCAddr = 200;

/// Sobel 3x3 gradient magnitude (|Gx| + |Gy|) over a kSobelDim^2 image,
/// writing the (kSobelDim-2)^2 interior.
[[nodiscard]] const BenchmarkSources& sobel();
inline constexpr int kSobelDim = 12;
[[nodiscard]] std::vector<int32_t> sobel_input();
[[nodiscard]] std::vector<int32_t> sobel_expected();  // interior, row-major
inline constexpr uint32_t kSobelImageAddr = 0;
inline constexpr uint32_t kSobelOutAddr = 600;

/// Dhrystone-shaped kernel: per iteration — word-string copy + compare,
/// record assignment, call-heavy integer mix, three multiplies — running
/// kDhrystoneIterations times and accumulating a checksum.
[[nodiscard]] const BenchmarkSources& dhrystone();
inline constexpr int kDhrystoneIterations = 100;
[[nodiscard]] int32_t dhrystone_expected_checksum();
inline constexpr uint32_t kDhrystoneChecksumAddr = 400;

/// All four, in the paper's order.
[[nodiscard]] std::vector<const BenchmarkSources*> all_benchmarks();

/// Deterministic data generator shared by the sources and the reference
/// implementations (LCG, values in [lo, hi]).
[[nodiscard]] std::vector<int32_t> generated_values(uint64_t seed, std::size_t count, int32_t lo,
                                                    int32_t hi);

/// Renders a `.word v0, v1, ...` directive line.
[[nodiscard]] std::string word_directive(const std::vector<int32_t>& values);

}  // namespace art9::core
