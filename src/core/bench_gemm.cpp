// General matrix multiplication benchmark (paper Table III column 2).
// C = A x B over kGemmN x kGemmN word matrices; exercises the framework's
// `mul` expansion into the trit-serial __mul runtime routine.
#include "core/benchmarks.hpp"

namespace art9::core {

std::vector<int32_t> gemm_a() {
  return generated_values(21, static_cast<std::size_t>(kGemmN) * kGemmN, -12, 12);
}
std::vector<int32_t> gemm_b() {
  return generated_values(22, static_cast<std::size_t>(kGemmN) * kGemmN, -12, 12);
}

std::vector<int32_t> gemm_expected() {
  const std::vector<int32_t> a = gemm_a();
  const std::vector<int32_t> b = gemm_b();
  std::vector<int32_t> c(static_cast<std::size_t>(kGemmN) * kGemmN, 0);
  for (int i = 0; i < kGemmN; ++i) {
    for (int j = 0; j < kGemmN; ++j) {
      int32_t acc = 0;
      for (int k = 0; k < kGemmN; ++k) {
        acc += a[static_cast<std::size_t>(i * kGemmN + k)] *
               b[static_cast<std::size_t>(k * kGemmN + j)];
      }
      c[static_cast<std::size_t>(i * kGemmN + j)] = acc;
    }
  }
  return c;
}

const BenchmarkSources& gemm() {
  static const BenchmarkSources kSources = [] {
    BenchmarkSources s;
    s.name = "gemm";
    s.iterations = 1;

    // Row stride = 4*N = 20 bytes.  Registers: a0 i, a1 j, a2 pa, a3 pb,
    // a4 acc, a5 k, t0/t1 scratch.
    s.rv32 = std::string(R"(
; C = A x B, N x N word matrices
.equ N, )") + std::to_string(kGemmN) + R"(
.equ APOS, )" + std::to_string(kGemmAAddr) + R"(
.equ BPOS, )" + std::to_string(kGemmBAddr) + R"(
.equ CPOS, )" + std::to_string(kGemmCAddr) + R"(
.data
.org APOS
A: )" + word_directive(gemm_a()) + R"(
.org BPOS
B: )" + word_directive(gemm_b()) + R"(
.org CPOS
C: .zero N*N
.text
main:
    li   a0, 0           ; i
iloop:
    li   a1, 0           ; j
jloop:
    slli a2, a0, 2
    add  a2, a2, a0      ; 5i
    slli a2, a2, 2       ; 20i
    addi a2, a2, APOS    ; pa = &A[i][0]
    slli a3, a1, 2
    addi a3, a3, BPOS    ; pb = &B[0][j]
    li   a4, 0           ; acc
    li   a5, 0           ; k
kloop:
    lw   t0, 0(a2)
    lw   t1, 0(a3)
    mul  t0, t0, t1
    add  a4, a4, t0
    addi a2, a2, 4
    addi a3, a3, 20
    addi a5, a5, 1
    li   t1, N
    blt  a5, t1, kloop
    slli t0, a0, 2
    add  t0, t0, a0
    slli t0, t0, 2       ; 20i
    slli t1, a1, 2       ; 4j
    add  t0, t0, t1
    addi t0, t0, CPOS
    sw   a4, 0(t0)
    addi a1, a1, 1
    li   t0, N
    blt  a1, t0, jloop
    addi a0, a0, 1
    li   t0, N
    blt  a0, t0, iloop
    ebreak
)";

    // Thumb-1 port (r0 i, r1 j, r2 pa, r3 pb, r4 acc, r5 k, r6/r7 scratch).
    s.thumb = std::string(R"(
.equ N, )") + std::to_string(kGemmN) + R"(
main:
    movs r0, #0
iloop:
    movs r1, #0
jloop:
    lsls r2, r0, #2
    adds r2, r2, r0
    lsls r2, r2, #2      ; 20i = &A[i][0]
    lsls r3, r1, #2
    adds r3, #100    ; pb = &B[0][j]
    movs r4, #0
    movs r5, #0
kloop:
    ldr  r6, [r2, #0]
    ldr  r7, [r3, #0]
    muls r6, r7
    adds r4, r4, r6
    adds r2, r2, #4
    adds r3, #20
    adds r5, r5, #1
    cmp  r5, #N
    blt  kloop
    lsls r6, r0, #2
    adds r6, r6, r0
    lsls r6, r6, #2
    lsls r7, r1, #2
    adds r6, r6, r7
    adds r6, #200
    str  r4, [r6, #0]
    adds r1, r1, #1
    cmp  r1, #N
    blt  jloop
    adds r0, r0, #1
    cmp  r0, #N
    blt  iloop
    nop
.data
A: )" + word_directive(gemm_a()) + R"(
B: )" + word_directive(gemm_b()) + "\n";
    return s;
  }();
  return kSources;
}

}  // namespace art9::core
