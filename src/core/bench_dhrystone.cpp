// Dhrystone-shaped kernel (paper Tables II/III, last column).
//
// Classic Dhrystone measures a fixed mix of string operations, record
// assignment, procedure calls, integer arithmetic and branches; one
// "iteration" of this kernel keeps that mix (word-granular strings — a
// ternary character occupies one word) at a size calibrated to the
// paper's per-iteration cycle counts (ART-9 ~1342 cycles, Table III /
// Table II: 134,200 cycles for 100 iterations = 0.42 DMIPS/MHz).
// DMIPS = iterations-per-second / 1757, as usual.
#include "core/benchmarks.hpp"

namespace art9::core {
namespace {

constexpr int kStrLen = 25;   // words per string
constexpr int kRecLen = 14;   // words per record
constexpr uint32_t kStrA = 500;
constexpr uint32_t kStrB = 600;
constexpr uint32_t kRecSrc = 700;
constexpr uint32_t kRecDst = 800;

std::vector<int32_t> string_a() { return generated_values(41, kStrLen, 1, 25); }
std::vector<int32_t> record_src() { return generated_values(42, kRecLen, -20, 20); }

/// Host mirror of the `arithmix` routine.
int32_t arithmix_expected() {
  int32_t acc = 0;
  for (int32_t v : record_src()) {
    acc += v;
    acc += acc < 0 ? 1 : 0;  // the slt feedback
  }
  return acc;
}

/// Host mirror of `mulsum` (a0 = 7, a1 = -6).
int32_t mulsum_expected() {
  const int32_t t0 = 7 * -6;
  const int32_t t1 = t0 * -6;
  const int32_t t2 = t1 * 7;
  return t0 + t1 + t2;
}

}  // namespace

int32_t dhrystone_expected_checksum() {
  return 1 /* strings compare equal */ + arithmix_expected() + mulsum_expected();
}

const BenchmarkSources& dhrystone() {
  static const BenchmarkSources kSources = [] {
    BenchmarkSources s;
    s.name = "dhrystone";
    s.iterations = kDhrystoneIterations;

    s.rv32 = std::string(R"(
; Dhrystone-shaped kernel, ITERS iterations
.equ ITERS, )") + std::to_string(kDhrystoneIterations) + R"(
.equ STRLEN, )" + std::to_string(kStrLen) + R"(
.equ RECLEN, )" + std::to_string(kRecLen) + R"(
.equ STRA, )" + std::to_string(kStrA) + R"(
.equ STRB, )" + std::to_string(kStrB) + R"(
.equ RECS, )" + std::to_string(kRecSrc) + R"(
.equ RECD, )" + std::to_string(kRecDst) + R"(
.equ CHK, )" + std::to_string(kDhrystoneChecksumAddr) + R"(
.data
.org STRA
str_a: )" + word_directive(string_a()) + R"(
.org RECS
rec_src: )" + word_directive(record_src()) + R"(
.text
main:
    li   s0, 0              ; iteration counter
    li   s1, 0              ; checksum
run:
    ; Proc_1: word-string copy STRA -> STRB
    li   a0, STRA
    li   a1, STRB
    jal  ra, strcpy
    ; Func_1: word-string compare (equal -> 1)
    li   a0, STRA
    li   a1, STRB
    jal  ra, strcmp
    add  s1, zero, a0
    ; Proc_2: record assignment RECS -> RECD
    li   a0, RECS
    li   a1, RECD
    jal  ra, reccopy
    ; Proc_3: arithmetic/branch mix over the record
    li   a0, RECD
    jal  ra, arithmix
    add  s1, s1, a0
    ; Func_2: three multiplies
    li   a0, 7
    li   a1, -6
    jal  ra, mulsum
    add  s1, s1, a0
    addi s0, s0, 1
    li   t0, ITERS
    blt  s0, t0, run
    li   t0, CHK
    sw   s1, 0(t0)
    ebreak

strcpy:                      ; copy STRLEN words from a0 to a1
    li   t0, STRB+4*STRLEN   ; end of destination
cpy1:
    lw   t1, 0(a0)
    sw   t1, 0(a1)
    addi a0, a0, 4
    addi a1, a1, 4
    blt  a1, t0, cpy1
    ret

strcmp:                      ; a0 = 1 if STRLEN words match, else 0
    li   t2, 1
    li   t1, STRA+4*STRLEN   ; end of first string
cmp1:
    lw   t0, 0(a0)
    addi a0, a0, 4
    lw   a2, 0(a1)
    addi a1, a1, 4
    beq  t0, a2, cmp2
    li   t2, 0
cmp2:
    blt  a0, t1, cmp1
    add  a0, zero, t2
    ret

reccopy:                     ; copy RECLEN words from a0 to a1
    li   t0, RECD+4*RECLEN
rcp1:
    lw   t1, 0(a0)
    sw   t1, 0(a1)
    addi a0, a0, 4
    addi a1, a1, 4
    blt  a1, t0, rcp1
    ret

arithmix:                    ; fold the record with add/slt feedback
    li   t1, 0               ; acc
    li   t2, RECD+4*RECLEN
ar1:
    lw   t0, 0(a0)
    add  t1, t1, t0
    slt  t0, t1, zero
    add  t1, t1, t0
    addi a0, a0, 4
    blt  a0, t2, ar1
    add  a0, zero, t1
    ret

mulsum:                      ; a0 = t0 + t1 + t2 over three products
    mul  t0, a0, a1
    mul  t1, t0, a1
    mul  t2, t1, a0
    add  a0, t0, t1
    add  a0, a0, t2
    ret
)";

    // Thumb-1 port with the same call structure (r0/r1 args, r2/r3/r4
    // temps, r5 iteration counter, r6 checksum, r7 scratch).
    s.thumb = std::string(R"(
.equ ITERS, )") + std::to_string(kDhrystoneIterations) + R"(
.equ STRLEN, )" + std::to_string(kStrLen) + R"(
.equ RECLEN, )" + std::to_string(kRecLen) + R"(
main:
    movs r5, #0
    movs r6, #0
run:
    movs r0, #125
    lsls r0, r0, #2          ; STRA = 500
    movs r1, #150
    lsls r1, r1, #2          ; STRB = 600
    bl   strcpy
    movs r0, #125
    lsls r0, r0, #2
    movs r1, #150
    lsls r1, r1, #2
    bl   strcmp
    movs r6, r0
    movs r0, #175
    lsls r0, r0, #2          ; RECS = 700
    movs r1, #200
    lsls r1, r1, #2          ; RECD = 800
    bl   reccopy
    movs r0, #200
    lsls r0, r0, #2
    bl   arithmix
    adds r6, r6, r0
    movs r0, #7
    movs r1, #0
    subs r1, r1, #6
    bl   mulsum
    adds r6, r6, r0
    adds r5, r5, #1
    cmp  r5, #ITERS
    blt  run
    movs r0, #100
    lsls r0, r0, #2          ; CHK = 400
    str  r6, [r0, #0]
    nop

strcpy:
    movs r2, #STRLEN
cpy1:
    ldr  r3, [r0, #0]
    str  r3, [r1, #0]
    adds r0, r0, #4
    adds r1, r1, #4
    subs r2, r2, #1
    bgt  cpy1
    bx   lr

strcmp:
    movs r4, #1
    movs r2, #STRLEN
cmp1:
    ldr  r3, [r0, #0]
    ldr  r7, [r1, #0]
    adds r0, r0, #4
    adds r1, r1, #4
    cmp  r3, r7
    beq  cmp2
    movs r4, #0
cmp2:
    subs r2, r2, #1
    bgt  cmp1
    movs r0, r4
    bx   lr

reccopy:
    movs r2, #RECLEN
rcp1:
    ldr  r3, [r0, #0]
    str  r3, [r1, #0]
    adds r0, r0, #4
    adds r1, r1, #4
    subs r2, r2, #1
    bgt  rcp1
    bx   lr

arithmix:
    movs r2, #RECLEN
    movs r3, #0              ; acc
ar1:
    ldr  r4, [r0, #0]
    adds r3, r3, r4
    bpl  ar2
    adds r3, r3, #1
ar2:
    adds r0, r0, #4
    subs r2, r2, #1
    bgt  ar1
    movs r0, r3
    bx   lr

mulsum:
    movs r2, r0
    muls r2, r1              ; t0
    movs r3, r2
    muls r3, r1              ; t1
    movs r4, r3
    muls r4, r0              ; t2
    movs r0, r2
    adds r0, r0, r3
    adds r0, r0, r4
    bx   lr
.data
str_a: )" + word_directive(string_a()) + R"(
rec_src: )" + word_directive(record_src()) + "\n";
    return s;
  }();
  return kSources;
}

}  // namespace art9::core
