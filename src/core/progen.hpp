// Random program generators for the differential property tests:
//  * random ART-9 programs (straight-line + bounded counted loops) checked
//    pipeline-vs-functional;
//  * random RV-32 programs from the translatable subset checked
//    rv32-sim-vs-translated-ART-9-sim.
#pragma once

#include <cstdint>
#include <random>
#include <string>

#include "isa/program.hpp"

namespace art9::core {

/// Knobs for the ART-9 generator.
struct Art9GenOptions {
  int min_length = 20;
  int max_length = 120;
  bool with_memory_ops = true;
  bool with_branches = true;
  bool with_loops = true;
};

/// Generates a random, always-terminating ART-9 program ending in HALT.
/// Branches only jump forward; loops are counted via a dedicated register
/// so every program halts within a bounded cycle count.
[[nodiscard]] isa::Program generate_art9_program(std::mt19937_64& rng,
                                                 const Art9GenOptions& options = {});

/// Knobs for the rv32 generator (translatable subset only).
struct Rv32GenOptions {
  int min_length = 15;
  int max_length = 80;
  int max_registers = 8;  // > 5 exercises spilling
  bool with_memory_ops = true;
  bool with_mul = true;
  bool with_div = false;
};

/// Generates random RV-32 assembly from the framework's mapping contract:
/// values stay within the 9-trit range (every product/sum is rescaled by
/// construction), data is word-granular, and the program ends with ebreak.
[[nodiscard]] std::string generate_rv32_source(std::mt19937_64& rng,
                                               const Rv32GenOptions& options = {});

}  // namespace art9::core
