// HardwareFramework — the paper's Fig. 3 flow as one API.
//
//   architecture description (PipelineConfig)  ─┐
//   ternary assembly (isa::Program)            ─┼─> cycle-accurate simulator
//   technology description (tech::Technology)  ─┼─> gate-level analyzer
//                                               └─> performance estimator
//
// `evaluate` runs the program on the pipelined core, analyzes the matching
// datapath netlist under the given technology, and fuses both into the
// paper's metrics.
#pragma once

#include <optional>

#include "isa/program.hpp"
#include "sim/pipeline.hpp"
#include "tech/datapath.hpp"
#include "tech/estimator.hpp"

namespace art9::core {

struct EvaluationResult {
  sim::SimStats sim;
  tech::AnalysisReport analysis;
  tech::PerformanceEstimate estimate;
};

class HardwareFramework {
 public:
  HardwareFramework(sim::PipelineConfig pipeline, tech::Technology technology)
      : pipeline_(pipeline), technology_(std::move(technology)) {}

  /// Runs `program` to completion and produces the combined report.
  /// `iterations` scales the cycle count down to a per-iteration figure
  /// for the Dhrystone-style DMIPS math (1 for plain kernels).
  [[nodiscard]] EvaluationResult evaluate(const isa::Program& program,
                                          uint64_t iterations = 1) const;

  [[nodiscard]] const sim::PipelineConfig& pipeline_config() const noexcept { return pipeline_; }
  [[nodiscard]] const tech::Technology& technology() const noexcept { return technology_; }

 private:
  sim::PipelineConfig pipeline_;
  tech::Technology technology_;
};

}  // namespace art9::core
