// Unified simulation-engine facade: one API over every ART-9 execution
// backend (lazy decode-on-fetch, pre-decoded dispatch, plane-packed SWAR,
// cycle-accurate pipeline on the reference or the plane-packed datapath).
//
// The paper's evaluation framework runs the same program through a
// functional model and a cycle-accurate model and compares them; before
// this facade every consumer (batch sweeps, art9-run, the micro benches,
// the differential tests) hand-rolled its own backend switch over four
// diverging class surfaces.  An Engine gives them one contract:
//
//   auto engine = make_engine(EngineKind::kPacked, image);
//   RunResult r = engine->run({.max_steps = budget});
//   // r.state / r.stats / r.halt — identical shape for every kind.
//
// Contract guarantees, locked by tests/sim/engine_conformance_test.cpp:
//  * all functional kinds produce bit-identical ArchState and SimStats on
//    the same program and budget (the pipeline kind matches ArchState and
//    retired-instruction count; its cycle accounting is its whole point);
//  * budget exhaustion is reported as HaltReason::kMaxCycles by every
//    kind — never left defaulted;
//  * the retired-instruction observer (mirroring rv32::Rv32Simulator's
//    Observer) is zero-cost when unset: engines only leave their native
//    hot loop (e.g. the packed threaded dispatch) when an observer is
//    installed.
//
// New backends (wider packed words, a threaded pipeline) drop in as a new
// EngineKind + factory case; no consumer changes.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>

#include "isa/instruction.hpp"
#include "isa/program.hpp"
#include "sim/decoded_image.hpp"
#include "sim/machine.hpp"
#include "sim/pipeline.hpp"

namespace art9::sim {

/// Every execution backend the facade can construct.
enum class EngineKind : uint8_t {
  kLazy,            // seed decode-on-fetch loop (baseline for differential runs)
  kFunctional,      // pre-decoded dispatch fast path (golden model)
  kPacked,          // plane-packed SWAR datapath
  kPipeline,        // cycle-accurate 5-stage pipeline (reference datapath)
  kPackedPipeline,  // the same 5-stage control logic over plane-packed words
};

/// All kinds, in factory order — for generic sweeps (benches, conformance).
[[nodiscard]] constexpr std::array<EngineKind, 5> all_engine_kinds() noexcept {
  return {EngineKind::kLazy, EngineKind::kFunctional, EngineKind::kPacked, EngineKind::kPipeline,
          EngineKind::kPackedPipeline};
}

/// True for the cycle-accurate kinds (step() is one clock, budgets are
/// cycle counts, SimStats carry the microarchitectural accounting).
[[nodiscard]] constexpr bool is_cycle_accurate(EngineKind kind) noexcept {
  return kind == EngineKind::kPipeline || kind == EngineKind::kPackedPipeline;
}

/// Stable lower-case name ("lazy", "functional", "packed", "pipeline",
/// "pipeline_packed") — the vocabulary of art9-run's --engine= flag and
/// the bench JSON keys.
[[nodiscard]] std::string_view engine_kind_name(EngineKind kind) noexcept;

/// Inverse of engine_kind_name; nullopt for unknown names.
[[nodiscard]] std::optional<EngineKind> parse_engine_kind(std::string_view name) noexcept;

/// Construction-time options.  Functional kinds ignore both fields.
/// `pipeline.max_cycles` caps each run() of a cycle-accurate engine in
/// addition to RunOptions::max_steps (the tighter budget wins).
struct EngineOptions {
  PipelineConfig pipeline;  // microarchitecture switches (both pipeline kinds)
  TraceObserver tracer;     // per-cycle pipeline trace stream (both pipeline kinds)
};

/// Per-run options.  `max_steps` is the step() budget: retired
/// instructions for the functional kinds, clock cycles for the pipeline
/// (its architectural meaning of one step).
struct RunOptions {
  uint64_t max_steps = 100'000'000;
};

/// What a run returns, identical for every kind.  `halt` duplicates
/// `stats.halt` so call sites can switch on the reason without digging.
struct RunResult {
  ArchState state;
  SimStats stats;
  HaltReason halt = HaltReason::kHalted;
};

/// One retired instruction, as seen by Engine observers (the ART-9 mirror
/// of rv32::Rv32Retired, which feeds the RV32 baseline cycle models).
struct Retired {
  isa::Instruction inst;
  int64_t pc = 0;
  uint64_t index = 0;  // sequence number, 0-based from observer installation
};

class Engine {
 public:
  using Observer = std::function<void(const Retired&)>;

  virtual ~Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] virtual EngineKind kind() const noexcept = 0;

  /// Executes one step (instruction, or clock cycle for the pipeline).
  /// Returns false once the HALT convention retires.  Observers installed
  /// via set_observer fire for instructions retired by step() too.
  virtual bool step() = 0;

  /// Runs from the current state until HALT or the step budget,
  /// returning this run's statistics (per-call, not lifetime — repeated
  /// runs each report only their own steps, on every kind).
  /// `stats.halt` is kMaxCycles on budget exhaustion, kHalted
  /// otherwise — for every kind.  This is the
  /// throughput path: no architectural-state materialization (the packed
  /// backend's snapshot decode costs a measurable fraction of a short
  /// run); inspect via state() or use run() when the state is wanted.
  virtual SimStats run_stats(const RunOptions& options = {}) = 0;

  /// run_stats() plus a state() snapshot, in one uniform result.
  [[nodiscard]] RunResult run(const RunOptions& options = {}) {
    SimStats stats = run_stats(options);
    return RunResult{state(), stats, stats.halt};
  }

  /// Snapshot of the architectural state (registers, TDM contents and
  /// access counters, PC).  Packed state is decoded at this boundary.
  [[nodiscard]] virtual ArchState state() const = 0;

  /// The shared pre-decoded image this engine executes.
  [[nodiscard]] virtual const DecodedImage& image() const noexcept = 0;

  /// Streams every retired instruction to `observer` (empty to remove).
  /// Engines fall back to an instrumented step loop only while an
  /// observer is installed; the native hot loops are untouched otherwise.
  virtual void set_observer(Observer observer) = 0;

  /// Convenience accessors over state() for small inspections.
  [[nodiscard]] ternary::Word9 reg(int index) const { return state().trf.read(index); }
  [[nodiscard]] int64_t reg_int(int index) const { return reg(index).to_int(); }

 protected:
  Engine() = default;
};

/// Constructs an engine of `kind` over a shared immutable image.  Any
/// number of engines (across threads — see SimulationService) may share
/// one image.  Throws std::invalid_argument on a null image.
[[nodiscard]] std::unique_ptr<Engine> make_engine(EngineKind kind,
                                                  std::shared_ptr<const DecodedImage> image,
                                                  const EngineOptions& options = {});

/// Convenience: decodes `program` into a fresh image first.
[[nodiscard]] std::unique_ptr<Engine> make_engine(EngineKind kind, const isa::Program& program,
                                                  const EngineOptions& options = {});

}  // namespace art9::sim
