// Unified simulation-engine facade: one API over every execution backend
// of the paper's evaluation framework — both ISAs.
//
// The evaluation is inherently cross-ISA: RV32 baselines (the
// PicoRV32/VexRiscv timing models of Tables II/III) are compared against
// the translated ART-9 ternary core.  The facade therefore spans
//
//   * the six ART-9 kinds (lazy decode-on-fetch, pre-decoded dispatch,
//     plane-packed SWAR, the superblock translation tier over it, and the
//     cycle-accurate pipeline on the reference or the plane-packed
//     datapath), and
//   * the three RV32 kinds (pre-decoded dispatch, the superblock
//     translation tier over it, and the PackedWord<21> plane-pair
//     datapath of PackedRv32Simulator),
//
// behind one contract:
//
//   auto engine = make_engine(EngineKind::kPacked, image);
//   RunResult r = engine->run({.max_steps = budget});
//   // r.state / r.stats / r.halt — identical shape for every kind.
//
// Contract guarantees, locked by tests/sim/engine_conformance_test.cpp:
//  * all functional kinds of one ISA produce bit-identical MachineState
//    and SimStats on the same program and budget (the pipeline kinds
//    match ArchState and retired-instruction count; their cycle
//    accounting is their whole point);
//  * budget exhaustion is reported as HaltReason::kMaxCycles by every
//    kind — never left defaulted;
//  * the retired-instruction observer is zero-cost when unset: engines
//    only leave their native hot loop (e.g. the packed threaded
//    dispatch) when an observer is installed.
//
// New backends (wider packed words, another ISA) drop in as a new
// EngineKind + factory case; no consumer changes.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <utility>
#include <variant>

#include "isa/instruction.hpp"
#include "isa/program.hpp"
#include "rv32/rv32_decoded_image.hpp"
#include "rv32/rv32_sim.hpp"
#include "sim/decoded_image.hpp"
#include "sim/machine.hpp"
#include "sim/pipeline.hpp"

namespace art9::sim {

/// Every execution backend the facade can construct.
enum class EngineKind : uint8_t {
  kLazy,            // seed decode-on-fetch loop (baseline for differential runs)
  kFunctional,      // pre-decoded dispatch fast path (golden model)
  kPacked,          // plane-packed SWAR datapath
  kSuperblock,      // superblock translation tier over the packed datapath
  kPipeline,        // cycle-accurate 5-stage pipeline (reference datapath)
  kPackedPipeline,  // the same 5-stage control logic over plane-packed words
  kRv32,            // RV32 baseline, pre-decoded dispatch (reference model)
  kRv32Superblock,  // RV32 superblock translation tier (fused macro-ops)
  kRv32Packed,      // RV32 on the ternary datapath: PackedWord<21> TRF + RAM
  kFleet,           // bit-sliced fleet: 32 ART-9 machines per plane word
};

/// All kinds, in factory order — for generic sweeps (benches, conformance).
[[nodiscard]] constexpr std::array<EngineKind, 10> all_engine_kinds() noexcept {
  return {EngineKind::kLazy,           EngineKind::kFunctional,     EngineKind::kPacked,
          EngineKind::kSuperblock,     EngineKind::kFleet,          EngineKind::kPipeline,
          EngineKind::kPackedPipeline, EngineKind::kRv32,           EngineKind::kRv32Superblock,
          EngineKind::kRv32Packed};
}

/// True for the kinds that execute RV32 programs (an Rv32DecodedImage);
/// the others execute ART-9 programs (a DecodedImage).
[[nodiscard]] constexpr bool is_rv32(EngineKind kind) noexcept {
  return kind == EngineKind::kRv32 || kind == EngineKind::kRv32Superblock ||
         kind == EngineKind::kRv32Packed;
}

/// The seven ART-9 kinds, in factory order.
[[nodiscard]] constexpr std::array<EngineKind, 7> art9_engine_kinds() noexcept {
  return {EngineKind::kLazy,  EngineKind::kFunctional, EngineKind::kPacked,
          EngineKind::kSuperblock, EngineKind::kFleet, EngineKind::kPipeline,
          EngineKind::kPackedPipeline};
}

/// The three RV32 kinds, in factory order.
[[nodiscard]] constexpr std::array<EngineKind, 3> rv32_engine_kinds() noexcept {
  return {EngineKind::kRv32, EngineKind::kRv32Superblock, EngineKind::kRv32Packed};
}

/// True for the cycle-accurate kinds (step() is one clock, budgets are
/// cycle counts, SimStats carry the microarchitectural accounting).
[[nodiscard]] constexpr bool is_cycle_accurate(EngineKind kind) noexcept {
  return kind == EngineKind::kPipeline || kind == EngineKind::kPackedPipeline;
}

/// Stable lower-case name ("lazy", "functional", "packed", "superblock",
/// "fleet", "pipeline", "pipeline_packed", "rv32", "rv32_superblock",
/// "rv32_packed") — the vocabulary of art9-run's --engine= flag and the
/// bench JSON keys.
[[nodiscard]] std::string_view engine_kind_name(EngineKind kind) noexcept;

/// Inverse of engine_kind_name; nullopt for unknown names.
[[nodiscard]] std::optional<EngineKind> parse_engine_kind(std::string_view name) noexcept;

/// Construction-time options.  Functional kinds ignore the pipeline
/// fields; ART-9 kinds ignore rv32_ram_bytes.
/// `pipeline.max_cycles` caps each run() of a cycle-accurate engine in
/// addition to RunOptions::max_steps (the tighter budget wins).
struct EngineOptions {
  PipelineConfig pipeline;  // microarchitecture switches (both pipeline kinds)
  TraceObserver tracer;     // per-cycle pipeline trace stream (both pipeline kinds)
  std::size_t rv32_ram_bytes = 1u << 20;  // data RAM of the rv32 kinds
};

/// Per-run options.  `max_steps` is the step() budget: retired
/// instructions for the functional kinds, clock cycles for the pipeline
/// (its architectural meaning of one step).
struct RunOptions {
  uint64_t max_steps = 100'000'000;
};

/// The architectural state of either ISA, as one comparable value:
/// ART-9 kinds snapshot an ArchState (TRF, TDM, balanced PC), rv32 kinds
/// an Rv32ArchState (x-registers, RAM bytes, byte PC).  Accessors throw
/// SimError when the wrong ISA's view is requested.
class MachineState {
 public:
  MachineState() = default;  // a default-constructed ART-9 state
  /*implicit*/ MachineState(ArchState state) : state_(std::move(state)) {}
  /*implicit*/ MachineState(::art9::rv32::Rv32ArchState state) : state_(std::move(state)) {}

  [[nodiscard]] bool is_art9() const noexcept { return state_.index() == 0; }
  [[nodiscard]] bool is_rv32() const noexcept { return state_.index() == 1; }

  /// The ART-9 view (registers, TDM, PC).  Ref-qualified: on an rvalue —
  /// e.g. `engine->checkpoint().art9()` — the view is *moved out* instead
  /// of referencing the dying temporary, so `const ArchState& s = ...`
  /// lifetime-extends a value rather than dangling (a use-after-free the
  /// differential fuzzer caught in its own harness).
  [[nodiscard]] const ArchState& art9() const& {
    if (const ArchState* s = std::get_if<ArchState>(&state_)) return *s;
    throw SimError("MachineState: rv32 state has no ART-9 view");
  }
  [[nodiscard]] ArchState art9() && {
    if (ArchState* s = std::get_if<ArchState>(&state_)) return std::move(*s);
    throw SimError("MachineState: rv32 state has no ART-9 view");
  }

  /// The rv32 view (x-registers, RAM bytes, PC).  Ref-qualified like art9().
  [[nodiscard]] const ::art9::rv32::Rv32ArchState& rv32() const& {
    if (const auto* s = std::get_if<::art9::rv32::Rv32ArchState>(&state_)) return *s;
    throw SimError("MachineState: ART-9 state has no rv32 view");
  }
  [[nodiscard]] ::art9::rv32::Rv32ArchState rv32() && {
    if (auto* s = std::get_if<::art9::rv32::Rv32ArchState>(&state_)) return std::move(*s);
    throw SimError("MachineState: ART-9 state has no rv32 view");
  }

  friend bool operator==(const MachineState&, const MachineState&) = default;

 private:
  std::variant<ArchState, ::art9::rv32::Rv32ArchState> state_;
};

/// What a run returns, identical for every kind.  `halt` duplicates
/// `stats.halt` so call sites can switch on the reason without digging.
struct RunResult {
  MachineState state;
  SimStats stats;
  HaltReason halt = HaltReason::kHalted;
};

/// One retired instruction, as seen by Engine observers, for either ISA.
/// ART-9 kinds stream isa::Instruction events (the halt pseudo-op never
/// retires); rv32 kinds stream Rv32Instruction events with the native
/// convention of rv32::Rv32Simulator::Observer — the halting ECALL/
/// EBREAK is observed (it feeds the baseline cycle models) and `taken`
/// carries the branch outcome.
struct Retired {
  std::variant<isa::Instruction, ::art9::rv32::Rv32Instruction> inst;
  int64_t pc = 0;
  uint64_t index = 0;  // sequence number, 0-based from observer installation
  bool taken = false;  // rv32 branches/jumps: condition outcome

  [[nodiscard]] bool is_rv32() const noexcept { return inst.index() == 1; }

  /// The ART-9 instruction (throws std::bad_variant_access on rv32 events).
  [[nodiscard]] const isa::Instruction& art9() const { return std::get<isa::Instruction>(inst); }

  /// The rv32 instruction (throws std::bad_variant_access on ART-9 events).
  [[nodiscard]] const ::art9::rv32::Rv32Instruction& rv32() const {
    return std::get<::art9::rv32::Rv32Instruction>(inst);
  }

  /// The event in the vocabulary of the RV32 timing models
  /// (rv32::PicoRv32CycleModel / rv32::VexRiscvCycleModel::observe).
  [[nodiscard]] ::art9::rv32::Rv32Retired to_rv32() const {
    return ::art9::rv32::Rv32Retired{rv32(), static_cast<uint32_t>(pc), taken};
  }
};

class Engine {
 public:
  using Observer = std::function<void(const Retired&)>;

  virtual ~Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] virtual EngineKind kind() const noexcept = 0;

  /// Executes one step (instruction, or clock cycle for the pipeline).
  /// Returns false once the halt convention retires (the ART-9 self-jump
  /// or the rv32 ECALL/EBREAK).  Observers installed via set_observer
  /// fire for instructions retired by step() too.
  virtual bool step() = 0;

  /// Runs from the current state until halt or the step budget,
  /// returning this run's statistics (per-call, not lifetime — repeated
  /// runs each report only their own steps, on every kind).
  /// `stats.halt` is kMaxCycles on budget exhaustion, kHalted
  /// otherwise — for every kind.  This is the
  /// throughput path: no architectural-state materialization (the packed
  /// backends' snapshot decode costs a measurable fraction of a short
  /// run); inspect via state() or use run() when the state is wanted.
  virtual SimStats run_stats(const RunOptions& options = {}) = 0;

  /// run_stats() plus a state() snapshot, in one uniform result.
  [[nodiscard]] RunResult run(const RunOptions& options = {}) {
    SimStats stats = run_stats(options);
    return RunResult{state(), stats, stats.halt};
  }

  /// Snapshot of the architectural state.  Packed state — on either
  /// datapath — is decoded at this boundary.
  [[nodiscard]] virtual MachineState state() const = 0;

  /// A restorable checkpoint: the architectural state at the next
  /// instruction boundary.  For the functional kinds this is state()
  /// verbatim.  The cycle-accurate kinds first drain in-flight
  /// instructions to a boundary (charging the drain cycles to their
  /// stats) so the checkpoint resumes bit-identically on *any* kind of
  /// the same ISA — including instruction-at-a-time ones; the source
  /// engine itself stays consistent and can keep running.
  [[nodiscard]] virtual MachineState checkpoint() { return state(); }

  /// Replaces the architectural state wholesale (registers, data memory
  /// contents and access counters / RAM bytes, PC) and re-syncs the
  /// fetch path to the snapshot's PC.  Pipelines resume with empty
  /// latches, exactly as if execution had started at the snapshot.
  /// Throws SimError when the snapshot's ISA does not match the
  /// engine's.  Code is not part of the state: the snapshot must have
  /// been taken on an engine over the same program image.
  virtual void restore(const MachineState& snapshot) = 0;

  /// The shared pre-decoded ART-9 image this engine executes.  Throws
  /// SimError for the rv32 kinds (use rv32_image()).
  [[nodiscard]] virtual const DecodedImage& image() const {
    throw SimError("engine: rv32 kind has no ART-9 image");
  }

  /// The shared pre-decoded rv32 image this engine executes.  Throws
  /// SimError for the ART-9 kinds (use image()).
  [[nodiscard]] virtual const ::art9::rv32::Rv32DecodedImage& rv32_image() const {
    throw SimError("engine: ART-9 kind has no rv32 image");
  }

  /// Streams every retired instruction to `observer` (empty to remove).
  /// Engines fall back to an instrumented step loop only while an
  /// observer is installed; the native hot loops are untouched otherwise.
  virtual void set_observer(Observer observer) = 0;

  /// Convenience accessors over state() for small inspections (ART-9
  /// kinds; they throw SimError on the rv32 kinds).
  [[nodiscard]] ternary::Word9 reg(int index) const { return state().art9().trf.read(index); }
  [[nodiscard]] int64_t reg_int(int index) const { return reg(index).to_int(); }

 protected:
  Engine() = default;
};

/// Either ISA's shareable pre-decoded image — the one-argument form every
/// generic consumer (SimulationService, the benches) traffics in.
using EngineImage = std::variant<std::shared_ptr<const DecodedImage>,
                                 std::shared_ptr<const ::art9::rv32::Rv32DecodedImage>>;

/// Constructs an engine of `kind` over a shared immutable ART-9 image.
/// Any number of engines (across threads — see SimulationService) may
/// share one image.  Throws std::invalid_argument on a null image or an
/// rv32 kind (which needs an Rv32DecodedImage).
[[nodiscard]] std::unique_ptr<Engine> make_engine(EngineKind kind,
                                                  std::shared_ptr<const DecodedImage> image,
                                                  const EngineOptions& options = {});

/// Constructs an rv32 engine over a shared immutable rv32 image.  Throws
/// std::invalid_argument on a null image or an ART-9 kind.
[[nodiscard]] std::unique_ptr<Engine> make_engine(
    EngineKind kind, std::shared_ptr<const ::art9::rv32::Rv32DecodedImage> image,
    const EngineOptions& options = {});

/// Cross-ISA form: dispatches on the image alternative.  The kind must
/// match the image's ISA (std::invalid_argument otherwise).
[[nodiscard]] std::unique_ptr<Engine> make_engine(EngineKind kind, EngineImage image,
                                                  const EngineOptions& options = {});

/// Constructs an ART-9 engine of `kind` and resumes it from `snapshot`
/// (an ART-9 MachineState — e.g. one produced by checkpoint() on any
/// ART-9 kind, or deserialized via sim/snapshot.hpp) instead of the
/// image's entry state.  The image supplies the code; the snapshot
/// supplies registers, TDM and PC.
[[nodiscard]] std::unique_ptr<Engine> make_engine(EngineKind kind,
                                                  std::shared_ptr<const DecodedImage> image,
                                                  const MachineState& snapshot,
                                                  const EngineOptions& options = {});

/// rv32 form: resumes from an rv32 snapshot (its RAM size is adopted,
/// overriding EngineOptions::rv32_ram_bytes).
[[nodiscard]] std::unique_ptr<Engine> make_engine(
    EngineKind kind, std::shared_ptr<const ::art9::rv32::Rv32DecodedImage> image,
    const MachineState& snapshot, const EngineOptions& options = {});

/// Cross-ISA resume form: dispatches on the image alternative.
[[nodiscard]] std::unique_ptr<Engine> make_engine(EngineKind kind, EngineImage image,
                                                  const MachineState& snapshot,
                                                  const EngineOptions& options = {});

/// Convenience: decodes `program` into a fresh image first.
[[nodiscard]] std::unique_ptr<Engine> make_engine(EngineKind kind, const isa::Program& program,
                                                  const EngineOptions& options = {});
[[nodiscard]] std::unique_ptr<Engine> make_engine(EngineKind kind,
                                                  const ::art9::rv32::Rv32Program& program,
                                                  const EngineOptions& options = {});

}  // namespace art9::sim
