// Bit-sliced fleet backend — up to 32 independent machines per plane
// word, executing one shared DecodedImage in lockstep.
//
// The superblock tier (superblock.hpp) made one machine fast; the fleet
// tier makes *many* machines cheap.  The 9-trit TRF is stored transposed
// (ternary/bitsliced.hpp): per trit position, two uint32_t planes whose
// bit i belongs to lane i, so one tritwise gate, one balanced-ternary
// adder pass or one branch-condition evaluation steps every lane at
// once — SIMD-across-scenarios rather than SIMD-within-a-word.
//
// Divergence is handled the GPU way, scoped to what dominates our
// batches (the same program over many budgets/inputs):
//
//  * all lanes run the same image; a lane mask tracks who participates
//    in each plane operation;
//  * control flow is reconciled with PC-grouped cohorts at superblock
//    boundaries — the PR 9 block index is the cohort unit, so lanes
//    inside one block need no regrouping until the terminator;
//  * halted / trapped / budget-exhausted lanes drop out of the mask;
//  * the TDM is transposed too (one SlicedWord9 per row spanning all
//    lanes), so a load/store whose address register is uniform across
//    the cohort — the lockstep common case — is a single masked plane
//    copy; divergent lanes fall back to per-lane single-bit row moves.
//
// Exactness: a lane whose remaining budget no longer fits the current
// block's min_budget leaves the cohort and finishes on the same
// per-instruction tail the superblock tier uses, so every lane's
// trajectory — ArchState, SimStats, trap message, at every budget — is
// bit-identical to a solo run (locked by the conformance suite through
// the kFleet engine facade and by tests/sim/fleet_test.cpp for
// multi-lane cohorts).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/program.hpp"
#include "sim/decoded_image.hpp"
#include "sim/machine.hpp"
#include "sim/superblock.hpp"
#include "ternary/bitsliced.hpp"

namespace art9::sim {

class FleetSimulator {
 public:
  /// Lane capacity of the uint32_t planes (a uint64 build would double it).
  static constexpr unsigned kMaxLanes = ternary::bitsliced::kLanes;

  /// Decodes `program` into a private image, `lanes` identical machines.
  explicit FleetSimulator(const isa::Program& program, unsigned lanes = 1);

  /// Runs off a shared pre-decoded image.  `image` must be non-null and
  /// `lanes` in [1, kMaxLanes].
  explicit FleetSimulator(std::shared_ptr<const DecodedImage> image, unsigned lanes = 1);

  [[nodiscard]] unsigned lanes() const noexcept { return lanes_; }
  [[nodiscard]] const DecodedImage& image() const noexcept { return *image_; }

  /// What one advance() did to one lane.  A lane neither halted nor
  /// trapped executed exactly its budget.
  struct LaneProgress {
    uint64_t instructions = 0;
    bool halted = false;
    bool trapped = false;
    std::string trap_message;  // the exact SimError text of a solo run
  };

  /// Advances every lane i by at most budgets[i] instructions (0 = lane
  /// idles), cohort-scheduled: lanes on the same superblock execute it
  /// bit-sliced under a shared mask.  Trapping lanes commit their state
  /// and report the trap here instead of throwing, so one lane's
  /// uninitialised fetch never tears down its cohort.
  /// budgets.size() must equal lanes().
  std::vector<LaneProgress> advance(const std::vector<uint64_t>& budgets);

  // --- single-lane Engine surface (lane 0) --------------------------------

  /// Executes one instruction on lane 0 (the per-instruction path).
  /// Returns false on the HALT convention; throws SimError on a trap.
  bool step();

  /// Runs lane 0 until HALT or `max_instructions` — exactly, like
  /// SuperblockSimulator::run.  Throws SimError if lane 0 traps.
  SimStats run(uint64_t max_instructions = 100'000'000);

  // --- per-lane inspection boundary ---------------------------------------

  [[nodiscard]] int64_t pc(unsigned lane = 0) const;
  [[nodiscard]] ArchState unpack_lane(unsigned lane) const;
  void restore_lane(unsigned lane, const ArchState& state);
  [[nodiscard]] ternary::Word9 reg(unsigned lane, int index) const;
  [[nodiscard]] int64_t reg_int(unsigned lane, int index) const;

 private:
  /// One instruction on `lane` via gather/scatter — the exact
  /// SuperblockSimulator::step() semantics (partial-block tails, the
  /// observed-run path).  Throws SimError on a trap.
  bool step_lane(unsigned lane);

  /// One full superblock pass at `row` for every lane in `mask`
  /// (callers guarantee each has budget >= the block's min_budget),
  /// chaining through further blocks while the cohort stays unanimous.
  /// Retired-instruction counts accumulate in the dense `instrs` array
  /// (hot-loop friendly); halted/trapped flags land in `out`.
  void execute_block(uint32_t row, uint32_t mask, std::vector<LaneProgress>& out,
                     std::array<uint64_t, kMaxLanes>& instrs,
                     std::array<uint64_t, kMaxLanes>& remaining, uint32_t& active);

  [[nodiscard]] ternary::BctWord9 lane_word(int reg, unsigned lane) const;
  [[nodiscard]] int32_t lane_int(int reg, unsigned lane) const;

  std::shared_ptr<const DecodedImage> image_;
  const PackedOp* prows_;
  const SuperblockPlan* plan_;
  unsigned lanes_;
  // Transposed register file: per architectural register, 9 trit-plane
  // pairs spanning all lanes.
  std::array<ternary::bitsliced::SlicedWord9, isa::kNumRegisters> trf_{};
  // Transposed data memory: one sliced word per row, bit i = lane i's
  // private TDM.  Access counters stay per lane (ArchState contract).
  std::vector<ternary::bitsliced::SlicedWord9> stdm_;
  std::array<uint64_t, kMaxLanes> mem_reads_{};
  std::array<uint64_t, kMaxLanes> mem_writes_{};
  std::array<uint32_t, kMaxLanes> row_{};  // per-lane fetch row (pc derives)
};

}  // namespace art9::sim
