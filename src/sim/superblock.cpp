#include "sim/superblock.hpp"

#include <string>
#include <utility>

#include "sim/packed_alu.hpp"
#include "ternary/packed.hpp"

namespace art9::sim {

using ternary::BctWord9;
namespace pk = ternary::packed;

namespace {

/// Data-processing kinds with register-only operands (no immediate word),
/// the fusable second halves of kLoadOp.
[[nodiscard]] constexpr bool is_reg_alu(DispatchKind k) noexcept {
  return static_cast<uint8_t>(k) <= static_cast<uint8_t>(DispatchKind::kComp);
}

/// The fused second op of kLoadOp: one shared register-only TALU cell
/// (kMv..kComp — the immediate forms never fuse, so no operand word).
/// Must stay in lock-step with packed_alu.hpp / the packed run() handlers.
[[nodiscard]] BctWord9 reg_alu(DispatchKind kind, const BctWord9& a, const BctWord9& b) {
  switch (kind) {
    case DispatchKind::kMv:
      return b;
    case DispatchKind::kPti:
      return b.pti();
    case DispatchKind::kNti:
      return b.nti();
    case DispatchKind::kSti:
      return b.sti();
    case DispatchKind::kAnd:
      return BctWord9::tand(a, b);
    case DispatchKind::kOr:
      return BctWord9::tor(a, b);
    case DispatchKind::kXor:
      return BctWord9::txor(a, b);
    case DispatchKind::kAdd:
      return pk::add(a, b);
    case DispatchKind::kSub:
      return pk::sub(a, b);
    case DispatchKind::kSr:
      return a.shr(pk::shift_amount(b));
    case DispatchKind::kSl:
      return a.shl(pk::shift_amount(b));
    case DispatchKind::kComp:
      return pk::comp_word(a, b);
    default:
      throw SimError("superblock: non-register kind in fused ALU slot");
  }
}

// The first 18 SuperOpKind values mirror DispatchKind so unfused body
// translation is a cast.
static_assert(static_cast<uint8_t>(SuperOpKind::kMv) == static_cast<uint8_t>(DispatchKind::kMv) &&
                  static_cast<uint8_t>(SuperOpKind::kLi) ==
                      static_cast<uint8_t>(DispatchKind::kLi),
              "SuperOpKind must mirror DispatchKind's data-processing kinds");

/// Copies the operand fields a body/terminator slot shares with its
/// source packed row.
[[nodiscard]] SuperOp from_packed(const PackedOp& p, uint32_t row) noexcept {
  SuperOp s;
  s.word_neg = p.word_neg;
  s.word_pos = p.word_pos;
  s.imm = p.imm;
  s.ta = p.ta;
  s.tb = p.tb;
  s.bcond = p.bcond;
  s.pc = p.pc;
  s.self_row = static_cast<uint16_t>(row);
  s.next_row = p.next_row;
  s.taken_row = p.taken_row;
  return s;
}

/// Fused LUI+LI / LUI+ADDI result planes, computed at translation time.
/// LI keeps the LUI result's high four trits and inserts imm5 (the LUI
/// word's low five trits are zero, so the planes simply OR); ADDI is a
/// value-domain add of the LUI result and the numeric immediate.
[[nodiscard]] BctWord9 fuse_const(const PackedOp& lui, const PackedOp& second) {
  if (second.kind == DispatchKind::kLi) {
    return BctWord9::from_planes_unchecked(lui.word_neg | second.word_neg,
                                           lui.word_pos | second.word_pos);
  }
  return pk::add_int(lui.word(), second.imm);
}

[[nodiscard]] std::shared_ptr<const SuperblockPlan> build_plan(const PackedOp* rows,
                                                               std::size_t n_rows) {
  auto plan = std::make_shared<SuperblockPlan>();
  plan->blocks.resize(n_rows);
  plan->ops.reserve(n_rows + n_rows / 4);

  for (std::size_t r0 = 0; r0 < n_rows; ++r0) {
    Superblock& blk = plan->blocks[r0];
    blk.first_op = static_cast<uint32_t>(plan->ops.size());
    uint32_t consumed = 0;  // source instructions in the body so far
    uint32_t row = static_cast<uint32_t>(r0);
    for (;;) {
      const PackedOp& p = rows[row];

      // Terminators end the scan; their retire contribution is the part
      // of blk.retires the budget clamp and the batched commit see.
      if (p.kind == DispatchKind::kBeq || p.kind == DispatchKind::kBne) {
        SuperOp t = from_packed(p, row);
        t.kind = SuperOpKind::kBranch;
        if (p.kind == DispatchKind::kBne) t.flags |= SuperOp::kFlagBne;
        plan->ops.push_back(t);
        blk.retires += 1;
        break;
      }
      if (p.kind == DispatchKind::kJal) {
        SuperOp t = from_packed(p, row);
        t.kind = SuperOpKind::kJal;
        plan->ops.push_back(t);
        blk.retires += 1;
        break;
      }
      if (p.kind == DispatchKind::kJalr) {
        SuperOp t = from_packed(p, row);
        t.kind = SuperOpKind::kJalr;
        plan->ops.push_back(t);
        blk.retires += 1;  // the halting self-jump subtracts this at run time
        break;
      }
      if (p.kind == DispatchKind::kHalt) {
        SuperOp t = from_packed(p, row);
        t.kind = SuperOpKind::kHalt;
        plan->ops.push_back(t);
        break;
      }
      if (p.kind == DispatchKind::kInvalid) {
        SuperOp t = from_packed(p, row);
        t.kind = SuperOpKind::kTrap;
        plan->ops.push_back(t);
        break;
      }
      if (consumed >= SuperblockPlan::kMaxBlockInstructions) {
        // Length cap: chain to the block starting at this (unconsumed) row.
        SuperOp t;
        t.kind = SuperOpKind::kFallthrough;
        t.pc = p.pc;
        t.self_row = static_cast<uint16_t>(row);
        t.next_row = static_cast<uint16_t>(row);
        plan->ops.push_back(t);
        break;
      }

      const PackedOp& q = rows[p.next_row];

      // COMP + BEQ/BNE on the comparison result: one fused terminator.
      if (p.kind == DispatchKind::kComp &&
          (q.kind == DispatchKind::kBeq || q.kind == DispatchKind::kBne) && q.tb == p.ta) {
        SuperOp t = from_packed(q, p.next_row);
        t.kind = SuperOpKind::kCmpBranch;
        t.ta = p.ta;  // comp writes ta; the branch tests the same register
        t.tb = p.tb;
        if (q.kind == DispatchKind::kBne) t.flags |= SuperOp::kFlagBne;
        plan->ops.push_back(t);
        blk.retires += 2;
        ++plan->fused_cmp_branch;
        break;
      }

      if (consumed + 2 <= SuperblockPlan::kMaxBlockInstructions) {
        // LUI + LI/ADDI over the same register: the constant is fully
        // static — one kConst with precomputed planes.
        if (p.kind == DispatchKind::kLui &&
            (q.kind == DispatchKind::kLi || q.kind == DispatchKind::kAddi) && q.ta == p.ta) {
          SuperOp s = from_packed(p, row);
          s.kind = SuperOpKind::kConst;
          const BctWord9 value = fuse_const(p, q);
          s.word_neg = static_cast<uint16_t>(value.neg_plane());
          s.word_pos = static_cast<uint16_t>(value.pos_plane());
          plan->ops.push_back(s);
          blk.retires += 2;
          consumed += 2;
          row = q.next_row;
          ++plan->fused_const;
          continue;
        }
        // LOAD + register ALU op consuming the loaded value: one dispatch.
        if (p.kind == DispatchKind::kLoad && is_reg_alu(q.kind) && q.tb == p.ta) {
          SuperOp s = from_packed(p, row);
          s.kind = SuperOpKind::kLoadOp;
          s.kind2 = static_cast<uint8_t>(q.kind);
          s.ta2 = q.ta;
          s.tb2 = q.tb;
          plan->ops.push_back(s);
          blk.retires += 2;
          blk.mem_reads += 1;
          consumed += 2;
          row = q.next_row;
          ++plan->fused_load_op;
          continue;
        }
        // ADDI + ADDI… on the same register: fold the whole run's
        // immediates into one at translation time.  Exact because
        // (a+i1)+i2 == a+wrap(i1+i2) mod 3^9 — the intermediate wraps
        // are immaterial, and the fast path never exposes mid-block
        // states (a partial budget steps the unfused slow path).
        if (p.kind == DispatchKind::kAddi && q.kind == DispatchKind::kAddi && q.ta == p.ta) {
          SuperOp s = from_packed(p, row);
          s.kind = SuperOpKind::kAddiChain;
          int32_t folded = pk::wrap(static_cast<int32_t>(p.imm) + q.imm);
          uint32_t length = 2;
          uint32_t next = q.next_row;
          while (consumed + length < SuperblockPlan::kMaxBlockInstructions) {
            const PackedOp& n = rows[next];
            if (n.kind != DispatchKind::kAddi || n.ta != p.ta) break;
            folded = pk::wrap(folded + n.imm);
            next = n.next_row;
            ++length;
          }
          s.imm = static_cast<int16_t>(folded);  // wrapped, so it fits int16
          // Refresh the operand planes (from_packed copied the first
          // link's): backends that add the immediate as a broadcast word
          // (the fleet tier) read the folded value from here.
          const BctWord9 folded_word = pk::from_int(folded);
          s.word_neg = static_cast<uint16_t>(folded_word.neg_plane());
          s.word_pos = static_cast<uint16_t>(folded_word.pos_plane());
          s.kind2 = static_cast<uint8_t>(length);
          plan->ops.push_back(s);
          blk.retires += length;
          consumed += length;
          row = next;
          ++plan->fused_addi_chain;
          continue;
        }
      }

      // Plain body op.
      SuperOp s = from_packed(p, row);
      if (p.kind == DispatchKind::kLoad) {
        s.kind = SuperOpKind::kLoad;
        blk.mem_reads += 1;
      } else if (p.kind == DispatchKind::kStore) {
        s.kind = SuperOpKind::kStore;
        blk.mem_writes += 1;
      } else {
        s.kind = static_cast<SuperOpKind>(p.kind);  // kMv..kLi mirror
      }
      plan->ops.push_back(s);
      blk.retires += 1;
      consumed += 1;
      row = p.next_row;
    }
    // Entry clamp: a halt/trap terminator retires nothing but still needs
    // one budget slot to be *attempted* — the golden model reports
    // kMaxCycles when the budget dies exactly at the body's end.
    const SuperOpKind term = plan->ops.back().kind;
    blk.min_budget =
        blk.retires +
        ((term == SuperOpKind::kHalt || term == SuperOpKind::kTrap) ? 1 : 0);
  }
  plan->ops.shrink_to_fit();
  return plan;
}

}  // namespace

const SuperblockPlan& DecodedImage::superblocks() const {
  std::call_once(superblocks_once_,
                 [this] { superblocks_ = build_plan(packed_rows(), rows()); });
  return *superblocks_;
}

// ---------------------------------------------------------------------------
// SuperblockSimulator.
// ---------------------------------------------------------------------------

SuperblockSimulator::SuperblockSimulator(const isa::Program& program)
    : SuperblockSimulator(decode(program)) {}

SuperblockSimulator::SuperblockSimulator(std::shared_ptr<const DecodedImage> image)
    : image_(std::move(image)), prows_(image_->packed_rows()), plan_(&image_->superblocks()) {
  for (const isa::DataWord& d : image_->program().data) {
    tdm_.poke(d.address, BctWord9::encode(d.value));
  }
  pc_ = image_->program().entry;
  row_ = DecodedImage::row_of(pc_);
}

// The per-instruction slow path: the observed-run and partial-block
// semantics, kept in lock-step with PackedFunctionalSimulator::step()
// (the differential suite runs both).
bool SuperblockSimulator::step() {
  const PackedOp& op = prows_[row_];
  BctWord9* const trf = trf_.data();
  const std::size_t ta = op.ta;
  const std::size_t tb = op.tb;
  switch (op.kind) {
    case DispatchKind::kBeq:
    case DispatchKind::kBne: {
      const bool eq = trf[tb].lst_value() == op.bcond;
      const bool taken = op.kind == DispatchKind::kBeq ? eq : !eq;
      if (taken) {
        pc_ = op.taken_pc;
        row_ = op.taken_row;
      } else {
        pc_ = op.next_pc;
        row_ = op.next_row;
      }
      return true;
    }
    case DispatchKind::kHalt:
      return false;
    case DispatchKind::kJal:
      trf[ta] = op.word();  // the pre-packed link
      pc_ = op.taken_pc;
      row_ = op.taken_row;
      return true;
    case DispatchKind::kJalr: {
      const int32_t target = pk::wrap(pk::to_int(trf[tb]) + op.imm);
      if (target == op.pc) return false;  // self-jump = halt (no link write)
      trf[ta] = op.word();
      pc_ = target;
      row_ = pk::row_of(target);
      return true;
    }
    case DispatchKind::kLoad: {
      const int32_t addr = pk::to_int(trf[tb]) + op.imm;
      trf[ta] = tdm_.read_row(pk::row_of(addr));
      break;
    }
    case DispatchKind::kStore: {
      const int32_t addr = pk::to_int(trf[tb]) + op.imm;
      tdm_.write_row(pk::row_of(addr), trf[ta]);
      break;
    }
    case DispatchKind::kInvalid:
      throw SimError("fetch from uninitialised TIM address " + std::to_string(op.pc));
    default:
      trf[ta] = packed_alu(op, trf[ta], trf[tb]);
      break;
  }
  pc_ = op.next_pc;
  row_ = op.next_row;
  return true;
}

SimStats SuperblockSimulator::run(uint64_t max_instructions) {
  bool halted = false;
  uint64_t executed = run_blocks(max_instructions, halted);
  // Partial-block tail: the fast loop only enters a block when the whole
  // block fits the remaining budget; what is left (at most one block's
  // worth of instructions) is stepped exactly.
  while (!halted && executed < max_instructions) {
    if (!step()) {
      halted = true;
      break;
    }
    ++executed;
  }
  SimStats stats;
  stats.instructions = executed;
  stats.cycles = executed;
  stats.halt = halted ? HaltReason::kHalted : HaltReason::kMaxCycles;
  return stats;
}

// Threaded dispatch (computed goto) is a GNU extension; other compilers
// fall back to the portable step() loop, as in packed_sim.cpp.
#if defined(__GNUC__) || defined(__clang__)
#define ART9_SB_THREADED_DISPATCH 1
#endif

#if ART9_SB_THREADED_DISPATCH

uint64_t SuperblockSimulator::run_blocks(uint64_t max_instructions, bool& halted) {
  // Block-chained threaded dispatch: the budget is checked once per
  // *block* (entry is clamped so a block never half-fits), body handlers
  // advance a flat op pointer instead of chasing rows, and the
  // terminator commits the block's precomputed retire/TDM deltas in one
  // shot before jumping to the successor block.
  static const void* const kHandlers[] = {
      &&h_mv,     &&h_pti,       &&h_nti,  &&h_sti,        &&h_and,  &&h_or,
      &&h_xor,    &&h_add,       &&h_sub,  &&h_sr,         &&h_sl,   &&h_comp,
      &&h_andi,   &&h_addi,      &&h_sri,  &&h_sli,        &&h_lui,  &&h_li,
      &&h_load,   &&h_store,     &&h_const, &&h_load_op, &&h_addi_chain,
      &&h_branch, &&h_cmp_branch, &&h_jal, &&h_jalr,
      &&h_fallthrough, &&h_halt, &&h_trap,
  };
  static_assert(sizeof(kHandlers) / sizeof(kHandlers[0]) ==
                    static_cast<std::size_t>(SuperOpKind::kTrap) + 1,
                "handler table must cover every SuperOpKind");

  const Superblock* const blocks = plan_->blocks.data();
  const SuperOp* const ops = plan_->ops.data();
  const PackedOp* const rows = prows_;
  BctWord9* const trf = trf_.data();
  BctWord9* const mem = tdm_.data();
  uint32_t row = static_cast<uint32_t>(row_);
  uint64_t executed = 0;
  uint64_t mem_reads = 0;
  uint64_t mem_writes = 0;
  const Superblock* blk;
  const SuperOp* op;

// Enter the block at `r`: exit on budget exhaustion; bail to the
// per-instruction tail when the block no longer fits the remainder
// (keeping run() exact, fused intermediate states included).
#define ART9_SB_ENTER(r)                                        \
  do {                                                          \
    row = (r);                                                  \
    if (executed >= max_instructions) goto done;                \
    blk = blocks + row;                                            \
    if (max_instructions - executed < blk->min_budget) goto done;  \
    op = ops + blk->first_op;                                   \
    goto* kHandlers[static_cast<uint8_t>(op->kind)];            \
  } while (0)
#define ART9_SB_NEXT() \
  ++op;                \
  goto* kHandlers[static_cast<uint8_t>(op->kind)]
// Batched per-block accounting, committed once by each terminator.
#define ART9_SB_RETIRE()       \
  executed += blk->retires;    \
  mem_reads += blk->mem_reads; \
  mem_writes += blk->mem_writes

  ART9_SB_ENTER(row);

h_mv:
  trf[op->ta] = trf[op->tb];
  ART9_SB_NEXT();
h_pti:
  trf[op->ta] = trf[op->tb].pti();
  ART9_SB_NEXT();
h_nti:
  trf[op->ta] = trf[op->tb].nti();
  ART9_SB_NEXT();
h_sti:
  trf[op->ta] = trf[op->tb].sti();
  ART9_SB_NEXT();
h_and:
  trf[op->ta] = BctWord9::tand(trf[op->ta], trf[op->tb]);
  ART9_SB_NEXT();
h_or:
  trf[op->ta] = BctWord9::tor(trf[op->ta], trf[op->tb]);
  ART9_SB_NEXT();
h_xor:
  trf[op->ta] = BctWord9::txor(trf[op->ta], trf[op->tb]);
  ART9_SB_NEXT();
h_add:
  trf[op->ta] = pk::add(trf[op->ta], trf[op->tb]);
  ART9_SB_NEXT();
h_sub:
  trf[op->ta] = pk::sub(trf[op->ta], trf[op->tb]);
  ART9_SB_NEXT();
h_sr:
  trf[op->ta] = trf[op->ta].shr(pk::shift_amount(trf[op->tb]));
  ART9_SB_NEXT();
h_sl:
  trf[op->ta] = trf[op->ta].shl(pk::shift_amount(trf[op->tb]));
  ART9_SB_NEXT();
h_comp:
  trf[op->ta] = pk::comp_word(trf[op->ta], trf[op->tb]);
  ART9_SB_NEXT();
h_andi:
  trf[op->ta] = BctWord9::tand(trf[op->ta], op->word());
  ART9_SB_NEXT();
h_addi:
  trf[op->ta] = pk::add_int(trf[op->ta], op->imm);
  ART9_SB_NEXT();
h_sri:
  trf[op->ta] = trf[op->ta].shr(static_cast<unsigned>(static_cast<int>(op->imm)));
  ART9_SB_NEXT();
h_sli:
  trf[op->ta] = trf[op->ta].shl(static_cast<unsigned>(static_cast<int>(op->imm)));
  ART9_SB_NEXT();
h_lui:
  trf[op->ta] = op->word();
  ART9_SB_NEXT();
h_li: {
  constexpr uint32_t kHigh4 = BctWord9::kMask & ~0x1Fu;
  trf[op->ta] = BctWord9::from_planes_unchecked((trf[op->ta].neg_plane() & kHigh4) | op->word_neg,
                                                (trf[op->ta].pos_plane() & kHigh4) | op->word_pos);
  ART9_SB_NEXT();
}
h_load: {
  const int32_t addr = pk::to_int(trf[op->tb]) + op->imm;
  trf[op->ta] = mem[pk::row_of(addr)];  // counter delta batched per block
  ART9_SB_NEXT();
}
h_store: {
  const int32_t addr = pk::to_int(trf[op->tb]) + op->imm;
  mem[pk::row_of(addr)] = trf[op->ta];
  ART9_SB_NEXT();
}
h_const:
  trf[op->ta] = op->word();  // the fused LUI+LI/ADDI result, precomputed
  ART9_SB_NEXT();
h_load_op: {
  const int32_t addr = pk::to_int(trf[op->tb]) + op->imm;
  trf[op->ta] = mem[pk::row_of(addr)];
  trf[op->ta2] = reg_alu(static_cast<DispatchKind>(op->kind2), trf[op->ta2], trf[op->tb2]);
  ART9_SB_NEXT();
}
h_addi_chain:
  // The whole ADDI run in one value-domain add (immediates pre-folded).
  trf[op->ta] = pk::add_int(trf[op->ta], op->imm);
  ART9_SB_NEXT();
h_branch: {
  const bool eq = trf[op->tb].lst_value() == op->bcond;
  const bool taken = (op->flags & SuperOp::kFlagBne) ? !eq : eq;
  ART9_SB_RETIRE();
  ART9_SB_ENTER(taken ? op->taken_row : op->next_row);
}
h_cmp_branch: {
  const BctWord9 r = pk::comp_word(trf[op->ta], trf[op->tb]);
  trf[op->ta] = r;
  const bool eq = r.lst_value() == op->bcond;
  const bool taken = (op->flags & SuperOp::kFlagBne) ? !eq : eq;
  ART9_SB_RETIRE();
  ART9_SB_ENTER(taken ? op->taken_row : op->next_row);
}
h_jal:
  trf[op->ta] = op->word();  // the pre-packed link
  ART9_SB_RETIRE();
  ART9_SB_ENTER(op->taken_row);
h_jalr: {
  const int32_t target = pk::wrap(pk::to_int(trf[op->tb]) + op->imm);
  if (target == op->pc) {
    // Self-jump = halt: it never retires, so back its entry-clamp share
    // out of the batched count.
    executed += blk->retires - 1;
    mem_reads += blk->mem_reads;
    mem_writes += blk->mem_writes;
    row = op->self_row;
    halted = true;
    goto done;
  }
  trf[op->ta] = op->word();
  ART9_SB_RETIRE();
  ART9_SB_ENTER(static_cast<uint32_t>(pk::row_of(target)));
}
h_fallthrough:
  ART9_SB_RETIRE();
  ART9_SB_ENTER(op->next_row);
h_halt:
  ART9_SB_RETIRE();  // body only; the halt pseudo-op never retires
  row = op->self_row;
  halted = true;
  goto done;
h_trap:
  ART9_SB_RETIRE();  // the body did execute — commit before throwing
  row_ = op->self_row;
  pc_ = op->pc;
  tdm_.add_counters(mem_reads, mem_writes);
  throw SimError("fetch from uninitialised TIM address " + std::to_string(op->pc));

done:

#undef ART9_SB_ENTER
#undef ART9_SB_NEXT
#undef ART9_SB_RETIRE

  row_ = row;
  pc_ = rows[row].pc;
  tdm_.add_counters(mem_reads, mem_writes);
  return executed;
}

#else  // !ART9_SB_THREADED_DISPATCH — portable fallback: defer everything
       // to run()'s exact per-instruction tail loop.

uint64_t SuperblockSimulator::run_blocks(uint64_t, bool&) { return 0; }

#endif  // ART9_SB_THREADED_DISPATCH

ArchState SuperblockSimulator::unpack_state() const {
  ArchState out;
  for (int i = 0; i < isa::kNumRegisters; ++i) {
    out.trf.write(i, trf_[static_cast<std::size_t>(i)].decode());
  }
  out.tdm = tdm_.unpack();
  out.pc = pc_;
  return out;
}

void SuperblockSimulator::restore(const ArchState& state) {
  for (int i = 0; i < isa::kNumRegisters; ++i) {
    trf_[static_cast<std::size_t>(i)] = BctWord9::encode(state.trf.read(i));
  }
  tdm_ = PackedMemory{};
  for (int64_t addr = -ternary::Word9::kMaxValue; addr <= ternary::Word9::kMaxValue; ++addr) {
    const ternary::Word9& w = state.tdm.peek(addr);
    if (w == ternary::Word9{}) continue;  // zero rows match the default
    tdm_.poke(addr, BctWord9::encode(w));
  }
  tdm_.set_counters(state.tdm.reads(), state.tdm.writes());
  pc_ = state.pc;
  row_ = DecodedImage::row_of(pc_);
}

ternary::Word9 SuperblockSimulator::reg(int index) const {
  return trf_.at(static_cast<std::size_t>(index)).decode();
}

int64_t SuperblockSimulator::reg_int(int index) const { return reg(index).to_int(); }

}  // namespace art9::sim
