// The cycle-accurate 5-stage pipeline model (paper Fig. 4), factored into
// control logic and datapath.
//
// PipelineModel<Datapath> owns everything that decides *when* things
// happen: the IF/ID/EX/MEM/WB latch advance, the hazard detection unit,
// the forwarding mux selects, branch resolution, squash/stall accounting,
// tracing and the retire hook.  The Datapath policy owns *what* flows
// through the latches: the word type, the register file and data memory,
// and the TALU/address/link/condition evaluations.
//
// Two datapaths instantiate the model:
//  * ReferencePipelineDatapath (pipeline.hpp) — ternary::Word9 payloads
//    over the reference RegFile/TernaryMemory; the golden cycle-accurate
//    model;
//  * PackedPipelineDatapath (packed_pipeline.hpp) — plane-packed
//    PackedWord<9> payloads over a packed TRF and PackedMemory, every EX
//    evaluation a handful of branchless plane/table operations.
//
// Because the control logic is shared *by construction*, both
// instantiations produce bit-identical cycle, stall, squash and
// prediction counts, identical CycleTrace streams and identical retired-
// instruction observer streams on every PipelineConfig combination —
// locked by tests/sim/packed_pipeline_test.cpp and trace_golden_test.cpp.
//
// Latches carry `const DecodedOp*` into the immutable DecodedImage rather
// than Instruction copies, so stage advance is pointer moves, static
// control-flow targets come precomputed (taken_pc/next_pc/link), and the
// EX stage executes through the pre-decoded TALU overload — no immediate
// re-encoding per cycle on either datapath.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "isa/program.hpp"
#include "sim/decoded_image.hpp"
#include "sim/machine.hpp"
#include "sim/trace.hpp"

namespace art9::sim {

struct PipelineConfig {
  /// EX/MEM + MEM/WB -> TALU operand bypass.  Off: RAW hazards stall in ID.
  bool ex_forwarding = true;
  /// One-trit condition bypass (EX combinational + EX/MEM + MEM/WB) into
  /// the ID condition checker, and 9-trit EX/MEM + MEM/WB bypass for the
  /// JALR base.  Off: branches/JALR stall until the producer retires.
  bool id_forwarding = true;
  /// TRF write in WB is visible to ID reads in the same cycle
  /// (read-during-write bypass inside the register file).  Off: the HDU
  /// must also interlock distance-3 RAW hazards for one cycle (the write
  /// lands at the clock edge, after the ID read).
  bool regfile_write_through = true;
  /// Resolve branches in ID (paper's design, 1 taken-branch bubble).
  /// Off: resolve in EX (2 bubbles) — the ablation baseline.
  bool branch_in_id = true;
  /// Extension (not in the paper): static prediction in IF — backward
  /// conditional branches predict taken and JAL targets are folded into
  /// the fetch, removing the bubble when the prediction holds.  Requires
  /// branch_in_id (ignored otherwise).
  bool static_prediction = false;
  /// Cycle budget for run().
  uint64_t max_cycles = 50'000'000;
};

namespace detail {

template <class Datapath>
class PipelineModel {
 public:
  using Word = typename Datapath::Word;

  /// Runs off a shared pre-decoded image.  `image` must be non-null.
  explicit PipelineModel(std::shared_ptr<const DecodedImage> image, PipelineConfig config)
      : config_(config), image_(std::move(image)), dp_(*image_) {}

  /// Advances one clock cycle.  Returns false on the cycle the HALT
  /// instruction retires (that cycle is included in the statistics).
  bool step();

  /// Runs to halt or the cycle budget (config.max_cycles).
  SimStats run() { return run(config_.max_cycles); }

  /// Runs to halt or until `stats().cycles` reaches `max_cycles`,
  /// overriding config.max_cycles — the Engine facade's budget seam.
  SimStats run(uint64_t max_cycles) {
    while (stats_.cycles < max_cycles) {
      if (!step()) return stats_;
    }
    stats_.halt = HaltReason::kMaxCycles;
    return stats_;
  }

  [[nodiscard]] const SimStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const PipelineConfig& config() const noexcept { return config_; }

  /// The pre-decoded image this simulator executes.
  [[nodiscard]] const DecodedImage& image() const noexcept { return *image_; }

  /// The datapath policy instance (register file, memory, PC).
  [[nodiscard]] Datapath& datapath() noexcept { return dp_; }
  [[nodiscard]] const Datapath& datapath() const noexcept { return dp_; }

  /// Architectural checkpoint at an instruction boundary: drains the
  /// in-flight instructions (the not-yet-issued IF/ID entry is squashed,
  /// older stages complete — a few extra cycles accrue to stats()), then
  /// returns the architectural state with `pc` on the next unexecuted
  /// instruction.  The pipeline itself is left restarted at that same
  /// boundary, so checkpoint() is observable only in the cycle counters:
  /// the retired-instruction stream and final architectural state of a
  /// checkpointed run match the uninterrupted run exactly.
  [[nodiscard]] ArchState checkpoint() {
    const int64_t resume_pc = drain_to_boundary();
    ArchState snapshot = dp_.arch_state();
    snapshot.pc = resume_pc;
    restore_state(snapshot);
    return snapshot;
  }

  /// Adopts `state` as the architectural state and restarts the pipeline
  /// empty at state.pc (the snapshot-restore seam: `state` may come from
  /// any other engine kind's checkpoint).
  void restore_state(const ArchState& state) {
    dp_.load_state(state);
    ifid_ = IfId{};
    idex_ = IdEx{};
    exmem_ = ExMem{};
    memwb_ = MemWb{};
    fetch_stopped_ = false;
    halted_ = false;
  }

  /// Streams a CycleTrace per clock to `observer` (pass nullptr to stop).
  void set_tracer(TraceObserver observer) { tracer_ = std::move(observer); }

  /// Fires once per retired instruction in WB (the HALT pseudo-op never
  /// retires), with the 0-based retirement index.  One branch per cycle
  /// when unset; the sim::Engine facade adapts this to its Observer.
  using RetireObserver = std::function<void(const isa::Instruction&, int64_t pc, uint64_t index)>;
  void set_retire_observer(RetireObserver observer) { retire_observer_ = std::move(observer); }

 private:
  struct IfId {
    bool valid = false;
    bool poisoned = false;  // fetched from uninitialised TIM (wrong path)
    bool predicted_taken = false;  // static prediction applied at fetch
    const DecodedOp* op = nullptr;
  };
  struct IdEx {
    bool valid = false;
    bool is_halt = false;  // recognised halt convention; performs no writes
    const DecodedOp* op = nullptr;
    Word a{};  // TRF[Ta] as read in ID
    Word b{};  // TRF[Tb] as read in ID
  };
  struct ExMem {
    bool valid = false;
    bool is_halt = false;
    const DecodedOp* op = nullptr;
    Word result{};     // ALU result / link value / memory address
    Word store_val{};  // STORE data
  };
  struct MemWb {
    bool valid = false;
    bool is_halt = false;
    const DecodedOp* op = nullptr;
    Word result{};  // value for the TRF write port
  };

  /// True if the latched instruction writes a TRF register when it retires.
  /// The statically-folded halt (kHalt) never does; a *dynamic* JALR halt
  /// still counts as a writer for hazard/forwarding purposes until its
  /// is_halt latch bit suppresses the retire — matching the hardware,
  /// where the HDU sees only the opcode fields.
  [[nodiscard]] static bool writes_reg(const DecodedOp* op) {
    return op->writes_ta && op->kind != DispatchKind::kHalt;
  }
  [[nodiscard]] static int64_t pc_of(const DecodedOp* op) { return op ? op->pc : 0; }
  [[nodiscard]] static const isa::Instruction& inst_of(const DecodedOp* op) {
    static const isa::Instruction kEmpty{};
    return op ? op->inst : kEmpty;
  }

  /// checkpoint()'s drain: squashes the unissued IF/ID entry, stops
  /// fetch, and clocks until EX/MEM/WB are empty (at most three cycles —
  /// ID is empty, so no stall can hold an older stage).  Returns the PC
  /// the drained machine resumes from: the squashed entry's own PC, the
  /// target of a control-flow redirect an in-flight op resolves while
  /// draining (branch-in-EX mode), or — if the HALT retires during the
  /// drain, or already has — the halt instruction's PC, matching the
  /// functional kinds' convention of resting ON the halt.
  [[nodiscard]] int64_t drain_to_boundary() {
    if (halted_) return halt_pc_;
    int64_t resume_pc = ifid_.valid ? ifid_.op->pc : dp_.pc();
    ifid_ = IfId{};
    fetch_stopped_ = true;
    while (idex_.valid || exmem_.valid || memwb_.valid) {
      const uint64_t flushes_before = stats_.flush_taken_branch;
      if (!step()) return halt_pc_;
      if (stats_.flush_taken_branch != flushes_before) resume_pc = dp_.pc();
    }
    return resume_pc;
  }

  PipelineConfig config_;
  SimStats stats_;

  std::shared_ptr<const DecodedImage> image_;
  Datapath dp_;

  IfId ifid_;
  IdEx idex_;
  ExMem exmem_;
  MemWb memwb_;

  bool fetch_stopped_ = false;
  bool halted_ = false;   // the HALT retired; halt_pc_ is its address
  int64_t halt_pc_ = 0;   // (dp_.pc() stops past it — checkpoint needs the op's own PC)
  TraceObserver tracer_;
  RetireObserver retire_observer_;
};

template <class Datapath>
bool PipelineModel<Datapath>::step() {
  ++stats_.cycles;

  CycleTrace trace;
  if (tracer_) {
    trace.cycle = stats_.cycles;
    trace.fetch_active = !fetch_stopped_;
    trace.fetch_pc = dp_.pc();
    trace.stages[0] = {ifid_.valid, pc_of(ifid_.op), inst_of(ifid_.op)};
    trace.stages[1] = {idex_.valid, pc_of(idex_.op), inst_of(idex_.op)};
    trace.stages[2] = {exmem_.valid, pc_of(exmem_.op), inst_of(exmem_.op)};
    trace.stages[3] = {memwb_.valid, pc_of(memwb_.op), inst_of(memwb_.op)};
  }

  // ==== WB =================================================================
  // Executes "first" so that, with regfile_write_through, the ID reads
  // later this cycle observe the write (read-during-write bypass).
  bool retire_halt = false;
  struct PendingWrite {
    bool valid = false;
    int rd = 0;
    Word value{};
  } pending_write;
  if (memwb_.valid) {
    if (memwb_.is_halt) {
      retire_halt = true;
      halted_ = true;
      halt_pc_ = memwb_.op->pc;
    } else {
      ++stats_.instructions;
      if (retire_observer_) retire_observer_(memwb_.op->inst, memwb_.op->pc, stats_.instructions - 1);
      if (writes_reg(memwb_.op)) {
        if (config_.regfile_write_through) {
          dp_.write_reg(memwb_.op->inst.ta, memwb_.result);
        } else {
          pending_write = {true, memwb_.op->inst.ta, memwb_.result};
        }
      }
    }
  }

  // ==== MEM ================================================================
  MemWb memwb_next;
  if (exmem_.valid) {
    memwb_next.valid = true;
    memwb_next.is_halt = exmem_.is_halt;
    memwb_next.op = exmem_.op;
    if (exmem_.op->kind == DispatchKind::kLoad) {
      memwb_next.result = dp_.mem_load(exmem_.result);
    } else if (exmem_.op->kind == DispatchKind::kStore) {
      dp_.mem_store(exmem_.result, exmem_.store_val);
    } else {
      memwb_next.result = exmem_.result;
    }
  }

  // ==== EX =================================================================
  // Operand forwarding.  Priority: EX/MEM (distance 1), MEM/WB (distance
  // 2); distance 3 is covered by the write-through read in ID (or by a
  // one-cycle interlock when write-through is disabled).
  auto forward_operand = [&](int reg, const Word& id_read) -> Word {
    if (config_.ex_forwarding) {
      if (exmem_.valid && writes_reg(exmem_.op) && exmem_.op->inst.ta == reg &&
          exmem_.op->kind != DispatchKind::kLoad) {
        return exmem_.result;
      }
      if (memwb_.valid && writes_reg(memwb_.op) && memwb_.op->inst.ta == reg) {
        return memwb_.result;
      }
    }
    return id_read;
  };

  ExMem exmem_next;
  bool ex_redirect = false;       // branch_in_id == false: EX resolves control flow
  int64_t ex_redirect_target = 0;
  bool ex_sees_halt = false;
  // EX combinational result, visible to the ID condition checker this cycle.
  bool ex_value_ready = false;
  Word ex_value{};
  int ex_value_rd = -1;
  if (idex_.valid) {
    const DecodedOp& op = *idex_.op;
    const isa::OpcodeSpec& s = isa::spec(op.inst.op);
    const Word a = s.reads_ta ? forward_operand(op.inst.ta, idex_.a) : idex_.a;
    const Word b = s.reads_tb ? forward_operand(op.inst.tb, idex_.b) : idex_.b;

    exmem_next.valid = true;
    exmem_next.is_halt = idex_.is_halt;
    exmem_next.op = idex_.op;
    switch (op.kind) {
      case DispatchKind::kLoad:
      case DispatchKind::kStore:
        exmem_next.result = dp_.addr_word(b, op.inst.imm);
        exmem_next.store_val = a;
        break;
      case DispatchKind::kHalt:
      case DispatchKind::kJal:
      case DispatchKind::kJalr:
        exmem_next.result = dp_.link(op);
        if (!config_.branch_in_id && !idex_.is_halt) {
          if (op.kind == DispatchKind::kHalt) {
            ex_sees_halt = true;
            exmem_next.is_halt = true;
          } else if (op.kind == DispatchKind::kJal) {
            ex_redirect = true;
            ex_redirect_target = op.taken_pc;
          } else {
            const int64_t target = dp_.jalr_target(b, op.inst.imm);
            if (target == op.pc) {
              ex_sees_halt = true;
              exmem_next.is_halt = true;
            } else {
              ex_redirect = true;
              ex_redirect_target = target;
            }
          }
        }
        break;
      case DispatchKind::kBeq:
      case DispatchKind::kBne:
        if (!config_.branch_in_id) {
          const bool eq = Datapath::lst(b) == op.inst.bcond.value();
          const bool taken = op.kind == DispatchKind::kBeq ? eq : !eq;
          if (taken) {
            ex_redirect = true;
            ex_redirect_target = op.taken_pc;
          }
        }
        break;
      default:
        exmem_next.result = dp_.alu(op, a, b);
        break;
    }
    if (writes_reg(idex_.op) && op.kind != DispatchKind::kLoad && !exmem_next.is_halt) {
      ex_value_ready = true;
      ex_value = exmem_next.result;
      ex_value_rd = op.inst.ta;
    }
  }

  // ==== ID =================================================================
  IdEx idex_next;
  bool stall = false;
  CycleEvent stall_kind = CycleEvent::kNone;
  bool id_redirect = false;
  int64_t id_redirect_target = 0;
  bool id_sees_halt = false;

  // A poisoned entry only traps if nothing squashes it this cycle (an
  // EX-resolved redirect may still kill it); checked after the IF section.
  const bool poison_pending = ifid_.valid && ifid_.poisoned;
  if (ifid_.valid && !ifid_.poisoned) {
    const DecodedOp& op = *ifid_.op;
    const isa::OpcodeSpec& s = isa::spec(op.inst.op);

    // Is `reg` produced by an instruction still in flight (for stall
    // decisions)?  `allow_exmem`/`allow_memwb` say whether a forwarding
    // path can cover that distance for this consumer.
    auto in_flight_hazard = [&](int reg, bool allow_ex_fwd, bool allow_exmem_fwd,
                                bool allow_memwb_fwd) -> bool {
      if (idex_.valid && writes_reg(idex_.op) && idex_.op->inst.ta == reg) {
        if (idex_.op->kind == DispatchKind::kLoad) return true;  // data not ready before MEM
        if (!allow_ex_fwd) return true;
      }
      if (exmem_.valid && writes_reg(exmem_.op) && exmem_.op->inst.ta == reg) {
        // A load's data is being read from the TDM this very cycle; an ID
        // consumer cannot see it until it lands in MEM/WB.
        if (exmem_.op->kind == DispatchKind::kLoad) return true;
        if (!allow_exmem_fwd) return true;
      }
      if (memwb_.valid && writes_reg(memwb_.op) && memwb_.op->inst.ta == reg) {
        // With write-through, WB already updated the TRF this cycle.
        if (!config_.regfile_write_through && !allow_memwb_fwd) return true;
      }
      return false;
    };

    // --- EX-stage operand hazards (ALU/memory consumers) -----------------
    const bool needs_a_in_ex = s.reads_ta;
    const bool needs_b_in_ex =
        s.reads_tb && !(config_.branch_in_id && (s.is_branch || op.kind == DispatchKind::kJalr));
    uint64_t* stall_counter = nullptr;
    if (config_.ex_forwarding) {
      // Only load-use distance-1 stalls remain.
      auto load_use = [&](int reg) {
        return idex_.valid && idex_.op->kind == DispatchKind::kLoad && idex_.op->inst.ta == reg;
      };
      if ((needs_a_in_ex && load_use(op.inst.ta)) || (needs_b_in_ex && load_use(op.inst.tb))) {
        stall = true;
        stall_counter = &stats_.stall_load_use;
        stall_kind = CycleEvent::kLoadUseStall;
      }
    } else {
      if ((needs_a_in_ex && in_flight_hazard(op.inst.ta, false, false, false)) ||
          (needs_b_in_ex && in_flight_hazard(op.inst.tb, false, false, false))) {
        stall = true;
        stall_counter = &stats_.stall_raw;
        stall_kind = CycleEvent::kRawStall;
      }
    }
    // Without the read-during-write bypass, a distance-3 producer is
    // writing the TRF this very cycle: the stale ID read must retry.
    if (!stall && !config_.regfile_write_through) {
      auto wb_now = [&](int reg) {
        return memwb_.valid && writes_reg(memwb_.op) && memwb_.op->inst.ta == reg;
      };
      if ((needs_a_in_ex && wb_now(op.inst.ta)) || (needs_b_in_ex && wb_now(op.inst.tb))) {
        stall = true;
        stall_counter = &stats_.stall_raw;
        stall_kind = CycleEvent::kRawStall;
      }
    }

    // --- ID-stage consumers: branch condition and JALR base --------------
    Word id_b_value{};  // resolved TRF[Tb] for ID-stage use
    if (!stall && config_.branch_in_id && (s.is_branch || op.kind == DispatchKind::kJalr)) {
      const bool is_jalr = op.kind == DispatchKind::kJalr;
      // JALR's 9-trit base has no EX combinational bypass (long path —
      // paper forwards only the one-trit condition from EX).
      const bool allow_ex_fwd = config_.id_forwarding && !is_jalr;
      const bool allow_exmem_fwd = config_.id_forwarding;
      const bool allow_memwb_fwd = config_.id_forwarding;
      if (in_flight_hazard(op.inst.tb, allow_ex_fwd, allow_exmem_fwd, allow_memwb_fwd)) {
        stall = true;
        stall_counter = &stats_.stall_branch_hazard;
        stall_kind = CycleEvent::kBranchHazardStall;
      } else {
        // Resolve the value through the allowed paths, newest first.
        if (allow_ex_fwd && ex_value_ready && ex_value_rd == op.inst.tb) {
          id_b_value = ex_value;
        } else if (config_.id_forwarding && exmem_.valid && writes_reg(exmem_.op) &&
                   exmem_.op->inst.ta == op.inst.tb && exmem_.op->kind != DispatchKind::kLoad) {
          id_b_value = exmem_.result;
        } else if (!config_.regfile_write_through && config_.id_forwarding && memwb_.valid &&
                   writes_reg(memwb_.op) && memwb_.op->inst.ta == op.inst.tb) {
          id_b_value = memwb_.result;
        } else {
          id_b_value = dp_.read_reg(op.inst.tb);
        }
      }
    }

    if (stall) {
      ++*stall_counter;
    } else {
      // Control-flow resolution in ID.
      if (op.kind == DispatchKind::kHalt) {
        id_sees_halt = true;
      } else if (config_.branch_in_id) {
        switch (op.kind) {
          case DispatchKind::kBeq:
          case DispatchKind::kBne: {
            const bool eq = Datapath::lst(id_b_value) == op.inst.bcond.value();
            const bool taken = op.kind == DispatchKind::kBeq ? eq : !eq;
            if (taken != ifid_.predicted_taken) {
              id_redirect = true;
              id_redirect_target = taken ? op.taken_pc : op.next_pc;
              if (ifid_.predicted_taken) ++stats_.predictions_wrong;
            } else if (ifid_.predicted_taken) {
              ++stats_.predictions_correct;  // bubble avoided
            }
            break;
          }
          case DispatchKind::kJal:
            if (ifid_.predicted_taken) {
              ++stats_.predictions_correct;  // target folded into the fetch
            } else {
              id_redirect = true;
              id_redirect_target = op.taken_pc;
            }
            break;
          case DispatchKind::kJalr: {
            const int64_t target = dp_.jalr_target(id_b_value, op.inst.imm);
            if (target == op.pc) {
              id_sees_halt = true;
            } else {
              id_redirect = true;
              id_redirect_target = target;
            }
            break;
          }
          default:
            break;
        }
      }
      idex_next.valid = true;
      idex_next.is_halt = id_sees_halt;
      idex_next.op = ifid_.op;
      idex_next.a = dp_.read_reg(op.inst.ta);
      idex_next.b = dp_.read_reg(op.inst.tb);
    }
  }

  // ==== IF =================================================================
  IfId ifid_next;
  int64_t pc_next = dp_.pc();
  if (ex_redirect || ex_sees_halt) {
    // EX-resolved control flow (ablation mode): squash both younger stages.
    ifid_next.valid = false;
    idex_next = IdEx{};
    if (ex_redirect) {
      pc_next = ex_redirect_target;
      stats_.flush_taken_branch += 2;
    }
    if (ex_sees_halt) fetch_stopped_ = true;
  } else if (stall) {
    // Hold PC and IF/ID; a bubble (already-empty idex_next) enters EX.
    ifid_next = ifid_;
  } else {
    if (id_sees_halt) fetch_stopped_ = true;
    if (id_redirect) {
      // The instruction fetched this cycle is wrong-path: squash it.
      ifid_next.valid = false;
      pc_next = id_redirect_target;
      ++stats_.flush_taken_branch;
    } else if (!fetch_stopped_) {
      const DecodedOp& fetched = image_->fetch(dp_.pc());
      const bool ok = fetched.kind != DispatchKind::kInvalid;
      ifid_next.valid = true;
      ifid_next.poisoned = !ok;
      ifid_next.op = &fetched;
      pc_next = fetched.next_pc;
      // Extension: static prediction at fetch — backward conditional
      // branches predict taken and JAL targets are folded into the fetch.
      // (A JAL row can only carry kJal here: the imm == 0 halt was folded
      // to kHalt.)
      if (config_.static_prediction && config_.branch_in_id && ok) {
        const bool backward_branch =
            (fetched.kind == DispatchKind::kBeq || fetched.kind == DispatchKind::kBne) &&
            fetched.inst.imm < 0;
        const bool direct_jump = fetched.kind == DispatchKind::kJal;
        if (backward_branch || direct_jump) {
          ifid_next.predicted_taken = true;
          pc_next = fetched.taken_pc;
        }
      }
    }
  }

  if (poison_pending && !(ex_redirect || ex_sees_halt)) {
    throw SimError("executing instruction fetched from uninitialised TIM at pc " +
                   std::to_string(ifid_.op->pc));
  }

  // ==== commit clock edge ==================================================
  if (pending_write.valid) dp_.write_reg(pending_write.rd, pending_write.value);
  dp_.set_pc(pc_next);
  ifid_ = ifid_next;
  idex_ = idex_next;
  exmem_ = exmem_next;
  memwb_ = memwb_next;

  if (tracer_) {
    if (retire_halt || id_sees_halt || ex_sees_halt) {
      trace.event = CycleEvent::kHaltSeen;
    } else if (id_redirect || ex_redirect) {
      trace.event = CycleEvent::kTakenBranchFlush;
    } else if (stall) {
      trace.event = stall_kind;
    }
    tracer_(trace);
  }

  if (retire_halt) {
    stats_.halt = HaltReason::kHalted;
    return false;
  }
  return true;
}

}  // namespace detail
}  // namespace art9::sim
