#include "sim/fleet.hpp"

#include <bit>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/packed_alu.hpp"
#include "ternary/packed.hpp"

namespace art9::sim {

using ternary::BctWord9;
namespace pk = ternary::packed;
namespace bs = ternary::bitsliced;

namespace {

[[nodiscard]] inline unsigned first_lane(uint32_t mask) noexcept {
  return static_cast<unsigned>(std::countr_zero(mask));
}

/// The bit-sliced mirror of superblock.cpp's reg_alu — the fused second
/// half of kLoadOp, applied to every lane of the cohort at once.
[[nodiscard]] bs::SlicedWord9 sliced_reg_alu(DispatchKind kind, const bs::SlicedWord9& a,
                                             const bs::SlicedWord9& b) {
  switch (kind) {
    case DispatchKind::kMv:
      return b;
    case DispatchKind::kPti:
      return bs::pti(b);
    case DispatchKind::kNti:
      return bs::nti(b);
    case DispatchKind::kSti:
      return bs::sti(b);
    case DispatchKind::kAnd:
      return bs::tand(a, b);
    case DispatchKind::kOr:
      return bs::tor(a, b);
    case DispatchKind::kXor:
      return bs::txor(a, b);
    case DispatchKind::kAdd:
      return bs::add(a, b);
    case DispatchKind::kSub:
      return bs::sub(a, b);
    case DispatchKind::kSr:
      return bs::shr_var(a, b);
    case DispatchKind::kSl:
      return bs::shl_var(a, b);
    case DispatchKind::kComp:
      return bs::comp(a, b);
    default:
      throw SimError("fleet: non-register kind in fused ALU slot");
  }
}

}  // namespace

FleetSimulator::FleetSimulator(const isa::Program& program, unsigned lanes)
    : FleetSimulator(decode(program), lanes) {}

FleetSimulator::FleetSimulator(std::shared_ptr<const DecodedImage> image, unsigned lanes)
    : image_(std::move(image)), prows_(nullptr), plan_(nullptr), lanes_(lanes) {
  if (!image_) throw std::invalid_argument("FleetSimulator: null image");
  if (lanes_ < 1 || lanes_ > kMaxLanes) {
    throw std::invalid_argument("FleetSimulator: lanes must be in [1, " +
                                std::to_string(kMaxLanes) + "]");
  }
  prows_ = image_->packed_rows();
  plan_ = &image_->superblocks();
  stdm_.resize(static_cast<std::size_t>(PackedMemory::kRows));
  // Every lane boots with the same image, so data words broadcast.
  for (const isa::DataWord& d : image_->program().data) {
    stdm_[TernaryMemory::row_of(d.address)] = bs::broadcast(BctWord9::encode(d.value));
  }
  row_.fill(static_cast<uint32_t>(DecodedImage::row_of(image_->program().entry)));
}

BctWord9 FleetSimulator::lane_word(int reg, unsigned lane) const {
  return bs::extract_lane(trf_[static_cast<std::size_t>(reg)], lane);
}

int32_t FleetSimulator::lane_int(int reg, unsigned lane) const {
  return pk::to_int(lane_word(reg, lane));
}

// The per-lane slow path: gather/scatter against the sliced TRF, but
// instruction for instruction the SuperblockSimulator::step() semantics
// (which the conformance suite locks against the golden model).  Used
// for partial-block budget tails and the observed-run engine path.
bool FleetSimulator::step_lane(unsigned lane) {
  const PackedOp& op = prows_[row_[lane]];
  const int ta = op.ta;
  const int tb = op.tb;
  switch (op.kind) {
    case DispatchKind::kBeq:
    case DispatchKind::kBne: {
      const bool eq = lane_word(tb, lane).lst_value() == op.bcond;
      const bool taken = op.kind == DispatchKind::kBeq ? eq : !eq;
      row_[lane] = taken ? op.taken_row : op.next_row;
      return true;
    }
    case DispatchKind::kHalt:
      return false;
    case DispatchKind::kJal:
      bs::insert_lane(trf_[static_cast<std::size_t>(ta)], lane, op.word());
      row_[lane] = op.taken_row;
      return true;
    case DispatchKind::kJalr: {
      const int32_t target = pk::wrap(lane_int(tb, lane) + op.imm);
      if (target == op.pc) return false;  // self-jump = halt (no link write)
      bs::insert_lane(trf_[static_cast<std::size_t>(ta)], lane, op.word());
      row_[lane] = static_cast<uint32_t>(pk::row_of(target));
      return true;
    }
    case DispatchKind::kLoad: {
      const int32_t addr = lane_int(tb, lane) + op.imm;
      ++mem_reads_[lane];
      bs::copy_lane(trf_[static_cast<std::size_t>(ta)], stdm_[pk::row_of(addr)], lane);
      break;
    }
    case DispatchKind::kStore: {
      const int32_t addr = lane_int(tb, lane) + op.imm;
      ++mem_writes_[lane];
      bs::copy_lane(stdm_[pk::row_of(addr)], trf_[static_cast<std::size_t>(ta)], lane);
      break;
    }
    case DispatchKind::kInvalid:
      throw SimError("fetch from uninitialised TIM address " + std::to_string(op.pc));
    default:
      bs::insert_lane(trf_[static_cast<std::size_t>(ta)], lane,
                      packed_alu(op, lane_word(ta, lane), lane_word(tb, lane)));
      break;
  }
  row_[lane] = op.next_row;
  return true;
}

// One full superblock pass for every lane in `mask` — every body op is
// one set of plane operations over the whole cohort; only TDM traffic
// and JALR targets gather/scatter per lane.  Callers guarantee each
// masked lane has remaining budget >= blk.min_budget, so the pass is
// exact (the same all-or-nothing entry clamp as the scalar fast loop).
void FleetSimulator::execute_block(uint32_t row, uint32_t mask, std::vector<LaneProgress>& out,
                                   std::array<uint64_t, kMaxLanes>& instrs,
                                   std::array<uint64_t, kMaxLanes>& remaining, uint32_t& active) {
  bs::SlicedWord9* const trf = trf_.data();
  const Superblock* blkp = &plan_->blocks[row];

  // Batched block accounting per completing lane; `fewer` backs retires
  // out (the halting JALR's entry-clamp share).  A lane whose budget
  // hits zero leaves the active set.  `min_remaining` (over the lanes
  // just retired) is what block chaining tests against the next block's
  // min_budget — >= 1 there implies no lane was exhausted.  The full
  // 32-lane cohort takes the dense scan-free loop (vectorisable).
  uint64_t min_remaining = 0;
  const auto retire = [&](uint32_t lanes, uint32_t fewer = 0) {
    const uint64_t d = blkp->retires - fewer;
    min_remaining = UINT64_MAX;
    if (lanes == ~0u) {
      for (unsigned i = 0; i < kMaxLanes; ++i) {
        instrs[i] += d;
        remaining[i] -= d;
        mem_reads_[i] += blkp->mem_reads;
        mem_writes_[i] += blkp->mem_writes;
        min_remaining = remaining[i] < min_remaining ? remaining[i] : min_remaining;
      }
      if (min_remaining > 0) return;  // nobody exhausted (the common case)
    }
    for (uint32_t scan = lanes; scan != 0; scan &= scan - 1) {
      const unsigned i = first_lane(scan);
      if (lanes != ~0u) {
        instrs[i] += d;
        remaining[i] -= d;
        mem_reads_[i] += blkp->mem_reads;
        mem_writes_[i] += blkp->mem_writes;
        if (remaining[i] < min_remaining) min_remaining = remaining[i];
      }
      if (remaining[i] == 0) active &= ~(1u << i);
    }
  };
  const auto set_rows = [&](uint32_t lanes, uint32_t target) {
    for (uint32_t scan = lanes; scan != 0; scan &= scan - 1) row_[first_lane(scan)] = target;
  };

  // Lockstep block chaining: while every mask lane agrees on one
  // successor and the tightest remaining budget still fits it, dispatch
  // straight into the next block — no cohort re-formation in advance(),
  // no row_ writes (rows are only materialised when the cohort breaks).
  uint32_t next_row = 0;
  for (;;) {
    const SuperOp* op = plan_->ops.data() + blkp->first_op;
    for (;; ++op) {
      switch (op->kind) {
      // --- body ops: one plane operation for the whole cohort ------------
      case SuperOpKind::kMv:
        bs::assign_masked(trf[op->ta], trf[op->tb], mask);
        break;
      case SuperOpKind::kPti:
        bs::assign_masked(trf[op->ta], bs::pti(trf[op->tb]), mask);
        break;
      case SuperOpKind::kNti:
        bs::assign_masked(trf[op->ta], bs::nti(trf[op->tb]), mask);
        break;
      case SuperOpKind::kSti:
        bs::assign_masked(trf[op->ta], bs::sti(trf[op->tb]), mask);
        break;
      case SuperOpKind::kAnd:
        bs::assign_masked(trf[op->ta], bs::tand(trf[op->ta], trf[op->tb]), mask);
        break;
      case SuperOpKind::kOr:
        bs::assign_masked(trf[op->ta], bs::tor(trf[op->ta], trf[op->tb]), mask);
        break;
      case SuperOpKind::kXor:
        bs::assign_masked(trf[op->ta], bs::txor(trf[op->ta], trf[op->tb]), mask);
        break;
      case SuperOpKind::kAdd:
        bs::assign_masked(trf[op->ta], bs::add(trf[op->ta], trf[op->tb]), mask);
        break;
      case SuperOpKind::kSub:
        bs::assign_masked(trf[op->ta], bs::sub(trf[op->ta], trf[op->tb]), mask);
        break;
      case SuperOpKind::kSr:
        bs::assign_masked(trf[op->ta], bs::shr_var(trf[op->ta], trf[op->tb]), mask);
        break;
      case SuperOpKind::kSl:
        bs::assign_masked(trf[op->ta], bs::shl_var(trf[op->ta], trf[op->tb]), mask);
        break;
      case SuperOpKind::kComp:
        bs::assign_masked(trf[op->ta], bs::comp(trf[op->ta], trf[op->tb]), mask);
        break;
      case SuperOpKind::kAndi:
        bs::assign_masked(trf[op->ta], bs::tand(trf[op->ta], bs::broadcast(op->word())), mask);
        break;
      case SuperOpKind::kAddi:
      case SuperOpKind::kAddiChain:
        // Exact: adding the pre-encoded (wrapped) immediate word mod 3^9
        // is add_int.  The plan carries the planes, so no re-encode here.
        bs::assign_masked(trf[op->ta], bs::add(trf[op->ta], bs::broadcast(op->word())), mask);
        break;
      case SuperOpKind::kSri:
        bs::assign_masked(trf[op->ta],
                          bs::shr(trf[op->ta], static_cast<unsigned>(static_cast<int>(op->imm))),
                          mask);
        break;
      case SuperOpKind::kSli:
        bs::assign_masked(trf[op->ta],
                          bs::shl(trf[op->ta], static_cast<unsigned>(static_cast<int>(op->imm))),
                          mask);
        break;
      case SuperOpKind::kLui:
      case SuperOpKind::kConst:
        bs::assign_masked(trf[op->ta], bs::broadcast(op->word()), mask);
        break;
      case SuperOpKind::kLi: {
        // Keep the high four trits, insert the pre-packed imm5 planes.
        bs::SlicedWord9 r = trf[op->ta];
        for (unsigned t = 0; t < 5; ++t) {
          r.neg[t] = 0u - ((static_cast<uint32_t>(op->word_neg) >> t) & 1u);
          r.pos[t] = 0u - ((static_cast<uint32_t>(op->word_pos) >> t) & 1u);
        }
        bs::assign_masked(trf[op->ta], r, mask);
        break;
      }
      // Counter deltas for the memory ops are batched per block (retire),
      // as on the scalar fast path.  A uniform address register — the
      // lockstep common case — collapses the whole cohort's TDM traffic
      // to one masked plane copy against the transposed memory.
      case SuperOpKind::kLoad:
        if (bs::uniform(trf[op->tb], mask)) {
          const int32_t addr =
              pk::to_int(bs::extract_lane(trf[op->tb], first_lane(mask))) + op->imm;
          bs::assign_masked(trf[op->ta], stdm_[pk::row_of(addr)], mask);
        } else {
          for (uint32_t scan = mask; scan != 0; scan &= scan - 1) {
            const unsigned i = first_lane(scan);
            const int32_t addr = lane_int(op->tb, i) + op->imm;
            bs::copy_lane(trf[op->ta], stdm_[pk::row_of(addr)], i);
          }
        }
        break;
      case SuperOpKind::kStore:
        if (bs::uniform(trf[op->tb], mask)) {
          const int32_t addr =
              pk::to_int(bs::extract_lane(trf[op->tb], first_lane(mask))) + op->imm;
          bs::assign_masked(stdm_[pk::row_of(addr)], trf[op->ta], mask);
        } else {
          for (uint32_t scan = mask; scan != 0; scan &= scan - 1) {
            const unsigned i = first_lane(scan);
            const int32_t addr = lane_int(op->tb, i) + op->imm;
            bs::copy_lane(stdm_[pk::row_of(addr)], trf[op->ta], i);
          }
        }
        break;
      case SuperOpKind::kLoadOp: {
        if (bs::uniform(trf[op->tb], mask)) {
          const int32_t addr =
              pk::to_int(bs::extract_lane(trf[op->tb], first_lane(mask))) + op->imm;
          bs::assign_masked(trf[op->ta], stdm_[pk::row_of(addr)], mask);
        } else {
          for (uint32_t scan = mask; scan != 0; scan &= scan - 1) {
            const unsigned i = first_lane(scan);
            const int32_t addr = lane_int(op->tb, i) + op->imm;
            bs::copy_lane(trf[op->ta], stdm_[pk::row_of(addr)], i);
          }
        }
        bs::assign_masked(
            trf[op->ta2],
            sliced_reg_alu(static_cast<DispatchKind>(op->kind2), trf[op->ta2], trf[op->tb2]),
            mask);
        break;
      }

      // --- terminators: reconcile the cohort, one group per successor ----
      case SuperOpKind::kBranch: {
        const uint32_t eq = bs::lst_eq_mask(trf[op->tb], op->bcond);
        const uint32_t taken = ((op->flags & SuperOp::kFlagBne) ? ~eq : eq) & mask;
        retire(mask);
        if (taken == mask || taken == 0) {
          next_row = taken != 0 ? op->taken_row : op->next_row;
          goto chain;
        }
        set_rows(taken, op->taken_row);
        set_rows(mask & ~taken, op->next_row);
        return;
      }
      case SuperOpKind::kCmpBranch: {
        const bs::SlicedWord9 r = bs::comp(trf[op->ta], trf[op->tb]);
        bs::assign_masked(trf[op->ta], r, mask);
        const uint32_t eq = bs::lst_eq_mask(r, op->bcond);
        const uint32_t taken = ((op->flags & SuperOp::kFlagBne) ? ~eq : eq) & mask;
        retire(mask);
        if (taken == mask || taken == 0) {
          next_row = taken != 0 ? op->taken_row : op->next_row;
          goto chain;
        }
        set_rows(taken, op->taken_row);
        set_rows(mask & ~taken, op->next_row);
        return;
      }
      case SuperOpKind::kJal:
        bs::assign_masked(trf[op->ta], bs::broadcast(op->word()), mask);
        retire(mask);
        next_row = op->taken_row;
        goto chain;
      case SuperOpKind::kJalr: {
        // Uniform target register — the lockstep case — decides the whole
        // cohort with one extraction (computed before the link write; ta
        // may alias tb).
        if (bs::uniform(trf[op->tb], mask)) {
          const int32_t target =
              pk::wrap(pk::to_int(bs::extract_lane(trf[op->tb], first_lane(mask))) + op->imm);
          if (target == op->pc) {
            // Self-jump = halt: never retires, back out the entry clamp.
            retire(mask, 1);
            set_rows(mask, op->self_row);
            for (uint32_t scan = mask; scan != 0; scan &= scan - 1) {
              out[first_lane(scan)].halted = true;
            }
            active &= ~mask;
            return;
          }
          bs::assign_masked(trf[op->ta], bs::broadcast(op->word()), mask);
          retire(mask);
          next_row = static_cast<uint32_t>(pk::row_of(target));
          goto chain;
        }
        // Per-lane dynamic targets: gather all of them before the link
        // write (ta may alias tb), then split halting vs jumping lanes.
        std::array<int32_t, kMaxLanes> target{};
        uint32_t halting = 0;
        for (uint32_t scan = mask; scan != 0; scan &= scan - 1) {
          const unsigned i = first_lane(scan);
          target[i] = pk::wrap(lane_int(op->tb, i) + op->imm);
          if (target[i] == op->pc) halting |= 1u << i;
        }
        const uint32_t jumping = mask & ~halting;
        bs::assign_masked(trf[op->ta], bs::broadcast(op->word()), jumping);
        retire(jumping);
        for (uint32_t scan = jumping; scan != 0; scan &= scan - 1) {
          const unsigned i = first_lane(scan);
          row_[i] = static_cast<uint32_t>(pk::row_of(target[i]));
        }
        // Self-jump = halt: it never retires, so back its entry-clamp
        // share out of the batched count (mirrors the scalar h_jalr).
        retire(halting, 1);
        for (uint32_t scan = halting; scan != 0; scan &= scan - 1) {
          const unsigned i = first_lane(scan);
          row_[i] = op->self_row;
          out[i].halted = true;
        }
        active &= ~halting;
        return;
      }
      case SuperOpKind::kFallthrough:
        retire(mask);
        next_row = op->next_row;
        goto chain;
      case SuperOpKind::kHalt:
        retire(mask);  // body only; the halt pseudo-op never retires
        set_rows(mask, op->self_row);
        for (uint32_t scan = mask; scan != 0; scan &= scan - 1) {
          out[first_lane(scan)].halted = true;
        }
        active &= ~mask;
        return;
      case SuperOpKind::kTrap:
        retire(mask);  // the body did execute — commit before reporting
        set_rows(mask, op->self_row);
        for (uint32_t scan = mask; scan != 0; scan &= scan - 1) {
          const unsigned i = first_lane(scan);
          out[i].trapped = true;
          out[i].trap_message =
              "fetch from uninitialised TIM address " + std::to_string(op->pc);
        }
        active &= ~mask;
        return;
      }
    }
  chain:
    // min_remaining >= min_budget >= 1 also certifies no lane exhausted
    // its budget in the block just retired.
    if (min_remaining < plan_->blocks[next_row].min_budget) {
      set_rows(mask, next_row);
      return;
    }
    blkp = &plan_->blocks[next_row];
  }
}

std::vector<FleetSimulator::LaneProgress> FleetSimulator::advance(
    const std::vector<uint64_t>& budgets) {
  if (budgets.size() != lanes_) {
    throw std::invalid_argument("FleetSimulator::advance: one budget per lane");
  }
  std::vector<LaneProgress> out(lanes_);
  std::array<uint64_t, kMaxLanes> instrs{};
  std::array<uint64_t, kMaxLanes> remaining{};
  uint32_t active = 0;
  for (unsigned i = 0; i < lanes_; ++i) {
    remaining[i] = budgets[i];
    if (budgets[i] > 0) active |= 1u << i;
  }

  while (active != 0) {
    // Cohort = every active lane resting on the leader's superblock; the
    // common case (lockstep fleet) gathers all lanes in one pass.
    const uint32_t row = row_[first_lane(active)];
    const Superblock& blk = plan_->blocks[row];
    uint32_t cohort = 0;
    uint32_t fast = 0;
    for (uint32_t scan = active; scan != 0; scan &= scan - 1) {
      const unsigned i = first_lane(scan);
      if (row_[i] != row) continue;
      cohort |= 1u << i;
      if (remaining[i] >= blk.min_budget) fast |= 1u << i;
    }
    if (fast != 0) execute_block(row, fast, out, instrs, remaining, active);
    // Budget tail: a lane the block no longer fits finishes per
    // instruction — the same exactness contract as the scalar run().
    for (uint32_t scan = cohort & ~fast; scan != 0; scan &= scan - 1) {
      const unsigned i = first_lane(scan);
      while (remaining[i] > 0) {
        bool advanced = false;
        try {
          advanced = step_lane(i);
        } catch (const SimError& e) {
          out[i].trapped = true;
          out[i].trap_message = e.what();
          break;
        }
        if (!advanced) {
          out[i].halted = true;
          break;
        }
        ++instrs[i];
        --remaining[i];
      }
      active &= ~(1u << i);
    }
  }
  for (unsigned i = 0; i < lanes_; ++i) out[i].instructions = instrs[i];
  return out;
}

bool FleetSimulator::step() { return step_lane(0); }

SimStats FleetSimulator::run(uint64_t max_instructions) {
  std::vector<uint64_t> budgets(lanes_, 0);
  budgets[0] = max_instructions;
  const std::vector<LaneProgress> progress = advance(budgets);
  const LaneProgress& p = progress[0];
  if (p.trapped) throw SimError(p.trap_message);  // state already committed
  SimStats stats;
  stats.instructions = p.instructions;
  stats.cycles = p.instructions;
  stats.halt = p.halted ? HaltReason::kHalted : HaltReason::kMaxCycles;
  return stats;
}

int64_t FleetSimulator::pc(unsigned lane) const {
  if (lane >= lanes_) throw std::out_of_range("FleetSimulator::pc: lane out of range");
  // row_ and pc stay in bijection (every row carries its canonical
  // balanced address), so the row is the single source of truth.
  return prows_[row_[lane]].pc;
}

ArchState FleetSimulator::unpack_lane(unsigned lane) const {
  if (lane >= lanes_) throw std::out_of_range("FleetSimulator::unpack_lane: lane out of range");
  ArchState out;
  for (int i = 0; i < isa::kNumRegisters; ++i) {
    out.trf.write(i, lane_word(i, lane).decode());
  }
  for (std::size_t r = 0; r < stdm_.size(); ++r) {
    const BctWord9 w = bs::extract_lane(stdm_[r], lane);
    if (w == BctWord9{}) continue;  // zero rows match the default
    out.tdm.poke(static_cast<int64_t>(r) - ternary::Word9::kMaxValue, w.decode());
  }
  out.tdm.set_counters(mem_reads_[lane], mem_writes_[lane]);
  out.pc = pc(lane);
  return out;
}

void FleetSimulator::restore_lane(unsigned lane, const ArchState& state) {
  if (lane >= lanes_) throw std::out_of_range("FleetSimulator::restore_lane: lane out of range");
  for (int i = 0; i < isa::kNumRegisters; ++i) {
    bs::insert_lane(trf_[static_cast<std::size_t>(i)], lane,
                    BctWord9::encode(state.trf.read(i)));
  }
  // Clear this lane's bit of every memory row, then poke the snapshot's
  // nonzero rows back in — other lanes' planes are untouched.
  const uint32_t bit = 1u << lane;
  for (bs::SlicedWord9& r : stdm_) {
    for (unsigned t = 0; t < 9; ++t) {
      r.neg[t] &= ~bit;
      r.pos[t] &= ~bit;
    }
  }
  for (int64_t addr = -ternary::Word9::kMaxValue; addr <= ternary::Word9::kMaxValue; ++addr) {
    const ternary::Word9& w = state.tdm.peek(addr);
    if (w == ternary::Word9{}) continue;  // zero rows match the default
    bs::insert_lane(stdm_[TernaryMemory::row_of(addr)], lane, BctWord9::encode(w));
  }
  mem_reads_[lane] = state.tdm.reads();
  mem_writes_[lane] = state.tdm.writes();
  row_[lane] = static_cast<uint32_t>(DecodedImage::row_of(state.pc));
}

ternary::Word9 FleetSimulator::reg(unsigned lane, int index) const {
  if (lane >= lanes_) throw std::out_of_range("FleetSimulator::reg: lane out of range");
  return lane_word(index, lane).decode();
}

int64_t FleetSimulator::reg_int(unsigned lane, int index) const {
  return reg(lane, index).to_int();
}

}  // namespace art9::sim
