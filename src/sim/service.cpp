#include "sim/service.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <stdexcept>
#include <utility>
#include <variant>

#include "sim/fault_injection.hpp"
#include "sim/fleet.hpp"
#include "sim/snapshot.hpp"

namespace art9::sim {

namespace detail {

/// The shared job record behind JobHandle: immutable inputs, the
/// cooperative cancellation token, and the resolve-once result slot.
struct JobState {
  SimulationService::Job job;
  std::size_t id = 0;
  std::shared_ptr<ServiceCounters> counters;  // set at submit, never null
  std::chrono::steady_clock::time_point deadline_at{};
  bool has_deadline = false;

  std::atomic<bool> cancel{false};
  std::atomic<bool> started{false};

  std::mutex m;
  std::condition_variable cv;
  bool resolving = false;  // result published, callbacks may still be running
  bool done = false;       // result published AND pre-registered callbacks ran
  JobResult result;
  std::vector<std::function<void(const JobResult&)>> callbacks;
};

}  // namespace detail

namespace {

/// Cooperative slice length when JobControls::slice_steps is 0 — long
/// enough to amortize the run_stats call, short enough that cancellation
/// and deadline latency stay in the milliseconds on every backend.
constexpr uint64_t kDefaultSlice = 1u << 20;

void validate_job(const SimulationService::Job& job) {
  const bool null_image = std::visit([](const auto& p) { return p == nullptr; }, job.image);
  if (null_image) throw std::invalid_argument("SimulationService: null image");
  const bool rv32_image = job.image.index() == 1;
  if (is_rv32(job.kind) != rv32_image) {
    throw std::invalid_argument("SimulationService: engine kind does not match the image's ISA");
  }
}

/// Publishes the result exactly once, runs the registered callbacks
/// outside the lock (they may touch other handles), and only then marks
/// the job done — so wait()/result() returning guarantees every
/// previously registered callback has finished.  Callbacks registered
/// after this point run inline in on_complete (`resolving` is set).
/// Corollary: a callback must not block on its own handle.
void resolve(detail::JobState& st, JobResult result) {
  std::vector<std::function<void(const JobResult&)>> callbacks;
  {
    std::lock_guard<std::mutex> lock(st.m);
    if (st.resolving) return;
    st.result = std::move(result);
    st.resolving = true;
    callbacks.swap(st.callbacks);
  }
  // Count the outcome before anyone can observe the result (callbacks,
  // wait, ready): a drained batch's per-outcome counts always sum to the
  // submitted total, with no window where a job is done but uncounted.
  st.counters->outcomes[static_cast<std::size_t>(st.result.outcome)].fetch_add(
      1, std::memory_order_acq_rel);
  st.counters->resolved.fetch_add(1, std::memory_order_acq_rel);
  st.counters->in_flight.fetch_sub(1, std::memory_order_acq_rel);
  for (auto& cb : callbacks) cb(st.result);
  {
    std::lock_guard<std::mutex> lock(st.m);
    st.done = true;
  }
  st.cv.notify_all();
}

/// The last checkpoint a retry may resume from.  Held serialized: the
/// blob is what travels through FaultState::mutate_checkpoint, and
/// deserialize-before-adopt is what turns a corrupt blob into a detected
/// (counted, discarded) one instead of an adopted one.
struct RecoveryPoint {
  bool valid = false;
  std::vector<uint8_t> blob;
  SimStats stats;      // accumulated stats as of the checkpoint
  uint64_t steps = 0;  // budget steps consumed as of the checkpoint
};

/// Attaches the engine's current architectural state if it can still
/// produce one (a trapped packed backend may not decode cleanly).
void attach_state(JobResult& result, Engine* engine) {
  if (engine == nullptr) return;
  try {
    result.run.state = engine->state();
  } catch (const std::exception&) {
    // keep the default state; the outcome + error text still stand
  }
}

void finish(JobResult& res, SimStats stats, HaltReason halt) {
  stats.halt = halt;
  res.run.stats = stats;
  res.run.halt = halt;
}

/// Runs one job to resolution.  Never throws: every failure mode maps to
/// a JobOutcome.
void execute_job(detail::JobState& st) {
  st.counters->in_flight.fetch_add(1, std::memory_order_acq_rel);
  st.started.store(true, std::memory_order_release);
  const SimulationService::Job& job = st.job;

  JobResult res;

  // Pre-dispatch checks: a job can be cancelled or expire while queued.
  if (st.cancel.load(std::memory_order_acquire)) {
    res.outcome = JobOutcome::kCancelled;
    finish(res, {}, HaltReason::kMaxCycles);
    resolve(st, std::move(res));
    return;
  }
  if (st.has_deadline && std::chrono::steady_clock::now() >= st.deadline_at) {
    res.outcome = JobOutcome::kDeadlineExceeded;
    finish(res, {}, HaltReason::kMaxCycles);
    resolve(st, std::move(res));
    return;
  }

  const uint64_t budget = job.run.max_steps;
  const uint64_t slice_len = job.control.slice_steps != 0 ? job.control.slice_steps : kDefaultSlice;
  const uint64_t every = job.control.checkpoint_every;

  // One FaultState per job, shared across retries: a fired fault stays
  // fired on the resumed engine — that is what makes it transient.
  std::shared_ptr<FaultState> fault;
  if (job.control.fault) fault = std::make_shared<FaultState>(*job.control.fault);

  RecoveryPoint rp;
  unsigned attempt = 0;

  for (;;) {
    // Declared outside the try so the catch arms can attach the partial
    // stats/state the attempt accumulated before throwing.
    std::unique_ptr<Engine> engine;
    SimStats acc;
    uint64_t steps = 0;

    try {
      if (rp.valid) {
        // Resume from the last adopted checkpoint: the image supplies
        // code, the snapshot registers/memory/PC.  Re-executed steps are
        // not double-billed — the budget clock rewinds with the state.
        engine = make_engine(job.kind, job.image, deserialize_snapshot(rp.blob), job.engine);
        acc = rp.stats;
        steps = rp.steps;
        res.resumed = true;
      } else {
        engine = make_engine(job.kind, job.image, job.engine);
      }
      if (fault) engine = with_fault_injection(std::move(engine), fault);

      while (steps < budget) {
        if (st.cancel.load(std::memory_order_acquire)) {
          res.outcome = JobOutcome::kCancelled;
          finish(res, acc, HaltReason::kMaxCycles);
          attach_state(res, engine.get());
          resolve(st, std::move(res));
          return;
        }
        if (st.has_deadline && std::chrono::steady_clock::now() >= st.deadline_at) {
          res.outcome = JobOutcome::kDeadlineExceeded;
          finish(res, acc, HaltReason::kMaxCycles);
          attach_state(res, engine.get());
          resolve(st, std::move(res));
          return;
        }

        // Slice end: the cooperative check point, tightened to land
        // exactly on the next checkpoint boundary when checkpointing is
        // on.
        uint64_t stop = std::min(budget, steps + slice_len);
        if (every != 0) stop = std::min(stop, ((steps / every) + 1) * every);

        const SimStats s = engine->run_stats({stop - steps});
        accumulate_stats(acc, s);
        steps += s.cycles;

        if (s.halt == HaltReason::kHalted) {
          res.outcome = JobOutcome::kCompleted;
          finish(res, acc, HaltReason::kHalted);
          attach_state(res, engine.get());
          resolve(st, std::move(res));
          return;
        }
        if (s.cycles == 0) break;  // no forward progress possible; report the budget cut

        if (every != 0 && steps < budget && steps % every == 0) {
          std::vector<uint8_t> blob = serialize_snapshot(engine->checkpoint());
          if (fault) fault->mutate_checkpoint(blob);
          try {
            (void)deserialize_snapshot(blob);  // validate before adopting
            rp.valid = true;
            rp.blob = std::move(blob);
            rp.stats = acc;
            rp.steps = steps;
            ++res.checkpoints;
          } catch (const SimError&) {
            // Corrupt blob detected by the codec checksum: discard it
            // and keep the previous recovery point.
            ++res.corrupt_checkpoints;
          }
        }
      }

      res.outcome = JobOutcome::kBudgetExhausted;
      finish(res, acc, HaltReason::kMaxCycles);
      attach_state(res, engine.get());
      resolve(st, std::move(res));
      return;
    } catch (const TransientFault& e) {
      if (attempt >= job.control.retries) {
        res.outcome = JobOutcome::kFaulted;
        res.error = e.what();
        finish(res, acc, HaltReason::kMaxCycles);
        attach_state(res, engine.get());
        resolve(st, std::move(res));
        return;
      }
      ++attempt;
      res.retries = attempt;
      if (job.control.retry_backoff.count() > 0) {
        std::this_thread::sleep_for(job.control.retry_backoff * (1u << (attempt - 1)));
      }
      // loop: rebuild the engine, resuming from rp when one exists
    } catch (const std::exception& e) {
      // A deterministic program trap (SimError) or anything else the
      // backend raised: replaying would re-trap, so never retried.
      res.outcome = JobOutcome::kTrapped;
      res.error = e.what();
      finish(res, acc, HaltReason::kMaxCycles);
      attach_state(res, engine.get());
      resolve(st, std::move(res));
      return;
    }
  }
}

/// Runs one fleet cohort to resolution: every job becomes one lane of a
/// single FleetSimulator, advanced in per-lane budget slices so
/// cancellation and deadlines stay cooperative lane by lane.  Outcome
/// classification and the attached state/stats are bit-identical to
/// execute_job running each job alone (locked by tests/sim/fleet_test.cpp):
/// a trapping lane resolves with the stats of its last completed slice —
/// exactly where a solo engine's mid-slice throw leaves them — and never
/// tears down its cohort.  Never throws.
void execute_cohort(const std::vector<std::shared_ptr<detail::JobState>>& group) {
  const unsigned n = static_cast<unsigned>(group.size());
  for (const auto& st : group) {
    st->counters->in_flight.fetch_add(1, std::memory_order_acq_rel);
    st->started.store(true, std::memory_order_release);
  }

  std::vector<JobResult> res(n);
  std::vector<SimStats> acc(n);
  std::vector<uint64_t> remaining(n);
  std::vector<uint64_t> slice_len(n);
  std::vector<char> open(n, 1);

  // Pre-dispatch checks per lane — execute_job's, state-free.
  const auto now0 = std::chrono::steady_clock::now();
  for (unsigned i = 0; i < n; ++i) {
    detail::JobState& st = *group[i];
    remaining[i] = st.job.run.max_steps;
    slice_len[i] = st.job.control.slice_steps != 0 ? st.job.control.slice_steps : kDefaultSlice;
    if (st.cancel.load(std::memory_order_acquire)) {
      res[i].outcome = JobOutcome::kCancelled;
      finish(res[i], {}, HaltReason::kMaxCycles);
      resolve(st, std::move(res[i]));
      open[i] = 0;
    } else if (st.has_deadline && now0 >= st.deadline_at) {
      res[i].outcome = JobOutcome::kDeadlineExceeded;
      finish(res[i], {}, HaltReason::kMaxCycles);
      resolve(st, std::move(res[i]));
      open[i] = 0;
    }
  }

  try {
    // submit_cohort validated the shared ART-9 image, so get<> holds.
    FleetSimulator sim(std::get<std::shared_ptr<const DecodedImage>>(group.front()->job.image), n);

    auto settle = [&](unsigned i, JobOutcome outcome, HaltReason halt) {
      res[i].outcome = outcome;
      finish(res[i], acc[i], halt);
      try {
        res[i].run.state = MachineState{sim.unpack_lane(i)};
      } catch (const std::exception&) {
        // keep the default state; the outcome + error text still stand
      }
      resolve(*group[i], std::move(res[i]));
      open[i] = 0;
    };

    std::vector<uint64_t> slice(n, 0);
    for (;;) {
      bool any = false;
      const auto now = std::chrono::steady_clock::now();
      for (unsigned i = 0; i < n; ++i) {
        slice[i] = 0;
        if (!open[i]) continue;
        // Budget first: a job whose budget is spent reports the cut even
        // when a late cancel raced in — execute_job's while-loop order.
        if (remaining[i] == 0) {
          settle(i, JobOutcome::kBudgetExhausted, HaltReason::kMaxCycles);
          continue;
        }
        detail::JobState& st = *group[i];
        if (st.cancel.load(std::memory_order_acquire)) {
          settle(i, JobOutcome::kCancelled, HaltReason::kMaxCycles);
          continue;
        }
        if (st.has_deadline && now >= st.deadline_at) {
          settle(i, JobOutcome::kDeadlineExceeded, HaltReason::kMaxCycles);
          continue;
        }
        slice[i] = std::min(remaining[i], slice_len[i]);
        any = true;
      }
      if (!any) return;

      const std::vector<FleetSimulator::LaneProgress> progress = sim.advance(slice);
      for (unsigned i = 0; i < n; ++i) {
        if (slice[i] == 0 || !open[i]) continue;
        const FleetSimulator::LaneProgress& p = progress[i];
        if (p.trapped) {
          // Stats stop at the previous slice: a solo engine throws
          // mid-slice, so the partial slice never accumulates there.
          res[i].error = p.trap_message;
          settle(i, JobOutcome::kTrapped, HaltReason::kMaxCycles);
          continue;
        }
        acc[i].instructions += p.instructions;
        acc[i].cycles += p.instructions;  // functional kind: cycles == instructions
        remaining[i] -= p.instructions;
        if (p.halted) {
          settle(i, JobOutcome::kCompleted, HaltReason::kHalted);
        } else if (p.instructions == 0) {
          settle(i, JobOutcome::kBudgetExhausted, HaltReason::kMaxCycles);
        }
      }
    }
  } catch (const std::exception& e) {
    // Scheduler-level failure (cohorts carry no retry controls by
    // contract): every still-open lane resolves kTrapped.
    for (unsigned i = 0; i < n; ++i) {
      if (!open[i]) continue;
      res[i].outcome = JobOutcome::kTrapped;
      res[i].error = e.what();
      finish(res[i], acc[i], HaltReason::kMaxCycles);
      resolve(*group[i], std::move(res[i]));
      open[i] = 0;
    }
  }
}

}  // namespace

std::string_view job_outcome_name(JobOutcome outcome) noexcept {
  switch (outcome) {
    case JobOutcome::kCompleted: return "completed";
    case JobOutcome::kTrapped: return "trapped";
    case JobOutcome::kBudgetExhausted: return "budget_exhausted";
    case JobOutcome::kDeadlineExceeded: return "deadline_exceeded";
    case JobOutcome::kCancelled: return "cancelled";
    case JobOutcome::kFaulted: return "faulted";
  }
  return "unknown";
}

// --- JobHandle ---------------------------------------------------------------

namespace {
[[noreturn]] void throw_empty_handle() { throw std::logic_error("JobHandle: empty handle"); }
}  // namespace

std::size_t JobHandle::id() const noexcept { return state_ ? state_->id : 0; }

bool JobHandle::started() const noexcept {
  return state_ && state_->started.load(std::memory_order_acquire);
}

bool JobHandle::ready() const noexcept {
  if (!state_) return false;
  std::lock_guard<std::mutex> lock(state_->m);
  return state_->done;
}

void JobHandle::wait() const {
  if (!state_) throw_empty_handle();
  std::unique_lock<std::mutex> lock(state_->m);
  state_->cv.wait(lock, [this] { return state_->done; });
}

bool JobHandle::wait_for(std::chrono::milliseconds timeout) const {
  if (!state_) throw_empty_handle();
  std::unique_lock<std::mutex> lock(state_->m);
  return state_->cv.wait_for(lock, timeout, [this] { return state_->done; });
}

const JobResult& JobHandle::result() const {
  wait();
  // done is monotone: once set the result never changes, so the
  // reference stays valid for the life of the JobState.
  return state_->result;
}

void JobHandle::cancel() const noexcept {
  if (state_) state_->cancel.store(true, std::memory_order_release);
}

void JobHandle::on_complete(std::function<void(const JobResult&)> callback) const {
  if (!state_) throw_empty_handle();
  {
    std::lock_guard<std::mutex> lock(state_->m);
    if (!state_->resolving) {
      state_->callbacks.push_back(std::move(callback));
      return;
    }
  }
  // Result already published (resolve() may still be draining the
  // earlier registrations on the worker): run inline.
  callback(state_->result);
}

// --- SimulationService -------------------------------------------------------

SimulationService::SimulationService(unsigned threads)
    : threads_(threads != 0 ? threads : std::max(1u, std::thread::hardware_concurrency())) {}

SimulationService::~SimulationService() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void SimulationService::ensure_workers() {
  // Caller holds mutex_.
  if (!workers_.empty() || stopping_) return;
  workers_.reserve(threads_);
  for (unsigned i = 0; i < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void SimulationService::worker_loop() {
  for (;;) {
    WorkItem work;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      work = std::move(queue_.front());
      queue_.pop_front();
    }
    if (work.size() == 1) {
      execute_job(*work.front());
    } else {
      execute_cohort(work);
    }
  }
}

std::size_t SimulationService::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t jobs = 0;
  for (const WorkItem& item : queue_) jobs += item.size();
  return jobs;
}

unsigned SimulationService::worker_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<unsigned>(workers_.size());
}

std::shared_ptr<detail::JobState> SimulationService::make_state(Job job) {
  auto state = std::make_shared<detail::JobState>();
  state->job = std::move(job);
  state->counters = counters_;
  if (state->job.control.deadline.count() > 0) {
    state->has_deadline = true;
    state->deadline_at = std::chrono::steady_clock::now() + state->job.control.deadline;
  }
  return state;
}

void SimulationService::enqueue(WorkItem item) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) throw std::logic_error("SimulationService: submit after shutdown began");
    for (const auto& state : item) {
      state->id = next_id_++;
      // Counted before the push so submitted() >= resolved() always holds
      // (a worker may resolve the job before submit() even returns).
      counters_->submitted.fetch_add(1, std::memory_order_acq_rel);
    }
    queue_.push_back(std::move(item));
    ensure_workers();
  }
  work_cv_.notify_one();
}

JobHandle SimulationService::submit(Job job) {
  validate_job(job);
  std::shared_ptr<detail::JobState> state = make_state(std::move(job));
  JobHandle handle(state);
  enqueue(WorkItem{std::move(state)});
  return handle;
}

std::vector<JobHandle> SimulationService::submit_cohort(std::vector<Job> jobs) {
  if (jobs.empty()) throw std::invalid_argument("SimulationService: empty cohort");
  for (const Job& job : jobs) {
    validate_job(job);
    if (job.kind != EngineKind::kFleet) {
      throw std::invalid_argument("SimulationService: cohort jobs must use the fleet kind");
    }
    if (job.control.checkpoint_every != 0 || job.control.retries != 0 || job.control.fault) {
      throw std::invalid_argument(
          "SimulationService: cohort jobs cannot use checkpointing, retries or fault injection");
    }
  }
  // kFleet is an ART-9 kind, so validate_job guarantees this get<> holds.
  const auto& image = std::get<std::shared_ptr<const DecodedImage>>(jobs.front().image);
  for (const Job& job : jobs) {
    if (std::get<std::shared_ptr<const DecodedImage>>(job.image) != image) {
      throw std::invalid_argument("SimulationService: cohort jobs must share one image");
    }
  }

  std::vector<JobHandle> handles;
  handles.reserve(jobs.size());
  WorkItem item;
  for (Job& job : jobs) {
    item.push_back(make_state(std::move(job)));
    handles.push_back(JobHandle(item.back()));
    if (item.size() == FleetSimulator::kMaxLanes) {
      enqueue(std::move(item));
      item = WorkItem{};
    }
  }
  if (!item.empty()) enqueue(std::move(item));
  return handles;
}

JobHandle SimulationService::submit(std::shared_ptr<const DecodedImage> image, EngineKind kind,
                                    RunOptions run, JobControls control) {
  return submit(Job{EngineImage(std::move(image)), kind, run, {}, std::move(control)});
}

JobHandle SimulationService::submit(std::shared_ptr<const rv32::Rv32DecodedImage> image,
                                    EngineKind kind, RunOptions run, JobControls control) {
  return submit(Job{EngineImage(std::move(image)), kind, run, {}, std::move(control)});
}

std::size_t SimulationService::add(Job job) {
  validate_job(job);
  jobs_.push_back(std::move(job));
  return jobs_.size() - 1;
}

std::size_t SimulationService::add(std::shared_ptr<const DecodedImage> image, EngineKind kind,
                                   RunOptions run) {
  return add(Job{EngineImage(std::move(image)), kind, run, {}, {}});
}

std::size_t SimulationService::add(std::shared_ptr<const rv32::Rv32DecodedImage> image,
                                   EngineKind kind, RunOptions run) {
  return add(Job{EngineImage(std::move(image)), kind, run, {}, {}});
}

std::shared_ptr<const DecodedImage> SimulationService::add(const isa::Program& program,
                                                           EngineKind kind, RunOptions run) {
  std::shared_ptr<const DecodedImage> image = decode(program);
  add(image, kind, run);
  return image;
}

std::shared_ptr<const rv32::Rv32DecodedImage> SimulationService::add(
    const rv32::Rv32Program& program, EngineKind kind, RunOptions run) {
  std::shared_ptr<const rv32::Rv32DecodedImage> image = rv32::decode(program);
  add(image, kind, run);
  return image;
}

std::vector<JobResult> SimulationService::run_all(BatchStats* batch) {
  const auto start = std::chrono::steady_clock::now();

  // Transparent cohort packing: fleet jobs sharing an image and carrying
  // no checkpoint/retry/fault controls ride submit_cohort (bit-identical
  // per-job results, one bit-sliced engine per <= kMaxLanes of them);
  // everything else submits individually.  Handles keep job order.
  std::vector<JobHandle> handles(jobs_.size());
  std::map<const DecodedImage*, std::vector<std::size_t>> cohorts;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const Job& job = jobs_[i];
    const bool packable = job.kind == EngineKind::kFleet &&
                          job.image.index() == 0 && job.control.checkpoint_every == 0 &&
                          job.control.retries == 0 && !job.control.fault;
    if (packable) {
      cohorts[std::get<std::shared_ptr<const DecodedImage>>(job.image).get()].push_back(i);
    } else {
      handles[i] = submit(job);
    }
  }
  for (const auto& entry : cohorts) {
    const std::vector<std::size_t>& indices = entry.second;
    std::vector<Job> group;
    group.reserve(indices.size());
    for (std::size_t i : indices) group.push_back(jobs_[i]);
    std::vector<JobHandle> cohort_handles = submit_cohort(std::move(group));
    for (std::size_t k = 0; k < indices.size(); ++k) {
      handles[indices[k]] = std::move(cohort_handles[k]);
    }
  }

  std::vector<JobResult> results;
  results.reserve(handles.size());
  for (const JobHandle& handle : handles) results.push_back(handle.result());

  if (batch != nullptr) {
    const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - start;
    BatchStats stats;
    stats.threads = static_cast<unsigned>(
        std::min<std::size_t>(threads_, std::max<std::size_t>(results.size(), 1)));
    stats.wall_seconds = wall.count();
    for (const JobResult& r : results) {
      stats.instructions += r.run.stats.instructions;
      stats.cycles += r.run.stats.cycles;
    }
    *batch = stats;
  }
  return results;
}

}  // namespace art9::sim
