#include "sim/service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>

namespace art9::sim {

SimulationService::SimulationService(unsigned threads)
    : threads_(threads != 0 ? threads : std::max(1u, std::thread::hardware_concurrency())) {}

std::size_t SimulationService::add(Job job) {
  const bool null_image =
      std::visit([](const auto& shared) { return shared == nullptr; }, job.image);
  if (null_image) throw std::invalid_argument("SimulationService::add: null image");
  jobs_.push_back(std::move(job));
  return jobs_.size() - 1;
}

std::size_t SimulationService::add(std::shared_ptr<const DecodedImage> image, EngineKind kind,
                                   RunOptions run) {
  return add(Job{std::move(image), kind, run, {}});
}

std::size_t SimulationService::add(std::shared_ptr<const rv32::Rv32DecodedImage> image,
                                   EngineKind kind, RunOptions run) {
  return add(Job{std::move(image), kind, run, {}});
}

std::shared_ptr<const DecodedImage> SimulationService::add(const isa::Program& program,
                                                           EngineKind kind, RunOptions run) {
  std::shared_ptr<const DecodedImage> image = decode(program);
  add(image, kind, run);
  return image;
}

std::shared_ptr<const rv32::Rv32DecodedImage> SimulationService::add(
    const rv32::Rv32Program& program, EngineKind kind, RunOptions run) {
  std::shared_ptr<const rv32::Rv32DecodedImage> image = rv32::decode(program);
  add(image, kind, run);
  return image;
}

std::vector<RunResult> SimulationService::run_all(BatchStats* batch) const {
  using clock = std::chrono::steady_clock;
  const clock::time_point t0 = clock::now();

  std::vector<RunResult> results(jobs_.size());
  std::vector<std::exception_ptr> errors(jobs_.size());
  const auto run_one = [&](std::size_t i) noexcept {
    try {
      std::unique_ptr<Engine> engine = make_engine(jobs_[i].kind, jobs_[i].image, jobs_[i].engine);
      results[i] = engine->run(jobs_[i].run);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };

  const std::size_t workers = std::min<std::size_t>(threads_, jobs_.size());
  if (workers <= 1) {
    // threads = 1 (or a single job): submission-order execution on the
    // calling thread — the determinism baseline.
    for (std::size_t i = 0; i < jobs_.size(); ++i) run_one(i);
  } else {
    // Work-stealing by atomic ticket: each worker pops the next unstarted
    // job, so heterogeneous budgets load-balance without a queue lock.
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed); i < jobs_.size();
             i = next.fetch_add(1, std::memory_order_relaxed)) {
          run_one(i);
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }

  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  if (batch != nullptr) {
    const std::chrono::duration<double> elapsed = clock::now() - t0;
    *batch = BatchStats{};
    batch->threads = static_cast<unsigned>(std::max<std::size_t>(workers, 1));
    batch->wall_seconds = elapsed.count();
    for (const RunResult& r : results) {
      batch->instructions += r.stats.instructions;
      batch->cycles += r.stats.cycles;
    }
  }
  return results;
}

}  // namespace art9::sim
