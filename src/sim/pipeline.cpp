#include "sim/pipeline.hpp"

#include <string>
#include <utility>

#include "sim/talu.hpp"

namespace art9::sim {

using isa::Instruction;
using isa::Opcode;
using isa::OpcodeSpec;
using ternary::Trit;
using ternary::Word9;

PipelineSimulator::PipelineSimulator(const isa::Program& program, PipelineConfig config)
    : PipelineSimulator(decode(program), config) {}

PipelineSimulator::PipelineSimulator(std::shared_ptr<const DecodedImage> image,
                                     PipelineConfig config)
    : config_(config), image_(std::move(image)) {
  load_data(image_->program(), state_);
}

bool PipelineSimulator::step() {
  ++stats_.cycles;

  CycleTrace trace;
  if (tracer_) {
    trace.cycle = stats_.cycles;
    trace.fetch_active = !fetch_stopped_;
    trace.fetch_pc = state_.pc;
    trace.stages[0] = {ifid_.valid, ifid_.pc, ifid_.inst};
    trace.stages[1] = {idex_.valid, idex_.pc, idex_.inst};
    trace.stages[2] = {exmem_.valid, exmem_.pc, exmem_.inst};
    trace.stages[3] = {memwb_.valid, memwb_.pc, memwb_.inst};
  }

  // ==== WB =================================================================
  // Executes "first" so that, with regfile_write_through, the ID reads
  // later this cycle observe the write (read-during-write bypass).
  bool retire_halt = false;
  struct PendingWrite {
    bool valid = false;
    int rd = 0;
    Word9 value;
  } pending_write;
  if (memwb_.valid) {
    if (memwb_.is_halt) {
      retire_halt = true;
    } else {
      ++stats_.instructions;
      if (retire_observer_) retire_observer_(memwb_.inst, memwb_.pc, stats_.instructions - 1);
      if (writes_reg(memwb_.inst)) {
        if (config_.regfile_write_through) {
          state_.trf.write(memwb_.inst.ta, memwb_.result);
        } else {
          pending_write = {true, memwb_.inst.ta, memwb_.result};
        }
      }
    }
  }

  // ==== MEM ================================================================
  MemWb memwb_next;
  if (exmem_.valid) {
    memwb_next.valid = true;
    memwb_next.is_halt = exmem_.is_halt;
    memwb_next.inst = exmem_.inst;
    memwb_next.pc = exmem_.pc;
    if (exmem_.inst.op == Opcode::kLoad) {
      memwb_next.result = state_.tdm.read(exmem_.result.to_int());
    } else if (exmem_.inst.op == Opcode::kStore) {
      state_.tdm.write(exmem_.result.to_int(), exmem_.store_val);
    } else {
      memwb_next.result = exmem_.result;
    }
  }

  // ==== EX =================================================================
  // Operand forwarding.  Priority: EX/MEM (distance 1), MEM/WB (distance
  // 2); distance 3 is covered by the write-through read in ID (or by a
  // one-cycle interlock when write-through is disabled).
  auto forward_operand = [&](int reg, const Word9& id_read) -> Word9 {
    if (config_.ex_forwarding) {
      if (exmem_.valid && writes_reg(exmem_.inst) && exmem_.inst.ta == reg &&
          exmem_.inst.op != Opcode::kLoad) {
        return exmem_.result;
      }
      if (memwb_.valid && writes_reg(memwb_.inst) && memwb_.inst.ta == reg) {
        return memwb_.result;
      }
    }
    return id_read;
  };

  ExMem exmem_next;
  bool ex_redirect = false;       // branch_in_id == false: EX resolves control flow
  int64_t ex_redirect_target = 0;
  bool ex_sees_halt = false;
  // EX combinational result, visible to the ID condition checker this cycle.
  bool ex_value_ready = false;
  Word9 ex_value;
  int ex_value_rd = -1;
  if (idex_.valid) {
    const Instruction& inst = idex_.inst;
    const OpcodeSpec& s = isa::spec(inst.op);
    const Word9 a = s.reads_ta ? forward_operand(inst.ta, idex_.a) : idex_.a;
    const Word9 b = s.reads_tb ? forward_operand(inst.tb, idex_.b) : idex_.b;

    exmem_next.valid = true;
    exmem_next.is_halt = idex_.is_halt;
    exmem_next.inst = inst;
    exmem_next.pc = idex_.pc;
    switch (inst.op) {
      case Opcode::kLoad:
      case Opcode::kStore:
        exmem_next.result = Word9::from_int_wrapped(b.to_int() + inst.imm);
        exmem_next.store_val = a;
        break;
      case Opcode::kJal:
      case Opcode::kJalr:
        exmem_next.result = Word9::from_int_wrapped(idex_.pc + 1);  // link
        if (!config_.branch_in_id && !idex_.is_halt) {
          if (inst.op == Opcode::kJal) {
            if (inst.imm == 0) {
              ex_sees_halt = true;
              exmem_next.is_halt = true;
            } else {
              ex_redirect = true;
              ex_redirect_target = ArchState::wrap(idex_.pc + inst.imm);
            }
          } else {
            const int64_t target = ArchState::wrap(b.to_int() + inst.imm);
            if (target == idex_.pc) {
              ex_sees_halt = true;
              exmem_next.is_halt = true;
            } else {
              ex_redirect = true;
              ex_redirect_target = target;
            }
          }
        }
        break;
      case Opcode::kBeq:
      case Opcode::kBne:
        if (!config_.branch_in_id) {
          const bool eq = b.lst() == inst.bcond;
          const bool taken = inst.op == Opcode::kBeq ? eq : !eq;
          if (taken) {
            ex_redirect = true;
            ex_redirect_target = ArchState::wrap(idex_.pc + inst.imm);
          }
        }
        break;
      default:
        exmem_next.result = execute(inst, a, b);
        break;
    }
    if (writes_reg(inst) && inst.op != Opcode::kLoad && !exmem_next.is_halt) {
      ex_value_ready = true;
      ex_value = exmem_next.result;
      ex_value_rd = inst.ta;
    }
  }

  // ==== ID =================================================================
  IdEx idex_next;
  bool stall = false;
  CycleEvent stall_kind = CycleEvent::kNone;
  bool id_redirect = false;
  int64_t id_redirect_target = 0;
  bool id_sees_halt = false;

  // A poisoned entry only traps if nothing squashes it this cycle (an
  // EX-resolved redirect may still kill it); checked after the IF section.
  const bool poison_pending = ifid_.valid && ifid_.poisoned;
  if (ifid_.valid && !ifid_.poisoned) {
    const Instruction& inst = ifid_.inst;
    const OpcodeSpec& s = isa::spec(inst.op);

    // Is `reg` produced by an instruction still in flight (for stall
    // decisions)?  `allow_exmem`/`allow_memwb` say whether a forwarding
    // path can cover that distance for this consumer.
    auto in_flight_hazard = [&](int reg, bool allow_ex_fwd, bool allow_exmem_fwd,
                                bool allow_memwb_fwd) -> bool {
      if (idex_.valid && writes_reg(idex_.inst) && idex_.inst.ta == reg) {
        if (idex_.inst.op == Opcode::kLoad) return true;  // data not ready before MEM
        if (!allow_ex_fwd) return true;
      }
      if (exmem_.valid && writes_reg(exmem_.inst) && exmem_.inst.ta == reg) {
        // A load's data is being read from the TDM this very cycle; an ID
        // consumer cannot see it until it lands in MEM/WB.
        if (exmem_.inst.op == Opcode::kLoad) return true;
        if (!allow_exmem_fwd) return true;
      }
      if (memwb_.valid && writes_reg(memwb_.inst) && memwb_.inst.ta == reg) {
        // With write-through, WB already updated the TRF this cycle.
        if (!config_.regfile_write_through && !allow_memwb_fwd) return true;
      }
      return false;
    };

    // --- EX-stage operand hazards (ALU/memory consumers) -----------------
    const bool needs_a_in_ex = s.reads_ta;
    const bool needs_b_in_ex =
        s.reads_tb && !(config_.branch_in_id && (s.is_branch || inst.op == Opcode::kJalr));
    uint64_t* stall_counter = nullptr;
    if (config_.ex_forwarding) {
      // Only load-use distance-1 stalls remain.
      auto load_use = [&](int reg) {
        return idex_.valid && idex_.inst.op == Opcode::kLoad && idex_.inst.ta == reg;
      };
      if ((needs_a_in_ex && load_use(inst.ta)) || (needs_b_in_ex && load_use(inst.tb))) {
        stall = true;
        stall_counter = &stats_.stall_load_use;
        stall_kind = CycleEvent::kLoadUseStall;
      }
    } else {
      if ((needs_a_in_ex && in_flight_hazard(inst.ta, false, false, false)) ||
          (needs_b_in_ex && in_flight_hazard(inst.tb, false, false, false))) {
        stall = true;
        stall_counter = &stats_.stall_raw;
        stall_kind = CycleEvent::kRawStall;
      }
    }
    // Without the read-during-write bypass, a distance-3 producer is
    // writing the TRF this very cycle: the stale ID read must retry.
    if (!stall && !config_.regfile_write_through) {
      auto wb_now = [&](int reg) {
        return memwb_.valid && writes_reg(memwb_.inst) && memwb_.inst.ta == reg;
      };
      if ((needs_a_in_ex && wb_now(inst.ta)) || (needs_b_in_ex && wb_now(inst.tb))) {
        stall = true;
        stall_counter = &stats_.stall_raw;
        stall_kind = CycleEvent::kRawStall;
      }
    }

    // --- ID-stage consumers: branch condition and JALR base --------------
    Word9 id_b_value;  // resolved TRF[Tb] for ID-stage use
    if (!stall && config_.branch_in_id && (s.is_branch || inst.op == Opcode::kJalr)) {
      const bool is_jalr = inst.op == Opcode::kJalr;
      // JALR's 9-trit base has no EX combinational bypass (long path —
      // paper forwards only the one-trit condition from EX).
      const bool allow_ex_fwd = config_.id_forwarding && !is_jalr;
      const bool allow_exmem_fwd = config_.id_forwarding;
      const bool allow_memwb_fwd = config_.id_forwarding;
      if (in_flight_hazard(inst.tb, allow_ex_fwd, allow_exmem_fwd, allow_memwb_fwd)) {
        stall = true;
        stall_counter = &stats_.stall_branch_hazard;
        stall_kind = CycleEvent::kBranchHazardStall;
      } else {
        // Resolve the value through the allowed paths, newest first.
        if (allow_ex_fwd && ex_value_ready && ex_value_rd == inst.tb) {
          id_b_value = ex_value;
        } else if (config_.id_forwarding && exmem_.valid && writes_reg(exmem_.inst) &&
                   exmem_.inst.ta == inst.tb && exmem_.inst.op != Opcode::kLoad) {
          id_b_value = exmem_.result;
        } else if (!config_.regfile_write_through && config_.id_forwarding && memwb_.valid &&
                   writes_reg(memwb_.inst) && memwb_.inst.ta == inst.tb) {
          id_b_value = memwb_.result;
        } else {
          id_b_value = state_.trf.read(inst.tb);
        }
      }
    }

    if (stall) {
      ++*stall_counter;
    } else {
      // Control-flow resolution in ID.
      if (is_halt_jal(inst)) {
        id_sees_halt = true;
      } else if (config_.branch_in_id) {
        switch (inst.op) {
          case Opcode::kBeq:
          case Opcode::kBne: {
            const bool eq = id_b_value.lst() == inst.bcond;
            const bool taken = inst.op == Opcode::kBeq ? eq : !eq;
            if (taken != ifid_.predicted_taken) {
              id_redirect = true;
              id_redirect_target =
                  taken ? ArchState::wrap(ifid_.pc + inst.imm) : ArchState::wrap(ifid_.pc + 1);
              if (ifid_.predicted_taken) ++stats_.predictions_wrong;
            } else if (ifid_.predicted_taken) {
              ++stats_.predictions_correct;  // bubble avoided
            }
            break;
          }
          case Opcode::kJal:
            if (ifid_.predicted_taken) {
              ++stats_.predictions_correct;  // target folded into the fetch
            } else {
              id_redirect = true;
              id_redirect_target = ArchState::wrap(ifid_.pc + inst.imm);
            }
            break;
          case Opcode::kJalr: {
            const int64_t target = ArchState::wrap(id_b_value.to_int() + inst.imm);
            if (target == ifid_.pc) {
              id_sees_halt = true;
            } else {
              id_redirect = true;
              id_redirect_target = target;
            }
            break;
          }
          default:
            break;
        }
      }
      idex_next.valid = true;
      idex_next.is_halt = id_sees_halt;
      idex_next.inst = inst;
      idex_next.pc = ifid_.pc;
      idex_next.a = state_.trf.read(inst.ta);
      idex_next.b = state_.trf.read(inst.tb);
    }
  }

  // ==== IF =================================================================
  IfId ifid_next;
  int64_t pc_next = state_.pc;
  if (ex_redirect || ex_sees_halt) {
    // EX-resolved control flow (ablation mode): squash both younger stages.
    ifid_next.valid = false;
    idex_next = IdEx{};
    if (ex_redirect) {
      pc_next = ex_redirect_target;
      stats_.flush_taken_branch += 2;
    }
    if (ex_sees_halt) fetch_stopped_ = true;
  } else if (stall) {
    // Hold PC and IF/ID; a bubble (already-empty idex_next) enters EX.
    ifid_next = ifid_;
  } else {
    if (id_sees_halt) fetch_stopped_ = true;
    if (id_redirect) {
      // The instruction fetched this cycle is wrong-path: squash it.
      ifid_next.valid = false;
      pc_next = id_redirect_target;
      ++stats_.flush_taken_branch;
    } else if (!fetch_stopped_) {
      const DecodedOp& fetched = image_->fetch(state_.pc);
      const bool ok = fetched.kind != DispatchKind::kInvalid;
      ifid_next.valid = true;
      ifid_next.poisoned = !ok;
      ifid_next.inst = ok ? fetched.inst : Instruction::nop();
      ifid_next.pc = state_.pc;
      pc_next = fetched.next_pc;
      // Extension: static prediction at fetch — backward conditional
      // branches predict taken, JAL targets fold directly.  (A JAL row can
      // only carry kJal here: the imm == 0 halt was folded to kHalt.)
      if (config_.static_prediction && config_.branch_in_id && ok) {
        const bool backward_branch =
            (fetched.kind == DispatchKind::kBeq || fetched.kind == DispatchKind::kBne) &&
            fetched.inst.imm < 0;
        const bool direct_jump = fetched.kind == DispatchKind::kJal;
        if (backward_branch || direct_jump) {
          ifid_next.predicted_taken = true;
          pc_next = fetched.taken_pc;
        }
      }
    }
  }

  if (poison_pending && !(ex_redirect || ex_sees_halt)) {
    throw SimError("executing instruction fetched from uninitialised TIM at pc " +
                   std::to_string(ifid_.pc));
  }

  // ==== commit clock edge ==================================================
  if (pending_write.valid) state_.trf.write(pending_write.rd, pending_write.value);
  state_.pc = pc_next;
  ifid_ = ifid_next;
  idex_ = idex_next;
  exmem_ = exmem_next;
  memwb_ = memwb_next;

  if (tracer_) {
    if (retire_halt || id_sees_halt || ex_sees_halt) {
      trace.event = CycleEvent::kHaltSeen;
    } else if (id_redirect || ex_redirect) {
      trace.event = CycleEvent::kTakenBranchFlush;
    } else if (stall) {
      trace.event = stall_kind;
    }
    tracer_(trace);
  }

  if (retire_halt) {
    halted_ = true;
    stats_.halt = HaltReason::kHalted;
    return false;
  }
  return true;
}

SimStats PipelineSimulator::run() { return run(config_.max_cycles); }

SimStats PipelineSimulator::run(uint64_t max_cycles) {
  while (stats_.cycles < max_cycles) {
    if (!step()) return stats_;
  }
  stats_.halt = HaltReason::kMaxCycles;
  return stats_;
}

}  // namespace art9::sim
