#include "sim/pipeline.hpp"

#include <utility>

namespace art9::sim {

PipelineSimulator::PipelineSimulator(const isa::Program& program, PipelineConfig config)
    : PipelineSimulator(decode(program), config) {}

PipelineSimulator::PipelineSimulator(std::shared_ptr<const DecodedImage> image,
                                     PipelineConfig config)
    : PipelineModel(std::move(image), config) {}

}  // namespace art9::sim
