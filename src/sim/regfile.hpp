// The ternary register file (TRF): nine general-purpose 9-trit registers,
// two asynchronous read ports and one synchronous write port (paper §IV-B).
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>

#include "isa/instruction.hpp"
#include "ternary/word.hpp"

namespace art9::sim {

class RegFile {
 public:
  [[nodiscard]] const ternary::Word9& read(int index) const {
    return regs_.at(check(index));
  }

  void write(int index, const ternary::Word9& value) { regs_.at(check(index)) = value; }

  [[nodiscard]] const std::array<ternary::Word9, isa::kNumRegisters>& all() const noexcept {
    return regs_;
  }

  friend bool operator==(const RegFile&, const RegFile&) = default;

 private:
  static std::size_t check(int index) {
    if (index < 0 || index >= isa::kNumRegisters) {
      throw std::out_of_range("TRF index out of range: " + std::to_string(index));
    }
    return static_cast<std::size_t>(index);
  }

  std::array<ternary::Word9, isa::kNumRegisters> regs_{};
};

}  // namespace art9::sim
