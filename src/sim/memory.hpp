// Ternary memory model shared by TIM and TDM.
//
// The hardware decodes a 9-trit address pattern to one of 3^9 = 19683 rows
// using the unsigned digit interpretation (paper §II-A).  Software-visible
// addresses in this repository are balanced values; the bijection is
// row = balanced + 9841 (mod 19683).  Reads/writes are counted so cycle
// models and power estimators can charge per-access energy.
#pragma once

#include <cstdint>
#include <vector>

#include "ternary/bct.hpp"
#include "ternary/word.hpp"

namespace art9::sim {

class TernaryMemory {
 public:
  /// Full 9-trit address space.
  static constexpr int64_t kRows = ternary::Word9::kStates;  // 19683

  TernaryMemory() : rows_(static_cast<std::size_t>(kRows)) {}

  /// Row index for a balanced address (wraps modulo 3^9).  Reduces before
  /// biasing: `balanced_address + kMaxValue` would be signed overflow (UB)
  /// for addresses near INT64_MAX — the same wraparound class the rv32 RAM
  /// checks were hardened against — and .t9 images can carry any int64.
  [[nodiscard]] static std::size_t row_of(int64_t balanced_address) noexcept {
    int64_t r = balanced_address % kRows;  // (-kRows, kRows): safe to bias
    r += ternary::Word9::kMaxValue;
    if (r < 0) r += kRows;
    if (r >= kRows) r -= kRows;
    return static_cast<std::size_t>(r);
  }

  [[nodiscard]] const ternary::Word9& read(int64_t balanced_address) {
    ++reads_;
    return rows_[row_of(balanced_address)];
  }

  /// Read without bumping the access counters (debug/bench inspection).
  [[nodiscard]] const ternary::Word9& peek(int64_t balanced_address) const {
    return rows_[row_of(balanced_address)];
  }

  void write(int64_t balanced_address, const ternary::Word9& value) {
    ++writes_;
    rows_[row_of(balanced_address)] = value;
  }

  /// Direct initialisation (program load) — not counted as an access.
  void poke(int64_t balanced_address, const ternary::Word9& value) {
    rows_[row_of(balanced_address)] = value;
  }

  [[nodiscard]] uint64_t reads() const noexcept { return reads_; }
  [[nodiscard]] uint64_t writes() const noexcept { return writes_; }

  /// Bit-identical comparison: contents *and* access counters (two equal
  /// memories are indistinguishable to cycle/power models too).
  friend bool operator==(const TernaryMemory&, const TernaryMemory&) = default;

  void reset_counters() noexcept { reads_ = writes_ = 0; }

  /// Restores the access counters — used when unpacking a packed-backend
  /// run into a reference memory for bit-identical comparison.
  void set_counters(uint64_t reads, uint64_t writes) noexcept {
    reads_ = reads;
    writes_ = writes;
  }

 private:
  std::vector<ternary::Word9> rows_;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
};

/// Plane-pair ternary memory: the packed datapath's TDM.  Rows are
/// BctWord9 plane pairs (18 host bits of payload per row — the same
/// encoding the paper's FPGA platform stores, §V-B) instead of
/// std::array<Trit, 9>, so loads/stores move two machine words and never
/// touch a Trit.  Same row bijection and access accounting as
/// TernaryMemory; `unpack()` is the inspection-boundary conversion and
/// reproduces contents *and* counters bit-identically.
class PackedMemory {
 public:
  static constexpr int64_t kRows = TernaryMemory::kRows;

  PackedMemory() : rows_(static_cast<std::size_t>(kRows)) {}

  /// Counted read by pre-folded row index (hot loop — the packed simulator
  /// folds addresses with ternary::packed::row_of).
  [[nodiscard]] const ternary::BctWord9& read_row(std::size_t row) noexcept {
    ++reads_;
    return rows_[row];
  }

  /// Counted write by pre-folded row index.
  void write_row(std::size_t row, const ternary::BctWord9& value) noexcept {
    ++writes_;
    rows_[row] = value;
  }

  /// Direct initialisation (program load) — not counted as an access.
  void poke(int64_t balanced_address, const ternary::BctWord9& value) {
    rows_[TernaryMemory::row_of(balanced_address)] = value;
  }

  /// Hot-loop escape hatch: raw row storage for a register-resident
  /// execute loop.  Callers that bypass read_row/write_row must account
  /// their accesses via add_counters before the next inspection.
  [[nodiscard]] ternary::BctWord9* data() noexcept { return rows_.data(); }
  void add_counters(uint64_t reads, uint64_t writes) noexcept {
    reads_ += reads;
    writes_ += writes;
  }

  [[nodiscard]] uint64_t reads() const noexcept { return reads_; }
  [[nodiscard]] uint64_t writes() const noexcept { return writes_; }

  /// Restores the access counters (snapshot restore re-packs a reference
  /// memory and must resume its accounting where it left off).
  void set_counters(uint64_t reads, uint64_t writes) noexcept {
    reads_ = reads;
    writes_ = writes;
  }

  friend bool operator==(const PackedMemory&, const PackedMemory&) = default;

  /// Decodes to the reference representation (contents + counters).
  [[nodiscard]] TernaryMemory unpack() const {
    TernaryMemory out;
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      if (rows_[r] == ternary::BctWord9{}) continue;  // zero rows match the default
      out.poke(static_cast<int64_t>(r) - ternary::Word9::kMaxValue, rows_[r].decode());
    }
    out.set_counters(reads_, writes_);
    return out;
  }

 private:
  std::vector<ternary::BctWord9> rows_;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
};

}  // namespace art9::sim
