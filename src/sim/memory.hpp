// Ternary memory model shared by TIM and TDM.
//
// The hardware decodes a 9-trit address pattern to one of 3^9 = 19683 rows
// using the unsigned digit interpretation (paper §II-A).  Software-visible
// addresses in this repository are balanced values; the bijection is
// row = balanced + 9841 (mod 19683).  Reads/writes are counted so cycle
// models and power estimators can charge per-access energy.
#pragma once

#include <cstdint>
#include <vector>

#include "ternary/word.hpp"

namespace art9::sim {

class TernaryMemory {
 public:
  /// Full 9-trit address space.
  static constexpr int64_t kRows = ternary::Word9::kStates;  // 19683

  TernaryMemory() : rows_(static_cast<std::size_t>(kRows)) {}

  /// Row index for a balanced address (wraps modulo 3^9).
  [[nodiscard]] static std::size_t row_of(int64_t balanced_address) noexcept {
    int64_t r = (balanced_address + ternary::Word9::kMaxValue) % kRows;
    if (r < 0) r += kRows;
    return static_cast<std::size_t>(r);
  }

  [[nodiscard]] const ternary::Word9& read(int64_t balanced_address) {
    ++reads_;
    return rows_[row_of(balanced_address)];
  }

  /// Read without bumping the access counters (debug/bench inspection).
  [[nodiscard]] const ternary::Word9& peek(int64_t balanced_address) const {
    return rows_[row_of(balanced_address)];
  }

  void write(int64_t balanced_address, const ternary::Word9& value) {
    ++writes_;
    rows_[row_of(balanced_address)] = value;
  }

  /// Direct initialisation (program load) — not counted as an access.
  void poke(int64_t balanced_address, const ternary::Word9& value) {
    rows_[row_of(balanced_address)] = value;
  }

  [[nodiscard]] uint64_t reads() const noexcept { return reads_; }
  [[nodiscard]] uint64_t writes() const noexcept { return writes_; }

  /// Bit-identical comparison: contents *and* access counters (two equal
  /// memories are indistinguishable to cycle/power models too).
  friend bool operator==(const TernaryMemory&, const TernaryMemory&) = default;

  void reset_counters() noexcept { reads_ = writes_ = 0; }

 private:
  std::vector<ternary::Word9> rows_;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
};

}  // namespace art9::sim
