#include "sim/functional_sim.hpp"

#include <string>
#include <utility>

#include "sim/talu.hpp"

namespace art9::sim {

using isa::Instruction;
using isa::Opcode;
using ternary::Word9;

// ---- pre-decoded dispatch fast path ----------------------------------------

FunctionalSimulator::FunctionalSimulator(const isa::Program& program)
    : FunctionalSimulator(decode(program)) {}

FunctionalSimulator::FunctionalSimulator(std::shared_ptr<const DecodedImage> image)
    : image_(std::move(image)) {
  load_data(image_->program(), state_);
  row_ = DecodedImage::row_of(state_.pc);
}

bool FunctionalSimulator::step() {
  const DecodedOp* fetched = &image_->row(row_);
  if (fetched->pc != state_.pc) {
    // A harness redirected state().pc since the last step; re-sync the
    // cached fetch row (one always-predicted compare on the fast path).
    row_ = DecodedImage::row_of(state_.pc);
    fetched = &image_->row(row_);
  }
  const DecodedOp& op = *fetched;
  switch (op.kind) {
    case DispatchKind::kBeq:
    case DispatchKind::kBne: {
      const ternary::Trit lst = state_.trf.read(op.inst.tb).lst();
      const bool eq = lst == op.inst.bcond;
      const bool taken = op.kind == DispatchKind::kBeq ? eq : !eq;
      if (taken) {
        state_.pc = op.taken_pc;
        row_ = op.taken_row;
      } else {
        state_.pc = op.next_pc;
        row_ = op.next_row;
      }
      return true;
    }
    case DispatchKind::kHalt:
      return false;
    case DispatchKind::kJal:
      state_.trf.write(op.inst.ta, op.link);
      state_.pc = op.taken_pc;
      row_ = op.taken_row;
      return true;
    case DispatchKind::kJalr: {
      const int64_t target = ArchState::wrap(state_.trf.read(op.inst.tb).to_int() + op.inst.imm);
      if (target == op.pc) return false;  // self-jump = halt (no link write)
      state_.trf.write(op.inst.ta, op.link);
      state_.pc = target;
      row_ = DecodedImage::row_of(target);
      return true;
    }
    case DispatchKind::kLoad: {
      const int64_t addr = state_.trf.read(op.inst.tb).to_int() + op.inst.imm;
      state_.trf.write(op.inst.ta, state_.tdm.read(addr));
      break;
    }
    case DispatchKind::kStore: {
      const int64_t addr = state_.trf.read(op.inst.tb).to_int() + op.inst.imm;
      state_.tdm.write(addr, state_.trf.read(op.inst.ta));
      break;
    }
    case DispatchKind::kInvalid:
      throw SimError("fetch from uninitialised TIM address " + std::to_string(op.pc));
    default: {
      // Data-processing opcodes (MV..LI): one TALU evaluation off the
      // pre-decoded row (immediates already encoded — no from_int here).
      const Word9& a = state_.trf.read(op.inst.ta);
      const Word9& b = state_.trf.read(op.inst.tb);
      if (op.writes_ta) state_.trf.write(op.inst.ta, execute(op, a, b));
      break;
    }
  }
  state_.pc = op.next_pc;
  row_ = op.next_row;
  return true;
}

SimStats FunctionalSimulator::run(uint64_t max_instructions) {
  SimStats stats;
  while (stats.instructions < max_instructions) {
    if (!step()) {
      stats.halt = HaltReason::kHalted;
      stats.cycles = stats.instructions;
      return stats;
    }
    ++stats.instructions;
  }
  stats.halt = HaltReason::kMaxCycles;
  stats.cycles = stats.instructions;
  return stats;
}

// ---- seed lazy decode-on-fetch baseline ------------------------------------

LazyFunctionalSimulator::LazyFunctionalSimulator(const isa::Program& program)
    : tim_(static_cast<std::size_t>(TernaryMemory::kRows)),
      tim_valid_(static_cast<std::size_t>(TernaryMemory::kRows), false) {
  // load_data first: it validates entry/data addresses, so `entry + i`
  // below cannot overflow int64.
  load_data(program, state_);
  for (std::size_t i = 0; i < program.code.size(); ++i) {
    const std::size_t row = TernaryMemory::row_of(program.entry + static_cast<int64_t>(i));
    tim_[row] = program.code[i];
    tim_valid_[row] = true;
  }
}

const Instruction& LazyFunctionalSimulator::fetch(int64_t pc) const {
  const std::size_t row = TernaryMemory::row_of(pc);
  if (!tim_valid_[row]) {
    throw SimError("fetch from uninitialised TIM address " + std::to_string(pc));
  }
  return tim_[row];
}

bool LazyFunctionalSimulator::step() {
  const Instruction& inst = fetch(state_.pc);
  const isa::OpcodeSpec& s = isa::spec(inst.op);
  int64_t next_pc = ArchState::wrap(state_.pc + 1);

  switch (inst.op) {
    case Opcode::kBeq:
    case Opcode::kBne: {
      const ternary::Trit lst = state_.trf.read(inst.tb).lst();
      const bool eq = lst == inst.bcond;
      const bool taken = inst.op == Opcode::kBeq ? eq : !eq;
      if (taken) next_pc = ArchState::wrap(state_.pc + inst.imm);
      break;
    }
    case Opcode::kJal: {
      if (inst.imm == 0) return false;  // HALT convention
      state_.trf.write(inst.ta, Word9::from_int_wrapped(state_.pc + 1));
      next_pc = ArchState::wrap(state_.pc + inst.imm);
      break;
    }
    case Opcode::kJalr: {
      const int64_t target = ArchState::wrap(state_.trf.read(inst.tb).to_int() + inst.imm);
      if (target == state_.pc) return false;  // self-jump = halt (no link write)
      state_.trf.write(inst.ta, Word9::from_int_wrapped(state_.pc + 1));
      next_pc = target;
      break;
    }
    case Opcode::kLoad: {
      const int64_t addr = state_.trf.read(inst.tb).to_int() + inst.imm;
      state_.trf.write(inst.ta, state_.tdm.read(addr));
      break;
    }
    case Opcode::kStore: {
      const int64_t addr = state_.trf.read(inst.tb).to_int() + inst.imm;
      state_.tdm.write(addr, state_.trf.read(inst.ta));
      break;
    }
    default: {
      const Word9& a = state_.trf.read(inst.ta);
      const Word9& b = state_.trf.read(inst.tb);
      if (s.writes_ta) state_.trf.write(inst.ta, execute(inst, a, b));
      break;
    }
  }
  state_.pc = next_pc;
  return true;
}

SimStats LazyFunctionalSimulator::run(uint64_t max_instructions) {
  SimStats stats;
  while (stats.instructions < max_instructions) {
    if (!step()) {
      stats.halt = HaltReason::kHalted;
      stats.cycles = stats.instructions;
      return stats;
    }
    ++stats.instructions;
  }
  stats.halt = HaltReason::kMaxCycles;
  stats.cycles = stats.instructions;
  return stats;
}

}  // namespace art9::sim
