#include "sim/functional_sim.hpp"

#include "sim/talu.hpp"

namespace art9::sim {

using isa::Instruction;
using isa::Opcode;
using ternary::Word9;

FunctionalSimulator::FunctionalSimulator(const isa::Program& program)
    : tim_(static_cast<std::size_t>(TernaryMemory::kRows)),
      tim_valid_(static_cast<std::size_t>(TernaryMemory::kRows), false) {
  for (std::size_t i = 0; i < program.code.size(); ++i) {
    const std::size_t row = TernaryMemory::row_of(program.entry + static_cast<int64_t>(i));
    tim_[row] = program.code[i];
    tim_valid_[row] = true;
  }
  load_data(program, state_);
}

const Instruction& FunctionalSimulator::fetch(int64_t pc) const {
  const std::size_t row = TernaryMemory::row_of(pc);
  if (!tim_valid_[row]) {
    throw SimError("fetch from uninitialised TIM address " + std::to_string(pc));
  }
  return tim_[row];
}

bool FunctionalSimulator::step() {
  const Instruction& inst = fetch(state_.pc);
  const isa::OpcodeSpec& s = isa::spec(inst.op);
  int64_t next_pc = ArchState::wrap(state_.pc + 1);

  switch (inst.op) {
    case Opcode::kBeq:
    case Opcode::kBne: {
      const ternary::Trit lst = state_.trf.read(inst.tb).lst();
      const bool eq = lst == inst.bcond;
      const bool taken = inst.op == Opcode::kBeq ? eq : !eq;
      if (taken) next_pc = ArchState::wrap(state_.pc + inst.imm);
      break;
    }
    case Opcode::kJal: {
      if (inst.imm == 0) return false;  // HALT convention
      state_.trf.write(inst.ta, Word9::from_int_wrapped(state_.pc + 1));
      next_pc = ArchState::wrap(state_.pc + inst.imm);
      break;
    }
    case Opcode::kJalr: {
      const int64_t target = ArchState::wrap(state_.trf.read(inst.tb).to_int() + inst.imm);
      if (target == state_.pc) return false;  // self-jump = halt (no link write)
      state_.trf.write(inst.ta, Word9::from_int_wrapped(state_.pc + 1));
      next_pc = target;
      break;
    }
    case Opcode::kLoad: {
      const int64_t addr = state_.trf.read(inst.tb).to_int() + inst.imm;
      state_.trf.write(inst.ta, state_.tdm.read(addr));
      break;
    }
    case Opcode::kStore: {
      const int64_t addr = state_.trf.read(inst.tb).to_int() + inst.imm;
      state_.tdm.write(addr, state_.trf.read(inst.ta));
      break;
    }
    default: {
      const Word9& a = state_.trf.read(inst.ta);
      const Word9& b = state_.trf.read(inst.tb);
      if (s.writes_ta) state_.trf.write(inst.ta, execute(inst, a, b));
      break;
    }
  }
  state_.pc = next_pc;
  return true;
}

SimStats FunctionalSimulator::run(uint64_t max_instructions) {
  SimStats stats;
  while (stats.instructions < max_instructions) {
    if (!step()) {
      stats.halt = HaltReason::kHalted;
      stats.cycles = stats.instructions;
      return stats;
    }
    ++stats.instructions;
  }
  stats.halt = HaltReason::kMaxCycles;
  stats.cycles = stats.instructions;
  return stats;
}

}  // namespace art9::sim
