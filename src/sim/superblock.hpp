// Superblock translation tier — the execution backend above the packed
// SWAR simulator.
//
// The packed backend still pays per *instruction*: one budget check, one
// row chase, one retire increment and (for memory ops) one counter bump
// per step.  The superblock tier translates the decoded image once more,
// at load time, into straight-line superblocks (the move libriscv makes
// in decode_bytecodes.cpp / threaded_bytecodes.hpp):
//
//  * every TIM row gets a block describing the straight-line run that
//    starts there (so dynamic JALR targets and snapshot restores can
//    enter anywhere without mid-block entry logic), body length capped
//    at kMaxBlockInstructions;
//  * macro-op fusion inside blocks: LUI+LI / LUI+ADDI collapse to one
//    kConst with the result planes precomputed at translation time,
//    COMP+BEQ/BNE becomes a kCmpBranch terminator, LOAD+dependent ALU op
//    becomes one kLoadOp dispatch;
//  * retire counts and TDM access counters are precomputed per block and
//    committed once per block by the terminator, not per instruction;
//  * block-chained dispatch: each terminator carries the successor block
//    row for the not-taken/unconditional path, so the hot loop is
//    block-to-block (computed goto on GNU, a portable step() fallback
//    otherwise) and only checks the budget at block boundaries.
//
// Budget exactness: the fast loop only *enters* a block when the whole
// block fits the remaining budget; a partial block is stepped per
// instruction instead.  run() therefore honours max_steps exactly —
// including intermediate fused-pair states — which is what keeps
// SimulationService slice accounting and the conformance suite's
// tiny-budget contract bit-identical to the golden model.
//
// The plan is built lazily and thread-safely off the shared image
// (DecodedImage::superblocks(), same pattern as the packed-op table), so
// any number of SuperblockSimulator instances share one translation.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "isa/program.hpp"
#include "sim/decoded_image.hpp"
#include "sim/machine.hpp"
#include "ternary/bct.hpp"

namespace art9::sim {

/// Handler index of the superblock inner loop.  The first 18 values
/// mirror DispatchKind's data-processing kinds exactly (same numeric
/// order) so translation of an unfused body op is a cast; the rest are
/// the memory ops, the fused macro-ops, and the block terminators.
enum class SuperOpKind : uint8_t {
  kMv,
  kPti,
  kNti,
  kSti,
  kAnd,
  kOr,
  kXor,
  kAdd,
  kSub,
  kSr,
  kSl,
  kComp,
  kAndi,
  kAddi,
  kSri,
  kSli,
  kLui,
  kLi,
  kLoad,
  kStore,
  // Fused macro-ops (body):
  kConst,      // LUI+LI / LUI+ADDI — result planes precomputed, retires 2
  kLoadOp,     // LOAD + dependent register ALU op in one dispatch, retires 2
  kAddiChain,  // ADDI+ADDI… on one register — immediates folded at
               // translation time (exact mod 3^9), retire count in kind2
  // Terminators (exactly one per block, last op of the block):
  kBranch,       // BEQ/BNE (sense in flags)
  kCmpBranch,    // fused COMP + BEQ/BNE, retires 2
  kJal,          // unconditional jump with link
  kJalr,         // dynamic target; self-jump is the halt convention
  kFallthrough,  // block split at the length cap — chain to next_row
  kHalt,         // JAL x, 0 folded at decode time
  kTrap,         // uninitialised TIM row
};

/// One slot of the flat superop stream: body ops and terminators share
/// the layout (22 bytes) so the inner loop walks one array.
struct SuperOp {
  uint16_t word_neg = 0;  // imm/link planes, or the fused kConst result
  uint16_t word_pos = 0;
  int16_t imm = 0;     // numeric immediate (ADDI/SRI/SLI/JALR/LOAD/STORE)
  SuperOpKind kind = SuperOpKind::kTrap;
  uint8_t ta = 0;
  uint8_t tb = 0;
  int8_t bcond = 0;  // balanced branch condition (kBranch/kCmpBranch)
  // Fused second op of kLoadOp (restricted to register-only ALU kinds),
  // or the folded-instruction count of kAddiChain:
  uint8_t kind2 = 0;  // DispatchKind value, kMv..kComp / chain length
  uint8_t ta2 = 0;
  uint8_t tb2 = 0;  // always the load's ta (the dependence being fused)
  uint8_t flags = 0;
  int16_t pc = 0;          // this op's balanced address
  uint16_t self_row = 0;   // this op's row (halt/trap position commit)
  uint16_t next_row = 0;   // terminator: not-taken / fallthrough successor
  uint16_t taken_row = 0;  // terminator: branch/JAL target block

  static constexpr uint8_t kFlagBne = 1;  // branch sense of kBranch/kCmpBranch

  /// The operand word as planes (immediate, link, or fused constant).
  [[nodiscard]] ternary::BctWord9 word() const noexcept {
    return ternary::BctWord9::from_planes_unchecked(word_neg, word_pos);
  }
};
static_assert(sizeof(SuperOp) <= 24, "SuperOp must stay cache-lean");

/// One straight-line block: a slice of the plan's op stream (body ops
/// followed by exactly one terminator) plus the precomputed per-block
/// accounting deltas the terminator commits in one shot.
struct Superblock {
  uint32_t first_op = 0;
  uint32_t retires = 0;     // instructions retired by a full pass (body +
                            // branch/jal/jalr terminator; halt/trap/
                            // fallthrough terminators retire nothing)
  uint32_t min_budget = 0;  // remaining budget required to enter: retires,
                            // +1 for halt/trap terminators (attempting the
                            // zero-retire terminator still needs headroom —
                            // the golden model reports kMaxCycles, not
                            // halt/trap, when the budget dies at its door)
  uint32_t mem_reads = 0;   // TDM counter deltas of a full pass
  uint32_t mem_writes = 0;
};

/// The whole translation: one block per TIM row over a shared op stream.
struct SuperblockPlan {
  /// Straight-line body cap, in source instructions.  Bounds worst-case
  /// plan memory and the per-block budget clamp (a partial block steps at
  /// most this many instructions on the slow path).
  static constexpr uint32_t kMaxBlockInstructions = 32;

  std::vector<Superblock> blocks;  // indexed by TIM row
  std::vector<SuperOp> ops;
  // Translation statistics (tests, introspection):
  uint32_t fused_const = 0;
  uint32_t fused_cmp_branch = 0;
  uint32_t fused_load_op = 0;
  uint32_t fused_addi_chain = 0;  // chains folded (each covers >= 2 ADDIs)
};

/// The superblock execution backend.  Architectural state is identical to
/// PackedFunctionalSimulator (packed TRF + packed TDM); only the run loop
/// differs, so the backend is bit-identical to the golden model in state
/// (registers, TDM contents *and* access counters, PC) and SimStats —
/// locked by the conformance suite and tests/sim/superblock_test.cpp.
class SuperblockSimulator {
 public:
  /// Decodes `program` into a private image.
  explicit SuperblockSimulator(const isa::Program& program);

  /// Runs off a shared pre-decoded image (SimulationService, differential
  /// harnesses).  `image` must be non-null.
  explicit SuperblockSimulator(std::shared_ptr<const DecodedImage> image);

  /// Executes one instruction (the per-instruction slow path — observed
  /// runs and partial-block tails).  Returns false when the HALT
  /// convention (self-jump) executes — pc() then rests on the halt
  /// instruction.
  bool step();

  /// Runs until HALT or `max_instructions` — exactly: block entry is
  /// clamped against the remaining budget, the tail is stepped per
  /// instruction.
  SimStats run(uint64_t max_instructions = 100'000'000);

  [[nodiscard]] int64_t pc() const noexcept { return pc_; }

  /// The pre-decoded image this simulator executes.
  [[nodiscard]] const DecodedImage& image() const noexcept { return *image_; }

  /// The shared block translation (tests, introspection).
  [[nodiscard]] const SuperblockPlan& plan() const noexcept { return *plan_; }

  /// Inspection-boundary conversions, mirroring the packed backend.
  [[nodiscard]] ArchState unpack_state() const;
  void restore(const ArchState& state);

  [[nodiscard]] ternary::Word9 reg(int index) const;
  [[nodiscard]] int64_t reg_int(int index) const;

 private:
  /// The block-chained fast loop: runs whole blocks until halt, trap,
  /// budget exhaustion, or a block that no longer fits the remaining
  /// budget.  Returns the instructions executed; commits row_/pc_ and the
  /// batched TDM counters at every exit (the trap path included).
  uint64_t run_blocks(uint64_t max_instructions, bool& halted);

  std::shared_ptr<const DecodedImage> image_;
  const PackedOp* prows_;        // packed TIM (slow path / pc recovery)
  const SuperblockPlan* plan_;   // the image's block translation
  std::array<ternary::BctWord9, isa::kNumRegisters> trf_{};
  PackedMemory tdm_;
  int64_t pc_ = 0;
  std::size_t row_ = 0;  // current fetch row, in lock-step with pc_
};

}  // namespace art9::sim
