// Functional (instruction-at-a-time) ART-9 simulator — the golden model
// that the cycle-accurate pipeline is differentially tested against.
//
// The hot loop runs off a pre-decoded DecodedImage: dispatch is a single
// dense-kind switch with precomputed PC chains (see decoded_image.hpp).
// The seed's lazy decode-on-fetch loop is retained as
// LazyFunctionalSimulator so the dispatch fast path stays differentially
// testable and benchmarkable against the original.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/program.hpp"
#include "sim/decoded_image.hpp"
#include "sim/machine.hpp"

namespace art9::sim {

class FunctionalSimulator {
 public:
  /// Decodes `program` into a private image.
  explicit FunctionalSimulator(const isa::Program& program);

  /// Runs off a shared pre-decoded image (SimulationService, differential
  /// harnesses).  `image` must be non-null.
  explicit FunctionalSimulator(std::shared_ptr<const DecodedImage> image);

  /// Executes one instruction.  Returns false when the HALT convention
  /// (self-jump) executes — state.pc then rests on the halt instruction.
  bool step();

  /// Runs until HALT or `max_instructions`.
  SimStats run(uint64_t max_instructions = 100'000'000);

  [[nodiscard]] const ArchState& state() const noexcept { return state_; }
  [[nodiscard]] ArchState& state() noexcept { return state_; }

  /// Replaces the architectural state wholesale (snapshot restore) and
  /// re-syncs the cached fetch row with the restored PC.
  void restore(const ArchState& state) {
    state_ = state;
    row_ = DecodedImage::row_of(state_.pc);
  }

  /// The pre-decoded image this simulator executes.
  [[nodiscard]] const DecodedImage& image() const noexcept { return *image_; }

  /// Convenience accessors.
  [[nodiscard]] const ternary::Word9& reg(int index) const { return state_.trf.read(index); }
  [[nodiscard]] int64_t reg_int(int index) const { return state_.trf.read(index).to_int(); }

 private:
  std::shared_ptr<const DecodedImage> image_;
  ArchState state_;
  // Current fetch row, kept in lock-step with state_.pc so sequential
  // flow chases precomputed row links instead of re-folding the PC.
  std::size_t row_ = 0;
};

/// The seed's decode-on-fetch simulator: per-step validity branch, spec
/// lookup and PC wrap.  Kept as the reference baseline for the
/// pre-decoded dispatch fast path (differential tests, bench_micro_sim).
class LazyFunctionalSimulator {
 public:
  explicit LazyFunctionalSimulator(const isa::Program& program);

  bool step();
  SimStats run(uint64_t max_instructions = 100'000'000);

  [[nodiscard]] const ArchState& state() const noexcept { return state_; }
  [[nodiscard]] ArchState& state() noexcept { return state_; }

  /// Replaces the architectural state wholesale (snapshot restore).  The
  /// TIM is untouched: code comes from the program, never the snapshot
  /// (self-modifying code is unsupported by design).
  void restore(const ArchState& state) { state_ = state; }

  [[nodiscard]] const ternary::Word9& reg(int index) const { return state_.trf.read(index); }
  [[nodiscard]] int64_t reg_int(int index) const { return state_.trf.read(index).to_int(); }

 private:
  const isa::Instruction& fetch(int64_t pc) const;

  ArchState state_;
  // Lazily-validated TIM rows (self-modifying code unsupported, by design).
  std::vector<isa::Instruction> tim_;
  std::vector<bool> tim_valid_;
};

}  // namespace art9::sim
