// Functional (instruction-at-a-time) ART-9 simulator — the golden model
// that the cycle-accurate pipeline is differentially tested against.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/program.hpp"
#include "sim/machine.hpp"

namespace art9::sim {

class FunctionalSimulator {
 public:
  explicit FunctionalSimulator(const isa::Program& program);

  /// Executes one instruction.  Returns false when the HALT convention
  /// (self-jump) executes — state.pc then rests on the halt instruction.
  bool step();

  /// Runs until HALT or `max_instructions`.
  SimStats run(uint64_t max_instructions = 100'000'000);

  [[nodiscard]] const ArchState& state() const noexcept { return state_; }
  [[nodiscard]] ArchState& state() noexcept { return state_; }

  /// Convenience accessors.
  [[nodiscard]] const ternary::Word9& reg(int index) const { return state_.trf.read(index); }
  [[nodiscard]] int64_t reg_int(int index) const { return state_.trf.read(index).to_int(); }

 private:
  const isa::Instruction& fetch(int64_t pc) const;

  ArchState state_;
  // Pre-decoded TIM rows (self-modifying code unsupported, by design).
  std::vector<isa::Instruction> tim_;
  std::vector<bool> tim_valid_;
};

}  // namespace art9::sim
