// The plane-packed TALU: data-processing semantics of one pre-decoded
// PackedOp on binary-coded-ternary plane pairs — the packed mirror of
// sim::execute(const DecodedOp&, ...).
//
// This is the single definition shared by the packed backends'
// maintainable paths: PackedFunctionalSimulator::step() and the packed
// pipeline's EX stage (PackedPipelineDatapath::alu) both dispatch here.
// The computed-goto run loop in packed_sim.cpp intentionally unrolls the
// same cells into its per-opcode labels (each handler ends in its own
// indirect jump); its bodies must be kept in lock-step with this switch —
// the differential suites run both.
#pragma once

#include <stdexcept>
#include <string>

#include "isa/instruction.hpp"
#include "sim/decoded_image.hpp"
#include "ternary/bct.hpp"
#include "ternary/packed.hpp"

namespace art9::sim {

/// Executes the data-processing portion of `op` on packed operands
/// `a` (= TRF[Ta]) and `b` (= TRF[Tb]); for LUI/LI, `a` is the old
/// destination value.  Branches/jumps/memory ops are *not* handled here
/// (control flow and memory access belong to the dispatch loop / pipeline
/// stages).  Throws std::logic_error for such kinds, mirroring execute().
[[nodiscard]] inline ternary::BctWord9 packed_alu(const PackedOp& op, const ternary::BctWord9& a,
                                                  const ternary::BctWord9& b) {
  namespace pk = ternary::packed;
  using ternary::BctWord9;
  switch (op.kind) {
    case DispatchKind::kMv:
      return b;
    case DispatchKind::kPti:
      return b.pti();
    case DispatchKind::kNti:
      return b.nti();
    case DispatchKind::kSti:
      return b.sti();
    case DispatchKind::kAnd:
      return BctWord9::tand(a, b);
    case DispatchKind::kOr:
      return BctWord9::tor(a, b);
    case DispatchKind::kXor:
      return BctWord9::txor(a, b);
    case DispatchKind::kAdd:
      return pk::add(a, b);
    case DispatchKind::kSub:
      return pk::sub(a, b);
    case DispatchKind::kSr:
      return a.shr(pk::shift_amount(b));
    case DispatchKind::kSl:
      return a.shl(pk::shift_amount(b));
    case DispatchKind::kComp:
      return pk::comp_word(a, b);
    case DispatchKind::kAndi:
      return BctWord9::tand(a, op.word());
    case DispatchKind::kAddi:
      return pk::add_int(a, op.imm);
    case DispatchKind::kSri:
      // Negative amounts wrap to huge unsigned values and clear the word —
      // same contract as the reference path's size_t cast.
      return a.shr(static_cast<unsigned>(static_cast<int>(op.imm)));
    case DispatchKind::kSli:
      return a.shl(static_cast<unsigned>(static_cast<int>(op.imm)));
    case DispatchKind::kLui:
      return op.word();  // complete result, pre-packed at decode
    case DispatchKind::kLi: {
      // {Ta[8:5], imm[4:0]}: keep the high-trit plane bits, OR in the
      // pre-packed low-5 immediate.
      constexpr uint32_t kHigh4 = BctWord9::kMask & ~0x1Fu;
      return BctWord9::from_planes_unchecked((a.neg_plane() & kHigh4) | op.word_neg,
                                             (a.pos_plane() & kHigh4) | op.word_pos);
    }
    default:
      throw std::logic_error("packed TALU: kind has no data-processing result: kind " +
                             std::to_string(static_cast<int>(op.kind)));
  }
}

}  // namespace art9::sim
