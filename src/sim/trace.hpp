// Pipeline execution tracing: a per-cycle snapshot of the five stages and
// the hazard events, streamed to an observer.  The renderer produces the
// classic one-line-per-cycle pipeline diagram used by `art9-run --trace`.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "isa/instruction.hpp"

namespace art9::sim {

/// What one stage holds during a cycle.
struct StageTrace {
  bool valid = false;
  int64_t pc = 0;
  isa::Instruction inst;
};

/// Hazard/control events of one cycle.
enum class CycleEvent : uint8_t {
  kNone,
  kLoadUseStall,
  kBranchHazardStall,
  kRawStall,
  kTakenBranchFlush,
  kHaltSeen,
};

/// Snapshot of one clock cycle (stage order: IF, ID, EX, MEM, WB).
struct CycleTrace {
  uint64_t cycle = 0;
  int64_t fetch_pc = 0;
  bool fetch_active = false;
  std::array<StageTrace, 4> stages;  // ID, EX, MEM, WB
  CycleEvent event = CycleEvent::kNone;

  [[nodiscard]] const StageTrace& id() const { return stages[0]; }
  [[nodiscard]] const StageTrace& ex() const { return stages[1]; }
  [[nodiscard]] const StageTrace& mem() const { return stages[2]; }
  [[nodiscard]] const StageTrace& wb() const { return stages[3]; }
};

using TraceObserver = std::function<void(const CycleTrace&)>;

/// One-line rendering, e.g.
/// "  42 | IF@7      | ID 6:BNE T3,0,-4 | EX 5:COMP ... | flush".
[[nodiscard]] std::string render_trace(const CycleTrace& trace);

/// Event name for logs ("load-use", "flush", ...).
[[nodiscard]] const char* event_name(CycleEvent event);

}  // namespace art9::sim
