// Deterministic fault injection for the simulation service: a seeded
// FaultPlan wraps any Engine in a decorator that injects failures at
// exact, bit-reproducible points in the run, so SimulationService's
// isolation / deadline / checkpoint-retry machinery is testable without
// real hardware faults and every failure a test observes can be replayed
// from its seed.
//
// Three fault classes, all keyed to the *cumulative executed step count*
// of the job (so they fire at the same architectural point regardless of
// how the service slices the run — and, because the per-job FaultState
// survives engine re-creation, a once-fired fault stays fired across a
// checkpoint resume, which is exactly what "transient" means):
//
//   * throw_at_step K — the wrapper runs the inner engine up to exactly
//     K total steps, then throws sim::TransientFault.  throw_count > 1
//     re-arms the fault at 2K, 3K, ... (deterministically exhausting a
//     bounded retry budget resolves the job kFaulted).
//   * stall_at_step K — the wrapper sleeps stall_for once when the run
//     crosses K, modelling a wedged worker so wall-clock deadline
//     enforcement has something real to cut short.
//   * corrupt_checkpoint N — the Nth serialized checkpoint blob the
//     service hands to mutate_checkpoint() gets one seed-chosen byte
//     flipped.  The service's accept path (deserialize before adopting)
//     must then reject it via the snapshot codec's FNV checksum and keep
//     the previous recovery point — corrupt-then-detect.
//
// The decorator forwards everything else (state/checkpoint/restore/
// observer) untouched, so a wrapped engine stays fully conformant up to
// the injected faults.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/engine.hpp"

namespace art9::sim {

/// Immutable description of the faults to inject into one job.  Value
/// semantics; share one plan across jobs freely (each job materializes
/// its own FaultState).
struct FaultPlan {
  /// Throw TransientFault when the job's cumulative step count reaches
  /// this (0 = never).  Fault i of throw_count fires at (i+1) * this.
  uint64_t throw_at_step = 0;
  unsigned throw_count = 1;

  /// Sleep `stall_for` once when the run crosses this step (0 = never) —
  /// a deterministic deadline stall.
  uint64_t stall_at_step = 0;
  std::chrono::milliseconds stall_for{0};

  /// 1-based index of the serialized checkpoint blob to corrupt
  /// (0 = never).  The flipped byte index derives from `seed`.
  uint64_t corrupt_checkpoint = 0;

  /// Drives seeded() and picks the corrupted checkpoint byte.
  uint64_t seed = 0;

  /// A reproducible random plan: one transient throw at a seed-chosen
  /// step in [1, max_step].  The stress tests' bulk fault source.
  [[nodiscard]] static FaultPlan seeded(uint64_t seed, uint64_t max_step,
                                        unsigned throws = 1) noexcept;
};

/// The mutable half of a plan: per-job counters that persist across the
/// engine re-creations of a checkpoint retry (a fired fault stays fired
/// on the resumed engine).  Single-job, single-worker object — not
/// thread-safe, by design (a job never runs on two workers at once).
class FaultState {
 public:
  explicit FaultState(FaultPlan plan) noexcept : plan_(plan) {}

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// Cumulative steps executed under fault injection, across retries.
  [[nodiscard]] uint64_t steps_seen() const noexcept { return steps_; }
  [[nodiscard]] unsigned faults_fired() const noexcept { return fired_; }
  [[nodiscard]] bool stalled() const noexcept { return stalled_; }
  [[nodiscard]] uint64_t checkpoints_seen() const noexcept { return checkpoints_; }

  /// Steps until the next injection event strictly after `steps_seen()`,
  /// or UINT64_MAX when nothing is pending.
  [[nodiscard]] uint64_t steps_until_event() const noexcept;

  /// Advances the step counter and fires any event it crossed: sleeps
  /// the stall, throws TransientFault at a throw point.
  void advance(uint64_t steps);

  /// Service hook: counts a checkpoint blob and flips one seed-chosen
  /// byte when this is the plan's corrupt_checkpoint-th blob.
  void mutate_checkpoint(std::vector<uint8_t>& blob);

 private:
  FaultPlan plan_;
  uint64_t steps_ = 0;
  unsigned fired_ = 0;
  bool stalled_ = false;
  uint64_t checkpoints_ = 0;
};

/// Wraps `inner` in the fault-injecting decorator described above.
/// `state` carries the plan and must outlive the returned engine; pass
/// the same state to every wrap of one job so counters persist across
/// checkpoint resumes.  Throws std::invalid_argument on null arguments.
[[nodiscard]] std::unique_ptr<Engine> with_fault_injection(std::unique_ptr<Engine> inner,
                                                           std::shared_ptr<FaultState> state);

}  // namespace art9::sim
