// BatchRunner: executes a batch of independent programs back-to-back on
// the functional simulator, decoding each distinct program exactly once.
//
// This is the multi-scenario direction from the ROADMAP: a sweep over N
// program variants (or N runs of one program) shares pre-decoded
// DecodedImages instead of re-decoding 19683 TIM rows per run.  Results
// are bit-identical to standalone FunctionalSimulator::run() calls —
// locked by tests/sim/batch_runner_test.cpp — and the plane-packed SWAR
// backend (SimBackend::kPacked) is bit-identical to the reference one,
// locked by tests/sim/packed_sim_test.cpp.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/program.hpp"
#include "sim/decoded_image.hpp"
#include "sim/machine.hpp"

namespace art9::sim {

/// Which execution backend BatchRunner drives.  Both produce bit-identical
/// results; kPacked runs the plane-packed SWAR datapath (faster host
/// execution, converted back at the result boundary).
enum class SimBackend {
  kReference,  // FunctionalSimulator — Trit-array golden model
  kPacked,     // PackedFunctionalSimulator — BCT plane pairs
};

class BatchRunner {
 public:
  /// Final architectural state and run statistics of one batch entry.
  struct Result {
    ArchState state;
    SimStats stats;
  };

  explicit BatchRunner(uint64_t max_instructions = 100'000'000,
                       SimBackend backend = SimBackend::kReference)
      : max_instructions_(max_instructions), backend_(backend) {}

  [[nodiscard]] SimBackend backend() const noexcept { return backend_; }

  /// Queues `program`, decoding it into a fresh image.  Returns the job
  /// index and the image so further jobs can share it.
  std::shared_ptr<const DecodedImage> add(const isa::Program& program);

  /// Queues another run of an already-decoded image (no decode cost).
  /// `image` must be non-null.
  void add(std::shared_ptr<const DecodedImage> image);

  [[nodiscard]] std::size_t size() const noexcept { return jobs_.size(); }

  /// Runs every queued job in order and returns one Result per job.
  /// The queue is left intact, so run_all() is repeatable.
  [[nodiscard]] std::vector<Result> run_all() const;

 private:
  uint64_t max_instructions_;
  SimBackend backend_;
  std::vector<std::shared_ptr<const DecodedImage>> jobs_;
};

}  // namespace art9::sim
