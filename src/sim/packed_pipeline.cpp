#include "sim/packed_pipeline.hpp"

#include <utility>

#include "sim/packed_alu.hpp"

namespace art9::sim {
namespace detail {

using Word = PackedPipelineDatapath::Word;

Word PackedPipelineDatapath::alu(const DecodedOp& dop, const Word& a, const Word& b) const {
  // The shared packed TALU (packed_alu.hpp) — the same cells the
  // PackedFunctionalSimulator dispatches; BctWord9 <-> PackedWord<9>
  // conversions are free plane copies.
  return ternary::packed::from_bct(
      packed_alu(packed(dop), ternary::packed::to_bct(a), ternary::packed::to_bct(b)));
}

ArchState PackedPipelineDatapath::unpack_state() const {
  ArchState out;
  for (int i = 0; i < isa::kNumRegisters; ++i) {
    out.trf.write(i, trf_[static_cast<std::size_t>(i)].decode());
  }
  out.tdm = tdm_.unpack();
  out.pc = pc_;
  return out;
}

void PackedPipelineDatapath::load_state(const ArchState& s) {
  for (int i = 0; i < isa::kNumRegisters; ++i) {
    trf_[static_cast<std::size_t>(i)] =
        ternary::packed::from_bct(ternary::BctWord9::encode(s.trf.read(i)));
  }
  tdm_ = PackedMemory{};
  for (int64_t addr = -ternary::Word9::kMaxValue; addr <= ternary::Word9::kMaxValue; ++addr) {
    const ternary::Word9& w = s.tdm.peek(addr);
    if (w == ternary::Word9{}) continue;  // zero rows match the default
    tdm_.poke(addr, ternary::BctWord9::encode(w));
  }
  tdm_.set_counters(s.tdm.reads(), s.tdm.writes());
  pc_ = s.pc;
}

}  // namespace detail

PackedPipelineSimulator::PackedPipelineSimulator(const isa::Program& program,
                                                 PipelineConfig config)
    : PackedPipelineSimulator(decode(program), config) {}

PackedPipelineSimulator::PackedPipelineSimulator(std::shared_ptr<const DecodedImage> image,
                                                 PipelineConfig config)
    : PipelineModel(std::move(image), config) {}

}  // namespace art9::sim
