#include "sim/packed_pipeline.hpp"

#include <utility>

#include "sim/packed_alu.hpp"

namespace art9::sim {
namespace detail {

using Word = PackedPipelineDatapath::Word;

Word PackedPipelineDatapath::alu(const DecodedOp& dop, const Word& a, const Word& b) const {
  // The shared packed TALU (packed_alu.hpp) — the same cells the
  // PackedFunctionalSimulator dispatches; BctWord9 <-> PackedWord<9>
  // conversions are free plane copies.
  return ternary::packed::from_bct(
      packed_alu(packed(dop), ternary::packed::to_bct(a), ternary::packed::to_bct(b)));
}

ArchState PackedPipelineDatapath::unpack_state() const {
  ArchState out;
  for (int i = 0; i < isa::kNumRegisters; ++i) {
    out.trf.write(i, trf_[static_cast<std::size_t>(i)].decode());
  }
  out.tdm = tdm_.unpack();
  out.pc = pc_;
  return out;
}

}  // namespace detail

PackedPipelineSimulator::PackedPipelineSimulator(const isa::Program& program,
                                                 PipelineConfig config)
    : PackedPipelineSimulator(decode(program), config) {}

PackedPipelineSimulator::PackedPipelineSimulator(std::shared_ptr<const DecodedImage> image,
                                                 PipelineConfig config)
    : PipelineModel(std::move(image), config) {}

}  // namespace art9::sim
