#include "sim/packed_sim.hpp"

#include <string>
#include <utility>

#include "sim/packed_alu.hpp"
#include "ternary/packed.hpp"

namespace art9::sim {

using ternary::BctWord9;
namespace pk = ternary::packed;

PackedFunctionalSimulator::PackedFunctionalSimulator(const isa::Program& program)
    : PackedFunctionalSimulator(decode(program)) {}

PackedFunctionalSimulator::PackedFunctionalSimulator(std::shared_ptr<const DecodedImage> image)
    : image_(std::move(image)), prows_(image_->packed_rows()) {
  for (const isa::DataWord& d : image_->program().data) {
    tdm_.poke(d.address, BctWord9::encode(d.value));
  }
  pc_ = image_->program().entry;
  row_ = DecodedImage::row_of(pc_);
}

bool PackedFunctionalSimulator::step() {
  const PackedOp& op = prows_[row_];
  BctWord9* const trf = trf_.data();
  const std::size_t ta = op.ta;
  const std::size_t tb = op.tb;
  switch (op.kind) {
    case DispatchKind::kBeq:
    case DispatchKind::kBne: {
      const bool eq = trf[tb].lst_value() == op.bcond;
      const bool taken = op.kind == DispatchKind::kBeq ? eq : !eq;
      if (taken) {
        pc_ = op.taken_pc;
        row_ = op.taken_row;
      } else {
        pc_ = op.next_pc;
        row_ = op.next_row;
      }
      return true;
    }
    case DispatchKind::kHalt:
      return false;
    case DispatchKind::kJal:
      trf[ta] = op.word();  // the pre-packed link
      pc_ = op.taken_pc;
      row_ = op.taken_row;
      return true;
    case DispatchKind::kJalr: {
      const int32_t target = pk::wrap(pk::to_int(trf[tb]) + op.imm);
      if (target == op.pc) return false;  // self-jump = halt (no link write)
      trf[ta] = op.word();
      pc_ = target;
      row_ = pk::row_of(target);
      return true;
    }
    case DispatchKind::kLoad: {
      const int32_t addr = pk::to_int(trf[tb]) + op.imm;
      trf[ta] = tdm_.read_row(pk::row_of(addr));
      break;
    }
    case DispatchKind::kStore: {
      const int32_t addr = pk::to_int(trf[tb]) + op.imm;
      tdm_.write_row(pk::row_of(addr), trf[ta]);
      break;
    }
    case DispatchKind::kInvalid:
      throw SimError("fetch from uninitialised TIM address " + std::to_string(op.pc));
    default:
      // Every data-processing opcode: one shared packed TALU cell.
      trf[ta] = packed_alu(op, trf[ta], trf[tb]);
      break;
  }
  pc_ = op.next_pc;
  row_ = op.next_row;
  return true;
}

// Threaded dispatch (computed goto) is a GNU extension; other compilers
// fall back to the portable step() loop.
#if defined(__GNUC__) || defined(__clang__)
#define ART9_THREADED_DISPATCH 1
#endif

#if ART9_THREADED_DISPATCH

SimStats PackedFunctionalSimulator::run(uint64_t max_instructions) {
  // Branch-lean threaded dispatch loop: because row <-> PC is a bijection
  // and every control-flow target is a precomputed row, the whole
  // architectural position is one 32-bit row index — pc_ is recovered from
  // the row table at the exit boundary.  Each handler ends in its own
  // indirect jump, so the host branch predictor learns per-opcode successor
  // patterns instead of sharing one switch branch.  The data-processing
  // handler bodies intentionally unroll the shared packed_alu() cells
  // (packed_alu.hpp) per label and must be kept in lock-step with that
  // switch — the differential suite runs both paths.
  static const void* const kHandlers[] = {
      &&h_mv,   &&h_pti,  &&h_nti, &&h_sti,  &&h_and,  &&h_or,   &&h_xor,
      &&h_add,  &&h_sub,  &&h_sr,  &&h_sl,   &&h_comp, &&h_andi, &&h_addi,
      &&h_sri,  &&h_sli,  &&h_lui, &&h_li,   &&h_beq,  &&h_bne,  &&h_jal,
      &&h_jalr, &&h_load, &&h_store, &&h_halt, &&h_invalid,
  };
  static_assert(sizeof(kHandlers) / sizeof(kHandlers[0]) ==
                    static_cast<std::size_t>(DispatchKind::kInvalid) + 1,
                "handler table must cover every DispatchKind");

  const PackedOp* const rows = prows_;
  BctWord9* const trf = trf_.data();
  BctWord9* const mem = tdm_.data();
  uint32_t row = static_cast<uint32_t>(row_);
  uint64_t executed = 0;
  uint64_t mem_reads = 0;
  uint64_t mem_writes = 0;
  bool halted = false;
  const PackedOp* op;

#define ART9_DISPATCH()                                   \
  do {                                                    \
    if (executed >= max_instructions) goto budget;        \
    op = rows + row;                                      \
    goto* kHandlers[static_cast<uint8_t>(op->kind)];      \
  } while (0)
#define ART9_NEXT()   \
  row = op->next_row; \
  ++executed;         \
  ART9_DISPATCH()

  ART9_DISPATCH();

h_mv:
  trf[op->ta] = trf[op->tb];
  ART9_NEXT();
h_pti:
  trf[op->ta] = trf[op->tb].pti();
  ART9_NEXT();
h_nti:
  trf[op->ta] = trf[op->tb].nti();
  ART9_NEXT();
h_sti:
  trf[op->ta] = trf[op->tb].sti();
  ART9_NEXT();
h_and:
  trf[op->ta] = BctWord9::tand(trf[op->ta], trf[op->tb]);
  ART9_NEXT();
h_or:
  trf[op->ta] = BctWord9::tor(trf[op->ta], trf[op->tb]);
  ART9_NEXT();
h_xor:
  trf[op->ta] = BctWord9::txor(trf[op->ta], trf[op->tb]);
  ART9_NEXT();
h_add:
  trf[op->ta] = pk::add(trf[op->ta], trf[op->tb]);
  ART9_NEXT();
h_sub:
  trf[op->ta] = pk::sub(trf[op->ta], trf[op->tb]);
  ART9_NEXT();
h_sr:
  trf[op->ta] = trf[op->ta].shr(pk::shift_amount(trf[op->tb]));
  ART9_NEXT();
h_sl:
  trf[op->ta] = trf[op->ta].shl(pk::shift_amount(trf[op->tb]));
  ART9_NEXT();
h_comp:
  trf[op->ta] = pk::comp_word(trf[op->ta], trf[op->tb]);
  ART9_NEXT();
h_andi:
  trf[op->ta] = BctWord9::tand(trf[op->ta], op->word());
  ART9_NEXT();
h_addi:
  trf[op->ta] = pk::add_int(trf[op->ta], op->imm);
  ART9_NEXT();
h_sri:
  trf[op->ta] = trf[op->ta].shr(static_cast<unsigned>(static_cast<int>(op->imm)));
  ART9_NEXT();
h_sli:
  trf[op->ta] = trf[op->ta].shl(static_cast<unsigned>(static_cast<int>(op->imm)));
  ART9_NEXT();
h_lui:
  trf[op->ta] = op->word();
  ART9_NEXT();
h_li: {
  constexpr uint32_t kHigh4 = BctWord9::kMask & ~0x1Fu;
  trf[op->ta] = BctWord9::from_planes_unchecked((trf[op->ta].neg_plane() & kHigh4) | op->word_neg,
                                                (trf[op->ta].pos_plane() & kHigh4) | op->word_pos);
  ART9_NEXT();
}
h_beq:
  row = trf[op->tb].lst_value() == op->bcond ? op->taken_row : op->next_row;
  ++executed;
  ART9_DISPATCH();
h_bne:
  row = trf[op->tb].lst_value() != op->bcond ? op->taken_row : op->next_row;
  ++executed;
  ART9_DISPATCH();
h_jal:
  trf[op->ta] = op->word();  // the pre-packed link
  row = op->taken_row;
  ++executed;
  ART9_DISPATCH();
h_jalr: {
  const int32_t target = pk::wrap(pk::to_int(trf[op->tb]) + op->imm);
  if (target == op->pc) {
    halted = true;
    goto done;
  }
  trf[op->ta] = op->word();
  row = static_cast<uint32_t>(pk::row_of(target));
  ++executed;
  ART9_DISPATCH();
}
h_load: {
  const int32_t addr = pk::to_int(trf[op->tb]) + op->imm;
  trf[op->ta] = mem[pk::row_of(addr)];
  ++mem_reads;
  ART9_NEXT();
}
h_store: {
  const int32_t addr = pk::to_int(trf[op->tb]) + op->imm;
  mem[pk::row_of(addr)] = trf[op->ta];
  ++mem_writes;
  ART9_NEXT();
}
h_halt:
  halted = true;
  goto done;
h_invalid:
  row_ = row;
  pc_ = rows[row].pc;
  tdm_.add_counters(mem_reads, mem_writes);
  throw SimError("fetch from uninitialised TIM address " + std::to_string(op->pc));
budget:
done:

#undef ART9_DISPATCH
#undef ART9_NEXT

  row_ = row;
  pc_ = rows[row].pc;
  tdm_.add_counters(mem_reads, mem_writes);
  SimStats stats;
  stats.instructions = executed;
  stats.cycles = executed;
  stats.halt = halted ? HaltReason::kHalted : HaltReason::kMaxCycles;
  return stats;
}

#else  // !ART9_THREADED_DISPATCH — portable single-step loop.

SimStats PackedFunctionalSimulator::run(uint64_t max_instructions) {
  SimStats stats;
  while (stats.instructions < max_instructions) {
    if (!step()) {
      stats.halt = HaltReason::kHalted;
      stats.cycles = stats.instructions;
      return stats;
    }
    ++stats.instructions;
  }
  stats.halt = HaltReason::kMaxCycles;
  stats.cycles = stats.instructions;
  return stats;
}

#endif  // ART9_THREADED_DISPATCH

ArchState PackedFunctionalSimulator::unpack_state() const {
  ArchState out;
  for (int i = 0; i < isa::kNumRegisters; ++i) {
    out.trf.write(i, trf_[static_cast<std::size_t>(i)].decode());
  }
  out.tdm = tdm_.unpack();
  out.pc = pc_;
  return out;
}

void PackedFunctionalSimulator::restore(const ArchState& state) {
  for (int i = 0; i < isa::kNumRegisters; ++i) {
    trf_[static_cast<std::size_t>(i)] = BctWord9::encode(state.trf.read(i));
  }
  tdm_ = PackedMemory{};
  for (int64_t addr = -ternary::Word9::kMaxValue; addr <= ternary::Word9::kMaxValue; ++addr) {
    const ternary::Word9& w = state.tdm.peek(addr);
    if (w == ternary::Word9{}) continue;  // zero rows match the default
    tdm_.poke(addr, BctWord9::encode(w));
  }
  tdm_.set_counters(state.tdm.reads(), state.tdm.writes());
  pc_ = state.pc;
  row_ = DecodedImage::row_of(pc_);
}

ternary::Word9 PackedFunctionalSimulator::reg(int index) const {
  return trf_.at(static_cast<std::size_t>(index)).decode();
}

int64_t PackedFunctionalSimulator::reg_int(int index) const { return reg(index).to_int(); }

}  // namespace art9::sim
