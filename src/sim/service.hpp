// SimulationService: schedules a batch of independent simulation jobs
// across a std::thread worker pool, one Engine per job — mixing ISAs
// freely (ART-9 and rv32 jobs ride the same queue).
//
// This replaces the sequential BatchRunner.  Decoded images (either
// ISA's) are immutable after construction, so any number of jobs —
// across threads — share one image with zero decode cost; every engine
// owns its private architectural state.  Determinism: a job's result depends only on its
// (image, kind, budget), never on scheduling, so `threads = N` returns
// results bit-identical to `threads = 1` (locked by
// tests/sim/service_test.cpp); results are indexed by job order, not by
// completion order.  With `threads = 1` jobs additionally *execute* in
// submission order on the calling thread.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/program.hpp"
#include "sim/engine.hpp"

namespace art9::sim {

class SimulationService {
 public:
  /// One scheduled simulation: an engine kind over a shared image of
  /// either ISA, with a private budget and (for the pipeline kinds)
  /// microarchitecture options.  The kind must match the image's ISA.
  struct Job {
    EngineImage image;
    EngineKind kind = EngineKind::kFunctional;
    RunOptions run;
    EngineOptions engine;
  };

  /// Aggregate throughput of one run_all() call.
  struct BatchStats {
    unsigned threads = 0;       // workers actually used
    double wall_seconds = 0.0;  // submission to last join
    uint64_t instructions = 0;  // sum of retired instructions
    uint64_t cycles = 0;        // sum of simulated cycles

    /// Aggregate simulated instructions per host second.
    [[nodiscard]] double steps_per_sec() const {
      return wall_seconds > 0.0 ? static_cast<double>(instructions) / wall_seconds : 0.0;
    }
  };

  /// `threads = 0` uses std::thread::hardware_concurrency() (min 1).
  explicit SimulationService(unsigned threads = 0);

  /// The resolved worker-pool width.
  [[nodiscard]] unsigned threads() const noexcept { return threads_; }

  /// Queues `job`.  Returns the job index (== result index).
  /// Throws std::invalid_argument on a null image.
  std::size_t add(Job job);

  /// Queues a run of an already-decoded image (either ISA).
  std::size_t add(std::shared_ptr<const DecodedImage> image,
                  EngineKind kind = EngineKind::kFunctional, RunOptions run = {});
  std::size_t add(std::shared_ptr<const rv32::Rv32DecodedImage> image,
                  EngineKind kind = EngineKind::kRv32, RunOptions run = {});

  /// Queues `program`, decoding it into a fresh image.  Returns the image
  /// so further jobs can share it.
  std::shared_ptr<const DecodedImage> add(const isa::Program& program,
                                          EngineKind kind = EngineKind::kFunctional,
                                          RunOptions run = {});
  std::shared_ptr<const rv32::Rv32DecodedImage> add(const rv32::Rv32Program& program,
                                                    EngineKind kind = EngineKind::kRv32,
                                                    RunOptions run = {});

  [[nodiscard]] std::size_t size() const noexcept { return jobs_.size(); }

  /// Runs every queued job and returns one RunResult per job, in job
  /// order.  The queue is left intact, so run_all() is repeatable.  If any
  /// job throws (e.g. SimError on an uninitialised fetch), the
  /// lowest-indexed exception is rethrown after all workers drain.
  /// `batch`, when non-null, receives aggregate throughput stats.
  [[nodiscard]] std::vector<RunResult> run_all(BatchStats* batch = nullptr) const;

 private:
  unsigned threads_;
  std::vector<Job> jobs_;
};

}  // namespace art9::sim
