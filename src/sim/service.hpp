// SimulationService: an asynchronous, fault-isolating job scheduler over
// the cross-ISA Engine facade.  submit(Job) returns a future-style
// JobHandle immediately; a persistent worker pool executes jobs one
// engine each (mixing ISAs freely) and every job resolves to a
// structured JobOutcome — one bad job never poisons the batch.
//
// Outcome taxonomy (JobResult::outcome):
//
//   kCompleted        ran to the halt convention; state/stats attached
//   kTrapped          the program itself trapped (SimError) — deterministic,
//                     never retried; trap text + state at the trap attached
//   kBudgetExhausted  RunOptions::max_steps spent; state/stats attached
//   kDeadlineExceeded per-job wall-clock deadline cut the run short;
//                     state/stats at the cut attached
//   kCancelled        JobHandle::cancel() honoured (cooperatively, between
//                     slices); state/stats at the cut attached if started
//   kFaulted          a TransientFault outran the retry budget; stats as of
//                     the last recovery point attached
//
// Long runs are sliced into run_stats chunks so cancellation and the
// deadline are checked cooperatively mid-job, and — when
// JobControls::checkpoint_every is set — an instruction-boundary
// checkpoint (Engine::checkpoint, serialized through sim/snapshot.hpp
// and validated by its checksum before adoption) is taken every N steps.
// On a TransientFault (see sim/fault_injection.hpp) the job retries by
// make_engine(kind, image, snapshot) resume from the last valid
// checkpoint, up to JobControls::retries times with exponential backoff;
// a plain SimError is a deterministic program trap and resolves kTrapped
// immediately.
//
// Determinism: a job's *architectural* result depends only on its
// (image, kind, budget, fault plan), never on scheduling — threads = N
// is bit-identical to threads = 1, checkpoint/resume included (locked by
// tests/sim/service_test.cpp and service_async_test.cpp).  Deadline and
// cancellation outcomes are wall-clock-dependent by nature; their
// *classification* is what tests lock.
//
// run_all() remains as a thin batch adapter over submit + wait: queue
// jobs with add(), collect one JobResult per job in job order.  Unlike
// the pre-async service it never rethrows a job's exception — a trapping
// job resolves kTrapped while its siblings' results stay intact.
//
// Cohorts: submit_cohort() schedules up to FleetSimulator::kMaxLanes
// fleet-kind jobs sharing one DecodedImage as a single unit of worker
// work — one bit-sliced FleetSimulator executes every lane at once, and
// each job still resolves to its own independent JobResult (outcome,
// state and stats bit-identical to running it alone).  run_all() packs
// eligible fleet jobs into cohorts transparently.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "isa/program.hpp"
#include "sim/engine.hpp"

namespace art9::sim {

struct FaultPlan;  // sim/fault_injection.hpp

/// How a job resolved.  Every submitted job resolves to exactly one.
enum class JobOutcome : uint8_t {
  kCompleted,
  kTrapped,
  kBudgetExhausted,
  kDeadlineExceeded,
  kCancelled,
  kFaulted,
};

/// Stable lower-case name ("completed", "trapped", "budget_exhausted",
/// "deadline_exceeded", "cancelled", "faulted") — art9-run's report
/// vocabulary.
[[nodiscard]] std::string_view job_outcome_name(JobOutcome outcome) noexcept;

/// Per-job scheduling controls, all optional.
struct JobControls {
  /// Wall-clock budget measured from submit() (0 = none).  Checked
  /// between slices and before dispatch, so a job can expire while
  /// still queued.
  std::chrono::milliseconds deadline{0};

  /// Take a recovery checkpoint every N executed steps (0 = off).  The
  /// serialized blob is validated (checksum) before adoption; a corrupt
  /// blob is discarded and the previous recovery point kept.
  uint64_t checkpoint_every = 0;

  /// Retries granted on TransientFault.  Each retry resumes from the
  /// last valid checkpoint (or restarts when none exists yet).
  unsigned retries = 0;

  /// Backoff slept before retry r (0-based): retry_backoff << r.
  std::chrono::milliseconds retry_backoff{0};

  /// Cooperative slice length in engine steps (0 = the service default,
  /// 1M).  Bounds cancellation/deadline latency; tightened automatically
  /// to hit checkpoint boundaries exactly.
  uint64_t slice_steps = 0;

  /// Deterministic fault injection (tests, CLI drills); nullptr = none.
  std::shared_ptr<const FaultPlan> fault;
};

/// What a job resolves to.  `run` carries the engine's final
/// MachineState/SimStats where meaningful (see the taxonomy above);
/// stats are accumulated across slices and — after a checkpoint resume —
/// across engine incarnations, so a recovered run reports the same
/// totals as an uninterrupted one.
struct JobResult {
  JobOutcome outcome = JobOutcome::kCompleted;
  RunResult run;
  std::string error;        // kTrapped / kFaulted: the throwing message
  unsigned retries = 0;     // retries consumed
  uint64_t checkpoints = 0;  // recovery points adopted
  uint64_t corrupt_checkpoints = 0;  // blobs rejected by the codec checksum
  bool resumed = false;     // at least one retry resumed from a checkpoint
};

namespace detail {
struct JobState;

/// Scheduler introspection counters, shared by the service and every
/// JobState (a shared_ptr, so a handle resolving during service teardown
/// never touches a freed service).  `in_flight` is instantaneous; the
/// rest are monotone.
struct ServiceCounters {
  std::atomic<uint64_t> submitted{0};
  std::atomic<uint64_t> resolved{0};
  std::atomic<std::size_t> in_flight{0};
  std::array<std::atomic<uint64_t>, 6> outcomes{};  // indexed by JobOutcome
};
}  // namespace detail

/// Future-style view of one submitted job.  Copyable (all copies share
/// the job); a default-constructed handle is empty.  Handles outlive the
/// service: results stay readable after the service is destroyed.
class JobHandle {
 public:
  JobHandle() = default;

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  /// The job index assigned at submit (== run_all result index).
  [[nodiscard]] std::size_t id() const noexcept;

  /// True once a worker has picked the job up (it may also already be
  /// done).  False for a job still queued.
  [[nodiscard]] bool started() const noexcept;

  /// True once the result is available; never blocks.
  [[nodiscard]] bool ready() const noexcept;

  /// Blocks until the job resolves.  On return, every callback that was
  /// registered before resolution has already finished running.
  void wait() const;

  /// Blocks up to `timeout`; true when the job resolved in time.
  [[nodiscard]] bool wait_for(std::chrono::milliseconds timeout) const;

  /// Blocks until resolved, then returns the result (valid as long as
  /// any handle to this job lives).
  [[nodiscard]] const JobResult& result() const;

  /// Requests cooperative cancellation: a queued job resolves kCancelled
  /// without running; a running job stops at the next slice boundary.  A
  /// resolved job is unaffected.  Idempotent.
  void cancel() const noexcept;

  /// Registers `callback` to run exactly once with the result — on the
  /// resolving worker thread, or inline right now when already resolved.
  /// Callbacks must not block on other jobs of a saturated pool, and must
  /// not block on their own handle (wait() returns only after they ran).
  void on_complete(std::function<void(const JobResult&)> callback) const;

 private:
  friend class SimulationService;
  explicit JobHandle(std::shared_ptr<detail::JobState> state) : state_(std::move(state)) {}

  std::shared_ptr<detail::JobState> state_;
};

class SimulationService {
 public:
  /// One scheduled simulation: an engine kind over a shared image of
  /// either ISA, with a private budget, (for the pipeline kinds)
  /// microarchitecture options, and scheduling controls.  The kind must
  /// match the image's ISA.
  struct Job {
    EngineImage image;
    EngineKind kind = EngineKind::kFunctional;
    RunOptions run;
    EngineOptions engine;
    JobControls control;
  };

  /// Aggregate throughput of one run_all() call.
  struct BatchStats {
    unsigned threads = 0;       // workers actually used
    double wall_seconds = 0.0;  // submission to last result
    uint64_t instructions = 0;  // sum of retired instructions
    uint64_t cycles = 0;        // sum of simulated cycles

    /// Aggregate simulated instructions per host second.
    [[nodiscard]] double steps_per_sec() const {
      return wall_seconds > 0.0 ? static_cast<double>(instructions) / wall_seconds : 0.0;
    }
  };

  /// `threads = 0` uses std::thread::hardware_concurrency() (min 1).
  /// Workers start lazily at the first submit.
  explicit SimulationService(unsigned threads = 0);

  /// Drains: blocks until every submitted job has resolved, then joins
  /// the pool.  Cancel outstanding handles first for a fast exit.
  ~SimulationService();

  SimulationService(const SimulationService&) = delete;
  SimulationService& operator=(const SimulationService&) = delete;

  /// The resolved worker-pool width.
  [[nodiscard]] unsigned threads() const noexcept { return threads_; }

  // --- async API -----------------------------------------------------------

  /// Schedules `job` and returns immediately.  With one worker, jobs
  /// execute in submission order.  Throws std::invalid_argument on a
  /// null image.
  JobHandle submit(Job job);

  /// Convenience submits mirroring the add() family.
  JobHandle submit(std::shared_ptr<const DecodedImage> image,
                   EngineKind kind = EngineKind::kFunctional, RunOptions run = {},
                   JobControls control = {});
  JobHandle submit(std::shared_ptr<const rv32::Rv32DecodedImage> image,
                   EngineKind kind = EngineKind::kRv32, RunOptions run = {},
                   JobControls control = {});

  /// Schedules `jobs` as fleet cohorts: chunks of up to
  /// FleetSimulator::kMaxLanes jobs become one unit of worker work each,
  /// executed by a single bit-sliced FleetSimulator (one lane per job).
  /// Every job still resolves independently — per-lane budget, deadline,
  /// cancellation and outcome classification all match running the job
  /// alone bit-for-bit.  Requirements (std::invalid_argument otherwise):
  /// at least one job; every job uses EngineKind::kFleet and the same
  /// DecodedImage as the first; no checkpointing, retries or fault
  /// injection (deadline and slice_steps are honoured per lane).
  /// Returns one handle per job, in job order.
  std::vector<JobHandle> submit_cohort(std::vector<Job> jobs);

  // --- batch API (compatibility adapter over submit + wait) ----------------

  /// Queues `job`.  Returns the job index (== result index).
  /// Throws std::invalid_argument on a null image.
  std::size_t add(Job job);

  /// Queues a run of an already-decoded image (either ISA).
  std::size_t add(std::shared_ptr<const DecodedImage> image,
                  EngineKind kind = EngineKind::kFunctional, RunOptions run = {});
  std::size_t add(std::shared_ptr<const rv32::Rv32DecodedImage> image,
                  EngineKind kind = EngineKind::kRv32, RunOptions run = {});

  /// Queues `program`, decoding it into a fresh image.  Returns the image
  /// so further jobs can share it.
  std::shared_ptr<const DecodedImage> add(const isa::Program& program,
                                          EngineKind kind = EngineKind::kFunctional,
                                          RunOptions run = {});
  std::shared_ptr<const rv32::Rv32DecodedImage> add(const rv32::Rv32Program& program,
                                                    EngineKind kind = EngineKind::kRv32,
                                                    RunOptions run = {});

  [[nodiscard]] std::size_t size() const noexcept { return jobs_.size(); }

  // --- introspection (the /v1/metrics feed of the serve front end) ----------

  /// Jobs submitted but not yet picked up by a worker.
  [[nodiscard]] std::size_t queued() const;

  /// Jobs a worker has picked up but not yet resolved.
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return counters_->in_flight.load(std::memory_order_acquire);
  }

  /// Workers actually spawned (0 until the first submit — the pool starts
  /// lazily; `threads()` is the configured width).
  [[nodiscard]] unsigned worker_count() const;

  /// Jobs accepted by submit() over the service lifetime.
  [[nodiscard]] uint64_t submitted() const noexcept {
    return counters_->submitted.load(std::memory_order_acquire);
  }

  /// Jobs resolved to any outcome.  Equals the sum of outcome_count over
  /// all six outcomes, and — once drained — submitted().
  [[nodiscard]] uint64_t resolved() const noexcept {
    return counters_->resolved.load(std::memory_order_acquire);
  }

  /// Jobs resolved to `outcome`.  Counted before the resolving job's
  /// wait()/result() returns, so a drained batch always sums exactly.
  [[nodiscard]] uint64_t outcome_count(JobOutcome outcome) const noexcept {
    return counters_->outcomes[static_cast<std::size_t>(outcome)].load(std::memory_order_acquire);
  }

  /// Submits every queued job and waits: one JobResult per job, in job
  /// order.  The queue is left intact, so run_all() is repeatable.  Job
  /// failures resolve as outcomes (kTrapped and friends) — completed
  /// siblings keep their results; nothing is rethrown.  Fleet-kind jobs
  /// that share an image and carry no checkpoint/retry/fault controls
  /// are packed into cohorts transparently (results keep job order and
  /// stay bit-identical to individual submission).  `batch`, when
  /// non-null, receives aggregate throughput stats.
  [[nodiscard]] std::vector<JobResult> run_all(BatchStats* batch = nullptr);

 private:
  /// One unit of worker work: a solo job (size 1) or a fleet cohort.
  using WorkItem = std::vector<std::shared_ptr<detail::JobState>>;

  void worker_loop();
  void ensure_workers();
  std::shared_ptr<detail::JobState> make_state(Job job);
  void enqueue(WorkItem item);

  unsigned threads_;
  std::vector<Job> jobs_;  // the add() queue (run_all input)
  std::shared_ptr<detail::ServiceCounters> counters_ =
      std::make_shared<detail::ServiceCounters>();

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<WorkItem> queue_;
  std::vector<std::thread> workers_;
  std::size_t next_id_ = 0;
  bool stopping_ = false;
};

}  // namespace art9::sim
