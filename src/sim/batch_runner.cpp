#include "sim/batch_runner.hpp"

#include <stdexcept>
#include <utility>

#include "sim/functional_sim.hpp"
#include "sim/packed_sim.hpp"

namespace art9::sim {

std::shared_ptr<const DecodedImage> BatchRunner::add(const isa::Program& program) {
  std::shared_ptr<const DecodedImage> image = decode(program);
  jobs_.push_back(image);
  return image;
}

void BatchRunner::add(std::shared_ptr<const DecodedImage> image) {
  if (!image) throw std::invalid_argument("BatchRunner::add: null image");
  jobs_.push_back(std::move(image));
}

std::vector<BatchRunner::Result> BatchRunner::run_all() const {
  std::vector<Result> results;
  results.reserve(jobs_.size());
  for (const std::shared_ptr<const DecodedImage>& image : jobs_) {
    if (backend_ == SimBackend::kPacked) {
      PackedFunctionalSimulator sim(image);
      SimStats stats = sim.run(max_instructions_);
      results.push_back(Result{sim.unpack_state(), stats});
    } else {
      FunctionalSimulator sim(image);
      SimStats stats = sim.run(max_instructions_);
      results.push_back(Result{sim.state(), stats});
    }
  }
  return results;
}

}  // namespace art9::sim
