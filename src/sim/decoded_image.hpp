// Eager full-program pre-decode: the dense dispatch table shared by the
// functional and pipelined simulators' hot loops.
//
// The seed simulators decoded lazily — every step paid a `tim_valid_`
// bitmap branch, an OpcodeSpec table lookup, and one `ArchState::wrap`
// (a full 9-trit encode/decode round trip) just to advance the PC.  A
// DecodedImage instead decodes the whole TIM once, up front, into one
// row per 9-trit address:
//
//  * a dense DispatchKind replaces the validity bitmap — uninitialised
//    rows carry `kInvalid` and dispatch to the trap path like any other
//    opcode, so the hot loop never branches on a separate valid bit;
//  * the HALT convention (`JAL x, 0`) is folded to `kHalt` at decode
//    time, removing the per-step `imm == 0` test;
//  * `next_pc`/`next_row`, branch/JAL `taken_pc`/`taken_row` and the
//    JAL/JALR link word are precomputed, so sequential flow and static
//    control flow never re-encode a PC;
//  * the `writes_ta` spec bit is cached inline for the data-processing
//    default path;
//  * immediates of ANDI/ADDI/LUI/LI are pre-encoded once (`imm_word`), so
//    `Word9::from_int` never runs inside step() — and a malformed
//    immediate raises SimError at load time instead of mid-run;
//  * a parallel 24-byte-per-row PackedOp table is the packed TIM: every
//    operand a row carries (immediate, link word) is stored as
//    binary-coded-ternary plane pairs, so the PackedFunctionalSimulator
//    executes without ever touching a Trit array and its fetch loop stays
//    L1-resident.
//
// A DecodedImage is immutable after construction and carries a copy of
// its source Program, so any number of simulator instances (including
// SimulationService worker threads) can share one image concurrently.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "isa/instruction.hpp"
#include "isa/program.hpp"
#include "sim/memory.hpp"
#include "ternary/bct.hpp"
#include "ternary/word.hpp"

namespace art9::sim {

struct SuperblockPlan;  // sim/superblock.hpp — the block translation tier

/// Dense handler index for the pre-decoded dispatch switch.  The first 24
/// values mirror isa::Opcode exactly (same numeric order); the two extra
/// kinds make validity and the halt convention ordinary dispatch targets.
enum class DispatchKind : uint8_t {
  kMv,
  kPti,
  kNti,
  kSti,
  kAnd,
  kOr,
  kXor,
  kAdd,
  kSub,
  kSr,
  kSl,
  kComp,
  kAndi,
  kAddi,
  kSri,
  kSli,
  kLui,
  kLi,
  kBeq,
  kBne,
  kJal,
  kJalr,
  kLoad,
  kStore,
  kHalt,     // JAL x, 0 folded at decode time
  kInvalid,  // uninitialised TIM row — traps on dispatch
};

/// One pre-decoded TIM row.
struct DecodedOp {
  isa::Instruction inst;
  DispatchKind kind = DispatchKind::kInvalid;
  bool writes_ta = false;      // cached spec bit (data-processing path)
  int64_t pc = 0;              // balanced address of this row
  int64_t next_pc = 0;         // wrap(pc + 1)
  uint32_t next_row = 0;       // row_of(next_pc)
  int64_t taken_pc = 0;        // wrap(pc + imm) for BEQ/BNE/JAL
  uint32_t taken_row = 0;      // row_of(taken_pc)
  ternary::Word9 link;         // from_int_wrapped(pc + 1) for JAL/JALR
  // Pre-encoded immediate (validated at decode time):
  //   kAndi/kAddi — the 9-trit immediate operand;
  //   kLui        — the complete result word {imm4, 00000};
  //   kLi         — imm5 in trits [4:0], zeros above;
  //   all others  — zero word (unused).
  ternary::Word9 imm_word;
};

/// One packed TIM row: the same pre-decoded instruction as DecodedOp, but
/// compressed to 24 bytes for the plane-packed SWAR backend's fetch loop.
/// Every 9-trit quantity is stored as plane pairs or a small integer — all
/// balanced PCs fit int16_t, all row indices fit uint16_t, and the word
/// operand (`word_neg`/`word_pos`) carries the pre-encoded immediate for
/// ANDI/LUI/LI or the link word for JAL/JALR (the two uses are disjoint).
struct PackedOp {
  uint16_t word_neg = 0;   // imm_word planes (ANDI/LUI/LI) or link planes (JAL/JALR)
  uint16_t word_pos = 0;
  int16_t imm = 0;         // numeric immediate (ADDI/SRI/SLI/JALR/LOAD/STORE)
  DispatchKind kind = DispatchKind::kInvalid;
  uint8_t ta = 0;
  uint8_t tb = 0;
  int8_t bcond = 0;        // balanced branch condition value
  int16_t pc = 0;
  int16_t next_pc = 0;
  uint16_t next_row = 0;
  int16_t taken_pc = 0;
  uint16_t taken_row = 0;

  /// The operand word as planes (immediate or link, kind-dependent).
  [[nodiscard]] ternary::BctWord9 word() const noexcept {
    return ternary::BctWord9::from_planes_unchecked(word_neg, word_pos);
  }
};
static_assert(sizeof(PackedOp) <= 24, "PackedOp must stay cache-lean");

class DecodedImage {
 public:
  /// Decodes (and validates) the whole program.  Throws sim::SimError if
  /// an ANDI/ADDI/LUI/LI instruction carries an immediate outside its
  /// format's range (the four forms whose immediates are pre-encoded into
  /// words) — at load time, not on first execution.  Other formats'
  /// immediates are used numerically and are not range-checked here.
  explicit DecodedImage(const isa::Program& program);

  /// Row access by dense row index (0 .. kRows-1).
  [[nodiscard]] const DecodedOp& row(std::size_t r) const noexcept { return rows_[r]; }

  /// Raw packed-TIM base pointer for the SWAR backend's register-resident
  /// dispatch loop (kRows entries).  Built lazily on first use (thread-
  /// safe), so reference-only users never pay for the mirror table.
  [[nodiscard]] const PackedOp* packed_rows() const;

  /// The superblock translation (straight-line blocks, fused macro-ops,
  /// per-block stat deltas) for the superblock backend.  Built lazily on
  /// first use (thread-safe), like the packed-op table; defined in
  /// sim/superblock.cpp.
  [[nodiscard]] const SuperblockPlan& superblocks() const;

  /// Row index of a balanced PC (same bijection as the memory hardware).
  [[nodiscard]] static std::size_t row_of(int64_t pc) noexcept {
    return TernaryMemory::row_of(pc);
  }

  /// Fetch by balanced PC (pays the address fold — hot loops should chase
  /// the precomputed next_row/taken_row instead).
  [[nodiscard]] const DecodedOp& fetch(int64_t pc) const noexcept { return rows_[row_of(pc)]; }

  /// The source program (entry point, data image, symbols) — what a
  /// simulator needs to reset architectural state.
  [[nodiscard]] const isa::Program& program() const noexcept { return program_; }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  isa::Program program_;
  std::vector<DecodedOp> rows_;
  mutable std::once_flag packed_once_;
  mutable std::vector<PackedOp> packed_rows_;
  mutable std::once_flag superblocks_once_;
  // shared_ptr: SuperblockPlan stays an incomplete type in this header.
  mutable std::shared_ptr<const SuperblockPlan> superblocks_;
};

/// Decodes `program` into a shareable image.
[[nodiscard]] std::shared_ptr<const DecodedImage> decode(const isa::Program& program);

}  // namespace art9::sim
