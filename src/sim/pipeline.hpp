// Cycle-accurate simulator of the 5-stage pipelined ART-9 core
// (paper Fig. 4): IF -> ID -> EX -> MEM -> WB.
//
// Modelled microarchitecture (paper §IV-B):
//  * synchronous single-port TIM and TDM; TRF with two asynchronous read
//    ports and one synchronous write port;
//  * hazard detection unit (HDU) in ID;
//  * forwarding multiplexers feeding the TALU from the EX/MEM and MEM/WB
//    pipeline registers (ALU-use hazards never stall);
//  * branch-target calculator + condition checker in ID, with a dedicated
//    one-trit forwarding path for the condition (so a COMP immediately
//    before its branch costs no stall);
//  * the only hardware-inserted stalls are load-use interlocks and the
//    single squashed fetch after a taken branch/jump — exactly the two
//    cases the paper reports.
//
// Every mechanism has an ablation switch in PipelineConfig so the
// ablation bench can price each design decision.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "isa/program.hpp"
#include "sim/decoded_image.hpp"
#include "sim/machine.hpp"
#include "sim/trace.hpp"
#include "ternary/word.hpp"

namespace art9::sim {

struct PipelineConfig {
  /// EX/MEM + MEM/WB -> TALU operand bypass.  Off: RAW hazards stall in ID.
  bool ex_forwarding = true;
  /// One-trit condition bypass (EX combinational + EX/MEM + MEM/WB) into
  /// the ID condition checker, and 9-trit EX/MEM + MEM/WB bypass for the
  /// JALR base.  Off: branches/JALR stall until the producer retires.
  bool id_forwarding = true;
  /// TRF write in WB is visible to ID reads in the same cycle
  /// (read-during-write bypass inside the register file).  Off: the HDU
  /// must also interlock distance-3 RAW hazards for one cycle (the write
  /// lands at the clock edge, after the ID read).
  bool regfile_write_through = true;
  /// Resolve branches in ID (paper's design, 1 taken-branch bubble).
  /// Off: resolve in EX (2 bubbles) — the ablation baseline.
  bool branch_in_id = true;
  /// Extension (not in the paper): static prediction in IF — backward
  /// conditional branches predict taken and JAL targets are folded into
  /// the fetch, removing the bubble when the prediction holds.  Requires
  /// branch_in_id (ignored otherwise).
  bool static_prediction = false;
  /// Cycle budget for run().
  uint64_t max_cycles = 50'000'000;
};

class PipelineSimulator {
 public:
  explicit PipelineSimulator(const isa::Program& program, PipelineConfig config = {});

  /// Runs off a shared pre-decoded image (batch sweeps, ablation benches).
  /// `image` must be non-null.
  explicit PipelineSimulator(std::shared_ptr<const DecodedImage> image,
                             PipelineConfig config = {});

  /// Advances one clock cycle.  Returns false on the cycle the HALT
  /// instruction retires (that cycle is included in the statistics).
  bool step();

  /// Runs to halt or the cycle budget (config.max_cycles).
  SimStats run();

  /// Runs to halt or until `stats().cycles` reaches `max_cycles`,
  /// overriding config.max_cycles — the Engine facade's budget seam.
  SimStats run(uint64_t max_cycles);

  [[nodiscard]] const ArchState& state() const noexcept { return state_; }
  [[nodiscard]] ArchState& state() noexcept { return state_; }
  [[nodiscard]] const SimStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const PipelineConfig& config() const noexcept { return config_; }

  [[nodiscard]] const ternary::Word9& reg(int index) const { return state_.trf.read(index); }
  [[nodiscard]] int64_t reg_int(int index) const { return state_.trf.read(index).to_int(); }

  /// The pre-decoded image this simulator executes.
  [[nodiscard]] const DecodedImage& image() const noexcept { return *image_; }

  /// Streams a CycleTrace per clock to `observer` (pass nullptr to stop).
  void set_tracer(TraceObserver observer) { tracer_ = std::move(observer); }

  /// Fires once per retired instruction in WB (the HALT pseudo-op never
  /// retires), with the 0-based retirement index.  One branch per cycle
  /// when unset; the sim::Engine facade adapts this to its Observer.
  using RetireObserver = std::function<void(const isa::Instruction&, int64_t pc, uint64_t index)>;
  void set_retire_observer(RetireObserver observer) { retire_observer_ = std::move(observer); }

 private:
  struct IfId {
    bool valid = false;
    bool poisoned = false;  // fetched from uninitialised TIM (wrong path)
    bool predicted_taken = false;  // static prediction applied at fetch
    isa::Instruction inst;
    int64_t pc = 0;
  };
  struct IdEx {
    bool valid = false;
    bool is_halt = false;  // recognised halt convention; performs no writes
    isa::Instruction inst;
    int64_t pc = 0;
    ternary::Word9 a;  // TRF[Ta] as read in ID
    ternary::Word9 b;  // TRF[Tb] as read in ID
  };
  struct ExMem {
    bool valid = false;
    bool is_halt = false;
    isa::Instruction inst;
    int64_t pc = 0;
    ternary::Word9 result;     // ALU result / link value / memory address
    ternary::Word9 store_val;  // STORE data
  };
  struct MemWb {
    bool valid = false;
    bool is_halt = false;
    isa::Instruction inst;
    int64_t pc = 0;
    ternary::Word9 result;  // value for the TRF write port
  };

  [[nodiscard]] static bool is_halt_jal(const isa::Instruction& inst) {
    return inst.op == isa::Opcode::kJal && inst.imm == 0;
  }
  /// True if `inst` writes a TRF register when it retires (the JAL-encoded
  /// halt never does).
  [[nodiscard]] static bool writes_reg(const isa::Instruction& inst) {
    return isa::spec(inst.op).writes_ta && !is_halt_jal(inst);
  }

  ArchState state_;
  PipelineConfig config_;
  SimStats stats_;

  std::shared_ptr<const DecodedImage> image_;

  IfId ifid_;
  IdEx idex_;
  ExMem exmem_;
  MemWb memwb_;

  bool fetch_stopped_ = false;
  bool halted_ = false;
  TraceObserver tracer_;
  RetireObserver retire_observer_;
};

}  // namespace art9::sim
