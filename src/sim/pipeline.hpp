// Cycle-accurate simulator of the 5-stage pipelined ART-9 core
// (paper Fig. 4): IF -> ID -> EX -> MEM -> WB.
//
// Modelled microarchitecture (paper §IV-B):
//  * synchronous single-port TIM and TDM; TRF with two asynchronous read
//    ports and one synchronous write port;
//  * hazard detection unit (HDU) in ID;
//  * forwarding multiplexers feeding the TALU from the EX/MEM and MEM/WB
//    pipeline registers (ALU-use hazards never stall);
//  * branch-target calculator + condition checker in ID, with a dedicated
//    one-trit forwarding path for the condition (so a COMP immediately
//    before its branch costs no stall);
//  * the only hardware-inserted stalls are load-use interlocks and the
//    single squashed fetch after a taken branch/jump — exactly the two
//    cases the paper reports.
//
// Every mechanism has an ablation switch in PipelineConfig so the
// ablation bench can price each design decision.
//
// The control logic (latches, HDU, forwarding selects, squash/stall
// accounting) lives in the shared detail::PipelineModel template
// (pipeline_model.hpp); this header instantiates it with the *reference
// datapath* — ternary::Word9 payloads over RegFile/TernaryMemory, the
// golden cycle-accurate model.  packed_pipeline.hpp instantiates the same
// control logic over plane-packed words.
#pragma once

#include <cstdint>
#include <memory>

#include "isa/program.hpp"
#include "sim/pipeline_model.hpp"
#include "sim/talu.hpp"
#include "ternary/word.hpp"

namespace art9::sim {
namespace detail {

/// Reference datapath policy: Word9 latched payloads, the architectural
/// RegFile/TernaryMemory, and the reference TALU.
class ReferencePipelineDatapath {
 public:
  using Word = ternary::Word9;

  explicit ReferencePipelineDatapath(const DecodedImage& image) {
    load_data(image.program(), state);
  }

  /// The architectural state, exposed by reference through
  /// PipelineSimulator::state().
  ArchState state;

  [[nodiscard]] int64_t pc() const noexcept { return state.pc; }
  void set_pc(int64_t pc) noexcept { state.pc = pc; }

  /// Snapshot/restore seam (PipelineModel::checkpoint/restore_state):
  /// the reference datapath's architectural state is the state itself.
  [[nodiscard]] ArchState arch_state() const { return state; }
  void load_state(const ArchState& s) { state = s; }

  [[nodiscard]] Word read_reg(int index) const { return state.trf.read(index); }
  void write_reg(int index, const Word& value) { state.trf.write(index, value); }

  [[nodiscard]] Word mem_load(const Word& address) { return state.tdm.read(address.to_int()); }
  void mem_store(const Word& address, const Word& value) {
    state.tdm.write(address.to_int(), value);
  }

  /// Balanced LST value in {-1, 0, +1} (branch condition compare).
  [[nodiscard]] static int lst(const Word& w) noexcept { return w.lst().value(); }

  /// EX evaluations: the pre-decoded TALU, wrapped address adds, the
  /// precomputed link word, and the JALR target calculator.
  [[nodiscard]] static Word alu(const DecodedOp& op, const Word& a, const Word& b) {
    return execute(op, a, b);
  }
  [[nodiscard]] static Word addr_word(const Word& base, int imm) {
    return Word::from_int_wrapped(base.to_int() + imm);
  }
  [[nodiscard]] static Word link(const DecodedOp& op) noexcept { return op.link; }
  [[nodiscard]] static int64_t jalr_target(const Word& base, int imm) {
    return ArchState::wrap(base.to_int() + imm);
  }
};

}  // namespace detail

class PipelineSimulator : public detail::PipelineModel<detail::ReferencePipelineDatapath> {
 public:
  explicit PipelineSimulator(const isa::Program& program, PipelineConfig config = {});

  /// Runs off a shared pre-decoded image (batch sweeps, ablation benches).
  /// `image` must be non-null.
  explicit PipelineSimulator(std::shared_ptr<const DecodedImage> image,
                             PipelineConfig config = {});

  [[nodiscard]] const ArchState& state() const noexcept { return datapath().state; }
  [[nodiscard]] ArchState& state() noexcept { return datapath().state; }

  [[nodiscard]] const ternary::Word9& reg(int index) const { return state().trf.read(index); }
  [[nodiscard]] int64_t reg_int(int index) const { return state().trf.read(index).to_int(); }
};

}  // namespace art9::sim
