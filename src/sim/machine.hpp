// Shared simulator types: architectural state, halt reasons, statistics.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "isa/program.hpp"
#include "sim/memory.hpp"
#include "sim/regfile.hpp"

namespace art9::sim {

/// Raised on architectural errors (fetch from uninitialised TIM, invalid
/// encoding reached the decoder, cycle budget exhausted).
class SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A *transient* fault: the execution environment hiccuped (injected
/// fault, lost worker, torn checkpoint) rather than the program being
/// architecturally wrong.  Distinguished from plain SimError because the
/// two demand opposite scheduling policies — a SimError trap is
/// deterministic (replaying the program re-traps, so retrying is
/// pointless and the job resolves kTrapped), while a TransientFault is
/// worth retrying from the last checkpoint (SimulationService's
/// checkpoint-based retry path; exhausting the retry budget resolves
/// kFaulted).  Thrown by the fault-injection layer
/// (sim/fault_injection.hpp) and by any future engine seam that detects
/// a recoverable environment failure.
class TransientFault : public SimError {
 public:
  using SimError::SimError;
};

/// Why a run() returned.
enum class HaltReason {
  kHalted,       // executed the HALT convention (self-jump)
  kMaxCycles,    // budget exhausted before halting
};

/// Architectural state shared by the functional and pipelined simulators.
/// Differential tests compare these field-by-field.
struct ArchState {
  RegFile trf;
  TernaryMemory tdm;
  int64_t pc = 0;  // balanced 9-trit value

  /// Wraps a balanced value into the 9-trit range (what the PC register and
  /// address adders do on overflow).
  [[nodiscard]] static int64_t wrap(int64_t value) noexcept {
    return ternary::Word9::from_int_wrapped(value).to_int();
  }

  friend bool operator==(const ArchState&, const ArchState&) = default;
};

/// Run statistics.  The pipeline model fills every field; the functional
/// model only counts retired instructions (its "cycles" equal instructions).
struct SimStats {
  uint64_t cycles = 0;
  uint64_t instructions = 0;       // retired, excluding squashed bubbles
  uint64_t stall_load_use = 0;     // cycles lost to load-use interlocks
  uint64_t stall_branch_hazard = 0;  // cycles lost waiting for branch/JALR operands
  uint64_t stall_raw = 0;          // cycles lost to RAW interlocks when forwarding is off
  uint64_t flush_taken_branch = 0;   // wrong-path fetches squashed by taken branches/jumps
  uint64_t predictions_correct = 0;  // static-prediction hits (no bubble paid)
  uint64_t predictions_wrong = 0;    // mispredictions (bubble paid as usual)
  HaltReason halt = HaltReason::kHalted;

  friend bool operator==(const SimStats&, const SimStats&) = default;

  /// Cycles per retired instruction.
  [[nodiscard]] double cpi() const {
    return instructions == 0 ? 0.0 : static_cast<double>(cycles) / static_cast<double>(instructions);
  }
};

/// Field-wise accumulation of per-call run_stats deltas — the contract
/// that slicing one run into chunks reports the same totals as one call.
/// `halt` is NOT combined: it names a reason, not a count, so the caller
/// decides which slice's reason stands.
inline void accumulate_stats(SimStats& total, const SimStats& slice) noexcept {
  total.cycles += slice.cycles;
  total.instructions += slice.instructions;
  total.stall_load_use += slice.stall_load_use;
  total.stall_branch_hazard += slice.stall_branch_hazard;
  total.stall_raw += slice.stall_raw;
  total.flush_taken_branch += slice.flush_taken_branch;
  total.predictions_correct += slice.predictions_correct;
  total.predictions_wrong += slice.predictions_wrong;
}

/// Rejects loadable addresses outside the 9-trit balanced range, naming the
/// faulting address.  .t9 images carry arbitrary int64 addresses; silently
/// folding an out-of-range entry or data word modulo 3^9 would load a
/// different program than the image describes (and `entry + i` arithmetic
/// downstream could overflow).  Mirrors the rv32 check_ram_range contract.
inline void check_t9_address(int64_t address, const char* what) {
  if (address < -ternary::Word9::kMaxValue || address > ternary::Word9::kMaxValue) {
    throw SimError("art9 " + std::string(what) + " address " + std::to_string(address) +
                   " outside the 9-trit range [-9841, 9841]");
  }
}

/// Loads `program` into instruction storage + TDM and resets `state`.
/// (TIM is modelled as pre-decoded instruction rows — see simulator
/// classes; self-modifying code is out of scope and documented as such.)
inline void load_data(const isa::Program& program, ArchState& state) {
  check_t9_address(program.entry, "entry");
  for (const isa::DataWord& d : program.data) {
    check_t9_address(d.address, "data-word");
    state.tdm.poke(d.address, d.value);
  }
  state.pc = program.entry;
}

}  // namespace art9::sim
