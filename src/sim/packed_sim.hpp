// Plane-packed functional simulator — the SWAR execution backend.
//
// Executes the same pre-decoded DecodedImage as FunctionalSimulator, but
// the entire architectural hot state lives in binary-coded-ternary plane
// pairs: a packed register file (nine BctWord9), a packed TDM
// (sim::PackedMemory) and pre-packed immediates/links from the image (the
// packed TIM).  Every opcode executes as a handful of branchless bitwise
// or value-domain integer operations (ternary/packed.hpp) — no
// std::array<Trit, 9> is ever touched between reset and halt; conversion
// to the reference representation happens only at the inspection boundary
// (`unpack_state()`, `reg()`).
//
// The backend is bit-identical to FunctionalSimulator in architectural
// state (registers, TDM contents *and* access counters, PC) and SimStats —
// locked by tests/sim/packed_sim_test.cpp on the full benchmark corpus.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "isa/program.hpp"
#include "sim/decoded_image.hpp"
#include "sim/machine.hpp"
#include "ternary/bct.hpp"

namespace art9::sim {

class PackedFunctionalSimulator {
 public:
  /// Decodes `program` into a private image.
  explicit PackedFunctionalSimulator(const isa::Program& program);

  /// Runs off a shared pre-decoded image (SimulationService, differential
  /// harnesses).  `image` must be non-null.
  explicit PackedFunctionalSimulator(std::shared_ptr<const DecodedImage> image);

  /// Executes one instruction.  Returns false when the HALT convention
  /// (self-jump) executes — pc() then rests on the halt instruction.
  bool step();

  /// Runs until HALT or `max_instructions`.
  SimStats run(uint64_t max_instructions = 100'000'000);

  [[nodiscard]] int64_t pc() const noexcept { return pc_; }

  /// The pre-decoded image this simulator executes.
  [[nodiscard]] const DecodedImage& image() const noexcept { return *image_; }

  /// Inspection-boundary conversions: decode the packed state into the
  /// reference representation (registers, TDM contents + counters, PC).
  [[nodiscard]] ArchState unpack_state() const;

  /// The inverse boundary: re-packs a reference-representation state
  /// (snapshot restore).  restore(unpack_state()) is an exact round trip,
  /// access counters included.
  void restore(const ArchState& state);

  /// Convenience accessors (decode on access).
  [[nodiscard]] ternary::Word9 reg(int index) const;
  [[nodiscard]] int64_t reg_int(int index) const;

  /// Raw packed register (tests, tracing hooks).
  [[nodiscard]] const ternary::BctWord9& reg_packed(int index) const {
    return trf_[static_cast<std::size_t>(index)];
  }

 private:
  std::shared_ptr<const DecodedImage> image_;
  const PackedOp* prows_;  // the image's packed TIM (built on first use)
  std::array<ternary::BctWord9, isa::kNumRegisters> trf_{};
  PackedMemory tdm_;
  int64_t pc_ = 0;
  // Current fetch row, in lock-step with pc_ (no external PC redirection:
  // the packed backend exposes no mutable architectural state).
  std::size_t row_ = 0;
};

}  // namespace art9::sim
