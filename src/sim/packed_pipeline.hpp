// Plane-packed cycle-accurate pipeline — the SWAR datapath under the
// 5-stage control logic.
//
// Instantiates the shared detail::PipelineModel (pipeline_model.hpp) with
// a datapath whose every latched payload is a ternary::packed::PackedWord<9>
// plane pair: a packed TRF (nine plane-pair words), a packed TDM
// (sim::PackedMemory rows, identical access accounting) and the image's
// 24-byte PackedOp rows supplying pre-packed immediates and link words.
// The forwarding muxes, the one-trit condition bypass and the EX TALU all
// operate on planes — no std::array<Trit, 9> is touched between reset and
// halt; conversion to the reference representation happens only at the
// inspection boundary (state(), reg()).
//
// Because the HDU/stall/squash logic is the *same template* the reference
// PipelineSimulator runs, cycle counts, stall/squash/prediction
// accounting, CycleTrace streams and retired-instruction observer streams
// are bit-identical to the reference pipeline on every PipelineConfig
// combination — locked by tests/sim/packed_pipeline_test.cpp and
// trace_golden_test.cpp.  Selectable through the sim::Engine facade as
// EngineKind::kPackedPipeline.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "isa/program.hpp"
#include "sim/pipeline_model.hpp"
#include "ternary/bct.hpp"
#include "ternary/packed.hpp"

namespace art9::sim {
namespace detail {

/// Packed datapath policy: PackedWord<9> latched payloads, a packed TRF
/// and PackedMemory TDM, and the branchless plane/table TALU.
class PackedPipelineDatapath {
 public:
  using Word = ternary::packed::PackedWord<9>;

  explicit PackedPipelineDatapath(const DecodedImage& image)
      : rows_(&image.row(0)), prows_(image.packed_rows()) {
    for (const isa::DataWord& d : image.program().data) {
      tdm_.poke(d.address, ternary::BctWord9::encode(d.value));
    }
    pc_ = image.program().entry;
  }

  [[nodiscard]] int64_t pc() const noexcept { return pc_; }
  void set_pc(int64_t pc) noexcept { pc_ = pc; }

  [[nodiscard]] Word read_reg(int index) const noexcept {
    return trf_[static_cast<std::size_t>(index)];
  }
  void write_reg(int index, const Word& value) noexcept {
    trf_[static_cast<std::size_t>(index)] = value;
  }

  [[nodiscard]] Word mem_load(const Word& address) noexcept {
    return ternary::packed::from_bct(tdm_.read_row(Word::row_of(address.to_int())));
  }
  void mem_store(const Word& address, const Word& value) noexcept {
    tdm_.write_row(Word::row_of(address.to_int()), ternary::packed::to_bct(value));
  }

  /// Balanced LST value in {-1, 0, +1} (branch condition compare).
  [[nodiscard]] static int lst(const Word& w) noexcept { return w.lst_value(); }

  /// EX evaluations on planes: the packed TALU, branchless wrapped address
  /// adds, the pre-packed link word, and the JALR target calculator.
  [[nodiscard]] Word alu(const DecodedOp& op, const Word& a, const Word& b) const;
  [[nodiscard]] static Word addr_word(const Word& base, int imm) noexcept {
    return Word::from_int(Word::wrap(base.to_int() + imm));
  }
  [[nodiscard]] Word link(const DecodedOp& op) const noexcept {
    const PackedOp& p = packed(op);
    return Word::from_planes_unchecked(p.word_neg, p.word_pos);
  }
  [[nodiscard]] static int64_t jalr_target(const Word& base, int imm) noexcept {
    return Word::wrap(base.to_int() + imm);
  }

  /// Inspection-boundary conversion: decode the packed state into the
  /// reference representation (registers, TDM contents + counters, PC).
  [[nodiscard]] ArchState unpack_state() const;

  /// Snapshot/restore seam (PipelineModel::checkpoint/restore_state).
  /// load_state re-packs a reference-representation state; an exact
  /// round trip of unpack_state, access counters included.
  [[nodiscard]] ArchState arch_state() const { return unpack_state(); }
  void load_state(const ArchState& s);

  /// Raw packed register (tests, tracing hooks).
  [[nodiscard]] const Word& reg_packed(int index) const {
    return trf_[static_cast<std::size_t>(index)];
  }

 private:
  /// The packed TIM row of a decoded row: the two tables are parallel, so
  /// the row index is plain pointer arithmetic.
  [[nodiscard]] const PackedOp& packed(const DecodedOp& op) const noexcept {
    return prows_[static_cast<std::size_t>(&op - rows_)];
  }

  const DecodedOp* rows_;   // the image's reference TIM base
  const PackedOp* prows_;   // the image's packed TIM base (built on first use)
  std::array<Word, isa::kNumRegisters> trf_{};
  PackedMemory tdm_;
  int64_t pc_ = 0;
};

}  // namespace detail

class PackedPipelineSimulator : public detail::PipelineModel<detail::PackedPipelineDatapath> {
 public:
  explicit PackedPipelineSimulator(const isa::Program& program, PipelineConfig config = {});

  /// Runs off a shared pre-decoded image (SimulationService, ablation
  /// sweeps).  `image` must be non-null.
  explicit PackedPipelineSimulator(std::shared_ptr<const DecodedImage> image,
                                   PipelineConfig config = {});

  /// Architectural snapshot, decoded at this boundary (registers, TDM
  /// contents + access counters, PC).
  [[nodiscard]] ArchState state() const { return datapath().unpack_state(); }

  /// Convenience accessors (decode on access).
  [[nodiscard]] ternary::Word9 reg(int index) const {
    return datapath().reg_packed(index).decode();
  }
  [[nodiscard]] int64_t reg_int(int index) const { return datapath().reg_packed(index).to_int(); }
};

}  // namespace art9::sim
