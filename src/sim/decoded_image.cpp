#include "sim/decoded_image.hpp"

#include "sim/machine.hpp"

namespace art9::sim {

using isa::Instruction;
using isa::Opcode;
using ternary::Word9;

namespace {

// kind_of relies on DispatchKind mirroring isa::Opcode value-for-value;
// pin the correspondence so an Opcode reorder is a compile error here.
static_assert(static_cast<uint8_t>(Opcode::kMv) == static_cast<uint8_t>(DispatchKind::kMv));
static_assert(static_cast<uint8_t>(Opcode::kComp) == static_cast<uint8_t>(DispatchKind::kComp));
static_assert(static_cast<uint8_t>(Opcode::kBeq) == static_cast<uint8_t>(DispatchKind::kBeq));
static_assert(static_cast<uint8_t>(Opcode::kJal) == static_cast<uint8_t>(DispatchKind::kJal));
static_assert(static_cast<uint8_t>(Opcode::kStore) == static_cast<uint8_t>(DispatchKind::kStore));
static_assert(isa::kNumOpcodes == static_cast<int>(DispatchKind::kHalt));

DispatchKind kind_of(const Instruction& inst) {
  if (inst.op == Opcode::kJal && inst.imm == 0) return DispatchKind::kHalt;
  return static_cast<DispatchKind>(static_cast<uint8_t>(inst.op));
}

}  // namespace

DecodedImage::DecodedImage(const isa::Program& program)
    : program_(program), rows_(static_cast<std::size_t>(TernaryMemory::kRows)) {
  // Every row gets its static PC chain so even the trap path reports a
  // meaningful address; program rows additionally get decoded fields.
  // row = pc + kMaxValue (mod 3^9) is monotone, so the chain is plain
  // arithmetic — no per-row 9-trit wrap round trips.
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    DecodedOp& op = rows_[r];
    op.pc = static_cast<int64_t>(r) - Word9::kMaxValue;
    op.next_pc = op.pc == Word9::kMaxValue ? Word9::kMinValue : op.pc + 1;
    op.next_row = r + 1 == rows_.size() ? 0 : static_cast<uint32_t>(r + 1);
  }
  for (std::size_t i = 0; i < program.code.size(); ++i) {
    const int64_t pc = ArchState::wrap(program.entry + static_cast<int64_t>(i));
    DecodedOp& op = rows_[row_of(pc)];
    op.inst = program.code[i];
    op.kind = kind_of(op.inst);
    op.writes_ta = isa::spec(op.inst.op).writes_ta;
    op.taken_pc = ArchState::wrap(pc + op.inst.imm);
    op.taken_row = static_cast<uint32_t>(row_of(op.taken_pc));
    op.link = Word9::from_int_wrapped(pc + 1);
  }
}

std::shared_ptr<const DecodedImage> decode(const isa::Program& program) {
  return std::make_shared<const DecodedImage>(program);
}

}  // namespace art9::sim
