#include "sim/decoded_image.hpp"

#include "sim/machine.hpp"

namespace art9::sim {

using isa::Instruction;
using isa::Opcode;
using ternary::Word9;

namespace {

// kind_of relies on DispatchKind mirroring isa::Opcode value-for-value;
// pin the correspondence so an Opcode reorder is a compile error here.
static_assert(static_cast<uint8_t>(Opcode::kMv) == static_cast<uint8_t>(DispatchKind::kMv));
static_assert(static_cast<uint8_t>(Opcode::kComp) == static_cast<uint8_t>(DispatchKind::kComp));
static_assert(static_cast<uint8_t>(Opcode::kBeq) == static_cast<uint8_t>(DispatchKind::kBeq));
static_assert(static_cast<uint8_t>(Opcode::kJal) == static_cast<uint8_t>(DispatchKind::kJal));
static_assert(static_cast<uint8_t>(Opcode::kStore) == static_cast<uint8_t>(DispatchKind::kStore));
static_assert(isa::kNumOpcodes == static_cast<int>(DispatchKind::kHalt));

DispatchKind kind_of(const Instruction& inst) {
  if (inst.op == Opcode::kJal && inst.imm == 0) return DispatchKind::kHalt;
  return static_cast<DispatchKind>(static_cast<uint8_t>(inst.op));
}

// Pre-encodes the immediate operand/result of the four encoding-carrying
// immediate forms, validating against the opcode's format range (imm3 for
// ANDI/ADDI, imm4 for LUI, imm5 for LI).  Throws SimError at decode time —
// previously an unencodable immediate only surfaced when the instruction
// first *executed*, throwing std::out_of_range mid-run.
Word9 encode_immediate(const Instruction& inst, int64_t pc) {
  const isa::OpcodeSpec& s = isa::spec(inst.op);
  const auto check_range = [&] {
    if (inst.imm < s.imm_min || inst.imm > s.imm_max) {
      throw SimError("malformed immediate at address " + std::to_string(pc) + ": " +
                     isa::to_string(inst));
    }
  };
  switch (inst.op) {
    case Opcode::kAndi:
    case Opcode::kAddi:
      check_range();
      return Word9::from_int(inst.imm);
    case Opcode::kLui: {
      check_range();
      Word9 w;
      w.insert(5, ternary::Word<4>::from_int(inst.imm));
      return w;
    }
    case Opcode::kLi: {
      check_range();
      Word9 w;
      w.insert(0, ternary::Word<5>::from_int(inst.imm));
      return w;
    }
    default:
      return Word9{};
  }
}

}  // namespace

DecodedImage::DecodedImage(const isa::Program& program)
    : program_(program), rows_(static_cast<std::size_t>(TernaryMemory::kRows)) {
  // Reject out-of-range entries up front: `entry + i` below must not
  // overflow, and an image whose entry silently wrapped would decode as a
  // different program.
  check_t9_address(program.entry, "entry");
  // Every row gets its static PC chain so even the trap path reports a
  // meaningful address; program rows additionally get decoded fields.
  // row = pc + kMaxValue (mod 3^9) is monotone, so the chain is plain
  // arithmetic — no per-row 9-trit wrap round trips.
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    DecodedOp& op = rows_[r];
    op.pc = static_cast<int64_t>(r) - Word9::kMaxValue;
    op.next_pc = op.pc == Word9::kMaxValue ? Word9::kMinValue : op.pc + 1;
    op.next_row = r + 1 == rows_.size() ? 0 : static_cast<uint32_t>(r + 1);
  }
  for (std::size_t i = 0; i < program.code.size(); ++i) {
    const int64_t pc = ArchState::wrap(program.entry + static_cast<int64_t>(i));
    DecodedOp& op = rows_[row_of(pc)];
    op.inst = program.code[i];
    op.kind = kind_of(op.inst);
    op.writes_ta = isa::spec(op.inst.op).writes_ta;
    op.taken_pc = ArchState::wrap(pc + op.inst.imm);
    op.taken_row = static_cast<uint32_t>(row_of(op.taken_pc));
    op.link = Word9::from_int_wrapped(pc + 1);
    op.imm_word = encode_immediate(op.inst, pc);
  }
}

const PackedOp* DecodedImage::packed_rows() const {
  // The packed TIM mirrors every row in 24-byte plane-pair form; built
  // once, on the first packed-backend use, so reference-only simulators
  // never pay the mirror's memory or encode pass.
  std::call_once(packed_once_, [this] {
    packed_rows_.resize(rows_.size());
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      const DecodedOp& op = rows_[r];
      PackedOp& p = packed_rows_[r];
      const bool is_jump = op.kind == DispatchKind::kJal || op.kind == DispatchKind::kJalr;
      const ternary::BctWord9 word = ternary::BctWord9::encode(is_jump ? op.link : op.imm_word);
      p.word_neg = static_cast<uint16_t>(word.neg_plane());
      p.word_pos = static_cast<uint16_t>(word.pos_plane());
      p.imm = static_cast<int16_t>(op.inst.imm);
      p.kind = op.kind;
      p.ta = static_cast<uint8_t>(op.inst.ta);
      p.tb = static_cast<uint8_t>(op.inst.tb);
      p.bcond = static_cast<int8_t>(op.inst.bcond.value());
      p.pc = static_cast<int16_t>(op.pc);
      p.next_pc = static_cast<int16_t>(op.next_pc);
      p.next_row = static_cast<uint16_t>(op.next_row);
      p.taken_pc = static_cast<int16_t>(op.taken_pc);
      p.taken_row = static_cast<uint16_t>(op.taken_row);
    }
  });
  return packed_rows_.data();
}

std::shared_ptr<const DecodedImage> decode(const isa::Program& program) {
  return std::make_shared<const DecodedImage>(program);
}

}  // namespace art9::sim
