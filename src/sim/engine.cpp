#include "sim/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "rv32/packed_rv32_sim.hpp"
#include "rv32/rv32_superblock.hpp"
#include "sim/fleet.hpp"
#include "sim/functional_sim.hpp"
#include "sim/packed_pipeline.hpp"
#include "sim/packed_sim.hpp"
#include "sim/superblock.hpp"

namespace art9::sim {

std::string_view engine_kind_name(EngineKind kind) noexcept {
  switch (kind) {
    case EngineKind::kLazy:
      return "lazy";
    case EngineKind::kFunctional:
      return "functional";
    case EngineKind::kPacked:
      return "packed";
    case EngineKind::kSuperblock:
      return "superblock";
    case EngineKind::kFleet:
      return "fleet";
    case EngineKind::kPipeline:
      return "pipeline";
    case EngineKind::kPackedPipeline:
      return "pipeline_packed";
    case EngineKind::kRv32:
      return "rv32";
    case EngineKind::kRv32Superblock:
      return "rv32_superblock";
    case EngineKind::kRv32Packed:
      return "rv32_packed";
  }
  return "unknown";
}

std::optional<EngineKind> parse_engine_kind(std::string_view name) noexcept {
  for (EngineKind kind : all_engine_kinds()) {
    if (name == engine_kind_name(kind)) return kind;
  }
  return std::nullopt;
}

namespace {

/// Shared skeleton of the three instruction-at-a-time engines.  The
/// native hot loops (pre-decoded switch, packed threaded dispatch, lazy
/// fetch) run untouched unless an observer is installed; only then do
/// step()/run() route through the instrumented per-instruction loop, so
/// the unobserved steps/s of every backend is exactly the wrapped
/// simulator's.
class FunctionalEngineBase : public Engine {
 public:
  bool step() final {
    if (!observer_) return do_step();
    const int64_t pc = pc_now();
    if (!do_step()) return false;
    observer_(Retired{image_->fetch(pc).inst, pc, retired_++});
    return true;
  }

  SimStats run_stats(const RunOptions& options) final {
    if (!observer_) return do_run(options.max_steps);
    // Observed run: the same budget/halt contract, one observer call per
    // retired instruction (the halt pseudo-op never retires).
    SimStats stats;
    while (stats.instructions < options.max_steps) {
      if (!step()) {
        stats.halt = HaltReason::kHalted;
        stats.cycles = stats.instructions;
        return stats;
      }
      ++stats.instructions;
    }
    stats.halt = HaltReason::kMaxCycles;
    stats.cycles = stats.instructions;
    return stats;
  }

  [[nodiscard]] MachineState state() const final { return MachineState{arch_snapshot()}; }
  [[nodiscard]] const DecodedImage& image() const noexcept final { return *image_; }
  // art9() throws SimError on an rv32 snapshot — the ISA-mismatch contract.
  void restore(const MachineState& snapshot) final { do_restore(snapshot.art9()); }
  void set_observer(Observer observer) final {
    observer_ = std::move(observer);
    retired_ = 0;  // every installation numbers its stream from 0
  }

 protected:
  explicit FunctionalEngineBase(std::shared_ptr<const DecodedImage> image)
      : image_(std::move(image)) {}

  virtual bool do_step() = 0;
  virtual SimStats do_run(uint64_t max_instructions) = 0;
  [[nodiscard]] virtual int64_t pc_now() const = 0;
  [[nodiscard]] virtual ArchState arch_snapshot() const = 0;
  virtual void do_restore(const ArchState& state) = 0;

  std::shared_ptr<const DecodedImage> image_;

 private:
  Observer observer_;
  uint64_t retired_ = 0;  // observer stream sequence number
};

class LazyEngine final : public FunctionalEngineBase {
 public:
  explicit LazyEngine(std::shared_ptr<const DecodedImage> image)
      : FunctionalEngineBase(std::move(image)), sim_(image_->program()) {}

  [[nodiscard]] EngineKind kind() const noexcept override { return EngineKind::kLazy; }

 private:
  bool do_step() override { return sim_.step(); }
  SimStats do_run(uint64_t max_instructions) override { return sim_.run(max_instructions); }
  [[nodiscard]] int64_t pc_now() const override { return sim_.state().pc; }
  [[nodiscard]] ArchState arch_snapshot() const override { return sim_.state(); }
  void do_restore(const ArchState& state) override { sim_.restore(state); }

  LazyFunctionalSimulator sim_;
};

class FunctionalEngine final : public FunctionalEngineBase {
 public:
  explicit FunctionalEngine(std::shared_ptr<const DecodedImage> image)
      : FunctionalEngineBase(std::move(image)), sim_(image_) {}

  [[nodiscard]] EngineKind kind() const noexcept override { return EngineKind::kFunctional; }

 private:
  bool do_step() override { return sim_.step(); }
  SimStats do_run(uint64_t max_instructions) override { return sim_.run(max_instructions); }
  [[nodiscard]] int64_t pc_now() const override { return sim_.state().pc; }
  [[nodiscard]] ArchState arch_snapshot() const override { return sim_.state(); }
  void do_restore(const ArchState& state) override { sim_.restore(state); }

  FunctionalSimulator sim_;
};

class PackedEngine final : public FunctionalEngineBase {
 public:
  explicit PackedEngine(std::shared_ptr<const DecodedImage> image)
      : FunctionalEngineBase(std::move(image)), sim_(image_) {}

  [[nodiscard]] EngineKind kind() const noexcept override { return EngineKind::kPacked; }

 private:
  bool do_step() override { return sim_.step(); }
  SimStats do_run(uint64_t max_instructions) override { return sim_.run(max_instructions); }
  [[nodiscard]] int64_t pc_now() const override { return sim_.pc(); }
  [[nodiscard]] ArchState arch_snapshot() const override { return sim_.unpack_state(); }
  void do_restore(const ArchState& state) override { sim_.restore(state); }

  PackedFunctionalSimulator sim_;
};

class SuperblockEngine final : public FunctionalEngineBase {
 public:
  explicit SuperblockEngine(std::shared_ptr<const DecodedImage> image)
      : FunctionalEngineBase(std::move(image)), sim_(image_) {}

  [[nodiscard]] EngineKind kind() const noexcept override { return EngineKind::kSuperblock; }

 private:
  bool do_step() override { return sim_.step(); }
  SimStats do_run(uint64_t max_instructions) override { return sim_.run(max_instructions); }
  [[nodiscard]] int64_t pc_now() const override { return sim_.pc(); }
  [[nodiscard]] ArchState arch_snapshot() const override { return sim_.unpack_state(); }
  void do_restore(const ArchState& state) override { sim_.restore(state); }

  SuperblockSimulator sim_;
};

/// The bit-sliced fleet backend through the single-machine contract:
/// lane 0 of a one-lane FleetSimulator.  The multi-lane surface
/// (advance(), cohorts) is what SimulationService::submit_cohort rides;
/// this facade is what keeps kFleet inside the conformance suite's
/// bit-identity net.
class FleetEngine final : public FunctionalEngineBase {
 public:
  explicit FleetEngine(std::shared_ptr<const DecodedImage> image)
      : FunctionalEngineBase(std::move(image)), sim_(image_, 1) {}

  [[nodiscard]] EngineKind kind() const noexcept override { return EngineKind::kFleet; }

 private:
  bool do_step() override { return sim_.step(); }
  SimStats do_run(uint64_t max_instructions) override { return sim_.run(max_instructions); }
  [[nodiscard]] int64_t pc_now() const override { return sim_.pc(); }
  [[nodiscard]] ArchState arch_snapshot() const override { return sim_.unpack_lane(0); }
  void do_restore(const ArchState& state) override { sim_.restore_lane(0, state); }

  FleetSimulator sim_;
};

/// The cycle-accurate pipelines behind the same contract: step() is one
/// clock, run()'s budget is a cycle budget, and stats carry the full
/// microarchitectural accounting.  The retired-instruction observer rides
/// the WB retire hook, so it sees exactly the same stream (instruction,
/// pc, index) the functional kinds produce.  One template serves both
/// datapaths: Sim is PipelineSimulator (kPipeline) or
/// PackedPipelineSimulator (kPackedPipeline).
template <class Sim, EngineKind Kind>
class PipelineEngine final : public Engine {
 public:
  PipelineEngine(std::shared_ptr<const DecodedImage> image, const EngineOptions& options)
      : image_(std::move(image)), sim_(image_, options.pipeline) {
    if (options.tracer) sim_.set_tracer(options.tracer);
  }

  /// Counter-wise `a - b`: the stats accrued after snapshot `b`.
  [[nodiscard]] static SimStats minus(SimStats a, const SimStats& b) noexcept {
    a.cycles -= b.cycles;
    a.instructions -= b.instructions;
    a.stall_load_use -= b.stall_load_use;
    a.stall_branch_hazard -= b.stall_branch_hazard;
    a.stall_raw -= b.stall_raw;
    a.flush_taken_branch -= b.flush_taken_branch;
    a.predictions_correct -= b.predictions_correct;
    a.predictions_wrong -= b.predictions_wrong;
    return a;  // halt carries the outcome of this run
  }

  [[nodiscard]] EngineKind kind() const noexcept override { return Kind; }

  bool step() override { return sim_.step(); }

  SimStats run_stats(const RunOptions& options) override {
    // This run's cycle allowance is RunOptions.max_steps, additionally
    // capped by the config's own per-run budget (both are cycle counts
    // for this kind), applied relative to the cycles already burnt so
    // repeated run() calls see a fresh allowance (saturating on
    // overflow).  The underlying simulator accumulates stats across its
    // lifetime; report this run's *delta* so repeated runs match the
    // per-call stats of the functional kinds.
    const SimStats before = sim_.stats();
    const uint64_t allowance = std::min(options.max_steps, sim_.config().max_cycles);
    const uint64_t limit =
        allowance > UINT64_MAX - before.cycles ? UINT64_MAX : before.cycles + allowance;
    return minus(sim_.run(limit), before);
  }

  [[nodiscard]] MachineState state() const override { return MachineState{sim_.state()}; }

  /// Drains the pipe to an instruction boundary (the drain cycles accrue
  /// to this engine's stats) and returns the boundary state; the engine
  /// itself resumes from that state with empty latches.
  [[nodiscard]] MachineState checkpoint() override { return MachineState{sim_.checkpoint()}; }
  void restore(const MachineState& snapshot) override { sim_.restore_state(snapshot.art9()); }

  [[nodiscard]] const DecodedImage& image() const noexcept override { return *image_; }

  void set_observer(Observer observer) override {
    if (!observer) {
      sim_.set_retire_observer({});
      return;
    }
    // Renumber from 0 at installation (the hook's index counts every
    // retire since construction) so the stream matches the functional
    // kinds' numbering whenever the observer is installed.
    sim_.set_retire_observer(
        [observer = std::move(observer), index = uint64_t{0}](const isa::Instruction& inst,
                                                             int64_t pc, uint64_t) mutable {
          observer(Retired{inst, pc, index++});
        });
  }

 private:
  std::shared_ptr<const DecodedImage> image_;
  Sim sim_;
};

/// The RV32 baseline backends behind the same contract.  One template
/// serves both datapaths: Sim is rv32::Rv32Simulator (kRv32, host words)
/// or rv32::PackedRv32Simulator (kRv32Packed, PackedWord<21> plane
/// pairs).  The wrapped simulators already carry the observer hook in
/// their native loop (guarded by one branch per retire, exactly the
/// zero-cost-when-unset contract), so the facade only adapts the event
/// type and renumbers the stream from each installation.
template <class Sim, EngineKind Kind>
class Rv32Engine final : public Engine {
 public:
  Rv32Engine(std::shared_ptr<const rv32::Rv32DecodedImage> image, const EngineOptions& options)
      : image_(std::move(image)), sim_(image_, options.rv32_ram_bytes) {}

  [[nodiscard]] EngineKind kind() const noexcept override { return Kind; }

  bool step() override { return sim_.step(); }

  SimStats run_stats(const RunOptions& options) override {
    const rv32::Rv32RunStats stats = sim_.run(options.max_steps);
    SimStats out;
    out.instructions = stats.instructions;
    out.cycles = stats.instructions;  // == instructions on functional kinds
    out.halt = stats.halted ? HaltReason::kHalted : HaltReason::kMaxCycles;
    return out;
  }

  [[nodiscard]] MachineState state() const override { return MachineState{sim_.state()}; }
  // rv32() throws SimError on an ART-9 snapshot — the ISA-mismatch contract.
  void restore(const MachineState& snapshot) override { sim_.restore(snapshot.rv32()); }
  [[nodiscard]] const rv32::Rv32DecodedImage& rv32_image() const override { return *image_; }

  void set_observer(Observer observer) override {
    if (!observer) {
      sim_.set_observer({});
      return;
    }
    // Renumber from 0 at installation; the native stream keeps its own
    // convention (the halting ECALL/EBREAK is observed, `taken` carries
    // the branch outcome) — what the baseline cycle models consume.
    sim_.set_observer([observer = std::move(observer),
                       index = uint64_t{0}](const rv32::Rv32Retired& r) mutable {
      observer(Retired{r.inst, static_cast<int64_t>(r.pc), index++, r.taken});
    });
  }

 private:
  std::shared_ptr<const rv32::Rv32DecodedImage> image_;
  Sim sim_;
};

}  // namespace

std::unique_ptr<Engine> make_engine(EngineKind kind, std::shared_ptr<const DecodedImage> image,
                                    const EngineOptions& options) {
  if (!image) throw std::invalid_argument("make_engine: null image");
  switch (kind) {
    case EngineKind::kLazy:
      return std::make_unique<LazyEngine>(std::move(image));
    case EngineKind::kFunctional:
      return std::make_unique<FunctionalEngine>(std::move(image));
    case EngineKind::kPacked:
      return std::make_unique<PackedEngine>(std::move(image));
    case EngineKind::kSuperblock:
      return std::make_unique<SuperblockEngine>(std::move(image));
    case EngineKind::kFleet:
      return std::make_unique<FleetEngine>(std::move(image));
    case EngineKind::kPipeline:
      return std::make_unique<PipelineEngine<PipelineSimulator, EngineKind::kPipeline>>(
          std::move(image), options);
    case EngineKind::kPackedPipeline:
      return std::make_unique<
          PipelineEngine<PackedPipelineSimulator, EngineKind::kPackedPipeline>>(std::move(image),
                                                                                options);
    case EngineKind::kRv32:
    case EngineKind::kRv32Superblock:
    case EngineKind::kRv32Packed:
      throw std::invalid_argument("make_engine: rv32 kind needs an Rv32DecodedImage");
  }
  throw std::invalid_argument("make_engine: unknown EngineKind");
}

std::unique_ptr<Engine> make_engine(EngineKind kind,
                                    std::shared_ptr<const rv32::Rv32DecodedImage> image,
                                    const EngineOptions& options) {
  if (!image) throw std::invalid_argument("make_engine: null image");
  switch (kind) {
    case EngineKind::kRv32:
      return std::make_unique<Rv32Engine<rv32::Rv32Simulator, EngineKind::kRv32>>(std::move(image),
                                                                                  options);
    case EngineKind::kRv32Superblock:
      return std::make_unique<
          Rv32Engine<rv32::Rv32SuperblockSimulator, EngineKind::kRv32Superblock>>(std::move(image),
                                                                                  options);
    case EngineKind::kRv32Packed:
      return std::make_unique<Rv32Engine<rv32::PackedRv32Simulator, EngineKind::kRv32Packed>>(
          std::move(image), options);
    default:
      throw std::invalid_argument("make_engine: ART-9 kind needs a DecodedImage");
  }
}

std::unique_ptr<Engine> make_engine(EngineKind kind, EngineImage image,
                                    const EngineOptions& options) {
  return std::visit([&](auto shared) { return make_engine(kind, std::move(shared), options); },
                    std::move(image));
}

std::unique_ptr<Engine> make_engine(EngineKind kind, std::shared_ptr<const DecodedImage> image,
                                    const MachineState& snapshot, const EngineOptions& options) {
  std::unique_ptr<Engine> engine = make_engine(kind, std::move(image), options);
  engine->restore(snapshot);
  return engine;
}

std::unique_ptr<Engine> make_engine(EngineKind kind,
                                    std::shared_ptr<const rv32::Rv32DecodedImage> image,
                                    const MachineState& snapshot, const EngineOptions& options) {
  std::unique_ptr<Engine> engine = make_engine(kind, std::move(image), options);
  engine->restore(snapshot);
  return engine;
}

std::unique_ptr<Engine> make_engine(EngineKind kind, EngineImage image,
                                    const MachineState& snapshot, const EngineOptions& options) {
  std::unique_ptr<Engine> engine = make_engine(kind, std::move(image), options);
  engine->restore(snapshot);
  return engine;
}

std::unique_ptr<Engine> make_engine(EngineKind kind, const isa::Program& program,
                                    const EngineOptions& options) {
  return make_engine(kind, decode(program), options);
}

std::unique_ptr<Engine> make_engine(EngineKind kind, const rv32::Rv32Program& program,
                                    const EngineOptions& options) {
  return make_engine(kind, rv32::decode(program), options);
}

}  // namespace art9::sim
