// Machine snapshot serialization: a MachineState (either ISA) to and
// from a self-describing byte blob, so a run can be frozen mid-flight,
// written to disk, and resumed on *any* conformant backend — the seam
// behind make_engine(kind, image, snapshot) and the fuzz driver's
// crash artifacts.
//
// Format (all integers little-endian, independent of host endianness):
//
//   offset  size  field
//   0       8     magic "ART9SNAP"
//   8       2     version (currently 1)
//   10      1     ISA tag: 0 = ART-9, 1 = rv32
//   11      ...   payload (per ISA, below)
//   end-8   8     FNV-1a 64 checksum of every preceding byte
//
// ART-9 payload: i64 pc, 9 × i16 registers, u64 TDM reads, u64 TDM
// writes, u32 row count, then (u32 row, i16 value) per non-zero TDM row
// in ascending row order.  The TDM is sparse-encoded: a fresh memory is
// all-zero, so only the touched rows travel.
//
// rv32 payload: u32 pc, 32 × u32 registers, u64 RAM byte size, then the
// raw RAM bytes.  The RAM size is part of the state (restore adopts it).
//
// Code is deliberately NOT part of a snapshot: a snapshot resumes
// against the same program image it was taken under (the TIM is
// immutable — self-modifying code is out of scope repo-wide).
//
// deserialize_snapshot rejects malformed input with SimError("snapshot:
// ...") — bad magic, unknown version or ISA tag, truncation, trailing
// bytes, out-of-range rows or 9-trit values, and checksum mismatch —
// locked by tests/sim/snapshot_test.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace art9::sim {

/// Serializes `state` (either ISA) into the blob format above.
[[nodiscard]] std::vector<uint8_t> serialize_snapshot(const MachineState& state);

/// Parses a blob back into a MachineState.  Throws SimError("snapshot:
/// ...") naming the violation on any malformed input; a returned state
/// always round-trips serialize -> deserialize bit-identically.
[[nodiscard]] MachineState deserialize_snapshot(const uint8_t* data, std::size_t size);
[[nodiscard]] MachineState deserialize_snapshot(const std::vector<uint8_t>& blob);

/// File convenience (fuzz artifacts, art9-run --snapshot-out/-in).
/// Throws SimError on I/O failure.
void save_snapshot_file(const std::string& path, const MachineState& state);
[[nodiscard]] MachineState load_snapshot_file(const std::string& path);

}  // namespace art9::sim
