#include "sim/trace.hpp"

#include <sstream>

namespace art9::sim {

const char* event_name(CycleEvent event) {
  switch (event) {
    case CycleEvent::kNone: return "";
    case CycleEvent::kLoadUseStall: return "load-use stall";
    case CycleEvent::kBranchHazardStall: return "branch-hazard stall";
    case CycleEvent::kRawStall: return "raw stall";
    case CycleEvent::kTakenBranchFlush: return "flush";
    case CycleEvent::kHaltSeen: return "halt";
  }
  return "";
}

std::string render_trace(const CycleTrace& t) {
  std::ostringstream os;
  os.width(6);
  os << t.cycle << " |";
  if (t.fetch_active) {
    os << " IF@" << t.fetch_pc;
  } else {
    os << " IF--";
  }
  static const char* kNames[4] = {"ID", "EX", "MEM", "WB"};
  for (std::size_t i = 0; i < t.stages.size(); ++i) {
    os << " | " << kNames[i] << ' ';
    if (t.stages[i].valid) {
      os << t.stages[i].pc << ':' << isa::to_string(t.stages[i].inst);
    } else {
      os << "-";
    }
  }
  if (t.event != CycleEvent::kNone) os << "  <" << event_name(t.event) << '>';
  return os.str();
}

}  // namespace art9::sim
