#include "sim/snapshot.hpp"

#include <cstring>
#include <fstream>

namespace art9::sim {

namespace {

constexpr char kMagic[8] = {'A', 'R', 'T', '9', 'S', 'N', 'A', 'P'};
constexpr uint16_t kVersion = 1;
constexpr uint8_t kIsaArt9 = 0;
constexpr uint8_t kIsaRv32 = 1;

/// FNV-1a 64 over a byte range — cheap, dependency-free integrity check
/// (corruption detection, not authentication).
uint64_t fnv1a(const uint8_t* data, std::size_t size) noexcept {
  uint64_t h = 14695981039346656037ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

/// Little-endian appenders: the on-disk format is fixed regardless of
/// host endianness.
void put_u16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void put_u32(std::vector<uint8_t>& out, uint32_t v) {
  for (int b = 0; b < 4; ++b) out.push_back(static_cast<uint8_t>(v >> (8 * b)));
}

void put_u64(std::vector<uint8_t>& out, uint64_t v) {
  for (int b = 0; b < 8; ++b) out.push_back(static_cast<uint8_t>(v >> (8 * b)));
}

void put_i16(std::vector<uint8_t>& out, int16_t v) { put_u16(out, static_cast<uint16_t>(v)); }
void put_i64(std::vector<uint8_t>& out, int64_t v) { put_u64(out, static_cast<uint64_t>(v)); }

/// Bounds-checked little-endian cursor over the payload bytes.
class Reader {
 public:
  Reader(const uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  [[nodiscard]] uint8_t u8() { return take(1)[0]; }

  [[nodiscard]] uint16_t u16() {
    const uint8_t* p = take(2);
    return static_cast<uint16_t>(p[0] | (p[1] << 8));
  }

  [[nodiscard]] uint32_t u32() {
    const uint8_t* p = take(4);
    uint32_t v = 0;
    for (int b = 0; b < 4; ++b) v |= static_cast<uint32_t>(p[b]) << (8 * b);
    return v;
  }

  [[nodiscard]] uint64_t u64() {
    const uint8_t* p = take(8);
    uint64_t v = 0;
    for (int b = 0; b < 8; ++b) v |= static_cast<uint64_t>(p[b]) << (8 * b);
    return v;
  }

  [[nodiscard]] int16_t i16() { return static_cast<int16_t>(u16()); }
  [[nodiscard]] int64_t i64() { return static_cast<int64_t>(u64()); }

  [[nodiscard]] const uint8_t* take(std::size_t n) {
    if (n > size_ - pos_) throw SimError("snapshot: truncated payload");
    const uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }

 private:
  const uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Validated i16 -> Word9 (registers and TDM rows share the range).
ternary::Word9 word9_of(int16_t value, const char* what) {
  if (value < -ternary::Word9::kMaxValue || value > ternary::Word9::kMaxValue) {
    throw SimError("snapshot: " + std::string(what) + " value " + std::to_string(value) +
                   " outside the 9-trit range");
  }
  return ternary::Word9::from_int(value);
}

void put_art9(std::vector<uint8_t>& out, const ArchState& s) {
  put_i64(out, s.pc);
  for (int i = 0; i < isa::kNumRegisters; ++i) {
    put_i16(out, static_cast<int16_t>(s.trf.read(i).to_int()));
  }
  put_u64(out, s.tdm.reads());
  put_u64(out, s.tdm.writes());
  // Sparse TDM: only non-zero rows, ascending row order (canonical form —
  // equal states serialize to identical blobs).
  std::vector<std::pair<uint32_t, int16_t>> rows;
  for (int64_t row = 0; row < TernaryMemory::kRows; ++row) {
    const ternary::Word9& w = s.tdm.peek(row - ternary::Word9::kMaxValue);
    if (w == ternary::Word9{}) continue;
    rows.emplace_back(static_cast<uint32_t>(row), static_cast<int16_t>(w.to_int()));
  }
  put_u32(out, static_cast<uint32_t>(rows.size()));
  for (const auto& [row, value] : rows) {
    put_u32(out, row);
    put_i16(out, value);
  }
}

ArchState read_art9(Reader& in) {
  ArchState s;
  const int64_t pc = in.i64();
  check_t9_address(pc, "snapshot pc");
  s.pc = pc;
  for (int i = 0; i < isa::kNumRegisters; ++i) {
    s.trf.write(i, word9_of(in.i16(), "register"));
  }
  const uint64_t reads = in.u64();
  const uint64_t writes = in.u64();
  const uint32_t nrows = in.u32();
  if (nrows > static_cast<uint32_t>(TernaryMemory::kRows)) {
    throw SimError("snapshot: TDM row count " + std::to_string(nrows) + " exceeds " +
                   std::to_string(TernaryMemory::kRows));
  }
  for (uint32_t i = 0; i < nrows; ++i) {
    const uint32_t row = in.u32();
    if (row >= static_cast<uint32_t>(TernaryMemory::kRows)) {
      throw SimError("snapshot: TDM row " + std::to_string(row) + " out of range");
    }
    s.tdm.poke(static_cast<int64_t>(row) - ternary::Word9::kMaxValue,
               word9_of(in.i16(), "TDM row"));
  }
  s.tdm.set_counters(reads, writes);
  return s;
}

void put_rv32(std::vector<uint8_t>& out, const rv32::Rv32ArchState& s) {
  put_u32(out, s.pc);
  for (uint32_t r : s.regs) put_u32(out, r);
  put_u64(out, s.ram.size());
  for (uint8_t byte : s.ram) out.push_back(byte);
}

rv32::Rv32ArchState read_rv32(Reader& in) {
  rv32::Rv32ArchState s;
  s.pc = in.u32();
  for (uint32_t& r : s.regs) r = in.u32();
  if (s.regs[0] != 0) throw SimError("snapshot: rv32 x0 is nonzero");
  const uint64_t ram_size = in.u64();
  if (ram_size > in.remaining()) throw SimError("snapshot: truncated payload");
  const uint8_t* bytes = in.take(static_cast<std::size_t>(ram_size));
  s.ram.assign(bytes, bytes + ram_size);
  return s;
}

}  // namespace

std::vector<uint8_t> serialize_snapshot(const MachineState& state) {
  std::vector<uint8_t> out;
  for (char c : kMagic) out.push_back(static_cast<uint8_t>(c));
  put_u16(out, kVersion);
  if (state.is_art9()) {
    out.push_back(kIsaArt9);
    put_art9(out, state.art9());
  } else {
    out.push_back(kIsaRv32);
    put_rv32(out, state.rv32());
  }
  put_u64(out, fnv1a(out.data(), out.size()));
  return out;
}

MachineState deserialize_snapshot(const uint8_t* data, std::size_t size) {
  constexpr std::size_t kHeader = sizeof(kMagic) + 2 + 1;
  if (size < kHeader + 8) throw SimError("snapshot: blob too short");
  const uint64_t stored = Reader(data + size - 8, 8).u64();
  if (stored != fnv1a(data, size - 8)) throw SimError("snapshot: checksum mismatch");
  Reader in(data, size - 8);
  if (std::memcmp(in.take(sizeof(kMagic)), kMagic, sizeof(kMagic)) != 0) {
    throw SimError("snapshot: bad magic");
  }
  const uint16_t version = in.u16();
  if (version != kVersion) {
    throw SimError("snapshot: unsupported version " + std::to_string(version));
  }
  const uint8_t isa = in.u8();
  MachineState state;
  switch (isa) {
    case kIsaArt9:
      state = MachineState{read_art9(in)};
      break;
    case kIsaRv32:
      state = MachineState{read_rv32(in)};
      break;
    default:
      throw SimError("snapshot: unknown ISA tag " + std::to_string(isa));
  }
  if (in.remaining() != 0) {
    throw SimError("snapshot: " + std::to_string(in.remaining()) + " trailing bytes");
  }
  return state;
}

MachineState deserialize_snapshot(const std::vector<uint8_t>& blob) {
  return deserialize_snapshot(blob.data(), blob.size());
}

void save_snapshot_file(const std::string& path, const MachineState& state) {
  const std::vector<uint8_t> blob = serialize_snapshot(state);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(blob.data()), static_cast<std::streamsize>(blob.size()));
  if (!out) throw SimError("snapshot: cannot write " + path);
}

MachineState load_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SimError("snapshot: cannot read " + path);
  std::vector<uint8_t> blob((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return deserialize_snapshot(blob);
}

}  // namespace art9::sim
