// The ternary arithmetic-logic unit (TALU) of the EX stage (paper Fig. 4).
//
// `execute` computes the 9-trit result of every data-processing opcode from
// the two source operands; both simulators (functional golden model and the
// cycle-accurate pipeline) call this single definition so the architectural
// semantics live in exactly one place.
#pragma once

#include "isa/instruction.hpp"
#include "sim/decoded_image.hpp"
#include "ternary/word.hpp"

namespace art9::sim {

/// Unsigned shift amount taken from the two least-significant trits of a
/// word (register-shift forms SR/SL use TRF[Tb][1:0], paper Table I).
[[nodiscard]] int shift_amount(const ternary::Word9& w) noexcept;

/// COMP result word: sign(a - b) in the least-significant trit, upper
/// trits zero (the paper specifies only the LST; zeroing the rest is this
/// implementation's documented choice).
[[nodiscard]] ternary::Word9 comp_result(const ternary::Word9& a, const ternary::Word9& b) noexcept;

/// Executes the data-processing portion of `inst` on operands
/// `a` (= TRF[Ta] or current PC for jumps) and `b` (= TRF[Tb]).
/// For LUI/LI, `a` is the old destination value.
/// Branches/jumps/memory ops are *not* handled here (control flow and
/// memory access belong to the pipeline stages), except that JAL/JALR link
/// values and memory addresses are plain additions performed by the
/// caller.
[[nodiscard]] ternary::Word9 execute(const isa::Instruction& inst, const ternary::Word9& a,
                                     const ternary::Word9& b);

/// Pre-decoded variant for the dispatch fast path: identical semantics to
/// the Instruction overload, but immediate operands come pre-encoded from
/// the DecodedImage (`op.imm_word`), so no `Word9::from_int` runs per step.
[[nodiscard]] ternary::Word9 execute(const DecodedOp& op, const ternary::Word9& a,
                                     const ternary::Word9& b);

}  // namespace art9::sim
