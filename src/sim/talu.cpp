#include "sim/talu.hpp"

#include <stdexcept>

namespace art9::sim {

using isa::Instruction;
using isa::Opcode;
using ternary::Word9;

int shift_amount(const Word9& w) noexcept {
  return w[1].level() * 3 + w[0].level();
}

Word9 comp_result(const Word9& a, const Word9& b) noexcept {
  Word9 out;
  out.set(0, Word9::compare(a, b));
  return out;
}

Word9 execute(const Instruction& inst, const Word9& a, const Word9& b) {
  switch (inst.op) {
    case Opcode::kMv:
      return b;
    case Opcode::kPti:
      return ternary::pti(b);
    case Opcode::kNti:
      return ternary::nti(b);
    case Opcode::kSti:
      return ternary::sti(b);
    case Opcode::kAnd:
      return ternary::tand(a, b);
    case Opcode::kOr:
      return ternary::tor(a, b);
    case Opcode::kXor:
      return ternary::txor(a, b);
    case Opcode::kAdd:
      return a + b;
    case Opcode::kSub:
      return a - b;
    case Opcode::kSr:
      return a.shr(static_cast<std::size_t>(shift_amount(b)));
    case Opcode::kSl:
      return a.shl(static_cast<std::size_t>(shift_amount(b)));
    case Opcode::kComp:
      return comp_result(a, b);
    case Opcode::kAndi:
      return ternary::tand(a, Word9::from_int(inst.imm));
    case Opcode::kAddi:
      return a + Word9::from_int(inst.imm);
    case Opcode::kSri:
      return a.shr(static_cast<std::size_t>(inst.imm));
    case Opcode::kSli:
      return a.shl(static_cast<std::size_t>(inst.imm));
    case Opcode::kLui: {
      Word9 out;
      out.insert(5, ternary::Word<4>::from_int(inst.imm));
      return out;
    }
    case Opcode::kLi: {
      Word9 out = a;
      out.insert(0, ternary::Word<5>::from_int(inst.imm));
      return out;
    }
    default:
      throw std::logic_error("TALU: opcode has no data-processing result: " +
                             std::string(isa::mnemonic(inst.op)));
  }
}

Word9 execute(const DecodedOp& op, const Word9& a, const Word9& b) {
  switch (op.kind) {
    case DispatchKind::kMv:
      return b;
    case DispatchKind::kPti:
      return ternary::pti(b);
    case DispatchKind::kNti:
      return ternary::nti(b);
    case DispatchKind::kSti:
      return ternary::sti(b);
    case DispatchKind::kAnd:
      return ternary::tand(a, b);
    case DispatchKind::kOr:
      return ternary::tor(a, b);
    case DispatchKind::kXor:
      return ternary::txor(a, b);
    case DispatchKind::kAdd:
      return a + b;
    case DispatchKind::kSub:
      return a - b;
    case DispatchKind::kSr:
      return a.shr(static_cast<std::size_t>(shift_amount(b)));
    case DispatchKind::kSl:
      return a.shl(static_cast<std::size_t>(shift_amount(b)));
    case DispatchKind::kComp:
      return comp_result(a, b);
    case DispatchKind::kAndi:
      return ternary::tand(a, op.imm_word);
    case DispatchKind::kAddi:
      return a + op.imm_word;
    case DispatchKind::kSri:
      return a.shr(static_cast<std::size_t>(op.inst.imm));
    case DispatchKind::kSli:
      return a.shl(static_cast<std::size_t>(op.inst.imm));
    case DispatchKind::kLui:
      return op.imm_word;  // the complete result, pre-built at decode
    case DispatchKind::kLi: {
      Word9 out = op.imm_word;  // imm5 in [4:0], zeros above
      for (std::size_t i = 5; i < ternary::Word9::kTrits; ++i) out.set(i, a[i]);
      return out;
    }
    default:
      throw std::logic_error("TALU: kind has no data-processing result: " +
                             std::string(isa::mnemonic(op.inst.op)));
  }
}

}  // namespace art9::sim
