#include "sim/fault_injection.hpp"

#include <limits>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

namespace art9::sim {

namespace {

/// Engine decorator: runs the inner engine in sub-slices cut at the
/// plan's event points, so a fault lands after *exactly* N executed
/// steps no matter what budgets callers pass.
class FaultInjectedEngine final : public Engine {
 public:
  FaultInjectedEngine(std::unique_ptr<Engine> inner, std::shared_ptr<FaultState> state)
      : inner_(std::move(inner)), state_(std::move(state)) {}

  [[nodiscard]] EngineKind kind() const noexcept override { return inner_->kind(); }

  bool step() override {
    const bool more = inner_->step();
    state_->advance(1);  // may stall or throw TransientFault
    return more;
  }

  SimStats run_stats(const RunOptions& options) override {
    SimStats total;
    total.halt = HaltReason::kMaxCycles;
    uint64_t remaining = options.max_steps;
    while (remaining > 0) {
      const uint64_t slice = std::min(remaining, state_->steps_until_event());
      const SimStats s = inner_->run_stats({slice});
      accumulate_stats(total, s);
      remaining -= std::min(remaining, s.cycles);
      state_->advance(s.cycles);  // may stall or throw TransientFault
      if (s.halt == HaltReason::kHalted) {
        total.halt = HaltReason::kHalted;
        break;
      }
      if (s.cycles == 0) break;  // zero-step slice: nothing can ever progress
    }
    return total;
  }

  [[nodiscard]] MachineState state() const override { return inner_->state(); }
  [[nodiscard]] MachineState checkpoint() override { return inner_->checkpoint(); }
  void restore(const MachineState& snapshot) override { inner_->restore(snapshot); }
  [[nodiscard]] const DecodedImage& image() const override { return inner_->image(); }
  [[nodiscard]] const ::art9::rv32::Rv32DecodedImage& rv32_image() const override {
    return inner_->rv32_image();
  }
  void set_observer(Observer observer) override { inner_->set_observer(std::move(observer)); }

 private:
  std::unique_ptr<Engine> inner_;
  std::shared_ptr<FaultState> state_;
};

}  // namespace

FaultPlan FaultPlan::seeded(uint64_t seed, uint64_t max_step, unsigned throws) noexcept {
  // mt19937_64 raw output is pinned by the standard, so a seeded plan is
  // identical on every platform (the repo-wide portability argument).
  std::mt19937_64 rng(seed);
  FaultPlan plan;
  plan.seed = seed;
  plan.throw_at_step = max_step == 0 ? 0 : 1 + rng() % max_step;
  plan.throw_count = throws;
  return plan;
}

uint64_t FaultState::steps_until_event() const noexcept {
  uint64_t next = std::numeric_limits<uint64_t>::max();
  if (plan_.throw_at_step != 0 && fired_ < plan_.throw_count) {
    const uint64_t at = plan_.throw_at_step * (static_cast<uint64_t>(fired_) + 1);
    if (at > steps_) next = std::min(next, at - steps_);
  }
  if (plan_.stall_at_step != 0 && !stalled_ && plan_.stall_at_step > steps_) {
    next = std::min(next, plan_.stall_at_step - steps_);
  }
  return next;
}

void FaultState::advance(uint64_t steps) {
  steps_ += steps;
  if (plan_.stall_at_step != 0 && !stalled_ && steps_ >= plan_.stall_at_step) {
    stalled_ = true;
    std::this_thread::sleep_for(plan_.stall_for);
  }
  if (plan_.throw_at_step != 0 && fired_ < plan_.throw_count &&
      steps_ >= plan_.throw_at_step * (static_cast<uint64_t>(fired_) + 1)) {
    ++fired_;
    throw TransientFault("fault injection: transient fault #" + std::to_string(fired_) +
                         " at step " + std::to_string(steps_) +
                         " (seed=" + std::to_string(plan_.seed) + ")");
  }
}

void FaultState::mutate_checkpoint(std::vector<uint8_t>& blob) {
  ++checkpoints_;
  if (plan_.corrupt_checkpoint == 0 || checkpoints_ != plan_.corrupt_checkpoint || blob.empty()) {
    return;
  }
  std::mt19937_64 rng(plan_.seed ^ 0x636f727275707421ULL);  // "corrupt!"
  blob[rng() % blob.size()] ^= static_cast<uint8_t>(1u << (rng() % 8));
}

std::unique_ptr<Engine> with_fault_injection(std::unique_ptr<Engine> inner,
                                             std::shared_ptr<FaultState> state) {
  if (!inner) throw std::invalid_argument("with_fault_injection: null engine");
  if (!state) throw std::invalid_argument("with_fault_injection: null fault state");
  return std::make_unique<FaultInjectedEngine>(std::move(inner), std::move(state));
}

}  // namespace art9::sim
