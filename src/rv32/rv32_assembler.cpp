#include "rv32/rv32_assembler.hpp"

#include <cctype>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

namespace art9::rv32 {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

bool is_bare_identifier(std::string_view tok) {
  tok = trim(tok);
  if (tok.empty() || !is_ident_start(tok.front())) return false;
  for (char c : tok) {
    if (!is_ident_char(c)) return false;
  }
  return true;
}

std::vector<std::string_view> split_operands(std::string_view s) {
  std::vector<std::string_view> out;
  s = trim(s);
  if (s.empty()) return out;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '(') ++depth;
    if (s[i] == ')') --depth;
    if (s[i] == ',' && depth == 0) {
      out.push_back(trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  out.push_back(trim(s.substr(start)));
  return out;
}

class ExprEval {
 public:
  ExprEval(std::string_view text, const std::map<std::string, int64_t>& symbols, int line)
      : text_(text), symbols_(symbols), line_(line) {}

  int64_t evaluate() {
    int64_t v = expr();
    skip_ws();
    if (pos_ != text_.size()) {
      throw Rv32AsmError(line_, "trailing characters in expression: '" + std::string(text_) + "'");
    }
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }
  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  int64_t expr() {
    int64_t v = term();
    for (;;) {
      char c = peek();
      if (c == '+') {
        ++pos_;
        v += term();
      } else if (c == '-') {
        ++pos_;
        v -= term();
      } else {
        return v;
      }
    }
  }
  int64_t term() {
    int64_t v = factor();
    while (peek() == '*') {
      ++pos_;
      v *= factor();
    }
    return v;
  }
  int64_t factor() {
    char c = peek();
    if (c == '+') {
      ++pos_;
      return factor();
    }
    if (c == '-') {
      ++pos_;
      return -factor();
    }
    if (c == '(') {
      ++pos_;
      int64_t v = expr();
      if (peek() != ')') throw Rv32AsmError(line_, "missing ')' in expression");
      ++pos_;
      return v;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      // Decimal or 0x hex.
      int64_t v = 0;
      if (c == '0' && pos_ + 1 < text_.size() && (text_[pos_ + 1] == 'x' || text_[pos_ + 1] == 'X')) {
        pos_ += 2;
        bool any = false;
        while (pos_ < text_.size() && std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
          const char h = text_[pos_];
          int digit = 0;
          if (h >= '0' && h <= '9') digit = h - '0';
          else digit = 10 + (std::tolower(static_cast<unsigned char>(h)) - 'a');
          v = v * 16 + digit;
          ++pos_;
          any = true;
        }
        if (!any) throw Rv32AsmError(line_, "malformed hex literal");
        return v;
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        v = v * 10 + (text_[pos_] - '0');
        ++pos_;
      }
      return v;
    }
    if (is_ident_start(c)) {
      std::size_t start = pos_;
      while (pos_ < text_.size() && is_ident_char(text_[pos_])) ++pos_;
      std::string name(text_.substr(start, pos_ - start));
      auto it = symbols_.find(name);
      if (it == symbols_.end()) throw Rv32AsmError(line_, "undefined symbol '" + name + "'");
      return it->second;
    }
    throw Rv32AsmError(line_, "malformed expression: '" + std::string(text_) + "'");
  }

  std::string_view text_;
  const std::map<std::string, int64_t>& symbols_;
  int line_;
  std::size_t pos_ = 0;
};

enum class Section { kText, kData };

struct Stmt {
  int line = 0;
  Section section = Section::kText;
  int64_t address = 0;
  std::string head;  // lower-cased
  std::vector<std::string> operands;
};

class Rv32Assembler {
 public:
  Rv32Program run(std::string_view source) {
    parse_lines(source);
    layout();
    emit();
    return std::move(program_);
  }

 private:
  void parse_lines(std::string_view source) {
    int line_no = 0;
    std::size_t pos = 0;
    while (pos <= source.size()) {
      std::size_t eol = source.find('\n', pos);
      std::string_view line =
          source.substr(pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
      pos = eol == std::string_view::npos ? source.size() + 1 : eol + 1;
      ++line_no;
      for (std::size_t i = 0; i < line.size(); ++i) {
        if (line[i] == ';' || line[i] == '#') {
          line = line.substr(0, i);
          break;
        }
      }
      line = trim(line);
      while (!line.empty()) {
        std::size_t colon = line.find(':');
        if (colon == std::string_view::npos) break;
        std::string_view label = trim(line.substr(0, colon));
        if (!is_bare_identifier(label)) throw Rv32AsmError(line_no, "bad label");
        pending_labels_.emplace_back(line_no, std::string(label));
        line = trim(line.substr(colon + 1));
      }
      if (line.empty()) continue;
      Stmt st;
      st.line = line_no;
      std::size_t sp = 0;
      while (sp < line.size() && !std::isspace(static_cast<unsigned char>(line[sp]))) ++sp;
      st.head = lower(line.substr(0, sp));
      for (std::string_view rest = trim(line.substr(sp)); std::string_view tok : split_operands(rest)) {
        st.operands.emplace_back(tok);
      }
      attach_labels();
      stmts_.push_back(std::move(st));
    }
    if (!pending_labels_.empty()) {
      Stmt st;
      st.line = pending_labels_.front().first;
      st.head = ".end_labels";
      attach_labels();
      stmts_.push_back(std::move(st));
    }
  }

  void attach_labels() {
    for (auto& p : pending_labels_) labels_for_stmt_[stmts_.size()].push_back(p);
    pending_labels_.clear();
  }

  /// Bytes the statement occupies.
  int64_t size_of(const Stmt& st) {
    if (st.head.empty() || st.head == ".end_labels") return 0;
    if (st.head[0] == '.') {
      if (st.head == ".word") return static_cast<int64_t>(st.operands.size()) * 4;
      if (st.head == ".zero") {
        ExprEval ev(st.operands.at(0), equs_, st.line);
        return ev.evaluate() * 4;
      }
      return 0;
    }
    // Pseudo expansions.
    if (st.head == "li") {
      ExprEval ev(st.operands.at(1), equs_, st.line);
      std::optional<int64_t> v;
      try {
        v = ev.evaluate();
      } catch (const Rv32AsmError&) {
        // Value depends on a label: reserve the worst case.
        return 8;
      }
      return (*v >= -2048 && *v <= 2047) ? 4 : 8;
    }
    if (st.head == "la") return 8;
    return 4;
  }

  void layout() {
    int64_t text_addr = 0;
    int64_t data_addr = 0;
    Section section = Section::kText;
    bool code_started = false;
    for (std::size_t i = 0; i < stmts_.size(); ++i) {
      Stmt& st = stmts_[i];
      st.section = section;
      int64_t& addr = section == Section::kText ? text_addr : data_addr;
      if (st.head == ".text") {
        section = Section::kText;
        continue;
      }
      if (st.head == ".data") {
        section = Section::kData;
        continue;
      }
      if (st.head == ".org") {
        ExprEval ev(st.operands.at(0), equs_, st.line);
        if (section == Section::kText) {
          if (code_started) throw Rv32AsmError(st.line, ".org after code is not supported");
          text_addr = ev.evaluate();
          program_.entry = static_cast<uint32_t>(text_addr);
        } else {
          data_addr = ev.evaluate();
        }
        continue;
      }
      if (st.head == ".equ") {
        if (st.operands.size() != 2) throw Rv32AsmError(st.line, ".equ takes NAME, value");
        std::string name(trim(st.operands[0]));
        ExprEval ev(st.operands[1], equs_, st.line);
        define_symbol(st.line, name, ev.evaluate(), true);
        continue;
      }
      auto it = labels_for_stmt_.find(i);
      if (it != labels_for_stmt_.end()) {
        for (auto& [line, name] : it->second) define_symbol(line, name, addr, false);
      }
      st.address = addr;
      const int64_t bytes = size_of(st);
      if (section == Section::kText && bytes > 0) code_started = true;
      addr += bytes;
    }
  }

  void define_symbol(int line, const std::string& name, int64_t value, bool is_equ) {
    if (program_.symbols.contains(name)) throw Rv32AsmError(line, "duplicate symbol '" + name + "'");
    program_.symbols[name] = value;
    if (is_equ) equs_[name] = value;
  }

  int64_t eval(const std::string& text, int line) {
    ExprEval ev(text, program_.symbols, line);
    return ev.evaluate();
  }

  int64_t target_offset(const std::string& tok, int64_t pc, int line) {
    if (is_bare_identifier(tok)) {
      auto it = program_.symbols.find(std::string(trim(tok)));
      if (it == program_.symbols.end()) throw Rv32AsmError(line, "undefined label '" + tok + "'");
      return it->second - pc;
    }
    return eval(tok, line);
  }

  void push(const Stmt& st, Rv32Instruction inst) {
    try {
      program_.image.push_back(encode(inst));
    } catch (const std::exception& e) {
      throw Rv32AsmError(st.line, e.what());
    }
    program_.code.push_back(inst);
  }

  void require(const Stmt& st, std::size_t n) {
    if (st.operands.size() != n) {
      std::ostringstream os;
      os << st.head << " expects " << n << " operands, got " << st.operands.size();
      throw Rv32AsmError(st.line, os.str());
    }
  }

  int reg(const Stmt& st, std::size_t i) {
    try {
      return parse_rv32_register(st.operands.at(i));
    } catch (const std::invalid_argument& e) {
      throw Rv32AsmError(st.line, e.what());
    }
  }

  /// Parses `imm(reg)`; returns {imm, reg}.
  std::pair<int32_t, int> mem_operand(const Stmt& st, std::size_t i) {
    std::string_view tok = st.operands.at(i);
    std::size_t open = tok.find('(');
    std::size_t close = tok.rfind(')');
    if (open == std::string_view::npos || close == std::string_view::npos || close < open) {
      throw Rv32AsmError(st.line, "expected imm(reg) operand");
    }
    const auto imm_view = trim(tok.substr(0, open));
    const std::string imm_text(imm_view.empty() ? std::string_view("0") : imm_view);
    const auto imm = static_cast<int32_t>(eval(imm_text, st.line));
    int base = 0;
    try {
      base = parse_rv32_register(trim(tok.substr(open + 1, close - open - 1)));
    } catch (const std::invalid_argument& e) {
      throw Rv32AsmError(st.line, e.what());
    }
    return {imm, base};
  }

  void emit() {
    for (const Stmt& st : stmts_) {
      if (st.head.empty() || st.head == ".end_labels") continue;
      if (st.head[0] == '.') {
        emit_directive(st);
        continue;
      }
      if (st.section == Section::kData) throw Rv32AsmError(st.line, "instruction in .data");
      emit_instruction(st);
    }
  }

  void emit_directive(const Stmt& st) {
    if (st.head == ".word") {
      if (st.section != Section::kData) throw Rv32AsmError(st.line, ".word requires .data");
      auto addr = static_cast<uint32_t>(st.address);
      for (const std::string& opnd : st.operands) {
        const int64_t v = eval(opnd, st.line);
        program_.data.push_back(Rv32DataWord{addr, static_cast<uint32_t>(v)});
        addr += 4;
      }
      return;
    }
    if (st.head == ".zero") {
      if (st.section != Section::kData) throw Rv32AsmError(st.line, ".zero requires .data");
      const int64_t n = eval(st.operands.at(0), st.line);
      for (int64_t k = 0; k < n; ++k) {
        program_.data.push_back(Rv32DataWord{static_cast<uint32_t>(st.address + k * 4), 0});
      }
      return;
    }
    if (st.head == ".text" || st.head == ".data" || st.head == ".org" || st.head == ".equ") return;
    throw Rv32AsmError(st.line, "unknown directive '" + st.head + "'");
  }

  /// Emits the lui+addi pair materialising an arbitrary 32-bit value.
  void emit_lui_addi(const Stmt& st, int rd, int64_t value) {
    const auto v = static_cast<int32_t>(value);
    int32_t lo = v & 0xfff;
    if (lo >= 2048) lo -= 4096;
    const int32_t hi = (v - lo) >> 12;  // signed; encode() masks the bits
    push(st, {Rv32Op::kLui, rd, 0, 0, hi});
    push(st, {Rv32Op::kAddi, rd, rd, 0, lo});
  }

  void emit_instruction(const Stmt& st) {
    const std::string& h = st.head;
    // --- pseudo-instructions ---
    if (h == "nop") {
      push(st, Rv32Instruction::nop());
      return;
    }
    if (h == "halt" || h == "ebreak") {
      push(st, {Rv32Op::kEbreak, 0, 0, 0, 0});
      return;
    }
    if (h == "mv") {
      require(st, 2);
      push(st, {Rv32Op::kAddi, reg(st, 0), reg(st, 1), 0, 0});
      return;
    }
    if (h == "li") {
      require(st, 2);
      const int rd = reg(st, 0);
      const int64_t v = eval(st.operands[1], st.line);
      // Pass 1 sized the short form only for equs-only constants; for
      // label-dependent values it reserved 8 bytes, so emit the long form
      // unconditionally there to keep layout consistent.
      bool constant = true;
      try {
        ExprEval ev(st.operands[1], equs_, st.line);
        (void)ev.evaluate();
      } catch (const Rv32AsmError&) {
        constant = false;
      }
      if (constant && v >= -2048 && v <= 2047) {
        push(st, {Rv32Op::kAddi, rd, 0, 0, static_cast<int32_t>(v)});
      } else {
        emit_lui_addi(st, rd, v);
      }
      return;
    }
    if (h == "la") {
      require(st, 2);
      emit_lui_addi(st, reg(st, 0), eval(st.operands[1], st.line));
      return;
    }
    if (h == "j") {
      require(st, 1);
      push(st, {Rv32Op::kJal, 0, 0, 0,
                static_cast<int32_t>(target_offset(st.operands[0], st.address, st.line))});
      return;
    }
    if (h == "jr") {
      require(st, 1);
      push(st, {Rv32Op::kJalr, 0, reg(st, 0), 0, 0});
      return;
    }
    if (h == "ret") {
      push(st, {Rv32Op::kJalr, 0, 1, 0, 0});
      return;
    }
    if (h == "call") {
      require(st, 1);
      push(st, {Rv32Op::kJal, 1, 0, 0,
                static_cast<int32_t>(target_offset(st.operands[0], st.address, st.line))});
      return;
    }
    if (h == "beqz" || h == "bnez" || h == "bltz" || h == "bgez" || h == "bgtz" || h == "blez") {
      require(st, 2);
      const int rs = reg(st, 0);
      const auto off = static_cast<int32_t>(target_offset(st.operands[1], st.address, st.line));
      if (h == "beqz") push(st, {Rv32Op::kBeq, 0, rs, 0, off});
      else if (h == "bnez") push(st, {Rv32Op::kBne, 0, rs, 0, off});
      else if (h == "bltz") push(st, {Rv32Op::kBlt, 0, rs, 0, off});
      else if (h == "bgez") push(st, {Rv32Op::kBge, 0, rs, 0, off});
      else if (h == "bgtz") push(st, {Rv32Op::kBlt, 0, 0, rs, off});   // 0 < rs
      else push(st, {Rv32Op::kBge, 0, 0, rs, off});                     // 0 >= rs
      return;
    }
    if (h == "ble" || h == "bgt" || h == "bleu" || h == "bgtu") {
      require(st, 3);
      const int a = reg(st, 0);
      const int b = reg(st, 1);
      const auto off = static_cast<int32_t>(target_offset(st.operands[2], st.address, st.line));
      if (h == "ble") push(st, {Rv32Op::kBge, 0, b, a, off});
      else if (h == "bgt") push(st, {Rv32Op::kBlt, 0, b, a, off});
      else if (h == "bleu") push(st, {Rv32Op::kBgeu, 0, b, a, off});
      else push(st, {Rv32Op::kBltu, 0, b, a, off});
      return;
    }

    // --- real instructions ---
    Rv32Op op;
    try {
      op = rv32_op_from_mnemonic(h);
    } catch (const std::invalid_argument& e) {
      throw Rv32AsmError(st.line, e.what());
    }
    const Rv32Spec& s = spec(op);
    Rv32Instruction inst;
    inst.op = op;
    switch (s.format) {
      case Rv32Format::kR:
        require(st, 3);
        inst.rd = reg(st, 0);
        inst.rs1 = reg(st, 1);
        inst.rs2 = reg(st, 2);
        break;
      case Rv32Format::kI:
        if (s.klass == Rv32Class::kLoad || op == Rv32Op::kJalr) {
          if (st.operands.size() == 2) {
            inst.rd = reg(st, 0);
            auto [imm, base] = mem_operand(st, 1);
            inst.imm = imm;
            inst.rs1 = base;
          } else {
            require(st, 3);
            inst.rd = reg(st, 0);
            inst.rs1 = reg(st, 1);
            inst.imm = static_cast<int32_t>(eval(st.operands[2], st.line));
          }
        } else {
          require(st, 3);
          inst.rd = reg(st, 0);
          inst.rs1 = reg(st, 1);
          inst.imm = static_cast<int32_t>(eval(st.operands[2], st.line));
        }
        break;
      case Rv32Format::kIShift:
        require(st, 3);
        inst.rd = reg(st, 0);
        inst.rs1 = reg(st, 1);
        inst.imm = static_cast<int32_t>(eval(st.operands[2], st.line));
        break;
      case Rv32Format::kS: {
        require(st, 2);
        inst.rs2 = reg(st, 0);
        auto [imm, base] = mem_operand(st, 1);
        inst.imm = imm;
        inst.rs1 = base;
        break;
      }
      case Rv32Format::kB:
        require(st, 3);
        inst.rs1 = reg(st, 0);
        inst.rs2 = reg(st, 1);
        inst.imm = static_cast<int32_t>(target_offset(st.operands[2], st.address, st.line));
        break;
      case Rv32Format::kU:
        require(st, 2);
        inst.rd = reg(st, 0);
        inst.imm = static_cast<int32_t>(eval(st.operands[1], st.line));
        break;
      case Rv32Format::kJ:
        require(st, 2);
        inst.rd = reg(st, 0);
        inst.imm = static_cast<int32_t>(target_offset(st.operands[1], st.address, st.line));
        break;
      case Rv32Format::kSystem:
        break;
    }
    push(st, inst);
  }

  Rv32Program program_;
  std::vector<Stmt> stmts_;
  std::map<std::string, int64_t> equs_;
  std::vector<std::pair<int, std::string>> pending_labels_;
  std::map<std::size_t, std::vector<std::pair<int, std::string>>> labels_for_stmt_;
};

}  // namespace

Rv32Program assemble_rv32(std::string_view source) {
  Rv32Assembler assembler;
  return assembler.run(source);
}

}  // namespace art9::rv32
