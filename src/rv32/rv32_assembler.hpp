// Two-pass assembler for RV32I(+M) assembly text — the front door of the
// software-level compiling framework (paper Fig. 2 consumes RV-32I
// assembly produced by a stock compiler; this repository's benchmark
// corpus is written in the same dialect).
//
// Syntax mirrors the ART-9 assembler: ';' / '#' comments, labels,
// `.org/.equ/.text/.data/.word/.zero`, byte addressing, `imm(reg)` memory
// operands.  Standard pseudo-instructions are expanded:
//   nop, mv, li (addi / lui+addi pair), la, j, jr, ret,
//   beqz/bnez/bltz/bgez/bgtz/blez, ble/bgt/bleu/bgtu (operand swap),
//   call (jal ra), halt (ebreak — the run-to-completion convention).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "rv32/rv32_program.hpp"

namespace art9::rv32 {

class Rv32AsmError : public std::runtime_error {
 public:
  Rv32AsmError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message), line_(line) {}

  [[nodiscard]] int line() const noexcept { return line_; }

 private:
  int line_;
};

[[nodiscard]] Rv32Program assemble_rv32(std::string_view source);

}  // namespace art9::rv32
