// PackedRv32Simulator — the RV32 reference semantics with every
// architectural 32-bit value held as a ternary plane pair
// (ternary::packed::PackedWord<21>): the binary-on-ternary direction of
// Etiemble's ternary-arithmetic line of work, and the paper's premise
// that a 32-bit binary word fits in 21 trits (3^21 > 2^32) run in the
// packed SWAR representation the ART-9 simulators already use.
//
// Representation: a uint32_t value v is stored as the balanced-ternary
// word whose value *is* v (v < 2^32 - 1 < PackedWord<21>::kMaxValue, so
// the unsigned range embeds directly — no bias).  The register file is
// 32 packed words; data memory is one packed word per aligned 32-bit
// row, assembled to/from the byte view only at the access boundary.
// Conversions run through the same L1-resident plane/value tables as the
// ternary backends (ternary/packed.hpp); full binary materialization
// happens only at load time and at state() snapshots.
//
// The execution semantics are the shared pre-decoded control logic
// (rv32_exec.hpp), so this backend is bit-identical to Rv32Simulator in
// registers, memory, PC, stats and observer stream — locked by
// tests/rv32/packed_rv32_sim_test.cpp and the engine conformance suite.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "rv32/rv32_decoded_image.hpp"
#include "rv32/rv32_sim.hpp"
#include "ternary/packed.hpp"

namespace art9::rv32 {

/// A 32-bit binary value on the ternary datapath: 21 trits, two planes.
using PackedU32 = ternary::packed::PackedWord<21>;

/// uint32_t -> plane pair (table loads; the unsigned range embeds into
/// the balanced range unbiased).
[[nodiscard]] constexpr PackedU32 pack_u32(uint32_t value) noexcept {
  return PackedU32::from_int(static_cast<int64_t>(value));
}

/// Plane pair -> uint32_t.  Precondition: holds a value in [0, 2^32).
[[nodiscard]] constexpr uint32_t unpack_u32(const PackedU32& word) noexcept {
  return static_cast<uint32_t>(word.to_int());
}

class PackedRv32Simulator {
 public:
  using Observer = Rv32Simulator::Observer;

  explicit PackedRv32Simulator(const Rv32Program& program, std::size_t ram_bytes = 1u << 20);

  /// Runs off a shared pre-decoded image.  `image` must be non-null.
  explicit PackedRv32Simulator(std::shared_ptr<const Rv32DecodedImage> image,
                               std::size_t ram_bytes = 1u << 20);

  /// Executes one instruction; false when ECALL/EBREAK retires.  Same
  /// observer convention as Rv32Simulator (the halting event included).
  bool step();

  Rv32RunStats run(uint64_t max_instructions = 100'000'000, const Observer& observer = {});

  void set_observer(Observer observer) { observer_ = std::move(observer); }

  [[nodiscard]] uint32_t reg(int index) const {
    return unpack_u32(regs_.at(static_cast<std::size_t>(index)));
  }
  void set_reg(int index, uint32_t value) {
    if (index != 0) regs_.at(static_cast<std::size_t>(index)) = pack_u32(value);
  }
  [[nodiscard]] uint32_t pc() const noexcept { return pc_; }

  [[nodiscard]] uint32_t load_word(uint32_t address) const;
  void store_word(uint32_t address, uint32_t value);
  [[nodiscard]] uint8_t load_byte(uint32_t address) const;

  /// Full binary materialization of registers, RAM bytes and PC — the
  /// only place the packed state is decoded wholesale.
  [[nodiscard]] Rv32ArchState state() const;

  /// The inverse boundary: re-packs a binary architectural state
  /// (snapshot restore), adopting the snapshot's RAM size.
  /// restore(state()) is an exact round trip.
  void restore(const Rv32ArchState& state);

  [[nodiscard]] const Rv32DecodedImage& image() const noexcept { return *image_; }

  /// Direct plane-pair access (tests, representation checks).
  [[nodiscard]] const PackedU32& packed_reg(int index) const {
    return regs_.at(static_cast<std::size_t>(index));
  }

 private:
  [[nodiscard]] uint32_t mem_load(uint32_t address, uint32_t size) const;
  void mem_store(uint32_t address, uint32_t value, uint32_t size);

  std::shared_ptr<const Rv32DecodedImage> image_;
  std::size_t ram_bytes_;             // logical byte size (bounds checks)
  std::vector<PackedU32> ram_;        // one packed word per aligned 32-bit row
  std::array<PackedU32, 32> regs_{};  // packed TRF; regs_[0] stays zero
  uint32_t pc_ = 0;
  uint32_t row_ = 0;
  Observer observer_;
};

}  // namespace art9::rv32
