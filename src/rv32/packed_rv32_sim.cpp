#include "rv32/packed_rv32_sim.hpp"

#include <algorithm>
#include <utility>

#include "rv32/rv32_exec.hpp"

namespace art9::rv32 {

namespace {

/// Byte-span mask within a row: `take` bytes starting at byte `offset`.
constexpr uint32_t row_mask(uint32_t offset, uint32_t take) noexcept {
  const uint32_t bits = 8 * take;
  return (bits == 32 ? 0xFFFFFFFFu : (1u << bits) - 1u) << (8 * offset);
}

/// LE byte assembly over the packed word rows (bounds in logical bytes).
/// Sub-word and unaligned traffic is grouped per covering row, so each
/// row crosses the plane/value boundary once, not once per byte.
uint32_t packed_load(const std::vector<PackedU32>& ram, std::size_t ram_bytes, uint32_t address,
                     uint32_t size) {
  check_ram_range(address, size, ram_bytes, "load");
  if (size == 4 && (address & 3u) == 0) return unpack_u32(ram[address >> 2]);
  uint32_t v = 0;
  for (uint32_t i = 0; i < size;) {
    const uint32_t a = address + i;
    const uint32_t offset = a & 3u;
    const uint32_t take = std::min(size - i, 4u - offset);
    const uint32_t word = unpack_u32(ram[a >> 2]);
    v |= ((word & row_mask(offset, take)) >> (8 * offset)) << (8 * i);
    i += take;
  }
  return v;
}

void packed_store(std::vector<PackedU32>& ram, std::size_t ram_bytes, uint32_t address,
                  uint32_t value, uint32_t size) {
  check_ram_range(address, size, ram_bytes, "store");
  if (size == 4 && (address & 3u) == 0) {
    ram[address >> 2] = pack_u32(value);
    return;
  }
  // Read-modify-write each covering row once.
  for (uint32_t i = 0; i < size;) {
    const uint32_t a = address + i;
    const uint32_t offset = a & 3u;
    const uint32_t take = std::min(size - i, 4u - offset);
    const uint32_t mask = row_mask(offset, take);
    uint32_t word = unpack_u32(ram[a >> 2]);
    word = (word & ~mask) | (((value >> (8 * i)) << (8 * offset)) & mask);
    ram[a >> 2] = pack_u32(word);
    i += take;
  }
}

/// The plane-pair datapath: values cross the representation boundary per
/// operand (table loads), never per run.
struct PackedDatapath {
  std::array<PackedU32, 32>& regs;
  std::vector<PackedU32>& ram;
  std::size_t ram_bytes;

  [[nodiscard]] uint32_t read(unsigned reg) const { return unpack_u32(regs[reg]); }
  void write(unsigned reg, uint32_t value) {
    if (reg != 0) regs[reg] = pack_u32(value);
  }
  [[nodiscard]] uint32_t load(uint32_t address, uint32_t size) const {
    return packed_load(ram, ram_bytes, address, size);
  }
  void store(uint32_t address, uint32_t value, uint32_t size) {
    packed_store(ram, ram_bytes, address, value, size);
  }
};

}  // namespace

PackedRv32Simulator::PackedRv32Simulator(const Rv32Program& program, std::size_t ram_bytes)
    : PackedRv32Simulator(decode(program), ram_bytes) {}

PackedRv32Simulator::PackedRv32Simulator(std::shared_ptr<const Rv32DecodedImage> image,
                                         std::size_t ram_bytes)
    : image_(std::move(image)), ram_bytes_(ram_bytes), ram_((ram_bytes + 3) / 4) {
  if (!image_) throw Rv32SimError("PackedRv32Simulator: null image");
  pc_ = image_->entry();
  row_ = image_->row_of(pc_);
  for (const Rv32DataWord& d : image_->program().data) store_word(d.address, d.value);
}

uint32_t PackedRv32Simulator::mem_load(uint32_t address, uint32_t size) const {
  return packed_load(ram_, ram_bytes_, address, size);
}

void PackedRv32Simulator::mem_store(uint32_t address, uint32_t value, uint32_t size) {
  packed_store(ram_, ram_bytes_, address, value, size);
}

uint32_t PackedRv32Simulator::load_word(uint32_t address) const { return mem_load(address, 4); }

uint8_t PackedRv32Simulator::load_byte(uint32_t address) const {
  return static_cast<uint8_t>(mem_load(address, 1));
}

void PackedRv32Simulator::store_word(uint32_t address, uint32_t value) {
  mem_store(address, value, 4);
}

bool PackedRv32Simulator::step() {
  const uint32_t row = row_;
  const Rv32DecodedOp& op = image_->row(row);
  const uint32_t pc = pc_;
  uint32_t next_pc = op.next_pc;
  uint32_t next_row = op.next_row;
  bool taken = false;

  PackedDatapath dp{regs_, ram_, ram_bytes_};
  if (!detail::execute_rv32(dp, *image_, op, pc, next_pc, next_row, taken)) {
    if (observer_) observer_(Rv32Retired{image_->instruction(row), pc, false});
    return false;  // halt convention
  }

  pc_ = next_pc;
  row_ = next_row;
  if (observer_) observer_(Rv32Retired{image_->instruction(row), pc, taken});
  return true;
}

Rv32RunStats PackedRv32Simulator::run(uint64_t max_instructions, const Observer& observer) {
  const detail::ScopedObserver scope(observer_, observer);
  Rv32RunStats stats;
  while (stats.instructions < max_instructions) {
    if (!step()) {
      stats.halted = true;
      break;
    }
    ++stats.instructions;
  }
  return stats;
}

Rv32ArchState PackedRv32Simulator::state() const {
  Rv32ArchState state;
  for (std::size_t r = 0; r < regs_.size(); ++r) state.regs[r] = unpack_u32(regs_[r]);
  state.ram.resize(ram_bytes_);
  for (std::size_t row = 0; row < ram_.size(); ++row) {
    const uint32_t word = unpack_u32(ram_[row]);
    for (std::size_t b = 0; b < 4 && 4 * row + b < ram_bytes_; ++b) {
      state.ram[4 * row + b] = static_cast<uint8_t>(word >> (8 * b));
    }
  }
  state.pc = pc_;
  return state;
}

void PackedRv32Simulator::restore(const Rv32ArchState& state) {
  for (std::size_t r = 0; r < regs_.size(); ++r) regs_[r] = pack_u32(state.regs[r]);
  regs_[0] = pack_u32(0);
  ram_bytes_ = state.ram.size();
  ram_.assign((ram_bytes_ + 3) / 4, PackedU32{});
  for (std::size_t row = 0; row < ram_.size(); ++row) {
    uint32_t word = 0;
    for (std::size_t b = 0; b < 4 && 4 * row + b < ram_bytes_; ++b) {
      word |= static_cast<uint32_t>(state.ram[4 * row + b]) << (8 * b);
    }
    ram_[row] = pack_u32(word);
  }
  pc_ = state.pc;
  row_ = image_->row_of(pc_);
}

}  // namespace art9::rv32
