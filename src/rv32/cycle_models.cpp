#include "rv32/cycle_models.hpp"

namespace art9::rv32 {

void PicoRv32CycleModel::observe(const Rv32Retired& retired) {
  ++instructions_;
  const Rv32Spec& s = spec(retired.inst.op);
  switch (s.klass) {
    case Rv32Class::kAlu:
      cycles_ += costs_.alu;
      break;
    case Rv32Class::kLoad:
      cycles_ += costs_.load;
      break;
    case Rv32Class::kStore:
      cycles_ += costs_.store;
      break;
    case Rv32Class::kBranch:
      cycles_ += retired.taken ? costs_.branch_taken : costs_.branch_not_taken;
      break;
    case Rv32Class::kJump:
      cycles_ += retired.inst.op == Rv32Op::kJalr ? costs_.jalr : costs_.jal;
      break;
    case Rv32Class::kMul:
      cycles_ += costs_.mul;
      break;
    case Rv32Class::kDiv:
      cycles_ += costs_.div;
      break;
    case Rv32Class::kSystem:
      cycles_ += costs_.system;
      break;
  }
}

void VexRiscvCycleModel::observe(const Rv32Retired& retired) {
  ++instructions_;
  ++cycles_;  // base throughput of the pipeline
  const Rv32Instruction& inst = retired.inst;
  const Rv32Spec& s = spec(inst.op);

  // Load-use interlock: does this instruction read the register a load
  // produced last cycle?
  if (pending_load_rd_ != 0) {
    bool uses = false;
    switch (s.format) {
      case Rv32Format::kR:
        uses = inst.rs1 == pending_load_rd_ || inst.rs2 == pending_load_rd_;
        break;
      case Rv32Format::kI:
      case Rv32Format::kIShift:
        uses = inst.rs1 == pending_load_rd_;
        break;
      case Rv32Format::kS:
      case Rv32Format::kB:
        uses = inst.rs1 == pending_load_rd_ || inst.rs2 == pending_load_rd_;
        break;
      case Rv32Format::kU:
      case Rv32Format::kJ:
      case Rv32Format::kSystem:
        uses = false;
        break;
    }
    if (uses) {
      cycles_ += costs_.load_use_stall;
      ++load_use_stalls_;
    }
  }
  pending_load_rd_ = (s.klass == Rv32Class::kLoad && inst.rd != 0) ? inst.rd : 0;

  switch (s.klass) {
    case Rv32Class::kBranch:
    case Rv32Class::kJump:
      if (retired.taken) {
        cycles_ += costs_.taken_branch_penalty;
        ++branch_penalties_;
      }
      break;
    case Rv32Class::kMul:
      cycles_ += costs_.mul_extra;
      break;
    case Rv32Class::kDiv:
      cycles_ += costs_.div_extra;
      break;
    default:
      break;
  }
}

}  // namespace art9::rv32
