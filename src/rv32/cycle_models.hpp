// Instruction-level cycle models of the two baseline RV32 cores of the
// paper's evaluation (Table II / Table III):
//
//  * PicoRV32 — a size-optimised, *non-pipelined* multi-cycle core
//    (RV32IM, 48 instructions).  Each instruction occupies the core for a
//    fixed number of cycles by class; the published average is ~0.31
//    DMIPS/MHz (≈ 4 CPI on Dhrystone).
//  * VexRiscv — a 5-stage pipelined core (the paper's Table II row runs
//    RV32I with a hardware multiplier), published ~0.65 DMIPS/MHz in the
//    performance-oriented configuration.
//
// We model both at instruction granularity, consuming the retired-
// instruction stream of the functional simulator.  The per-class costs are
// *calibration data* (documented defaults approximating the cores'
// published behaviour), while the accounting logic — what stalls when — is
// structural.  DESIGN.md §2 records this substitution.
#pragma once

#include <cstdint>

#include "rv32/rv32_sim.hpp"

namespace art9::rv32 {

/// Per-class cycle costs of the PicoRV32 state machine.  Defaults follow
/// the core's documented timing (regular ALU ops 3 cycles, memory ops 5,
/// taken branches pay the refetch, serial multiplier ~40 cycles).
struct PicoRv32Costs {
  uint64_t alu = 3;
  uint64_t load = 5;
  uint64_t store = 5;
  uint64_t branch_not_taken = 3;
  uint64_t branch_taken = 5;
  uint64_t jal = 5;
  uint64_t jalr = 6;
  uint64_t mul = 45;  // serial PCPI multiplier: ~1 bit/cycle + handshake
  uint64_t div = 45;
  uint64_t system = 3;
};

/// Accumulates PicoRV32 cycles over a retired-instruction stream.
class PicoRv32CycleModel {
 public:
  explicit PicoRv32CycleModel(const PicoRv32Costs& costs = {}) : costs_(costs) {}

  void observe(const Rv32Retired& retired);

  [[nodiscard]] uint64_t cycles() const noexcept { return cycles_; }
  [[nodiscard]] uint64_t instructions() const noexcept { return instructions_; }
  [[nodiscard]] double cpi() const {
    return instructions_ == 0 ? 0.0
                              : static_cast<double>(cycles_) / static_cast<double>(instructions_);
  }

 private:
  PicoRv32Costs costs_;
  uint64_t cycles_ = 0;
  uint64_t instructions_ = 0;
};

/// VexRiscv-style 5-stage pipeline timing: 1 cycle per instruction plus
/// structural penalties.
struct VexRiscvCosts {
  uint64_t taken_branch_penalty = 4;  // refill after taken branch/jump (no predictor)
  uint64_t load_use_stall = 1;        // dependent instruction right after a load
  uint64_t mul_extra = 0;             // pipelined multiplier
  uint64_t div_extra = 32;            // iterative divider
};

class VexRiscvCycleModel {
 public:
  explicit VexRiscvCycleModel(const VexRiscvCosts& costs = {}) : costs_(costs) {}

  void observe(const Rv32Retired& retired);

  [[nodiscard]] uint64_t cycles() const noexcept { return cycles_; }
  [[nodiscard]] uint64_t instructions() const noexcept { return instructions_; }
  [[nodiscard]] uint64_t load_use_stalls() const noexcept { return load_use_stalls_; }
  [[nodiscard]] uint64_t branch_penalties() const noexcept { return branch_penalties_; }
  [[nodiscard]] double cpi() const {
    return instructions_ == 0 ? 0.0
                              : static_cast<double>(cycles_) / static_cast<double>(instructions_);
  }

 private:
  VexRiscvCosts costs_;
  uint64_t cycles_ = 0;
  uint64_t instructions_ = 0;
  uint64_t load_use_stalls_ = 0;
  uint64_t branch_penalties_ = 0;
  // Destination of the previous instruction when it was a load (0 = none;
  // x0 loads never stall anything).
  int pending_load_rd_ = 0;
};

/// Dhrystone conversion helpers (paper Table II): the benchmark defines
/// one "iteration"; DMIPS = iterations/second / 1757.
[[nodiscard]] inline double dmips_per_mhz(uint64_t cycles_per_iteration) {
  if (cycles_per_iteration == 0) return 0.0;
  return 1.0e6 / 1757.0 / static_cast<double>(cycles_per_iteration);
}

/// DMIPS/W at a given clock and power (paper Tables IV/V).
[[nodiscard]] inline double dmips_per_watt(double dmips_per_mhz_value, double clock_mhz,
                                           double power_watts) {
  if (power_watts <= 0.0) return 0.0;
  return dmips_per_mhz_value * clock_mhz / power_watts;
}

}  // namespace art9::rv32
