// RV32I + M instruction set model — the binary baseline of the paper.
//
// The paper's software framework starts from RV-32I assembly emitted by a
// stock compiler (paper Fig. 2) and its evaluation compares against two
// open RV32 cores: VexRiscv (RV32I, 40 instructions counting FENCE/ECALL/
// EBREAK) and PicoRV32 (RV32IM, 48 instructions) — see Table II.  This
// module provides the ISA definition, 32-bit encoding, assembler and
// functional simulator those comparisons need.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace art9::rv32 {

enum class Rv32Op : uint8_t {
  // RV32I base (37 user-level + FENCE + ECALL + EBREAK = 40).
  kLui,
  kAuipc,
  kJal,
  kJalr,
  kBeq,
  kBne,
  kBlt,
  kBge,
  kBltu,
  kBgeu,
  kLb,
  kLh,
  kLw,
  kLbu,
  kLhu,
  kSb,
  kSh,
  kSw,
  kAddi,
  kSlti,
  kSltiu,
  kXori,
  kOri,
  kAndi,
  kSlli,
  kSrli,
  kSrai,
  kAdd,
  kSub,
  kSll,
  kSlt,
  kSltu,
  kXor,
  kSrl,
  kSra,
  kOr,
  kAnd,
  kFence,
  kEcall,
  kEbreak,
  // M extension (8 more -> 48, the PicoRV32 count in Table II).
  kMul,
  kMulh,
  kMulhsu,
  kMulhu,
  kDiv,
  kDivu,
  kRem,
  kRemu,
};

inline constexpr int kNumRv32IOps = 40;
inline constexpr int kNumRv32Ops = 48;

/// Encoding format.
enum class Rv32Format : uint8_t { kR, kI, kIShift, kS, kB, kU, kJ, kSystem };

/// Timing class consumed by the cycle models.
enum class Rv32Class : uint8_t {
  kAlu,
  kLoad,
  kStore,
  kBranch,
  kJump,
  kMul,
  kDiv,
  kSystem,
};

struct Rv32Spec {
  std::string_view mnemonic;
  Rv32Format format;
  Rv32Class klass;
};

[[nodiscard]] const Rv32Spec& spec(Rv32Op op);
[[nodiscard]] std::string_view mnemonic(Rv32Op op);
[[nodiscard]] Rv32Op rv32_op_from_mnemonic(std::string_view name);

/// One decoded instruction.  `imm` is the sign-extended immediate
/// (byte offsets for branches/jumps, as in the spec).
struct Rv32Instruction {
  Rv32Op op = Rv32Op::kAddi;
  int rd = 0;
  int rs1 = 0;
  int rs2 = 0;
  int32_t imm = 0;

  friend bool operator==(const Rv32Instruction&, const Rv32Instruction&) = default;

  static Rv32Instruction nop() { return Rv32Instruction{Rv32Op::kAddi, 0, 0, 0, 0}; }
};

/// Encodes to the standard 32-bit RISC-V word.  Throws std::out_of_range
/// on malformed fields.
[[nodiscard]] uint32_t encode(const Rv32Instruction& inst);

/// Decodes a 32-bit word; throws std::invalid_argument on undefined ones.
[[nodiscard]] Rv32Instruction decode(uint32_t word);

[[nodiscard]] std::string to_string(const Rv32Instruction& inst);
std::ostream& operator<<(std::ostream& os, const Rv32Instruction& inst);

/// ABI register name (x0 -> "zero", x2 -> "sp", ...).
[[nodiscard]] std::string_view abi_name(int reg);

/// Parses "x7", "t0", "sp", ... ; throws std::invalid_argument.
[[nodiscard]] int parse_rv32_register(std::string_view token);

}  // namespace art9::rv32
