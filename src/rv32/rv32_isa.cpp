#include "rv32/rv32_isa.hpp"

#include <cctype>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace art9::rv32 {
namespace {

struct EncInfo {
  uint32_t opcode;  // 7-bit major opcode
  uint32_t funct3;
  uint32_t funct7;
};

constexpr uint32_t kOpLui = 0b0110111;
constexpr uint32_t kOpAuipc = 0b0010111;
constexpr uint32_t kOpJal = 0b1101111;
constexpr uint32_t kOpJalr = 0b1100111;
constexpr uint32_t kOpBranch = 0b1100011;
constexpr uint32_t kOpLoad = 0b0000011;
constexpr uint32_t kOpStore = 0b0100011;
constexpr uint32_t kOpImm = 0b0010011;
constexpr uint32_t kOpReg = 0b0110011;
constexpr uint32_t kOpMiscMem = 0b0001111;
constexpr uint32_t kOpSystem = 0b1110011;

struct Entry {
  Rv32Spec spec;
  EncInfo enc;
};

constexpr Entry kTable[kNumRv32Ops] = {
    {{"lui", Rv32Format::kU, Rv32Class::kAlu}, {kOpLui, 0, 0}},
    {{"auipc", Rv32Format::kU, Rv32Class::kAlu}, {kOpAuipc, 0, 0}},
    {{"jal", Rv32Format::kJ, Rv32Class::kJump}, {kOpJal, 0, 0}},
    {{"jalr", Rv32Format::kI, Rv32Class::kJump}, {kOpJalr, 0b000, 0}},
    {{"beq", Rv32Format::kB, Rv32Class::kBranch}, {kOpBranch, 0b000, 0}},
    {{"bne", Rv32Format::kB, Rv32Class::kBranch}, {kOpBranch, 0b001, 0}},
    {{"blt", Rv32Format::kB, Rv32Class::kBranch}, {kOpBranch, 0b100, 0}},
    {{"bge", Rv32Format::kB, Rv32Class::kBranch}, {kOpBranch, 0b101, 0}},
    {{"bltu", Rv32Format::kB, Rv32Class::kBranch}, {kOpBranch, 0b110, 0}},
    {{"bgeu", Rv32Format::kB, Rv32Class::kBranch}, {kOpBranch, 0b111, 0}},
    {{"lb", Rv32Format::kI, Rv32Class::kLoad}, {kOpLoad, 0b000, 0}},
    {{"lh", Rv32Format::kI, Rv32Class::kLoad}, {kOpLoad, 0b001, 0}},
    {{"lw", Rv32Format::kI, Rv32Class::kLoad}, {kOpLoad, 0b010, 0}},
    {{"lbu", Rv32Format::kI, Rv32Class::kLoad}, {kOpLoad, 0b100, 0}},
    {{"lhu", Rv32Format::kI, Rv32Class::kLoad}, {kOpLoad, 0b101, 0}},
    {{"sb", Rv32Format::kS, Rv32Class::kStore}, {kOpStore, 0b000, 0}},
    {{"sh", Rv32Format::kS, Rv32Class::kStore}, {kOpStore, 0b001, 0}},
    {{"sw", Rv32Format::kS, Rv32Class::kStore}, {kOpStore, 0b010, 0}},
    {{"addi", Rv32Format::kI, Rv32Class::kAlu}, {kOpImm, 0b000, 0}},
    {{"slti", Rv32Format::kI, Rv32Class::kAlu}, {kOpImm, 0b010, 0}},
    {{"sltiu", Rv32Format::kI, Rv32Class::kAlu}, {kOpImm, 0b011, 0}},
    {{"xori", Rv32Format::kI, Rv32Class::kAlu}, {kOpImm, 0b100, 0}},
    {{"ori", Rv32Format::kI, Rv32Class::kAlu}, {kOpImm, 0b110, 0}},
    {{"andi", Rv32Format::kI, Rv32Class::kAlu}, {kOpImm, 0b111, 0}},
    {{"slli", Rv32Format::kIShift, Rv32Class::kAlu}, {kOpImm, 0b001, 0b0000000}},
    {{"srli", Rv32Format::kIShift, Rv32Class::kAlu}, {kOpImm, 0b101, 0b0000000}},
    {{"srai", Rv32Format::kIShift, Rv32Class::kAlu}, {kOpImm, 0b101, 0b0100000}},
    {{"add", Rv32Format::kR, Rv32Class::kAlu}, {kOpReg, 0b000, 0b0000000}},
    {{"sub", Rv32Format::kR, Rv32Class::kAlu}, {kOpReg, 0b000, 0b0100000}},
    {{"sll", Rv32Format::kR, Rv32Class::kAlu}, {kOpReg, 0b001, 0b0000000}},
    {{"slt", Rv32Format::kR, Rv32Class::kAlu}, {kOpReg, 0b010, 0b0000000}},
    {{"sltu", Rv32Format::kR, Rv32Class::kAlu}, {kOpReg, 0b011, 0b0000000}},
    {{"xor", Rv32Format::kR, Rv32Class::kAlu}, {kOpReg, 0b100, 0b0000000}},
    {{"srl", Rv32Format::kR, Rv32Class::kAlu}, {kOpReg, 0b101, 0b0000000}},
    {{"sra", Rv32Format::kR, Rv32Class::kAlu}, {kOpReg, 0b101, 0b0100000}},
    {{"or", Rv32Format::kR, Rv32Class::kAlu}, {kOpReg, 0b110, 0b0000000}},
    {{"and", Rv32Format::kR, Rv32Class::kAlu}, {kOpReg, 0b111, 0b0000000}},
    {{"fence", Rv32Format::kSystem, Rv32Class::kSystem}, {kOpMiscMem, 0b000, 0}},
    {{"ecall", Rv32Format::kSystem, Rv32Class::kSystem}, {kOpSystem, 0b000, 0}},
    {{"ebreak", Rv32Format::kSystem, Rv32Class::kSystem}, {kOpSystem, 0b000, 1}},
    {{"mul", Rv32Format::kR, Rv32Class::kMul}, {kOpReg, 0b000, 0b0000001}},
    {{"mulh", Rv32Format::kR, Rv32Class::kMul}, {kOpReg, 0b001, 0b0000001}},
    {{"mulhsu", Rv32Format::kR, Rv32Class::kMul}, {kOpReg, 0b010, 0b0000001}},
    {{"mulhu", Rv32Format::kR, Rv32Class::kMul}, {kOpReg, 0b011, 0b0000001}},
    {{"div", Rv32Format::kR, Rv32Class::kDiv}, {kOpReg, 0b100, 0b0000001}},
    {{"divu", Rv32Format::kR, Rv32Class::kDiv}, {kOpReg, 0b101, 0b0000001}},
    {{"rem", Rv32Format::kR, Rv32Class::kDiv}, {kOpReg, 0b110, 0b0000001}},
    {{"remu", Rv32Format::kR, Rv32Class::kDiv}, {kOpReg, 0b111, 0b0000001}},
};

constexpr std::string_view kAbiNames[32] = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
    "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
    "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
};

uint32_t ubits(int32_t v, int lo, int hi) {
  return (static_cast<uint32_t>(v) >> lo) & ((1u << (hi - lo + 1)) - 1);
}

void check_reg(int r, const char* what) {
  if (r < 0 || r > 31) {
    throw std::out_of_range(std::string("rv32 register out of range: ") + what);
  }
}

void check_imm_range(int64_t v, int64_t lo, int64_t hi, const char* what) {
  if (v < lo || v > hi) {
    throw std::out_of_range("rv32 immediate out of range for " + std::string(what) + ": " +
                            std::to_string(v));
  }
}

}  // namespace

const Rv32Spec& spec(Rv32Op op) { return kTable[static_cast<int>(op)].spec; }

std::string_view mnemonic(Rv32Op op) { return spec(op).mnemonic; }

Rv32Op rv32_op_from_mnemonic(std::string_view name) {
  static const std::unordered_map<std::string, Rv32Op> kByName = [] {
    std::unordered_map<std::string, Rv32Op> m;
    for (int i = 0; i < kNumRv32Ops; ++i) {
      m.emplace(std::string(kTable[i].spec.mnemonic), static_cast<Rv32Op>(i));
    }
    return m;
  }();
  std::string lower(name);
  for (char& c : lower) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  auto it = kByName.find(lower);
  if (it == kByName.end()) {
    throw std::invalid_argument("unknown rv32 mnemonic: " + std::string(name));
  }
  return it->second;
}

uint32_t encode(const Rv32Instruction& inst) {
  const Entry& e = kTable[static_cast<int>(inst.op)];
  const uint32_t opc = e.enc.opcode;
  const uint32_t f3 = e.enc.funct3;
  const uint32_t f7 = e.enc.funct7;
  check_reg(inst.rd, "rd");
  check_reg(inst.rs1, "rs1");
  check_reg(inst.rs2, "rs2");
  const auto rd = static_cast<uint32_t>(inst.rd);
  const auto rs1 = static_cast<uint32_t>(inst.rs1);
  const auto rs2 = static_cast<uint32_t>(inst.rs2);
  switch (e.spec.format) {
    case Rv32Format::kR:
      return (f7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | opc;
    case Rv32Format::kI:
      check_imm_range(inst.imm, -2048, 2047, e.spec.mnemonic.data());
      return (ubits(inst.imm, 0, 11) << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | opc;
    case Rv32Format::kIShift:
      check_imm_range(inst.imm, 0, 31, e.spec.mnemonic.data());
      return (f7 << 25) | (ubits(inst.imm, 0, 4) << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) |
             opc;
    case Rv32Format::kS:
      check_imm_range(inst.imm, -2048, 2047, e.spec.mnemonic.data());
      return (ubits(inst.imm, 5, 11) << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) |
             (ubits(inst.imm, 0, 4) << 7) | opc;
    case Rv32Format::kB:
      check_imm_range(inst.imm, -4096, 4094, e.spec.mnemonic.data());
      if (inst.imm % 2 != 0) throw std::out_of_range("branch offset must be even");
      return (ubits(inst.imm, 12, 12) << 31) | (ubits(inst.imm, 5, 10) << 25) | (rs2 << 20) |
             (rs1 << 15) | (f3 << 12) | (ubits(inst.imm, 1, 4) << 8) |
             (ubits(inst.imm, 11, 11) << 7) | opc;
    case Rv32Format::kU:
      check_imm_range(inst.imm, -524288, 524287, e.spec.mnemonic.data());
      return (ubits(inst.imm, 0, 19) << 12) | (rd << 7) | opc;
    case Rv32Format::kJ:
      check_imm_range(inst.imm, -1048576, 1048574, e.spec.mnemonic.data());
      if (inst.imm % 2 != 0) throw std::out_of_range("jump offset must be even");
      return (ubits(inst.imm, 20, 20) << 31) | (ubits(inst.imm, 1, 10) << 21) |
             (ubits(inst.imm, 11, 11) << 20) | (ubits(inst.imm, 12, 19) << 12) | (rd << 7) | opc;
    case Rv32Format::kSystem:
      if (inst.op == Rv32Op::kEbreak) return (1u << 20) | opc;
      if (inst.op == Rv32Op::kEcall) return opc;
      return (f3 << 12) | opc;  // fence (imm fields zeroed)
  }
  throw std::logic_error("unreachable");
}

namespace {

int32_t sext(uint32_t v, int bits) {
  const uint32_t m = 1u << (bits - 1);
  return static_cast<int32_t>((v ^ m) - m);
}

Rv32Op find_op(uint32_t opc, uint32_t f3, uint32_t f7, uint32_t word) {
  if (opc == kOpSystem) {
    if (word == (1u << 20 | kOpSystem)) return Rv32Op::kEbreak;
    if (word == kOpSystem) return Rv32Op::kEcall;
    throw std::invalid_argument("unsupported SYSTEM instruction");
  }
  for (int i = 0; i < kNumRv32Ops; ++i) {
    const Entry& e = kTable[i];
    if (e.enc.opcode != opc) continue;
    switch (e.spec.format) {
      case Rv32Format::kR:
        if (e.enc.funct3 == f3 && e.enc.funct7 == f7) return static_cast<Rv32Op>(i);
        break;
      case Rv32Format::kIShift:
        if (e.enc.funct3 == f3 && e.enc.funct7 == (f7 & 0b1111111)) return static_cast<Rv32Op>(i);
        break;
      case Rv32Format::kI:
      case Rv32Format::kS:
      case Rv32Format::kB:
        if (e.enc.funct3 == f3) return static_cast<Rv32Op>(i);
        break;
      case Rv32Format::kU:
      case Rv32Format::kJ:
      case Rv32Format::kSystem:
        return static_cast<Rv32Op>(i);
    }
  }
  throw std::invalid_argument("undefined rv32 encoding");
}

}  // namespace

Rv32Instruction decode(uint32_t word) {
  const uint32_t opc = word & 0x7f;
  const uint32_t f3 = (word >> 12) & 0x7;
  const uint32_t f7 = (word >> 25) & 0x7f;
  Rv32Instruction inst;
  inst.op = find_op(opc, f3, f7, word);
  const Rv32Spec& s = spec(inst.op);
  inst.rd = static_cast<int>((word >> 7) & 0x1f);
  inst.rs1 = static_cast<int>((word >> 15) & 0x1f);
  inst.rs2 = static_cast<int>((word >> 20) & 0x1f);
  switch (s.format) {
    case Rv32Format::kR:
      break;
    case Rv32Format::kI:
      inst.rs2 = 0;
      inst.imm = sext(word >> 20, 12);
      break;
    case Rv32Format::kIShift:
      inst.rs2 = 0;
      inst.imm = static_cast<int32_t>((word >> 20) & 0x1f);
      break;
    case Rv32Format::kS:
      inst.rd = 0;
      inst.imm = sext(((word >> 25) << 5) | ((word >> 7) & 0x1f), 12);
      break;
    case Rv32Format::kB: {
      inst.rd = 0;
      const uint32_t imm = (((word >> 31) & 1) << 12) | (((word >> 7) & 1) << 11) |
                           (((word >> 25) & 0x3f) << 5) | (((word >> 8) & 0xf) << 1);
      inst.imm = sext(imm, 13);
      break;
    }
    case Rv32Format::kU:
      inst.rs1 = inst.rs2 = 0;
      inst.imm = sext(word >> 12, 20);
      break;
    case Rv32Format::kJ: {
      inst.rs1 = inst.rs2 = 0;
      const uint32_t imm = (((word >> 31) & 1) << 20) | (((word >> 12) & 0xff) << 12) |
                           (((word >> 20) & 1) << 11) | (((word >> 21) & 0x3ff) << 1);
      inst.imm = sext(imm, 21);
      break;
    }
    case Rv32Format::kSystem:
      inst.rd = inst.rs1 = inst.rs2 = 0;
      inst.imm = 0;
      break;
  }
  return inst;
}

std::string to_string(const Rv32Instruction& inst) {
  const Rv32Spec& s = spec(inst.op);
  std::ostringstream os;
  os << s.mnemonic << ' ';
  switch (s.format) {
    case Rv32Format::kR:
      os << abi_name(inst.rd) << ", " << abi_name(inst.rs1) << ", " << abi_name(inst.rs2);
      break;
    case Rv32Format::kI:
      if (spec(inst.op).klass == Rv32Class::kLoad || inst.op == Rv32Op::kJalr) {
        os << abi_name(inst.rd) << ", " << inst.imm << '(' << abi_name(inst.rs1) << ')';
      } else {
        os << abi_name(inst.rd) << ", " << abi_name(inst.rs1) << ", " << inst.imm;
      }
      break;
    case Rv32Format::kIShift:
      os << abi_name(inst.rd) << ", " << abi_name(inst.rs1) << ", " << inst.imm;
      break;
    case Rv32Format::kS:
      os << abi_name(inst.rs2) << ", " << inst.imm << '(' << abi_name(inst.rs1) << ')';
      break;
    case Rv32Format::kB:
      os << abi_name(inst.rs1) << ", " << abi_name(inst.rs2) << ", " << inst.imm;
      break;
    case Rv32Format::kU:
      os << abi_name(inst.rd) << ", " << inst.imm;
      break;
    case Rv32Format::kJ:
      os << abi_name(inst.rd) << ", " << inst.imm;
      break;
    case Rv32Format::kSystem:
      break;
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Rv32Instruction& inst) {
  return os << to_string(inst);
}

std::string_view abi_name(int reg) {
  if (reg < 0 || reg > 31) throw std::out_of_range("rv32 register out of range");
  return kAbiNames[reg];
}

int parse_rv32_register(std::string_view token) {
  std::string t(token);
  for (char& c : t) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (t.size() >= 2 && t[0] == 'x') {
    const int n = std::stoi(t.substr(1));
    check_reg(n, t.c_str());
    return n;
  }
  if (t == "fp") return 8;
  for (int i = 0; i < 32; ++i) {
    if (t == kAbiNames[i]) return i;
  }
  throw std::invalid_argument("unknown rv32 register '" + std::string(token) + "'");
}

}  // namespace art9::rv32
