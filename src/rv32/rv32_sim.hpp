// Functional RV32I(+M) simulator with a retired-instruction observer hook.
//
// The observer stream feeds the instruction-level timing models of
// PicoRV32 and VexRiscv (src/rv32/cycle_models.*), which is how Tables II
// and III obtain baseline cycle counts without the cores' RTL.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "rv32/rv32_program.hpp"

namespace art9::rv32 {

class Rv32SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One retired instruction, as seen by timing models.
struct Rv32Retired {
  Rv32Instruction inst;
  uint32_t pc = 0;
  bool taken = false;  // for branches: condition true
};

struct Rv32RunStats {
  uint64_t instructions = 0;
  bool halted = false;  // reached ecall/ebreak
};

class Rv32Simulator {
 public:
  using Observer = std::function<void(const Rv32Retired&)>;

  explicit Rv32Simulator(const Rv32Program& program, std::size_t ram_bytes = 1u << 20);

  /// Executes one instruction; false when ECALL/EBREAK retires (halt
  /// convention, mirroring the ART-9 self-jump).
  bool step();

  Rv32RunStats run(uint64_t max_instructions = 100'000'000, const Observer& observer = {});

  [[nodiscard]] uint32_t reg(int index) const { return regs_.at(static_cast<std::size_t>(index)); }
  void set_reg(int index, uint32_t value) {
    if (index != 0) regs_.at(static_cast<std::size_t>(index)) = value;
  }
  [[nodiscard]] uint32_t pc() const noexcept { return pc_; }

  [[nodiscard]] uint32_t load_word(uint32_t address) const;
  void store_word(uint32_t address, uint32_t value);
  [[nodiscard]] uint8_t load_byte(uint32_t address) const;

 private:
  const Rv32Instruction& fetch() const;
  [[nodiscard]] uint32_t ram_at(uint32_t address, uint32_t size) const;

  std::vector<Rv32Instruction> code_;
  uint32_t entry_;
  std::vector<uint8_t> ram_;
  std::array<uint32_t, 32> regs_{};
  uint32_t pc_ = 0;
  Observer observer_;
};

}  // namespace art9::rv32
