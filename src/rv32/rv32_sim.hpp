// Functional RV32I(+M) simulators with a retired-instruction observer hook.
//
// The observer stream feeds the instruction-level timing models of
// PicoRV32 and VexRiscv (src/rv32/cycle_models.*), which is how Tables II
// and III obtain baseline cycle counts without the cores' RTL.
//
// Two execution loops share the architecture (mirroring the ART-9 side):
//
//  * Rv32Simulator — the reference model, rebuilt on an eagerly
//    pre-decoded Rv32DecodedImage: dispatch is one dense-kind switch with
//    precomputed PC chains (see rv32_decoded_image.hpp), and any number
//    of instances can share one immutable image across threads.
//  * LazyRv32Simulator — the seed decode-on-fetch loop (range check,
//    modulo and divide per fetch), kept as the differential baseline.
//
// A third backend, PackedRv32Simulator (packed_rv32_sim.hpp), runs the
// same ISA with its registers and data memory held as ternary plane pairs.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "rv32/rv32_decoded_image.hpp"
#include "rv32/rv32_program.hpp"

namespace art9::rv32 {

/// One retired instruction, as seen by timing models.
struct Rv32Retired {
  Rv32Instruction inst;
  uint32_t pc = 0;
  bool taken = false;  // for branches: condition true
};

struct Rv32RunStats {
  uint64_t instructions = 0;
  bool halted = false;  // reached ecall/ebreak

  friend bool operator==(const Rv32RunStats&, const Rv32RunStats&) = default;
};

/// Architectural state shared by every rv32 backend.  Differential and
/// conformance tests compare these field-by-field (registers, every RAM
/// byte, PC).
struct Rv32ArchState {
  std::array<uint32_t, 32> regs{};
  std::vector<uint8_t> ram;
  uint32_t pc = 0;

  friend bool operator==(const Rv32ArchState&, const Rv32ArchState&) = default;
};

/// Overflow-safe RAM bounds check shared by every rv32 data-memory model:
/// throws Rv32SimError naming the faulting address unless
/// [address, address + size) is contained in a RAM of `ram_bytes` bytes.
/// (`address + size` can wrap uint32_t — the seed loop's checks missed
/// that for SH/SW near the top of the address space.)
inline void check_ram_range(uint32_t address, uint32_t size, std::size_t ram_bytes,
                            const char* what) {
  if (address > ram_bytes || size > ram_bytes - address) {
    throw Rv32SimError("rv32 " + std::string(what) + " of " + std::to_string(size) +
                       " bytes out of range at address " + std::to_string(address));
  }
}

namespace detail {

/// Little-endian byte assembly over a bounds-checked range.
inline uint32_t ram_load(const std::vector<uint8_t>& ram, uint32_t address, uint32_t size,
                         const char* what) {
  check_ram_range(address, size, ram.size(), what);
  uint32_t v = 0;
  for (uint32_t i = 0; i < size; ++i) v |= static_cast<uint32_t>(ram[address + i]) << (8 * i);
  return v;
}

inline void ram_store(std::vector<uint8_t>& ram, uint32_t address, uint32_t value, uint32_t size,
                      const char* what) {
  check_ram_range(address, size, ram.size(), what);
  for (uint32_t i = 0; i < size; ++i) ram[address + i] = static_cast<uint8_t>(value >> (8 * i));
}

/// The reference datapath: host uint32_t registers and a byte RAM.
/// Shared by Rv32Simulator and the superblock backend, so both dispatch
/// loops execute through the same execute_rv32 semantics.
struct HostDatapath {
  std::array<uint32_t, 32>& regs;
  std::vector<uint8_t>& ram;

  [[nodiscard]] uint32_t read(unsigned reg) const { return regs[reg]; }
  void write(unsigned reg, uint32_t value) {
    if (reg != 0) regs[reg] = value;
  }
  [[nodiscard]] uint32_t load(uint32_t address, uint32_t size) const {
    return ram_load(ram, address, size, "load");
  }
  void store(uint32_t address, uint32_t value, uint32_t size) {
    ram_store(ram, address, value, size, "store");
  }
};

/// Installs a scoped run() observer over `slot`, restoring whatever
/// observer was previously installed (exception-safe) — so a temporary
/// per-run observer never clobbers one set via set_observer().
class ScopedObserver {
 public:
  using Observer = std::function<void(const Rv32Retired&)>;

  ScopedObserver(Observer& slot, const Observer& observer)
      : slot_(slot), active_(static_cast<bool>(observer)) {
    if (active_) {
      saved_ = std::move(slot_);
      slot_ = observer;
    }
  }
  ~ScopedObserver() {
    if (active_) slot_ = std::move(saved_);
  }
  ScopedObserver(const ScopedObserver&) = delete;
  ScopedObserver& operator=(const ScopedObserver&) = delete;

 private:
  Observer& slot_;
  Observer saved_;
  bool active_;
};

}  // namespace detail

/// The reference RV32 simulator: executes off a pre-decoded image.
class Rv32Simulator {
 public:
  using Observer = std::function<void(const Rv32Retired&)>;

  explicit Rv32Simulator(const Rv32Program& program, std::size_t ram_bytes = 1u << 20);

  /// Runs off a shared pre-decoded image (SimulationService, differential
  /// harnesses).  `image` must be non-null.
  explicit Rv32Simulator(std::shared_ptr<const Rv32DecodedImage> image,
                         std::size_t ram_bytes = 1u << 20);

  /// Executes one instruction; false when ECALL/EBREAK retires (halt
  /// convention, mirroring the ART-9 self-jump).  An installed observer
  /// sees every retired instruction, the halting ECALL/EBREAK included.
  bool step();

  /// Runs until halt or `max_instructions` (the halting ECALL/EBREAK is
  /// not counted, matching the ART-9 convention of the halt pseudo-op
  /// never retiring).  A non-empty `observer` is installed for this run
  /// only; otherwise any observer set via set_observer stays active.
  Rv32RunStats run(uint64_t max_instructions = 100'000'000, const Observer& observer = {});

  /// Streams every retired instruction to `observer` (empty to remove).
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  [[nodiscard]] uint32_t reg(int index) const { return regs_.at(static_cast<std::size_t>(index)); }
  void set_reg(int index, uint32_t value) {
    if (index != 0) regs_.at(static_cast<std::size_t>(index)) = value;
  }
  [[nodiscard]] uint32_t pc() const noexcept { return pc_; }

  [[nodiscard]] uint32_t load_word(uint32_t address) const;
  void store_word(uint32_t address, uint32_t value);
  [[nodiscard]] uint8_t load_byte(uint32_t address) const;

  /// Snapshot of the architectural state (registers, RAM bytes, PC).
  [[nodiscard]] Rv32ArchState state() const { return Rv32ArchState{regs_, ram_, pc_}; }

  /// Replaces the architectural state wholesale (snapshot restore),
  /// adopting the snapshot's RAM size and re-syncing the fetch row
  /// (an out-of-program PC resolves to the trap row, like any other
  /// dynamic control-flow target).  x0 is forced back to zero.
  void restore(const Rv32ArchState& state) {
    regs_ = state.regs;
    regs_[0] = 0;
    ram_ = state.ram;
    pc_ = state.pc;
    row_ = image_->row_of(pc_);
  }

  /// The shared pre-decoded image this simulator executes.
  [[nodiscard]] const Rv32DecodedImage& image() const noexcept { return *image_; }

 private:
  [[nodiscard]] uint32_t ram_at(uint32_t address, uint32_t size) const;

  std::shared_ptr<const Rv32DecodedImage> image_;
  // Raw row-table base, cached so the hot loop chases one pointer
  // instead of image_ -> vector -> row.
  const Rv32DecodedOp* rows_ = nullptr;
  std::vector<uint8_t> ram_;
  std::array<uint32_t, 32> regs_{};
  uint32_t pc_ = 0;
  // Current fetch row, kept in lock-step with pc_ so sequential flow and
  // static control flow chase precomputed row links instead of dividing.
  uint32_t row_ = 0;
  Observer observer_;
};

/// The seed's decode-on-fetch rv32 loop: per-fetch range check, modulo
/// and divide.  Kept as the differential baseline for the pre-decoded
/// dispatch fast path (tests, bench_micro_sim).
class LazyRv32Simulator {
 public:
  using Observer = Rv32Simulator::Observer;

  explicit LazyRv32Simulator(const Rv32Program& program, std::size_t ram_bytes = 1u << 20);

  bool step();
  Rv32RunStats run(uint64_t max_instructions = 100'000'000, const Observer& observer = {});

  [[nodiscard]] uint32_t reg(int index) const { return regs_.at(static_cast<std::size_t>(index)); }
  void set_reg(int index, uint32_t value) {
    if (index != 0) regs_.at(static_cast<std::size_t>(index)) = value;
  }
  [[nodiscard]] uint32_t pc() const noexcept { return pc_; }

  [[nodiscard]] uint32_t load_word(uint32_t address) const;
  void store_word(uint32_t address, uint32_t value);
  [[nodiscard]] uint8_t load_byte(uint32_t address) const;

  [[nodiscard]] Rv32ArchState state() const { return Rv32ArchState{regs_, ram_, pc_}; }

  /// Replaces the architectural state wholesale (snapshot restore),
  /// adopting the snapshot's RAM size.  x0 is forced back to zero.
  void restore(const Rv32ArchState& state) {
    regs_ = state.regs;
    regs_[0] = 0;
    ram_ = state.ram;
    pc_ = state.pc;
  }

 private:
  const Rv32Instruction& fetch() const;
  [[nodiscard]] uint32_t ram_at(uint32_t address, uint32_t size) const;

  std::vector<Rv32Instruction> code_;
  uint32_t entry_;
  std::vector<uint8_t> ram_;
  std::array<uint32_t, 32> regs_{};
  uint32_t pc_ = 0;
  Observer observer_;
};

}  // namespace art9::rv32
