#include "rv32/rv32_sim.hpp"

#include "rv32/rv32_exec.hpp"

#include <string>
#include <utility>

namespace art9::rv32 {

// ram_load/ram_store/HostDatapath live in rv32_sim.hpp's detail namespace
// (shared with the superblock backend).
using detail::ram_load;
using detail::ram_store;
using detail::HostDatapath;

// ---------------------------------------------------------------------------
// Rv32Simulator — the pre-decoded reference model.
// ---------------------------------------------------------------------------

Rv32Simulator::Rv32Simulator(const Rv32Program& program, std::size_t ram_bytes)
    : Rv32Simulator(decode(program), ram_bytes) {}

Rv32Simulator::Rv32Simulator(std::shared_ptr<const Rv32DecodedImage> image, std::size_t ram_bytes)
    : image_(std::move(image)), ram_(ram_bytes, 0) {
  if (!image_) throw Rv32SimError("Rv32Simulator: null image");
  rows_ = image_->rows_data();
  pc_ = image_->entry();
  row_ = image_->row_of(pc_);
  for (const Rv32DataWord& d : image_->program().data) store_word(d.address, d.value);
}

uint32_t Rv32Simulator::ram_at(uint32_t address, uint32_t size) const {
  return ram_load(ram_, address, size, "load");
}

uint32_t Rv32Simulator::load_word(uint32_t address) const { return ram_at(address, 4); }

uint8_t Rv32Simulator::load_byte(uint32_t address) const {
  return static_cast<uint8_t>(ram_at(address, 1));
}

void Rv32Simulator::store_word(uint32_t address, uint32_t value) {
  ram_store(ram_, address, value, 4, "store");
}

bool Rv32Simulator::step() {
  const uint32_t row = row_;
  const Rv32DecodedOp& op = rows_[row];
  const uint32_t pc = pc_;
  uint32_t next_pc = op.next_pc;
  uint32_t next_row = op.next_row;
  bool taken = false;

  HostDatapath dp{regs_, ram_};
  if (!detail::execute_rv32(dp, *image_, op, pc, next_pc, next_row, taken)) {
    if (observer_) observer_(Rv32Retired{image_->instruction(row), pc, false});
    return false;  // halt convention
  }

  pc_ = next_pc;
  row_ = next_row;
  if (observer_) observer_(Rv32Retired{image_->instruction(row), pc, taken});
  return true;
}

Rv32RunStats Rv32Simulator::run(uint64_t max_instructions, const Observer& observer) {
  const detail::ScopedObserver scope(observer_, observer);
  Rv32RunStats stats;
  if (observer_) {
    // Instrumented loop: one observer call per retire, via step().
    while (stats.instructions < max_instructions) {
      if (!step()) {
        stats.halted = true;
        break;
      }
      ++stats.instructions;
    }
    return stats;
  }
  // Native hot loop: position lives in registers; pc_/row_ are committed
  // only at exit (including the trap path, so a fault leaves the
  // architectural pc on the faulting address exactly like step()).
  uint32_t pc = pc_;
  uint32_t row = row_;
  const Rv32DecodedOp* const rows = rows_;
  HostDatapath dp{regs_, ram_};
  try {
    while (stats.instructions < max_instructions) {
      const Rv32DecodedOp& op = rows[row];
      uint32_t next_pc = op.next_pc;
      uint32_t next_row = op.next_row;
      bool taken = false;
      if (!detail::execute_rv32(dp, *image_, op, pc, next_pc, next_row, taken)) {
        stats.halted = true;
        break;
      }
      pc = next_pc;
      row = next_row;
      ++stats.instructions;
    }
  } catch (...) {
    pc_ = pc;
    row_ = row;
    throw;
  }
  pc_ = pc;
  row_ = row;
  return stats;
}

// ---------------------------------------------------------------------------
// LazyRv32Simulator — the seed decode-on-fetch loop (differential baseline).
// ---------------------------------------------------------------------------

LazyRv32Simulator::LazyRv32Simulator(const Rv32Program& program, std::size_t ram_bytes)
    : code_(program.code), entry_(program.entry), ram_(ram_bytes, 0), pc_(program.entry) {
  for (const Rv32DataWord& d : program.data) store_word(d.address, d.value);
}

const Rv32Instruction& LazyRv32Simulator::fetch() const {
  if (pc_ < entry_ || (pc_ - entry_) % 4 != 0 || (pc_ - entry_) / 4 >= code_.size()) {
    throw Rv32SimError("rv32 fetch outside program at pc=" + std::to_string(pc_));
  }
  return code_[(pc_ - entry_) / 4];
}

uint32_t LazyRv32Simulator::ram_at(uint32_t address, uint32_t size) const {
  return ram_load(ram_, address, size, "load");
}

uint32_t LazyRv32Simulator::load_word(uint32_t address) const { return ram_at(address, 4); }

uint8_t LazyRv32Simulator::load_byte(uint32_t address) const {
  return static_cast<uint8_t>(ram_at(address, 1));
}

void LazyRv32Simulator::store_word(uint32_t address, uint32_t value) {
  ram_store(ram_, address, value, 4, "store");
}

bool LazyRv32Simulator::step() {
  const Rv32Instruction inst = fetch();
  const uint32_t pc = pc_;
  uint32_t next_pc = pc_ + 4;
  bool taken = false;

  auto rs1 = [&] { return regs_[static_cast<std::size_t>(inst.rs1)]; };
  auto rs2 = [&] { return regs_[static_cast<std::size_t>(inst.rs2)]; };
  auto s1 = [&] { return static_cast<int32_t>(rs1()); };
  auto s2 = [&] { return static_cast<int32_t>(rs2()); };
  auto wr = [&](uint32_t v) { set_reg(inst.rd, v); };
  const auto imm_u = static_cast<uint32_t>(inst.imm);

  switch (inst.op) {
    case Rv32Op::kLui:
      wr(static_cast<uint32_t>(inst.imm) << 12);
      break;
    case Rv32Op::kAuipc:
      wr(pc + (static_cast<uint32_t>(inst.imm) << 12));
      break;
    case Rv32Op::kJal:
      wr(pc + 4);
      next_pc = pc + imm_u;
      taken = true;
      break;
    case Rv32Op::kJalr: {
      const uint32_t target = (rs1() + imm_u) & ~1u;
      wr(pc + 4);
      next_pc = target;
      taken = true;
      break;
    }
    case Rv32Op::kBeq:
      taken = rs1() == rs2();
      if (taken) next_pc = pc + imm_u;
      break;
    case Rv32Op::kBne:
      taken = rs1() != rs2();
      if (taken) next_pc = pc + imm_u;
      break;
    case Rv32Op::kBlt:
      taken = s1() < s2();
      if (taken) next_pc = pc + imm_u;
      break;
    case Rv32Op::kBge:
      taken = s1() >= s2();
      if (taken) next_pc = pc + imm_u;
      break;
    case Rv32Op::kBltu:
      taken = rs1() < rs2();
      if (taken) next_pc = pc + imm_u;
      break;
    case Rv32Op::kBgeu:
      taken = rs1() >= rs2();
      if (taken) next_pc = pc + imm_u;
      break;
    case Rv32Op::kLb: {
      const uint32_t b = ram_at(rs1() + imm_u, 1);
      wr(static_cast<uint32_t>(static_cast<int32_t>(b << 24) >> 24));
      break;
    }
    case Rv32Op::kLh: {
      const uint32_t h = ram_at(rs1() + imm_u, 2);
      wr(static_cast<uint32_t>(static_cast<int32_t>(h << 16) >> 16));
      break;
    }
    case Rv32Op::kLw:
      wr(ram_at(rs1() + imm_u, 4));
      break;
    case Rv32Op::kLbu:
      wr(ram_at(rs1() + imm_u, 1));
      break;
    case Rv32Op::kLhu:
      wr(ram_at(rs1() + imm_u, 2));
      break;
    case Rv32Op::kSb:
      ram_store(ram_, rs1() + imm_u, rs2(), 1, "store");
      break;
    case Rv32Op::kSh:
      ram_store(ram_, rs1() + imm_u, rs2(), 2, "store");
      break;
    case Rv32Op::kSw:
      ram_store(ram_, rs1() + imm_u, rs2(), 4, "store");
      break;
    case Rv32Op::kAddi:
      wr(rs1() + imm_u);
      break;
    case Rv32Op::kSlti:
      wr(s1() < inst.imm ? 1 : 0);
      break;
    case Rv32Op::kSltiu:
      wr(rs1() < imm_u ? 1 : 0);
      break;
    case Rv32Op::kXori:
      wr(rs1() ^ imm_u);
      break;
    case Rv32Op::kOri:
      wr(rs1() | imm_u);
      break;
    case Rv32Op::kAndi:
      wr(rs1() & imm_u);
      break;
    case Rv32Op::kSlli:
      wr(rs1() << (inst.imm & 31));
      break;
    case Rv32Op::kSrli:
      wr(rs1() >> (inst.imm & 31));
      break;
    case Rv32Op::kSrai:
      wr(static_cast<uint32_t>(s1() >> (inst.imm & 31)));
      break;
    case Rv32Op::kAdd:
      wr(rs1() + rs2());
      break;
    case Rv32Op::kSub:
      wr(rs1() - rs2());
      break;
    case Rv32Op::kSll:
      wr(rs1() << (rs2() & 31));
      break;
    case Rv32Op::kSlt:
      wr(s1() < s2() ? 1 : 0);
      break;
    case Rv32Op::kSltu:
      wr(rs1() < rs2() ? 1 : 0);
      break;
    case Rv32Op::kXor:
      wr(rs1() ^ rs2());
      break;
    case Rv32Op::kSrl:
      wr(rs1() >> (rs2() & 31));
      break;
    case Rv32Op::kSra:
      wr(static_cast<uint32_t>(s1() >> (rs2() & 31)));
      break;
    case Rv32Op::kOr:
      wr(rs1() | rs2());
      break;
    case Rv32Op::kAnd:
      wr(rs1() & rs2());
      break;
    case Rv32Op::kFence:
      break;
    case Rv32Op::kEcall:
    case Rv32Op::kEbreak:
      if (observer_) observer_(Rv32Retired{inst, pc, false});
      return false;  // halt convention
    case Rv32Op::kMul:
      wr(rs1() * rs2());
      break;
    case Rv32Op::kMulh:
      wr(static_cast<uint32_t>((static_cast<int64_t>(s1()) * static_cast<int64_t>(s2())) >> 32));
      break;
    case Rv32Op::kMulhsu:
      wr(static_cast<uint32_t>(
          (static_cast<int64_t>(s1()) * static_cast<int64_t>(static_cast<uint64_t>(rs2()))) >> 32));
      break;
    case Rv32Op::kMulhu:
      wr(static_cast<uint32_t>((static_cast<uint64_t>(rs1()) * static_cast<uint64_t>(rs2())) >> 32));
      break;
    case Rv32Op::kDiv:
      if (rs2() == 0) {
        wr(0xffffffffu);
      } else if (s1() == INT32_MIN && s2() == -1) {
        wr(static_cast<uint32_t>(INT32_MIN));
      } else {
        wr(static_cast<uint32_t>(s1() / s2()));
      }
      break;
    case Rv32Op::kDivu:
      wr(rs2() == 0 ? 0xffffffffu : rs1() / rs2());
      break;
    case Rv32Op::kRem:
      if (rs2() == 0) {
        wr(rs1());
      } else if (s1() == INT32_MIN && s2() == -1) {
        wr(0);
      } else {
        wr(static_cast<uint32_t>(s1() % s2()));
      }
      break;
    case Rv32Op::kRemu:
      wr(rs2() == 0 ? rs1() : rs1() % rs2());
      break;
  }

  pc_ = next_pc;
  if (observer_) observer_(Rv32Retired{inst, pc, taken});
  return true;
}

Rv32RunStats LazyRv32Simulator::run(uint64_t max_instructions, const Observer& observer) {
  const detail::ScopedObserver scope(observer_, observer);
  Rv32RunStats stats;
  while (stats.instructions < max_instructions) {
    if (!step()) {
      stats.halted = true;
      break;
    }
    ++stats.instructions;
  }
  return stats;
}

}  // namespace art9::rv32
