// Assembled RV32 program image (Harvard layout mirroring the ART-9 setup:
// instruction store + byte-addressable data RAM).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "rv32/rv32_isa.hpp"

namespace art9::rv32 {

struct Rv32DataWord {
  uint32_t address;  // byte address, 4-aligned
  uint32_t value;

  friend bool operator==(const Rv32DataWord&, const Rv32DataWord&) = default;
};

struct Rv32Program {
  std::vector<Rv32Instruction> code;
  std::vector<uint32_t> image;         // encoded words, parallel to `code`
  std::vector<Rv32DataWord> data;
  std::map<std::string, int64_t> symbols;
  uint32_t entry = 0;                  // byte address of the first instruction

  /// Number of binary memory cells (bits) the program occupies — the
  /// RV-32I bar of Fig. 5 (32 bits per instruction + 32 per initialised
  /// data word).
  [[nodiscard]] int64_t memory_cells() const {
    return static_cast<int64_t>(code.size() + data.size()) * 32;
  }

  [[nodiscard]] int64_t code_bits() const { return static_cast<int64_t>(code.size()) * 32; }

  [[nodiscard]] int64_t symbol(const std::string& name) const { return symbols.at(name); }
};

}  // namespace art9::rv32
