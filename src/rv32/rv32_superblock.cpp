#include "rv32/rv32_superblock.hpp"

#include <utility>

#include "rv32/rv32_exec.hpp"

namespace art9::rv32 {

namespace {

[[nodiscard]] constexpr bool in_kind_range(Rv32Dispatch k, Rv32Dispatch lo,
                                           Rv32Dispatch hi) noexcept {
  return static_cast<uint8_t>(k) >= static_cast<uint8_t>(lo) &&
         static_cast<uint8_t>(k) <= static_cast<uint8_t>(hi);
}

/// Kinds that end a straight-line scan: control flow, the halt
/// convention, and the trap row.
[[nodiscard]] constexpr bool is_control(Rv32Dispatch k) noexcept {
  return k == Rv32Dispatch::kJal || k == Rv32Dispatch::kJalr ||
         in_kind_range(k, Rv32Dispatch::kBeq, Rv32Dispatch::kBgeu) ||
         k == Rv32Dispatch::kEcall || k == Rv32Dispatch::kEbreak || k == Rv32Dispatch::kTrap;
}

[[nodiscard]] constexpr bool is_slt(Rv32Dispatch k) noexcept {
  return k == Rv32Dispatch::kSlt || k == Rv32Dispatch::kSltu || k == Rv32Dispatch::kSlti ||
         k == Rv32Dispatch::kSltiu;
}

[[nodiscard]] constexpr bool is_load(Rv32Dispatch k) noexcept {
  return in_kind_range(k, Rv32Dispatch::kLb, Rv32Dispatch::kLhu);
}

/// A load's fusable consumer: a non-memory, non-control, non-trapping op
/// reading the loaded register — only the pair's head can fault, so a
/// mid-pair trap still reports the load's own PC.
[[nodiscard]] constexpr bool is_fusable_consumer(const Rv32DecodedOp& q, uint8_t rd) noexcept {
  if (in_kind_range(q.kind, Rv32Dispatch::kAddi, Rv32Dispatch::kSrai)) return q.rs1 == rd;
  if (in_kind_range(q.kind, Rv32Dispatch::kAdd, Rv32Dispatch::kAnd) ||
      in_kind_range(q.kind, Rv32Dispatch::kMul, Rv32Dispatch::kRemu)) {
    return q.rs1 == rd || q.rs2 == rd;
  }
  return false;
}

[[nodiscard]] std::shared_ptr<const Rv32SuperblockPlan> build_plan(const Rv32DecodedImage& image) {
  const Rv32DecodedOp* const rows = image.rows_data();
  const auto n_code = static_cast<uint32_t>(image.rows());
  const uint32_t entry = image.entry();
  auto pc_of = [entry](uint32_t row) { return entry + row * 4; };

  auto plan = std::make_shared<Rv32SuperblockPlan>();
  plan->blocks.resize(n_code + 1);
  plan->ops.reserve(n_code);

  for (uint32_t r0 = 0; r0 < n_code; ++r0) {
    Rv32Superblock& blk = plan->blocks[r0];
    blk.first_op = static_cast<uint32_t>(plan->ops.size());
    uint32_t consumed = 0;  // source instructions in the body so far
    uint32_t row = r0;
    for (;;) {
      const Rv32DecodedOp& p = rows[row];
      if (is_control(p.kind)) {
        blk.term = Rv32SbTerm::kOp;
        blk.term_row = row;
        blk.term_pc_offset = consumed * 4;
        const bool retires_term = p.kind == Rv32Dispatch::kJal || p.kind == Rv32Dispatch::kJalr ||
                                  in_kind_range(p.kind, Rv32Dispatch::kBeq, Rv32Dispatch::kBgeu);
        blk.retires = consumed + (retires_term ? 1 : 0);
        // Whether the terminator retires or not, *attempting* it needs one
        // budget slot beyond the body (a zero-retire ECALL/EBREAK/trap at
        // an exactly-exhausted budget must report max-cycles, not halt).
        blk.min_budget = consumed + 1;
        break;
      }
      if (consumed >= Rv32SuperblockPlan::kMaxBlockInstructions) {
        blk.term = Rv32SbTerm::kFallthrough;
        blk.term_pc_offset = consumed * 4;
        blk.next_row = row;
        blk.retires = consumed;
        blk.min_budget = consumed;
        break;
      }

      const Rv32DecodedOp& q = rows[p.next_row];

      // SLT(I)(U) + BEQ/BNE of the flag against x0: one fused terminator.
      if (is_slt(p.kind) && p.rd != 0 &&
          (q.kind == Rv32Dispatch::kBeq || q.kind == Rv32Dispatch::kBne) &&
          ((q.rs1 == p.rd && q.rs2 == 0) || (q.rs2 == p.rd && q.rs1 == 0))) {
        blk.term = Rv32SbTerm::kCmpBranch;
        blk.term_row = p.next_row;
        blk.term_pc_offset = consumed * 4;
        blk.cmp_op = p;
        blk.branch_on_ne = q.kind == Rv32Dispatch::kBne;
        blk.retires = consumed + 2;
        blk.min_budget = consumed + 2;
        ++plan->fused_cmp_branch;
        break;
      }

      if (consumed + 2 <= Rv32SuperblockPlan::kMaxBlockInstructions) {
        // LUI/AUIPC + ADDI over the same register: the constant is fully
        // static (imm_u already carries the complete LUI/AUIPC result, and
        // uint32 wraparound makes the fold exact) — one kLui superop.
        if ((p.kind == Rv32Dispatch::kLui || p.kind == Rv32Dispatch::kAuipc) &&
            q.kind == Rv32Dispatch::kAddi && q.rs1 == p.rd && q.rd == p.rd) {
          Rv32SuperOp s;
          s.op = p;
          s.op.kind = Rv32Dispatch::kLui;  // wr(imm_u): complete result
          s.op.imm_u = p.imm_u + q.imm_u;
          s.pc = pc_of(row);
          plan->ops.push_back(s);
          consumed += 2;
          row = q.next_row;
          ++plan->fused_const;
          continue;
        }
        // Load + its dependent ALU consumer: one fused pair dispatch.
        if (is_load(p.kind) && p.rd != 0 && is_fusable_consumer(q, p.rd)) {
          plan->ops.push_back(Rv32SuperOp{p, pc_of(row), 1});
          plan->ops.push_back(Rv32SuperOp{q, pc_of(p.next_row), 0});
          consumed += 2;
          row = q.next_row;
          ++plan->fused_load_op;
          continue;
        }
      }

      // Plain body op.
      plan->ops.push_back(Rv32SuperOp{p, pc_of(row), 0});
      consumed += 1;
      row = p.next_row;
    }
    blk.op_count = static_cast<uint32_t>(plan->ops.size()) - blk.first_op;
  }

  // The trap row's block: empty body, the trap row itself as terminator.
  // Its PC is dynamic (whatever out-of-program target got here), hence
  // term_pc_offset 0 over the carried PC.
  Rv32Superblock& trap_blk = plan->blocks[n_code];
  trap_blk.first_op = static_cast<uint32_t>(plan->ops.size());
  trap_blk.term = Rv32SbTerm::kOp;
  trap_blk.term_row = image.trap_row();
  trap_blk.min_budget = 1;

  plan->ops.shrink_to_fit();
  return plan;
}

}  // namespace

const Rv32SuperblockPlan& Rv32DecodedImage::superblocks() const {
  std::call_once(superblocks_once_, [this] { superblocks_ = build_plan(*this); });
  return *superblocks_;
}

// ---------------------------------------------------------------------------
// Rv32SuperblockSimulator.
// ---------------------------------------------------------------------------

Rv32SuperblockSimulator::Rv32SuperblockSimulator(const Rv32Program& program, std::size_t ram_bytes)
    : Rv32SuperblockSimulator(decode(program), ram_bytes) {}

Rv32SuperblockSimulator::Rv32SuperblockSimulator(std::shared_ptr<const Rv32DecodedImage> image,
                                                 std::size_t ram_bytes)
    : image_(std::move(image)), ram_(ram_bytes, 0) {
  if (!image_) throw Rv32SimError("Rv32SuperblockSimulator: null image");
  rows_ = image_->rows_data();
  plan_ = &image_->superblocks();
  pc_ = image_->entry();
  row_ = image_->row_of(pc_);
  for (const Rv32DataWord& d : image_->program().data) {
    detail::ram_store(ram_, d.address, d.value, 4, "store");
  }
}

// The per-instruction slow path: observed runs and partial-block tails,
// kept in lock-step with Rv32Simulator::step() (the differential suite
// runs both).
bool Rv32SuperblockSimulator::step() {
  const uint32_t row = row_;
  const Rv32DecodedOp& op = rows_[row];
  const uint32_t pc = pc_;
  uint32_t next_pc = op.next_pc;
  uint32_t next_row = op.next_row;
  bool taken = false;

  detail::HostDatapath dp{regs_, ram_};
  if (!detail::execute_rv32(dp, *image_, op, pc, next_pc, next_row, taken)) {
    if (observer_) observer_(Rv32Retired{image_->instruction(row), pc, false});
    return false;  // halt convention
  }

  pc_ = next_pc;
  row_ = next_row;
  if (observer_) observer_(Rv32Retired{image_->instruction(row), pc, taken});
  return true;
}

Rv32RunStats Rv32SuperblockSimulator::run(uint64_t max_instructions, const Observer& observer) {
  const detail::ScopedObserver scope(observer_, observer);
  Rv32RunStats stats;
  if (observer_) {
    // Instrumented loop: one observer call per retire, via step() — the
    // retire stream is bit-identical to the reference model's.
    while (stats.instructions < max_instructions) {
      if (!step()) {
        stats.halted = true;
        break;
      }
      ++stats.instructions;
    }
    return stats;
  }

  // Block-chained hot loop: position lives in registers, the budget is
  // checked per block, retires are committed per block.  pc_/row_ are
  // committed only at exit — including the trap path, where cur_pc names
  // the faulting instruction exactly like the reference model.
  const Rv32Superblock* const blocks = plan_->blocks.data();
  const Rv32SuperOp* const ops = plan_->ops.data();
  const Rv32DecodedOp* const rows = rows_;
  uint32_t pc = pc_;
  uint32_t row = row_;
  uint32_t cur_pc = pc;
  detail::HostDatapath dp{regs_, ram_};
  try {
    while (stats.instructions < max_instructions) {
      const Rv32Superblock& blk = blocks[row];
      // Entry clamp: bail to the exact per-instruction tail when the
      // whole block (terminator attempt included) no longer fits.
      if (max_instructions - stats.instructions < blk.min_budget) break;

      const Rv32SuperOp* op = ops + blk.first_op;
      const Rv32SuperOp* const end = op + blk.op_count;
      uint32_t dnp = 0;  // body ops never redirect control flow
      uint32_t dnr = 0;
      bool dt = false;
      for (; op != end; ++op) {
        cur_pc = op->pc;
        detail::execute_rv32(dp, *image_, op->op, op->pc, dnp, dnr, dt);
        if (op->pair) {
          ++op;  // fused load+op tail: same dispatch iteration
          cur_pc = op->pc;
          detail::execute_rv32(dp, *image_, op->op, op->pc, dnp, dnr, dt);
        }
      }

      switch (blk.term) {
        case Rv32SbTerm::kFallthrough:
          stats.instructions += blk.retires;
          pc += blk.term_pc_offset;
          row = blk.next_row;
          break;
        case Rv32SbTerm::kCmpBranch: {
          const Rv32DecodedOp& c = blk.cmp_op;
          const uint32_t a = regs_[c.rs1];
          uint32_t v = 0;
          switch (c.kind) {
            case Rv32Dispatch::kSlt:
              v = static_cast<int32_t>(a) < static_cast<int32_t>(regs_[c.rs2]) ? 1u : 0u;
              break;
            case Rv32Dispatch::kSltu:
              v = a < regs_[c.rs2] ? 1u : 0u;
              break;
            case Rv32Dispatch::kSlti:
              v = static_cast<int32_t>(a) < static_cast<int32_t>(c.imm_u) ? 1u : 0u;
              break;
            default:  // kSltiu — the only other fused comparison kind
              v = a < c.imm_u ? 1u : 0u;
              break;
          }
          regs_[c.rd] = v;  // the builder guarantees c.rd != x0
          const Rv32DecodedOp& b = rows[blk.term_row];
          stats.instructions += blk.retires;
          if (blk.branch_on_ne ? v != 0 : v == 0) {
            pc = b.taken_pc;
            row = b.taken_row;
          } else {
            pc = b.next_pc;
            row = b.next_row;
          }
          break;
        }
        case Rv32SbTerm::kOp: {
          const Rv32DecodedOp& top = rows[blk.term_row];
          const uint32_t tpc = pc + blk.term_pc_offset;
          cur_pc = tpc;
          uint32_t npc = top.next_pc;
          uint32_t nrow = top.next_row;
          bool tk = false;
          if (!detail::execute_rv32(dp, *image_, top, tpc, npc, nrow, tk)) {
            // Halting ECALL/EBREAK: never counted, pc rests on it.
            stats.instructions += blk.retires;
            stats.halted = true;
            pc = tpc;
            row = blk.term_row;
            break;
          }
          stats.instructions += blk.retires;
          pc = npc;
          row = nrow;
          break;
        }
      }
      if (stats.halted) break;
    }
  } catch (...) {
    pc_ = cur_pc;
    row_ = image_->row_of(cur_pc);
    throw;
  }
  pc_ = pc;
  row_ = row;

  // Partial-block tail, stepped exactly (fused intermediate states
  // included) — what keeps tiny budgets bit-identical to the reference.
  while (!stats.halted && stats.instructions < max_instructions) {
    if (!step()) {
      stats.halted = true;
      break;
    }
    ++stats.instructions;
  }
  return stats;
}

}  // namespace art9::rv32
