// Eager full-program pre-decode for the RV32 baseline simulator — the
// binary-side mirror of sim::DecodedImage (the dispatch-table design the
// ART-9 side converged on in PR 1, and the one fast pre-decoded binary
// emulators such as libriscv use).
//
// The seed rv32 loop fetch-decoded lazily: every step paid a range check,
// a modulo, and a division just to find the instruction, and recomputed
// pc+4 / pc+imm / link values that never change.  An Rv32DecodedImage
// decodes the whole program once, up front, into one row per instruction
// word:
//
//  * a dense Rv32Dispatch kind (mirroring Rv32Op, plus kTrap) replaces
//    the per-fetch range check — out-of-program control flow lands on a
//    shared trap row and faults like any other dispatch target;
//  * next_pc/next_row and branch/JAL taken_pc/taken_row are precomputed,
//    so sequential flow and static control flow never divide by 4 again;
//  * the JAL/JALR link value (pc + 4), the LUI result (imm << 12), the
//    complete AUIPC result (pc + (imm << 12)) and the shift amounts of
//    SLLI/SRLI/SRAI are folded into one per-row operand word;
//  * malformed encodings (register or immediate fields outside their
//    format's range) are rejected at load time with Rv32SimError instead
//    of surfacing mid-run.
//
// An Rv32DecodedImage is immutable after construction and carries a copy
// of its source Rv32Program, so any number of simulator instances
// (including sim::SimulationService worker threads) can share one image
// concurrently.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "rv32/rv32_program.hpp"

namespace art9::rv32 {

struct Rv32SuperblockPlan;  // rv32/rv32_superblock.hpp — the block translation tier

/// Raised on rv32 architectural errors (fetch outside the program,
/// out-of-range memory traffic, malformed encodings at load).
class Rv32SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Dense handler index for the pre-decoded rv32 dispatch switch.  The
/// first kNumRv32Ops values mirror Rv32Op exactly (same numeric order);
/// kTrap makes "fetch outside the program" an ordinary dispatch target.
enum class Rv32Dispatch : uint8_t {
  kLui,
  kAuipc,
  kJal,
  kJalr,
  kBeq,
  kBne,
  kBlt,
  kBge,
  kBltu,
  kBgeu,
  kLb,
  kLh,
  kLw,
  kLbu,
  kLhu,
  kSb,
  kSh,
  kSw,
  kAddi,
  kSlti,
  kSltiu,
  kXori,
  kOri,
  kAndi,
  kSlli,
  kSrli,
  kSrai,
  kAdd,
  kSub,
  kSll,
  kSlt,
  kSltu,
  kXor,
  kSrl,
  kSra,
  kOr,
  kAnd,
  kFence,
  kEcall,
  kEbreak,
  kMul,
  kMulh,
  kMulhsu,
  kMulhu,
  kDiv,
  kDivu,
  kRem,
  kRemu,
  kTrap,  // fetch outside the program — faults on dispatch
};
static_assert(static_cast<int>(Rv32Dispatch::kTrap) == kNumRv32Ops,
              "Rv32Dispatch must mirror Rv32Op with kTrap appended");

/// One pre-decoded rv32 instruction row: 28 bytes, so a hot loop holds
/// two-plus rows per cache line (the source Rv32Instruction stays on the
/// image's cold side — observers and timing models fetch it by row).
struct Rv32DecodedOp {
  Rv32Dispatch kind = Rv32Dispatch::kTrap;
  uint8_t rd = 0;
  uint8_t rs1 = 0;
  uint8_t rs2 = 0;
  // Kind-dependent precomputed operand:
  //   kLui          — the complete result (imm << 12);
  //   kAuipc        — the complete result (pc + (imm << 12));
  //   kSlli/kSrli/kSrai — the shift amount (imm & 31);
  //   all others    — the sign-extended immediate as uint32_t.
  uint32_t imm_u = 0;
  uint32_t next_pc = 0;    // pc + 4
  uint32_t next_row = 0;   // row of next_pc (the trap row when outside)
  uint32_t taken_pc = 0;   // branch/JAL target (pc + imm)
  uint32_t taken_row = 0;  // row of taken_pc (the trap row when outside)
  uint32_t link = 0;       // pc + 4, the JAL/JALR rd value
};
static_assert(sizeof(Rv32DecodedOp) == 28, "Rv32DecodedOp must stay cache-lean");

class Rv32DecodedImage {
 public:
  /// Decodes (and validates) the whole program.  Throws Rv32SimError if
  /// any instruction carries a field outside its format's encodable
  /// range — at load time, not on first execution.
  explicit Rv32DecodedImage(const Rv32Program& program);

  /// Row access by dense row index (0 .. rows()-1, plus the trap row).
  [[nodiscard]] const Rv32DecodedOp& row(std::size_t r) const noexcept { return rows_[r]; }

  /// Raw row-table base pointer for the simulators' hot loops (rows() + 1
  /// entries, the trap row last).
  [[nodiscard]] const Rv32DecodedOp* rows_data() const noexcept { return rows_.data(); }

  /// The source instruction of a code row (observer streams, timing
  /// models) — cold-side data, not part of the dispatch row.  Only code
  /// rows carry one: the trap row (which row_of() can hand out) throws
  /// std::out_of_range here.
  [[nodiscard]] const Rv32Instruction& instruction(std::size_t r) const {
    return program_.code.at(r);
  }

  /// Number of instruction rows (the trap row sits at index rows()).
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size() - 1; }

  /// The shared trap row index: every out-of-program or misaligned
  /// control-flow target resolves here and faults on dispatch.
  [[nodiscard]] uint32_t trap_row() const noexcept {
    return static_cast<uint32_t>(rows_.size() - 1);
  }

  /// Row index of a byte PC: dense for in-program 4-aligned addresses,
  /// the trap row for everything else (JALR and data-dependent targets).
  [[nodiscard]] uint32_t row_of(uint32_t pc) const noexcept {
    const uint32_t off = pc - entry_;  // wraps for pc < entry -> huge -> trap
    return off % 4 == 0 && off / 4 < rows() ? off / 4 : trap_row();
  }

  /// The source program (entry point, data image, symbols) — what a
  /// simulator needs to reset architectural state.
  [[nodiscard]] const Rv32Program& program() const noexcept { return program_; }

  [[nodiscard]] uint32_t entry() const noexcept { return entry_; }

  /// The superblock translation (straight-line blocks, fused macro-ops,
  /// per-block retire deltas) for the rv32 superblock backend.  Built
  /// lazily on first use (thread-safe); defined in rv32_superblock.cpp.
  [[nodiscard]] const Rv32SuperblockPlan& superblocks() const;

 private:
  Rv32Program program_;
  uint32_t entry_;
  std::vector<Rv32DecodedOp> rows_;  // code rows + one trailing trap row
  mutable std::once_flag superblocks_once_;
  // shared_ptr: Rv32SuperblockPlan stays an incomplete type in this header.
  mutable std::shared_ptr<const Rv32SuperblockPlan> superblocks_;
};

/// Decodes `program` into a shareable image.
[[nodiscard]] std::shared_ptr<const Rv32DecodedImage> decode(const Rv32Program& program);

}  // namespace art9::rv32
