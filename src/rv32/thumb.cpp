#include "rv32/thumb.hpp"

#include <cctype>
#include <optional>
#include <vector>

namespace art9::rv32 {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool is_ident(std::string_view tok) {
  tok = trim(tok);
  if (tok.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(tok.front())) && tok.front() != '_') return false;
  for (char c : tok) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

struct Stmt {
  int line = 0;
  int64_t address = 0;  // halfword address (code) or word index (data)
  bool in_data = false;
  std::string head;
  std::vector<std::string> operands;
};

/// Splits on commas outside brackets/braces.
std::vector<std::string_view> split_operands(std::string_view s) {
  std::vector<std::string_view> out;
  s = trim(s);
  if (s.empty()) return out;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '[' || s[i] == '{') ++depth;
    if (s[i] == ']' || s[i] == '}') --depth;
    if (s[i] == ',' && depth == 0) {
      out.push_back(trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  out.push_back(trim(s.substr(start)));
  return out;
}

class ThumbAssembler {
 public:
  ThumbProgram run(std::string_view source) {
    parse(source);
    layout();
    emit();
    return std::move(program_);
  }

 private:
  void parse(std::string_view source) {
    int line_no = 0;
    std::size_t pos = 0;
    while (pos <= source.size()) {
      std::size_t eol = source.find('\n', pos);
      std::string_view line =
          source.substr(pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
      pos = eol == std::string_view::npos ? source.size() + 1 : eol + 1;
      ++line_no;
      for (std::size_t i = 0; i < line.size(); ++i) {
        if (line[i] == ';' || line[i] == '@' || line[i] == '#' ) {
          // '#' only starts a comment at the beginning (it prefixes
          // immediates elsewhere).
          if (line[i] == '#' && i != 0) continue;
          line = line.substr(0, i);
          break;
        }
      }
      line = trim(line);
      while (!line.empty()) {
        std::size_t colon = line.find(':');
        if (colon == std::string_view::npos) break;
        std::string_view label = trim(line.substr(0, colon));
        if (!is_ident(label)) throw ThumbAsmError(line_no, "bad label");
        pending_.emplace_back(line_no, std::string(label));
        line = trim(line.substr(colon + 1));
      }
      if (line.empty()) continue;
      Stmt st;
      st.line = line_no;
      std::size_t sp = 0;
      while (sp < line.size() && !std::isspace(static_cast<unsigned char>(line[sp]))) ++sp;
      st.head = lower(line.substr(0, sp));
      for (std::string_view rest = trim(line.substr(sp)); std::string_view tok : split_operands(rest)) {
        st.operands.emplace_back(tok);
      }
      for (auto& p : pending_) labels_for_stmt_[stmts_.size()].push_back(p);
      pending_.clear();
      stmts_.push_back(std::move(st));
    }
    if (!pending_.empty()) {
      Stmt st;
      st.line = pending_.front().first;
      st.head = ".end_labels";
      for (auto& p : pending_) labels_for_stmt_[stmts_.size()].push_back(p);
      pending_.clear();
      stmts_.push_back(std::move(st));
    }
  }

  static int64_t size_halfwords(const Stmt& st) {
    if (st.head.empty() || st.head[0] == '.') return 0;
    return st.head == "bl" ? 2 : 1;
  }

  void layout() {
    int64_t code_hw = 0;   // halfword index
    int64_t data_words = 0;
    bool in_data = false;
    for (std::size_t i = 0; i < stmts_.size(); ++i) {
      Stmt& st = stmts_[i];
      if (st.head == ".data") {
        in_data = true;
        continue;
      }
      if (st.head == ".text") {
        in_data = false;
        continue;
      }
      st.in_data = in_data;
      auto it = labels_for_stmt_.find(i);
      if (it != labels_for_stmt_.end()) {
        for (auto& [line, name] : it->second) {
          if (program_.symbols.contains(name)) throw ThumbAsmError(line, "duplicate symbol");
          // Code labels are byte addresses (like real Thumb); data labels
          // are word indices.
          program_.symbols[name] = in_data ? data_words : code_hw * 2;
        }
      }
      if (in_data) {
        st.address = data_words;
        if (st.head == ".word") data_words += static_cast<int64_t>(st.operands.size());
        if (st.head == ".zero") data_words += std::stoll(st.operands.at(0));
      } else {
        st.address = code_hw * 2;  // byte address
        code_hw += size_halfwords(st);
      }
    }
  }

  int reg(const Stmt& st, std::string_view tok) const {
    std::string t = lower(trim(tok));
    if (t == "sp") return 13;
    if (t == "lr") return 14;
    if (t == "pc") return 15;
    if (t.size() >= 2 && t[0] == 'r') {
      const int n = std::stoi(t.substr(1));
      if (n >= 0 && n <= 15) return n;
    }
    throw ThumbAsmError(st.line, "bad register '" + std::string(tok) + "'");
  }

  int low_reg(const Stmt& st, std::string_view tok) const {
    const int r = reg(st, tok);
    if (r > 7) throw ThumbAsmError(st.line, "register must be r0..r7");
    return r;
  }

  int64_t imm(const Stmt& st, std::string_view tok) const {
    std::string t(trim(tok));
    if (!t.empty() && t[0] == '#') t = t.substr(1);
    t = std::string(trim(t));
    if (t.empty()) throw ThumbAsmError(st.line, "empty immediate");
    if (is_ident(t)) {
      auto it = program_.symbols.find(t);
      if (it == program_.symbols.end()) throw ThumbAsmError(st.line, "undefined symbol " + t);
      return it->second;
    }
    try {
      return std::stoll(t, nullptr, 0);
    } catch (const std::exception&) {
      throw ThumbAsmError(st.line, "bad immediate '" + std::string(tok) + "'");
    }
  }

  int64_t imm_range(const Stmt& st, std::string_view tok, int64_t lo, int64_t hi) const {
    const int64_t v = imm(st, tok);
    if (v < lo || v > hi) {
      throw ThumbAsmError(st.line, "immediate " + std::to_string(v) + " outside [" +
                                       std::to_string(lo) + "," + std::to_string(hi) + "]");
    }
    return v;
  }

  int64_t label_addr(const Stmt& st, std::string_view tok) const {
    std::string t(trim(tok));
    auto it = program_.symbols.find(t);
    if (it == program_.symbols.end()) throw ThumbAsmError(st.line, "undefined label " + t);
    return it->second;
  }

  void put(uint16_t hw) { program_.halfwords.push_back(hw); }

  /// [rn, #off] / [rn] / [rn, rm] memory operand.
  struct MemOp {
    int rn;
    std::optional<int> rm;
    int64_t offset = 0;
  };
  MemOp mem_operand(const Stmt& st, std::size_t first_index) const {
    // Operands were split on top-level commas; the bracketed part may span
    // one or two operand tokens: "[rn" + "#off]" or "[rn]" (brackets keep
    // commas inside one token thanks to split_operands' depth tracking).
    std::string text;
    for (std::size_t i = first_index; i < st.operands.size(); ++i) {
      if (i > first_index) text += ',';
      text += st.operands[i];
    }
    std::string_view s = trim(text);
    if (s.size() < 2 || s.front() != '[' || s.back() != ']') {
      throw ThumbAsmError(st.line, "expected [reg, #off] operand");
    }
    s = s.substr(1, s.size() - 2);
    MemOp out{0, std::nullopt, 0};
    auto parts = split_operands(s);
    out.rn = reg(st, parts.at(0));
    if (parts.size() == 2) {
      std::string_view p = trim(parts[1]);
      if (!p.empty() && (p[0] == '#' || std::isdigit(static_cast<unsigned char>(p[0])) || p[0] == '-')) {
        out.offset = imm(st, p);
      } else {
        out.rm = reg(st, p);
      }
    } else if (parts.size() > 2) {
      throw ThumbAsmError(st.line, "malformed memory operand");
    }
    return out;
  }

  uint16_t reglist(const Stmt& st, std::string_view tok, bool allow_lr, bool allow_pc) const {
    std::string_view s = trim(tok);
    if (s.size() < 2 || s.front() != '{' || s.back() != '}') {
      throw ThumbAsmError(st.line, "expected {reglist}");
    }
    uint16_t bits = 0;
    for (std::string_view part : split_operands(s.substr(1, s.size() - 2))) {
      const int r = reg(st, part);
      if (r <= 7) {
        bits |= static_cast<uint16_t>(1u << r);
      } else if (r == 14 && allow_lr) {
        bits |= 1u << 8;
      } else if (r == 15 && allow_pc) {
        bits |= 1u << 8;
      } else {
        throw ThumbAsmError(st.line, "register not allowed in reglist");
      }
    }
    return bits;
  }

  void emit() {
    for (const Stmt& st : stmts_) {
      if (st.head.empty() || st.head == ".end_labels" || st.head == ".text" || st.head == ".data") {
        continue;
      }
      if (st.head == ".word") {
        for (const std::string& o : st.operands) {
          program_.data_words.push_back(static_cast<uint32_t>(imm(st, o)));
        }
        continue;
      }
      if (st.head == ".zero") {
        const int64_t n = imm(st, st.operands.at(0));
        for (int64_t k = 0; k < n; ++k) program_.data_words.push_back(0);
        continue;
      }
      if (st.head == ".equ") {
        program_.symbols[std::string(trim(st.operands.at(0)))] = imm(st, st.operands.at(1));
        continue;
      }
      if (st.head[0] == '.') throw ThumbAsmError(st.line, "unknown directive " + st.head);
      encode_instruction(st);
    }
  }

  void encode_instruction(const Stmt& st) {
    const std::string& h = st.head;
    auto u16 = [](uint32_t v) { return static_cast<uint16_t>(v); };

    if (h == "nop") {
      put(0xBF00);
      return;
    }
    if (h == "movs" && st.operands.size() == 2 && trim(st.operands[1]).front() == '#') {
      put(u16(0b00100u << 11 | static_cast<uint32_t>(low_reg(st, st.operands[0])) << 8 |
              static_cast<uint32_t>(imm_range(st, st.operands[1], 0, 255))));
      return;
    }
    if ((h == "movs" || h == "mov") && st.operands.size() == 2) {
      // MOVS Rd, Rm encoded as LSLS Rd, Rm, #0; MOV high-register form for
      // sp/lr copies.
      const int rd = reg(st, st.operands[0]);
      const int rm = reg(st, st.operands[1]);
      if (rd <= 7 && rm <= 7 && h == "movs") {
        put(u16(static_cast<uint32_t>(rm) << 3 | static_cast<uint32_t>(rd)));
      } else {
        put(u16(0b01000110u << 8 | (static_cast<uint32_t>(rd >> 3) & 1u) << 7 |
                static_cast<uint32_t>(rm) << 3 | (static_cast<uint32_t>(rd) & 7u)));
      }
      return;
    }
    if (h == "adds" || h == "subs") {
      const bool sub = h == "subs";
      if (st.operands.size() == 3 && trim(st.operands[2]).front() == '#') {
        put(u16((sub ? 0b0001111u : 0b0001110u) << 9 |
                static_cast<uint32_t>(imm_range(st, st.operands[2], 0, 7)) << 6 |
                static_cast<uint32_t>(low_reg(st, st.operands[1])) << 3 |
                static_cast<uint32_t>(low_reg(st, st.operands[0]))));
      } else if (st.operands.size() == 3) {
        put(u16((sub ? 0b0001101u : 0b0001100u) << 9 |
                static_cast<uint32_t>(low_reg(st, st.operands[2])) << 6 |
                static_cast<uint32_t>(low_reg(st, st.operands[1])) << 3 |
                static_cast<uint32_t>(low_reg(st, st.operands[0]))));
      } else {
        put(u16((sub ? 0b00111u : 0b00110u) << 11 |
                static_cast<uint32_t>(low_reg(st, st.operands[0])) << 8 |
                static_cast<uint32_t>(imm_range(st, st.operands[1], 0, 255))));
      }
      return;
    }
    if (h == "cmp") {
      if (trim(st.operands[1]).front() == '#') {
        put(u16(0b00101u << 11 | static_cast<uint32_t>(low_reg(st, st.operands[0])) << 8 |
                static_cast<uint32_t>(imm_range(st, st.operands[1], 0, 255))));
      } else {
        put(u16(0b0100001010u << 6 | static_cast<uint32_t>(low_reg(st, st.operands[1])) << 3 |
                static_cast<uint32_t>(low_reg(st, st.operands[0]))));
      }
      return;
    }
    static const std::map<std::string, uint32_t> kDp = {
        {"ands", 0b0000}, {"eors", 0b0001}, {"adcs", 0b0101}, {"sbcs", 0b0110},
        {"rors", 0b0111}, {"tst", 0b1000},  {"negs", 0b1001}, {"cmn", 0b1011},
        {"orrs", 0b1100}, {"muls", 0b1101}, {"bics", 0b1110}, {"mvns", 0b1111},
    };
    if (auto it = kDp.find(h); it != kDp.end()) {
      put(u16(0b010000u << 10 | it->second << 6 |
              static_cast<uint32_t>(low_reg(st, st.operands[1])) << 3 |
              static_cast<uint32_t>(low_reg(st, st.operands[0]))));
      return;
    }
    if (h == "lsls" || h == "lsrs" || h == "asrs") {
      if (st.operands.size() == 3) {
        const uint32_t op = h == "lsls" ? 0b000u : (h == "lsrs" ? 0b001u : 0b010u);
        put(u16(op << 11 | static_cast<uint32_t>(imm_range(st, st.operands[2], 0, 31)) << 6 |
                static_cast<uint32_t>(low_reg(st, st.operands[1])) << 3 |
                static_cast<uint32_t>(low_reg(st, st.operands[0]))));
      } else {
        const uint32_t op = h == "lsls" ? 0b0010u : (h == "lsrs" ? 0b0011u : 0b0100u);
        put(u16(0b010000u << 10 | op << 6 |
                static_cast<uint32_t>(low_reg(st, st.operands[1])) << 3 |
                static_cast<uint32_t>(low_reg(st, st.operands[0]))));
      }
      return;
    }
    if (h == "ldr" || h == "str" || h == "ldrb" || h == "strb") {
      const int rt = low_reg(st, st.operands.at(0));
      const MemOp m = mem_operand(st, 1);
      const bool byte = h.back() == 'b';
      const bool load = h[0] == 'l';
      if (m.rm) {
        // register offset: 0101 LB0 Rm Rn Rt (load/byte select bits)
        if (*m.rm > 7 || m.rn > 7) throw ThumbAsmError(st.line, "registers must be r0..r7");
        uint32_t op = load ? (byte ? 0b0101110u : 0b0101100u) : (byte ? 0b0101010u : 0b0101000u);
        put(u16(op << 9 | static_cast<uint32_t>(*m.rm) << 6 |
                static_cast<uint32_t>(m.rn) << 3 | static_cast<uint32_t>(rt)));
      } else if (m.rn == 13) {
        if (byte) throw ThumbAsmError(st.line, "no SP-relative byte access in Thumb-1");
        const int64_t off = m.offset;
        if (off % 4 != 0 || off < 0 || off > 1020) throw ThumbAsmError(st.line, "bad SP offset");
        put(u16((load ? 0b10011u : 0b10010u) << 11 | static_cast<uint32_t>(rt) << 8 |
                static_cast<uint32_t>(off / 4)));
      } else {
        const int rn = m.rn;
        if (rn > 7) throw ThumbAsmError(st.line, "base must be r0..r7 or sp");
        if (byte) {
          if (m.offset < 0 || m.offset > 31) throw ThumbAsmError(st.line, "bad byte offset");
          put(u16((load ? 0b01111u : 0b01110u) << 11 |
                  static_cast<uint32_t>(m.offset) << 6 | static_cast<uint32_t>(rn) << 3 |
                  static_cast<uint32_t>(rt)));
        } else {
          if (m.offset % 4 != 0 || m.offset < 0 || m.offset > 124) {
            throw ThumbAsmError(st.line, "bad word offset");
          }
          put(u16((load ? 0b01101u : 0b01100u) << 11 |
                  static_cast<uint32_t>(m.offset / 4) << 6 | static_cast<uint32_t>(rn) << 3 |
                  static_cast<uint32_t>(rt)));
        }
      }
      return;
    }
    static const std::map<std::string, uint32_t> kCond = {
        {"beq", 0b0000}, {"bne", 0b0001}, {"bhs", 0b0010}, {"blo", 0b0011},
        {"bmi", 0b0100}, {"bpl", 0b0101}, {"bvs", 0b0110}, {"bvc", 0b0111},
        {"bhi", 0b1000}, {"bls", 0b1001}, {"bge", 0b1010}, {"blt", 0b1011},
        {"bgt", 0b1100}, {"ble", 0b1101},
    };
    if (auto it = kCond.find(h); it != kCond.end()) {
      const int64_t target = label_addr(st, st.operands.at(0));
      const int64_t off = target - (st.address + 4);  // PC reads as addr+4
      if (off % 2 != 0 || off < -256 || off > 254) throw ThumbAsmError(st.line, "bcond out of range");
      put(u16(0b1101u << 12 | it->second << 8 | (static_cast<uint32_t>(off >> 1) & 0xffu)));
      return;
    }
    if (h == "b") {
      const int64_t target = label_addr(st, st.operands.at(0));
      const int64_t off = target - (st.address + 4);
      if (off % 2 != 0 || off < -2048 || off > 2046) throw ThumbAsmError(st.line, "b out of range");
      put(u16(0b11100u << 11 | (static_cast<uint32_t>(off >> 1) & 0x7ffu)));
      return;
    }
    if (h == "bl") {
      const int64_t target = label_addr(st, st.operands.at(0));
      const int64_t off = target - (st.address + 4);
      if (off % 2 != 0 || off < -(1 << 22) || off >= (1 << 22)) {
        throw ThumbAsmError(st.line, "bl out of range");
      }
      const auto v = static_cast<uint32_t>(off >> 1);
      put(u16(0b11110u << 11 | ((v >> 11) & 0x7ffu)));
      put(u16(0b11111u << 11 | (v & 0x7ffu)));
      return;
    }
    if (h == "bx") {
      put(u16(0b010001110u << 7 | static_cast<uint32_t>(reg(st, st.operands.at(0))) << 3));
      return;
    }
    if (h == "push" || h == "pop") {
      const bool pop = h == "pop";
      const uint16_t list = reglist(st, st.operands.at(0), /*allow_lr=*/!pop, /*allow_pc=*/pop);
      put(u16((pop ? 0b1011110u : 0b1011010u) << 9 | list));
      return;
    }
    if (h == "add" && lower(trim(st.operands.at(0))) == "sp") {
      put(u16(0b101100000u << 7 |
              static_cast<uint32_t>(imm_range(st, st.operands.at(1), 0, 508) / 4)));
      return;
    }
    if (h == "sub" && lower(trim(st.operands.at(0))) == "sp") {
      put(u16(0b101100001u << 7 |
              static_cast<uint32_t>(imm_range(st, st.operands.at(1), 0, 508) / 4)));
      return;
    }
    throw ThumbAsmError(st.line, "unsupported thumb instruction '" + h + "'");
  }

  ThumbProgram program_;
  std::vector<Stmt> stmts_;
  std::vector<std::pair<int, std::string>> pending_;
  std::map<std::size_t, std::vector<std::pair<int, std::string>>> labels_for_stmt_;
};

}  // namespace

ThumbProgram assemble_thumb(std::string_view source) {
  ThumbAssembler assembler;
  return assembler.run(source);
}

}  // namespace art9::rv32
