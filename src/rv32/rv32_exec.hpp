// Shared execution core of the pre-decoded RV32 backends — the same
// design move as sim::detail::PipelineModel: one copy of the per-opcode
// control logic, templated over a Datapath that decides how architectural
// values are *stored* (host uint32_t arrays for the reference model,
// ternary plane pairs for PackedRv32Simulator).
//
// A Datapath provides:
//   uint32_t read(unsigned reg) const;           // register read, x0 reads 0
//   void write(unsigned reg, uint32_t value);    // register write, x0 guarded
//   uint32_t load(uint32_t address, uint32_t size);            // LE bytes
//   void store(uint32_t address, uint32_t value, uint32_t size);
//
// Both instantiations execute the identical u32-domain semantics, so the
// packed backend differs from the reference only in representation — the
// property the conformance suites lock.
#pragma once

#include <cstdint>
#include <string>

#include "rv32/rv32_decoded_image.hpp"

namespace art9::rv32::detail {

// The run loops keep their position in registers; forcing the dispatch
// switch inline (GCC/Clang) keeps it there instead of spilling the
// next_pc/next_row out-params through memory on every retire.
#if defined(__GNUC__)
#define ART9_RV32_FORCE_INLINE [[gnu::always_inline]] inline
#else
#define ART9_RV32_FORCE_INLINE inline
#endif

/// Executes one pre-decoded instruction on `dp`.  On entry `next_pc` /
/// `next_row` carry the sequential successor; control flow overwrites
/// them.  Returns false when ECALL/EBREAK retires (halt convention).
/// Throws Rv32SimError on the trap row (`pc` names the faulting address)
/// and on out-of-range memory traffic.
template <class Datapath>
ART9_RV32_FORCE_INLINE bool execute_rv32(Datapath& dp, const Rv32DecodedImage& image,
                                         const Rv32DecodedOp& op, uint32_t pc, uint32_t& next_pc,
                                         uint32_t& next_row, bool& taken) {
  auto rs1 = [&] { return dp.read(op.rs1); };
  auto rs2 = [&] { return dp.read(op.rs2); };
  auto s1 = [&] { return static_cast<int32_t>(rs1()); };
  auto s2 = [&] { return static_cast<int32_t>(rs2()); };
  auto wr = [&](uint32_t v) { dp.write(op.rd, v); };
  auto branch = [&](bool condition) {
    taken = condition;
    if (condition) {
      next_pc = op.taken_pc;
      next_row = op.taken_row;
    }
  };
  const uint32_t imm = op.imm_u;

  switch (op.kind) {
    case Rv32Dispatch::kTrap:
      throw Rv32SimError("rv32 fetch outside program at pc=" + std::to_string(pc));
    case Rv32Dispatch::kLui:
    case Rv32Dispatch::kAuipc:
      wr(imm);  // complete result precomputed at decode
      break;
    case Rv32Dispatch::kJal:
      wr(op.link);
      next_pc = op.taken_pc;
      next_row = op.taken_row;
      taken = true;
      break;
    case Rv32Dispatch::kJalr: {
      const uint32_t target = (rs1() + imm) & ~1u;
      wr(op.link);
      next_pc = target;
      next_row = image.row_of(target);
      taken = true;
      break;
    }
    case Rv32Dispatch::kBeq:
      branch(rs1() == rs2());
      break;
    case Rv32Dispatch::kBne:
      branch(rs1() != rs2());
      break;
    case Rv32Dispatch::kBlt:
      branch(s1() < s2());
      break;
    case Rv32Dispatch::kBge:
      branch(s1() >= s2());
      break;
    case Rv32Dispatch::kBltu:
      branch(rs1() < rs2());
      break;
    case Rv32Dispatch::kBgeu:
      branch(rs1() >= rs2());
      break;
    case Rv32Dispatch::kLb: {
      const uint32_t b = dp.load(rs1() + imm, 1);
      wr(static_cast<uint32_t>(static_cast<int32_t>(b << 24) >> 24));
      break;
    }
    case Rv32Dispatch::kLh: {
      const uint32_t h = dp.load(rs1() + imm, 2);
      wr(static_cast<uint32_t>(static_cast<int32_t>(h << 16) >> 16));
      break;
    }
    case Rv32Dispatch::kLw:
      wr(dp.load(rs1() + imm, 4));
      break;
    case Rv32Dispatch::kLbu:
      wr(dp.load(rs1() + imm, 1));
      break;
    case Rv32Dispatch::kLhu:
      wr(dp.load(rs1() + imm, 2));
      break;
    case Rv32Dispatch::kSb:
      dp.store(rs1() + imm, rs2(), 1);
      break;
    case Rv32Dispatch::kSh:
      dp.store(rs1() + imm, rs2(), 2);
      break;
    case Rv32Dispatch::kSw:
      dp.store(rs1() + imm, rs2(), 4);
      break;
    case Rv32Dispatch::kAddi:
      wr(rs1() + imm);
      break;
    case Rv32Dispatch::kSlti:
      wr(s1() < static_cast<int32_t>(imm) ? 1 : 0);
      break;
    case Rv32Dispatch::kSltiu:
      wr(rs1() < imm ? 1 : 0);
      break;
    case Rv32Dispatch::kXori:
      wr(rs1() ^ imm);
      break;
    case Rv32Dispatch::kOri:
      wr(rs1() | imm);
      break;
    case Rv32Dispatch::kAndi:
      wr(rs1() & imm);
      break;
    case Rv32Dispatch::kSlli:
      wr(rs1() << imm);  // shift amount pre-masked at decode
      break;
    case Rv32Dispatch::kSrli:
      wr(rs1() >> imm);
      break;
    case Rv32Dispatch::kSrai:
      wr(static_cast<uint32_t>(s1() >> imm));
      break;
    case Rv32Dispatch::kAdd:
      wr(rs1() + rs2());
      break;
    case Rv32Dispatch::kSub:
      wr(rs1() - rs2());
      break;
    case Rv32Dispatch::kSll:
      wr(rs1() << (rs2() & 31));
      break;
    case Rv32Dispatch::kSlt:
      wr(s1() < s2() ? 1 : 0);
      break;
    case Rv32Dispatch::kSltu:
      wr(rs1() < rs2() ? 1 : 0);
      break;
    case Rv32Dispatch::kXor:
      wr(rs1() ^ rs2());
      break;
    case Rv32Dispatch::kSrl:
      wr(rs1() >> (rs2() & 31));
      break;
    case Rv32Dispatch::kSra:
      wr(static_cast<uint32_t>(s1() >> (rs2() & 31)));
      break;
    case Rv32Dispatch::kOr:
      wr(rs1() | rs2());
      break;
    case Rv32Dispatch::kAnd:
      wr(rs1() & rs2());
      break;
    case Rv32Dispatch::kFence:
      break;
    case Rv32Dispatch::kEcall:
    case Rv32Dispatch::kEbreak:
      return false;  // halt convention — caller reports the event
    case Rv32Dispatch::kMul:
      wr(rs1() * rs2());
      break;
    case Rv32Dispatch::kMulh:
      wr(static_cast<uint32_t>((static_cast<int64_t>(s1()) * static_cast<int64_t>(s2())) >> 32));
      break;
    case Rv32Dispatch::kMulhsu:
      wr(static_cast<uint32_t>(
          (static_cast<int64_t>(s1()) * static_cast<int64_t>(static_cast<uint64_t>(rs2()))) >> 32));
      break;
    case Rv32Dispatch::kMulhu:
      wr(static_cast<uint32_t>((static_cast<uint64_t>(rs1()) * static_cast<uint64_t>(rs2())) >> 32));
      break;
    case Rv32Dispatch::kDiv:
      if (rs2() == 0) {
        wr(0xffffffffu);
      } else if (s1() == INT32_MIN && s2() == -1) {
        wr(static_cast<uint32_t>(INT32_MIN));
      } else {
        wr(static_cast<uint32_t>(s1() / s2()));
      }
      break;
    case Rv32Dispatch::kDivu:
      wr(rs2() == 0 ? 0xffffffffu : rs1() / rs2());
      break;
    case Rv32Dispatch::kRem:
      if (rs2() == 0) {
        wr(rs1());
      } else if (s1() == INT32_MIN && s2() == -1) {
        wr(0);
      } else {
        wr(static_cast<uint32_t>(s1() % s2()));
      }
      break;
    case Rv32Dispatch::kRemu:
      wr(rs2() == 0 ? rs1() : rs1() % rs2());
      break;
  }
  return true;
}

}  // namespace art9::rv32::detail
