// Superblock translation tier for the RV32 side — the binary mirror of
// sim/superblock.hpp.
//
// Rv32Simulator already dispatches pre-decoded rows, but still pays per
// *instruction*: one budget check, one retire increment and one
// next_pc/next_row commit per step.  The superblock tier translates the
// decoded image once more, lazily at first use, into straight-line
// superblocks (libriscv's bytecode-translation move):
//
//  * every row — the trap row included — gets a block describing the
//    straight-line run that starts there, so dynamic JALR targets and
//    snapshot restores can enter anywhere, body length capped at
//    kMaxBlockInstructions;
//  * macro-op fusion inside blocks: LUI+ADDI / AUIPC+ADDI over the same
//    register collapse to one constant-formation superop with the result
//    folded at translation time, SLT(I)(U)+BEQ/BNE against x0 becomes a
//    kCmpBranch terminator, and a load plus its dependent ALU consumer
//    executes as one fused pair dispatch;
//  * retire accounting is batched: SimStats-visible instruction counts
//    are committed once per block from a precomputed per-block delta;
//  * block-chained dispatch: each terminator carries its successor block
//    row, so the hot loop is block-to-block and only checks the budget
//    at block boundaries.
//
// Budget exactness: the loop only enters a block when the whole block
// (terminator attempt included) fits the remaining budget; a partial
// block is stepped per instruction instead, so run() honours
// max_instructions exactly — fused intermediate states included — which
// keeps SimulationService slice accounting and the conformance suite's
// tiny-budget contract bit-identical to Rv32Simulator.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "rv32/rv32_decoded_image.hpp"
#include "rv32/rv32_sim.hpp"

namespace art9::rv32 {

/// One body slot of the flat superop stream: the pre-decoded instruction
/// (possibly rewritten by fusion) plus its static PC.
struct Rv32SuperOp {
  Rv32DecodedOp op;
  uint32_t pc = 0;
  uint8_t pair = 0;  // head of a fused load+op pair: the following slot
                     // executes in the same dispatch iteration
};

/// How a block ends.
enum class Rv32SbTerm : uint8_t {
  kOp,           // execute rows[term_row] through execute_rv32 (branches,
                 // JAL/JALR, the halting ECALL/EBREAK, the trap row)
  kCmpBranch,    // fused SLT(I)(U) + BEQ/BNE-against-x0, retires 2
  kFallthrough,  // block split at the length cap — chain to next_row
};

/// One straight-line block: a slice of the plan's op stream plus the
/// terminator description and the precomputed retire delta.
struct Rv32Superblock {
  uint32_t first_op = 0;
  uint32_t op_count = 0;
  uint32_t retires = 0;         // body instructions + 1 for a branch/jump
                                // terminator (ECALL/EBREAK/trap retire 0)
  uint32_t min_budget = 0;      // remaining budget required to enter:
                                // retires, +1 for zero-retire terminators
                                // whose *attempt* still needs headroom
  Rv32SbTerm term = Rv32SbTerm::kOp;
  uint32_t term_row = 0;        // kOp/kCmpBranch: the terminator's row
  uint32_t term_pc_offset = 0;  // terminator PC relative to block entry
                                // (0 for the dynamically-entered trap row)
  Rv32DecodedOp cmp_op;         // kCmpBranch: the fused comparison
  bool branch_on_ne = false;    // kCmpBranch: branch sense
  uint32_t next_row = 0;        // kFallthrough: successor block
};

/// The whole translation: one block per row (trap row last) over a
/// shared op stream.
struct Rv32SuperblockPlan {
  /// Straight-line body cap, in source instructions (bounds the slow-path
  /// work of a partial block).
  static constexpr uint32_t kMaxBlockInstructions = 32;

  std::vector<Rv32Superblock> blocks;  // indexed by row, rows()+1 entries
  std::vector<Rv32SuperOp> ops;
  // Translation statistics (tests, introspection):
  uint32_t fused_const = 0;
  uint32_t fused_cmp_branch = 0;
  uint32_t fused_load_op = 0;
};

/// The rv32 superblock execution backend.  Architectural state and
/// semantics are identical to Rv32Simulator (both execute through
/// detail::execute_rv32 on a host datapath); only the run loop differs —
/// locked by the conformance suite and tests/sim/superblock_test.cpp.
class Rv32SuperblockSimulator {
 public:
  using Observer = Rv32Simulator::Observer;

  explicit Rv32SuperblockSimulator(const Rv32Program& program, std::size_t ram_bytes = 1u << 20);

  /// Runs off a shared pre-decoded image (SimulationService, differential
  /// harnesses).  `image` must be non-null.
  explicit Rv32SuperblockSimulator(std::shared_ptr<const Rv32DecodedImage> image,
                                   std::size_t ram_bytes = 1u << 20);

  /// Executes one instruction (the per-instruction slow path — observed
  /// runs and partial-block tails); false when ECALL/EBREAK retires.
  bool step();

  /// Runs until halt or `max_instructions` — exactly: block entry is
  /// clamped against the remaining budget, the tail is stepped per
  /// instruction.  A non-empty `observer` routes the whole run through
  /// the per-instruction path so the retire stream stays bit-identical.
  Rv32RunStats run(uint64_t max_instructions = 100'000'000, const Observer& observer = {});

  /// Streams every retired instruction to `observer` (empty to remove).
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  [[nodiscard]] uint32_t reg(int index) const { return regs_.at(static_cast<std::size_t>(index)); }
  void set_reg(int index, uint32_t value) {
    if (index != 0) regs_.at(static_cast<std::size_t>(index)) = value;
  }
  [[nodiscard]] uint32_t pc() const noexcept { return pc_; }

  /// Snapshot of the architectural state (registers, RAM bytes, PC).
  [[nodiscard]] Rv32ArchState state() const { return Rv32ArchState{regs_, ram_, pc_}; }

  /// Replaces the architectural state wholesale (snapshot restore),
  /// adopting the snapshot's RAM size.  x0 is forced back to zero.
  void restore(const Rv32ArchState& state) {
    regs_ = state.regs;
    regs_[0] = 0;
    ram_ = state.ram;
    pc_ = state.pc;
    row_ = image_->row_of(pc_);
  }

  /// The shared pre-decoded image this simulator executes.
  [[nodiscard]] const Rv32DecodedImage& image() const noexcept { return *image_; }

  /// The shared block translation (tests, introspection).
  [[nodiscard]] const Rv32SuperblockPlan& plan() const noexcept { return *plan_; }

 private:
  std::shared_ptr<const Rv32DecodedImage> image_;
  const Rv32DecodedOp* rows_ = nullptr;       // the image's row table
  const Rv32SuperblockPlan* plan_ = nullptr;  // the image's translation
  std::vector<uint8_t> ram_;
  std::array<uint32_t, 32> regs_{};
  uint32_t pc_ = 0;
  uint32_t row_ = 0;  // current fetch row, in lock-step with pc_
  Observer observer_;
};

}  // namespace art9::rv32
