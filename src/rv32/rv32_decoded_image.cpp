#include "rv32/rv32_decoded_image.hpp"

#include <stdexcept>
#include <string>

namespace art9::rv32 {

Rv32DecodedImage::Rv32DecodedImage(const Rv32Program& program)
    : program_(program), entry_(program.entry) {
  rows_.resize(program.code.size() + 1);  // + shared trap row
  for (std::size_t r = 0; r < program.code.size(); ++r) {
    const Rv32Instruction& inst = program.code[r];
    // Field validation: every instruction must round-trip through the
    // 32-bit encoder.  A register index or immediate outside its format's
    // range is a malformed encoding — reject it here, at load time.
    try {
      static_cast<void>(encode(inst));
    } catch (const std::exception& e) {
      throw Rv32SimError("rv32 malformed encoding at pc=" +
                         std::to_string(entry_ + 4 * static_cast<uint32_t>(r)) + ": " + e.what());
    }

    Rv32DecodedOp& op = rows_[r];
    op.kind = static_cast<Rv32Dispatch>(inst.op);
    op.rd = static_cast<uint8_t>(inst.rd);
    op.rs1 = static_cast<uint8_t>(inst.rs1);
    op.rs2 = static_cast<uint8_t>(inst.rs2);
    const uint32_t pc = entry_ + 4 * static_cast<uint32_t>(r);
    op.next_pc = pc + 4;
    op.next_row = row_of(op.next_pc);
    op.link = pc + 4;

    const uint32_t imm_u = static_cast<uint32_t>(inst.imm);
    switch (inst.op) {
      case Rv32Op::kLui:
        op.imm_u = imm_u << 12;
        break;
      case Rv32Op::kAuipc:
        op.imm_u = pc + (imm_u << 12);  // the complete result
        break;
      case Rv32Op::kSlli:
      case Rv32Op::kSrli:
      case Rv32Op::kSrai:
        op.imm_u = imm_u & 31u;
        break;
      default:
        op.imm_u = imm_u;
        break;
    }

    switch (inst.op) {
      case Rv32Op::kJal:
      case Rv32Op::kBeq:
      case Rv32Op::kBne:
      case Rv32Op::kBlt:
      case Rv32Op::kBge:
      case Rv32Op::kBltu:
      case Rv32Op::kBgeu:
        op.taken_pc = pc + imm_u;
        op.taken_row = row_of(op.taken_pc);
        break;
      default:
        op.taken_pc = op.next_pc;
        op.taken_row = op.next_row;
        break;
    }
  }
  // The trap row keeps its default kTrap kind; the executing simulator's
  // pc names the faulting address when it dispatches here.
}

std::shared_ptr<const Rv32DecodedImage> decode(const Rv32Program& program) {
  return std::make_shared<const Rv32DecodedImage>(program);
}

}  // namespace art9::rv32
