// ARMv6-M (Thumb-1) subset assembler — code-size baseline of Fig. 5.
//
// The paper compares the ART-9 program footprint (trits) against ARMv6-M
// (16-bit Thumb instructions).  This assembler covers the Thumb-1 subset
// the benchmark ports use, with real T16 encodings (BL is the one 32-bit
// encoding).  Counting memory cells only needs sizes, but encoding for
// real keeps the baseline honest and testable.
//
// Supported syntax (labels/.org/.equ/.data/.word/.zero as elsewhere):
//   movs rd, #imm8        adds/subs rd, rn, rm | rd, rn, #imm3 | rd, #imm8
//   mov rd, rm            ands/orrs/eors/bics/mvns/negs (2-reg forms)
//   lsls/lsrs/asrs rd, rm, #imm5        muls rd, rm
//   cmp rn, #imm8 | cmp rn, rm
//   ldr/str rt, [rn, #off] | [rn, rm]   ldrb/strb rt, [rn, #off]
//   b label | b<cond> label (eq ne lt ge gt le lo hs) | bl label | bx lr
//   push {reglist} / pop {reglist}      nop
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace art9::rv32 {

class ThumbAsmError : public std::runtime_error {
 public:
  ThumbAsmError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message) {}
};

struct ThumbProgram {
  std::vector<uint16_t> halfwords;  // encoded instruction stream
  std::vector<uint32_t> data_words; // initialised data (32-bit words)
  std::map<std::string, int64_t> symbols;

  /// Binary memory cells (bits): 16 per instruction halfword plus 32 per
  /// initialised data word — the ARMv6-M bar of Fig. 5.
  [[nodiscard]] int64_t memory_cells() const {
    return static_cast<int64_t>(halfwords.size()) * 16 +
           static_cast<int64_t>(data_words.size()) * 32;
  }

  [[nodiscard]] int64_t code_bits() const {
    return static_cast<int64_t>(halfwords.size()) * 16;
  }
};

[[nodiscard]] ThumbProgram assemble_thumb(std::string_view source);

}  // namespace art9::rv32
