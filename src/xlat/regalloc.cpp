#include "xlat/regalloc.hpp"

#include <algorithm>
#include <vector>

namespace art9::xlat {

std::string Location::to_string() const {
  switch (kind) {
    case Kind::kZero:
      return "zero(T7)";
    case Kind::kReg: {
      std::string s = std::to_string(reg);
      s.insert(0, 1, 'T');
      return s;
    }
    case Kind::kLink:
      return "link(T8)";
    case Kind::kSpill: {
      std::string s = std::to_string(slot);
      s.insert(0, "tdm[");
      s.push_back(']');
      return s;
    }
  }
  return "?";
}

RegisterMap RegisterMap::build(const rv32::Rv32Program& program) {
  // Static use counts (reads + writes weigh equally; x0 and ra are pinned).
  std::array<uint64_t, 32> uses{};
  for (const rv32::Rv32Instruction& inst : program.code) {
    const rv32::Rv32Spec& s = rv32::spec(inst.op);
    switch (s.format) {
      case rv32::Rv32Format::kR:
        ++uses[static_cast<std::size_t>(inst.rd)];
        ++uses[static_cast<std::size_t>(inst.rs1)];
        ++uses[static_cast<std::size_t>(inst.rs2)];
        break;
      case rv32::Rv32Format::kI:
      case rv32::Rv32Format::kIShift:
        ++uses[static_cast<std::size_t>(inst.rd)];
        ++uses[static_cast<std::size_t>(inst.rs1)];
        break;
      case rv32::Rv32Format::kS:
      case rv32::Rv32Format::kB:
        ++uses[static_cast<std::size_t>(inst.rs1)];
        ++uses[static_cast<std::size_t>(inst.rs2)];
        break;
      case rv32::Rv32Format::kU:
      case rv32::Rv32Format::kJ:
        ++uses[static_cast<std::size_t>(inst.rd)];
        break;
      case rv32::Rv32Format::kSystem:
        break;
    }
  }

  RegisterMap map;
  map.locations_[0] = Location{Location::Kind::kZero, kZeroReg, 0};
  map.locations_[1] = Location{Location::Kind::kLink, kLinkReg, 0};  // ra

  std::vector<int> live;
  for (int r = 2; r < 32; ++r) {
    if (uses[static_cast<std::size_t>(r)] > 0) live.push_back(r);
  }
  std::stable_sort(live.begin(), live.end(), [&](int a, int b) {
    return uses[static_cast<std::size_t>(a)] > uses[static_cast<std::size_t>(b)];
  });

  int next_reg = kFirstAssignable;
  int next_slot = kFirstSpillSlot;
  for (int r : live) {
    if (next_reg < kFirstAssignable + kNumAssignable) {
      map.locations_[static_cast<std::size_t>(r)] = Location{Location::Kind::kReg, next_reg++, 0};
    } else if (next_slot > kFirstSpillSlot - kNumSpillSlots) {
      map.locations_[static_cast<std::size_t>(r)] =
          Location{Location::Kind::kSpill, 0, next_slot--};
      ++map.spilled_;
    } else {
      throw TranslationError("register renaming: program uses more than " +
                             std::to_string(kNumAssignable + kNumSpillSlots) +
                             " rv32 registers");
    }
  }
  return map;
}

}  // namespace art9::xlat
