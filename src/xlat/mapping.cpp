#include "xlat/mapping.hpp"

#include <set>
#include <string>

namespace art9::xlat {

using isa::Instruction;
using isa::Opcode;
using rv32::Rv32Instruction;
using rv32::Rv32Op;
using ternary::kTritN;
using ternary::kTritP;
using ternary::kTritZ;
using ternary::Trit;
using ternary::Word9;

namespace {

constexpr int kImm3Max = 13;

class Mapper {
 public:
  Mapper(const rv32::Rv32Program& input, const RegisterMap& map) : in_(input), map_(map) {}

  MappingResult run() {
    collect_branch_targets();
    convert_data();
    // Prologue: initialise the zero register (T7 = 0).
    emit(Instruction{Opcode::kLui, kZeroReg, 0, kTritZ, 0});
    for (std::size_t i = 0; i < in_.code.size(); ++i) {
      const auto pc = static_cast<int64_t>(in_.entry) + static_cast<int64_t>(i) * 4;
      if (targets_.contains(pc)) pending_labels_.push_back(addr_label(pc));
      map_instruction(in_.code[i], pc);
    }
    flush_labels_to_halt();
    if (needs_mul_) emit_mul_routine();
    if (needs_div_) emit_divmod_routine();
    MappingResult result;
    result.program = std::move(out_);
    result.uses_mul_routine = needs_mul_;
    return result;
  }

 private:
  // --- label plumbing ----------------------------------------------------

  static std::string addr_label(int64_t byte_addr) {
    std::string label = std::to_string(byte_addr);
    label.insert(0, 1, 'A');
    return label;
  }

  void emit(Instruction inst, std::string target = {}) {
    XInst x(inst, std::move(target));
    x.labels = std::move(pending_labels_);
    pending_labels_.clear();
    out_.code.push_back(std::move(x));
  }

  /// If labels are pending at the very end (e.g. a branch to the end of the
  /// program), bind them to an appended HALT.
  void flush_labels_to_halt() {
    if (!pending_labels_.empty()) emit(Instruction::halt());
  }

  void collect_branch_targets() {
    for (std::size_t i = 0; i < in_.code.size(); ++i) {
      const Rv32Instruction& inst = in_.code[i];
      const rv32::Rv32Spec& s = rv32::spec(inst.op);
      if (s.format == rv32::Rv32Format::kB || s.format == rv32::Rv32Format::kJ) {
        targets_.insert(static_cast<int64_t>(in_.entry) + static_cast<int64_t>(i) * 4 + inst.imm);
      }
    }
  }

  void convert_data() {
    for (const rv32::Rv32DataWord& d : in_.data) {
      const auto value = static_cast<int32_t>(d.value);
      if (value < Word9::kMinValue || value > Word9::kMaxValue) {
        throw TranslationError("data word " + std::to_string(value) +
                               " exceeds the 9-trit range");
      }
      out_.data.push_back(isa::DataWord{static_cast<int64_t>(d.address), Word9::from_int(value)});
    }
  }

  // --- register plumbing --------------------------------------------------

  [[nodiscard]] const Location& loc(int rv_reg) const { return map_.location(rv_reg); }

  /// Register currently holding `rv_reg`'s value, loading spilled values
  /// into `scratch`.
  int read_val(int rv_reg, int scratch) {
    const Location& l = loc(rv_reg);
    switch (l.kind) {
      case Location::Kind::kZero:
      case Location::Kind::kReg:
      case Location::Kind::kLink:
        return l.reg;
      case Location::Kind::kSpill:
        emit(Instruction{Opcode::kLoad, scratch, kZeroReg, kTritZ, l.slot});
        return scratch;
    }
    return kScratch0;
  }

  /// Emits code placing `rv_reg`'s value into exactly register `t`.
  void copy_into(int t, int rv_reg) {
    const Location& l = loc(rv_reg);
    switch (l.kind) {
      case Location::Kind::kZero:
        emit(Instruction{Opcode::kLui, t, 0, kTritZ, 0});
        return;
      case Location::Kind::kReg:
      case Location::Kind::kLink:
        if (l.reg != t) emit(Instruction{Opcode::kMv, t, l.reg, kTritZ, 0});
        return;
      case Location::Kind::kSpill:
        emit(Instruction{Opcode::kLoad, t, kZeroReg, kTritZ, l.slot});
        return;
    }
  }

  /// Writes register `t` back to `rv_reg`'s home (drops writes to x0).
  void write_back(int rv_reg, int t) {
    const Location& l = loc(rv_reg);
    switch (l.kind) {
      case Location::Kind::kZero:
        return;
      case Location::Kind::kReg:
      case Location::Kind::kLink:
        if (l.reg != t) emit(Instruction{Opcode::kMv, l.reg, t, kTritZ, 0});
        return;
      case Location::Kind::kSpill:
        emit(Instruction{Opcode::kStore, t, kZeroReg, kTritZ, l.slot});
        return;
    }
  }

  /// LUI/LI pair materialising an arbitrary 9-trit constant into `t`
  /// (the operand-conversion step of Fig. 2).
  void emit_limm(int t, int64_t value) {
    if (value < Word9::kMinValue || value > Word9::kMaxValue) {
      throw TranslationError("immediate " + std::to_string(value) + " exceeds the 9-trit range");
    }
    const Word9 w = Word9::from_int(value);
    emit(Instruction{Opcode::kLui, t, 0, kTritZ, static_cast<int>(w.slice<4>(5).to_int())});
    emit(Instruction{Opcode::kLi, t, 0, kTritZ, static_cast<int>(w.slice<5>(0).to_int())});
  }

  // --- op helpers ----------------------------------------------------------

  /// rv32 three-address binary op -> ART-9 two-address form.
  void binary_op(Opcode op, int rd, int rs1, int rs2, bool commutative) {
    const Location& d = loc(rd);
    if (d.kind == Location::Kind::kZero) return;  // writes to x0 vanish
    if (d.kind == Location::Kind::kReg || d.kind == Location::Kind::kLink) {
      const bool rs1_in_place =
          loc(rs1).kind != Location::Kind::kSpill && loc(rs1).kind != Location::Kind::kZero &&
          loc(rs1).reg == d.reg;
      const bool rs2_in_place =
          loc(rs2).kind != Location::Kind::kSpill && loc(rs2).kind != Location::Kind::kZero &&
          loc(rs2).reg == d.reg;
      if (rs1_in_place) {
        const int b = read_val(rs2, kScratch1);
        emit(Instruction{op, d.reg, b, kTritZ, 0});
        return;
      }
      if (commutative && rs2_in_place) {
        const int a = read_val(rs1, kScratch1);
        emit(Instruction{op, d.reg, a, kTritZ, 0});
        return;
      }
      if (!rs2_in_place) {
        copy_into(d.reg, rs1);
        const int b = read_val(rs2, kScratch1);
        emit(Instruction{op, d.reg, b, kTritZ, 0});
        return;
      }
      // Non-commutative with rd aliasing rs2: go through scratch.
    }
    copy_into(kScratch0, rs1);
    const int b = read_val(rs2, kScratch1);
    emit(Instruction{op, kScratch0, b, kTritZ, 0});
    write_back(rd, kScratch0);
  }

  /// rv32 `xor` under the boolean contract: rd = |rs1 - rs2|.
  void xor_op(int rd, int rs1, int rs2) {
    if (loc(rd).kind == Location::Kind::kZero) return;
    copy_into(kScratch0, rs1);
    const int b = read_val(rs2, kScratch1);
    emit(Instruction{Opcode::kSub, kScratch0, b, kTritZ, 0});
    emit(Instruction{Opcode::kMv, kScratch1, kScratch0, kTritZ, 0});
    emit(Instruction{Opcode::kSti, kScratch1, kScratch1, kTritZ, 0});
    emit(Instruction{Opcode::kOr, kScratch0, kScratch1, kTritZ, 0});
    write_back(rd, kScratch0);
  }

  /// rv32 slt/slti family: rd = (a < b) ? 1 : 0.
  /// COMP leaves sign(a-b) as the whole word value (-1/0/+1); the result
  /// is max(-x, 0): STI negates tritwise and OR with the zero register
  /// clamps, mapping -1 -> 1 and {0,+1} -> 0.
  void set_less_than(int rd, int rs1, int b_reg) {
    copy_into(kScratch0, rs1);
    emit(Instruction{Opcode::kComp, kScratch0, b_reg, kTritZ, 0});
    emit(Instruction{Opcode::kSti, kScratch0, kScratch0, kTritZ, 0});
    emit(Instruction{Opcode::kOr, kScratch0, kZeroReg, kTritZ, 0});
    write_back(rd, kScratch0);
  }

  /// Conditional branches: copy rs1, COMP against rs2, then test the
  /// result's least-significant trit.
  void branch(const Rv32Instruction& inst, int64_t pc) {
    copy_into(kScratch0, inst.rs1);
    const int b = read_val(inst.rs2, kScratch1);
    emit(Instruction{Opcode::kComp, kScratch0, b, kTritZ, 0});
    const std::string label = addr_label(pc + inst.imm);
    switch (inst.op) {
      case Rv32Op::kBeq:
        emit(Instruction{Opcode::kBeq, 0, kScratch0, kTritZ, 0}, label);
        break;
      case Rv32Op::kBne:
        emit(Instruction{Opcode::kBne, 0, kScratch0, kTritZ, 0}, label);
        break;
      case Rv32Op::kBlt:
      case Rv32Op::kBltu:
        emit(Instruction{Opcode::kBeq, 0, kScratch0, kTritN, 0}, label);
        break;
      case Rv32Op::kBge:
      case Rv32Op::kBgeu:
        emit(Instruction{Opcode::kBne, 0, kScratch0, kTritN, 0}, label);
        break;
      default:
        throw TranslationError("not a branch");
    }
  }

  /// lw/sw address operand: returns {base register, literal offset}.
  struct Mem {
    int base;
    int offset;
  };
  Mem mem_address(int rs1, int32_t offset, int scratch) {
    int base = read_val(rs1, scratch);
    if (offset >= -kImm3Max && offset <= kImm3Max) return {base, offset};
    // Wide offset: materialise base+offset in the scratch register.
    if (base != scratch) {
      emit_limm(scratch, offset);
      emit(Instruction{Opcode::kAdd, scratch, base, kTritZ, 0});
    } else {
      // Base already occupies the scratch (spilled): add the offset via
      // the other scratch.
      const int other = scratch == kScratch0 ? kScratch1 : kScratch0;
      emit_limm(other, offset);
      emit(Instruction{Opcode::kAdd, scratch, other, kTritZ, 0});
    }
    return {scratch, 0};
  }

  /// The __mul call protocol.  Arguments travel through the runtime TDM
  /// slots (not the scratch registers): both scratches must be *dead* at
  /// the JAL so that long-branch relaxation may rewrite it into a
  /// LUI/LI/JALR island using T0 (see emit.hpp).
  void mul_op(int rd, int rs1, int rs2) {
    needs_mul_ = true;
    emit(Instruction{Opcode::kStore, kLinkReg, kZeroReg, kTritZ, kRaSaveSlot});
    store_to_slot(rs1, kRuntimeSlot0);
    store_to_slot(rs2, kRuntimeSlot1);
    emit(Instruction{Opcode::kJal, kLinkReg, 0, kTritZ, 0}, "__mul");
    emit(Instruction{Opcode::kLoad, kLinkReg, kZeroReg, kTritZ, kRaSaveSlot});
    write_back(rd, kScratch0);
  }

  /// Copies rv32 register `rv_reg`'s value into runtime slot `slot`.
  void store_to_slot(int rv_reg, int slot) {
    const int src = read_val(rv_reg, kScratch0);
    emit(Instruction{Opcode::kStore, src, kZeroReg, kTritZ, slot});
  }

  /// The __divmod call protocol: same memory-argument convention as
  /// __mul; quotient returns in T0, remainder in runtime slot 1.
  void div_op(int rd, int rs1, int rs2, bool want_remainder) {
    needs_div_ = true;
    emit(Instruction{Opcode::kStore, kLinkReg, kZeroReg, kTritZ, kRaSaveSlot});
    store_to_slot(rs1, kRuntimeSlot0);
    store_to_slot(rs2, kRuntimeSlot1);
    emit(Instruction{Opcode::kJal, kLinkReg, 0, kTritZ, 0}, "__divmod");
    emit(Instruction{Opcode::kLoad, kLinkReg, kZeroReg, kTritZ, kRaSaveSlot});
    if (want_remainder) {
      emit(Instruction{Opcode::kLoad, kScratch0, kZeroReg, kTritZ, kRuntimeSlot1});
    }
    write_back(rd, kScratch0);
  }

  /// Trit-serial restoring division: quotient = arg0 / arg1 (truncating
  /// toward zero), remainder takes the dividend's sign; division by zero
  /// returns quotient -1 and remainder = dividend (the RISC-V M
  /// convention — the 9-trit range is symmetric, so there is no INT_MIN
  /// overflow case).  Schoolbook digit recurrence over the dividend's
  /// trits (MST first): r = 3r + digit, then subtract the divisor up to
  /// twice; a divisor magnitude above (3^9-1)/6 would overflow the
  /// 3r+digit step, so such divisors take a direct-subtraction path
  /// (their quotient magnitude is at most 2).
  void emit_divmod_routine() {
    const int t2 = kFirstAssignable;      // q
    const int t3 = kFirstAssignable + 1;  // d (divisor magnitude)
    const int t4 = kFirstAssignable + 2;  // per-step scratch
    auto ins = [&](Opcode op, int ta, int tb, int imm = 0) {
      emit(Instruction{op, ta, tb, kTritZ, imm});
    };
    auto br = [&](Opcode op, int tb, Trit cond, const std::string& label) {
      emit(Instruction{op, 0, tb, cond, 0}, label);
    };
    auto bind = [&](const std::string& label) { pending_labels_.push_back(label); };

    bind("__divmod");
    ins(Opcode::kStore, t2, kZeroReg, kRuntimeSlot2);
    ins(Opcode::kStore, t3, kZeroReg, kRuntimeSlot3);
    ins(Opcode::kStore, t4, kZeroReg, kRuntimeSlot4);
    ins(Opcode::kLoad, kScratch0, kZeroReg, kRuntimeSlot0);  // a
    ins(Opcode::kLoad, kScratch1, kZeroReg, kRuntimeSlot1);  // b
    // b == 0: q = -1, r = a.
    ins(Opcode::kMv, t4, kScratch1);
    ins(Opcode::kComp, t4, kZeroReg);
    br(Opcode::kBne, t4, kTritZ, "__divmod.nz");
    ins(Opcode::kLui, t2, 0);
    ins(Opcode::kAddi, t2, 0, -1);
    ins(Opcode::kMv, kScratch1, kScratch0);  // r = a (signed)
    emit(Instruction{Opcode::kJal, t4, 0, kTritZ, 0}, "__divmod.out");
    // Signs and magnitudes.
    bind("__divmod.nz");
    ins(Opcode::kMv, t2, kScratch0);
    ins(Opcode::kComp, t2, kZeroReg);  // t2 = sign(a)
    br(Opcode::kBne, t2, kTritN, "__divmod.apos");
    ins(Opcode::kSti, kScratch0, kScratch0);
    bind("__divmod.apos");
    ins(Opcode::kMv, t4, kScratch1);
    ins(Opcode::kComp, t4, kZeroReg);  // t4 = sign(b)
    br(Opcode::kBne, t4, kTritN, "__divmod.bpos");
    ins(Opcode::kSti, kScratch1, kScratch1);
    bind("__divmod.bpos");
    // Pack 3*qsign + sign(a) into runtime slot 0 (arguments are consumed).
    ins(Opcode::kXor, t4, t2);       // xor(sb, sa) = -(sa*sb)
    ins(Opcode::kSti, t4, t4);       // qsign
    ins(Opcode::kSli, t4, 0, 1);
    ins(Opcode::kAdd, t4, t2);
    ins(Opcode::kStore, t4, kZeroReg, kRuntimeSlot0);
    // |b| > |a|: quotient 0, remainder |a| (signed by the epilogue).
    ins(Opcode::kMv, t4, kScratch1);
    ins(Opcode::kComp, t4, kScratch0);
    br(Opcode::kBne, t4, kTritP, "__divmod.fits");
    ins(Opcode::kMv, kScratch1, kScratch0);  // r = |a|
    ins(Opcode::kLui, t2, 0);                // q = 0
    emit(Instruction{Opcode::kJal, t4, 0, kTritZ, 0}, "__divmod.signs");
    bind("__divmod.fits");
    // Huge divisor (|b| > 3280 = (3^9-1)/6): at most two subtractions.
    ins(Opcode::kMv, t4, kScratch1);
    ins(Opcode::kLui, t2, 0, 13);   // 3280 = 13*243 + 121
    ins(Opcode::kLi, t2, 0, 121);
    ins(Opcode::kComp, t4, t2);
    br(Opcode::kBne, t4, kTritP, "__divmod.school");
    ins(Opcode::kMv, t3, kScratch1);         // d = |b|
    ins(Opcode::kMv, kScratch1, kScratch0);  // r = |a|
    ins(Opcode::kLui, t2, 0);                // q = 0
    for (int step = 0; step < 2; ++step) {
      ins(Opcode::kMv, t4, kScratch1);
      ins(Opcode::kComp, t4, t3);
      br(Opcode::kBeq, t4, kTritN, "__divmod.signs");
      ins(Opcode::kSub, kScratch1, t3);
      ins(Opcode::kAddi, t2, 0, 1);
    }
    emit(Instruction{Opcode::kJal, t4, 0, kTritZ, 0}, "__divmod.signs");
    // Schoolbook digit loop: 9 iterations, counter in runtime slot 1.
    bind("__divmod.school");
    ins(Opcode::kMv, t3, kScratch1);  // d
    ins(Opcode::kLui, kScratch1, 0);  // r = 0
    ins(Opcode::kLui, t2, 0);         // q = 0
    ins(Opcode::kLui, t4, 0);
    ins(Opcode::kAddi, t4, 0, 9);
    ins(Opcode::kStore, t4, kZeroReg, kRuntimeSlot1);
    bind("__divmod.loop");
    ins(Opcode::kMv, t4, kScratch0);
    ins(Opcode::kSri, t4, 0, 8);        // next dividend digit (MST)
    ins(Opcode::kSli, kScratch0, 0, 1);
    ins(Opcode::kSli, kScratch1, 0, 1);
    ins(Opcode::kAdd, kScratch1, t4);   // r = 3r + digit
    ins(Opcode::kSli, t2, 0, 1);        // q *= 3
    // A -1 digit can pull r to -1: add the divisor back once (q -= 1).
    ins(Opcode::kMv, t4, kScratch1);
    ins(Opcode::kComp, t4, kZeroReg);
    br(Opcode::kBne, t4, kTritN, "__divmod.nofix");
    ins(Opcode::kAdd, kScratch1, t3);
    ins(Opcode::kAddi, t2, 0, -1);
    bind("__divmod.nofix");
    for (int step = 0; step < 2; ++step) {
      ins(Opcode::kMv, t4, kScratch1);
      ins(Opcode::kComp, t4, t3);
      br(Opcode::kBeq, t4, kTritN, "__divmod.next");
      ins(Opcode::kSub, kScratch1, t3);
      ins(Opcode::kAddi, t2, 0, 1);
    }
    bind("__divmod.next");
    ins(Opcode::kLoad, t4, kZeroReg, kRuntimeSlot1);
    ins(Opcode::kAddi, t4, 0, -1);
    ins(Opcode::kStore, t4, kZeroReg, kRuntimeSlot1);
    ins(Opcode::kComp, t4, kZeroReg);
    br(Opcode::kBne, t4, kTritZ, "__divmod.loop");
    // Apply the signs (remainder follows the dividend, quotient the pair).
    bind("__divmod.signs");
    ins(Opcode::kLoad, t4, kZeroReg, kRuntimeSlot0);
    br(Opcode::kBne, t4, kTritN, "__divmod.rpos");
    ins(Opcode::kSti, kScratch1, kScratch1);
    bind("__divmod.rpos");
    ins(Opcode::kLoad, t4, kZeroReg, kRuntimeSlot0);
    ins(Opcode::kSri, t4, 0, 1);
    br(Opcode::kBne, t4, kTritN, "__divmod.qpos");
    ins(Opcode::kSti, t2, t2);
    bind("__divmod.qpos");
    bind("__divmod.out");
    ins(Opcode::kMv, kScratch0, t2);                      // quotient -> T0
    ins(Opcode::kStore, kScratch1, kZeroReg, kRuntimeSlot1);  // remainder -> slot
    ins(Opcode::kLoad, t2, kZeroReg, kRuntimeSlot2);
    ins(Opcode::kLoad, t3, kZeroReg, kRuntimeSlot3);
    ins(Opcode::kLoad, t4, kZeroReg, kRuntimeSlot4);
    ins(Opcode::kJalr, kScratch1, kLinkReg, 0);
  }

  /// Trit-serial multiplication: result = arg0 * arg1 (slots -11/-12),
  /// returned in T0.  LST-first loop: acc += a * trit0(b); a *= 3;
  /// b >>= 1; exits as soon as the remaining multiplier is zero, so the
  /// cost is proportional to the multiplier's trit length.  T2/T3 are
  /// saved and restored; all internal branches are short by construction
  /// (the backward jump links into the dead T3, so relaxation never
  /// rewrites anything inside the routine).
  void emit_mul_routine() {
    const int acc = kFirstAssignable;       // T2
    const int tmp = kFirstAssignable + 1;   // T3
    pending_labels_.push_back("__mul");
    emit(Instruction{Opcode::kStore, acc, kZeroReg, kTritZ, kRuntimeSlot2});
    emit(Instruction{Opcode::kLoad, kScratch0, kZeroReg, kTritZ, kRuntimeSlot0});  // a
    emit(Instruction{Opcode::kLoad, kScratch1, kZeroReg, kTritZ, kRuntimeSlot1});  // b
    emit(Instruction{Opcode::kStore, tmp, kZeroReg, kTritZ, kRuntimeSlot1});  // slot now free
    emit(Instruction{Opcode::kLui, acc, 0, kTritZ, 0});  // acc = 0
    pending_labels_.push_back("__mul.loop");
    emit(Instruction{Opcode::kMv, tmp, kScratch1, kTritZ, 0});
    emit(Instruction{Opcode::kComp, tmp, kZeroReg, kTritZ, 0});
    emit(Instruction{Opcode::kBeq, 0, tmp, kTritZ, 0}, "__mul.done");
    emit(Instruction{Opcode::kBne, 0, kScratch1, kTritP, 0}, "__mul.sa");
    emit(Instruction{Opcode::kAdd, acc, kScratch0, kTritZ, 0});
    pending_labels_.push_back("__mul.sa");
    emit(Instruction{Opcode::kBne, 0, kScratch1, kTritN, 0}, "__mul.ss");
    emit(Instruction{Opcode::kSub, acc, kScratch0, kTritZ, 0});
    pending_labels_.push_back("__mul.ss");
    emit(Instruction{Opcode::kSri, kScratch1, 0, kTritZ, 1});
    emit(Instruction{Opcode::kSli, kScratch0, 0, kTritZ, 1});
    emit(Instruction{Opcode::kJal, tmp, 0, kTritZ, 0}, "__mul.loop");
    pending_labels_.push_back("__mul.done");
    emit(Instruction{Opcode::kMv, kScratch0, acc, kTritZ, 0});
    emit(Instruction{Opcode::kLoad, acc, kZeroReg, kTritZ, kRuntimeSlot2});
    emit(Instruction{Opcode::kLoad, tmp, kZeroReg, kTritZ, kRuntimeSlot1});
    emit(Instruction{Opcode::kJalr, kScratch1, kLinkReg, kTritZ, 0});
  }

  // --- the mapping table ----------------------------------------------------

  void map_instruction(const Rv32Instruction& inst, int64_t pc) {
    const rv32::Rv32Spec& s = rv32::spec(inst.op);
    switch (inst.op) {
      case Rv32Op::kAdd:
        binary_op(Opcode::kAdd, inst.rd, inst.rs1, inst.rs2, true);
        return;
      case Rv32Op::kSub:
        if (inst.rs1 == 0) {  // neg: a single STI
          if (loc(inst.rd).kind == Location::Kind::kZero) return;
          const int b = read_val(inst.rs2, kScratch0);
          const Location& d = loc(inst.rd);
          const int t = (d.kind == Location::Kind::kReg || d.kind == Location::Kind::kLink)
                            ? d.reg
                            : kScratch0;
          emit(Instruction{Opcode::kSti, t, b, kTritZ, 0});
          if (t == kScratch0) write_back(inst.rd, kScratch0);
          return;
        }
        binary_op(Opcode::kSub, inst.rd, inst.rs1, inst.rs2, false);
        return;
      case Rv32Op::kAnd:
        binary_op(Opcode::kAnd, inst.rd, inst.rs1, inst.rs2, true);
        return;
      case Rv32Op::kOr:
        binary_op(Opcode::kOr, inst.rd, inst.rs1, inst.rs2, true);
        return;
      case Rv32Op::kXor:
        xor_op(inst.rd, inst.rs1, inst.rs2);
        return;
      case Rv32Op::kSlt:
      case Rv32Op::kSltu: {
        if (loc(inst.rd).kind == Location::Kind::kZero) return;
        const int b = read_val(inst.rs2, kScratch1);
        set_less_than(inst.rd, inst.rs1, b);
        return;
      }
      case Rv32Op::kSlti:
      case Rv32Op::kSltiu: {
        if (loc(inst.rd).kind == Location::Kind::kZero) return;
        emit_limm(kScratch1, inst.imm);
        set_less_than(inst.rd, inst.rs1, kScratch1);
        return;
      }
      case Rv32Op::kAddi: {
        const Location& d = loc(inst.rd);
        if (d.kind == Location::Kind::kZero) return;
        if (inst.rs1 == 0) {  // li
          if (d.kind == Location::Kind::kReg || d.kind == Location::Kind::kLink) {
            emit_limm(d.reg, inst.imm);
          } else {
            emit_limm(kScratch0, inst.imm);
            write_back(inst.rd, kScratch0);
          }
          return;
        }
        const bool small = inst.imm >= -kImm3Max && inst.imm <= kImm3Max;
        if (d.kind == Location::Kind::kReg || d.kind == Location::Kind::kLink) {
          copy_into(d.reg, inst.rs1);
          if (inst.imm == 0) return;
          if (small) {
            emit(Instruction{Opcode::kAddi, d.reg, 0, kTritZ, inst.imm});
          } else {
            emit_limm(kScratch1, inst.imm);
            emit(Instruction{Opcode::kAdd, d.reg, kScratch1, kTritZ, 0});
          }
          return;
        }
        copy_into(kScratch0, inst.rs1);
        if (inst.imm != 0) {
          if (small) {
            emit(Instruction{Opcode::kAddi, kScratch0, 0, kTritZ, inst.imm});
          } else {
            emit_limm(kScratch1, inst.imm);
            emit(Instruction{Opcode::kAdd, kScratch0, kScratch1, kTritZ, 0});
          }
        }
        write_back(inst.rd, kScratch0);
        return;
      }
      case Rv32Op::kAndi:
      case Rv32Op::kOri:
      case Rv32Op::kXori: {
        // Boolean contract: only 0/1 immediates are meaningful in ternary.
        if (inst.imm != 0 && inst.imm != 1) {
          throw TranslationError(std::string(s.mnemonic) +
                                 " with non-boolean mask has no ternary counterpart");
        }
        if (loc(inst.rd).kind == Location::Kind::kZero) return;
        emit_limm(kScratch1, inst.imm);
        copy_into(kScratch0, inst.rs1);
        if (inst.op == Rv32Op::kAndi) {
          emit(Instruction{Opcode::kAnd, kScratch0, kScratch1, kTritZ, 0});
        } else if (inst.op == Rv32Op::kOri) {
          emit(Instruction{Opcode::kOr, kScratch0, kScratch1, kTritZ, 0});
        } else {
          emit(Instruction{Opcode::kSub, kScratch0, kScratch1, kTritZ, 0});
          emit(Instruction{Opcode::kMv, kScratch1, kScratch0, kTritZ, 0});
          emit(Instruction{Opcode::kSti, kScratch1, kScratch1, kTritZ, 0});
          emit(Instruction{Opcode::kOr, kScratch0, kScratch1, kTritZ, 0});
        }
        write_back(inst.rd, kScratch0);
        return;
      }
      case Rv32Op::kSlli: {
        // Strength reduction: x << k  ==  x doubled k times.
        const Location& d = loc(inst.rd);
        if (d.kind == Location::Kind::kZero) return;
        const int t = (d.kind == Location::Kind::kReg || d.kind == Location::Kind::kLink)
                          ? d.reg
                          : kScratch0;
        copy_into(t, inst.rs1);
        for (int k = 0; k < inst.imm; ++k) emit(Instruction{Opcode::kAdd, t, t, kTritZ, 0});
        if (t == kScratch0) write_back(inst.rd, kScratch0);
        return;
      }
      case Rv32Op::kLui: {
        const int64_t value = static_cast<int64_t>(inst.imm) << 12;
        const Location& d = loc(inst.rd);
        if (d.kind == Location::Kind::kZero) return;
        if (d.kind == Location::Kind::kReg || d.kind == Location::Kind::kLink) {
          emit_limm(d.reg, value);
        } else {
          emit_limm(kScratch0, value);
          write_back(inst.rd, kScratch0);
        }
        return;
      }
      case Rv32Op::kBeq:
      case Rv32Op::kBne:
      case Rv32Op::kBlt:
      case Rv32Op::kBge:
      case Rv32Op::kBltu:
      case Rv32Op::kBgeu:
        branch(inst, pc);
        return;
      case Rv32Op::kJal: {
        const std::string label = addr_label(pc + inst.imm);
        const Location& d = loc(inst.rd);
        int link = kScratch0;
        if (d.kind == Location::Kind::kReg || d.kind == Location::Kind::kLink) link = d.reg;
        emit(Instruction{Opcode::kJal, link, 0, kTritZ, 0}, label);
        if (d.kind == Location::Kind::kSpill) write_back(inst.rd, kScratch0);
        return;
      }
      case Rv32Op::kJalr: {
        if (inst.imm < -kImm3Max || inst.imm > kImm3Max) {
          throw TranslationError("jalr offset exceeds the 3-trit immediate");
        }
        const int base = read_val(inst.rs1, kScratch1);
        const Location& d = loc(inst.rd);
        int link = kScratch0;
        if (d.kind == Location::Kind::kReg || d.kind == Location::Kind::kLink) link = d.reg;
        emit(Instruction{Opcode::kJalr, link, base, kTritZ, inst.imm});
        if (d.kind == Location::Kind::kSpill) write_back(inst.rd, kScratch0);
        return;
      }
      case Rv32Op::kLw: {
        const Location& d = loc(inst.rd);
        if (d.kind == Location::Kind::kZero) return;
        const Mem m = mem_address(inst.rs1, inst.imm, kScratch1);
        const int t = (d.kind == Location::Kind::kReg || d.kind == Location::Kind::kLink)
                          ? d.reg
                          : kScratch0;
        emit(Instruction{Opcode::kLoad, t, m.base, kTritZ, m.offset});
        if (t == kScratch0) write_back(inst.rd, kScratch0);
        return;
      }
      case Rv32Op::kSw: {
        const Mem m = mem_address(inst.rs1, inst.imm, kScratch1);
        const int v = read_val(inst.rs2, kScratch0);
        emit(Instruction{Opcode::kStore, v, m.base, kTritZ, m.offset});
        return;
      }
      case Rv32Op::kMul:
        if (loc(inst.rd).kind == Location::Kind::kZero) return;
        mul_op(inst.rd, inst.rs1, inst.rs2);
        return;
      case Rv32Op::kDiv:
      case Rv32Op::kDivu:
        if (loc(inst.rd).kind == Location::Kind::kZero) return;
        div_op(inst.rd, inst.rs1, inst.rs2, /*want_remainder=*/false);
        return;
      case Rv32Op::kRem:
      case Rv32Op::kRemu:
        if (loc(inst.rd).kind == Location::Kind::kZero) return;
        div_op(inst.rd, inst.rs1, inst.rs2, /*want_remainder=*/true);
        return;
      case Rv32Op::kFence:
        return;  // single-core: no-op
      case Rv32Op::kEcall:
      case Rv32Op::kEbreak:
        emit(Instruction::halt());
        return;
      default:
        throw TranslationError("rv32 '" + std::string(s.mnemonic) +
                               "' has no ternary mapping (outside the framework contract)");
    }
  }

  const rv32::Rv32Program& in_;
  const RegisterMap& map_;
  XProgram out_;
  std::set<int64_t> targets_;
  std::vector<std::string> pending_labels_;
  bool needs_mul_ = false;
  bool needs_div_ = false;
};

}  // namespace

MappingResult map_program(const rv32::Rv32Program& input, const RegisterMap& map) {
  Mapper mapper(input, map);
  return mapper.run();
}

}  // namespace art9::xlat
