// Instruction mapping + operand conversion (paper Fig. 2, first two
// boxes): translates RV-32I(+M) instructions into ART-9 XIR, expanding
// instructions without a direct ternary counterpart into primitive
// sequences, materialising wide immediates through LUI/LI pairs, and
// renaming registers through the RegisterMap.
//
// Mapping contract (the documented scope line — inputs outside it raise
// TranslationError):
//  * data access is word-granular (lw/sw only); one rv32 data word at byte
//    address A lives in the TDM at balanced address A, so pointers and
//    offsets translate unchanged;
//  * values (and initialised data) stay within the 9-trit balanced range
//    [-9841, +9841];
//  * and/or/xor (+ immediates 0/1) follow the boolean-operand contract:
//    min/max coincide with bitwise and/or on {0,1}, and xor expands to
//    |a-b|, exact on {0,1};
//  * bltu/bgeu map to the signed comparison (valid for in-range
//    non-negative operands);
//  * left shifts strength-reduce to repeated doubling; right shifts,
//    byte/halfword access and auipc have no ternary counterpart;
//  * mul expands to a call to the trit-serial __mul runtime routine;
//    div/divu and rem/remu call the trit-serial __divmod routine
//    (RISC-V M semantics: truncation toward zero, remainder follows the
//    dividend, division by zero yields quotient -1 / remainder a;
//    divu/remu coincide with the signed forms under the non-negative
//    operand contract);
//  * link values are opaque ART-9 addresses (only meaningful to JALR).
#pragma once

#include "rv32/rv32_program.hpp"
#include "xlat/regalloc.hpp"
#include "xlat/xir.hpp"

namespace art9::xlat {

struct MappingResult {
  XProgram program;
  bool uses_mul_routine = false;
};

/// Maps a whole rv32 program (code + data) to XIR, appending runtime
/// routines that the code calls.  The emitted program starts with the
/// prologue (zero-register initialisation) and preserves rv32 control
/// flow through "A<byteaddr>" labels.
[[nodiscard]] MappingResult map_program(const rv32::Rv32Program& input, const RegisterMap& map);

}  // namespace art9::xlat
