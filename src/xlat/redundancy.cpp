#include "xlat/redundancy.hpp"

#include <algorithm>

#include "xlat/regalloc.hpp"

namespace art9::xlat {

using isa::Format;
using isa::Instruction;
using isa::Opcode;

namespace {

constexpr ternary::Trit kTritZ_{};

bool is_scratch(int reg) { return reg == kScratch0 || reg == kScratch1; }

bool has_labels(const XInst& x) { return !x.labels.empty(); }

/// True if `inst` is a side-effect-free data op whose only effect is the
/// Ta write (droppable when that write is dead).  Loads are excluded
/// conservatively (they touch the memory port), as are stores, branches
/// and jumps.
bool pure_data_op(const Instruction& inst) {
  const isa::OpcodeSpec& s = isa::spec(inst.op);
  return s.writes_ta && !s.is_load && !s.is_store && !s.is_branch && !s.is_jump;
}

/// True if `inst` writes Ta at all.
bool writes_ta(const Instruction& inst) { return isa::spec(inst.op).writes_ta; }

/// True if `inst` reads register `r`.
bool reads_reg(const Instruction& inst, int r) {
  const isa::OpcodeSpec& s = isa::spec(inst.op);
  return (s.reads_ta && inst.ta == r) || (s.reads_tb && inst.tb == r);
}

/// Two-input R-type data op (candidates for rule 3).
bool is_binary_r(Opcode op) {
  switch (op) {
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kSr:
    case Opcode::kSl:
    case Opcode::kComp:
      return true;
    default:
      return false;
  }
}

/// Conservatively decides whether scratch register `s` is dead after
/// position `i` (exclusive): scans forward until something overwrites `s`
/// without reading it (dead) or reads it / reaches a label or control-flow
/// instruction (assume live).
bool scratch_dead_after(const XProgram& p, std::size_t i, int s) {
  for (std::size_t j = i + 1; j < p.code.size(); ++j) {
    const XInst& x = p.code[j];
    if (!x.labels.empty()) return false;  // a jump may land here with s live
    if (reads_reg(x.inst, s)) return false;
    if (writes_ta(x.inst) && x.inst.ta == s) return true;
    if (isa::changes_control_flow(x.inst.op)) return false;
  }
  return true;  // fell off the end
}

void erase_at(XProgram& p, std::size_t i) {
  // Migrate labels to the next instruction (callers guarantee one exists
  // or that the instruction is label-free).
  if (!p.code[i].labels.empty() && i + 1 < p.code.size()) {
    auto& next = p.code[i + 1].labels;
    next.insert(next.begin(), p.code[i].labels.begin(), p.code[i].labels.end());
  }
  p.code.erase(p.code.begin() + static_cast<std::ptrdiff_t>(i));
}

bool droppable_with_labels(const XProgram& p, std::size_t i) {
  return p.code[i].labels.empty() || i + 1 < p.code.size();
}

}  // namespace

RedundancyStats remove_redundancies(XProgram& p) {
  RedundancyStats stats;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < p.code.size(); ++i) {
      const Instruction& a = p.code[i].inst;

      // Rule 1: MV Tx, Tx.
      if (a.op == Opcode::kMv && a.ta == a.tb && droppable_with_labels(p, i)) {
        erase_at(p, i);
        ++stats.removed;
        changed = true;
        break;
      }
      // Rule 2: ADDI Tx, 0.
      if (a.op == Opcode::kAddi && a.imm == 0 && droppable_with_labels(p, i)) {
        erase_at(p, i);
        ++stats.removed;
        changed = true;
        break;
      }
      // Rule 7: branch/jump to the next instruction.
      if (!p.code[i].target.empty() && i + 1 < p.code.size()) {
        const auto& next_labels = p.code[i + 1].labels;
        const bool to_next = std::find(next_labels.begin(), next_labels.end(),
                                       p.code[i].target) != next_labels.end();
        // JAL links are only droppable when they land in a scratch.
        const bool link_dead = a.op != Opcode::kJal || is_scratch(a.ta);
        if (to_next && link_dead && droppable_with_labels(p, i)) {
          erase_at(p, i);
          ++stats.removed;
          changed = true;
          break;
        }
      }
      if (i + 1 >= p.code.size()) continue;
      const Instruction& b = p.code[i + 1].inst;
      const bool b_unlabelled = !has_labels(p.code[i + 1]);

      // Rule 5: ADDI A,i ; ADDI A,j -> ADDI A,i+j.
      if (a.op == Opcode::kAddi && b.op == Opcode::kAddi && a.ta == b.ta && b_unlabelled) {
        const int sum = a.imm + b.imm;
        if (sum >= -13 && sum <= 13) {
          p.code[i].inst.imm = sum;
          erase_at(p, i + 1);
          ++stats.combined;
          changed = true;
          break;
        }
      }
      // Rule 6: a data op whose result is immediately overwritten without
      // being read is dead.
      if (pure_data_op(a) && b_unlabelled && writes_ta(b) && b.ta == a.ta &&
          !reads_reg(b, a.ta) && droppable_with_labels(p, i)) {
        erase_at(p, i);
        ++stats.removed;
        changed = true;
        break;
      }
      // Rule 4: MV s,B ; MV D,s -> MV D,B (s must be dead afterwards).
      if (a.op == Opcode::kMv && b.op == Opcode::kMv && is_scratch(a.ta) && b.tb == a.ta &&
          b.ta != a.ta && b_unlabelled && scratch_dead_after(p, i + 1, a.ta) &&
          droppable_with_labels(p, i)) {
        p.code[i + 1].inst.tb = a.tb;
        erase_at(p, i);
        ++stats.removed;
        changed = true;
        break;
      }
      // Rule 9: STORE r,k(T7) ; LOAD r2,k(T7) -> forward the stored value
      // (spill write-back immediately reloaded).
      if (a.op == Opcode::kStore && b.op == Opcode::kLoad && a.tb == kZeroReg &&
          b.tb == kZeroReg && a.imm == b.imm && b_unlabelled) {
        if (a.ta == b.ta) {
          // Reload of the same register: the LOAD is a no-op.
          p.code.erase(p.code.begin() + static_cast<std::ptrdiff_t>(i + 1));
          ++stats.removed;
        } else {
          p.code[i + 1].inst = Instruction{Opcode::kMv, b.ta, a.ta, kTritZ_, 0};
          ++stats.combined;
        }
        changed = true;
        break;
      }
      // Rule 3: MV s,B ; OP s,C ; MV B,s -> OP B,C.
      if (i + 2 < p.code.size()) {
        const Instruction& c = p.code[i + 2].inst;
        const bool mid_unlabelled = !has_labels(p.code[i + 1]) && !has_labels(p.code[i + 2]);
        if (a.op == Opcode::kMv && is_scratch(a.ta) && is_binary_r(b.op) && b.ta == a.ta &&
            b.tb != a.ta && c.op == Opcode::kMv && c.tb == a.ta && c.ta == a.tb &&
            mid_unlabelled && scratch_dead_after(p, i + 2, a.ta) &&
            droppable_with_labels(p, i)) {
          const Instruction merged{b.op, a.tb, b.tb, b.bcond, b.imm};
          p.code[i + 1].inst = merged;
          // Drop the trailing MV first (no label migration needed), then
          // the leading MV.
          p.code.erase(p.code.begin() + static_cast<std::ptrdiff_t>(i + 2));
          erase_at(p, i);
          stats.removed += 2;
          changed = true;
          break;
        }
      }
    }
  }
  return stats;
}

}  // namespace art9::xlat
