// Register renaming for the operand-conversion stage (paper §III-A: "the
// operand conversion step also supports the register renaming when the
// given ternary ISA uses fewer general-purposed registers than the
// baseline binary processor").
//
// The ART-9 TRF has nine registers; the translator reserves four:
//   T0, T1 — expansion scratch (immediates, compare copies, __mul args)
//   T7     — always-zero (initialised once in the prologue; doubles as the
//            base register for spill-slot and small absolute addressing)
//   T8     — link register (rv32 `ra` maps here; runtime routines return
//            through it)
// leaving T2..T6 assignable.  The five most-used rv32 registers get those;
// any further live register is renamed to a TDM spill slot at a small
// negative address reachable with a 3-trit offset from T7.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "rv32/rv32_program.hpp"
#include "xlat/xir.hpp"

namespace art9::xlat {

/// Reserved ART-9 registers (see header comment).
inline constexpr int kScratch0 = 0;  // T0
inline constexpr int kScratch1 = 1;  // T1
inline constexpr int kZeroReg = 7;   // T7
inline constexpr int kLinkReg = 8;   // T8

/// Assignable registers T2..T6.
inline constexpr int kFirstAssignable = 2;
inline constexpr int kNumAssignable = 5;

/// TDM spill-slot layout (balanced addresses; every slot must stay within
/// the 3-trit immediate range [-13, +13] of the zero register).
inline constexpr int kFirstSpillSlot = -1;   // slots -1 .. -7
inline constexpr int kNumSpillSlots = 7;
inline constexpr int kRaSaveSlot = -8;       // caller-saved link around runtime calls
inline constexpr int kRuntimeSlot0 = -9;     // runtime argument 0 / scratch
inline constexpr int kRuntimeSlot1 = -10;    // runtime argument 1 / result
inline constexpr int kRuntimeSlot2 = -11;    // callee-saved T2
inline constexpr int kRuntimeSlot3 = -12;    // callee-saved T3
inline constexpr int kRuntimeSlot4 = -13;    // callee-saved T4

/// Where an rv32 register lives after renaming.
struct Location {
  enum class Kind { kZero, kReg, kSpill, kLink } kind = Kind::kZero;
  int reg = kZeroReg;   // T-register for kReg/kZero/kLink
  int slot = 0;         // TDM address for kSpill

  [[nodiscard]] std::string to_string() const;
};

/// Static assignment of rv32 registers to ART-9 locations.
class RegisterMap {
 public:
  /// Builds the map from static usage counts of `program`.
  /// Throws TranslationError if more registers are live than slots exist.
  static RegisterMap build(const rv32::Rv32Program& program);

  [[nodiscard]] const Location& location(int rv_reg) const {
    return locations_.at(static_cast<std::size_t>(rv_reg));
  }

  [[nodiscard]] std::size_t spilled_count() const noexcept { return spilled_; }

 private:
  std::array<Location, 32> locations_{};
  std::size_t spilled_ = 0;
};

}  // namespace art9::xlat
