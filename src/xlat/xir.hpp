// XIR — the tiny intermediate representation of the software-level
// compiling framework (paper Fig. 2).
//
// XIR instructions are ART-9 instructions with *symbolic* control-flow
// targets (labels instead of resolved offsets).  Keeping targets symbolic
// through mapping, operand conversion and redundancy checking means branch
// retargeting after instruction insertion/removal is automatic; the final
// emission pass (emit.cpp) resolves labels, applying long-branch
// relaxation where a target exceeds the 4- or 5-trit immediate range.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "isa/instruction.hpp"
#include "isa/program.hpp"

namespace art9::xlat {

/// Raised when the input uses an RV32 feature with no ternary counterpart
/// (byte memory access, right shifts, bitwise masks, auipc, div/rem) —
/// the documented scope line of the instruction-mapping stage.
class TranslationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One XIR instruction: an ART-9 instruction whose control-flow target (if
/// any) may still be a label.
struct XInst {
  isa::Instruction inst;
  /// Branch/jump target label; empty = `inst.imm` is already a literal.
  std::string target;
  /// Labels bound to this instruction's address.
  std::vector<std::string> labels;

  XInst() = default;
  explicit XInst(isa::Instruction i) : inst(i) {}
  XInst(isa::Instruction i, std::string tgt) : inst(i), target(std::move(tgt)) {}
};

/// A whole XIR function/program plus its TDM data image.
struct XProgram {
  std::vector<XInst> code;
  std::vector<isa::DataWord> data;
};

/// Statistics reported by the framework (and consumed by the ablation
/// bench to price the redundancy-checking pass).
struct TranslationStats {
  std::size_t rv32_instructions = 0;   // input size
  std::size_t mapped_instructions = 0; // after mapping + operand conversion
  std::size_t removed_redundant = 0;   // eliminated by redundancy checking
  std::size_t final_instructions = 0;  // emitted ART-9 instructions
  std::size_t spilled_registers = 0;   // rv32 registers renamed to TDM slots
  std::size_t relaxed_branches = 0;    // long-branch expansions

  [[nodiscard]] double expansion_ratio() const {
    return rv32_instructions == 0
               ? 0.0
               : static_cast<double>(final_instructions) / static_cast<double>(rv32_instructions);
  }
};

}  // namespace art9::xlat
