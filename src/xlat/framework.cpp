#include "xlat/framework.hpp"

#include <sstream>

#include "rv32/rv32_assembler.hpp"
#include "xlat/emit.hpp"
#include "xlat/mapping.hpp"
#include "xlat/redundancy.hpp"

namespace art9::xlat {

TranslationResult SoftwareFramework::translate(const rv32::Rv32Program& input) const {
  TranslationResult result;
  result.registers = RegisterMap::build(input);
  result.stats.rv32_instructions = input.code.size();
  result.stats.spilled_registers = result.registers.spilled_count();

  MappingResult mapped = map_program(input, result.registers);
  result.stats.mapped_instructions = mapped.program.code.size();

  if (options_.redundancy_checking) {
    const RedundancyStats red = remove_redundancies(mapped.program);
    result.stats.removed_redundant = red.removed + red.combined;
  }

  EmitResult emitted = emit_program(mapped.program, options_.entry);
  result.stats.relaxed_branches = emitted.relaxed_branches;
  result.stats.final_instructions = emitted.program.code.size();
  result.program = std::move(emitted.program);
  return result;
}

TranslationResult SoftwareFramework::translate_source(std::string_view rv32_source) const {
  return translate(rv32::assemble_rv32(rv32_source));
}

std::string to_assembly_text(const isa::Program& program) {
  std::ostringstream os;
  os << "; ART-9 assembly emitted by the software-level compiling framework\n";
  for (std::size_t i = 0; i < program.code.size(); ++i) {
    const int64_t addr = program.entry + static_cast<int64_t>(i);
    for (const auto& [name, value] : program.symbols) {
      if (value == addr) os << name << ":\n";
    }
    os << "    " << isa::to_string(program.code[i]) << '\n';
  }
  if (!program.data.empty()) {
    os << ".data\n";
    for (const isa::DataWord& d : program.data) {
      os << ".org " << d.address << "\n.word " << d.value.to_int() << '\n';
    }
  }
  return os.str();
}

}  // namespace art9::xlat
