// SoftwareFramework — the paper's Fig. 2 pipeline as one API:
//   RV-32I assembly/program
//     -> instruction mapping        (mapping.cpp)
//     -> operand conversion         (immediates + register renaming)
//     -> redundancy checking        (redundancy.cpp, optional for ablation)
//     -> label resolution/emission  (emit.cpp)
//   => assembled ART-9 program + statistics.
#pragma once

#include <string>
#include <string_view>

#include "isa/program.hpp"
#include "rv32/rv32_program.hpp"
#include "xlat/regalloc.hpp"
#include "xlat/xir.hpp"

namespace art9::xlat {

struct TranslationResult {
  isa::Program program;
  TranslationStats stats;
  RegisterMap registers;

  /// ART-9 location of an rv32 register after renaming (differential tests
  /// use this to compare architectural state across the two ISAs).
  [[nodiscard]] const Location& location(int rv_reg) const { return registers.location(rv_reg); }
};

struct SoftwareFrameworkOptions {
  /// Disable the redundancy-checking stage (ablation bench).
  bool redundancy_checking = true;
  /// Entry address of the emitted program.
  int64_t entry = 0;
};

class SoftwareFramework {
 public:
  explicit SoftwareFramework(SoftwareFrameworkOptions options = {}) : options_(options) {}

  /// Translates an assembled rv32 program.
  [[nodiscard]] TranslationResult translate(const rv32::Rv32Program& input) const;

  /// Convenience: assemble rv32 text, then translate.
  [[nodiscard]] TranslationResult translate_source(std::string_view rv32_source) const;

 private:
  SoftwareFrameworkOptions options_;
};

/// Renders an assembled ART-9 program as assembly text (debugging aid and
/// example output).
[[nodiscard]] std::string to_assembly_text(const isa::Program& program);

}  // namespace art9::xlat
