// Final emission: resolves XIR labels to PC-relative offsets, applying
// long-branch relaxation where a target exceeds the instruction's
// immediate range, and packages the result as an assembled isa::Program.
//
// Relaxation forms (scratch registers are dead at statement boundaries, so
// the rewrites are safe):
//   conditional branch out of +/-40:
//     B<cc> Tb,B,L   ->  B<!cc> Tb,B,+2 ; JAL T0,L
//     (and if L also exceeds JAL's +/-121:
//     B<!cc> Tb,B,+4 ; LUI T0,hi ; LI T0,lo ; JALR T1,T0,0)
//   JAL out of +/-121:
//     JAL Ta,L       ->  LUI T0,hi ; LI T0,lo ; JALR Ta,T0,0
//     (for Ta == T0 the link retargets to T1)
#pragma once

#include "isa/program.hpp"
#include "xlat/xir.hpp"

namespace art9::xlat {

struct EmitResult {
  isa::Program program;
  std::size_t relaxed_branches = 0;
};

/// Resolves and encodes.  `entry` is the balanced address of the first
/// instruction (0 by convention).
[[nodiscard]] EmitResult emit_program(const XProgram& input, int64_t entry = 0);

}  // namespace art9::xlat
