#include "xlat/emit.hpp"

#include <map>
#include <string>

#include "isa/encoding.hpp"
#include "xlat/regalloc.hpp"

namespace art9::xlat {

using isa::Instruction;
using isa::Opcode;
using ternary::kTritZ;
using ternary::Word9;

namespace {

constexpr int kBranchRange = 40;  // imm4
constexpr int kJalRange = 121;    // imm5
constexpr int kMaxRelaxationRounds = 16;

Opcode invert_branch(Opcode op) {
  return op == Opcode::kBeq ? Opcode::kBne : Opcode::kBeq;
}

struct Resolver {
  std::map<std::string, int64_t> label_addr;

  void index(const XProgram& p, int64_t entry) {
    label_addr.clear();
    int64_t addr = entry;
    for (const XInst& x : p.code) {
      for (const std::string& l : x.labels) label_addr[l] = addr;
      ++addr;
    }
  }

  [[nodiscard]] int64_t address_of(const std::string& label) const {
    auto it = label_addr.find(label);
    if (it == label_addr.end()) throw TranslationError("unresolved label '" + label + "'");
    return it->second;
  }
};

}  // namespace

EmitResult emit_program(const XProgram& input, int64_t entry) {
  XProgram p = input;
  Resolver resolver;
  EmitResult result;
  int skip_counter = 0;

  // Relaxation loop: rewrite out-of-range control transfers until stable.
  for (int round = 0;; ++round) {
    if (round >= kMaxRelaxationRounds) {
      throw TranslationError("branch relaxation did not converge");
    }
    resolver.index(p, entry);
    bool rewrote = false;
    XProgram next;
    next.data = p.data;
    std::vector<std::string> pending;  // labels for the next emitted instruction
    auto push = [&](XInst x) {
      x.labels.insert(x.labels.end(), pending.begin(), pending.end());
      pending.clear();
      next.code.push_back(std::move(x));
    };
    int64_t addr = entry;  // address in the *input* layout (what resolver indexed)
    for (const XInst& x : p.code) {
      const Instruction& inst = x.inst;
      if (x.target.empty() || x.target.starts_with("@abs_")) {
        push(x);
        ++addr;
        continue;
      }
      const int64_t delta = resolver.address_of(x.target) - addr;
      if (inst.op == Opcode::kBeq || inst.op == Opcode::kBne) {
        // Keep a safety margin: earlier instructions' relaxations can move
        // the target a few more words in later rounds.
        if (delta >= -(kBranchRange - 8) && delta <= (kBranchRange - 8)) {
          push(x);
          ++addr;
          continue;
        }
        rewrote = true;
        ++result.relaxed_branches;
        const std::string skip = "@sk" + std::to_string(skip_counter++);
        XInst inverted(Instruction{invert_branch(inst.op), inst.ta, inst.tb, inst.bcond, 0},
                       skip);
        inverted.labels = x.labels;
        push(inverted);
        push(XInst(Instruction{Opcode::kJal, kScratch0, 0, kTritZ, 0}, x.target));
        pending.push_back(skip);
        ++addr;
        continue;
      }
      if (inst.op == Opcode::kJal) {
        if (delta >= -(kJalRange - 8) && delta <= (kJalRange - 8)) {
          push(x);
          ++addr;
          continue;
        }
        rewrote = true;
        ++result.relaxed_branches;
        const int link = inst.ta == kScratch0 ? kScratch1 : inst.ta;
        XInst lui(Instruction{Opcode::kLui, kScratch0, 0, kTritZ, 0});
        lui.target = "@abs_hi:" + x.target;
        lui.labels = x.labels;
        XInst li(Instruction{Opcode::kLi, kScratch0, 0, kTritZ, 0});
        li.target = "@abs_lo:" + x.target;
        push(lui);
        push(li);
        push(XInst(Instruction{Opcode::kJalr, link, kScratch0, kTritZ, 0}));
        ++addr;
        continue;
      }
      push(x);
      ++addr;
    }
    if (!pending.empty()) {
      // A skip label fell off the end: bind it to an appended HALT.
      XInst halt(Instruction::halt());
      halt.labels = pending;
      next.code.push_back(std::move(halt));
    }
    p = std::move(next);
    if (!rewrote) break;
  }

  // Final resolution and encoding.
  resolver.index(p, entry);
  isa::Program& out = result.program;
  out.entry = entry;
  out.data = p.data;
  for (const auto& [label, address] : resolver.label_addr) {
    if (!label.starts_with("@")) out.symbols[label] = address;
  }
  int64_t addr = entry;
  for (const XInst& x : p.code) {
    Instruction inst = x.inst;
    if (!x.target.empty()) {
      if (x.target.starts_with("@abs_hi:")) {
        const Word9 w = Word9::from_int(resolver.address_of(x.target.substr(8)));
        inst.imm = static_cast<int>(w.slice<4>(5).to_int());
      } else if (x.target.starts_with("@abs_lo:")) {
        const Word9 w = Word9::from_int(resolver.address_of(x.target.substr(8)));
        inst.imm = static_cast<int>(w.slice<5>(0).to_int());
      } else {
        inst.imm = static_cast<int>(resolver.address_of(x.target) - addr);
      }
    }
    try {
      out.image.push_back(isa::encode(inst));
    } catch (const isa::EncodeError& e) {
      throw TranslationError("emission produced an unencodable instruction at address " +
                             std::to_string(addr) + ": " + e.what());
    }
    out.code.push_back(inst);
    ++addr;
  }
  return result;
}

}  // namespace art9::xlat
