// Redundancy checking (paper Fig. 2, last box): peephole elimination of
// meaningless instructions introduced by the mapping and operand-conversion
// stages.  Because XIR keeps branch targets symbolic, removal automatically
// retargets branches — the address recomputation the paper describes
// happens structurally at emission.
//
// Rules (each is unit-tested in tests/xlat/redundancy_test.cpp):
//   1. MV Tx, Tx                      -> drop
//   2. ADDI Tx, 0                     -> drop
//   3. MV s,B ; OP s,C ; MV B,s       -> OP B,C      (s a scratch register)
//   4. MV s,B ; MV D,s                -> MV D,B      (s a scratch register)
//   5. ADDI A,i ; ADDI A,j            -> ADDI A,i+j  (if in range)
//   6. data-op write of A immediately overwritten without a read -> drop it
//   7. branch/JAL to the immediately following instruction -> drop
//   9. STORE r,k(T7) ; LOAD r2,k(T7) -> MV r2,r (or drop when r2 == r)
// Labels pin instructions: a rule never deletes or merges across an
// instruction that carries a label (a jump may land there), except by
// migrating the labels to the surviving instruction.
#pragma once

#include "xlat/xir.hpp"

namespace art9::xlat {

struct RedundancyStats {
  std::size_t removed = 0;
  std::size_t combined = 0;
};

/// Runs the peephole rules to fixpoint (in place).
RedundancyStats remove_redundancies(XProgram& program);

}  // namespace art9::xlat
