// The hardware-level evaluation framework end to end (paper Fig. 3):
// cycle-accurate simulation + gate-level analysis + performance estimation
// for both implementation technologies.
//
//   $ ./examples/dhrystone_demo
#include <cstdio>

#include "core/benchmarks.hpp"
#include "core/hardware_framework.hpp"
#include "rv32/rv32_assembler.hpp"
#include "tech/estimator.hpp"
#include "xlat/framework.hpp"

int main() {
  using namespace art9;

  // Software-level framework: RV-32I Dhrystone -> ART-9.
  xlat::SoftwareFramework sw;
  const xlat::TranslationResult dhry =
      sw.translate(rv32::assemble_rv32(core::dhrystone().rv32));
  std::printf("Dhrystone translated: %zu rv32 -> %zu ART-9 instructions (%.2fx)\n\n",
              dhry.stats.rv32_instructions, dhry.stats.final_instructions,
              dhry.stats.expansion_ratio());

  // Hardware-level framework, once per technology.
  for (const tech::Technology& technology :
       {tech::Technology::cntfet32(), tech::Technology::fpga_binary_emulation()}) {
    core::HardwareFramework hw({}, technology);
    const core::EvaluationResult r = hw.evaluate(dhry.program, core::dhrystone().iterations);

    std::printf("--- %s ---------------------------------\n", technology.name().c_str());
    std::printf("  cycles           : %llu (%llu iterations)\n",
                static_cast<unsigned long long>(r.sim.cycles),
                static_cast<unsigned long long>(core::dhrystone().iterations));
    std::printf("  CPI              : %.3f\n", r.sim.cpi());
    std::printf("  DMIPS/MHz        : %.3f\n", r.estimate.dmips_per_mhz);
    std::printf("  clock            : %.1f MHz\n", r.estimate.clock_mhz);
    std::printf("  power            : %g W\n", r.analysis.power_w);
    std::printf("  DMIPS            : %.1f\n", r.estimate.dmips);
    std::printf("  DMIPS/W          : %.3g\n", r.estimate.dmips_per_watt);
    std::printf("  summary          : %s\n\n", tech::summarize(r.estimate).c_str());
  }

  std::printf("paper reference: 57.8 DMIPS/W on the FPGA emulation and 3.06e6 DMIPS/W\n");
  std::printf("on 32nm CNTFET ternary gates (Tables IV/V).\n");
  return 0;
}
