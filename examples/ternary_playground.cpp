// Balanced-ternary playground: the number system underneath the ART-9
// core — conversions, arithmetic, the Fig. 1 logic family, and the
// binary-coded emulation used on the FPGA.
//
//   $ ./examples/ternary_playground 1234 -567
#include <cstdio>
#include <cstdlib>

#include "ternary/arith.hpp"
#include "ternary/bct.hpp"
#include "ternary/word.hpp"

int main(int argc, char** argv) {
  using namespace art9::ternary;

  const int64_t a_value = argc > 1 ? std::atoll(argv[1]) : 1234;
  const int64_t b_value = argc > 2 ? std::atoll(argv[2]) : -567;
  if (a_value < Word9::kMinValue || a_value > Word9::kMaxValue || b_value < Word9::kMinValue ||
      b_value > Word9::kMaxValue) {
    std::fprintf(stderr, "values must be within [%lld, %lld]\n",
                 static_cast<long long>(Word9::kMinValue),
                 static_cast<long long>(Word9::kMaxValue));
    return 1;
  }

  const Word9 a = Word9::from_int(a_value);
  const Word9 b = Word9::from_int(b_value);
  auto show = [](const char* name, const Word9& w) {
    std::printf("  %-10s = %s = %lld\n", name, w.to_string().c_str(),
                static_cast<long long>(w.to_int()));
  };

  std::printf("9-trit balanced ternary (MST first; '+' = +1, '-' = -1):\n");
  std::printf("  a = %6lld = %s  (unsigned reading of the same pattern: %lld)\n",
              static_cast<long long>(a_value), a.to_string().c_str(),
              static_cast<long long>(a.to_unsigned()));
  std::printf("  b = %6lld = %s\n\n", static_cast<long long>(b_value), b.to_string().c_str());

  std::printf("arithmetic (all mod 3^9, the TALU's behaviour):\n");
  show("a + b", a + b);
  show("a - b", a - b);
  show("-a (STI)", -a);
  show("a * b", multiply(a, b));
  show("a << 1 (x3)", a.shl(1));
  show("a >> 1", a.shr(1));
  std::printf("  (shifting right divides by 3 rounding to NEAREST — a balanced\n");
  std::printf("   ternary signature: %lld / 3 = %.2f -> %lld)\n\n",
              static_cast<long long>(a_value), static_cast<double>(a_value) / 3.0,
              static_cast<long long>(a.shr(1).to_int()));

  std::printf("tritwise logic (Fig. 1):\n");
  show("AND (min)", tand(a, b));
  show("OR  (max)", tor(a, b));
  show("XOR -(ab)", txor(a, b));
  show("NTI(a)", nti(a));
  show("PTI(a)", pti(a));
  std::printf("\n");

  std::printf("binary-coded ternary (the FPGA emulation, 2 bits per trit):\n");
  const BctWord9 ea = BctWord9::encode(a);
  std::printf("  a: NEG plane = %03x, POS plane = %03x (%d bits per word)\n", ea.neg_plane(),
              ea.pos_plane(), BctWord9::kBitsPerWord);
  const BctWord9 sum = BctWord9::add(ea, BctWord9::encode(b));
  std::printf("  BCT add agrees with the ternary adder: %s (%lld)\n",
              sum.decode().to_string().c_str(), static_cast<long long>(sum.decode().to_int()));
  return 0;
}
