// Quickstart: assemble a small ART-9 program, run it on the cycle-accurate
// 5-stage pipeline, and inspect registers and pipeline statistics.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"
#include "sim/pipeline.hpp"

int main() {
  using namespace art9;

  // Sum the integers 1..100 in balanced ternary.
  const char* source = R"(
; sum = 1 + 2 + ... + 100
main:
    LIMM T1, 100     ; counter (LUI/LI pair)
    LIMM T2, 0       ; sum
    LIMM T3, 0       ; zero, for the loop test
loop:
    ADD  T2, T1      ; sum += counter
    ADDI T1, -1
    MV   T4, T1
    COMP T4, T3      ; T4 = sign(counter)
    BNE  T4, 0, loop
    HALT
)";

  const isa::Program program = isa::assemble(source);
  std::printf("assembled %zu instructions (%lld trit cells)\n\n", program.code.size(),
              static_cast<long long>(program.memory_cells()));
  std::printf("%s\n", isa::disassemble(program).c_str());

  sim::PipelineSimulator cpu(program);
  const sim::SimStats stats = cpu.run();

  std::printf("sum(1..100)   = %lld (expected 5050)\n", static_cast<long long>(cpu.reg_int(2)));
  std::printf("T2 as trits   = %s\n", cpu.reg(2).to_string().c_str());
  std::printf("cycles        = %llu\n", static_cast<unsigned long long>(stats.cycles));
  std::printf("instructions  = %llu (CPI %.3f)\n",
              static_cast<unsigned long long>(stats.instructions), stats.cpi());
  std::printf("taken-branch bubbles = %llu, load-use stalls = %llu\n",
              static_cast<unsigned long long>(stats.flush_taken_branch),
              static_cast<unsigned long long>(stats.stall_load_use));
  return cpu.reg_int(2) == 5050 ? 0 : 1;
}
