// Quickstart: assemble a small ART-9 program, run it through the unified
// sim::Engine facade on every ART-9 backend — three functional models and
// the cycle-accurate 5-stage pipeline — then run the same computation as
// RV32 assembly through the same facade (the cross-ISA seam the paper's
// baseline comparison rides).
//
//   $ ./examples/quickstart
#include <cstdio>
#include <memory>

#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"
#include "rv32/rv32_assembler.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace art9;

  // Sum the integers 1..100 in balanced ternary.
  const char* source = R"(
; sum = 1 + 2 + ... + 100
main:
    LIMM T1, 100     ; counter (LUI/LI pair)
    LIMM T2, 0       ; sum
    LIMM T3, 0       ; zero, for the loop test
loop:
    ADD  T2, T1      ; sum += counter
    ADDI T1, -1
    MV   T4, T1
    COMP T4, T3      ; T4 = sign(counter)
    BNE  T4, 0, loop
    HALT
)";

  const isa::Program program = isa::assemble(source);
  std::printf("assembled %zu instructions (%lld trit cells)\n\n", program.code.size(),
              static_cast<long long>(program.memory_cells()));
  std::printf("%s\n", isa::disassemble(program).c_str());

  // One decoded image, shared by every engine.
  const std::shared_ptr<const sim::DecodedImage> image = sim::decode(program);

  // Same program, same API, five ART-9 backends.
  std::printf("%-16s %14s %12s %8s\n", "engine", "instructions", "cycles", "sum");
  for (sim::EngineKind kind : sim::art9_engine_kinds()) {
    std::unique_ptr<sim::Engine> engine = sim::make_engine(kind, image);
    const sim::RunResult r = engine->run({});
    std::printf("%-16s %14llu %12llu %8lld\n",
                std::string(sim::engine_kind_name(kind)).c_str(),
                static_cast<unsigned long long>(r.stats.instructions),
                static_cast<unsigned long long>(r.stats.cycles),
                static_cast<long long>(r.state.art9().trf.read(2).to_int()));
  }

  // The same computation as RV32 assembly on the rv32 kinds — the binary
  // baseline behind the same facade (rv32_packed holds every value as a
  // 21-trit plane pair).
  const rv32::Rv32Program rv_program = rv32::assemble_rv32(R"(
    li   a0, 100      # counter
    li   a1, 0        # sum
loop:
    add  a1, a1, a0
    addi a0, a0, -1
    bnez a0, loop
    ebreak
)");
  for (sim::EngineKind kind : sim::rv32_engine_kinds()) {
    std::unique_ptr<sim::Engine> engine = sim::make_engine(kind, rv_program);
    const sim::RunResult r = engine->run({});
    std::printf("%-16s %14llu %12llu %8u\n",
                std::string(sim::engine_kind_name(kind)).c_str(),
                static_cast<unsigned long long>(r.stats.instructions),
                static_cast<unsigned long long>(r.stats.cycles), r.state.rv32().regs[11]);
  }

  // The retired-instruction observer: count taken loop iterations.
  std::unique_ptr<sim::Engine> observed = sim::make_engine(sim::EngineKind::kPacked, image);
  uint64_t branches = 0;
  observed->set_observer([&](const sim::Retired& r) {
    if (r.art9().op == isa::Opcode::kBne) ++branches;
  });
  const sim::RunResult r = observed->run({});
  std::printf("\nsum(1..100)   = %lld (expected 5050)\n",
              static_cast<long long>(r.state.art9().trf.read(2).to_int()));
  std::printf("loop branches = %llu (observer on the packed engine)\n",
              static_cast<unsigned long long>(branches));

  // The pipeline engine also carries the microarchitectural accounting.
  std::unique_ptr<sim::Engine> cpu = sim::make_engine(sim::EngineKind::kPipeline, image);
  const sim::RunResult p = cpu->run({});
  std::printf("pipeline      = %llu cycles, CPI %.3f, %llu taken-branch bubbles\n",
              static_cast<unsigned long long>(p.stats.cycles), p.stats.cpi(),
              static_cast<unsigned long long>(p.stats.flush_taken_branch));
  return r.state.art9().trf.read(2).to_int() == 5050 ? 0 : 1;
}
