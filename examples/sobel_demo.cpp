// Sobel filter on the ternary core: translate the benchmark, run it on the
// pipeline, and render input/output as ASCII intensity maps.
//
//   $ ./examples/sobel_demo
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/benchmarks.hpp"
#include "rv32/rv32_assembler.hpp"
#include "sim/engine.hpp"
#include "xlat/framework.hpp"

namespace {

void render(const char* title, const std::vector<int32_t>& image, int width, int32_t max_value) {
  static const char kRamp[] = " .:-=+*#%@";
  std::printf("%s\n", title);
  for (std::size_t i = 0; i < image.size(); ++i) {
    const int32_t v = image[i];
    const int level = static_cast<int>((static_cast<int64_t>(v) * 9) / (max_value ? max_value : 1));
    std::printf("%c%c", kRamp[level < 0 ? 0 : (level > 9 ? 9 : level)],
                kRamp[level < 0 ? 0 : (level > 9 ? 9 : level)]);
    if ((i + 1) % static_cast<std::size_t>(width) == 0) std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace art9;

  const core::BenchmarkSources& bench = core::sobel();
  xlat::SoftwareFramework framework;
  const xlat::TranslationResult xl =
      framework.translate(rv32::assemble_rv32(bench.rv32));

  const std::unique_ptr<sim::Engine> cpu = sim::make_engine(sim::EngineKind::kPipeline, xl.program);
  const sim::RunResult result = cpu->run({});
  const sim::SimStats& stats = result.stats;

  render("input image:", core::sobel_input(), core::kSobelDim, 40);

  // Read the interior gradient image back out of the ternary data memory.
  const int inner = core::kSobelDim - 2;
  std::vector<int32_t> out;
  int32_t max_value = 1;
  for (int i = 0; i < inner * inner; ++i) {
    const auto v = static_cast<int32_t>(
        result.state.art9().tdm.peek(core::kSobelOutAddr + static_cast<int64_t>(i) * 4).to_int());
    out.push_back(v);
    if (v > max_value) max_value = v;
  }
  render("gradient magnitude (|Gx| + |Gy|), computed on the ART-9 core:", out, inner, max_value);

  const std::vector<int32_t> expected = core::sobel_expected();
  const bool ok = std::equal(out.begin(), out.end(), expected.begin());
  std::printf("pipeline cycles: %llu, instructions: %llu, matches host reference: %s\n",
              static_cast<unsigned long long>(stats.cycles),
              static_cast<unsigned long long>(stats.instructions), ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
