// The software-level compiling framework in action (paper Fig. 2):
// RV-32I assembly in, ART-9 assembly out, with per-stage statistics and
// a differential run proving the translation preserved the semantics.
//
//   $ ./examples/translate_rv32
#include <cstdio>
#include <memory>

#include "rv32/rv32_assembler.hpp"
#include "rv32/rv32_sim.hpp"
#include "sim/engine.hpp"
#include "xlat/framework.hpp"

int main() {
  using namespace art9;

  // A compiler-shaped RV-32I fragment: GCD of two constants by repeated
  // subtraction, result stored to memory.
  const char* rv32_source = R"(
    li   a0, 252
    li   a1, 105
gcd:
    beq  a0, a1, done
    blt  a0, a1, swap
    sub  a0, a0, a1
    j    gcd
swap:
    sub  a1, a1, a0
    j    gcd
done:
    sw   a0, 64(zero)
    ebreak
)";

  std::printf("--- RV-32I input -------------------------------------------\n%s\n", rv32_source);

  const rv32::Rv32Program rv_program = rv32::assemble_rv32(rv32_source);
  xlat::SoftwareFramework framework;
  const xlat::TranslationResult result = framework.translate(rv_program);

  std::printf("--- ART-9 output (instruction mapping + operand conversion\n");
  std::printf("--- + redundancy checking) ---------------------------------\n");
  std::printf("%s\n", xlat::to_assembly_text(result.program).c_str());

  std::printf("--- statistics ---------------------------------------------\n");
  std::printf("rv32 instructions      : %zu (%lld bit cells)\n", result.stats.rv32_instructions,
              static_cast<long long>(rv_program.memory_cells()));
  std::printf("art9 instructions      : %zu (%lld trit cells)\n",
              result.stats.final_instructions,
              static_cast<long long>(result.program.memory_cells()));
  std::printf("expansion ratio        : %.2fx\n", result.stats.expansion_ratio());
  std::printf("removed by redundancy  : %zu\n", result.stats.removed_redundant);
  std::printf("spilled registers      : %zu\n", result.stats.spilled_registers);
  for (int reg : {10, 11}) {
    std::printf("x%-2d lives in           : %s\n", reg, result.location(reg).to_string().c_str());
  }

  // Differential proof.
  rv32::Rv32Simulator rv(rv_program);
  rv.run();
  const auto t9 = sim::make_engine(sim::EngineKind::kFunctional, result.program);
  const sim::RunResult t9_result = t9->run({});
  const auto rv_gcd = static_cast<int32_t>(rv.load_word(64));
  const auto t9_gcd = t9_result.state.art9().tdm.peek(64).to_int();
  std::printf("\ngcd(252, 105) -> rv32: %d, art9: %lld (both should be 21)\n", rv_gcd,
              static_cast<long long>(t9_gcd));
  return (rv_gcd == 21 && t9_gcd == 21) ? 0 : 1;
}
