// serve_demo — drive the art9-serve HTTP API end to end: upload a
// program twice (the second is a content-hash cache hit), run it as a
// job, poll to the result, cancel a long-running job, and read the
// metrics.
//
//   serve_demo                      self-contained: starts an in-process
//                                   SimulationServer on an ephemeral port
//   serve_demo HOST:PORT            drives an already-running art9-serve
//   serve_demo HOST:PORT --shutdown ...and asks it to drain afterwards
//
// The HOST:PORT form is what the CI smoke leg uses against a real
// art9-serve process; the output is the transcript in the README's
// "Serving" section.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "serve/server.hpp"

namespace {

constexpr const char* kSumProgram = R"(
    LIMM T1, 50
    LIMM T2, 0
  loop:
    ADD  T2, T1
    ADDI T1, -1
    MV   T3, T1
    COMP T3, T4
    BNE  T3, 0, loop
    HALT
)";

// Never halts — the job to cancel.
constexpr const char* kSpinProgram = "loop:\n  ADDI T1, 1\n  JAL T0, loop\n";

void show(const char* label, const art9::serve::HttpResponse& response) {
  std::printf("-- %s -> %d\n%s", label, response.status, response.body.c_str());
}

/// The job id out of a 202 body without a JSON reader round trip: the
/// body opens with {"job": N.
uint64_t job_id_of(const art9::serve::HttpResponse& response) {
  return static_cast<uint64_t>(std::atoll(response.body.c_str() + 8));
}

std::string image_id_of(const art9::serve::HttpResponse& response) {
  // {"id": "16 hex digits", ...
  return response.body.substr(8, 16);
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  bool shutdown_after = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--shutdown") {
      shutdown_after = true;
    } else if (const auto colon = arg.find(':'); colon != std::string::npos) {
      host = arg.substr(0, colon);
      port = static_cast<uint16_t>(std::atoi(arg.c_str() + colon + 1));
    } else {
      std::fprintf(stderr, "usage: serve_demo [HOST:PORT] [--shutdown]\n");
      return 2;
    }
  }

  try {
    // Self-contained mode: bring up the server in-process.
    std::unique_ptr<art9::serve::SimulationServer> local;
    if (port == 0) {
      local = std::make_unique<art9::serve::SimulationServer>();
      local->start();
      port = local->port();
      std::printf("serve_demo: in-process server on %s:%u\n", host.c_str(),
                  static_cast<unsigned>(port));
    }
    art9::serve::HttpClient client(host, port);

    // 1. Upload: the first POST runs the assemble/decode pipeline (201),
    //    the identical re-upload is a cache hit (200, "cached": true).
    const auto upload = client.post("/v1/images?format=art9", kSumProgram);
    show("POST /v1/images (first)", upload);
    show("POST /v1/images (again)", client.post("/v1/images?format=art9", kSumProgram));
    if (upload.status != 201) return 1;
    const std::string image = image_id_of(upload);

    // 2. Run it: submit, then poll to the terminal state.
    const auto submitted = client.post(
        "/v1/jobs", "{\"image\": \"" + image + "\", \"engine\": \"functional\"}");
    show("POST /v1/jobs", submitted);
    if (submitted.status != 202) return 1;
    const std::string job_path = "/v1/jobs/" + std::to_string(job_id_of(submitted));
    art9::serve::HttpResponse status;
    for (int poll = 0; poll < 2000; ++poll) {
      status = client.get(job_path);
      if (status.body.find("\"state\": \"done\"") != std::string::npos) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    show("GET job (done)", status);

    // 3. Cancel: a program that never halts, cut off cooperatively.
    const auto spin = client.post("/v1/images?format=art9", kSpinProgram);
    const auto spinning = client.post(
        "/v1/jobs", "{\"image\": \"" + image_id_of(spin) +
                        "\", \"engine\": \"functional\", \"slice_steps\": 10000}");
    const std::string spin_path = "/v1/jobs/" + std::to_string(job_id_of(spinning));
    show("DELETE spinning job", client.del(spin_path));
    for (int poll = 0; poll < 2000; ++poll) {
      status = client.get(spin_path);
      if (status.body.find("\"state\": \"done\"") != std::string::npos) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    show("GET cancelled job", status);

    // 4. The service's own view of all of the above.
    show("GET /v1/metrics", client.get("/v1/metrics"));

    if (shutdown_after) show("POST /v1/shutdown", client.post("/v1/shutdown", ""));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_demo: %s\n", e.what());
    return 1;
  }
}
