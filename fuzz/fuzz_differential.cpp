// libFuzzer entry point over the differential harness (see
// src/fuzz/harness.hpp for the input grammar and the four oracle modes).
//
// Build with -DART9_FUZZ=ON (requires Clang for -fsanitize=fuzzer),
// ideally together with -DART9_SANITIZE=address,undefined:
//
//   cmake -B build-fuzz -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++ \
//         -DART9_FUZZ=ON -DART9_SANITIZE=address,undefined
//   cmake --build build-fuzz --target fuzz_differential
//   build-fuzz/fuzz/fuzz_differential corpus/ -max_len=160
//
// A divergence aborts so libFuzzer minimizes and saves the input; replay
// saved artifacts with `art9-fuzz <artifact>` (no fuzzer runtime needed).
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "fuzz/harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const art9::fuzz::FuzzResult result = art9::fuzz::run_fuzz_case(data, size);
  if (!result.ok) {
    std::fprintf(stderr, "DIVERGENCE [%s] %s\n", result.mode.c_str(), result.detail.c_str());
    std::abort();
  }
  return 0;
}
