// art9-run — execute a .t9 program image on the ART-9 simulators.
//
//   art9-run program.t9 [--functional | --packed] [--max-cycles N]
//            [--dump-regs] [--dump-mem LO HI] [--no-forwarding]
//            [--branch-in-ex] [--stats]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "isa/image_io.hpp"
#include "sim/functional_sim.hpp"
#include "sim/packed_sim.hpp"
#include "sim/pipeline.hpp"
#include "sim/trace.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: art9-run <program.t9> [--functional | --packed] [--max-cycles N]\n"
               "                [--dump-regs] [--dump-mem LO HI] [--no-forwarding]\n"
               "                [--branch-in-ex] [--stats] [--trace N]\n");
  return 2;
}

void dump_regs(const art9::sim::ArchState& state) {
  for (int r = 0; r < art9::isa::kNumRegisters; ++r) {
    const auto& w = state.trf.read(r);
    std::printf("  T%d = %s = %lld\n", r, w.to_string().c_str(),
                static_cast<long long>(w.to_int()));
  }
}

/// Shared run report of the two functional engines (the pipeline engine
/// prints cycles/CPI separately): halt line, optional registers, optional
/// TDM window.
void report_functional_run(const art9::sim::ArchState& state, const art9::sim::SimStats& stats,
                           bool want_regs, int64_t mem_lo, int64_t mem_hi) {
  std::printf("halted=%s instructions=%llu\n",
              stats.halt == art9::sim::HaltReason::kHalted ? "yes" : "budget",
              static_cast<unsigned long long>(stats.instructions));
  if (want_regs) dump_regs(state);
  for (int64_t a = mem_lo; a <= mem_hi; ++a) {
    std::printf("  tdm[%lld] = %lld\n", static_cast<long long>(a),
                static_cast<long long>(state.tdm.peek(a).to_int()));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  bool functional = false;
  bool packed = false;
  bool want_regs = false;
  bool want_stats = false;
  int64_t mem_lo = 0;
  int64_t mem_hi = -1;
  long long trace_cycles = 0;
  art9::sim::PipelineConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--functional") {
      functional = true;
    } else if (arg == "--packed") {
      packed = true;
    } else if (arg == "--max-cycles" && i + 1 < argc) {
      config.max_cycles = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--dump-regs") {
      want_regs = true;
    } else if (arg == "--stats") {
      want_stats = true;
    } else if (arg == "--dump-mem" && i + 2 < argc) {
      mem_lo = std::atoll(argv[++i]);
      mem_hi = std::atoll(argv[++i]);
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_cycles = std::atoll(argv[++i]);
    } else if (arg == "--no-forwarding") {
      config.ex_forwarding = false;
    } else if (arg == "--branch-in-ex") {
      config.branch_in_id = false;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (input.empty()) {
      input = arg;
    } else {
      return usage();
    }
  }
  if (input.empty()) return usage();

  try {
    const art9::isa::Program program = art9::isa::read_image_file(input);
    if (packed) {
      art9::sim::PackedFunctionalSimulator sim(program);
      const art9::sim::SimStats stats = sim.run(config.max_cycles);
      report_functional_run(sim.unpack_state(), stats, want_regs, mem_lo, mem_hi);
      return 0;
    }
    if (functional) {
      art9::sim::FunctionalSimulator sim(program);
      const art9::sim::SimStats stats = sim.run(config.max_cycles);
      report_functional_run(sim.state(), stats, want_regs, mem_lo, mem_hi);
      return 0;
    }
    art9::sim::PipelineSimulator sim(program, config);
    if (trace_cycles > 0) {
      sim.set_tracer([&](const art9::sim::CycleTrace& t) {
        if (static_cast<long long>(t.cycle) <= trace_cycles) {
          std::printf("%s\n", art9::sim::render_trace(t).c_str());
        }
      });
    }
    const art9::sim::SimStats stats = sim.run();
    std::printf("halted=%s cycles=%llu instructions=%llu CPI=%.3f\n",
                stats.halt == art9::sim::HaltReason::kHalted ? "yes" : "budget",
                static_cast<unsigned long long>(stats.cycles),
                static_cast<unsigned long long>(stats.instructions), stats.cpi());
    if (want_stats) {
      std::printf("  load-use stalls      = %llu\n",
                  static_cast<unsigned long long>(stats.stall_load_use));
      std::printf("  branch-hazard stalls = %llu\n",
                  static_cast<unsigned long long>(stats.stall_branch_hazard));
      std::printf("  raw stalls           = %llu\n",
                  static_cast<unsigned long long>(stats.stall_raw));
      std::printf("  taken-branch flushes = %llu\n",
                  static_cast<unsigned long long>(stats.flush_taken_branch));
    }
    if (want_regs) dump_regs(sim.state());
    for (int64_t a = mem_lo; a <= mem_hi; ++a) {
      std::printf("  tdm[%lld] = %lld\n", static_cast<long long>(a),
                  static_cast<long long>(sim.state().tdm.peek(a).to_int()));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "art9-run: %s\n", e.what());
    return 1;
  }
  return 0;
}
