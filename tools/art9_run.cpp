// art9-run — execute a .t9 program image on any ART-9 simulation engine
// through the unified sim::Engine facade.
//
//   art9-run program.t9 [--engine=lazy|functional|packed|pipeline|pipeline_packed]
//            [--max-cycles N] [--dump-regs] [--dump-mem LO HI]
//            [--no-forwarding] [--branch-in-ex] [--stats] [--trace N]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "isa/image_io.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: art9-run <program.t9>\n"
               "                [--engine=lazy|functional|packed|pipeline|pipeline_packed]\n"
               "                [--max-cycles N] [--dump-regs] [--dump-mem LO HI]\n"
               "                [--no-forwarding] [--branch-in-ex] [--stats] [--trace N]\n"
               "engine defaults to pipeline (the cycle-accurate model); pipeline_packed is\n"
               "the same 5-stage model on plane-packed words; --trace and the\n"
               "microarchitecture switches apply to the pipeline engines only\n");
  return 2;
}

void dump_regs(const art9::sim::ArchState& state) {
  for (int r = 0; r < art9::isa::kNumRegisters; ++r) {
    const auto& w = state.trf.read(r);
    std::printf("  T%d = %s = %lld\n", r, w.to_string().c_str(),
                static_cast<long long>(w.to_int()));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  art9::sim::EngineKind kind = art9::sim::EngineKind::kPipeline;
  bool want_regs = false;
  bool want_stats = false;
  int64_t mem_lo = 0;
  int64_t mem_hi = -1;
  long long trace_cycles = 0;
  uint64_t max_cycles = 100'000'000;
  art9::sim::EngineOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--engine=", 0) == 0) {
      const auto parsed = art9::sim::parse_engine_kind(arg.substr(9));
      if (!parsed) {
        std::fprintf(stderr, "art9-run: unknown engine '%s'\n", arg.substr(9).c_str());
        return usage();
      }
      kind = *parsed;
    } else if (arg == "--max-cycles" && i + 1 < argc) {
      max_cycles = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--dump-regs") {
      want_regs = true;
    } else if (arg == "--stats") {
      want_stats = true;
    } else if (arg == "--dump-mem" && i + 2 < argc) {
      mem_lo = std::atoll(argv[++i]);
      mem_hi = std::atoll(argv[++i]);
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_cycles = std::atoll(argv[++i]);
    } else if (arg == "--no-forwarding") {
      options.pipeline.ex_forwarding = false;
    } else if (arg == "--branch-in-ex") {
      options.pipeline.branch_in_id = false;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (input.empty()) {
      input = arg;
    } else {
      return usage();
    }
  }
  if (input.empty()) return usage();

  try {
    const art9::isa::Program program = art9::isa::read_image_file(input);
    if (trace_cycles > 0) {
      options.tracer = [trace_cycles](const art9::sim::CycleTrace& t) {
        if (static_cast<long long>(t.cycle) <= trace_cycles) {
          std::printf("%s\n", art9::sim::render_trace(t).c_str());
        }
      };
    }
    // The CLI budget is the whole budget: mirror it into the pipeline
    // config so the engine's per-run cap (the tighter of the two) is
    // exactly the flag value.
    options.pipeline.max_cycles = max_cycles;
    const std::unique_ptr<art9::sim::Engine> engine = art9::sim::make_engine(kind, program, options);
    const art9::sim::RunResult result = engine->run({max_cycles});

    const bool cycle_accurate = art9::sim::is_cycle_accurate(kind);
    std::printf("engine=%s halted=%s instructions=%llu",
                std::string(art9::sim::engine_kind_name(kind)).c_str(),
                result.halt == art9::sim::HaltReason::kHalted ? "yes" : "budget",
                static_cast<unsigned long long>(result.stats.instructions));
    if (cycle_accurate) {
      std::printf(" cycles=%llu CPI=%.3f", static_cast<unsigned long long>(result.stats.cycles),
                  result.stats.cpi());
    }
    std::printf("\n");
    if (want_stats && cycle_accurate) {
      std::printf("  load-use stalls      = %llu\n",
                  static_cast<unsigned long long>(result.stats.stall_load_use));
      std::printf("  branch-hazard stalls = %llu\n",
                  static_cast<unsigned long long>(result.stats.stall_branch_hazard));
      std::printf("  raw stalls           = %llu\n",
                  static_cast<unsigned long long>(result.stats.stall_raw));
      std::printf("  taken-branch flushes = %llu\n",
                  static_cast<unsigned long long>(result.stats.flush_taken_branch));
    }
    if (want_regs) dump_regs(result.state);
    for (int64_t a = mem_lo; a <= mem_hi; ++a) {
      std::printf("  tdm[%lld] = %lld\n", static_cast<long long>(a),
                  static_cast<long long>(result.state.tdm.peek(a).to_int()));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "art9-run: %s\n", e.what());
    return 1;
  }
  return 0;
}
