// art9-run — execute a program on any simulation engine through the
// unified cross-ISA sim::Engine facade, scheduled as one
// SimulationService job so the CLI reports the structured JobOutcome
// (and exposes the service's deadline / checkpoint-retry / fault-drill
// controls).
//
//   art9-run program.t9 [--engine=lazy|functional|packed|superblock|fleet|pipeline|
//                                  pipeline_packed]
//            [--lanes N] [--max-cycles N] [--dump-regs] [--dump-mem LO HI]
//            [--no-forwarding] [--branch-in-ex] [--stats] [--trace N]
//            [--deadline-ms N] [--checkpoint-every N] [--retries N]
//            [--fault-at N] [--fault-seed N]
//   art9-run program.s  --engine=rv32|rv32_superblock|rv32_packed [--max-cycles N]
//            [--dump-regs] [--dump-mem LO HI] [...same service flags]
//
// ART-9 engines consume a .t9 image; the rv32 engines consume RV32I(+M)
// assembly text (the same dialect the benchmark corpus is written in).
//
// Exit codes, one per outcome class:
//   0 completed   3 trapped            4 budget_exhausted
//   5 deadline_exceeded   6 cancelled   7 faulted
//   1 load/internal error   2 usage error
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "isa/image_io.hpp"
#include "rv32/rv32_assembler.hpp"
#include "sim/engine.hpp"
#include "sim/fault_injection.hpp"
#include "sim/service.hpp"
#include "sim/trace.hpp"

namespace {

// `help` routes the same text to stdout with exit 0 (--help); every
// misuse goes to stderr with exit 2.
int usage(bool help = false) {
  std::fprintf(help ? stdout : stderr,
               "usage: art9-run <program.t9>\n"
               "                [--engine=lazy|functional|packed|superblock|fleet|pipeline|\n"
               "                           pipeline_packed]\n"
               "                [--lanes N]\n"
               "                [--max-cycles N] [--dump-regs] [--dump-mem LO HI]\n"
               "                [--no-forwarding] [--branch-in-ex] [--stats] [--trace N]\n"
               "                [--deadline-ms N] [--checkpoint-every N] [--retries N]\n"
               "                [--fault-at N] [--fault-seed N]\n"
               "       art9-run <program.s> --engine=rv32|rv32_superblock|rv32_packed\n"
               "                [--max-cycles N] [--dump-regs] [--dump-mem LO HI]\n"
               "engine defaults to pipeline (the cycle-accurate model); pipeline_packed is\n"
               "the same 5-stage model on plane-packed words; superblock and\n"
               "rv32_superblock run the block translation tier (fused macro-ops,\n"
               "block-chained dispatch) over the fastest functional datapath of each\n"
               "ISA; fleet runs the bit-sliced backend (32 machines per plane word) —\n"
               "pair it with --lanes N to run N copies of the program as one\n"
               "service cohort, reporting a per-lane outcome summary and exiting\n"
               "with the worst lane's code (--lanes needs --engine=fleet and is\n"
               "incompatible with the checkpoint/retry/fault flags); --trace and the\n"
               "microarchitecture switches apply to the pipeline engines only.\n"
               "The rv32 engines assemble RV32I(+M) source (rv32_packed holds its words\n"
               "as 21-trit plane pairs) and dump x-registers / RAM words.\n"
               "--deadline-ms / --checkpoint-every / --retries wire the SimulationService\n"
               "per-job controls; --fault-at / --fault-seed inject a deterministic\n"
               "transient fault (a recovery drill: pair with --checkpoint-every and\n"
               "--retries).  The exit code encodes the outcome class: 0 completed,\n"
               "3 trapped, 4 budget_exhausted, 5 deadline_exceeded, 6 cancelled,\n"
               "7 faulted (1 = load error, 2 = usage).\n"
               "Exit codes:\n"
               "  0  completed          program reached its halt convention\n"
               "  3  trapped            the program itself trapped (SimError)\n"
               "  4  budget_exhausted   --max-cycles spent before halting\n"
               "  5  deadline_exceeded  --deadline-ms cut the run short\n"
               "  6  cancelled          job cancelled before resolution\n"
               "  7  faulted            injected fault outran --retries\n"
               "  1  load/internal error      2  usage error\n");
  return help ? 0 : 2;
}

int outcome_exit_code(art9::sim::JobOutcome outcome) {
  switch (outcome) {
    case art9::sim::JobOutcome::kCompleted: return 0;
    case art9::sim::JobOutcome::kTrapped: return 3;
    case art9::sim::JobOutcome::kBudgetExhausted: return 4;
    case art9::sim::JobOutcome::kDeadlineExceeded: return 5;
    case art9::sim::JobOutcome::kCancelled: return 6;
    case art9::sim::JobOutcome::kFaulted: return 7;
  }
  return 1;
}

void dump_regs(const art9::sim::MachineState& state) {
  if (state.is_rv32()) {
    for (int r = 0; r < 32; ++r) {
      std::printf("  x%-2d (%-4s) = 0x%08x = %lld\n", r,
                  std::string(art9::rv32::abi_name(r)).c_str(), state.rv32().regs[size_t(r)],
                  static_cast<long long>(static_cast<int32_t>(state.rv32().regs[size_t(r)])));
    }
    return;
  }
  for (int r = 0; r < art9::isa::kNumRegisters; ++r) {
    const auto& w = state.art9().trf.read(r);
    std::printf("  T%d = %s = %lld\n", r, w.to_string().c_str(),
                static_cast<long long>(w.to_int()));
  }
}

void dump_mem(const art9::sim::MachineState& state, int64_t lo, int64_t hi) {
  if (state.is_rv32()) {
    // Word view of the byte RAM, 4-aligned inside [lo, hi].
    const auto& ram = state.rv32().ram;
    for (int64_t a = (lo + 3) / 4 * 4; a + 3 <= hi; a += 4) {
      if (a < 0 || static_cast<std::size_t>(a) + 4 > ram.size()) continue;
      uint32_t v = 0;
      for (int b = 0; b < 4; ++b) v |= static_cast<uint32_t>(ram[size_t(a + b)]) << (8 * b);
      std::printf("  ram[%lld] = 0x%08x = %lld\n", static_cast<long long>(a), v,
                  static_cast<long long>(static_cast<int32_t>(v)));
    }
    return;
  }
  for (int64_t a = lo; a <= hi; ++a) {
    std::printf("  tdm[%lld] = %lld\n", static_cast<long long>(a),
                static_cast<long long>(state.art9().tdm.peek(a).to_int()));
  }
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  art9::sim::EngineKind kind = art9::sim::EngineKind::kPipeline;
  bool want_regs = false;
  bool want_stats = false;
  int64_t mem_lo = 0;
  int64_t mem_hi = -1;
  long long trace_cycles = 0;
  long long lanes = 0;  // 0 = no --lanes flag (solo job)
  uint64_t max_cycles = 100'000'000;
  long long fault_at = 0;
  long long fault_seed = 0;
  art9::sim::EngineOptions options;
  art9::sim::JobControls controls;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      return usage(true);
    } else if (arg.rfind("--engine=", 0) == 0) {
      const auto parsed = art9::sim::parse_engine_kind(arg.substr(9));
      if (!parsed) {
        std::fprintf(stderr, "art9-run: unknown engine '%s'\n", arg.substr(9).c_str());
        return usage();
      }
      kind = *parsed;
    } else if (arg == "--lanes" && i + 1 < argc) {
      lanes = std::atoll(argv[++i]);
    } else if (arg == "--max-cycles" && i + 1 < argc) {
      max_cycles = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      controls.deadline = std::chrono::milliseconds(std::atoll(argv[++i]));
    } else if (arg == "--checkpoint-every" && i + 1 < argc) {
      controls.checkpoint_every = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--retries" && i + 1 < argc) {
      controls.retries = static_cast<unsigned>(std::atoll(argv[++i]));
    } else if (arg == "--fault-at" && i + 1 < argc) {
      fault_at = std::atoll(argv[++i]);
    } else if (arg == "--fault-seed" && i + 1 < argc) {
      fault_seed = std::atoll(argv[++i]);
    } else if (arg == "--dump-regs") {
      want_regs = true;
    } else if (arg == "--stats") {
      want_stats = true;
    } else if (arg == "--dump-mem" && i + 2 < argc) {
      mem_lo = std::atoll(argv[++i]);
      mem_hi = std::atoll(argv[++i]);
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_cycles = std::atoll(argv[++i]);
    } else if (arg == "--no-forwarding") {
      options.pipeline.ex_forwarding = false;
    } else if (arg == "--branch-in-ex") {
      options.pipeline.branch_in_id = false;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (input.empty()) {
      input = arg;
    } else {
      return usage();
    }
  }
  if (input.empty()) return usage();
  if (lanes != 0) {
    // The cohort path maps straight onto SimulationService::submit_cohort,
    // which owns the same restrictions: fleet jobs only, no
    // checkpoint/retry/fault machinery inside a packed word.
    if (kind != art9::sim::EngineKind::kFleet) {
      std::fprintf(stderr, "art9-run: --lanes needs --engine=fleet\n");
      return usage();
    }
    if (lanes < 1) {
      std::fprintf(stderr, "art9-run: --lanes must be >= 1\n");
      return usage();
    }
    if (controls.checkpoint_every != 0 || controls.retries != 0 || fault_at > 0 ||
        fault_seed > 0) {
      std::fprintf(stderr,
                   "art9-run: --lanes cannot be combined with --checkpoint-every, "
                   "--retries or --fault-*\n");
      return usage();
    }
  }

  try {
    if (trace_cycles > 0) {
      options.tracer = [trace_cycles](const art9::sim::CycleTrace& t) {
        if (static_cast<long long>(t.cycle) <= trace_cycles) {
          std::printf("%s\n", art9::sim::render_trace(t).c_str());
        }
      };
    }
    // The CLI budget is the whole budget: mirror it into the pipeline
    // config so the engine's per-run cap (the tighter of the two) is
    // exactly the flag value.
    options.pipeline.max_cycles = max_cycles;
    if (fault_at > 0 || fault_seed > 0) {
      auto plan = std::make_shared<art9::sim::FaultPlan>(
          fault_at > 0
              ? art9::sim::FaultPlan{.throw_at_step = static_cast<uint64_t>(fault_at),
                                     .seed = static_cast<uint64_t>(fault_seed)}
              : art9::sim::FaultPlan::seeded(static_cast<uint64_t>(fault_seed), max_cycles));
      controls.fault = std::move(plan);
    }
    // The engine kind decides the front end: the rv32 kinds assemble
    // RV32 source, the ART-9 kinds read a .t9 image.
    const art9::sim::EngineImage image =
        art9::sim::is_rv32(kind)
            ? art9::sim::EngineImage(art9::rv32::decode(
                  art9::rv32::assemble_rv32(read_text_file(input))))
            : art9::sim::EngineImage(art9::sim::decode(art9::isa::read_image_file(input)));

    // One job through the service: the same scheduling, outcome and
    // recovery machinery the batch/network front ends use.
    art9::sim::SimulationService service(1);

    if (lanes > 1) {
      // --lanes: N copies of the program as one bit-sliced cohort.  Every
      // lane gets its own JobResult; the dump flags read lane 0 and the
      // exit code is the worst lane's outcome class.
      std::vector<art9::sim::SimulationService::Job> jobs(
          static_cast<std::size_t>(lanes),
          art9::sim::SimulationService::Job{image, kind, art9::sim::RunOptions{max_cycles},
                                            options, controls});
      const std::vector<art9::sim::JobHandle> handles = service.submit_cohort(std::move(jobs));
      int worst = 0;
      unsigned long long lanes_completed = 0;
      for (std::size_t lane = 0; lane < handles.size(); ++lane) {
        const art9::sim::JobResult& lane_result = handles[lane].result();
        std::printf("lane=%zu outcome=%s instructions=%llu\n", lane,
                    std::string(art9::sim::job_outcome_name(lane_result.outcome)).c_str(),
                    static_cast<unsigned long long>(lane_result.run.stats.instructions));
        if (!lane_result.error.empty()) {
          std::fprintf(stderr, "art9-run: lane %zu: %s\n", lane, lane_result.error.c_str());
        }
        if (lane_result.outcome == art9::sim::JobOutcome::kCompleted) ++lanes_completed;
        worst = std::max(worst, outcome_exit_code(lane_result.outcome));
      }
      std::printf("engine=%s lanes=%zu completed=%llu\n",
                  std::string(art9::sim::engine_kind_name(kind)).c_str(), handles.size(),
                  lanes_completed);
      if (want_regs) dump_regs(handles.front().result().run.state);
      if (mem_hi >= mem_lo) dump_mem(handles.front().result().run.state, mem_lo, mem_hi);
      return worst;
    }

    const art9::sim::JobHandle handle = service.submit(art9::sim::SimulationService::Job{
        image, kind, art9::sim::RunOptions{max_cycles}, options, controls});
    const art9::sim::JobResult& result = handle.result();

    const bool cycle_accurate = art9::sim::is_cycle_accurate(kind);
    std::printf("engine=%s outcome=%s instructions=%llu",
                std::string(art9::sim::engine_kind_name(kind)).c_str(),
                std::string(art9::sim::job_outcome_name(result.outcome)).c_str(),
                static_cast<unsigned long long>(result.run.stats.instructions));
    if (cycle_accurate) {
      std::printf(" cycles=%llu CPI=%.3f",
                  static_cast<unsigned long long>(result.run.stats.cycles),
                  result.run.stats.cpi());
    }
    if (result.retries > 0) {
      std::printf(" retries=%u resumed=%s", result.retries, result.resumed ? "yes" : "no");
    }
    if (controls.checkpoint_every > 0) {
      std::printf(" checkpoints=%llu", static_cast<unsigned long long>(result.checkpoints));
      if (result.corrupt_checkpoints > 0) {
        std::printf(" corrupt_checkpoints=%llu",
                    static_cast<unsigned long long>(result.corrupt_checkpoints));
      }
    }
    std::printf("\n");
    if (!result.error.empty()) std::fprintf(stderr, "art9-run: %s\n", result.error.c_str());
    if (want_stats && cycle_accurate) {
      std::printf("  load-use stalls      = %llu\n",
                  static_cast<unsigned long long>(result.run.stats.stall_load_use));
      std::printf("  branch-hazard stalls = %llu\n",
                  static_cast<unsigned long long>(result.run.stats.stall_branch_hazard));
      std::printf("  raw stalls           = %llu\n",
                  static_cast<unsigned long long>(result.run.stats.stall_raw));
      std::printf("  taken-branch flushes = %llu\n",
                  static_cast<unsigned long long>(result.run.stats.flush_taken_branch));
    }
    if (want_regs) dump_regs(result.run.state);
    if (mem_hi >= mem_lo) dump_mem(result.run.state, mem_lo, mem_hi);
    return outcome_exit_code(result.outcome);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "art9-run: %s\n", e.what());
    return 1;
  }
}
