// art9-serve — the HTTP simulation-as-a-service front end: a
// serve::SimulationServer on a loopback (or given) address, draining
// cleanly on SIGINT/SIGTERM or POST /v1/shutdown.
//
//   art9-serve [--bind ADDR] [--port N] [--port-file PATH]
//              [--threads N] [--cache-mb N] [--max-queued N]
//              [--max-job-steps N] [--max-inflight-steps N]
//
//   POST   /v1/images?format=art9|rv32|rv32_translate   (body = asm text)
//   POST   /v1/jobs        GET/DELETE /v1/jobs/{id}
//   GET    /v1/metrics     POST /v1/shutdown
//
// --port 0 (the default) binds an ephemeral port; --port-file writes the
// resolved port as a decimal line so scripts (the CI smoke leg) can find
// it without racing the log output.  Exit code 0 after a clean drain.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "serve/server.hpp"

namespace {

int usage(bool help) {
  std::fprintf(help ? stdout : stderr,
               "usage: art9-serve [--bind ADDR] [--port N] [--port-file PATH]\n"
               "                  [--threads N] [--cache-mb N] [--max-queued N]\n"
               "                  [--max-job-steps N] [--max-inflight-steps N]\n"
               "Serves the SimulationService over HTTP/1.1 on ADDR:N (default\n"
               "127.0.0.1, ephemeral port; --port-file receives the resolved port).\n"
               "Routes: POST /v1/images?format=art9|rv32|rv32_translate (body = asm),\n"
               "POST /v1/jobs, GET|DELETE /v1/jobs/{id}, GET /v1/metrics,\n"
               "POST /v1/shutdown.  SIGINT/SIGTERM or /v1/shutdown begin a drain:\n"
               "in-flight requests and admitted jobs resolve, then the process\n"
               "exits 0.\n");
  return help ? 0 : 2;
}

art9::serve::SimulationServer* g_server = nullptr;

// Async-signal-safe by design: request_stop() is an atomic store plus
// shutdown(2) on the listener.
void handle_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  art9::serve::SimulationServer::Options options;
  std::string port_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      return usage(true);
    } else if (arg == "--bind" && i + 1 < argc) {
      options.http.bind = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      options.http.port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--port-file" && i + 1 < argc) {
      port_file = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      options.service_threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--cache-mb" && i + 1 < argc) {
      options.cache_bytes = static_cast<std::size_t>(std::atoll(argv[++i])) << 20;
    } else if (arg == "--max-queued" && i + 1 < argc) {
      options.max_queued_jobs = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--max-job-steps" && i + 1 < argc) {
      options.max_job_steps = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--max-inflight-steps" && i + 1 < argc) {
      options.max_inflight_steps = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else {
      return usage(false);
    }
  }

  try {
    art9::serve::SimulationServer server(options);
    server.start();
    g_server = &server;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    std::printf("art9-serve: listening on %s:%u\n", options.http.bind.c_str(),
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);
    if (!port_file.empty()) {
      std::FILE* f = std::fopen(port_file.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "art9-serve: cannot write %s\n", port_file.c_str());
        return 1;
      }
      std::fprintf(f, "%u\n", static_cast<unsigned>(server.port()));
      std::fclose(f);
    }

    server.wait();  // blocks until SIGINT/SIGTERM or POST /v1/shutdown

    // Reset handlers before the server (and g_server) go away.
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    g_server = nullptr;

    const auto& service = server.service();
    std::printf("art9-serve: drained (%llu jobs submitted, %llu resolved)\n",
                static_cast<unsigned long long>(service.submitted()),
                static_cast<unsigned long long>(service.resolved()));
    return 0;  // ~SimulationServer drains the job queue
  } catch (const std::exception& e) {
    std::fprintf(stderr, "art9-serve: %s\n", e.what());
    return 1;
  }
}
