// art9-fuzz — the libFuzzer-free driver for the differential fuzz
// harness (src/fuzz/harness.hpp): runs the same five oracles the
// coverage-guided fuzz_differential target runs, but from a portable
// seeded RNG — the deterministic CI smoke path — or by replaying saved
// input files (libFuzzer crash artifacts, minimized repros).
//
//   art9-fuzz [--seed N] [--runs N] [--mode art9|rv32|xlat|raw|snapshot]
//             [--artifact-dir DIR] [--quiet]
//   art9-fuzz <input-file>...
//
// On a divergence the offending input bytes are written to the artifact
// directory (default ".") as fuzz-repro-<seed>-<index>.bin and the exit
// status is 1; a clean sweep exits 0.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/harness.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: art9-fuzz [--seed N] [--runs N]\n"
               "                 [--mode art9|rv32|xlat|raw|snapshot]\n"
               "                 [--artifact-dir DIR] [--quiet]\n"
               "       art9-fuzz <input-file>...\n"
               "Runs the differential fuzz harness from a seeded RNG (default seed 1,\n"
               "1000 runs), or replays saved fuzzer inputs.  --mode pins every case to\n"
               "one oracle; otherwise the input bytes choose.  Exits 1 on divergence.\n");
  return 2;
}

int mode_index(const std::string& name) {
  if (name == "art9") return 0;
  if (name == "rv32") return 1;
  if (name == "xlat") return 2;
  if (name == "raw") return 3;
  if (name == "snapshot") return 4;
  return -1;
}

bool write_artifact(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

int replay_files(const std::vector<std::string>& paths) {
  int failures = 0;
  for (const std::string& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "art9-fuzz: cannot read %s\n", path.c_str());
      return 2;
    }
    const std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                     std::istreambuf_iterator<char>());
    const art9::fuzz::FuzzResult result = art9::fuzz::run_fuzz_case(bytes.data(), bytes.size());
    if (result.ok) {
      std::printf("%s: OK [%s]\n", path.c_str(), result.mode.c_str());
    } else {
      std::printf("%s: DIVERGENCE [%s] %s\n", path.c_str(), result.mode.c_str(),
                  result.detail.c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 1;
  uint64_t runs = 1000;
  int forced_mode = -1;
  std::string artifact_dir = ".";
  bool quiet = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--runs" && i + 1 < argc) {
      runs = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--mode" && i + 1 < argc) {
      forced_mode = mode_index(argv[++i]);
      if (forced_mode < 0) return usage();
    } else if (arg == "--artifact-dir" && i + 1 < argc) {
      artifact_dir = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      files.push_back(arg);
    }
  }

  if (!files.empty()) return replay_files(files);

  uint64_t failures = 0;
  for (uint64_t i = 0; i < runs; ++i) {
    std::vector<uint8_t> input = art9::fuzz::seeded_input(seed, i);
    // The mode selector is the first input byte (taken modulo 5).
    if (forced_mode >= 0 && !input.empty()) input[0] = static_cast<uint8_t>(forced_mode);
    const art9::fuzz::FuzzResult result = art9::fuzz::run_fuzz_case(input.data(), input.size());
    if (result.ok) continue;
    ++failures;
    const std::string path =
        artifact_dir + "/fuzz-repro-" + std::to_string(seed) + "-" + std::to_string(i) + ".bin";
    std::fprintf(stderr, "DIVERGENCE at seed=%llu index=%llu [%s]\n  %s\n",
                 static_cast<unsigned long long>(seed), static_cast<unsigned long long>(i),
                 result.mode.c_str(), result.detail.c_str());
    if (write_artifact(path, input)) {
      std::fprintf(stderr, "  repro written to %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "  (could not write repro to %s)\n", path.c_str());
    }
  }
  if (!quiet || failures != 0) {
    std::printf("art9-fuzz: %llu runs, %llu divergences (seed=%llu)\n",
                static_cast<unsigned long long>(runs), static_cast<unsigned long long>(failures),
                static_cast<unsigned long long>(seed));
  }
  return failures == 0 ? 0 : 1;
}
