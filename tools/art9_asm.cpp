// art9-asm — assemble ART-9 assembly into a .t9 program image.
//
//   art9-asm input.s [-o output.t9] [--listing]
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"
#include "isa/image_io.hpp"

namespace {

int usage() {
  std::fprintf(stderr, "usage: art9-asm <input.s> [-o <output.t9>] [--listing]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string output;
  bool listing = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--listing") {
      listing = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (input.empty()) {
      input = arg;
    } else {
      return usage();
    }
  }
  if (input.empty()) return usage();
  if (output.empty()) {
    output = input;
    const std::size_t dot = output.rfind('.');
    if (dot != std::string::npos) output.resize(dot);
    output += ".t9";
  }

  std::ifstream is(input);
  if (!is) {
    std::fprintf(stderr, "art9-asm: cannot open '%s'\n", input.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << is.rdbuf();

  try {
    const art9::isa::Program program = art9::isa::assemble(buffer.str());
    art9::isa::write_image_file(program, output);
    std::printf("art9-asm: %zu instructions, %zu data words, %lld trit cells -> %s\n",
                program.code.size(), program.data.size(),
                static_cast<long long>(program.memory_cells()), output.c_str());
    if (listing) std::printf("\n%s", art9::isa::disassemble(program).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "art9-asm: %s: %s\n", input.c_str(), e.what());
    return 1;
  }
  return 0;
}
