// art9-xlat — the software-level compiling framework as a command-line
// tool: RV-32I assembly in, .t9 image (and optionally ART-9 assembly) out.
//
//   art9-xlat input.s [-o output.t9] [--asm] [--no-redundancy] [--stats]
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "isa/image_io.hpp"
#include "rv32/rv32_assembler.hpp"
#include "xlat/framework.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: art9-xlat <input.s> [-o <output.t9>] [--asm] [--no-redundancy] [--stats]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string output;
  bool want_asm = false;
  bool want_stats = false;
  art9::xlat::SoftwareFrameworkOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--asm") {
      want_asm = true;
    } else if (arg == "--stats") {
      want_stats = true;
    } else if (arg == "--no-redundancy") {
      options.redundancy_checking = false;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (input.empty()) {
      input = arg;
    } else {
      return usage();
    }
  }
  if (input.empty()) return usage();
  if (output.empty()) {
    output = input;
    const std::size_t dot = output.rfind('.');
    if (dot != std::string::npos) output.resize(dot);
    output += ".t9";
  }

  std::ifstream is(input);
  if (!is) {
    std::fprintf(stderr, "art9-xlat: cannot open '%s'\n", input.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << is.rdbuf();

  try {
    const art9::xlat::SoftwareFramework framework(options);
    const art9::xlat::TranslationResult result = framework.translate_source(buffer.str());
    art9::isa::write_image_file(result.program, output);
    std::printf("art9-xlat: %zu rv32 -> %zu ART-9 instructions (%.2fx) -> %s\n",
                result.stats.rv32_instructions, result.stats.final_instructions,
                result.stats.expansion_ratio(), output.c_str());
    if (want_stats) {
      std::printf("  mapped instructions    = %zu\n", result.stats.mapped_instructions);
      std::printf("  removed by redundancy  = %zu\n", result.stats.removed_redundant);
      std::printf("  relaxed branches       = %zu\n", result.stats.relaxed_branches);
      std::printf("  spilled registers      = %zu\n", result.stats.spilled_registers);
      std::printf("  memory cells           = %lld trits\n",
                  static_cast<long long>(result.program.memory_cells()));
    }
    if (want_asm) std::printf("\n%s", art9::xlat::to_assembly_text(result.program).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "art9-xlat: %s: %s\n", input.c_str(), e.what());
    return 1;
  }
  return 0;
}
