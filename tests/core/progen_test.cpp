// Random program generators: every generated program must terminate,
// stay within the mapping contract, and be deterministic per seed.
#include "core/progen.hpp"

#include <gtest/gtest.h>

#include "rv32/rv32_assembler.hpp"
#include "rv32/rv32_sim.hpp"
#include "sim/functional_sim.hpp"

namespace art9::core {
namespace {

TEST(Progen, Art9ProgramsAlwaysHalt) {
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    std::mt19937_64 rng(seed);
    const isa::Program program = generate_art9_program(rng);
    sim::FunctionalSimulator sim(program);
    EXPECT_EQ(sim.run(2'000'000).halt, sim::HaltReason::kHalted) << "seed=" << seed;
  }
}

TEST(Progen, Art9ProgramsAreDeterministic) {
  std::mt19937_64 a(42);
  std::mt19937_64 b(42);
  EXPECT_EQ(generate_art9_program(a).image, generate_art9_program(b).image);
}

TEST(Progen, Art9LengthBounds) {
  Art9GenOptions options;
  options.min_length = 50;
  options.max_length = 60;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    std::mt19937_64 rng(seed * 13);
    const isa::Program program = generate_art9_program(rng, options);
    // +1 for the HALT; loop/branch groups may overshoot slightly.
    EXPECT_GE(program.code.size(), 51u);
    EXPECT_LE(program.code.size(), 75u);
  }
}

TEST(Progen, Art9OptionsRespected) {
  Art9GenOptions options;
  options.with_memory_ops = false;
  options.with_branches = false;
  options.with_loops = false;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    std::mt19937_64 rng(seed * 17);
    const isa::Program program = generate_art9_program(rng, options);
    for (const isa::Instruction& inst : program.code) {
      if (inst == isa::Instruction::halt()) continue;
      EXPECT_FALSE(isa::spec(inst.op).is_load) << isa::to_string(inst);
      EXPECT_FALSE(isa::spec(inst.op).is_store) << isa::to_string(inst);
      EXPECT_FALSE(isa::spec(inst.op).is_branch) << isa::to_string(inst);
      EXPECT_FALSE(isa::spec(inst.op).is_jump) << isa::to_string(inst);
    }
  }
}

TEST(Progen, Rv32ProgramsAssembleRunAndStayInRange) {
  Rv32GenOptions options;
  options.with_div = true;
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    std::mt19937_64 rng(seed * 29);
    const std::string source = generate_rv32_source(rng, options);
    const rv32::Rv32Program program = rv32::assemble_rv32(source);
    rv32::Rv32Simulator sim(program);
    ASSERT_TRUE(sim.run(5'000'000).halted) << "seed=" << seed;
    // Contract: every pool register's final value fits in 9 trits.
    for (int reg : {10, 11, 12, 13, 14, 5, 6, 7, 18, 19}) {
      const auto v = static_cast<int32_t>(sim.reg(reg));
      EXPECT_GE(v, -9841) << "seed=" << seed << " x" << reg;
      EXPECT_LE(v, 9841) << "seed=" << seed << " x" << reg;
    }
  }
}

TEST(Progen, Rv32SourcesAreDeterministic) {
  std::mt19937_64 a(7);
  std::mt19937_64 b(7);
  EXPECT_EQ(generate_rv32_source(a), generate_rv32_source(b));
}

}  // namespace
}  // namespace art9::core
