// Full-stack integration: the two frameworks end to end, reproducing the
// shape of the paper's headline numbers (Tables II-V).
#include <gtest/gtest.h>

#include "core/benchmarks.hpp"
#include "core/hardware_framework.hpp"
#include "rv32/cycle_models.hpp"
#include "rv32/rv32_assembler.hpp"
#include "rv32/rv32_sim.hpp"
#include "xlat/framework.hpp"

namespace art9::core {
namespace {

/// Translated ART-9 Dhrystone, evaluated once per test binary.
const xlat::TranslationResult& dhrystone_art9() {
  static const xlat::TranslationResult kResult = [] {
    xlat::SoftwareFramework framework;
    return framework.translate(rv32::assemble_rv32(dhrystone().rv32));
  }();
  return kResult;
}

TEST(Integration, HardwareFrameworkCntfet) {
  HardwareFramework hw({}, tech::Technology::cntfet32());
  const EvaluationResult result =
      hw.evaluate(dhrystone_art9().program, dhrystone().iterations);
  EXPECT_EQ(result.sim.halt, sim::HaltReason::kHalted);
  // Table II shape: DMIPS/MHz in the 0.3..0.6 band around the paper's 0.42.
  EXPECT_GT(result.estimate.dmips_per_mhz, 0.30);
  EXPECT_LT(result.estimate.dmips_per_mhz, 0.60);
  // Table IV shape: millions of DMIPS/W on CNTFET gates.
  EXPECT_GT(result.estimate.dmips_per_watt, 1.0e6);
  EXPECT_LT(result.estimate.dmips_per_watt, 1.0e7);
  EXPECT_DOUBLE_EQ(result.analysis.total_gates, 652.0);
}

TEST(Integration, HardwareFrameworkFpga) {
  HardwareFramework hw({}, tech::Technology::fpga_binary_emulation());
  const EvaluationResult result =
      hw.evaluate(dhrystone_art9().program, dhrystone().iterations);
  // Table V shape: tens of DMIPS/W on the FPGA emulation at 150 MHz.
  EXPECT_DOUBLE_EQ(result.estimate.clock_mhz, 150.0);
  EXPECT_GT(result.estimate.dmips_per_watt, 30.0);
  EXPECT_LT(result.estimate.dmips_per_watt, 100.0);
  EXPECT_EQ(result.analysis.ram_bits, 9216);
}

TEST(Integration, TableIIOrdering) {
  // DMIPS/MHz: VexRiscv > ART-9 > PicoRV32.
  const rv32::Rv32Program rp = rv32::assemble_rv32(dhrystone().rv32);

  rv32::Rv32Simulator rv(rp);
  rv32::PicoRv32CycleModel pico;
  rv32::VexRiscvCycleModel vex;
  ASSERT_TRUE(rv.run(200'000'000, [&](const rv32::Rv32Retired& r) {
    pico.observe(r);
    vex.observe(r);
  }).halted);

  HardwareFramework hw({}, tech::Technology::cntfet32());
  const EvaluationResult art9 = hw.evaluate(dhrystone_art9().program, dhrystone().iterations);

  const double art9_dpm = art9.estimate.dmips_per_mhz;
  const double pico_dpm = rv32::dmips_per_mhz(pico.cycles() / dhrystone().iterations);
  const double vex_dpm = rv32::dmips_per_mhz(vex.cycles() / dhrystone().iterations);

  EXPECT_GT(vex_dpm, art9_dpm) << "vex=" << vex_dpm << " art9=" << art9_dpm;
  EXPECT_GT(art9_dpm, pico_dpm) << "art9=" << art9_dpm << " pico=" << pico_dpm;
}

TEST(Integration, TableIIIArt9BeatsPicoOnEveryBenchmark) {
  for (const BenchmarkSources* b : all_benchmarks()) {
    const rv32::Rv32Program rp = rv32::assemble_rv32(b->rv32);
    rv32::Rv32Simulator rv(rp);
    rv32::PicoRv32CycleModel pico;
    ASSERT_TRUE(rv.run(200'000'000, [&](const rv32::Rv32Retired& r) { pico.observe(r); }).halted)
        << b->name;

    xlat::SoftwareFramework framework;
    const xlat::TranslationResult xlat = framework.translate(rp);
    sim::PipelineSimulator pipe(xlat.program);
    const sim::SimStats stats = pipe.run();
    ASSERT_EQ(stats.halt, sim::HaltReason::kHalted) << b->name;

    EXPECT_LT(stats.cycles, pico.cycles()) << b->name;
  }
}

TEST(Integration, DhrystoneCyclesNearPaperMagnitude) {
  // Paper Table III: 134,200 ART-9 cycles for 100 iterations.  Our kernel
  // is a reconstruction, so assert the order of magnitude band.
  sim::PipelineSimulator pipe(dhrystone_art9().program);
  const sim::SimStats stats = pipe.run();
  EXPECT_GT(stats.cycles, 60'000u);
  EXPECT_LT(stats.cycles, 260'000u);
}

TEST(Integration, StallBreakdownIsReported) {
  sim::PipelineSimulator pipe(dhrystone_art9().program);
  const sim::SimStats stats = pipe.run();
  // A call/branch/load heavy kernel must exercise both stall sources.
  EXPECT_GT(stats.flush_taken_branch, 0u);
  EXPECT_GT(stats.stall_load_use + stats.stall_branch_hazard, 0u);
  EXPECT_GT(stats.cpi(), 1.0);
  EXPECT_LT(stats.cpi(), 2.0);
}

TEST(Integration, AblationsCostPerformance) {
  const isa::Program& program = dhrystone_art9().program;

  sim::PipelineConfig base;
  sim::PipelineSimulator base_sim(program, base);
  const uint64_t base_cycles = base_sim.run().cycles;

  sim::PipelineConfig no_fwd = base;
  no_fwd.ex_forwarding = false;
  sim::PipelineSimulator no_fwd_sim(program, no_fwd);
  EXPECT_GT(no_fwd_sim.run().cycles, base_cycles);

  sim::PipelineConfig branch_ex = base;
  branch_ex.branch_in_id = false;
  sim::PipelineSimulator branch_ex_sim(program, branch_ex);
  EXPECT_GT(branch_ex_sim.run().cycles, base_cycles);
}

}  // namespace
}  // namespace art9::core
