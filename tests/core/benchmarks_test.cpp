// Benchmark corpus integration: every benchmark must (a) run correctly on
// rv32, (b) translate and run correctly on ART-9 (functional + pipelined),
// (c) assemble on Thumb, and (d) exhibit the Fig. 5 memory-cell ordering.
#include "core/benchmarks.hpp"

#include <gtest/gtest.h>

#include "rv32/rv32_assembler.hpp"
#include "rv32/rv32_sim.hpp"
#include "rv32/thumb.hpp"
#include "sim/functional_sim.hpp"
#include "sim/pipeline.hpp"
#include "xlat/framework.hpp"

namespace art9::core {
namespace {

struct RunResult {
  rv32::Rv32Program rv32_program;
  xlat::TranslationResult xlat;
  sim::SimStats pipeline_stats;
  sim::ArchState art9_state;
  std::vector<uint8_t> unused;
};

RunResult run_benchmark(const BenchmarkSources& sources) {
  RunResult r;
  r.rv32_program = rv32::assemble_rv32(sources.rv32);
  xlat::SoftwareFramework framework;
  r.xlat = framework.translate(r.rv32_program);
  sim::PipelineSimulator pipe(r.xlat.program);
  r.pipeline_stats = pipe.run();
  EXPECT_EQ(r.pipeline_stats.halt, sim::HaltReason::kHalted) << sources.name;
  r.art9_state = pipe.state();
  return r;
}

TEST(Benchmarks, BubbleSortCorrectOnBothIsas) {
  const BenchmarkSources& b = bubble_sort();
  rv32::Rv32Simulator rv(rv32::assemble_rv32(b.rv32));
  ASSERT_TRUE(rv.run().halted);
  const RunResult art9 = run_benchmark(b);
  const std::vector<int32_t> expected = bubble_expected();
  for (int i = 0; i < kBubbleN; ++i) {
    const uint32_t byte_addr = kBubbleArrayAddr + static_cast<uint32_t>(i) * 4;
    EXPECT_EQ(static_cast<int32_t>(rv.load_word(byte_addr)), expected[static_cast<std::size_t>(i)])
        << "rv32 index " << i;
    EXPECT_EQ(art9.art9_state.tdm.peek(byte_addr).to_int(), expected[static_cast<std::size_t>(i)])
        << "art9 index " << i;
  }
}

TEST(Benchmarks, GemmCorrectOnBothIsas) {
  const BenchmarkSources& b = gemm();
  rv32::Rv32Simulator rv(rv32::assemble_rv32(b.rv32));
  ASSERT_TRUE(rv.run().halted);
  const RunResult art9 = run_benchmark(b);
  const std::vector<int32_t> expected = gemm_expected();
  for (int i = 0; i < kGemmN * kGemmN; ++i) {
    const uint32_t byte_addr = kGemmCAddr + static_cast<uint32_t>(i) * 4;
    EXPECT_EQ(static_cast<int32_t>(rv.load_word(byte_addr)), expected[static_cast<std::size_t>(i)]);
    EXPECT_EQ(art9.art9_state.tdm.peek(byte_addr).to_int(), expected[static_cast<std::size_t>(i)]);
  }
}

TEST(Benchmarks, SobelCorrectOnBothIsas) {
  const BenchmarkSources& b = sobel();
  rv32::Rv32Simulator rv(rv32::assemble_rv32(b.rv32));
  ASSERT_TRUE(rv.run().halted);
  const RunResult art9 = run_benchmark(b);
  const std::vector<int32_t> expected = sobel_expected();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const uint32_t byte_addr = kSobelOutAddr + static_cast<uint32_t>(i) * 4;
    EXPECT_EQ(static_cast<int32_t>(rv.load_word(byte_addr)), expected[i]) << "pixel " << i;
    EXPECT_EQ(art9.art9_state.tdm.peek(byte_addr).to_int(), expected[i]) << "pixel " << i;
  }
}

TEST(Benchmarks, DhrystoneChecksumOnBothIsas) {
  const BenchmarkSources& b = dhrystone();
  rv32::Rv32Simulator rv(rv32::assemble_rv32(b.rv32));
  ASSERT_TRUE(rv.run().halted);
  const RunResult art9 = run_benchmark(b);
  const int32_t expected = dhrystone_expected_checksum();
  EXPECT_EQ(static_cast<int32_t>(rv.load_word(kDhrystoneChecksumAddr)), expected);
  EXPECT_EQ(art9.art9_state.tdm.peek(kDhrystoneChecksumAddr).to_int(), expected);
}

TEST(Benchmarks, PipelineAgreesWithFunctionalOnAllBenchmarks) {
  for (const BenchmarkSources* b : all_benchmarks()) {
    xlat::SoftwareFramework framework;
    const xlat::TranslationResult xlat = framework.translate(rv32::assemble_rv32(b->rv32));
    sim::FunctionalSimulator golden(xlat.program);
    const sim::SimStats golden_stats = golden.run(50'000'000);
    ASSERT_EQ(golden_stats.halt, sim::HaltReason::kHalted) << b->name;
    sim::PipelineSimulator pipe(xlat.program);
    const sim::SimStats pipe_stats = pipe.run();
    ASSERT_EQ(pipe_stats.halt, sim::HaltReason::kHalted) << b->name;
    EXPECT_EQ(pipe.state().trf, golden.state().trf) << b->name;
    EXPECT_EQ(pipe_stats.instructions, golden_stats.instructions) << b->name;
    EXPECT_GE(pipe_stats.cycles, golden_stats.instructions + 4) << b->name;
  }
}

TEST(Benchmarks, ThumbPortsAssemble) {
  for (const BenchmarkSources* b : all_benchmarks()) {
    const rv32::ThumbProgram thumb = rv32::assemble_thumb(b->thumb);
    EXPECT_GT(thumb.halfwords.size(), 10u) << b->name;
  }
}

TEST(Benchmarks, Figure5MemoryCellOrdering) {
  // Fig. 5's shape: ART-9 trit cells < ARMv6-M bit cells < RV-32I bit cells
  // for every benchmark.
  for (const BenchmarkSources* b : all_benchmarks()) {
    const rv32::Rv32Program rp = rv32::assemble_rv32(b->rv32);
    xlat::SoftwareFramework framework;
    const xlat::TranslationResult xlat = framework.translate(rp);
    const rv32::ThumbProgram thumb = rv32::assemble_thumb(b->thumb);

    const int64_t art9_cells = xlat.program.memory_cells();
    const int64_t rv32_cells = rp.memory_cells();
    const int64_t thumb_cells = thumb.memory_cells();
    EXPECT_LT(art9_cells, thumb_cells) << b->name;
    EXPECT_LT(thumb_cells, rv32_cells) << b->name;
  }
}

TEST(Benchmarks, DhrystoneSavingsInPaperBallpark) {
  // Paper: ART-9 Dhrystone needs ~54% fewer cells than RV-32I and ~17%
  // fewer than ARMv6-M.  Our translator differs from the authors', so we
  // assert generous bands around those figures.
  const BenchmarkSources& b = dhrystone();
  const rv32::Rv32Program rp = rv32::assemble_rv32(b.rv32);
  xlat::SoftwareFramework framework;
  const xlat::TranslationResult xlat = framework.translate(rp);
  const rv32::ThumbProgram thumb = rv32::assemble_thumb(b.thumb);

  const double vs_rv32 = 1.0 - static_cast<double>(xlat.program.memory_cells()) /
                                   static_cast<double>(rp.memory_cells());
  const double vs_thumb = 1.0 - static_cast<double>(xlat.program.memory_cells()) /
                                    static_cast<double>(thumb.memory_cells());
  EXPECT_GT(vs_rv32, 0.30) << "saving vs RV-32I: " << vs_rv32;
  EXPECT_LT(vs_rv32, 0.70);
  EXPECT_GT(vs_thumb, 0.02) << "saving vs ARMv6-M: " << vs_thumb;
  EXPECT_LT(vs_thumb, 0.45);
}

TEST(Benchmarks, GeneratedValuesAreDeterministic) {
  EXPECT_EQ(generated_values(11, 5, -10, 10), generated_values(11, 5, -10, 10));
  const auto v = generated_values(3, 1000, -7, 7);
  for (int32_t x : v) {
    EXPECT_GE(x, -7);
    EXPECT_LE(x, 7);
  }
  EXPECT_EQ(word_directive({1, -2, 3}), ".word 1, -2, 3");
}

TEST(Benchmarks, IterationCountsDeclared) {
  EXPECT_EQ(bubble_sort().iterations, 1u);
  EXPECT_EQ(dhrystone().iterations, static_cast<uint64_t>(kDhrystoneIterations));
}

}  // namespace
}  // namespace art9::core
