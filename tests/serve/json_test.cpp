// art9::json: the shared writer must render the bench trajectory format
// byte-for-byte (it moved out of bench/report.hpp; this file is the
// lock), and the reader must accept exactly the serve request subset and
// reject malformed input with an offset-bearing JsonError.
#include "serve/json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace art9::json {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(JsonWriter, WritePathRendersTheBenchTrajectoryFormatExactly) {
  // The historical bench/report.hpp multi-line format, locked so the JSON
  // trajectory files stay stable across the move into serve/json.hpp.
  JsonObject report;
  report.add("schema", std::string("art9.bench.micro_sim.v1"));
  report.add("sum_to_n.lazy.steps_per_sec", 1234567.0);
  report.add("sum_to_n.packed.speedup_vs_lazy", 2.5);
  const std::string path = ::testing::TempDir() + "json_writer_lock.json";
  ASSERT_TRUE(report.write(path));
  EXPECT_EQ(slurp(path),
            "{\n"
            "  \"schema\": \"art9.bench.micro_sim.v1\",\n"
            "  \"sum_to_n.lazy.steps_per_sec\": 1.23457e+06,\n"
            "  \"sum_to_n.packed.speedup_vs_lazy\": 2.5\n"
            "}\n");
  std::remove(path.c_str());
}

TEST(JsonWriter, StrIsCompactAndPreservesInsertionOrder) {
  JsonObject object;
  object.add("b", uint64_t{18446744073709551615ull});  // > 2^53: must not go through double
  object.add("a", int64_t{-7});
  object.add("ok", true);
  object.add("name", std::string("quote\" and \\slash"));
  object.add_raw("nested", "{\"x\": 1}");
  EXPECT_EQ(object.str(),
            "{\"b\": 18446744073709551615, \"a\": -7, \"ok\": true, "
            "\"name\": \"quote\\\" and \\\\slash\", \"nested\": {\"x\": 1}}");
}

TEST(JsonWriter, StringLiteralFieldsStayStrings) {
  // Regression: with the bool overload present, a `const char*` would
  // otherwise prefer the standard conversion to bool and emit `true`.
  JsonObject object;
  object.add("bench", "micro_sim");
  EXPECT_EQ(object.str(), "{\"bench\": \"micro_sim\"}");
}

TEST(JsonWriter, IntArrayAndQuote) {
  const int values[] = {-1, 0, 1};
  EXPECT_EQ(int_array(values), "[-1, 0, 1]");
  EXPECT_EQ(quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
}

TEST(JsonReader, ParsesTheServeRequestShape) {
  const JsonValue doc = parse_json(
      R"({"image": "41aa", "engine": "functional", "max_steps": 5000,
          "retries": 2, "deep": {"list": [1, 2.5, true, null, "s"]}})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.get_string("image", ""), "41aa");
  EXPECT_EQ(doc.get_string("engine", ""), "functional");
  EXPECT_EQ(doc.get_uint64("max_steps", 0), 5000u);
  EXPECT_EQ(doc.get_uint64("retries", 0), 2u);
  EXPECT_EQ(doc.get_uint64("absent", 77), 77u);  // fallback for optional fields
  const JsonValue* deep = doc.find("deep");
  ASSERT_NE(deep, nullptr);
  const JsonValue* list = deep->find("list");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->as_array().size(), 5u);
  EXPECT_EQ(list->as_array()[0].as_uint64(), 1u);
  EXPECT_DOUBLE_EQ(list->as_array()[1].as_double(), 2.5);
  EXPECT_TRUE(list->as_array()[2].as_bool());
  EXPECT_TRUE(list->as_array()[3].is_null());
  EXPECT_EQ(list->as_array()[4].as_string(), "s");
}

TEST(JsonReader, StringEscapes) {
  const JsonValue doc = parse_json(R"("a\"b\\c\/d\n\tA")");
  EXPECT_EQ(doc.as_string(), "a\"b\\c/d\n\tA");
}

TEST(JsonReader, RoundTripsWriterOutput) {
  JsonObject object;
  object.add("steps", uint64_t{123456789012345ull});
  object.add("name", std::string("a\"b"));
  object.add("flag", false);
  const JsonValue doc = parse_json(object.str());
  EXPECT_EQ(doc.get_uint64("steps", 0), 123456789012345ull);
  EXPECT_EQ(doc.get_string("name", ""), "a\"b");
  ASSERT_NE(doc.find("flag"), nullptr);
  EXPECT_FALSE(doc.find("flag")->as_bool());
}

TEST(JsonReader, RejectsMalformedInputWithOffset) {
  EXPECT_THROW(parse_json(""), JsonError);
  EXPECT_THROW(parse_json("{"), JsonError);
  EXPECT_THROW(parse_json("{\"a\": }"), JsonError);
  EXPECT_THROW(parse_json("[1, 2,]"), JsonError);
  EXPECT_THROW(parse_json("{\"a\": 1} trailing"), JsonError);
  EXPECT_THROW(parse_json("nul"), JsonError);
  EXPECT_THROW(parse_json("01"), JsonError);
  EXPECT_THROW(parse_json("\"unterminated"), JsonError);
  try {
    (void)parse_json("{\"a\": !}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos) << e.what();
  }
}

TEST(JsonReader, RejectsUnrepresentableUint64) {
  EXPECT_THROW((void)parse_json("-1").as_uint64(), JsonError);
  EXPECT_THROW((void)parse_json("1.5").as_uint64(), JsonError);
  EXPECT_THROW((void)parse_json("1e300").as_uint64(), JsonError);
  EXPECT_EQ(parse_json("0").as_uint64(), 0u);
}

TEST(JsonReader, RejectsRunawayNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_THROW(parse_json(deep), JsonError);
}

TEST(JsonReader, TypedAccessorMismatchThrows) {
  const JsonValue doc = parse_json("{\"n\": 1, \"s\": \"x\"}");
  EXPECT_THROW((void)doc.as_string(), JsonError);
  EXPECT_THROW((void)doc.get_string("n", ""), JsonError);  // exists with wrong type
  EXPECT_THROW((void)doc.get_uint64("s", 0), JsonError);   // ...must throw, not fall back
}

}  // namespace
}  // namespace art9::json
