// serve HTTP transport: the incremental RequestParser is exercised
// without any socket (every protocol edge maps to its precise status),
// then HttpServer + HttpClient prove the loopback round trip, keep-alive
// reuse, pipelining and the drain-style shutdown contract.
#include "serve/http.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace art9::serve {
namespace {

// --- parser, socket-free -----------------------------------------------------

TEST(RequestParser, ParsesASimplePostWithBody) {
  RequestParser parser;
  EXPECT_EQ(parser.feed("POST /v1/images?format=rv32 HTTP/1.1\r\n"
                        "Host: localhost\r\n"
                        "Content-Type: text/plain\r\n"
                        "Content-Length: 5\r\n"
                        "\r\n"
                        "hello"),
            ParseStatus::kDone);
  const HttpRequest& request = parser.request();
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.target, "/v1/images?format=rv32");
  EXPECT_EQ(request.path(), "/v1/images");
  EXPECT_EQ(request.query("format"), "rv32");
  EXPECT_EQ(request.query("absent"), "");
  EXPECT_EQ(request.version, "HTTP/1.1");
  EXPECT_EQ(request.header("content-type"), "text/plain");  // case-insensitive
  EXPECT_EQ(request.body, "hello");
  EXPECT_TRUE(request.keep_alive);  // 1.1 default
}

TEST(RequestParser, TruncatedHeadersStayIncompleteUntilCompleted) {
  // Byte-at-a-time delivery: the parser must never commit early.
  const std::string wire =
      "GET /v1/metrics HTTP/1.1\r\nHost: a\r\n\r\n";
  RequestParser parser;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    ASSERT_EQ(parser.feed(wire.substr(i, 1)), ParseStatus::kIncomplete) << "byte " << i;
  }
  EXPECT_EQ(parser.feed(wire.substr(wire.size() - 1)), ParseStatus::kDone);
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_TRUE(parser.request().body.empty());
}

TEST(RequestParser, MalformedRequestLineIs400) {
  RequestParser parser;
  EXPECT_EQ(parser.feed("NOT-A-REQUEST-LINE\r\n\r\n"), ParseStatus::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(RequestParser, MalformedHeaderIs400) {
  RequestParser parser;
  EXPECT_EQ(parser.feed("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"), ParseStatus::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(RequestParser, BadContentLengthIs400) {
  RequestParser parser;
  EXPECT_EQ(parser.feed("POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n"),
            ParseStatus::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(RequestParser, WrongVersionIs505) {
  RequestParser parser;
  EXPECT_EQ(parser.feed("GET / HTTP/2.0\r\n\r\n"), ParseStatus::kError);
  EXPECT_EQ(parser.error_status(), 505);
}

TEST(RequestParser, ChunkedTransferIs501) {
  RequestParser parser;
  EXPECT_EQ(parser.feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            ParseStatus::kError);
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(RequestParser, OversizedBodyIs413BeforeTheBodyArrives) {
  RequestParser parser(ParserLimits{16 * 1024, 64});
  // Rejected from the declared length alone — no need to send the bytes.
  EXPECT_EQ(parser.feed("POST / HTTP/1.1\r\nContent-Length: 65\r\n\r\n"), ParseStatus::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(RequestParser, OversizedHeadersAre431) {
  RequestParser parser(ParserLimits{128, 1024});
  std::string wire = "GET / HTTP/1.1\r\nX-Padding: ";
  wire += std::string(256, 'x');
  EXPECT_EQ(parser.feed(wire), ParseStatus::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(RequestParser, KeepAliveResolution) {
  struct Case {
    const char* wire;
    bool keep_alive;
  };
  const Case cases[] = {
      {"GET / HTTP/1.1\r\n\r\n", true},                            // 1.1 default on
      {"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false},      // explicit close
      {"GET / HTTP/1.0\r\n\r\n", false},                           // 1.0 default off
      {"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true},  // 1.0 opt-in
  };
  for (const Case& c : cases) {
    RequestParser parser;
    ASSERT_EQ(parser.feed(c.wire), ParseStatus::kDone) << c.wire;
    EXPECT_EQ(parser.request().keep_alive, c.keep_alive) << c.wire;
  }
}

TEST(RequestParser, ResetReparsesPipelinedRequests) {
  RequestParser parser;
  EXPECT_EQ(parser.feed("POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\n"
                        "oneGET /b HTTP/1.1\r\n\r\n"),
            ParseStatus::kDone);
  EXPECT_EQ(parser.request().target, "/a");
  EXPECT_EQ(parser.request().body, "one");
  EXPECT_EQ(parser.reset(), ParseStatus::kDone);  // second request already buffered
  EXPECT_EQ(parser.request().target, "/b");
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.reset(), ParseStatus::kIncomplete);
}

TEST(HttpResponseSerialization, CarriesStatusTypeLengthAndConnection) {
  const std::string wire =
      serialize_response(HttpResponse{404, "application/json", "{\"error\": \"x\"}\n", true});
  EXPECT_NE(wire.find("HTTP/1.1 404 Not Found\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Type: application/json\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 15\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 15), "{\"error\": \"x\"}\n");
}

// --- loopback server + client ------------------------------------------------

TEST(HttpServer, EchoRoundTripKeepAliveAndCounters) {
  HttpServer server(HttpServer::Options{}, [](const HttpRequest& request) {
    HttpResponse response;
    response.body = request.method + " " + std::string(request.path()) + " " + request.body;
    return response;
  });
  server.start();
  ASSERT_NE(server.port(), 0);

  HttpClient client("127.0.0.1", server.port());
  const HttpResponse first = client.post("/echo", "payload");
  EXPECT_EQ(first.status, 200);
  EXPECT_EQ(first.body, "POST /echo payload");
  // Same connection, second request (keep-alive reuse).
  const HttpResponse second = client.get("/again");
  EXPECT_EQ(second.status, 200);
  EXPECT_EQ(second.body, "GET /again ");

  EXPECT_EQ(server.connections_accepted(), 1u);
  EXPECT_EQ(server.requests_served(), 2u);
  server.stop();
}

TEST(HttpServer, HandlerExceptionBecomesA500) {
  HttpServer server(HttpServer::Options{}, [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("deliberate \"failure\"");
  });
  server.start();
  HttpClient client("127.0.0.1", server.port());
  const HttpResponse response = client.get("/boom");
  EXPECT_EQ(response.status, 500);
  EXPECT_NE(response.body.find("deliberate \\\"failure\\\""), std::string::npos) << response.body;
  server.stop();
}

TEST(HttpServer, ProtocolErrorsAnsweredWithTheParserStatus) {
  HttpServer server(HttpServer::Options{},
                    [](const HttpRequest&) { return HttpResponse{}; });
  server.start();
  // Raw garbage on the wire: the connection must answer with the parser's
  // status line and close (it cannot resynchronize after a framing error).
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  const std::string garbage = "GET / HTTP/2.0\r\n\r\n";
  ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), 0),
            static_cast<ssize_t>(garbage.size()));
  std::string reply;
  char buf[512];
  for (ssize_t n = 0; (n = ::recv(fd, buf, sizeof buf, 0)) > 0;) {
    reply.append(buf, static_cast<std::size_t>(n));  // until the server closes
  }
  ::close(fd);
  EXPECT_EQ(reply.rfind("HTTP/1.1 505 ", 0), 0u) << reply;
  EXPECT_NE(reply.find("Connection: close\r\n"), std::string::npos) << reply;
  server.stop();
}

TEST(HttpServer, StopDrainsAndJoins) {
  std::atomic<int> served{0};
  auto server = std::make_unique<HttpServer>(HttpServer::Options{}, [&](const HttpRequest&) {
    ++served;
    return HttpResponse{};
  });
  server->start();
  const uint16_t port = server->port();
  {
    HttpClient client("127.0.0.1", port);
    EXPECT_EQ(client.get("/").status, 200);
  }
  server->request_stop();
  server->wait();          // joins accept loop + connections
  server.reset();          // destructor after an explicit drain: no-op
  EXPECT_EQ(served.load(), 1);
}

TEST(HttpServer, ManyConcurrentClients) {
  HttpServer server(HttpServer::Options{}, [](const HttpRequest& request) {
    HttpResponse response;
    response.body = request.body;
    return response;
  });
  server.start();
  constexpr int kClients = 8;
  constexpr int kRequests = 16;
  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      HttpClient client("127.0.0.1", server.port());
      for (int r = 0; r < kRequests; ++r) {
        std::string body = "c";
        body += std::to_string(c);
        body += 'r';
        body += std::to_string(r);
        const HttpResponse response = client.post("/echo", body);
        if (response.status == 200 && response.body == body) ++ok;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok.load(), kClients * kRequests);
  EXPECT_EQ(server.requests_served(), static_cast<uint64_t>(kClients * kRequests));
  server.stop();
}

}  // namespace
}  // namespace art9::serve
