// SimulationServer: route-level protocol checks driven socketlessly
// through handle(), then the loopback e2e contract the ISSUE pins down —
// an HTTP-submitted job's result is bit-identical (canonical-snapshot
// digest) to a direct SimulationService run of the same image, the
// second upload of the same source is a cache hit, an admission-rejected
// request gets a structured error, and the metrics outcome counters sum
// to the jobs submitted.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "isa/assembler.hpp"
#include "serve/json.hpp"
#include "sim/snapshot.hpp"

namespace art9::serve {
namespace {

constexpr const char* kSumProgram = R"(
    LIMM T1, 50
    LIMM T2, 0
  loop:
    ADD  T2, T1
    ADDI T1, -1
    MV   T3, T1
    COMP T3, T4
    BNE  T3, 0, loop
    HALT
)";

constexpr const char* kSpinProgram = "loop:\n  ADDI T1, 1\n  JAL T0, loop\n";

constexpr const char* kRv32Program = R"(
    li   a0, 64
    li   a1, -456
    sw   a1, 0(a0)
    lw   a2, 0(a0)
    ebreak
)";

HttpRequest make_request(std::string method, std::string target, std::string body = {}) {
  HttpRequest request;
  request.method = std::move(method);
  request.target = std::move(target);
  request.version = "HTTP/1.1";
  request.body = std::move(body);
  return request;
}

json::JsonValue body_of(const HttpResponse& response) { return json::parse_json(response.body); }

/// Polls GET /v1/jobs/{id} (through handle()) to the terminal state.
json::JsonValue await_job(SimulationServer& server, uint64_t id) {
  const std::string target = "/v1/jobs/" + std::to_string(id);
  for (int poll = 0; poll < 4000; ++poll) {
    const HttpResponse response = server.handle(make_request("GET", target));
    EXPECT_EQ(response.status, 200);
    json::JsonValue job = body_of(response);
    if (job.get_string("state", "") == "done") return job;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ADD_FAILURE() << "job " << id << " never resolved";
  return json::JsonValue();
}

TEST(OutcomeExitCode, MirrorsArt9Run) {
  EXPECT_EQ(outcome_exit_code(sim::JobOutcome::kCompleted), 0);
  EXPECT_EQ(outcome_exit_code(sim::JobOutcome::kTrapped), 3);
  EXPECT_EQ(outcome_exit_code(sim::JobOutcome::kBudgetExhausted), 4);
  EXPECT_EQ(outcome_exit_code(sim::JobOutcome::kDeadlineExceeded), 5);
  EXPECT_EQ(outcome_exit_code(sim::JobOutcome::kCancelled), 6);
  EXPECT_EQ(outcome_exit_code(sim::JobOutcome::kFaulted), 7);
}

TEST(SimulationServerRoutes, ProtocolErrorsAreStructured) {
  SimulationServer server;  // never start()ed: handle() needs no socket

  EXPECT_EQ(server.handle(make_request("GET", "/nope")).status, 404);
  EXPECT_EQ(server.handle(make_request("PUT", "/v1/images", "x")).status, 405);
  EXPECT_EQ(server.handle(make_request("POST", "/v1/metrics")).status, 405);
  EXPECT_EQ(server.handle(make_request("GET", "/")).status, 200);  // endpoint index

  // Image uploads: unknown format, empty body, assembler diagnostics.
  EXPECT_EQ(server.handle(make_request("POST", "/v1/images?format=elf", "x")).status, 400);
  EXPECT_EQ(server.handle(make_request("POST", "/v1/images")).status, 400);
  const HttpResponse bad_source =
      server.handle(make_request("POST", "/v1/images", "NOT_AN_OPCODE T1\n"));
  EXPECT_EQ(bad_source.status, 400);
  EXPECT_EQ(body_of(bad_source).get_string("error", ""), "bad_source");

  // Job submission: malformed JSON, missing/unknown image, bad engine.
  EXPECT_EQ(server.handle(make_request("POST", "/v1/jobs", "{oops")).status, 400);
  EXPECT_EQ(server.handle(make_request("POST", "/v1/jobs", "[1]")).status, 400);
  EXPECT_EQ(server.handle(make_request("POST", "/v1/jobs", "{}")).status, 400);
  const HttpResponse unknown_image = server.handle(
      make_request("POST", "/v1/jobs", "{\"image\": \"0123456789abcdef\"}"));
  EXPECT_EQ(unknown_image.status, 404);
  EXPECT_EQ(body_of(unknown_image).get_string("error", ""), "unknown_image");

  const std::string image =
      body_of(server.handle(make_request("POST", "/v1/images", kSumProgram)))
          .get_string("id", "");
  ASSERT_EQ(image.size(), 16u);
  EXPECT_EQ(server.handle(make_request("POST", "/v1/jobs",
                                       "{\"image\": \"" + image + "\", \"engine\": \"warp\"}"))
                .status,
            400);
  // ISA mismatch: an ART-9 image on an rv32 engine.
  EXPECT_EQ(server.handle(make_request("POST", "/v1/jobs",
                                       "{\"image\": \"" + image + "\", \"engine\": \"rv32\"}"))
                .status,
            400);
  // Budget over the per-job cap.
  EXPECT_EQ(server.handle(make_request("POST", "/v1/jobs",
                                       "{\"image\": \"" + image +
                                           "\", \"max_steps\": 18446744073709551615}"))
                .status,
            400);

  // Job lookup: unknown and malformed ids.
  EXPECT_EQ(server.handle(make_request("GET", "/v1/jobs/999")).status, 404);
  EXPECT_EQ(server.handle(make_request("GET", "/v1/jobs/abc")).status, 404);
  EXPECT_EQ(server.handle(make_request("DELETE", "/v1/jobs/999")).status, 404);
}

TEST(SimulationServerRoutes, AdmissionRejectsAreStructuredAndCounted) {
  SimulationServer::Options options;
  options.service_threads = 1;
  options.max_queued_jobs = 1;
  options.max_job_steps = 1u << 20;
  SimulationServer server(options);

  const std::string spin =
      body_of(server.handle(make_request("POST", "/v1/images", kSpinProgram)))
          .get_string("id", "");

  // First job fills the whole queue allowance...
  const HttpResponse admitted = server.handle(make_request(
      "POST", "/v1/jobs",
      "{\"image\": \"" + spin + "\", \"max_steps\": 1000000, \"slice_steps\": 2000}"));
  ASSERT_EQ(admitted.status, 202);
  const uint64_t first = body_of(admitted).get_uint64("job", 0);

  // ...so the second is rejected NOW with a structured body — not queued.
  const HttpResponse rejected = server.handle(
      make_request("POST", "/v1/jobs", "{\"image\": \"" + spin + "\", \"max_steps\": 1000}"));
  EXPECT_EQ(rejected.status, 429);
  const json::JsonValue reject_body = body_of(rejected);
  EXPECT_EQ(reject_body.get_string("error", ""), "admission_queue_full");
  EXPECT_EQ(reject_body.get_uint64("max_queued_jobs", 0), 1u);
  EXPECT_FALSE(reject_body.get_string("message", "").empty());

  // Cancel the hog; once it resolves the queue allowance is released.
  EXPECT_EQ(server.handle(make_request("DELETE", "/v1/jobs/" + std::to_string(first))).status,
            202);
  (void)await_job(server, first);
  const HttpResponse after = server.handle(
      make_request("POST", "/v1/jobs", "{\"image\": \"" + spin + "\", \"max_steps\": 1000}"));
  EXPECT_EQ(after.status, 202);
  (void)await_job(server, body_of(after).get_uint64("job", 0));

  const json::JsonValue metrics = body_of(server.handle(make_request("GET", "/v1/metrics")));
  const json::JsonValue* admission = metrics.find("admission");
  ASSERT_NE(admission, nullptr);
  EXPECT_EQ(admission->get_uint64("admitted", 0), 2u);
  EXPECT_EQ(admission->get_uint64("rejected_queue_full", 0), 1u);
  EXPECT_EQ(admission->get_uint64("active_jobs", 1), 0u);
  EXPECT_EQ(admission->get_uint64("inflight_steps", 1), 0u);
}

TEST(SimulationServerRoutes, StepBudgetAdmissionIsIndependentOfQueueDepth) {
  SimulationServer::Options options;
  options.service_threads = 1;
  options.max_inflight_steps = 5000;  // far below the queue-depth limit
  SimulationServer server(options);

  const std::string spin =
      body_of(server.handle(make_request("POST", "/v1/images", kSpinProgram)))
          .get_string("id", "");
  const HttpResponse admitted = server.handle(make_request(
      "POST", "/v1/jobs",
      "{\"image\": \"" + spin + "\", \"max_steps\": 4000, \"slice_steps\": 1000}"));
  ASSERT_EQ(admitted.status, 202);

  const HttpResponse rejected = server.handle(
      make_request("POST", "/v1/jobs", "{\"image\": \"" + spin + "\", \"max_steps\": 2000}"));
  EXPECT_EQ(rejected.status, 429);
  EXPECT_EQ(body_of(rejected).get_string("error", ""), "admission_step_budget");
  EXPECT_EQ(body_of(rejected).get_uint64("max_inflight_steps", 0), 5000u);
}

TEST(SimulationServerE2E, LoopbackResultsBitIdenticalToDirectServiceRuns) {
  SimulationServer::Options options;
  options.service_threads = 2;
  SimulationServer server(options);
  server.start();
  ASSERT_NE(server.port(), 0);
  HttpClient client("127.0.0.1", server.port());

  // Upload: first is a pipeline run (201), the identical re-upload is a
  // content-hash hit (200) with the same id.
  const HttpResponse first_upload = client.post("/v1/images?format=art9", kSumProgram);
  ASSERT_EQ(first_upload.status, 201);
  const json::JsonValue first_body = body_of(first_upload);
  EXPECT_FALSE(first_body.find("cached")->as_bool());
  const std::string image = first_body.get_string("id", "");
  ASSERT_EQ(image.size(), 16u);

  const HttpResponse second_upload = client.post("/v1/images?format=art9", kSumProgram);
  EXPECT_EQ(second_upload.status, 200);
  EXPECT_TRUE(body_of(second_upload).find("cached")->as_bool());
  EXPECT_EQ(body_of(second_upload).get_string("id", ""), image);

  // The same program, engine and budget, run directly through the
  // service: the canonical snapshot digest is the bit-identity witness.
  sim::SimulationService direct(1);
  const sim::JobHandle direct_handle =
      direct.submit(sim::decode(isa::assemble(kSumProgram)), sim::EngineKind::kPacked,
                    sim::RunOptions{2000});
  const sim::JobResult& expected = direct_handle.result();
  ASSERT_EQ(expected.outcome, sim::JobOutcome::kCompleted);
  const std::vector<uint8_t> blob = sim::serialize_snapshot(expected.run.state);
  const std::string expected_digest = hex64(fnv1a_64(blob.data(), blob.size()));

  const HttpResponse submitted = client.post(
      "/v1/jobs",
      "{\"image\": \"" + image + "\", \"engine\": \"packed\", \"max_steps\": 2000}");
  ASSERT_EQ(submitted.status, 202);
  const json::JsonValue job = await_job(server, body_of(submitted).get_uint64("job", 0));

  EXPECT_EQ(job.get_string("outcome", ""), "completed");
  EXPECT_EQ(job.get_uint64("exit_code", 99), 0u);
  EXPECT_EQ(job.get_string("state_digest", ""), expected_digest);
  const json::JsonValue* stats = job.find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->get_uint64("instructions", 0), expected.run.stats.instructions);

  // Cancel path over HTTP: DELETE resolves the spinner as cancelled/6.
  const std::string spin =
      body_of(client.post("/v1/images?format=art9", kSpinProgram)).get_string("id", "");
  const HttpResponse spinning = client.post(
      "/v1/jobs", "{\"image\": \"" + spin + "\", \"slice_steps\": 2000}");
  ASSERT_EQ(spinning.status, 202);
  const uint64_t spin_id = body_of(spinning).get_uint64("job", 0);
  EXPECT_EQ(client.del("/v1/jobs/" + std::to_string(spin_id)).status, 202);
  const json::JsonValue cancelled = await_job(server, spin_id);
  EXPECT_EQ(cancelled.get_string("outcome", ""), "cancelled");
  EXPECT_EQ(cancelled.get_uint64("exit_code", 99), 6u);

  // A trapping program maps to trapped/3 with the trap text attached:
  // no HALT, so execution falls off the end into uninitialised TIM.
  const std::string trap =
      body_of(client.post("/v1/images?format=art9", "LIMM T1, 5\nADD T1, T1\n"))
          .get_string("id", "");
  const HttpResponse trap_submitted =
      client.post("/v1/jobs", "{\"image\": \"" + trap + "\"}");
  ASSERT_EQ(trap_submitted.status, 202);
  const json::JsonValue trapped =
      await_job(server, body_of(trap_submitted).get_uint64("job", 0));
  EXPECT_EQ(trapped.get_string("outcome", ""), "trapped");
  EXPECT_EQ(trapped.get_uint64("exit_code", 99), 3u);
  EXPECT_FALSE(trapped.get_string("error", "").empty());

  // Metrics reconcile: every submitted job resolved, and the outcome
  // counters sum exactly to the jobs submitted.
  const json::JsonValue metrics = body_of(client.get("/v1/metrics"));
  const json::JsonValue* jobs = metrics.find("jobs");
  ASSERT_NE(jobs, nullptr);
  EXPECT_EQ(jobs->get_uint64("submitted", 0), 3u);
  EXPECT_EQ(jobs->get_uint64("resolved", 0), 3u);
  const json::JsonValue* outcomes = metrics.find("outcomes");
  ASSERT_NE(outcomes, nullptr);
  uint64_t outcome_sum = 0;
  for (const auto& [name, count] : outcomes->as_object()) outcome_sum += count.as_uint64();
  EXPECT_EQ(outcome_sum, jobs->get_uint64("submitted", 0));
  const json::JsonValue* cache = metrics.find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->get_uint64("hits", 0), 1u);
  EXPECT_EQ(cache->get_uint64("misses", 0), 3u);

  server.stop();
}

TEST(SimulationServerE2E, Rv32AndTranslatedImagesRunTheirOwnEngines) {
  SimulationServer server;
  server.start();
  HttpClient client("127.0.0.1", server.port());

  // Native rv32: defaults to the rv32 engine, reports 32 x-registers.
  const json::JsonValue rv32_upload =
      body_of(client.post("/v1/images?format=rv32", kRv32Program));
  EXPECT_EQ(rv32_upload.get_string("isa", ""), "rv32");
  const HttpResponse rv32_submitted = client.post(
      "/v1/jobs", "{\"image\": \"" + rv32_upload.get_string("id", "") + "\"}");
  ASSERT_EQ(rv32_submitted.status, 202);
  const json::JsonValue rv32_job =
      await_job(server, body_of(rv32_submitted).get_uint64("job", 0));
  EXPECT_EQ(rv32_job.get_string("engine", ""), "rv32");
  EXPECT_EQ(rv32_job.get_string("outcome", ""), "completed");
  ASSERT_NE(rv32_job.find("registers"), nullptr);
  EXPECT_EQ(rv32_job.find("registers")->as_array().size(), 32u);

  // The same rv32 source through the translation framework is an ART-9
  // image (a different content id: the format tag is hashed too) and runs
  // the ART-9 kinds.
  const json::JsonValue xlat_upload =
      body_of(client.post("/v1/images?format=rv32_translate", kRv32Program));
  EXPECT_EQ(xlat_upload.get_string("isa", ""), "art9");
  EXPECT_NE(xlat_upload.get_string("id", ""), rv32_upload.get_string("id", ""));
  const HttpResponse xlat_submitted = client.post(
      "/v1/jobs", "{\"image\": \"" + xlat_upload.get_string("id", "") +
                      "\", \"engine\": \"pipeline\"}");
  ASSERT_EQ(xlat_submitted.status, 202);
  const json::JsonValue xlat_job =
      await_job(server, body_of(xlat_submitted).get_uint64("job", 0));
  EXPECT_EQ(xlat_job.get_string("outcome", ""), "completed");
  ASSERT_NE(xlat_job.find("registers"), nullptr);
  EXPECT_EQ(xlat_job.find("registers")->as_array().size(), 9u);

  server.stop();
}

TEST(ImageCache, LruEvictionAgainstTheByteBudget) {
  // Three distinct tiny programs against a budget that fits roughly one:
  // the cache evicts least-recently-used entries but never the entry a
  // put() just inserted, and get() of an evicted id misses cleanly.
  ImageCache cache(1);  // pathological budget: every insert overflows
  const ImageCache::Put a = cache.put(ImageFormat::kArt9Asm, "LIMM T1, 1\nHALT\n");
  EXPECT_FALSE(a.hit);
  EXPECT_TRUE(cache.get(a.id).has_value());  // just-inserted entry survives

  const ImageCache::Put b = cache.put(ImageFormat::kArt9Asm, "LIMM T1, 2\nHALT\n");
  EXPECT_FALSE(cache.get(a.id).has_value());  // evicted by b's insert
  EXPECT_TRUE(cache.get(b.id).has_value());

  const ImageCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_EQ(stats.misses, 2u);

  // Re-uploading the evicted program is a rebuild (miss), not a hit.
  const ImageCache::Put again = cache.put(ImageFormat::kArt9Asm, "LIMM T1, 1\nHALT\n");
  EXPECT_FALSE(again.hit);
  EXPECT_EQ(again.id, a.id);  // content hash is stable
}

}  // namespace
}  // namespace art9::serve
