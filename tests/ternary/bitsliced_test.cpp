// Transposed-plane (bit-sliced) kernel contract: every SlicedWord9
// operation must agree, lane by lane, with the scalar BctWord9 /
// packed:: reference kernels, and a write to lane i must never perturb
// lane j.  Round trips are locked against both the Trit-array Word9 and
// the plane-packed BctWord9/PackedWord<9> representations; add, sub,
// compare and the variable shifts run randomized 32-lane sweeps against
// the scalar datapath.
#include "ternary/bitsliced.hpp"

#include <gtest/gtest.h>

#include <array>
#include <random>

#include "ternary/bct.hpp"
#include "ternary/packed.hpp"
#include "ternary/random.hpp"
#include "ternary/word.hpp"

namespace art9::ternary {
namespace {

namespace bs = bitsliced;
namespace pk = packed;

/// 32 independent random words inserted lane by lane.
struct LaneSet {
  std::array<BctWord9, bs::kLanes> words{};
  bs::SlicedWord9 sliced;
};

template <typename Rng>
LaneSet random_lanes(Rng& rng) {
  LaneSet set;
  for (unsigned i = 0; i < bs::kLanes; ++i) {
    set.words[i] = pk::from_int(static_cast<int32_t>(random_in(rng, pk::kMin, pk::kMax)));
    bs::insert_lane(set.sliced, i, set.words[i]);
  }
  return set;
}

// --- transpose / untranspose round trips ------------------------------------

TEST(Bitsliced, BroadcastRoundTripsEveryWordExhaustive) {
  for (int32_t v = pk::kMin; v <= pk::kMax; ++v) {
    const BctWord9 w = pk::from_int(v);
    const bs::SlicedWord9 s = bs::broadcast(w);
    // Every lane holds the word; spot the two edges and the middle.
    for (unsigned lane : {0u, 15u, 31u}) {
      const BctWord9 back = bs::extract_lane(s, lane);
      EXPECT_EQ(back, w);
      // The untransposed planes are exactly the PackedWord/BctWord9
      // planes, and the Trit-array view agrees.
      EXPECT_EQ(back.neg_plane(), w.neg_plane());
      EXPECT_EQ(back.pos_plane(), w.pos_plane());
      EXPECT_EQ(back.decode(), Word9::from_int(v));
      EXPECT_EQ(back.decode(), pk::PackedWord<9>::from_int(v).decode());
    }
  }
}

TEST(Bitsliced, InsertExtractRoundTripsRandomLaneSets) {
  std::mt19937_64 rng(0x5eed'b17511ced001ull);
  for (int round = 0; round < 64; ++round) {
    const LaneSet set = random_lanes(rng);
    for (unsigned i = 0; i < bs::kLanes; ++i) {
      EXPECT_EQ(bs::extract_lane(set.sliced, i), set.words[i]);
    }
  }
}

// --- lane isolation ----------------------------------------------------------

TEST(Bitsliced, InsertLaneNeverPerturbsOtherLanesExhaustive) {
  // For every (writer, observer) lane pair: writing any of the three
  // extreme words into `writer` leaves `observer` bit-identical.
  std::mt19937_64 rng(0x5eed'0150'1a7eull);
  const LaneSet base = random_lanes(rng);
  const std::array<BctWord9, 3> probes = {pk::from_int(pk::kMin), pk::from_int(0),
                                          pk::from_int(pk::kMax)};
  for (unsigned writer = 0; writer < bs::kLanes; ++writer) {
    for (const BctWord9& probe : probes) {
      bs::SlicedWord9 s = base.sliced;
      bs::insert_lane(s, writer, probe);
      EXPECT_EQ(bs::extract_lane(s, writer), probe);
      for (unsigned observer = 0; observer < bs::kLanes; ++observer) {
        if (observer == writer) continue;
        ASSERT_EQ(bs::extract_lane(s, observer), base.words[observer])
            << "write to lane " << writer << " perturbed lane " << observer;
      }
    }
  }
}

TEST(Bitsliced, MaskedAssignOnlyTouchesMaskedLanes) {
  std::mt19937_64 rng(0x5eed'3a5cull);
  for (int round = 0; round < 32; ++round) {
    const LaneSet dst = random_lanes(rng);
    const LaneSet src = random_lanes(rng);
    const auto mask = static_cast<uint32_t>(random_bits64(rng));
    bs::SlicedWord9 merged = dst.sliced;
    bs::assign_masked(merged, src.sliced, mask);
    for (unsigned i = 0; i < bs::kLanes; ++i) {
      const BctWord9 expected = (mask >> i) & 1u ? src.words[i] : dst.words[i];
      ASSERT_EQ(bs::extract_lane(merged, i), expected) << "lane " << i << " mask " << mask;
    }
  }
}

// --- tritwise gates: exhaustive unary, randomized 32-lane binary -------------

TEST(Bitsliced, UnaryGatesMatchScalarExhaustive) {
  for (int32_t v = pk::kMin; v <= pk::kMax; ++v) {
    const BctWord9 w = pk::from_int(v);
    const bs::SlicedWord9 s = bs::broadcast(w);
    EXPECT_EQ(bs::extract_lane(bs::sti(s), 7), w.sti());
    EXPECT_EQ(bs::extract_lane(bs::nti(s), 7), w.nti());
    EXPECT_EQ(bs::extract_lane(bs::pti(s), 7), w.pti());
  }
}

TEST(Bitsliced, BinaryGatesMatchScalarPerLane) {
  std::mt19937_64 rng(0x5eed'6a7e5ull);
  for (int round = 0; round < 128; ++round) {
    const LaneSet a = random_lanes(rng);
    const LaneSet b = random_lanes(rng);
    const bs::SlicedWord9 sliced_and = bs::tand(a.sliced, b.sliced);
    const bs::SlicedWord9 sliced_or = bs::tor(a.sliced, b.sliced);
    const bs::SlicedWord9 sliced_xor = bs::txor(a.sliced, b.sliced);
    for (unsigned i = 0; i < bs::kLanes; ++i) {
      ASSERT_EQ(bs::extract_lane(sliced_and, i), BctWord9::tand(a.words[i], b.words[i]));
      ASSERT_EQ(bs::extract_lane(sliced_or, i), BctWord9::tor(a.words[i], b.words[i]));
      ASSERT_EQ(bs::extract_lane(sliced_xor, i), BctWord9::txor(a.words[i], b.words[i]));
    }
  }
}

// --- arithmetic: randomized 32-lane parity vs the scalar kernels -------------

TEST(Bitsliced, AddSubMatchPackedKernelsPerLane) {
  std::mt19937_64 rng(0x5eed'add5'0b17ull);
  for (int round = 0; round < 256; ++round) {
    const LaneSet a = random_lanes(rng);
    const LaneSet b = random_lanes(rng);
    const bs::SlicedWord9 sum = bs::add(a.sliced, b.sliced);
    const bs::SlicedWord9 diff = bs::sub(a.sliced, b.sliced);
    for (unsigned i = 0; i < bs::kLanes; ++i) {
      ASSERT_EQ(bs::extract_lane(sum, i), pk::add(a.words[i], b.words[i])) << "lane " << i;
      ASSERT_EQ(bs::extract_lane(diff, i), pk::sub(a.words[i], b.words[i])) << "lane " << i;
    }
  }
}

TEST(Bitsliced, AddCarryChainCornersExhaustiveOnEdgeValues) {
  // The carry chain is the delicate part: sweep every pairing of the
  // wrap-adjacent edge values through all lanes at once.
  const std::array<int32_t, 8> edges = {pk::kMin, pk::kMin + 1, -1, 0, 1, 121, pk::kMax - 1,
                                        pk::kMax};
  for (const int32_t va : edges) {
    for (const int32_t vb : edges) {
      const BctWord9 a = pk::from_int(va);
      const BctWord9 b = pk::from_int(vb);
      const bs::SlicedWord9 sum = bs::add(bs::broadcast(a), bs::broadcast(b));
      const bs::SlicedWord9 diff = bs::sub(bs::broadcast(a), bs::broadcast(b));
      for (unsigned lane : {0u, 31u}) {
        ASSERT_EQ(bs::extract_lane(sum, lane), pk::add(a, b)) << va << " + " << vb;
        ASSERT_EQ(bs::extract_lane(diff, lane), pk::sub(a, b)) << va << " - " << vb;
      }
    }
  }
}

TEST(Bitsliced, CompareMatchesUnwrappedSignPerLane) {
  std::mt19937_64 rng(0x5eed'c0de'c0deull);
  for (int round = 0; round < 256; ++round) {
    const LaneSet a = random_lanes(rng);
    const LaneSet b = random_lanes(rng);
    const bs::CompareMasks m = bs::compare(a.sliced, b.sliced);
    const bs::SlicedWord9 word = bs::comp(a.sliced, b.sliced);
    for (unsigned i = 0; i < bs::kLanes; ++i) {
      const int32_t expected = pk::compare(a.words[i], b.words[i]);
      ASSERT_EQ((m.gt >> i) & 1u, expected > 0 ? 1u : 0u) << "lane " << i;
      ASSERT_EQ((m.lt >> i) & 1u, expected < 0 ? 1u : 0u) << "lane " << i;
      ASSERT_EQ(bs::extract_lane(word, i), pk::comp_word(a.words[i], b.words[i]));
    }
  }
}

// --- shifts ------------------------------------------------------------------

TEST(Bitsliced, UniformShiftsMatchScalarIncludingClearingAmounts) {
  std::mt19937_64 rng(0x5eed'517full);
  const LaneSet a = random_lanes(rng);
  for (unsigned amount = 0; amount <= 12; ++amount) {
    const bs::SlicedWord9 right = bs::shr(a.sliced, amount);
    const bs::SlicedWord9 left = bs::shl(a.sliced, amount);
    for (unsigned i = 0; i < bs::kLanes; ++i) {
      ASSERT_EQ(bs::extract_lane(right, i), a.words[i].shr(amount)) << "amount " << amount;
      ASSERT_EQ(bs::extract_lane(left, i), a.words[i].shl(amount)) << "amount " << amount;
    }
  }
  // A negative immediate cast to unsigned must clear, as on BctWord9.
  const auto huge = static_cast<unsigned>(-3);
  EXPECT_EQ(bs::extract_lane(bs::shr(a.sliced, huge), 5), BctWord9{});
  EXPECT_EQ(bs::extract_lane(bs::shl(a.sliced, huge), 5), BctWord9{});
}

TEST(Bitsliced, VariableShiftsMatchScalarShiftAmountPerLane) {
  // Per-lane amounts: every lane of `amt` gets an independent word, so
  // the two barrel stages must route each lane by its own trits [1:0].
  std::mt19937_64 rng(0x5eed'ba77e1ull);
  for (int round = 0; round < 128; ++round) {
    const LaneSet a = random_lanes(rng);
    const LaneSet amt = random_lanes(rng);
    const bs::SlicedWord9 right = bs::shr_var(a.sliced, amt.sliced);
    const bs::SlicedWord9 left = bs::shl_var(a.sliced, amt.sliced);
    for (unsigned i = 0; i < bs::kLanes; ++i) {
      const unsigned amount = pk::shift_amount(amt.words[i]);
      ASSERT_LE(amount, 8u);
      ASSERT_EQ(bs::extract_lane(right, i), a.words[i].shr(amount)) << "lane " << i;
      ASSERT_EQ(bs::extract_lane(left, i), a.words[i].shl(amount)) << "lane " << i;
    }
  }
}

// --- condition masks ---------------------------------------------------------

TEST(Bitsliced, LstMasksMatchScalarLstValuePerLane) {
  std::mt19937_64 rng(0x5eed'1e57ull);
  for (int round = 0; round < 64; ++round) {
    const LaneSet a = random_lanes(rng);
    for (int cond : {-1, 0, 1}) {
      const uint32_t mask = bs::lst_eq_mask(a.sliced, cond);
      for (unsigned i = 0; i < bs::kLanes; ++i) {
        ASSERT_EQ((mask >> i) & 1u, a.words[i].lst_value() == cond ? 1u : 0u)
            << "lane " << i << " cond " << cond;
      }
    }
  }
}

}  // namespace
}  // namespace art9::ternary
