// PackedWord<N> equivalence suite: the width-generic plane-pair template
// must agree with the reference Word<N> semantics at every width, and its
// N == 9 instantiation must be bit-identical to the original BctWord9
// table path that the packed simulators execute.
#include "ternary/packed.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "ternary/bct.hpp"
#include "ternary/word.hpp"

namespace art9::ternary::packed {
namespace {

// --- template contract -------------------------------------------------------

// The width bound is a compile-time contract: every legal width
// instantiates (spot-checked at the extremes), and the constants mirror
// Word<N>'s exactly.
static_assert(PackedWord<1>::kStates == 3);
static_assert(PackedWord<1>::kMask == 0x1u);
static_assert(PackedWord<9>::kStates == 19683);
static_assert(PackedWord<9>::kMaxValue == 9841);
static_assert(PackedWord<9>::kMask == 0x1FFu);
static_assert(PackedWord<21>::kStates == Word<21>::kStates);  // rv32 packing width
static_assert(PackedWord<32>::kStates == Word<32>::kStates);
static_assert(PackedWord<32>::kMask == 0xFFFFFFFFu);

// The whole value-domain datapath is constexpr: usable in constant
// expressions at any width.
static_assert(PackedWord<5>::add(PackedWord<5>::from_int(100), PackedWord<5>::from_int(21))
                  .to_int() == 121);
static_assert(PackedWord<5>::add(PackedWord<5>::from_int(121), PackedWord<5>::from_int(1))
                  .to_int() == PackedWord<5>::kMinValue);  // mod-3^5 wrap
static_assert(PackedWord<21>::from_int(1'000'000).to_int() == 1'000'000);
static_assert(PackedWord<32>::from_int(-(int64_t{1} << 31)).to_int() == -(int64_t{1} << 31));

TEST(PackedWordContract, FromPlanesRejectsInvalidEncodings) {
  // The unused (1,1) fourth code and out-of-width plane bits both throw.
  EXPECT_THROW(static_cast<void>(PackedWord<3>::from_planes(0b001, 0b001)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(PackedWord<3>::from_planes(0b1000, 0)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(PackedWord<3>::from_planes(0, 0b1000)),
               std::invalid_argument);
  EXPECT_EQ(PackedWord<3>::from_planes(0b100, 0b010).to_int(), -9 + 3);
}

// --- exhaustive equivalence at small widths ----------------------------------

template <std::size_t N>
void exhaustive_width_sweep() {
  using P = PackedWord<N>;
  for (int64_t v = P::kMinValue; v <= P::kMaxValue; ++v) {
    const Word<N> ref = Word<N>::from_int(v);
    const P p = P::from_int(v);
    // Conversions are mutually inverse and agree with the reference word.
    EXPECT_EQ(p.to_int(), v);
    EXPECT_EQ(P::encode(ref), p);
    EXPECT_EQ(p.decode(), ref);
    // Unary gates.
    EXPECT_EQ(p.sti().decode(), sti(ref));
    EXPECT_EQ(p.nti().decode(), nti(ref));
    EXPECT_EQ(p.pti().decode(), pti(ref));
    // Shifts, including the >= N clearing contract.
    for (unsigned amount = 0; amount <= N + 1; ++amount) {
      EXPECT_EQ(p.shl(amount).decode(), ref.shl(amount));
      EXPECT_EQ(p.shr(amount).decode(), ref.shr(amount));
    }
    // Trit probes and the row bijection.
    EXPECT_EQ(p.lst_value(), ref.lst().value());
    for (std::size_t i = 0; i < N; ++i) EXPECT_EQ(p.trit_value(i), ref[i].value());
    EXPECT_EQ(static_cast<int64_t>(P::row_of(v)), v + P::kMaxValue);
  }
  // Binary ops over the full square at N == 3, a strided square at N == 5.
  const int64_t stride = N <= 3 ? 1 : 7;
  for (int64_t a = P::kMinValue; a <= P::kMaxValue; a += stride) {
    for (int64_t b = P::kMinValue; b <= P::kMaxValue; b += stride) {
      const Word<N> ra = Word<N>::from_int(a);
      const Word<N> rb = Word<N>::from_int(b);
      const P pa = P::from_int(a);
      const P pb = P::from_int(b);
      EXPECT_EQ(P::add(pa, pb).decode(), ra + rb);
      EXPECT_EQ(P::sub(pa, pb).decode(), ra - rb);
      EXPECT_EQ(P::compare(pa, pb), Word<N>::compare(ra, rb).value());
      EXPECT_EQ(P::tand(pa, pb).decode(), tand(ra, rb));
      EXPECT_EQ(P::tor(pa, pb).decode(), tor(ra, rb));
      EXPECT_EQ(P::txor(pa, pb).decode(), txor(ra, rb));
    }
  }
}

TEST(PackedWordExhaustive, Width3) { exhaustive_width_sweep<3>(); }
TEST(PackedWordExhaustive, Width5) { exhaustive_width_sweep<5>(); }

// --- N == 9: bit-identical to the BctWord9 table path ------------------------

TEST(PackedWord9, ExhaustiveConversionMatchesBctPath) {
  using P = PackedWord<9>;
  for (int32_t v = kMin; v <= kMax; ++v) {
    const BctWord9 bct = from_int(v);
    const P p = P::from_int(v);
    // Same planes, both directions, and free interop conversions.
    EXPECT_EQ(p.neg_plane(), bct.neg_plane());
    EXPECT_EQ(p.pos_plane(), bct.pos_plane());
    EXPECT_EQ(p.to_int(), to_int(bct));
    EXPECT_EQ(from_bct(bct), p);
    EXPECT_EQ(to_bct(p), bct);
  }
}

TEST(PackedWord9, RandomizedArithmeticMatchesBctPath) {
  using P = PackedWord<9>;
  std::mt19937_64 rng(0x9A41);
  std::uniform_int_distribution<int32_t> dist(kMin, kMax);
  for (int i = 0; i < 20'000; ++i) {
    const int32_t a = dist(rng);
    const int32_t b = dist(rng);
    const BctWord9 ba = from_int(a);
    const BctWord9 bb = from_int(b);
    const P pa = P::from_int(a);
    const P pb = P::from_int(b);
    EXPECT_EQ(to_bct(P::add(pa, pb)), add(ba, bb));
    EXPECT_EQ(to_bct(P::sub(pa, pb)), sub(ba, bb));
    EXPECT_EQ(P::compare(pa, pb), compare(ba, bb));
    EXPECT_EQ(to_bct(P::comp_word(pa, pb)), comp_word(ba, bb));
    EXPECT_EQ(pa.shift_amount(), shift_amount(ba));
    EXPECT_EQ(P::add_int(pa, b).to_int(), to_int(add_int(ba, b)));
  }
}

TEST(PackedWord9, CarryChainCorners) {
  using P = PackedWord<9>;
  // The classic balanced-ternary carry chains: +/-1 around the extremes,
  // the all-(+1)/all-(-1) words, and full-range sums that wrap.
  const int64_t corners[] = {P::kMinValue,     P::kMinValue + 1, -1, 0, 1,
                             P::kMaxValue - 1, P::kMaxValue};
  for (int64_t a : corners) {
    for (int64_t b : corners) {
      const Word9 expected_sum = Word9::from_int(a) + Word9::from_int(b);
      const Word9 expected_diff = Word9::from_int(a) - Word9::from_int(b);
      EXPECT_EQ(P::add(P::from_int(a), P::from_int(b)).decode(), expected_sum)
          << a << " + " << b;
      EXPECT_EQ(P::sub(P::from_int(a), P::from_int(b)).decode(), expected_diff)
          << a << " - " << b;
      EXPECT_EQ(P::wrap(a + b), expected_sum.to_int());
    }
  }
}

// --- wide words: the rv32 packing seam ---------------------------------------

TEST(PackedWordWide, RoundTripsAndArithmeticAt21And32) {
  // 21 trits cover a 32-bit binary value (3^21 > 2^32): the width the
  // rv32-side packing will use.  Randomized round-trip + arithmetic
  // against Word<N> at both widths.
  std::mt19937_64 rng(0xC0FFEE);
  auto sweep = [&rng](auto word_tag) {
    using P = decltype(word_tag);
    constexpr std::size_t n = P::kTrits;
    std::uniform_int_distribution<int64_t> dist(P::kMinValue, P::kMaxValue);
    for (int i = 0; i < 2'000; ++i) {
      const int64_t a = dist(rng);
      const int64_t b = dist(rng);
      const P pa = P::from_int(a);
      EXPECT_EQ(pa.to_int(), a);
      EXPECT_EQ(pa.decode(), Word<n>::from_int(a));
      EXPECT_EQ(P::encode(Word<n>::from_int(a)), pa);
      EXPECT_EQ(P::add(pa, P::from_int(b)).decode(),
                Word<n>::from_int(a) + Word<n>::from_int(b));
      EXPECT_EQ(P::compare(pa, P::from_int(b)), (a > b) - (a < b));
    }
  };
  sweep(PackedWord<21>{});
  sweep(PackedWord<32>{});
}

}  // namespace
}  // namespace art9::ternary::packed
