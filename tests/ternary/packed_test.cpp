// Packed-vs-reference equivalence for the SWAR datapath layer: the
// branchless plane operations of ternary/packed.hpp (and the BctWord9
// shifts) must agree with the Trit-array reference semantics on every
// word — exhaustively for unary ops/conversions/shifts over all 3^9
// states, and on seeded-random plus carry-chain corner inputs for the
// value-domain add/sub/compare.
#include "ternary/packed.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "ternary/bct.hpp"
#include "ternary/random.hpp"
#include "ternary/word.hpp"

namespace art9::ternary {
namespace {

namespace pk = packed;

TEST(Packed, TableConstantsMatchWordBounds) {
  EXPECT_EQ(pk::kStates, 19683);
  EXPECT_EQ(pk::kMax, 9841);
  EXPECT_EQ(pk::kMin, -9841);
  // Plane-value table end points: empty plane is 0, full plane is kMax.
  EXPECT_EQ(pk::kPlaneValue[0], 0);
  EXPECT_EQ(pk::kPlaneValue[BctWord9::kMask], pk::kMax);
}

// --- exhaustive sweeps over all 19683 words ---------------------------------

TEST(Packed, ConversionsExhaustive) {
  for (int32_t v = pk::kMin; v <= pk::kMax; ++v) {
    const Word9 w = Word9::from_int(v);
    const BctWord9 e = BctWord9::encode(w);
    EXPECT_EQ(pk::to_int(e), v);
    EXPECT_EQ(pk::from_int(v), e);
    // The packed planes always satisfy the encoding invariant.
    const BctWord9 f = pk::from_int(v);
    EXPECT_EQ(f.neg_plane() & f.pos_plane(), 0u);
    EXPECT_LE(f.neg_plane() | f.pos_plane(), BctWord9::kMask);
  }
}

TEST(Packed, UnaryOpsExhaustive) {
  for (int32_t v = pk::kMin; v <= pk::kMax; ++v) {
    const Word9 w = Word9::from_int(v);
    const BctWord9 e = BctWord9::encode(w);
    EXPECT_EQ(e.sti().decode(), sti(w));
    EXPECT_EQ(e.nti().decode(), nti(w));
    EXPECT_EQ(e.pti().decode(), pti(w));
    EXPECT_EQ(e.lst_value(), w.lst().value());
    EXPECT_EQ(e.trit_value(8), w.mst().value());
  }
}

TEST(Packed, ShiftsExhaustive) {
  for (int32_t v = pk::kMin; v <= pk::kMax; ++v) {
    const Word9 w = Word9::from_int(v);
    const BctWord9 e = BctWord9::encode(w);
    for (unsigned amount = 0; amount <= 10; ++amount) {
      EXPECT_EQ(e.shl(amount).decode(), w.shl(amount)) << "v=" << v << " shl " << amount;
      EXPECT_EQ(e.shr(amount).decode(), w.shr(amount)) << "v=" << v << " shr " << amount;
    }
  }
}

TEST(Packed, RowOfExhaustive) {
  // Every balanced address, plus the out-of-range overflow band that
  // base+offset address arithmetic can produce.
  for (int32_t v = pk::kMin - 20; v <= pk::kMax + 20; ++v) {
    int64_t expected = (static_cast<int64_t>(v) + pk::kMax) % pk::kStates;
    if (expected < 0) expected += pk::kStates;
    EXPECT_EQ(pk::row_of(v), static_cast<std::size_t>(expected)) << "v=" << v;
  }
}

TEST(Packed, ShiftAmountExhaustive) {
  for (int32_t v = pk::kMin; v <= pk::kMax; ++v) {
    const Word9 w = Word9::from_int(v);
    const unsigned expected =
        static_cast<unsigned>(w[1].level() * 3 + w[0].level());
    EXPECT_EQ(pk::shift_amount(BctWord9::encode(w)), expected);
  }
}

// --- value-domain arithmetic: random pairs + carry-chain corner cases -------

/// Reference semantics for one packed pair.
void expect_arith_matches(const Word9& a, const Word9& b) {
  const BctWord9 ea = BctWord9::encode(a);
  const BctWord9 eb = BctWord9::encode(b);
  EXPECT_EQ(pk::add(ea, eb).decode(), a + b) << a << " + " << b;
  EXPECT_EQ(pk::sub(ea, eb).decode(), a - b) << a << " - " << b;
  EXPECT_EQ(pk::compare(ea, eb), Word9::compare(a, b).value()) << a << " vs " << b;
  // comp_word mirrors the COMP result layout: sign in the LST, zeros above.
  Word9 comp;
  comp.set(0, Word9::compare(a, b));
  EXPECT_EQ(pk::comp_word(ea, eb).decode(), comp);
  // The packed adder agrees with the plane-ripple reference adder too.
  EXPECT_EQ(pk::add(ea, eb), BctWord9::add(ea, eb));
}

TEST(Packed, ArithmeticSeededRandom) {
  std::mt19937_64 rng(2026);
  for (int i = 0; i < 20000; ++i) {
    expect_arith_matches(random_word<9>(rng), random_word<9>(rng));
  }
}

TEST(Packed, ArithmeticCarryChainCorners) {
  // Words that maximise carry propagation: all '+', all '-', the two
  // alternating patterns, the range extremes and the neighbourhood of zero.
  std::vector<Word9> corners;
  corners.push_back(Word9::filled(kTritP));          // +9841 (all-+)
  corners.push_back(Word9::filled(kTritN));          // -9841 (all--)
  corners.push_back(Word9::parse("+-+-+-+-+"));      // alternating from +
  corners.push_back(Word9::parse("-+-+-+-+-"));      // alternating from -
  corners.push_back(Word9{});                        // zero
  for (int32_t v : {1, -1, 2, -2, 3, -3, pk::kMax - 1, pk::kMin + 1, 4920, -4920}) {
    corners.push_back(Word9::from_int(v));
  }
  for (const Word9& a : corners) {
    for (const Word9& b : corners) {
      expect_arith_matches(a, b);
    }
  }
}

TEST(Packed, AddImmediateMatchesReference) {
  // add_int covers the ADDI path: every imm3 against random operands.
  std::mt19937_64 rng(7);
  for (int i = 0; i < 2000; ++i) {
    const Word9 a = random_word<9>(rng);
    const BctWord9 ea = BctWord9::encode(a);
    for (int32_t imm = -13; imm <= 13; ++imm) {
      EXPECT_EQ(pk::add_int(ea, imm).decode(), a + Word9::from_int(imm));
    }
  }
}

TEST(Packed, WrapReducesDatapathOverflowRange) {
  for (int32_t v = -2 * pk::kStates + 1; v < 2 * pk::kStates; v += 13) {
    // Reference reduction.
    int32_t expected = v % pk::kStates;
    if (expected > pk::kMax) expected -= pk::kStates;
    if (expected < pk::kMin) expected += pk::kStates;
    // pk::wrap's documented precondition is one correction per side.
    if (v >= pk::kMin - pk::kStates && v <= pk::kMax + pk::kStates) {
      EXPECT_EQ(pk::wrap(v), expected) << "v=" << v;
    }
  }
}

TEST(Packed, LogicOpsAgreeOnRandomWords) {
  // The plane logic itself is locked exhaustively in bct_test; this pins
  // the word-level composition used by the packed TALU.
  std::mt19937_64 rng(11);
  for (int i = 0; i < 5000; ++i) {
    const Word9 a = random_word<9>(rng);
    const Word9 b = random_word<9>(rng);
    const BctWord9 ea = BctWord9::encode(a);
    const BctWord9 eb = BctWord9::encode(b);
    EXPECT_EQ(BctWord9::tand(ea, eb).decode(), tand(a, b));
    EXPECT_EQ(BctWord9::tor(ea, eb).decode(), tor(a, b));
    EXPECT_EQ(BctWord9::txor(ea, eb).decode(), txor(a, b));
  }
}

}  // namespace
}  // namespace art9::ternary
