// Word<N> is generic over the width: the arithmetic laws must hold for
// every N, not just the ART-9 word.  Small widths are checked
// exhaustively over their whole value space.
#include <gtest/gtest.h>

#include "ternary/word.hpp"

namespace art9::ternary {
namespace {

template <std::size_t N>
void exhaustive_width_check() {
  using W = Word<N>;
  ASSERT_EQ(W::kStates, pow3(N));
  ASSERT_EQ(W::kMaxValue, (W::kStates - 1) / 2);
  for (int64_t a = W::kMinValue; a <= W::kMaxValue; ++a) {
    const W wa = W::from_int(a);
    // Conversions round-trip; the two readings differ by the offset.
    ASSERT_EQ(wa.to_int(), a);
    ASSERT_EQ(wa.to_unsigned(), a + W::kMaxValue);
    // Negation is tritwise and exact.
    ASSERT_EQ((-wa).to_int(), -a);
    // Shifts are x3 / nearest-divide-by-3.
    if (a * 3 >= W::kMinValue && a * 3 <= W::kMaxValue) {
      ASSERT_EQ(wa.shl(1).to_int(), a * 3);
    }
    const int64_t r = a % 3;
    int64_t q = a / 3;
    if (r == 2) ++q;
    if (r == -2) --q;
    ASSERT_EQ(wa.shr(1).to_int(), q);
    // Text round-trip.
    ASSERT_EQ(W::parse(wa.to_string()), wa);
  }
}

TEST(WordWidths, Width1Exhaustive) { exhaustive_width_check<1>(); }
TEST(WordWidths, Width2Exhaustive) { exhaustive_width_check<2>(); }
TEST(WordWidths, Width3Exhaustive) { exhaustive_width_check<3>(); }
TEST(WordWidths, Width4Exhaustive) { exhaustive_width_check<4>(); }
TEST(WordWidths, Width5Exhaustive) { exhaustive_width_check<5>(); }
TEST(WordWidths, Width6Exhaustive) { exhaustive_width_check<6>(); }

TEST(WordWidths, AdditionClosureSmallWidths) {
  // Full addition table for 3-trit words (27 x 27).
  using W = Word<3>;
  for (int64_t a = W::kMinValue; a <= W::kMaxValue; ++a) {
    for (int64_t b = W::kMinValue; b <= W::kMaxValue; ++b) {
      const auto r = W::add_with_carry(W::from_int(a), W::from_int(b), kTritZ);
      // sum + 27 * carry == a + b, always.
      EXPECT_EQ(r.sum.to_int() + W::kStates * r.carry_out.value(), a + b)
          << a << " + " << b;
    }
  }
}

TEST(WordWidths, WideWordsHoldBigValues) {
  // A 13-trit word (the kind a wider ART core would use).
  using W13 = Word<13>;
  EXPECT_EQ(W13::kMaxValue, (pow3(13) - 1) / 2);  // 797161
  const int64_t v = 500'000;
  EXPECT_EQ(W13::from_int(v).to_int(), v);
  EXPECT_EQ((W13::from_int(v) + W13::from_int(-123'456)).to_int(), v - 123'456);
  EXPECT_EQ(W13::from_int(v).shr(3).to_int(), 18519);  // 500000/27 rounded
}

TEST(WordWidths, CrossWidthSliceConsistency) {
  // Slicing a wide word must match re-encoding the arithmetic parts.
  using W12 = Word<12>;
  for (int64_t v : {-265720LL, -1000LL, 0LL, 777LL, 265720LL}) {
    const W12 w = W12::from_int(v);
    const auto lo = w.slice<6>(0);
    const auto hi = w.slice<6>(6);
    EXPECT_EQ(hi.to_int() * pow3(6) + lo.to_int(), v) << v;
  }
}

}  // namespace
}  // namespace art9::ternary
