// Word<N> arithmetic: conversions, the datapath operations, and the
// balanced-ternary properties the ART-9 core depends on.  Word9's full
// 19683-state space is small enough for exhaustive sweeps.
#include "ternary/word.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <random>

#include "ternary/random.hpp"

namespace art9::ternary {
namespace {

TEST(Word, RangeConstants) {
  EXPECT_EQ(Word9::kStates, 19683);
  EXPECT_EQ(Word9::kMaxValue, 9841);
  EXPECT_EQ(Word9::kMinValue, -9841);
  EXPECT_EQ(Word9::kMaxUnsigned, 19682);
  EXPECT_EQ(pow3(0), 1);
  EXPECT_EQ(pow3(9), 19683);
}

TEST(Word, BalancedConversionRoundTripExhaustive) {
  for (int64_t v = Word9::kMinValue; v <= Word9::kMaxValue; ++v) {
    EXPECT_EQ(Word9::from_int(v).to_int(), v);
  }
}

TEST(Word, UnsignedConversionRoundTripExhaustive) {
  for (int64_t v = 0; v <= Word9::kMaxUnsigned; ++v) {
    EXPECT_EQ(Word9::from_unsigned(v).to_unsigned(), v);
  }
}

TEST(Word, BalancedUnsignedRelation) {
  // The same trit pattern read in the two interpretations differs by the
  // constant offset (3^9-1)/2 — the bijection memories rely on.
  for (int64_t v = Word9::kMinValue; v <= Word9::kMaxValue; v += 37) {
    const Word9 w = Word9::from_int(v);
    EXPECT_EQ(w.to_unsigned(), v + Word9::kMaxValue);
  }
}

TEST(Word, ConversionRangeChecks) {
  EXPECT_THROW(Word9::from_int(9842), std::out_of_range);
  EXPECT_THROW(Word9::from_int(-9842), std::out_of_range);
  EXPECT_THROW(Word9::from_unsigned(-1), std::out_of_range);
  EXPECT_THROW(Word9::from_unsigned(19683), std::out_of_range);
}

TEST(Word, WrappedConversion) {
  EXPECT_EQ(Word9::from_int_wrapped(9842).to_int(), -9841);
  EXPECT_EQ(Word9::from_int_wrapped(-9842).to_int(), 9841);
  EXPECT_EQ(Word9::from_int_wrapped(19683).to_int(), 0);
  EXPECT_EQ(Word9::from_unsigned_wrapped(19683).to_unsigned(), 0);
  EXPECT_EQ(Word9::from_unsigned_wrapped(-1).to_unsigned(), 19682);
}

TEST(Word, ParseAndToString) {
  const Word<3> w = Word<3>::parse("+0-");
  EXPECT_EQ(w.to_int(), 9 - 1);
  EXPECT_EQ(w.to_string(), "+0-");
  EXPECT_THROW(Word<3>::parse("++"), std::invalid_argument);
  EXPECT_THROW(Word<3>::parse("+x-"), std::invalid_argument);
  for (int64_t v = -121; v <= 121; ++v) {
    const Word<5> x = Word<5>::from_int(v);
    EXPECT_EQ(Word<5>::parse(x.to_string()), x);
  }
}

TEST(Word, TritAccess) {
  Word9 w = Word9::from_int(5);  // 5 = +--  (9 - 3 - 1)
  EXPECT_EQ(w[0], kTritN);
  EXPECT_EQ(w[1], kTritN);
  EXPECT_EQ(w[2], kTritP);
  EXPECT_EQ(w.lst(), kTritN);
  w.set(8, kTritP);
  EXPECT_EQ(w.mst(), kTritP);
  EXPECT_EQ(w.to_int(), 5 + 6561);
}

TEST(Word, SignAndIsZero) {
  EXPECT_TRUE(Word9{}.is_zero());
  EXPECT_EQ(Word9{}.sign(), kTritZ);
  EXPECT_EQ(Word9::from_int(123).sign(), kTritP);
  EXPECT_EQ(Word9::from_int(-4).sign(), kTritN);
}

TEST(Word, SliceAndInsert) {
  const Word9 w = Word9::from_int(1234);
  const Word<5> lo = w.slice<5>(0);
  const Word<4> hi = w.slice<4>(5);
  // value = hi * 3^5 + lo — the LUI/LI decomposition.
  EXPECT_EQ(hi.to_int() * 243 + lo.to_int(), 1234);
  Word9 rebuilt;
  rebuilt.insert(0, lo);
  rebuilt.insert(5, hi);
  EXPECT_EQ(rebuilt, w);
  EXPECT_THROW((void)w.slice<5>(5), std::out_of_range);
}

// --- arithmetic ---------------------------------------------------------

class WordAddSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(WordAddSweep, AddMatchesIntegerAddition) {
  const int64_t a = GetParam();
  for (int64_t b = -9841; b <= 9841; b += 271) {
    const Word9 sum = Word9::from_int(a) + Word9::from_int(b);
    EXPECT_EQ(sum.to_int(), Word9::from_int_wrapped(a + b).to_int());
  }
}

INSTANTIATE_TEST_SUITE_P(BalancedRange, WordAddSweep,
                         ::testing::Values(-9841, -5000, -1234, -1, 0, 1, 777, 4821, 9841));

TEST(WordArith, NegationIsTritwiseSti) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 2000; ++i) {
    const Word9 w = random_word<9>(rng);
    EXPECT_EQ((-w).to_int(), -w.to_int());
    EXPECT_EQ(-w, sti(w));
  }
}

TEST(WordArith, SubtractionMatchesIntegers) {
  std::mt19937_64 rng(8);
  for (int i = 0; i < 2000; ++i) {
    const Word9 a = random_word<9>(rng);
    const Word9 b = random_word<9>(rng);
    EXPECT_EQ((a - b).to_int(), Word9::from_int_wrapped(a.to_int() - b.to_int()).to_int());
  }
}

TEST(WordArith, AddCarryOut) {
  const auto r = Word9::add_with_carry(Word9::from_int(9841), Word9::from_int(1), kTritZ);
  // 9842 = -9841 + 1*3^9.
  EXPECT_EQ(r.sum.to_int(), -9841);
  EXPECT_EQ(r.carry_out, kTritP);
  const auto r2 = Word9::add_with_carry(Word9::from_int(-9841), Word9::from_int(-1), kTritZ);
  EXPECT_EQ(r2.sum.to_int(), 9841);
  EXPECT_EQ(r2.carry_out, kTritN);
}

TEST(WordArith, ShiftLeftMultipliesByThree) {
  std::mt19937_64 rng(9);
  for (int i = 0; i < 2000; ++i) {
    const Word9 w = random_word_in<9>(rng, -3280, 3280);
    EXPECT_EQ(w.shl(1).to_int(), w.to_int() * 3);
  }
  EXPECT_EQ(Word9::from_int(5).shl(2).to_int(), 45);
  EXPECT_TRUE(Word9::from_int(5).shl(9).is_zero());
}

TEST(WordArith, ShiftRightRoundsToNearest) {
  // Balanced truncation rounds to the nearest integer — a signature
  // property of balanced ternary (ties cannot occur).
  for (int64_t v = -9841; v <= 9841; v += 13) {
    const Word9 w = Word9::from_int(v);
    const double exact = static_cast<double>(v) / 3.0;
    const auto nearest = static_cast<int64_t>(std::llround(exact));
    EXPECT_EQ(w.shr(1).to_int(), nearest) << "v=" << v;
  }
  EXPECT_TRUE(Word9::from_int(-9841).shr(9).is_zero());
}

TEST(WordArith, ShiftCompositionProperty) {
  std::mt19937_64 rng(10);
  for (int i = 0; i < 500; ++i) {
    const Word9 w = random_word<9>(rng);
    for (std::size_t a = 0; a <= 4; ++a) {
      for (std::size_t b = 0; b <= 4; ++b) {
        EXPECT_EQ(w.shr(a).shr(b), w.shr(a + b));
        EXPECT_EQ(w.shl(a).shl(b), w.shl(a + b));
      }
    }
  }
}

TEST(WordArith, CompareTrichotomy) {
  std::mt19937_64 rng(11);
  for (int i = 0; i < 3000; ++i) {
    const Word9 a = random_word<9>(rng);
    const Word9 b = random_word<9>(rng);
    const Trit c = Word9::compare(a, b);
    const int expected = (a.to_int() > b.to_int()) - (a.to_int() < b.to_int());
    EXPECT_EQ(c.value(), expected);
  }
}

TEST(WordLogic, TritwiseOpsMatchScalarOps) {
  std::mt19937_64 rng(12);
  for (int i = 0; i < 1000; ++i) {
    const Word9 a = random_word<9>(rng);
    const Word9 b = random_word<9>(rng);
    for (std::size_t k = 0; k < 9; ++k) {
      EXPECT_EQ(tand(a, b)[k], tand(a[k], b[k]));
      EXPECT_EQ(tor(a, b)[k], tor(a[k], b[k]));
      EXPECT_EQ(txor(a, b)[k], txor(a[k], b[k]));
      EXPECT_EQ(sti(a)[k], sti(a[k]));
      EXPECT_EQ(nti(a)[k], nti(a[k]));
      EXPECT_EQ(pti(a)[k], pti(a[k]));
    }
  }
}

TEST(Word, FilledAndFromTrits) {
  const Word<4> w = Word<4>::filled(kTritP);
  EXPECT_EQ(w.to_int(), 40);  // ++++ = 27+9+3+1
  const std::array<Trit, 4> trits{kTritP, kTritZ, kTritZ, kTritZ};  // LSB first
  EXPECT_EQ(Word<4>::from_trits_lsb(trits).to_int(), 1);
}

}  // namespace
}  // namespace art9::ternary
